// Command dpgraph emits Graphviz DOT renderings of the paper's graph
// structures for inspection and documentation:
//
//	dpgraph -kind chain -dims 5,4,6,2,7              # Figure 2 AND/OR-graph
//	dpgraph -kind chain -dims 5,4,6,2,7 -serialize   # after Figure 8's dummies
//	dpgraph -kind reduction -stages 5 -values 2 -p 2 # Figure 7 regular reduction
//	dpgraph -kind obst -keys 4                       # OBST AND/OR-graph
//
// Pipe through `dot -Tsvg` to draw.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"systolicdp/internal/andor"
	"systolicdp/internal/matchain"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obst"
)

func main() {
	kind := flag.String("kind", "chain", "graph kind: chain | reduction | obst")
	dims := flag.String("dims", "5,4,6,2,7", "matrix-chain dimensions (kind=chain)")
	stages := flag.Int("stages", 5, "graph stages (kind=reduction)")
	values := flag.Int("values", 2, "nodes per stage (kind=reduction)")
	p := flag.Int("p", 2, "partition arity (kind=reduction)")
	keys := flag.Int("keys", 4, "key count (kind=obst)")
	serialize := flag.Bool("serialize", false, "apply the Figure-8 serialisation first")
	seed := flag.Int64("seed", 7, "instance seed")
	flag.Parse()

	if err := run(*kind, *dims, *stages, *values, *p, *keys, *serialize, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dpgraph:", err)
		os.Exit(1)
	}
}

func run(kind, dims string, stages, values, p, keys int, serialize bool, seed int64) error {
	var g *andor.Graph
	var name string
	switch kind {
	case "chain":
		var ds []int
		for _, s := range strings.Split(dims, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad dimension %q: %v", s, err)
			}
			ds = append(ds, v)
		}
		var err error
		g, err = matchain.BuildANDOR(ds)
		if err != nil {
			return err
		}
		name = "matrix-chain"
	case "reduction":
		rng := rand.New(rand.NewSource(seed))
		ms := multistage.RandomUniform(rng, stages, values, 1, 10)
		var err error
		g, err = andor.BuildRegular(ms, p)
		if err != nil {
			return err
		}
		name = "regular-reduction"
	case "obst":
		rng := rand.New(rand.NewSource(seed))
		prob := &obst.Problem{P: make([]float64, keys), Q: make([]float64, keys+1)}
		for i := range prob.P {
			prob.P[i] = rng.Float64()
		}
		for i := range prob.Q {
			prob.Q[i] = rng.Float64() * 0.5
		}
		var err error
		g, err = prob.BuildANDOR()
		if err != nil {
			return err
		}
		name = "obst"
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if serialize {
		var added int
		g, added = g.Serialize()
		fmt.Fprintf(os.Stderr, "serialised: +%d dummy nodes\n", added)
		name += "-serialised"
	}
	fmt.Print(g.DOT(name))
	return nil
}
