package main

import "testing"

func TestRunAllKinds(t *testing.T) {
	cases := []struct {
		name      string
		kind      string
		serialize bool
	}{
		{"chain", "chain", false},
		{"chain-serialized", "chain", true},
		{"reduction", "reduction", false},
		{"obst", "obst", false},
		{"obst-serialized", "obst", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.kind, "5,4,6,2,7", 5, 2, 2, 4, c.serialize, 7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("martian", "", 0, 0, 0, 0, false, 7); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("chain", "5,x", 0, 0, 0, 0, false, 7); err == nil {
		t.Error("bad dims accepted")
	}
	if err := run("reduction", "", 4, 2, 2, 0, false, 7); err == nil {
		t.Error("non-power stage count accepted") // 3 matrices, p=2
	}
}
