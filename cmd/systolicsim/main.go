// Command systolicsim runs one of the three systolic-array designs on a
// random instance and dumps a cycle-by-cycle trace, for inspecting the
// data movement of Figures 3-5.
//
// Usage:
//
//	systolicsim -design 1 -stages 5 -values 3 -trace
//	systolicsim -design 3 -stages 4 -values 3 -goroutines
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
	"systolicdp/internal/trace"
)

func main() {
	design := flag.Int("design", 1, "systolic design: 1 (pipelined), 2 (broadcast), 3 (feedback)")
	stages := flag.Int("stages", 5, "graph stages (designs 1-2 wrap to single source/sink)")
	values := flag.Int("values", 3, "nodes/values per stage")
	seed := flag.Int64("seed", 42, "instance seed")
	traceFlag := flag.Bool("trace", false, "dump per-cycle wire values (design 1 lock-step only)")
	goroutines := flag.Bool("goroutines", false, "use the goroutine-per-PE runner")
	flag.Parse()

	if err := run(*design, *stages, *values, *seed, *traceFlag, *goroutines); err != nil {
		fmt.Fprintln(os.Stderr, "systolicsim:", err)
		os.Exit(1)
	}
}

func run(design, stages, values int, seed int64, trace, goroutines bool) error {
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(seed))
	switch design {
	case 1, 2:
		inner := multistage.RandomUniform(rng, stages-2, values, 1, 10)
		g := multistage.SingleSourceSink(mp, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		want := multistage.SolveOptimal(mp, g)
		if design == 1 {
			arr, err := pipearray.New(mats[:k-1], v)
			if err != nil {
				return err
			}
			fmt.Printf("Design 1: %d PEs, %d matrix phases, %d iterations, %d wall cycles\n",
				arr.M, arr.K, arr.Iterations(), arr.WallCycles())
			if trace {
				return tracedRun(arr)
			}
			out, res, err := arr.Run(goroutines)
			if err != nil {
				return err
			}
			report(out[0], want.Cost, res.Busy)
			return nil
		}
		arr, err := bcastarray.New(mats[:k-1], v)
		if err != nil {
			return err
		}
		fmt.Printf("Design 2: %d PEs, %d matrix phases, %d iterations (no skew)\n", arr.M, arr.K, arr.Iterations())
		var out []float64
		var busy []int
		if goroutines {
			out, busy = arr.RunGoroutines()
		} else {
			out, busy = arr.RunLockstep()
		}
		report(out[0], want.Cost, busy)
		return nil
	case 3:
		p := multistage.RandomNodeValued(rng, stages, values, 0, 10)
		arr, err := fbarray.New(p)
		if err != nil {
			return err
		}
		fmt.Printf("Design 3: %d PEs, %d stages, %d iterations ((N+1)m)\n", arr.M, arr.N, arr.Iterations())
		res, err := arr.Run(goroutines)
		if err != nil {
			return err
		}
		want := p.SolvePath(mp)
		report(res.Cost, want.Cost, res.Busy)
		fmt.Printf("path:     %v (baseline %v)\n", res.Path, want.Nodes)
		return nil
	default:
		return fmt.Errorf("unknown design %d", design)
	}
}

func tracedRun(arr *pipearray.Array) error {
	rec := trace.NewRecorder(arr.WireNames())
	out, res, err := arr.RunTraced(rec.Callback())
	if err != nil {
		return err
	}
	fmt.Println("cycle-by-cycle wire trace (dots are pipeline bubbles):")
	fmt.Print(rec.Render(nil, 0, 0))
	fmt.Println("\nper-PE utilization:")
	fmt.Print(trace.BusyProfile(res.Busy, res.Cycles))
	fmt.Printf("result: %v\n", out)
	return nil
}

func report(got, want float64, busy []int) {
	status := "OK"
	if math.Abs(got-want) > 1e-9 {
		status = "MISMATCH"
	}
	fmt.Printf("result:   %g (baseline %g) %s\n", got, want, status)
	fmt.Printf("busy:     %v\n", busy)
}
