// Command systolicsim runs one of the three systolic-array designs on a
// random instance and dumps a cycle-by-cycle trace, for inspecting the
// data movement of Figures 3-5.
//
// Usage:
//
//	systolicsim -design 1 -stages 5 -values 3 -trace
//	systolicsim -design 3 -stages 4 -values 3 -goroutines
//	systolicsim -design 3 -goroutines -trace-json out.json   # open in ui.perfetto.dev
//
// -trace prints the ASCII waveform (designs 1 and 3, lock-step runner
// only: design 2's broadcast bus is combinational, and the goroutine
// runner has no global latch instant to snapshot). -trace-json exports a
// Chrome trace-event / Perfetto JSON cycle trace and works for all three
// designs under both runners; summarize it with cmd/dptrace.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obs"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
	"systolicdp/internal/trace"
)

func main() {
	design := flag.Int("design", 1, "systolic design: 1 (pipelined), 2 (broadcast), 3 (feedback)")
	stages := flag.Int("stages", 5, "graph stages (designs 1-2 wrap to single source/sink)")
	values := flag.Int("values", 3, "nodes/values per stage")
	seed := flag.Int64("seed", 42, "instance seed")
	traceFlag := flag.Bool("trace", false, "dump the ASCII per-cycle wire waveform (designs 1 and 3, lock-step only)")
	traceJSON := flag.String("trace-json", "", "write a Perfetto/Chrome trace-event JSON cycle trace to this file (all designs, both runners)")
	goroutines := flag.Bool("goroutines", false, "use the goroutine-per-PE runner")
	parallel := flag.Int("parallel", 0, "lock-step compute-phase workers: 0/1 sequential, >1 shards the per-cycle PE loop, -1 = GOMAXPROCS (results are bit-identical)")
	flag.Parse()

	if err := run(*design, *stages, *values, *seed, *traceFlag, *goroutines, *traceJSON, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "systolicsim:", err)
		os.Exit(1)
	}
}

// wireCallback composes the optional ASCII waveform recorder with the
// cycle recorder's valid-token counter on the lock-step wire hook. ascii
// is nil unless -trace was given; the result is nil for goroutine runs
// (no global latch instant to snapshot).
func wireCallback(rec *obs.CycleRecorder, ascii *trace.Recorder, goroutines bool) func(cycle int, wires []systolic.Token) {
	if goroutines {
		return nil
	}
	count := rec.WireTrace()
	if ascii == nil {
		return count
	}
	wave := ascii.Callback()
	return func(cycle int, wires []systolic.Token) {
		wave(cycle, wires)
		count(cycle, wires)
	}
}

func run(design, stages, values int, seed int64, asciiTrace, goroutines bool, traceJSON string, parallel int) error {
	if asciiTrace {
		if goroutines {
			return fmt.Errorf("-trace needs the lock-step runner's global latch snapshots; drop -goroutines or use -trace-json, which works for both runners")
		}
		if design == 2 {
			return fmt.Errorf("-trace is unavailable for design 2: its broadcast bus is combinational, so there are no registered wires to snapshot; use -trace-json instead")
		}
	}
	if goroutines && parallel != 0 && parallel != 1 {
		return fmt.Errorf("-parallel shards the lock-step compute phase; the goroutine runner is already one goroutine per PE, so drop -goroutines")
	}
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(seed))
	runner := "lockstep"
	if goroutines {
		runner = "goroutines"
	}
	switch design {
	case 1, 2:
		inner := multistage.RandomUniform(rng, stages-2, values, 1, 10)
		g := multistage.SingleSourceSink(mp, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		want := multistage.SolveOptimal(mp, g)
		// The paper's eq (9) closed form for an (N+1)-stage graph with m
		// values per intermediate stage.
		puExpected := metrics.PUEq9(stages-1, values)
		if design == 1 {
			arr, err := pipearray.New(mats[:k-1], v)
			if err != nil {
				return err
			}
			// An explicit -parallel overrides the production threshold: the
			// simulator's arrays are tiny, and the point is to exercise (and
			// trace) the sharded schedule, not to win wall-clock time.
			arr.SetParallelism(parallel)
			arr.SetParallelThreshold(1)
			fmt.Printf("Design 1: %d PEs, %d matrix phases, %d iterations, %d wall cycles\n",
				arr.M, arr.K, arr.Iterations(), arr.WallCycles())
			reportWorkers(arr.LockstepWorkers(), goroutines)
			rec := obs.NewCycleRecorder(arr.M, arr.ObservedCycles())
			var ascii *trace.Recorder
			if asciiTrace {
				ascii = trace.NewRecorder(arr.WireNames())
			}
			out, res, err := arr.RunObserved(goroutines, wireCallback(rec, ascii, goroutines), rec.PETrace())
			if err != nil {
				return err
			}
			printASCII(ascii, res.Busy, res.Cycles)
			report(out[0], want.Cost, res.Busy)
			return exportTrace(traceJSON, rec, obs.ArrayMeta{
				Design: 1, Runner: runner, M: arr.M, K: arr.K, PUExpected: puExpected,
			})
		}
		arr, err := bcastarray.New(mats[:k-1], v)
		if err != nil {
			return err
		}
		arr.SetParallelism(parallel)
		arr.SetParallelThreshold(1)
		fmt.Printf("Design 2: %d PEs, %d matrix phases, %d iterations (no skew)\n", arr.M, arr.K, arr.Iterations())
		reportWorkers(arr.LockstepWorkers(), goroutines)
		rec := obs.NewCycleRecorder(arr.M, arr.ObservedCycles())
		var out []float64
		var busy []int
		if goroutines {
			out, busy = arr.RunGoroutinesObserved(rec.PETrace())
		} else {
			out, busy = arr.RunLockstepObserved(rec.PETrace())
		}
		report(out[0], want.Cost, busy)
		return exportTrace(traceJSON, rec, obs.ArrayMeta{
			Design: 2, Runner: runner, M: arr.M, K: arr.K, PUExpected: puExpected,
		})
	case 3:
		p := multistage.RandomNodeValued(rng, stages, values, 0, 10)
		arr, err := fbarray.New(p)
		if err != nil {
			return err
		}
		arr.SetParallelism(parallel)
		arr.SetParallelThreshold(1)
		fmt.Printf("Design 3: %d PEs, %d stages, %d iterations ((N+1)m)\n", arr.M, arr.N, arr.Iterations())
		reportWorkers(arr.LockstepWorkers(), goroutines)
		rec := obs.NewCycleRecorder(arr.M, arr.ObservedCycles())
		var ascii *trace.Recorder
		if asciiTrace {
			ascii = trace.NewRecorder(arr.WireNames())
		}
		res, err := arr.RunObserved(goroutines, wireCallback(rec, ascii, goroutines), rec.PETrace())
		if err != nil {
			return err
		}
		printASCII(ascii, res.Busy, arr.Iterations())
		want := p.SolvePath(mp)
		report(res.Cost, want.Cost, res.Busy)
		fmt.Printf("path:     %v (baseline %v)\n", res.Path, want.Nodes)
		return exportTrace(traceJSON, rec, obs.ArrayMeta{
			Design: 3, Runner: runner, M: arr.M, N: arr.N,
			PUExpected: metrics.PU(arr.SerialIterations(), arr.Iterations(), arr.M),
		})
	default:
		return fmt.Errorf("unknown design %d", design)
	}
}

// reportWorkers notes the sharded compute phase when it is engaged.
func reportWorkers(workers int, goroutines bool) {
	if !goroutines && workers > 1 {
		fmt.Printf("workers:  %d (sharded lock-step compute phase)\n", workers)
	}
}

// printASCII dumps the waveform and utilization profile when -trace
// recorded one.
func printASCII(ascii *trace.Recorder, busy []int, cycles int) {
	if ascii == nil {
		return
	}
	fmt.Println("cycle-by-cycle wire trace (dots are pipeline bubbles):")
	fmt.Print(ascii.Render(nil, 0, 0))
	fmt.Println("\nper-PE utilization:")
	fmt.Print(trace.BusyProfile(busy, cycles))
}

// exportTrace writes the Perfetto JSON when -trace-json was given.
func exportTrace(path string, rec *obs.CycleRecorder, meta obs.ArrayMeta) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.ExportPerfetto(f, rec, meta); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace:    %s (open in ui.perfetto.dev, or summarize with dptrace)\n", path)
	return nil
}

func report(got, want float64, busy []int) {
	status := "OK"
	if math.Abs(got-want) > 1e-9 {
		status = "MISMATCH"
	}
	fmt.Printf("result:   %g (baseline %g) %s\n", got, want, status)
	fmt.Printf("busy:     %v\n", busy)
}
