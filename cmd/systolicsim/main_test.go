package main

import "testing"

func TestRunAllDesigns(t *testing.T) {
	cases := []struct {
		name       string
		design     int
		goroutines bool
		trace      bool
	}{
		{"design1-lockstep", 1, false, false},
		{"design1-goroutines", 1, true, false},
		{"design1-trace", 1, false, true},
		{"design2-lockstep", 2, false, false},
		{"design2-goroutines", 2, true, false},
		{"design3-lockstep", 3, false, false},
		{"design3-goroutines", 3, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.design, 5, 3, 42, c.trace, c.goroutines); err != nil {
				t.Fatalf("design %d: %v", c.design, err)
			}
		})
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run(9, 5, 3, 42, false, false); err == nil {
		t.Error("unknown design accepted")
	}
}
