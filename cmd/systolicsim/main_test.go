package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunAllDesigns(t *testing.T) {
	cases := []struct {
		name       string
		design     int
		goroutines bool
		trace      bool
		parallel   int
	}{
		{"design1-lockstep", 1, false, false, 0},
		{"design1-goroutines", 1, true, false, 0},
		{"design1-trace", 1, false, true, 0},
		{"design1-parallel", 1, false, false, 2},
		{"design1-parallel-trace", 1, false, true, 2},
		{"design2-lockstep", 2, false, false, 0},
		{"design2-goroutines", 2, true, false, 0},
		{"design2-parallel", 2, false, false, 3},
		{"design3-lockstep", 3, false, false, 0},
		{"design3-goroutines", 3, true, false, 0},
		{"design3-trace", 3, false, true, 0},
		{"design3-parallel", 3, false, false, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.design, 5, 3, 42, c.trace, c.goroutines, "", c.parallel); err != nil {
				t.Fatalf("design %d: %v", c.design, err)
			}
		})
	}
}

// -parallel shards the lock-step compute phase, so combining it with the
// goroutine-per-PE runner must fail loudly.
func TestParallelRejectsGoroutines(t *testing.T) {
	if err := run(1, 5, 3, 42, false, true, "", 2); err == nil {
		t.Error("-parallel accepted with -goroutines")
	}
}

// TestTraceJSONAllDesigns covers the Perfetto export for every design
// under both runners: the file must exist, be valid JSON, and carry the
// required trace-event keys.
func TestTraceJSONAllDesigns(t *testing.T) {
	for _, design := range []int{1, 2, 3} {
		for _, goroutines := range []bool{false, true} {
			name := map[bool]string{false: "lockstep", true: "goroutines"}[goroutines]
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "trace.json")
				if err := run(design, 5, 3, 42, false, goroutines, path, 0); err != nil {
					t.Fatalf("design %d %s: %v", design, name, err)
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				var doc struct {
					TraceEvents []map[string]any  `json:"traceEvents"`
					OtherData   map[string]string `json:"otherData"`
				}
				if err := json.Unmarshal(raw, &doc); err != nil {
					t.Fatalf("design %d %s trace is not JSON: %v", design, name, err)
				}
				if len(doc.TraceEvents) == 0 {
					t.Fatalf("design %d %s: no trace events", design, name)
				}
				if doc.OtherData["runner"] != name {
					t.Errorf("runner metadata %q, want %q", doc.OtherData["runner"], name)
				}
				busy := 0
				for _, e := range doc.TraceEvents {
					if e["ph"] == "X" && e["name"] == "busy" {
						busy++
					}
				}
				if busy == 0 {
					t.Errorf("design %d %s: no busy spans", design, name)
				}
			})
		}
	}
}

// TestASCIITraceRejections: -trace must fail loudly, not silently ignore
// the flag, for the combinations it cannot serve.
func TestASCIITraceRejections(t *testing.T) {
	if err := run(2, 5, 3, 42, true, false, "", 0); err == nil {
		t.Error("-trace accepted for design 2")
	}
	if err := run(1, 5, 3, 42, true, true, "", 0); err == nil {
		t.Error("-trace accepted with -goroutines")
	}
	if err := run(3, 5, 3, 42, true, true, "", 0); err == nil {
		t.Error("-trace accepted with -goroutines on design 3")
	}
}

func TestRunUnknownDesign(t *testing.T) {
	if err := run(9, 5, 3, 42, false, false, "", 0); err == nil {
		t.Error("unknown design accepted")
	}
}
