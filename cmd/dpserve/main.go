// Command dpserve runs the long-lived DP-solving service: an HTTP/JSON
// endpoint that accepts internal/spec problem files, micro-batches
// concurrent Design-1 graph requests through one streamed pipelined
// array, caches results by canonical spec hash, and exports metrics.
//
// Usage:
//
//	dpserve -addr :8080
//	curl -s -X POST localhost:8080/solve -d '{"problem":"chain","dims":[30,35,15,5,10,20,25]}'
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /solve (spec.File in, solution JSON out), GET /healthz,
// GET /metrics (Prometheus text format), GET /debug/dptrace (recent
// request-lifecycle spans as Perfetto trace-event JSON), and — behind
// -pprof — the net/http/pprof profiler under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"systolicdp/internal/serve"
)

func main() {
	addr, grace, cfg := parseFlags(os.Args[1:])
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpserve:", err)
		os.Exit(1)
	}
	if err := run(ctx, ln, grace, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dpserve:", err)
		os.Exit(1)
	}
}

// parseFlags builds the listen address, drain grace, and server config
// from argv.
func parseFlags(args []string) (string, time.Duration, serve.Config) {
	fs := flag.NewFlagSet("dpserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "general-pool workers (0 = NumCPU)")
	queue := fs.Int("queue", 256, "bounded queue size (full queue answers 429)")
	window := fs.Duration("batch-window", 2*time.Millisecond, "micro-batch collection window for Design-1 graph requests")
	batchMax := fs.Int("batch-max", 16, "flush a micro-batch at this many instances (<=1 disables batching)")
	cacheSize := fs.Int("cache", 1024, "LRU result-cache entries (<0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request solve budget")
	traceSpans := fs.Int("trace-spans", 256, "request spans retained for /debug/dptrace")
	pprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	engineParallel := fs.Int("engine-parallel", 0, "lock-step engine compute-phase workers for streamed batch solves: 0/1 sequential, -1 = GOMAXPROCS")
	engineThreshold := fs.Int("engine-parallel-threshold", 0, "minimum PE count before the parallel compute phase engages (0 = engine default)")
	admit := fs.Bool("admit", false, "cycle-model admission control: shed requests predicted to miss their deadline with 429 + Retry-After")
	admitHeadroom := fs.Float64("admit-headroom", 1.2, "safety factor on predicted completion time (shed iff predicted*headroom > deadline)")
	drainGrace := fs.Duration("drain-grace", 3*time.Second, "on SIGTERM, keep serving with /healthz=503 this long so load balancers stop routing before the listener closes")
	fs.Parse(args)
	return *addr, *drainGrace, serve.Config{
		Workers:                 *workers,
		QueueSize:               *queue,
		BatchWindow:             *window,
		BatchMax:                *batchMax,
		CacheSize:               *cacheSize,
		Timeout:                 *timeout,
		TraceSpans:              *traceSpans,
		EnablePprof:             *pprof,
		EngineParallelism:       *engineParallel,
		EngineParallelThreshold: *engineThreshold,
		AdmitEnabled:            *admit,
		AdmitHeadroom:           *admitHeadroom,
		Logger:                  slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
}

// run serves on ln until ctx is cancelled, then shuts down in load
// balancer friendly order: first flip /healthz to 503 (BeginDrain) while
// the listener keeps accepting for the grace window — so routers probing
// health stop sending new work before connections start being refused —
// then stop accepting, finish in-flight exchanges, and drain the solving
// queues. The listener and context are injected so tests can drive the
// whole lifecycle.
func run(ctx context.Context, ln net.Listener, grace time.Duration, cfg serve.Config) error {
	s := serve.New(cfg)
	srv := &http.Server{Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dpserve listening on %s", ln.Addr())
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("dpserve: draining (healthz 503 for %v)", grace)
	s.BeginDrain()
	if grace > 0 {
		timer := time.NewTimer(grace)
		select {
		case <-timer.C:
		case err := <-errc:
			// Listener died during the grace window; nothing left to drain
			// gracefully.
			timer.Stop()
			s.Close()
			return err
		}
	}

	log.Print("dpserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := srv.Shutdown(sctx)
	s.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
