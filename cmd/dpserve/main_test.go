package main

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	addr, grace, cfg := parseFlags(nil)
	if addr != ":8080" {
		t.Errorf("addr %q", addr)
	}
	if grace != 3*time.Second {
		t.Errorf("drain-grace default %v", grace)
	}
	if cfg.QueueSize != 256 || cfg.BatchMax != 16 || cfg.CacheSize != 1024 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.BatchWindow != 2*time.Millisecond || cfg.Timeout != 30*time.Second {
		t.Errorf("duration defaults wrong: %+v", cfg)
	}
	if cfg.TraceSpans != 256 || cfg.EnablePprof {
		t.Errorf("observability defaults wrong: %+v", cfg)
	}
	if cfg.Logger == nil {
		t.Error("no logger wired by default")
	}
	if cfg.EngineParallelism != 0 || cfg.EngineParallelThreshold != 0 {
		t.Errorf("engine-parallel defaults wrong: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	addr, grace, cfg := parseFlags([]string{
		"-addr", "127.0.0.1:9999", "-workers", "3", "-queue", "7",
		"-batch-window", "5ms", "-batch-max", "1", "-cache", "-1",
		"-timeout", "2s", "-trace-spans", "32", "-pprof",
		"-engine-parallel", "-1", "-engine-parallel-threshold", "64",
		"-drain-grace", "250ms",
	})
	if addr != "127.0.0.1:9999" {
		t.Errorf("addr %q", addr)
	}
	if grace != 250*time.Millisecond {
		t.Errorf("drain-grace override %v", grace)
	}
	if cfg.Workers != 3 || cfg.QueueSize != 7 || cfg.BatchMax != 1 || cfg.CacheSize != -1 {
		t.Errorf("overrides wrong: %+v", cfg)
	}
	if cfg.BatchWindow != 5*time.Millisecond || cfg.Timeout != 2*time.Second {
		t.Errorf("duration overrides wrong: %+v", cfg)
	}
	if cfg.TraceSpans != 32 || !cfg.EnablePprof {
		t.Errorf("observability overrides wrong: %+v", cfg)
	}
	if cfg.EngineParallelism != -1 || cfg.EngineParallelThreshold != 64 {
		t.Errorf("engine-parallel overrides wrong: %+v", cfg)
	}
}

// Regression: before the drain-grace fix, run() answered /healthz 200
// right up until the listener closed — a load balancer probing health
// had no window to stop routing, so in-flight-adjacent requests hit
// connection-refused. Now cancellation must flip /healthz to 503 while
// the listener still accepts, for the full grace window, before
// shutdown proceeds.
func TestRunDrainGraceFlipsHealthzBeforeListenerCloses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	_, _, cfg := parseFlags(nil)
	cfg.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, 1*time.Second, cfg) }()

	// Wait for the server to come up healthy.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()

	// During the grace window the listener must still accept and healthz
	// must answer 503 — that combination is the fix. Pre-fix we'd see 200
	// until the connection was refused outright.
	saw503 := false
	deadline = time.Now().Add(5 * time.Second)
	for !saw503 {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			if resp.StatusCode == http.StatusServiceUnavailable {
				saw503 = true
			}
			resp.Body.Close()
		} else {
			t.Fatalf("listener closed before /healthz ever answered 503: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 after cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned after cancellation")
	}
}
