package main

import (
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	addr, cfg := parseFlags(nil)
	if addr != ":8080" {
		t.Errorf("addr %q", addr)
	}
	if cfg.QueueSize != 256 || cfg.BatchMax != 16 || cfg.CacheSize != 1024 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.BatchWindow != 2*time.Millisecond || cfg.Timeout != 30*time.Second {
		t.Errorf("duration defaults wrong: %+v", cfg)
	}
	if cfg.TraceSpans != 256 || cfg.EnablePprof {
		t.Errorf("observability defaults wrong: %+v", cfg)
	}
	if cfg.Logger == nil {
		t.Error("no logger wired by default")
	}
	if cfg.EngineParallelism != 0 || cfg.EngineParallelThreshold != 0 {
		t.Errorf("engine-parallel defaults wrong: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	addr, cfg := parseFlags([]string{
		"-addr", "127.0.0.1:9999", "-workers", "3", "-queue", "7",
		"-batch-window", "5ms", "-batch-max", "1", "-cache", "-1",
		"-timeout", "2s", "-trace-spans", "32", "-pprof",
		"-engine-parallel", "-1", "-engine-parallel-threshold", "64",
	})
	if addr != "127.0.0.1:9999" {
		t.Errorf("addr %q", addr)
	}
	if cfg.Workers != 3 || cfg.QueueSize != 7 || cfg.BatchMax != 1 || cfg.CacheSize != -1 {
		t.Errorf("overrides wrong: %+v", cfg)
	}
	if cfg.BatchWindow != 5*time.Millisecond || cfg.Timeout != 2*time.Second {
		t.Errorf("duration overrides wrong: %+v", cfg)
	}
	if cfg.TraceSpans != 32 || !cfg.EnablePprof {
		t.Errorf("observability overrides wrong: %+v", cfg)
	}
	if cfg.EngineParallelism != -1 || cfg.EngineParallelThreshold != 64 {
		t.Errorf("engine-parallel overrides wrong: %+v", cfg)
	}
}
