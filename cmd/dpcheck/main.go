// Command dpcheck runs the randomized differential correctness harness:
// it generates seeded DP instances of every kind and cross-checks every
// applicable engine/design combination (sequential lock-step, parallel
// lock-step at several worker counts, goroutine-per-PE, and the
// sequential baselines), also asserting the paper's closed-form cycle
// and utilization counts. On the first mismatch it prints a minimized
// reproducer spec and exits nonzero.
//
// Usage:
//
//	dpcheck -n 500 -seed 1
//	dpcheck -quick                 # CI smoke: fewer, smaller instances
//	dpcheck -kinds graph,dtw -v
//	dpcheck -replay repro.json     # re-run a printed reproducer
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"systolicdp/internal/check"
)

func main() {
	var (
		n      = flag.Int("n", 200, "number of random instances to check")
		seed   = flag.Int64("seed", 1, "generator seed (same seed, same instances)")
		kinds  = flag.String("kinds", "", "comma-separated instance kinds (default: all of "+strings.Join(check.Kinds(), ",")+")")
		quick  = flag.Bool("quick", false, "CI smoke mode: 60 small instances, workers {1,2}")
		replay = flag.String("replay", "", "re-check a reproducer JSON file instead of generating")
		verb   = flag.Bool("v", false, "print per-instance progress")
	)
	flag.Parse()

	workers := []int{1, 2, runtime.NumCPU()}
	if *quick {
		workers = []int{1, 2}
	}

	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			fatalf("dpcheck: %v", err)
		}
		ms, err := check.Replay(data, workers)
		if err != nil {
			fatalf("dpcheck: %v", err)
		}
		for _, m := range ms {
			fmt.Fprintln(os.Stderr, "MISMATCH:", m.Error())
		}
		if len(ms) > 0 {
			os.Exit(1)
		}
		fmt.Println("dpcheck: reproducer passes (bug fixed or environment-dependent)")
		return
	}

	opts := check.Options{
		N:           *n,
		Seed:        *seed,
		Workers:     workers,
		StopOnFirst: true,
	}
	if *quick {
		opts.N = 60
		opts.Gen = check.GenConfig{MaxStages: 5, MaxM: 4, MaxLen: 8, MaxChain: 6, MaxVars: 5}
	}
	if *kinds != "" {
		opts.Kinds = strings.Split(*kinds, ",")
	}
	if *verb {
		opts.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "dpcheck: %d/%d instances\n", done, total)
			}
		}
	}

	rep, err := check.Run(opts)
	if err != nil {
		fatalf("dpcheck: %v", err)
	}
	if !rep.OK() {
		first := rep.Mismatches[0]
		fmt.Fprintln(os.Stderr, "MISMATCH:", first.Error())
		fmt.Fprintln(os.Stderr, "minimizing...")
		min := check.Minimize(first.Instance, workers)
		ms, _ := check.Check(min, workers)
		for _, m := range ms {
			fmt.Fprintln(os.Stderr, "minimized mismatch:", m.Error())
		}
		fmt.Println(check.Reproducer(min))
		fmt.Fprintf(os.Stderr, "dpcheck: FAIL: %d mismatch(es) after %d instances, %d comparisons\n",
			len(rep.Mismatches), rep.Instances, rep.Combos)
		os.Exit(1)
	}
	fmt.Printf("dpcheck: OK: %d instances, %d comparisons, 0 mismatches (seed=%d, workers=%v)\n",
		rep.Instances, rep.Combos, *seed, workers)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
