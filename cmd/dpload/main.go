// Command dpload is the closed-loop load generator for dpserve: it
// drives a ramped request rate of randomized spec instances (the
// internal/check generator's mix) at a solving service, tallies
// responses by status, measures success-latency percentiles and
// goodput, and writes a machine-readable report.
//
// Against an external server:
//
//	dpload -addr http://localhost:8080 -rps 200 -duration 30s -out BENCH_5.json
//
// Self-contained (no -addr): dpload starts an in-process dpserve on a
// loopback port, probes its capacity with a short closed-loop burst,
// then drives it at -overload times the measured capacity. With
// -compare it runs the identical workload twice — admission control off,
// then on — which is the experiment behind the EXPERIMENTS.md overload
// table:
//
//	dpload -duration 10s -compare -out BENCH_5.json
//
// With -compare-batch it instead runs the identical mixed-kind workload
// with micro-batching off (BatchMax 1: every kind solves one-at-a-time on
// the general pool) and then on (same-shape concurrent requests share one
// kernel sweep), with the result cache disabled in both phases, and
// reports per-kind goodput plus per-kind flush occupancy — the experiment
// behind the EXPERIMENTS.md batching table:
//
//	dpload -duration 10s -compare-batch -keys 64 -out BENCH_8.json
//
// The load loop is closed: at most -conc requests are in flight, and
// pacing slots that find every lane busy are counted as client-side
// drops rather than queued without bound. That keeps dpload itself from
// becoming an unbounded buffer in front of the server under overload —
// the same discipline the paper's fixed-length pipeline imposes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strconv"

	"systolicdp/internal/check"
	"systolicdp/internal/promtext"
	"systolicdp/internal/route"
	"systolicdp/internal/serve"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpload:", err)
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dpload:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	addr     string        // target base URL; empty = in-process server
	duration time.Duration // measured window per run
	rps      float64       // target request rate; 0 = probe capacity and use overload x it
	overload float64       // auto-rate multiplier on probed capacity
	ramp     float64       // leading fraction of the window spent ramping up to the target rate
	conc     int           // closed-loop bound: max in-flight requests
	mix      []string      // instance kinds to generate
	scale    int           // instance-size multiplier on the generator defaults
	seed     int64         // generator seed (runs are reproducible)
	keys     int           // >0: draw requests from a fixed pool of this many distinct specs (cache hits exist)
	out          string // report path; empty = stdout only
	compare      bool   // in-process only: run admission off then on
	compareBatch bool   // in-process only: run micro-batching off then on

	// Scaling mode (in-process only): run the same workload through an
	// in-process dprouter over each of these fleet sizes.
	replicas []int
	ablate   bool // rerun the largest fleet with random placement (affinity ablation)

	// In-process server knobs (ignored with -addr).
	workers       int
	timeout       time.Duration
	cache         int // per-replica LRU entries (0 = server default, <0 disables)
	batchMax      int // micro-batch size cap (0 = server default, 1 disables batching)
	admit         bool
	admitHeadroom float64
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("dpload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target server base URL (empty: start an in-process dpserve)")
	duration := fs.Duration("duration", 10*time.Second, "measured load window per run")
	rps := fs.Float64("rps", 0, "target request rate (0: probe capacity, drive at -overload x it)")
	overload := fs.Float64("overload", 2, "auto-rate multiplier on probed capacity when -rps is 0")
	ramp := fs.Float64("ramp", 0.2, "fraction of the window spent ramping linearly up to the target rate")
	conc := fs.Int("conc", 64, "closed-loop concurrency bound (max in-flight requests)")
	mix := fs.String("mix", strings.Join(check.Kinds(), ","), "comma-separated instance kinds to generate")
	scale := fs.Int("scale", 1, "instance-size multiplier on the generator's default bounds (heavier solves per request)")
	seed := fs.Int64("seed", 1, "instance-generator seed")
	keys := fs.Int("keys", 0, "draw requests from a fixed pool of this many distinct specs instead of a fresh spec per request (0 = fresh; >0 makes result-cache hits possible)")
	out := fs.String("out", "", "write the JSON report here as well as stdout")
	compare := fs.Bool("compare", false, "in-process only: run the workload with admission off, then on")
	compareBatch := fs.Bool("compare-batch", false, "in-process only: run the workload with micro-batching off (BatchMax 1), then on; the result cache is disabled so repeat keys cannot mask batching")
	replicasFlag := fs.String("replicas", "", "in-process scaling mode: comma-separated fleet sizes (e.g. 1,2,4,8); each size runs the identical workload through an in-process dprouter over that many dpserve replicas")
	ablate := fs.Bool("ablate-random", false, "scaling mode: rerun the largest fleet with random (non-affine) placement as the cache-affinity ablation")
	workers := fs.Int("workers", 0, "in-process server: general-pool workers (0 = NumCPU)")
	timeout := fs.Duration("timeout", 2*time.Second, "in-process server: per-request solve budget (the deadline admission prices against)")
	cache := fs.Int("cache", 0, "in-process server: per-replica LRU result-cache entries (0 = server default, negative disables)")
	batchMax := fs.Int("batch-max", 0, "in-process server: micro-batch size cap (0 = server default, 1 disables batching)")
	admit := fs.Bool("admit", false, "in-process server: enable cycle-model admission control (single-run mode)")
	admitHeadroom := fs.Float64("admit-headroom", 1.2, "in-process server: admission safety factor")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	var fleet []int
	if *replicasFlag != "" {
		for _, f := range strings.Split(*replicasFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return config{}, fmt.Errorf("bad -replicas entry %q (want positive fleet sizes like 1,2,4,8)", f)
			}
			fleet = append(fleet, n)
		}
	}
	kinds := strings.Split(*mix, ",")
	known := map[string]bool{}
	for _, k := range check.Kinds() {
		known[k] = true
	}
	for i, k := range kinds {
		kinds[i] = strings.TrimSpace(k)
		if !known[kinds[i]] {
			return config{}, fmt.Errorf("unknown mix kind %q (have %s)", kinds[i], strings.Join(check.Kinds(), ","))
		}
	}
	if *compare && *addr != "" {
		return config{}, fmt.Errorf("-compare needs the in-process server (drop -addr)")
	}
	if *compareBatch && *addr != "" {
		return config{}, fmt.Errorf("-compare-batch needs the in-process server (drop -addr)")
	}
	if *compareBatch && *compare {
		return config{}, fmt.Errorf("-compare and -compare-batch are separate experiments; pick one")
	}
	if *compareBatch && len(fleet) > 0 {
		return config{}, fmt.Errorf("-replicas and -compare-batch are separate experiments; pick one")
	}
	if len(fleet) > 0 && *addr != "" {
		return config{}, fmt.Errorf("-replicas scaling mode needs the in-process fleet (drop -addr)")
	}
	if len(fleet) > 0 && *compare {
		return config{}, fmt.Errorf("-replicas and -compare are separate experiments; pick one")
	}
	if *ablate && len(fleet) == 0 {
		return config{}, fmt.Errorf("-ablate-random needs -replicas")
	}
	return config{
		addr:     *addr,
		duration: *duration,
		rps:      *rps,
		overload: *overload,
		ramp:     *ramp,
		conc:     *conc,
		mix:      kinds,
		scale:    *scale,
		seed:     *seed,
		keys:     *keys,
		out:          *out,
		compare:      *compare,
		compareBatch: *compareBatch,
		replicas:     fleet,
		ablate:       *ablate,

		workers:       *workers,
		timeout:       *timeout,
		cache:         *cache,
		batchMax:      *batchMax,
		admit:         *admit,
		admitHeadroom: *admitHeadroom,
	}, nil
}

// specBody is one marshalled instance tagged with its problem kind, so
// the load loop can tally outcomes per kind without re-parsing JSON.
type specBody struct {
	kind string
	raw  []byte
}

// bodies is a concurrency-safe stream of marshalled spec instances drawn
// from the check generator. Instances the wire format cannot express
// (±Inf single-edge graphs) are skipped and regenerated. With a key
// pool (keyed), next samples uniformly from a fixed set of distinct
// specs instead, so the same canonical hashes recur and server-side
// result caches have something to hit.
type bodies struct {
	mu   sync.Mutex
	rng  *rand.Rand
	mix  []string
	gcfg check.GenConfig
	pool []specBody // nil = fresh instance per request
}

func newBodies(seed int64, mix []string, scale int) *bodies {
	if scale < 1 {
		scale = 1
	}
	// The generator's defaults are sized for fast differential checks;
	// scaling them up makes each request a meaningful unit of solve work
	// so overload is reachable at sane request rates.
	gcfg := check.GenConfig{
		MaxStages: 7 * scale,
		MaxM:      6 * scale,
		MaxLen:    12 * scale,
		MaxChain:  8 * scale,
		MaxVars:   6 * scale,
	}
	return &bodies{rng: rand.New(rand.NewSource(seed)), mix: mix, gcfg: gcfg}
}

// keyed freezes the generator into a pool of n distinct specs; next then
// samples from the pool. Same seed + mix + scale + n = same pool, so
// every run in a comparison faces the same key population.
func (b *bodies) keyed(n int) *bodies {
	b.pool = make([]specBody, n)
	for i := range b.pool {
		b.pool[i] = b.generate()
	}
	return b
}

func (b *bodies) next() specBody {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pool != nil {
		return b.pool[b.rng.Intn(len(b.pool))]
	}
	return b.generate()
}

// generate draws one fresh marshalled instance. Callers hold b.mu (or
// have exclusive ownership during pool construction).
func (b *bodies) generate() specBody {
	for {
		in := check.GenKind(b.rng, b.mix[b.rng.Intn(len(b.mix))], b.gcfg)
		if in.File.Validate() != nil {
			continue
		}
		raw, err := in.File.Marshal()
		if err != nil {
			continue
		}
		return specBody{kind: in.Kind(), raw: raw}
	}
}

// RunReport is the measured outcome of one load run.
type RunReport struct {
	Name        string         `json:"name"`
	TargetRPS   float64        `json:"target_rps"`
	Duration    string         `json:"duration"`
	Sent        int64          `json:"sent"`
	Dropped     int64          `json:"dropped_client_side"` // pacing slots with no free lane
	Statuses    map[string]int `json:"statuses"`
	RetryAfter  int64          `json:"retry_after_headers"` // 429s carrying Retry-After
	NetErrors   int64          `json:"net_errors"`
	GoodputRPS  float64        `json:"goodput_rps"` // 200s per second of window
	P50ms       float64        `json:"p50_ms"`      // latency of 200s
	P95ms       float64        `json:"p95_ms"`
	P99ms       float64        `json:"p99_ms"`
	ShedP50ms   float64        `json:"shed_p50_ms"` // latency of 429s (0 if none)
	AdmitConfig string         `json:"admit,omitempty"`
	BatchConfig string         `json:"batch,omitempty"` // compare-batch provenance

	// Per-kind goodput: 200s per second of window, keyed by the problem
	// kind of the REQUEST (the generator's tag, not the server's view) —
	// the denominator every batching gain in EXPERIMENTS.md is quoted in.
	OKByKind      map[string]int64   `json:"ok_by_kind,omitempty"`
	GoodputByKind map[string]float64 `json:"goodput_by_kind_rps,omitempty"`

	// Batching observability, scraped from the target's /metrics after
	// the window (in-process runs only): flush count and mean instances
	// per flush, keyed by execution-path kind (graph-stream, dtw-batch,
	// chain-batch, nonserial-batch).
	BatchFlushes       map[string]float64 `json:"batch_flushes,omitempty"`
	BatchOccupancyMean map[string]float64 `json:"batch_occupancy_mean,omitempty"`

	// Cache observability (from the X-Dpserve-Cache response header,
	// which proxies pass through; zero when the pool is fresh-per-request
	// and hits are impossible).
	CacheHits    int64   `json:"cache_hits,omitempty"`
	CacheMisses  int64   `json:"cache_misses,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"` // hits / (hits+misses) among 200s

	// Scaling-mode provenance.
	Replicas int    `json:"replicas,omitempty"` // fleet size behind the router
	Policy   string `json:"policy,omitempty"`   // router placement policy
}

// Report is the full dpload output.
type Report struct {
	GeneratedBy string      `json:"generated_by"`
	Target      string      `json:"target"`
	Mix         []string    `json:"mix"`
	Seed        int64       `json:"seed"`
	Keys        int         `json:"keys,omitempty"` // fixed key-pool size (0 = fresh spec per request)
	CapacityRPS float64     `json:"probed_capacity_rps,omitempty"`
	Runs        []RunReport `json:"runs"`
}

// loadRun drives one measured window against base and tallies outcomes.
func loadRun(base string, cfg config, name string, targetRPS float64, gen *bodies) RunReport {
	client := &http.Client{Timeout: cfg.timeout + 10*time.Second}
	type sample struct {
		status     int
		kind       string
		latency    time.Duration
		retryAfter bool
		cache      string // X-Dpserve-Cache: "hit", "miss", or ""
	}
	samples := make(chan sample, cfg.conc)
	launch := make(chan specBody, cfg.conc)
	var sent, dropped, netErrs atomic.Int64

	var workers sync.WaitGroup
	for i := 0; i < cfg.conc; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for body := range launch {
				start := time.Now()
				resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(body.raw))
				if err != nil {
					netErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				samples <- sample{
					status:     resp.StatusCode,
					kind:       body.kind,
					latency:    time.Since(start),
					retryAfter: resp.Header.Get("Retry-After") != "",
					cache:      resp.Header.Get("X-Dpserve-Cache"),
				}
			}
		}()
	}

	// Collector drains samples so workers never block on the channel.
	statuses := map[string]int{}
	okByKind := map[string]int64{}
	var okLat, shedLat []time.Duration
	var retryAfter, cacheHits, cacheMisses int64
	var collect sync.WaitGroup
	collect.Add(1)
	go func() {
		defer collect.Done()
		for s := range samples {
			statuses[fmt.Sprintf("%d", s.status)]++
			switch s.status {
			case http.StatusOK:
				okLat = append(okLat, s.latency)
				okByKind[s.kind]++
				switch s.cache {
				case "hit":
					cacheHits++
				case "miss":
					cacheMisses++
				}
			case http.StatusTooManyRequests:
				shedLat = append(shedLat, s.latency)
				if s.retryAfter {
					retryAfter++
				}
			}
		}
	}()

	// Pacer: accumulate launch credit at the (ramping) target rate and
	// spend the deficit each tick — per-request sleeps cannot reach
	// thousands of rps through the scheduler's sleep granularity. A slot
	// that finds every lane busy is a client-side drop, keeping the loop
	// closed rather than buffering unbounded offered load.
	start := time.Now()
	rampDur := time.Duration(cfg.ramp * float64(cfg.duration))
	const tick = 2 * time.Millisecond
	due := 0.0
	last := start
	for {
		now := time.Now()
		elapsed := now.Sub(start)
		if elapsed >= cfg.duration {
			break
		}
		rate := targetRPS
		if rampDur > 0 && elapsed < rampDur {
			frac := float64(elapsed) / float64(rampDur)
			rate = targetRPS * (0.1 + 0.9*frac)
		}
		due += rate * now.Sub(last).Seconds()
		last = now
		for due >= 1 {
			due--
			select {
			case launch <- gen.next():
				sent.Add(1)
			default:
				dropped.Add(1)
			}
		}
		time.Sleep(tick)
	}
	close(launch)
	workers.Wait()
	close(samples)
	collect.Wait()
	window := time.Since(start)

	pct := func(lats []time.Duration, p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	hitRate := 0.0
	if cacheHits+cacheMisses > 0 {
		hitRate = float64(cacheHits) / float64(cacheHits+cacheMisses)
	}
	goodByKind := map[string]float64{}
	for k, n := range okByKind {
		goodByKind[k] = float64(n) / window.Seconds()
	}
	return RunReport{
		Name:         name,
		TargetRPS:    targetRPS,
		Duration:     window.Round(time.Millisecond).String(),
		Sent:         sent.Load(),
		Dropped:      dropped.Load(),
		Statuses:     statuses,
		RetryAfter:   retryAfter,
		NetErrors:    netErrs.Load(),
		GoodputRPS:   float64(statuses["200"]) / window.Seconds(),
		P50ms:        pct(okLat, 0.50),
		P95ms:        pct(okLat, 0.95),
		P99ms:        pct(okLat, 0.99),
		ShedP50ms:    pct(shedLat, 0.50),
		CacheHits:    cacheHits,
		CacheMisses:  cacheMisses,
		CacheHitRate: hitRate,

		OKByKind:      okByKind,
		GoodputByKind: goodByKind,
	}
}

// scrapeBatching reads the target's /metrics exposition and extracts the
// batching view: flush counts and mean flush occupancy per execution-path
// kind. Errors are swallowed (nil maps) — an external target may not be a
// dpserve replica at all.
func scrapeBatching(base string) (flushes, occMean map[string]float64) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil
	}
	fams, err := promtext.Parse(string(raw))
	if err != nil {
		return nil, nil
	}
	f := fams["dpserve_batch_occupancy"]
	if f == nil {
		return nil, nil
	}
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, s := range f.Samples {
		switch s.Name {
		case "dpserve_batch_occupancy_sum":
			sums[s.Labels["kind"]] = s.Value
		case "dpserve_batch_occupancy_count":
			counts[s.Labels["kind"]] = s.Value
		}
	}
	flushes = map[string]float64{}
	occMean = map[string]float64{}
	for kind, c := range counts {
		if c == 0 {
			continue
		}
		flushes[kind] = c
		occMean[kind] = sums[kind] / c
	}
	return flushes, occMean
}

// probeCapacity measures the server's sustainable rate with a short
// flat-out closed loop (a few lanes, no pacing): completed requests per
// second approximate capacity under the given mix.
func probeCapacity(base string, cfg config, gen *bodies) float64 {
	const lanes = 4
	window := cfg.duration / 4
	if window < time.Second {
		window = time.Second
	}
	if window > 5*time.Second {
		window = 5 * time.Second
	}
	client := &http.Client{Timeout: cfg.timeout + 10*time.Second}
	var done atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, err := client.Post(base+"/solve", "application/json", bytes.NewReader(gen.next().raw))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	rps := float64(done.Load()) / window.Seconds()
	if rps < 1 {
		rps = 1
	}
	return rps
}

// inprocServer starts a loopback dpserve and returns its base URL and a
// shutdown func.
func inprocServer(cfg config, admit bool) (string, func(), error) {
	s := serve.New(serve.Config{
		Workers:       cfg.workers,
		Timeout:       cfg.timeout,
		CacheSize:     cfg.cache,
		BatchMax:      cfg.batchMax,
		AdmitEnabled:  admit,
		AdmitHeadroom: cfg.admitHeadroom,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// inprocFleet starts n loopback dpserve replicas behind an in-process
// dprouter and returns the router's base URL and a shutdown func that
// tears the whole stack down (router first, then replicas).
func inprocFleet(cfg config, n int, policy string) (string, func(), error) {
	var repStops []func()
	var bases []string
	fail := func(err error) (string, func(), error) {
		for _, s := range repStops {
			s()
		}
		return "", nil, err
	}
	for i := 0; i < n; i++ {
		base, stop, err := inprocServer(cfg, cfg.admit)
		if err != nil {
			return fail(err)
		}
		bases = append(bases, base)
		repStops = append(repStops, stop)
	}
	rt, err := route.New(route.Config{
		Replicas:       bases,
		Policy:         policy,
		HealthInterval: 100 * time.Millisecond,
		Deadline:       cfg.timeout,
	})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return fail(err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		rt.Close()
		for _, s := range repStops {
			s()
		}
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runScaling is the fleet-size experiment: the identical keyed workload
// through an in-process dprouter at each size in cfg.replicas, with the
// offered rate fixed across sizes (probed once on the first fleet). A
// final optional run repeats the largest fleet with random placement —
// same replicas, no shard affinity — as the ablation that shows the
// cache-hit collapse consistent hashing prevents.
func runScaling(cfg config, report *Report, stdout io.Writer) error {
	gen := func(seed int64) *bodies {
		b := newBodies(seed, cfg.mix, cfg.scale)
		if cfg.keys > 0 {
			b = b.keyed(cfg.keys)
		}
		return b
	}
	target := cfg.rps
	type fleetRun struct {
		n      int
		policy string
	}
	runs := make([]fleetRun, 0, len(cfg.replicas)+1)
	maxN := 0
	for _, n := range cfg.replicas {
		runs = append(runs, fleetRun{n, route.PolicyHash})
		if n > maxN {
			maxN = n
		}
	}
	if cfg.ablate {
		runs = append(runs, fleetRun{maxN, route.PolicyRandom})
	}
	for _, fr := range runs {
		base, stop, err := inprocFleet(cfg, fr.n, fr.policy)
		if err != nil {
			return err
		}
		if target == 0 {
			report.CapacityRPS = probeCapacity(base, cfg, gen(cfg.seed+1000))
			target = report.CapacityRPS * cfg.overload
		}
		name := fmt.Sprintf("replicas-%d", fr.n)
		if fr.policy != route.PolicyHash {
			name += "-" + fr.policy
		}
		fmt.Fprintf(stdout, "dpload: %s (%s) at %.0f rps for %v against %s\n", name, fr.policy, target, cfg.duration, base)
		rr := loadRun(base, cfg, name, target, gen(cfg.seed))
		rr.Replicas = fr.n
		rr.Policy = fr.policy
		report.Runs = append(report.Runs, rr)
		stop()
	}
	return nil
}

func run(cfg config, stdout io.Writer) error {
	report := Report{
		GeneratedBy: "dpload",
		Target:      cfg.addr,
		Mix:         cfg.mix,
		Seed:        cfg.seed,
		Keys:        cfg.keys,
	}
	if cfg.addr == "" {
		report.Target = "in-process"
	}

	if len(cfg.replicas) > 0 {
		report.Target = "in-process fleet (dprouter)"
		if err := runScaling(cfg, &report, stdout); err != nil {
			return err
		}
		return writeReport(&report, cfg.out, stdout)
	}

	// Each measured run gets a fresh generator with the same seed, so
	// every phase of a comparison faces byte-identical workloads.
	type phase struct {
		name  string
		admit bool
		cfg   config // per-phase in-process server knobs
	}
	phases := []phase{{"run", cfg.admit, cfg}}
	if cfg.compare {
		phases = []phase{{"admit-off", false, cfg}, {"admit-on", true, cfg}}
	}
	if cfg.compareBatch {
		// Identical workload, batching off (BatchMax 1 routes every kind to
		// the general pool) then on. The result cache is forced off in BOTH
		// phases: with a -keys pool, repeat keys would otherwise resolve as
		// cache hits and never reach the batcher, flattering neither side.
		off, on := cfg, cfg
		off.batchMax, off.cache = 1, -1
		on.batchMax, on.cache = cfg.batchMax, -1
		phases = []phase{{"batch-off", cfg.admit, off}, {"batch-on", cfg.admit, on}}
	}

	gen := func(seed int64) *bodies {
		b := newBodies(seed, cfg.mix, cfg.scale)
		if cfg.keys > 0 {
			b = b.keyed(cfg.keys)
		}
		return b
	}
	target := cfg.rps
	for _, ph := range phases {
		base := cfg.addr
		stop := func() {}
		if base == "" {
			var err error
			base, stop, err = inprocServer(ph.cfg, ph.admit)
			if err != nil {
				return err
			}
		}
		if target == 0 {
			// Probe once, on the first phase's server, and reuse the rate so
			// every phase sees the same offered load.
			report.CapacityRPS = probeCapacity(base, cfg, gen(cfg.seed+1000))
			target = report.CapacityRPS * cfg.overload
		}
		fmt.Fprintf(stdout, "dpload: %s at %.0f rps for %v against %s\n", ph.name, target, cfg.duration, base)
		rr := loadRun(base, cfg, ph.name, target, gen(cfg.seed))
		if cfg.addr == "" {
			rr.AdmitConfig = fmt.Sprintf("enabled=%v headroom=%g", ph.admit, cfg.admitHeadroom)
			rr.BatchFlushes, rr.BatchOccupancyMean = scrapeBatching(base)
		}
		if cfg.compareBatch {
			bm := ph.cfg.batchMax
			if bm == 0 {
				bm = 16 // serve.Config default
			}
			rr.BatchConfig = fmt.Sprintf("batch_max=%d cache=off", bm)
		}
		report.Runs = append(report.Runs, rr)
		stop()
	}
	return writeReport(&report, cfg.out, stdout)
}

// writeReport pretty-prints the report to stdout and, when out is set,
// persists it there too.
func writeReport(report *Report, out string, stdout io.Writer) error {
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(raw))
	if out != "" {
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
