package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-duration", "3s", "-rps", "50", "-mix", "chain, dtw", "-compare"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.duration != 3*time.Second || cfg.rps != 50 || !cfg.compare {
		t.Errorf("parsed config = %+v", cfg)
	}
	if len(cfg.mix) != 2 || cfg.mix[0] != "chain" || cfg.mix[1] != "dtw" {
		t.Errorf("mix = %v, want [chain dtw] (whitespace trimmed)", cfg.mix)
	}

	if _, err := parseFlags([]string{"-mix", "nosuchkind"}); err == nil {
		t.Error("unknown mix kind accepted")
	}
	if _, err := parseFlags([]string{"-compare", "-addr", "http://x"}); err == nil {
		t.Error("-compare with -addr accepted (needs the in-process server)")
	}
}

func TestParseFlagsScalingMode(t *testing.T) {
	cfg, err := parseFlags([]string{"-replicas", "1, 2,4,8", "-keys", "500", "-cache", "256", "-ablate-random"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.replicas) != 4 || cfg.replicas[0] != 1 || cfg.replicas[3] != 8 {
		t.Errorf("replicas = %v", cfg.replicas)
	}
	if cfg.keys != 500 || cfg.cache != 256 || !cfg.ablate {
		t.Errorf("scaling knobs = %+v", cfg)
	}

	if _, err := parseFlags([]string{"-replicas", "0"}); err == nil {
		t.Error("zero fleet size accepted")
	}
	if _, err := parseFlags([]string{"-replicas", "2", "-addr", "http://x"}); err == nil {
		t.Error("-replicas with -addr accepted")
	}
	if _, err := parseFlags([]string{"-replicas", "2", "-compare"}); err == nil {
		t.Error("-replicas with -compare accepted")
	}
	if _, err := parseFlags([]string{"-ablate-random"}); err == nil {
		t.Error("-ablate-random without -replicas accepted")
	}
}

// A keyed pool must be a fixed set of distinct specs, reproducible from
// the seed — that is what makes cache-hit comparisons across runs fair.
func TestKeyedBodiesPool(t *testing.T) {
	a := newBodies(42, []string{"chain", "dtw"}, 2).keyed(50)
	b := newBodies(42, []string{"chain", "dtw"}, 2).keyed(50)
	for i := range a.pool {
		if string(a.pool[i].raw) != string(b.pool[i].raw) {
			t.Fatalf("pool entry %d differs across same-seed generators", i)
		}
		if a.pool[i].kind == "" {
			t.Fatalf("pool entry %d has no kind tag", i)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		seen[string(a.next().raw)] = true
	}
	if len(seen) > 50 {
		t.Fatalf("keyed generator produced %d distinct bodies, pool is 50", len(seen))
	}
	if len(seen) < 25 {
		t.Fatalf("only %d distinct bodies in 500 draws from a 50-key pool", len(seen))
	}
}

// The generator stream only yields wire-valid bodies, and scaling keeps
// them valid.
func TestBodiesAreValidSpecs(t *testing.T) {
	gen := newBodies(7, []string{"graph", "chain", "nonserial"}, 3)
	for i := 0; i < 30; i++ {
		body := gen.next()
		var v map[string]any
		if err := json.Unmarshal(body.raw, &v); err != nil {
			t.Fatalf("body %d is not JSON: %v\n%s", i, err, body.raw)
		}
		if v["problem"] == "" {
			t.Fatalf("body %d has no problem kind: %s", i, body.raw)
		}
		if v["problem"] != body.kind {
			t.Fatalf("body %d kind tag %q != wire problem %q", i, body.kind, v["problem"])
		}
	}
}

// End to end: a short in-process run produces a report with traffic in
// it and writes the JSON artifact.
func TestDploadInProcessSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	cfg, err := parseFlags([]string{
		"-duration", "1s", "-rps", "100", "-conc", "8",
		"-mix", "chain,dtw", "-timeout", "2s", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a Report: %v\n%s", err, raw)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("report has %d runs, want 1", len(rep.Runs))
	}
	rr := rep.Runs[0]
	if rr.Sent == 0 || rr.Statuses["200"] == 0 {
		t.Errorf("no successful traffic recorded: %+v", rr)
	}
	if rr.NetErrors != 0 {
		t.Errorf("net errors against in-process server: %+v", rr)
	}
}

// Scaling mode end to end: two fleet sizes through the in-process
// router, keyed workload, cache hits observed through the proxy hop.
func TestDploadScalingSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	cfg, err := parseFlags([]string{
		"-duration", "1s", "-rps", "80", "-conc", "8",
		"-mix", "chain,dtw", "-keys", "30", "-replicas", "1,2",
		"-timeout", "2s", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a Report: %v\n%s", err, raw)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("report has %d runs, want 2 (one per fleet size)", len(rep.Runs))
	}
	for i, rr := range rep.Runs {
		if rr.Replicas != cfg.replicas[i] || rr.Policy != "hash" {
			t.Errorf("run %d provenance wrong: %+v", i, rr)
		}
		if rr.Statuses["200"] == 0 {
			t.Errorf("run %d: no successful traffic: %+v", i, rr)
		}
		// 30 keys sampled hundreds of times: hits must appear, and the
		// X-Dpserve-Cache header must survive the proxy hop.
		if rr.CacheHits == 0 {
			t.Errorf("run %d: no cache hits observed through the router: %+v", i, rr)
		}
	}
}

// Batching comparison end to end: two phases (batch-off, batch-on) over
// the identical keyed mixed-kind workload, per-kind goodput tallied, and
// nonzero batch occupancy scraped for the batched kinds in the ON phase.
func TestDploadCompareBatchSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	cfg, err := parseFlags([]string{
		"-duration", "1500ms", "-rps", "120", "-conc", "16",
		"-mix", "chain,dtw", "-keys", "48", "-compare-batch",
		"-timeout", "2s", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a Report: %v\n%s", err, raw)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("report has %d runs, want 2 (batch-off, batch-on)", len(rep.Runs))
	}
	off, on := rep.Runs[0], rep.Runs[1]
	if off.Name != "batch-off" || on.Name != "batch-on" {
		t.Fatalf("phase names = %q, %q", off.Name, on.Name)
	}
	if !strings.Contains(off.BatchConfig, "batch_max=1") || !strings.Contains(on.BatchConfig, "batch_max=16") {
		t.Errorf("batch provenance = %q / %q", off.BatchConfig, on.BatchConfig)
	}
	for _, rr := range rep.Runs {
		if rr.Statuses["200"] == 0 {
			t.Fatalf("%s: no successful traffic: %+v", rr.Name, rr)
		}
		// Cache is forced off in both phases: nothing may report a hit.
		if rr.CacheHits != 0 {
			t.Errorf("%s: cache hits with the cache disabled: %+v", rr.Name, rr)
		}
		for _, kind := range []string{"chain", "dtw"} {
			if rr.OKByKind[kind] == 0 {
				t.Errorf("%s: no per-kind goodput recorded for %s: %v", rr.Name, kind, rr.OKByKind)
			}
		}
	}
	// The OFF phase routes everything to the pool: no flushes at all.
	if len(off.BatchFlushes) != 0 {
		t.Errorf("batch-off phase recorded flushes: %v", off.BatchFlushes)
	}
	// The ON phase must show both batched kinds flowing through kernels.
	for _, kind := range []string{"chain-batch", "dtw-batch"} {
		if off.BatchOccupancyMean[kind] != 0 {
			t.Errorf("batch-off shows %s occupancy", kind)
		}
		if on.BatchFlushes[kind] == 0 || on.BatchOccupancyMean[kind] < 1 {
			t.Errorf("batch-on phase: %s flushes=%v occupancy=%v, want >=1",
				kind, on.BatchFlushes[kind], on.BatchOccupancyMean[kind])
		}
	}
}
