package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-duration", "3s", "-rps", "50", "-mix", "chain, dtw", "-compare"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.duration != 3*time.Second || cfg.rps != 50 || !cfg.compare {
		t.Errorf("parsed config = %+v", cfg)
	}
	if len(cfg.mix) != 2 || cfg.mix[0] != "chain" || cfg.mix[1] != "dtw" {
		t.Errorf("mix = %v, want [chain dtw] (whitespace trimmed)", cfg.mix)
	}

	if _, err := parseFlags([]string{"-mix", "nosuchkind"}); err == nil {
		t.Error("unknown mix kind accepted")
	}
	if _, err := parseFlags([]string{"-compare", "-addr", "http://x"}); err == nil {
		t.Error("-compare with -addr accepted (needs the in-process server)")
	}
}

// The generator stream only yields wire-valid bodies, and scaling keeps
// them valid.
func TestBodiesAreValidSpecs(t *testing.T) {
	gen := newBodies(7, []string{"graph", "chain", "nonserial"}, 3)
	for i := 0; i < 30; i++ {
		raw := gen.next()
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("body %d is not JSON: %v\n%s", i, err, raw)
		}
		if v["problem"] == "" {
			t.Fatalf("body %d has no problem kind: %s", i, raw)
		}
	}
}

// End to end: a short in-process run produces a report with traffic in
// it and writes the JSON artifact.
func TestDploadInProcessSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	cfg, err := parseFlags([]string{
		"-duration", "1s", "-rps", "100", "-conc", "8",
		"-mix", "chain,dtw", "-timeout", "2s", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a Report: %v\n%s", err, raw)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("report has %d runs, want 1", len(rep.Runs))
	}
	rr := rep.Runs[0]
	if rr.Sent == 0 || rr.Statuses["200"] == 0 {
		t.Errorf("no successful traffic recorded: %+v", rr)
	}
	if rr.NetErrors != 0 {
		t.Errorf("net errors against in-process server: %+v", rr)
	}
}
