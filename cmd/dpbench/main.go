// Command dpbench measures the zero-alloc hot path against the
// reference engines it replaced, kind by kind, and gates the result:
// any monomorphized kernel that allocates in steady state fails the run
// (exit 1), so CI catches an accidental escape-to-heap the same way it
// catches a wrong answer.
//
//	dpbench -out BENCH_9.json          # full run (~1s per benchmark)
//	dpbench -quick                     # CI smoke (~50ms per benchmark)
//
// The report records baseline and fast ns/op, the speedup, and the fast
// path's allocs/op for each kind. Baselines are the interface-typed
// single-processor engines (dtw.Sequential, matchain.DP,
// nonserial.Eliminate, matrix.ChainVec) — the same references the
// differential checker diffs bitwise, so the speedups are for
// identical answers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"systolicdp/internal/align"
	"systolicdp/internal/dtw"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/semiring"
)

type kindReport struct {
	Kind       string  `json:"kind"`
	Shape      string  `json:"shape"`
	BaselineNs float64 `json:"baseline_ns_op"`
	FastNs     float64 `json:"fast_ns_op"`
	Speedup    float64 `json:"speedup"`
	FastAllocs float64 `json:"fast_allocs_op"`
}

type report struct {
	Bench string       `json:"bench"`
	Quick bool         `json:"quick"`
	Kinds []kindReport `json:"kinds"`
	Pass  bool         `json:"pass"` // every fast path at 0 allocs/op
}

func nsPerOp(f func(b *testing.B)) float64 {
	r := testing.Benchmark(f)
	return float64(r.NsPerOp())
}

func main() {
	out := flag.String("out", "BENCH_9.json", "report path")
	quick := flag.Bool("quick", false, "short benchtime for CI smoke runs")
	flag.Parse()
	testing.Init()
	if *quick {
		if err := flag.Set("test.benchtime", "50ms"); err != nil {
			fmt.Fprintln(os.Stderr, "dpbench:", err)
			os.Exit(1)
		}
	}

	rng := rand.New(rand.NewSource(9))
	series := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.Float64()*20 - 10
		}
		return s
	}

	rep := report{Bench: "BENCH_9 zero-alloc hot path", Quick: *quick, Pass: true}
	add := func(kind, shape string, baseline, fast func(b *testing.B), steady func()) {
		kr := kindReport{Kind: kind, Shape: shape}
		kr.BaselineNs = nsPerOp(baseline)
		kr.FastNs = nsPerOp(fast)
		if kr.FastNs > 0 {
			kr.Speedup = kr.BaselineNs / kr.FastNs
		}
		steady() // warm the shape pools before the allocation gate
		kr.FastAllocs = testing.AllocsPerRun(50, steady)
		if kr.FastAllocs != 0 {
			rep.Pass = false
		}
		rep.Kinds = append(rep.Kinds, kr)
		fmt.Printf("%-12s %-14s baseline %10.0f ns/op   fast %10.0f ns/op   %.2fx   %g allocs/op\n",
			kind, shape, kr.BaselineNs, kr.FastNs, kr.Speedup, kr.FastAllocs)
	}

	// DTW single solve: 256×256 lattice.
	x, y := series(256), series(256)
	add("dtw", "256x256",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dtw.Sequential(x, y, dtw.AbsDist); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dtw.SolveFast(x, y, nil); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _, _ = dtw.SolveFast(x, y, nil) })

	// DTW batch: 8 same-shape 128-point pairs through one sweep.
	pairs := make([]dtw.Pair, 8)
	for i := range pairs {
		pairs[i] = dtw.Pair{X: series(128), Y: series(128)}
	}
	dists := make([]float64, len(pairs))
	add("dtw-batch", "8x128x128",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dtw.SweepBatch(pairs, dtw.AbsDist); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dtw.SweepBatchFastInto(dists, pairs, nil); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _, _ = dtw.SweepBatchFastInto(dists, pairs, nil) })

	// Affine-gap alignment single solve: 256×256 lattice, three layers.
	ap := align.Params{Open: 3, Ext: 1}
	ax, ay := series(256), series(256)
	add("align", "256x256",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := align.Sequential(ax, ay, ap); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := align.SolveFast(ax, ay, ap); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _, _ = align.SolveFast(ax, ay, ap) })

	// Alignment batch: 8 same-shape 128-point pairs, one stacked lattice.
	apairs := make([]align.Pair, 8)
	for i := range apairs {
		apairs[i] = align.Pair{X: series(128), Y: series(128)}
	}
	acosts := make([]float64, len(apairs))
	add("align-batch", "8x128x128",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := align.SweepBatch(apairs, ap); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := align.SweepBatchFastInto(acosts, apairs, ap); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _, _ = align.SweepBatchFastInto(acosts, apairs, ap) })

	// Chain ordering: 24-matrix product.
	dims := make([]int, 25)
	for i := range dims {
		dims[i] = rng.Intn(40) + 1
	}
	flat := &matchain.Flat{}
	add("chain", "n=24",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matchain.DP(dims); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := flat.Solve(dims); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _ = flat.Solve(dims) })

	// Nonserial elimination: 12 stages, 8-value domains, named default op.
	doms := make([][]float64, 12)
	for i := range doms {
		doms[i] = series(8)
	}
	ch := &nonserial.Chain3{Domains: doms, G: nonserial.DefaultG, GName: nonserial.GNameDefault}
	add("nonserial", "12x8",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ch.Eliminate(); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := nonserial.EliminateFast(ch); err != nil {
					b.Fatal(err)
				}
			}
		},
		func() { _, _, _ = nonserial.EliminateFast(ch) })

	// Graph stream decomposition: min-plus product of five 32×32 stages.
	ms := make([]*matrix.Matrix, 5)
	for i := range ms {
		ms[i] = matrix.Random(rng, 32, 32, -5, 5)
	}
	v := series(32)
	dst := make([]float64, ms[0].Rows)
	mp := semiring.MinPlus{}
	add("graph-stream", "5x32x32",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.ChainVec(mp, ms, v)
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.ChainVecInto(mp, dst, ms, v)
			}
		},
		func() { matrix.ChainVecInto(mp, dst, ms, v) })

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "dpbench: FAIL: a fast kernel allocates in steady state")
		os.Exit(1)
	}
}
