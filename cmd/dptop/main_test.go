package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeFleet is a router /statusz plus one replica /metrics whose request
// counter advances on every scrape, so RED deltas are deterministic.
type fakeFleet struct {
	router  *httptest.Server
	replica *httptest.Server
	scrapes atomic.Int64
}

func newFakeFleet(t *testing.T) *fakeFleet {
	t.Helper()
	f := &fakeFleet{}
	f.replica = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		n := f.scrapes.Add(1)
		fmt.Fprintf(w, "# TYPE dpserve_requests_total counter\n")
		fmt.Fprintf(w, "dpserve_requests_total{problem=\"chain\"} %d\n", 10*n)
		fmt.Fprintf(w, "dpserve_requests_total{problem=\"graph\"} %d\n", 5*n)
		fmt.Fprintf(w, "# TYPE dpserve_errors_total counter\ndpserve_errors_total %d\n", n)
		fmt.Fprintf(w, "# TYPE dpserve_rejected_total counter\ndpserve_rejected_total 0\n")
		fmt.Fprintf(w, "# TYPE dpserve_timeouts_total counter\ndpserve_timeouts_total 0\n")
		fmt.Fprintf(w, "# TYPE dpserve_engine_worker_utilization gauge\ndpserve_engine_worker_utilization 0.41\n")
		fmt.Fprintf(w, "# TYPE dpserve_engine_pu_expected gauge\ndpserve_engine_pu_expected 0.44\n")
		fmt.Fprintf(w, "# TYPE dpserve_solve_latency_quantile_seconds gauge\n")
		fmt.Fprintf(w, "dpserve_solve_latency_quantile_seconds{quantile=\"0.95\"} 0.002\n")
	}))
	t.Cleanup(f.replica.Close)
	f.router = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statusz" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, `{"draining":false,"policy":"hash","replicas":[
			{"base":%q,"healthy":true,"inflight":2,"own_share":0.5,
			 "backlog_seconds":1.5,"cache_hits":30,"cache_misses":10},
			{"base":"http://127.0.0.1:1","healthy":false,"own_share":0.5}]}`, f.replica.URL)
	}))
	t.Cleanup(f.router.Close)
	return f
}

func TestOnceSnapshot(t *testing.T) {
	f := newFakeFleet(t)
	var buf bytes.Buffer
	client := &http.Client{Timeout: 2 * time.Second}
	if err := run(context.Background(), client, f.router.URL, 100*time.Millisecond, true, &buf); err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("-once output not JSON: %v\n%s", err, buf.String())
	}
	if snap.Router.Policy != "hash" || snap.Router.Draining {
		t.Errorf("router view wrong: %+v", snap.Router)
	}
	if len(snap.Replicas) != 2 {
		t.Fatalf("%d replica rows, want 2", len(snap.Replicas))
	}
	// Rows are sorted by base; the live replica's URL starts with
	// http://127.0.0.1:<port> so locate by scrape error instead.
	var live, dead *row
	for i := range snap.Replicas {
		if snap.Replicas[i].ScrapeError == "" {
			live = &snap.Replicas[i]
		} else {
			dead = &snap.Replicas[i]
		}
	}
	if live == nil || dead == nil {
		t.Fatalf("want one live and one unreachable row: %+v", snap.Replicas)
	}
	// Counters advance 15 requests and 1 error per scrape; the window is
	// ~0.1s, so rates land well above zero. Exact values depend on wall
	// clock, so assert the deltas' direction and the ratio.
	if live.ReqRate <= 0 || live.ErrRate <= 0 {
		t.Errorf("RED rates not computed: req=%.1f err=%.1f", live.ReqRate, live.ErrRate)
	}
	if ratio := live.ReqRate / live.ErrRate; ratio < 14.9 || ratio > 15.1 {
		t.Errorf("req/err ratio %.2f, want 15 (15 requests per error per scrape)", ratio)
	}
	if live.KindRates["chain"] <= live.KindRates["graph"] {
		t.Errorf("kind rates wrong: %+v (chain advances 2x graph)", live.KindRates)
	}
	if live.P95Ms != 2 {
		t.Errorf("p95 %.3fms, want 2", live.P95Ms)
	}
	if live.PUMeasured != 0.41 || live.PUExpected != 0.44 {
		t.Errorf("PU %v/%v, want 0.41/0.44", live.PUMeasured, live.PUExpected)
	}
	if live.CacheHitRate != 0.75 {
		t.Errorf("cache hit rate %v, want 0.75", live.CacheHitRate)
	}
	if live.OwnShare != 0.5 || live.BacklogSeconds != 1.5 || live.Inflight != 2 {
		t.Errorf("statusz passthrough wrong: %+v", live)
	}
	if dead.Healthy {
		t.Error("unreachable replica shown healthy")
	}
}

func TestRenderTable(t *testing.T) {
	f := newFakeFleet(t)
	client := &http.Client{Timeout: 2 * time.Second}
	prev, err := poll(context.Background(), client, f.router.URL)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := poll(context.Background(), client, f.router.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, buildSnapshot(prev, cur))
	out := buf.String()
	for _, want := range []string{"policy=hash", "REPLICA", "EJECTED", "scrape failed", "0.41/0.44"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFailsWithoutRouter(t *testing.T) {
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if err := run(context.Background(), client, "http://127.0.0.1:1", time.Millisecond, true, &bytes.Buffer{}); err == nil {
		t.Error("run with no router must fail")
	}
}
