// Command dptop is a live terminal dashboard for a dpserve fleet behind
// dprouter: one row per replica with RED rates (requests, errors,
// duration) computed as counter deltas between polls, admission backlog,
// cache hit rate, consistent-hash ring ownership share, health state,
// and the engine's measured processor utilization against the paper's
// closed-form prediction.
//
//	dptop -router http://localhost:8090
//	dptop -router http://localhost:8090 -once | jq .
//
// It polls the router's /statusz for fleet membership and health, then
// each replica's /metrics (Prometheus text, parsed with
// internal/promtext) for the rate-bearing counters. -once takes two
// polls one interval apart and prints a single machine-readable JSON
// snapshot — what the CI smoke test asserts against.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"systolicdp/internal/promtext"
)

func main() {
	router := flag.String("router", "http://localhost:8090", "dprouter base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll period (and the RED rate window)")
	once := flag.Bool("once", false, "take two polls one interval apart, print one JSON snapshot, exit")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}
	base := strings.TrimRight(*router, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if err := run(ctx, client, base, *interval, *once, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dptop:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, client *http.Client, router string, interval time.Duration, once bool, w io.Writer) error {
	prev, err := poll(ctx, client, router)
	if err != nil {
		return err
	}
	if once {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
		cur, err := poll(ctx, client, router)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(buildSnapshot(prev, cur))
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		cur, err := poll(ctx, client, router)
		if err != nil {
			fmt.Fprintf(w, "\x1b[2J\x1b[Hdptop: %v (retrying)\n", err)
			continue
		}
		render(w, buildSnapshot(prev, cur))
		prev = cur
	}
}

// routerView is the subset of dprouter's /statusz dptop consumes. The
// JSON tags mirror internal/route's routerStatusz wire form.
type routerView struct {
	Draining bool            `json:"draining"`
	Policy   string          `json:"policy"`
	Replicas []replicaStatus `json:"replicas"`
}

type replicaStatus struct {
	Base            string  `json:"base"`
	Healthy         bool    `json:"healthy"`
	Removed         bool    `json:"removed"`
	Inflight        int64   `json:"inflight"`
	OwnShare        float64 `json:"own_share"`
	BacklogSeconds  float64 `json:"backlog_seconds"`
	ReplicaDraining bool    `json:"replica_draining"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
}

// pollResult is one round: the router's fleet view plus every reachable
// replica's parsed /metrics, timestamped for rate computation.
type pollResult struct {
	at        time.Time
	router    routerView
	families  map[string]promtext.Families // by replica base
	scrapeErr map[string]string
}

func poll(ctx context.Context, client *http.Client, router string) (*pollResult, error) {
	p := &pollResult{at: time.Now(), families: map[string]promtext.Families{}, scrapeErr: map[string]string{}}
	if err := getJSON(ctx, client, router+"/statusz", &p.router); err != nil {
		return nil, fmt.Errorf("router statusz: %w", err)
	}
	for _, rep := range p.router.Replicas {
		text, err := getText(ctx, client, rep.Base+"/metrics")
		if err != nil {
			p.scrapeErr[rep.Base] = err.Error()
			continue
		}
		fams, err := promtext.Parse(text)
		if err != nil {
			p.scrapeErr[rep.Base] = err.Error()
			continue
		}
		p.families[rep.Base] = fams
	}
	return p, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func getText(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// row is one replica's assembled dashboard line; also the -once JSON.
type row struct {
	Base            string             `json:"base"`
	Healthy         bool               `json:"healthy"`
	Removed         bool               `json:"removed,omitempty"`
	ReplicaDraining bool               `json:"replica_draining,omitempty"`
	Inflight        int64              `json:"inflight"`
	OwnShare        float64            `json:"own_share"`
	BacklogSeconds  float64            `json:"backlog_seconds"`
	ReqRate         float64            `json:"req_rate"` // requests/s over the poll window
	ErrRate         float64            `json:"err_rate"` // errors+rejections+timeouts per second
	P95Ms           float64            `json:"p95_ms"`   // solve latency p95
	CacheHitRate    float64            `json:"cache_hit_rate"`
	PUMeasured      float64            `json:"pu_measured"`
	PUExpected      float64            `json:"pu_expected"`
	KindRates       map[string]float64 `json:"kind_rates,omitempty"` // per-problem req/s
	ScrapeError     string             `json:"scrape_error,omitempty"`
}

// snapshot is the full dashboard state for one refresh (-once prints it
// as JSON; interactive mode renders it as a table).
type snapshot struct {
	Router struct {
		Policy   string `json:"policy"`
		Draining bool   `json:"draining"`
	} `json:"router"`
	WindowSeconds float64 `json:"window_seconds"`
	Replicas      []row   `json:"replicas"`
}

// totalRequests sums the per-problem request counter.
func totalRequests(fams promtext.Families) float64 {
	var sum float64
	for _, v := range fams.Labeled("dpserve_requests_total", "problem") {
		sum += v
	}
	return sum
}

// totalErrors sums the failure counters a client would perceive.
func totalErrors(fams promtext.Families) float64 {
	return fams.Value("dpserve_errors_total") +
		fams.Value("dpserve_rejected_total") +
		fams.Value("dpserve_timeouts_total")
}

// buildSnapshot turns two polls into RED rows: rates are counter deltas
// over the wall-clock window, gauges and quantiles come from the newer
// poll, health and placement from the router's view.
func buildSnapshot(prev, cur *pollResult) snapshot {
	var snap snapshot
	snap.Router.Policy = cur.router.Policy
	snap.Router.Draining = cur.router.Draining
	dt := cur.at.Sub(prev.at).Seconds()
	snap.WindowSeconds = dt
	for _, st := range cur.router.Replicas {
		r := row{
			Base:            st.Base,
			Healthy:         st.Healthy,
			Removed:         st.Removed,
			ReplicaDraining: st.ReplicaDraining,
			Inflight:        st.Inflight,
			OwnShare:        st.OwnShare,
			BacklogSeconds:  st.BacklogSeconds,
		}
		if hits, misses := float64(st.CacheHits), float64(st.CacheMisses); hits+misses > 0 {
			r.CacheHitRate = hits / (hits + misses)
		}
		curF, ok := cur.families[st.Base]
		if !ok {
			r.ScrapeError = cur.scrapeErr[st.Base]
			if r.ScrapeError == "" {
				r.ScrapeError = "no metrics"
			}
			snap.Replicas = append(snap.Replicas, r)
			continue
		}
		r.P95Ms = curF.Labeled("dpserve_solve_latency_quantile_seconds", "quantile")["0.95"] * 1e3
		r.PUMeasured = curF.Value("dpserve_engine_worker_utilization")
		r.PUExpected = curF.Value("dpserve_engine_pu_expected")
		if prevF, ok := prev.families[st.Base]; ok && dt > 0 {
			r.ReqRate = (totalRequests(curF) - totalRequests(prevF)) / dt
			r.ErrRate = (totalErrors(curF) - totalErrors(prevF)) / dt
			prevKinds := prevF.Labeled("dpserve_requests_total", "problem")
			for kind, v := range curF.Labeled("dpserve_requests_total", "problem") {
				if rate := (v - prevKinds[kind]) / dt; rate > 0 {
					if r.KindRates == nil {
						r.KindRates = map[string]float64{}
					}
					r.KindRates[kind] = rate
				}
			}
		}
		snap.Replicas = append(snap.Replicas, r)
	}
	sort.Slice(snap.Replicas, func(i, j int) bool { return snap.Replicas[i].Base < snap.Replicas[j].Base })
	return snap
}

// render paints one refresh: clear screen, header, one row per replica.
func render(w io.Writer, snap snapshot) {
	fmt.Fprint(w, "\x1b[2J\x1b[H")
	state := "routing"
	if snap.Router.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(w, "dptop  policy=%s  %s  window=%.1fs  %s\n\n",
		snap.Router.Policy, state, snap.WindowSeconds, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "%-28s %-7s %7s %7s %8s %6s %8s %6s %5s %11s\n",
		"REPLICA", "HEALTH", "REQ/S", "ERR/S", "P95_MS", "HIT%", "BACKLOG", "SHARE", "INFL", "PU m/e")
	for _, r := range snap.Replicas {
		health := "ok"
		switch {
		case r.Removed:
			health = "removed"
		case !r.Healthy:
			health = "EJECTED"
		case r.ReplicaDraining:
			health = "drain"
		}
		if r.ScrapeError != "" {
			fmt.Fprintf(w, "%-28s %-7s  scrape failed: %s\n", shorten(r.Base, 28), health, r.ScrapeError)
			continue
		}
		fmt.Fprintf(w, "%-28s %-7s %7.1f %7.1f %8.2f %5.0f%% %7.1fs %5.2f %5d %5.2f/%4.2f\n",
			shorten(r.Base, 28), health, r.ReqRate, r.ErrRate, r.P95Ms,
			r.CacheHitRate*100, r.BacklogSeconds, r.OwnShare, r.Inflight,
			r.PUMeasured, r.PUExpected)
	}
}

func shorten(s string, n int) string {
	s = strings.TrimPrefix(s, "http://")
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}
