// Command dptrace summarizes a Perfetto/Chrome trace-event JSON file
// produced by this repo (systolicsim -trace-json, dpserve's or
// dprouter's /debug/dptrace endpoint, or the router's /debug/fleettrace)
// without leaving the terminal:
//
//	dptrace /tmp/t.json
//
// For a cycle trace it prints the per-PE utilization table, the
// pipeline-fill and drain cycle counts, and the measured processor
// utilization against the paper's closed form (eq. 9 for Designs 1-2,
// the (N-1)m²+m over (N+1)m² ratio for Design 3) via internal/metrics.
// For a request or hop trace it prints per-phase latency totals, and for
// a stitched fleet trace a per-trace cross-tier breakdown.
//
// It is also a standalone trace collector — the same stitching the
// router serves at /debug/fleettrace, but runnable against any set of
// processes without a router in the path:
//
//	dptrace -collect localhost:8090,localhost:8081,localhost:8082 -out fleet.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"systolicdp/internal/metrics"
	"systolicdp/internal/obs"
)

func main() {
	collect := flag.String("collect", "", "comma-separated base URLs; pull each one's /debug/dptrace?format=wire and stitch a fleet trace instead of reading a file")
	out := flag.String("out", "", "with -collect: also write the stitched Perfetto trace JSON to this file (load it in ui.perfetto.dev)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dptrace <trace.json>")
		fmt.Fprintln(os.Stderr, "       dptrace -collect host:port,host:port [-out fleet.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *collect != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		if err := runCollect(*collect, *out, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dptrace:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dptrace:", err)
		os.Exit(1)
	}
}

func run(path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr obs.Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		return fmt.Errorf("%s: not a trace-event JSON file: %w", path, err)
	}
	switch {
	case hasPid(&tr, obs.ArrayPid):
		return summarizeArray(&tr, w)
	case hasPid(&tr, obs.ServePid):
		return summarizeRequests(&tr, obs.ServePid, "request", "dpserve request", w)
	case hasPid(&tr, obs.RouterPid):
		return summarizeRequests(&tr, obs.RouterPid, "hop", "dprouter hop", w)
	case tr.OtherData["fleet"] == "1":
		return summarizeFleet(&tr, w)
	}
	return fmt.Errorf("%s: no systolic-array, dpserve, dprouter, or fleet tracks found", path)
}

// runCollect is the standalone collector mode: pull every endpoint's
// wire spans, print the per-trace cross-tier summary, and optionally
// write the stitched Perfetto document.
func runCollect(endpoints, out string, w io.Writer) error {
	var eps []obs.Endpoint
	for _, e := range strings.Split(endpoints, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		eps = append(eps, obs.Endpoint{Name: e, Base: e})
	}
	if len(eps) == 0 {
		return fmt.Errorf("-collect: no endpoints")
	}
	c := &obs.Collector{Endpoints: func() []obs.Endpoint { return eps }}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	traces, errs := c.Collect(ctx)
	for name, err := range errs {
		fmt.Fprintf(os.Stderr, "dptrace: pull %s: %v\n", name, err)
	}
	if len(errs) == len(eps) {
		return fmt.Errorf("-collect: every endpoint failed")
	}

	fmt.Fprintf(w, "fleet: %d endpoints reachable, %d stitched traces\n\n", len(eps)-len(errs), len(traces))
	fmt.Fprintf(w, "%-34s %6s %8s %12s  %s\n", "trace", "spans", "tiers", "duration_ms", "sources")
	for _, t := range traces {
		fmt.Fprintf(w, "%-34s %6d %8d %12.3f  %s\n",
			t.TraceID, len(t.Spans), len(t.Sources()),
			float64(t.Duration().Microseconds())/1e3, strings.Join(t.Sources(), ","))
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := obs.FleetTrace(traces).Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s (load in ui.perfetto.dev)\n", out)
	}
	return nil
}

// summarizeFleet prints a stitched fleet trace per distributed trace:
// which tracks it crossed and where the time went.
func summarizeFleet(tr *obs.Trace, w io.Writer) error {
	procs := map[int]string{}
	type span struct {
		pid  int
		name string
		dur  float64
	}
	byTrace := map[string][]span{}
	for _, e := range tr.TraceEvents {
		if e.Ph == obs.PhaseMetadata && e.Name == "process_name" {
			if n, ok := e.Args["name"].(string); ok {
				procs[e.Pid] = n
			}
			continue
		}
		if e.Ph != obs.PhaseComplete {
			continue
		}
		id, _ := e.Args["trace_id"].(string)
		if id == "" {
			continue
		}
		byTrace[id] = append(byTrace[id], span{pid: e.Pid, name: e.Name, dur: e.Dur})
	}
	ids := make([]string, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "fleet trace: %s traces\n\n", orDash(tr.OtherData["traces"]))
	for _, id := range ids {
		fmt.Fprintf(w, "%s\n", id)
		for _, s := range byTrace[id] {
			proc := procs[s.pid]
			if proc == "" {
				proc = fmt.Sprintf("pid%d", s.pid)
			}
			fmt.Fprintf(w, "  %-28s %-12s %10.3f ms\n", proc, s.name, s.dur/1e3)
		}
	}
	return nil
}

func hasPid(tr *obs.Trace, pid int) bool {
	for _, e := range tr.TraceEvents {
		if e.Pid == pid && e.Ph == obs.PhaseComplete {
			return true
		}
	}
	return false
}

// peStats aggregates one PE track.
type peStats struct {
	tid       int
	name      string
	busy      float64
	firstBusy float64
	lastEnd   float64
	seen      bool
}

func summarizeArray(tr *obs.Trace, w io.Writer) error {
	names := map[int]string{}
	stats := map[int]*peStats{}
	get := func(tid int) *peStats {
		s, ok := stats[tid]
		if !ok {
			s = &peStats{tid: tid}
			stats[tid] = s
		}
		return s
	}
	for _, e := range tr.TraceEvents {
		if e.Pid != obs.ArrayPid {
			continue
		}
		switch {
		case e.Ph == obs.PhaseMetadata && e.Name == "thread_name":
			if n, ok := e.Args["name"].(string); ok {
				names[e.Tid] = n
			}
		case e.Ph == obs.PhaseComplete && e.Name == "busy":
			s := get(e.Tid)
			s.busy += e.Dur
			if !s.seen || e.Ts < s.firstBusy {
				s.firstBusy = e.Ts
			}
			if end := e.Ts + e.Dur; end > s.lastEnd {
				s.lastEnd = end
			}
			s.seen = true
		}
	}
	if len(stats) == 0 {
		return fmt.Errorf("trace has no busy spans")
	}
	cycles := metaInt(tr, "cycles")
	if cycles <= 0 {
		// Fall back to the furthest span end.
		for _, s := range stats {
			if int(s.lastEnd) > cycles {
				cycles = int(s.lastEnd)
			}
		}
	}

	fmt.Fprintf(w, "design %s, runner %s: %d PEs, %d cycles\n\n",
		orDash(tr.OtherData["design"]), orDash(tr.OtherData["runner"]), len(stats), cycles)

	tids := make([]int, 0, len(stats))
	for tid := range stats {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	fmt.Fprintf(w, "%-6s %10s %8s %6s\n", "PE", "busy", "cycles", "PU")
	totalBusy := 0.0
	fill, drainEnd := 0.0, 0.0
	for _, tid := range tids {
		s := stats[tid]
		name := names[tid]
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		util := s.busy / float64(cycles)
		fmt.Fprintf(w, "%-6s %10.0f %8d %6.3f |%s|\n", name, s.busy, cycles, util, bar(util, 30))
		totalBusy += s.busy
		if s.firstBusy > fill {
			fill = s.firstBusy
		}
		if s.lastEnd > drainEnd {
			drainEnd = s.lastEnd
		}
	}
	measured := totalBusy / (float64(cycles) * float64(len(stats)))
	fmt.Fprintf(w, "\npipeline fill: %.0f cycles until every PE is active\n", fill)
	fmt.Fprintf(w, "drain: %.0f trailing idle cycles\n", float64(cycles)-drainEnd)

	expected := closedFormPU(tr, len(stats))
	fmt.Fprintf(w, "\nprocessor utilization (paper eq. 9 family):\n")
	fmt.Fprintf(w, "  measured  %.4f\n", measured)
	if expected > 0 {
		fmt.Fprintf(w, "  closed    %.4f\n", expected)
		fmt.Fprintf(w, "  delta     %+.4f (fill/drain and padding account for the gap)\n", measured-expected)
	} else {
		fmt.Fprintf(w, "  closed    n/a (trace carries no shape metadata)\n")
	}
	return nil
}

// closedFormPU recomputes the paper's PU prediction from the trace's
// shape metadata, falling back to the pu_expected the producer stamped.
func closedFormPU(tr *obs.Trace, pes int) float64 {
	design := metaInt(tr, "design")
	switch design {
	case 1, 2:
		// K matrix phases solve an (N+1)-stage graph with N-1 = K, i.e.
		// eq (9) with N = K+1 and m PEs.
		if k := metaInt(tr, "k"); k > 0 {
			return metrics.PUEq9(k+1, pes)
		}
	case 3:
		if n := metaInt(tr, "n"); n > 0 {
			return metrics.PU((n-1)*pes*pes+pes, (n+1)*pes, pes)
		}
	}
	if s := tr.OtherData["pu_expected"]; s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0
}

func summarizeRequests(tr *obs.Trace, pid int, rootName, label string, w io.Writer) error {
	type agg struct {
		count int
		total float64 // us
	}
	phases := map[string]*agg{}
	requests := 0
	for _, e := range tr.TraceEvents {
		if e.Pid != pid || e.Ph != obs.PhaseComplete {
			continue
		}
		if e.Name == rootName {
			requests++
			continue
		}
		a, ok := phases[e.Name]
		if !ok {
			a = &agg{}
			phases[e.Name] = a
		}
		a.count++
		a.total += e.Dur
	}
	fmt.Fprintf(w, "%s trace: %d requests\n\n", label, requests)
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %8s %12s %12s\n", "phase", "count", "total_ms", "mean_us")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(w, "%-16s %8d %12.3f %12.1f\n", n, a.count, a.total/1e3, a.total/float64(a.count))
	}
	return nil
}

func metaInt(tr *obs.Trace, key string) int {
	v, err := strconv.Atoi(tr.OtherData[key])
	if err != nil {
		return 0
	}
	return v
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}
