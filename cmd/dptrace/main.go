// Command dptrace summarizes a Perfetto/Chrome trace-event JSON file
// produced by this repo (systolicsim -trace-json, or dpserve's
// /debug/dptrace endpoint) without leaving the terminal:
//
//	dptrace /tmp/t.json
//
// For a cycle trace it prints the per-PE utilization table, the
// pipeline-fill and drain cycle counts, and the measured processor
// utilization against the paper's closed form (eq. 9 for Designs 1-2,
// the (N-1)m²+m over (N+1)m² ratio for Design 3) via internal/metrics.
// For a request trace it prints per-phase latency totals instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"systolicdp/internal/metrics"
	"systolicdp/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dptrace <trace.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dptrace:", err)
		os.Exit(1)
	}
}

func run(path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr obs.Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		return fmt.Errorf("%s: not a trace-event JSON file: %w", path, err)
	}
	if hasPid(&tr, obs.ArrayPid) {
		return summarizeArray(&tr, w)
	}
	if hasPid(&tr, obs.ServePid) {
		return summarizeRequests(&tr, w)
	}
	return fmt.Errorf("%s: no systolic-array or dpserve tracks found", path)
}

func hasPid(tr *obs.Trace, pid int) bool {
	for _, e := range tr.TraceEvents {
		if e.Pid == pid && e.Ph == obs.PhaseComplete {
			return true
		}
	}
	return false
}

// peStats aggregates one PE track.
type peStats struct {
	tid       int
	name      string
	busy      float64
	firstBusy float64
	lastEnd   float64
	seen      bool
}

func summarizeArray(tr *obs.Trace, w io.Writer) error {
	names := map[int]string{}
	stats := map[int]*peStats{}
	get := func(tid int) *peStats {
		s, ok := stats[tid]
		if !ok {
			s = &peStats{tid: tid}
			stats[tid] = s
		}
		return s
	}
	for _, e := range tr.TraceEvents {
		if e.Pid != obs.ArrayPid {
			continue
		}
		switch {
		case e.Ph == obs.PhaseMetadata && e.Name == "thread_name":
			if n, ok := e.Args["name"].(string); ok {
				names[e.Tid] = n
			}
		case e.Ph == obs.PhaseComplete && e.Name == "busy":
			s := get(e.Tid)
			s.busy += e.Dur
			if !s.seen || e.Ts < s.firstBusy {
				s.firstBusy = e.Ts
			}
			if end := e.Ts + e.Dur; end > s.lastEnd {
				s.lastEnd = end
			}
			s.seen = true
		}
	}
	if len(stats) == 0 {
		return fmt.Errorf("trace has no busy spans")
	}
	cycles := metaInt(tr, "cycles")
	if cycles <= 0 {
		// Fall back to the furthest span end.
		for _, s := range stats {
			if int(s.lastEnd) > cycles {
				cycles = int(s.lastEnd)
			}
		}
	}

	fmt.Fprintf(w, "design %s, runner %s: %d PEs, %d cycles\n\n",
		orDash(tr.OtherData["design"]), orDash(tr.OtherData["runner"]), len(stats), cycles)

	tids := make([]int, 0, len(stats))
	for tid := range stats {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	fmt.Fprintf(w, "%-6s %10s %8s %6s\n", "PE", "busy", "cycles", "PU")
	totalBusy := 0.0
	fill, drainEnd := 0.0, 0.0
	for _, tid := range tids {
		s := stats[tid]
		name := names[tid]
		if name == "" {
			name = fmt.Sprintf("tid%d", tid)
		}
		util := s.busy / float64(cycles)
		fmt.Fprintf(w, "%-6s %10.0f %8d %6.3f |%s|\n", name, s.busy, cycles, util, bar(util, 30))
		totalBusy += s.busy
		if s.firstBusy > fill {
			fill = s.firstBusy
		}
		if s.lastEnd > drainEnd {
			drainEnd = s.lastEnd
		}
	}
	measured := totalBusy / (float64(cycles) * float64(len(stats)))
	fmt.Fprintf(w, "\npipeline fill: %.0f cycles until every PE is active\n", fill)
	fmt.Fprintf(w, "drain: %.0f trailing idle cycles\n", float64(cycles)-drainEnd)

	expected := closedFormPU(tr, len(stats))
	fmt.Fprintf(w, "\nprocessor utilization (paper eq. 9 family):\n")
	fmt.Fprintf(w, "  measured  %.4f\n", measured)
	if expected > 0 {
		fmt.Fprintf(w, "  closed    %.4f\n", expected)
		fmt.Fprintf(w, "  delta     %+.4f (fill/drain and padding account for the gap)\n", measured-expected)
	} else {
		fmt.Fprintf(w, "  closed    n/a (trace carries no shape metadata)\n")
	}
	return nil
}

// closedFormPU recomputes the paper's PU prediction from the trace's
// shape metadata, falling back to the pu_expected the producer stamped.
func closedFormPU(tr *obs.Trace, pes int) float64 {
	design := metaInt(tr, "design")
	switch design {
	case 1, 2:
		// K matrix phases solve an (N+1)-stage graph with N-1 = K, i.e.
		// eq (9) with N = K+1 and m PEs.
		if k := metaInt(tr, "k"); k > 0 {
			return metrics.PUEq9(k+1, pes)
		}
	case 3:
		if n := metaInt(tr, "n"); n > 0 {
			return metrics.PU((n-1)*pes*pes+pes, (n+1)*pes, pes)
		}
	}
	if s := tr.OtherData["pu_expected"]; s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0
}

func summarizeRequests(tr *obs.Trace, w io.Writer) error {
	type agg struct {
		count int
		total float64 // us
	}
	phases := map[string]*agg{}
	requests := 0
	for _, e := range tr.TraceEvents {
		if e.Pid != obs.ServePid || e.Ph != obs.PhaseComplete {
			continue
		}
		if e.Name == "request" {
			requests++
			continue
		}
		a, ok := phases[e.Name]
		if !ok {
			a = &agg{}
			phases[e.Name] = a
		}
		a.count++
		a.total += e.Dur
	}
	fmt.Fprintf(w, "dpserve request trace: %d requests\n\n", requests)
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %8s %12s %12s\n", "phase", "count", "total_ms", "mean_us")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(w, "%-16s %8d %12.3f %12.1f\n", n, a.count, a.total/1e3, a.total/float64(a.count))
	}
	return nil
}

func metaInt(tr *obs.Trace, key string) int {
	v, err := strconv.Atoi(tr.OtherData[key])
	if err != nil {
		return 0
	}
	return v
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}
