package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/obs"
)

// writeCycleTrace produces a design-1-shaped trace: 3 PEs, 8 cycles, a
// one-cycle skew, 6 busy cycles per PE.
func writeCycleTrace(t *testing.T) string {
	t.Helper()
	r := obs.NewCycleRecorder(3, 8)
	pt := r.PETrace()
	for pe := 0; pe < 3; pe++ {
		for c := 0; c < 8; c++ {
			pt(pe, c, c >= pe && c < pe+6)
		}
	}
	tr := r.Trace(obs.ArrayMeta{Design: 1, Runner: "lockstep", M: 3, K: 2, PUExpected: 0.75})
	path := filepath.Join(t.TempDir(), "cycle.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestSummarizeArrayTrace(t *testing.T) {
	var sb strings.Builder
	if err := run(writeCycleTrace(t), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"design 1, runner lockstep: 3 PEs, 8 cycles",
		"PE 1",
		"PE 3",
		"pipeline fill: 2 cycles",
		"measured  0.7500", // 18 busy PE-cycles over 24
		"closed    0.4444", // PUEq9(3, 3) = 1/3 + 1/9
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeRequestTrace(t *testing.T) {
	rec := obs.NewSpanRecorder(4)
	base := time.Unix(100, 0)
	s := obs.NewReqSpan("id1", "graph", base)
	s.Observe("queue_wait", base, base.Add(50*time.Microsecond))
	s.Observe("solve", base.Add(50*time.Microsecond), base.Add(250*time.Microsecond))
	s.Finish(base.Add(300*time.Microsecond), 200, false)
	rec.Add(s)
	path := filepath.Join(t.TempDir(), "req.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Trace().Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run(path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1 requests", "queue_wait", "solve"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(path, &sb); err == nil {
		t.Error("garbage accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), &sb); err == nil {
		t.Error("missing file accepted")
	}
}

// Collect mode pulls wire spans from live endpoints, stitches them, and
// both the terminal summary and the -out Perfetto file must reflect the
// cross-tier trace.
func TestRunCollect(t *testing.T) {
	base := time.Unix(500, 0)
	hops := obs.NewHopRecorder(4)
	h := obs.NewHopSpan("r1", base)
	h.SetTrace("tid1")
	h.SetKind("chain")
	h.Finish(base.Add(2*time.Millisecond), 200, "rep")
	hops.Add(h)
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(hops.WireSpans())
	}))
	defer router.Close()

	spans := obs.NewSpanRecorder(4)
	s := obs.NewReqSpan("r1", "chain", base.Add(time.Millisecond))
	s.SetTrace("tid1", "parent")
	s.Finish(s.Start.Add(time.Millisecond), 200, false)
	spans.Add(s)
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(spans.WireSpans())
	}))
	defer replica.Close()

	out := filepath.Join(t.TempDir(), "fleet.json")
	var sb strings.Builder
	endpoints := strings.TrimPrefix(router.URL, "http://") + "," + replica.URL
	if err := runCollect(endpoints, out, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tid1") || !strings.Contains(sb.String(), "1 stitched traces") {
		t.Errorf("collect summary missing trace: %s", sb.String())
	}

	// The written document round-trips through the file summarizer.
	sb.Reset()
	if err := run(out, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet trace: 1 traces", "tid1", "hop", "request"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("fleet summary missing %q:\n%s", want, sb.String())
		}
	}

	if err := runCollect("http://127.0.0.1:1", "", &sb); err == nil {
		t.Error("collect with every endpoint dead must fail")
	}
	if err := runCollect(" , ", "", &sb); err == nil {
		t.Error("collect with no endpoints must fail")
	}
}
