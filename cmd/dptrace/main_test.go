package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/obs"
)

// writeCycleTrace produces a design-1-shaped trace: 3 PEs, 8 cycles, a
// one-cycle skew, 6 busy cycles per PE.
func writeCycleTrace(t *testing.T) string {
	t.Helper()
	r := obs.NewCycleRecorder(3, 8)
	pt := r.PETrace()
	for pe := 0; pe < 3; pe++ {
		for c := 0; c < 8; c++ {
			pt(pe, c, c >= pe && c < pe+6)
		}
	}
	tr := r.Trace(obs.ArrayMeta{Design: 1, Runner: "lockstep", M: 3, K: 2, PUExpected: 0.75})
	path := filepath.Join(t.TempDir(), "cycle.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestSummarizeArrayTrace(t *testing.T) {
	var sb strings.Builder
	if err := run(writeCycleTrace(t), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"design 1, runner lockstep: 3 PEs, 8 cycles",
		"PE 1",
		"PE 3",
		"pipeline fill: 2 cycles",
		"measured  0.7500", // 18 busy PE-cycles over 24
		"closed    0.4444", // PUEq9(3, 3) = 1/3 + 1/9
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeRequestTrace(t *testing.T) {
	rec := obs.NewSpanRecorder(4)
	base := time.Unix(100, 0)
	s := obs.NewReqSpan("id1", "graph", base)
	s.Observe("queue_wait", base, base.Add(50*time.Microsecond))
	s.Observe("solve", base.Add(50*time.Microsecond), base.Add(250*time.Microsecond))
	s.Finish(base.Add(300*time.Microsecond), 200, false)
	rec.Add(s)
	path := filepath.Join(t.TempDir(), "req.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Trace().Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run(path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1 requests", "queue_wait", "solve"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(path, &sb); err == nil {
		t.Error("garbage accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), &sb); err == nil {
		t.Error("missing file accepted")
	}
}
