// Command experiments regenerates the paper's tables and figures (E1-E10,
// indexed in DESIGN.md and recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments -id E4     # run one artifact
//	experiments -list      # list artifact IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"systolicdp/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment by ID (e.g. E4); empty runs all")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	ext := flag.Bool("extensions", false, "also run the extension experiments (X1-X5)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables (plot-ready, e.g. for Figure 6)")
	htmlPath := flag.String("html", "", "write a self-contained HTML report to this path")
	flag.Parse()

	pool := experiments.All()
	if *ext {
		pool = experiments.AllWithExtensions()
	}
	if *list {
		for _, e := range pool {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := pool
	if *id != "" {
		found := false
		for _, e := range experiments.AllWithExtensions() {
			if e.ID == *id {
				run = []experiments.Experiment{e}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *id)
			os.Exit(1)
		}
	}
	failed := 0
	var tables []*experiments.Table
	for _, e := range run {
		tab, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		tables = append(tables, tab)
		if *htmlPath != "" {
			continue
		}
		if *csv {
			fmt.Print(tab.RenderCSV())
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *htmlPath != "" {
		page, err := experiments.RenderHTML(tables)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*htmlPath, []byte(page), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d tables)\n", *htmlPath, len(tables))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
