package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/route"
)

func TestParseFlagsDefaults(t *testing.T) {
	addr, grace, cfg, err := parseFlags([]string{"-replicas", "localhost:8081"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":8090" {
		t.Errorf("addr %q", addr)
	}
	if grace != 3*time.Second {
		t.Errorf("drain-grace default %v", grace)
	}
	if len(cfg.Replicas) != 1 || cfg.Replicas[0] != "localhost:8081" {
		t.Errorf("replicas %v", cfg.Replicas)
	}
	if cfg.VNodes != 128 || cfg.Replication != 2 || cfg.Policy != route.PolicyHash {
		t.Errorf("ring defaults wrong: %+v", cfg)
	}
	if cfg.HealthInterval != time.Second || cfg.EjectAfter != 3 || cfg.ReadmitAfter != 2 {
		t.Errorf("health defaults wrong: %+v", cfg)
	}
	if cfg.Deadline != 30*time.Second || cfg.ShedEnabled || cfg.ShedHeadroom != 1.2 {
		t.Errorf("shed defaults wrong: %+v", cfg)
	}
	if cfg.Logger == nil {
		t.Error("no logger wired by default")
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	addr, grace, cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:7000",
		"-replicas", "a:1, b:2,,c:3",
		"-replicas-file", "members.txt", "-reload-interval", "5s",
		"-vnodes", "64", "-replication", "3",
		"-health-interval", "200ms", "-health-timeout", "100ms",
		"-eject-after", "5", "-readmit-after", "4",
		"-deadline", "10s", "-shed", "-shed-headroom", "1.5",
		"-policy", "random", "-drain-grace", "1s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:7000" || grace != time.Second {
		t.Errorf("addr %q grace %v", addr, grace)
	}
	if len(cfg.Replicas) != 3 || cfg.Replicas[1] != "b:2" {
		t.Errorf("replica list parsed wrong: %v", cfg.Replicas)
	}
	if cfg.ReplicasFile != "members.txt" || cfg.ReloadInterval != 5*time.Second {
		t.Errorf("file reload flags wrong: %+v", cfg)
	}
	if cfg.VNodes != 64 || cfg.Replication != 3 || cfg.Policy != route.PolicyRandom {
		t.Errorf("ring overrides wrong: %+v", cfg)
	}
	if cfg.HealthInterval != 200*time.Millisecond || cfg.HealthTimeout != 100*time.Millisecond {
		t.Errorf("probe overrides wrong: %+v", cfg)
	}
	if cfg.EjectAfter != 5 || cfg.ReadmitAfter != 4 {
		t.Errorf("hysteresis overrides wrong: %+v", cfg)
	}
	if cfg.Deadline != 10*time.Second || !cfg.ShedEnabled || cfg.ShedHeadroom != 1.5 {
		t.Errorf("shed overrides wrong: %+v", cfg)
	}
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	if _, _, _, err := parseFlags(nil); err == nil {
		t.Error("no replicas accepted")
	}
	if _, _, _, err := parseFlags([]string{"-replicas", "a:1", "-policy", "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// run must proxy requests end to end and drain like dpserve: /healthz
// flips to 503 on cancellation while the listener still accepts for the
// grace window.
func TestRunProxiesAndDrains(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK)
		case "/solve":
			w.Write([]byte(`{"value":42}`))
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer upstream.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	_, _, cfg, err := parseFlags([]string{"-replicas", upstream.URL, "-health-interval", "50ms"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, 500*time.Millisecond, cfg) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("router never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/solve", "application/json",
		strings.NewReader(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied solve status %d", resp.StatusCode)
	}

	cancel()
	saw503 := false
	deadline = time.Now().Add(5 * time.Second)
	for !saw503 {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			if resp.StatusCode == http.StatusServiceUnavailable {
				saw503 = true
			}
			resp.Body.Close()
		} else {
			t.Fatalf("listener closed before /healthz ever answered 503: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 after cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned after cancellation")
	}
}
