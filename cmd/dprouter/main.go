// Command dprouter fronts a fleet of dpserve replicas with a
// consistent-hash routing tier: each request's canonical spec hash picks
// a stable owner replica, so every replica's LRU cache and singleflight
// stay shard-local and the fleet's aggregate cache capacity scales with
// its size.
//
// Usage:
//
//	dprouter -addr :8090 -replicas localhost:8081,localhost:8082
//	dprouter -addr :8090 -replicas-file replicas.txt -shed
//	curl -s -X POST localhost:8090/solve -d '{"problem":"chain","dims":[30,35,15,5,10,20,25]}'
//
// Endpoints: POST /solve (proxied to the owner replica with deadline
// propagation and ring-successor failover), GET /healthz (503 while
// draining), GET /statusz (router + fleet view), GET /metrics
// (Prometheus text format), GET /debug/dptrace (the router's own hop
// spans; ?format=wire for the raw span list), GET /debug/fleettrace
// (the whole fleet's recent spans stitched into one Perfetto document
// keyed by distributed trace id).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"systolicdp/internal/route"
)

func main() {
	addr, grace, cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dprouter:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dprouter:", err)
		os.Exit(1)
	}
	if err := run(ctx, ln, grace, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dprouter:", err)
		os.Exit(1)
	}
}

// parseFlags builds the listen address, drain grace, and router config
// from argv.
func parseFlags(args []string) (string, time.Duration, route.Config, error) {
	fs := flag.NewFlagSet("dprouter", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	replicas := fs.String("replicas", "", "comma-separated dpserve base URLs (host:port accepted)")
	replicasFile := fs.String("replicas-file", "", "membership file (one base URL per line, '#' comments); polled and hot-reloaded")
	reload := fs.Duration("reload-interval", 2*time.Second, "membership file poll period")
	vnodes := fs.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
	replication := fs.Int("replication", 2, "failover depth: distinct ring successors tried per key")
	healthInterval := fs.Duration("health-interval", time.Second, "replica health probe period")
	healthTimeout := fs.Duration("health-timeout", 500*time.Millisecond, "per-probe budget")
	ejectAfter := fs.Int("eject-after", 3, "consecutive probe failures before a replica is ejected")
	readmitAfter := fs.Int("readmit-after", 2, "consecutive probe successes before readmission")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-request budget when the client sends no X-Deadline-Ms")
	shed := fs.Bool("shed", false, "shed at the edge with 429 + Retry-After when the target shard's advertised backlog predicts a deadline miss")
	shedHeadroom := fs.Float64("shed-headroom", 1.2, "safety factor on the shed prediction")
	policy := fs.String("policy", route.PolicyHash, "placement policy: hash (shard-affine, default) or random (ablation baseline)")
	drainGrace := fs.Duration("drain-grace", 3*time.Second, "on SIGTERM, keep serving with /healthz=503 this long so upstream load balancers stop routing before the listener closes")
	traceSpans := fs.Int("trace-spans", 256, "hop spans retained for /debug/dptrace and fleet stitching")
	slowTrace := fs.Duration("slow-trace", 0, "log every stitched trace at least this slow, once, with its cross-tier phase breakdown (0 disables)")
	collectInterval := fs.Duration("collect-interval", 2*time.Second, "fleet span collection period when -slow-trace is set")
	fs.Parse(args)

	cfg := route.Config{
		ReplicasFile:    *replicasFile,
		ReloadInterval:  *reload,
		VNodes:          *vnodes,
		Replication:     *replication,
		HealthInterval:  *healthInterval,
		HealthTimeout:   *healthTimeout,
		EjectAfter:      *ejectAfter,
		ReadmitAfter:    *readmitAfter,
		Deadline:        *deadline,
		ShedEnabled:     *shed,
		ShedHeadroom:    *shedHeadroom,
		Policy:          *policy,
		TraceSpans:      *traceSpans,
		SlowTrace:       *slowTrace,
		CollectInterval: *collectInterval,
		Logger:          slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			cfg.Replicas = append(cfg.Replicas, r)
		}
	}
	if len(cfg.Replicas) == 0 && cfg.ReplicasFile == "" {
		return "", 0, cfg, errors.New("no replicas: set -replicas or -replicas-file")
	}
	if cfg.Policy != route.PolicyHash && cfg.Policy != route.PolicyRandom {
		return "", 0, cfg, fmt.Errorf("unknown -policy %q (want %s or %s)", cfg.Policy, route.PolicyHash, route.PolicyRandom)
	}
	return *addr, *drainGrace, cfg, nil
}

// run serves on ln until ctx is cancelled, then shuts down in the same
// load balancer friendly order as dpserve: flip /healthz to 503 while
// still accepting for the grace window, then stop accepting, finish
// in-flight proxies, and release the replica fleet.
func run(ctx context.Context, ln net.Listener, grace time.Duration, cfg route.Config) error {
	rt, err := route.New(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: rt.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dprouter listening on %s (%d replicas)", ln.Addr(), len(rt.ReplicaBases()))
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		rt.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("dprouter: draining (healthz 503 for %v)", grace)
	rt.BeginDrain()
	if grace > 0 {
		timer := time.NewTimer(grace)
		select {
		case <-timer.C:
		case err := <-errc:
			timer.Stop()
			rt.Close()
			return err
		}
	}

	log.Print("dprouter: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err = srv.Shutdown(sctx)
	rt.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
