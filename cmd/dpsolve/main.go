// Command dpsolve classifies and solves dynamic-programming problems with
// the architecture the paper's Table 1 prescribes.
//
// Usage:
//
//	dpsolve -problem graph -stages 8 -values 5 -design 1        # multistage shortest path
//	dpsolve -problem traffic -stages 10 -values 6               # Section 2.2 workload on Design 3
//	dpsolve -problem chain -dims 30,35,15,5,10,20,25            # matrix-chain ordering
//	dpsolve -problem nonserial -stages 5 -values 3              # ternary chain via grouping
//	dpsolve -problem table1                                     # print Table 1
//	dpsolve -spec problem.json                                  # solve a JSON spec
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/semiring"
	"systolicdp/internal/spec"
	"systolicdp/internal/workload"
)

func main() {
	problem := flag.String("problem", "graph", "problem kind: graph | traffic | circuit | fluid | scheduling | curve | chain | nonserial | table1")
	stages := flag.Int("stages", 8, "number of stages/variables")
	values := flag.Int("values", 5, "quantized values per stage")
	design := flag.Int("design", 1, "systolic design for graph problems: 0 (baseline), 1 (pipelined), 2 (broadcast)")
	dims := flag.String("dims", "", "comma-separated matrix-chain dimensions r0,...,rn")
	seed := flag.Int64("seed", 1985, "workload seed")
	specPath := flag.String("spec", "", "path to a JSON problem specification (overrides -problem)")
	jsonOut := flag.Bool("json", false, "emit the solution as JSON")
	dump := flag.String("dump", "", "also write the generated instance as a JSON spec to this path (graph and chain problems)")
	timeout := flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit); same context plumbing dpserve uses")
	flag.Parse()

	solveCtx = context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(solveCtx, *timeout)
		defer cancel()
	}
	asJSON = *jsonOut
	if *specPath != "" {
		if err := runSpec(*specPath); err != nil {
			fmt.Fprintln(os.Stderr, "dpsolve:", err)
			os.Exit(1)
		}
		return
	}
	dumpPath = *dump
	if err := run(*problem, *stages, *values, *design, *dims, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dpsolve:", err)
		os.Exit(1)
	}
}

// dumpPath, when set, receives the generated instance as a JSON spec.
var dumpPath string

// maybeDump writes the instance spec if -dump was given.
func maybeDump(p core.Problem) error {
	if dumpPath == "" {
		return nil
	}
	var f *spec.File
	switch q := p.(type) {
	case *core.MultistageProblem:
		var err error
		f, err = spec.FromGraph(q.Graph, q.Design)
		if err != nil {
			return err
		}
	case *core.ChainOrderingProblem:
		f = spec.FromChain(q.Dims)
	default:
		return fmt.Errorf("-dump supports graph and chain problems, not %T", p)
	}
	data, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(dumpPath, data, 0o644)
}

func run(problem string, stages, values, design int, dims string, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var p core.Problem
	switch problem {
	case "table1":
		for _, r := range core.TableOne() {
			fmt.Printf("%-20s | %-46s | %-66s | %s\n", r.Class, r.Characteristic, r.Method, r.Requirements)
		}
		return nil
	case "graph":
		inner := multistage.RandomUniform(rng, stages-1, values, 1, 10)
		g := multistage.SingleSourceSink(semiring.MinPlus{}, inner)
		p = &core.MultistageProblem{Graph: g, Design: design}
	case "traffic", "circuit", "fluid", "scheduling", "curve":
		nv, err := workload.ByName(problem, rng, stages, values)
		if err != nil {
			return err
		}
		p = &core.NodeValuedProblem{Problem: nv}
	case "chain":
		if dims == "" {
			return fmt.Errorf("-dims required for chain ordering")
		}
		parts := strings.Split(dims, ",")
		ds := make([]int, 0, len(parts))
		for _, s := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad dimension %q: %v", s, err)
			}
			ds = append(ds, v)
		}
		p = &core.ChainOrderingProblem{Dims: ds}
	case "nonserial":
		p = &core.NonserialChainProblem{Chain: nonserial.RandomUniformChain3(rng, stages, values, 0, 10)}
	default:
		return fmt.Errorf("unknown problem %q", problem)
	}

	if err := maybeDump(p); err != nil {
		return err
	}
	return report(p)
}

// runSpec loads a JSON specification, solves it, and reports. Errors name
// the offending file.
func runSpec(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	p, err := spec.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return report(p)
}

// asJSON switches report output to JSON.
var asJSON bool

// solveCtx bounds every solve; -timeout arms its deadline.
var solveCtx = context.Background()

// jsonSolution is the machine-readable report shape.
type jsonSolution struct {
	Problem  string  `json:"problem"`
	Class    string  `json:"class"`
	Method   string  `json:"method"`
	Hardware string  `json:"hardware"`
	Cost     float64 `json:"cost"`
	Path     []int   `json:"path,omitempty"`
	Ordering string  `json:"ordering,omitempty"`
}

// report solves p and prints the standard summary.
func report(p core.Problem) error {
	sol, err := core.SolveCtx(solveCtx, p)
	if err != nil {
		return err
	}
	rec := core.Recommend(sol.Class)
	if asJSON {
		out, err := json.MarshalIndent(jsonSolution{
			Problem:  p.Describe(),
			Class:    sol.Class.String(),
			Method:   rec.Method,
			Hardware: rec.Requirements,
			Cost:     sol.Cost,
			Path:     sol.Path,
			Ordering: sol.Ordering,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("problem:  %s\n", p.Describe())
	fmt.Printf("class:    %s\n", sol.Class)
	fmt.Printf("method:   %s\n", rec.Method)
	fmt.Printf("hardware: %s\n", rec.Requirements)
	fmt.Printf("cost:     %g\n", sol.Cost)
	if sol.Path != nil {
		fmt.Printf("path:     %v\n", sol.Path)
	}
	if sol.Ordering != "" {
		fmt.Printf("ordering: %s\n", sol.Ordering)
	}
	return nil
}
