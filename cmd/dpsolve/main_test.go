package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func TestRunAllProblems(t *testing.T) {
	cases := []struct {
		name    string
		problem string
		design  int
		dims    string
	}{
		{"table1", "table1", 0, ""},
		{"graph-baseline", "graph", 0, ""},
		{"graph-design1", "graph", 1, ""},
		{"graph-design2", "graph", 2, ""},
		{"traffic", "traffic", 0, ""},
		{"circuit", "circuit", 0, ""},
		{"fluid", "fluid", 0, ""},
		{"scheduling", "scheduling", 0, ""},
		{"chain", "chain", 0, "30,35,15,5,10,20,25"},
		{"nonserial", "nonserial", 0, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.problem, 5, 3, c.design, c.dims, 7); err != nil {
				t.Fatalf("run(%s): %v", c.problem, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 5, 3, 0, "", 7); err == nil {
		t.Error("unknown problem accepted")
	}
	if err := run("chain", 5, 3, 0, "", 7); err == nil {
		t.Error("chain without dims accepted")
	}
	if err := run("chain", 5, 3, 0, "3,x,4", 7); err == nil {
		t.Error("malformed dims accepted")
	}
	if err := run("graph", 5, 3, 9, "", 7); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestRunSpec(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/p.json"
	data := []byte(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`)
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(path); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(dir + "/missing.json"); err == nil {
		t.Error("missing spec accepted")
	}
	bad := dir + "/bad.json"
	if err := writeFile(bad, []byte(`{"problem":"martian"}`)); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(bad); err == nil {
		t.Error("bad spec accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestReportJSON(t *testing.T) {
	asJSON = true
	defer func() { asJSON = false }()
	if err := run("chain", 5, 3, 0, "30,35,15,5,10,20,25", 7); err != nil {
		t.Fatal(err)
	}
}

func TestMaybeDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dumpPath = dir + "/g.json"
	defer func() { dumpPath = "" }()
	if err := run("graph", 4, 3, 1, "", 7); err != nil {
		t.Fatal(err)
	}
	if err := runSpec(dumpPath); err != nil {
		t.Fatalf("re-solving dumped spec: %v", err)
	}
	// Dump is rejected for workload problems.
	if err := run("traffic", 4, 3, 0, "", 7); err == nil {
		t.Error("dump of node-valued workload should fail")
	}
}

func TestRunSpecErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/broken.json"
	if err := writeFile(bad, []byte(`{"problem":"martian"}`)); err != nil {
		t.Fatal(err)
	}
	err := runSpec(bad)
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the file %q", err, bad)
	}
}

func TestTimeoutContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	solveCtx = ctx
	defer func() { solveCtx = context.Background() }()
	if err := run("chain", 5, 3, 0, "30,35,15,5", 7); err != context.Canceled {
		t.Errorf("cancelled solve err = %v, want context.Canceled", err)
	}
}
