package systolicdp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inner := RandomGraph(rng, 4, 3, 1, 10)
	g := SingleSourceSink(inner)
	base := ShortestPath(g)

	mats := g.Cost
	k := len(mats)
	v := mats[k-1].Col(0)

	d1, err := SolvePipelined(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := SolveBroadcast(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1[0]-base.Cost) > 1e-9 || math.Abs(d2[0]-base.Cost) > 1e-9 {
		t.Errorf("designs disagree with baseline: %v %v vs %v", d1[0], d2[0], base.Cost)
	}
}

func TestFacadeSolveDispatch(t *testing.T) {
	sol, err := Solve(&ChainOrderingProblem{Dims: []int{30, 35, 15, 5, 10, 20, 25}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 15125 {
		t.Errorf("cost %v, want 15125", sol.Cost)
	}
	if sol.Class.String() != "polyadic-nonserial" {
		t.Errorf("class %v", sol.Class)
	}
}

func TestFacadeWorkloadAndFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := Workload("traffic", rng, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveFeedback(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 5 {
		t.Errorf("path length %d", len(res.Path))
	}
}

func TestFacadeOptimalOrder(t *testing.T) {
	cost, order, err := OptimalOrder([]int{5, 4, 6, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || order == "" {
		t.Errorf("cost %v order %q", cost, order)
	}
}

func TestFacadeParallelChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := make([]*Matrix, 6)
	for i := range ms {
		ms[i] = randomMatrix(rng, 3)
	}
	prod, err := ParallelChainProduct(ms, OptimalGranularity(len(ms)))
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows != 3 || prod.Cols != 3 {
		t.Errorf("product %dx%d", prod.Rows, prod.Cols)
	}
}

func TestFacadeTableOneAndExperiments(t *testing.T) {
	if len(TableOne()) != 4 {
		t.Error("Table 1 must have 4 rows")
	}
	if got := Recommend(Class{Arity: Monadic, Structure: Serial}).Requirements; got != "systolic processing" {
		t.Errorf("recommendation %q", got)
	}
	ids := ExperimentIDs()
	if len(ids) != 10 {
		t.Fatalf("%d experiment IDs", len(ids))
	}
	if _, err := RunExperiment("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	out, err := RunExperiment("E10")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("empty experiment output")
	}
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := &Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 10
	}
	return m
}

func TestFacadeBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomGraph(rng, 5, 4, 1, 10)
	want := ShortestPath(g)
	for _, workers := range []int{1, 4} {
		cost, path, expanded, err := BranchAndBound(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cost-want.Cost) > 1e-9 {
			t.Errorf("workers=%d: cost %v, want %v", workers, cost, want.Cost)
		}
		if len(path) != g.Stages() || expanded <= 0 {
			t.Errorf("workers=%d: path %v expanded %d", workers, path, expanded)
		}
	}
}

func TestFacadeMeshAndBST(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 4)
	b := randomMatrix(rng, 4)
	prod, err := MeshMultiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Rows != 4 {
		t.Error("bad product shape")
	}
	cost, root, left, right, err := OptimalBST(&BST{
		P: []float64{0.15, 0.10, 0.05, 0.10, 0.20},
		Q: []float64{0.05, 0.10, 0.05, 0.05, 0.05, 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-2.75) > 1e-9 {
		t.Errorf("BST cost %v, want 2.75", cost)
	}
	if root < 0 || len(left) != 5 || len(right) != 5 {
		t.Error("bad BST tree")
	}
}

func TestFacadeDataflowChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ms := make([]*Matrix, 5)
	for i := range ms {
		ms[i] = randomMatrix(rng, 3)
	}
	prod, ops, makespan, err := DataflowChainProduct(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prod == nil || ops <= 0 || makespan <= 0 || makespan > ops {
		t.Errorf("ops %v makespan %v", ops, makespan)
	}
}

func TestFacadeStagedAndStream(t *testing.T) {
	p := &StagedNodeValued{
		Values: [][]float64{{1, 2}, {3, 5}, {2, 8}},
		FK: func(k int, x, y float64) float64 {
			return float64(k+1) * math.Abs(x-y)
		},
	}
	res, err := SolveFeedbackStaged(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 3 {
		t.Errorf("path %v", res.Path)
	}
	rng := rand.New(rand.NewSource(12))
	probs := make([]StreamProblem, 3)
	for i := range probs {
		ms := []*Matrix{randomMatrix(rng, 3), randomMatrix(rng, 3)}
		probs[i] = StreamProblem{Ms: ms, V: []float64{1, 2, 3}}
	}
	out, err := StreamPipelined(probs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	for i, pr := range probs {
		want, err := SolvePipelined(pr.Ms, pr.V)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(out[i][j]-want[j]) > 1e-9 {
				t.Errorf("problem %d entry %d: %v vs %v", i, j, out[i][j], want[j])
			}
		}
	}
}

func TestFacadeEliminationOrder(t *testing.T) {
	cost, order, err := OptimalEliminationOrder([]int{2, 3, 50, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || len(order) != 3 {
		t.Errorf("cost %d order %v", cost, order)
	}
}

func TestFacadeDTW(t *testing.T) {
	d, err := DTWDistance([]float64{0, 0, 1, 2, 3}, []float64{0, 1, 2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("time-shifted series should align at 0, got %v", d)
	}
	if _, err := DTWDistance(nil, []float64{1}); err == nil {
		t.Error("empty query accepted")
	}
}
