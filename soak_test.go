package systolicdp

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/andor"
	"systolicdp/internal/bcastarray"
	"systolicdp/internal/bnb"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// TestSoakCrossValidation runs a battery of random instances through the
// full solver matrix. Skipped under -short; it is the repository's
// long-running consistency sweep.
func TestSoakCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped under -short")
	}
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(20260705))
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(7) // stage-to-stage matrices after wrapping
		m := 1 + rng.Intn(6)
		inner := multistage.RandomUniform(rng, n, m, 0, 25)
		want := multistage.SolveOptimal(s, inner).Cost

		// Designs 1 and 2.
		g := multistage.SingleSourceSink(s, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		d1, err := pipearray.Solve(mats[:k-1], v)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d2, err := bcastarray.Solve(mats[:k-1], v)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(d1[0]-want) > 1e-9 || math.Abs(d2[0]-want) > 1e-9 {
			t.Fatalf("trial %d (N=%d m=%d): designs %v/%v, want %v", trial, n, m, d1[0], d2[0], want)
		}

		// Branch and bound.
		bb, err := bnb.Solve(inner, bnb.Options{Dominance: true, Bound: bnb.NewBoundStageMin(inner)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(bb.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: bnb %v, want %v", trial, bb.Cost, want)
		}

		// AND/OR reduction when the matrix count is a power of two.
		if andor.IsPowerOf(inner.Stages()-1, 2) {
			got, err := andor.SolveRegular(s, inner, 2)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: andor %v, want %v", trial, got, want)
			}
		}

		// Node-valued problems on Design 3 (fresh instance).
		p := multistage.RandomNodeValued(rng, 2+rng.Intn(6), 1+rng.Intn(6), 0, 20)
		res, err := fbarray.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if base := p.Solve(s); math.Abs(res.Cost-base) > 1e-9 {
			t.Fatalf("trial %d: design3 %v, want %v", trial, res.Cost, base)
		}
	}
}

// TestSoakGoroutineRunners repeats a slice of the sweep on the concurrent
// runners, exercising the channel lock-step under load.
func TestSoakGoroutineRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped under -short")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		ms := make([]*Matrix, 1+rng.Intn(5))
		m := 1 + rng.Intn(5)
		for i := range ms {
			ms[i] = randomMatrix(rng, m)
		}
		v := make([]float64, m)
		for i := range v {
			v[i] = rng.Float64() * 10
		}
		arr, err := pipearray.New(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		lock, _, err := arr.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		goro, _, err := arr.Run(true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range lock {
			if math.Abs(lock[i]-goro[i]) > 1e-12 {
				t.Fatalf("trial %d: runner divergence at %d: %v vs %v", trial, i, lock[i], goro[i])
			}
		}
	}
}
