module systolicdp

go 1.22
