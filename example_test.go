package systolicdp_test

import (
	"fmt"
	"math"
	"math/rand"

	"systolicdp"
)

// ExampleSolve classifies a matrix-chain ordering problem and solves it
// with the method Table 1 prescribes for polyadic-nonserial formulations.
func ExampleSolve() {
	sol, err := systolicdp.Solve(&systolicdp.ChainOrderingProblem{
		Dims: []int{30, 35, 15, 5, 10, 20, 25},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Class)
	fmt.Println(sol.Cost)
	fmt.Println(sol.Ordering)
	// Output:
	// polyadic-nonserial
	// 15125
	// ((M1 (M2 M3)) ((M4 M5) M6))
}

// ExampleSolvePipelined evaluates a two-matrix (MIN,+) string on the
// Design-1 pipelined systolic array.
func ExampleSolvePipelined() {
	a := &systolicdp.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 5, 2, 0}}
	b := &systolicdp.Matrix{Rows: 2, Cols: 2, Data: []float64{3, 1, 4, 2}}
	out, err := systolicdp.SolvePipelined([]*systolicdp.Matrix{a, b}, []float64{0, 0})
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output:
	// [2 2]
}

// ExampleSolveFeedback solves a node-valued serial problem — the form of
// equation (4) — on the Design-3 feedback array, recovering the optimal
// assignment from the path registers.
func ExampleSolveFeedback() {
	p := &systolicdp.NodeValued{
		Values: [][]float64{{0, 10}, {4, 6}, {5, 9}},
		F: func(x, y float64) float64 {
			if x > y {
				return x - y
			}
			return y - x
		},
	}
	res, err := systolicdp.SolveFeedback(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cost)
	fmt.Println(res.Path)
	// Output:
	// 5
	// [0 0 0]
}

// ExampleTableOne prints the architecture Table 1 prescribes for each of
// the paper's four formulation classes.
func ExampleTableOne() {
	for _, r := range systolicdp.TableOne() {
		fmt.Printf("%s: %s\n", r.Class, r.Requirements)
	}
	// Output:
	// monadic-serial: systolic processing
	// polyadic-serial: loose coupling for fine grain; tight coupling for coarse grain
	// monadic-nonserial: systolic processing
	// polyadic-nonserial: dataflow or systolic processing
}

// ExampleBranchAndBound shows the Section-1 equivalence: branch-and-bound
// with the dominance test finds the DP optimum.
func ExampleBranchAndBound() {
	rng := rand.New(rand.NewSource(3))
	g := systolicdp.RandomGraph(rng, 5, 4, 1, 10)
	cost, _, _, err := systolicdp.BranchAndBound(g, 1)
	if err != nil {
		panic(err)
	}
	base := systolicdp.ShortestPath(g)
	fmt.Println(math.Abs(cost-base.Cost) < 1e-9)
	// Output:
	// true
}

// ExampleOptimalGranularity reports the KT^2-optimal processor count for
// multiplying a string of 4096 matrices (Theorem 1 and Figure 6).
func ExampleOptimalGranularity() {
	fmt.Println(systolicdp.OptimalGranularity(4096))
	// Output:
	// 341
}
