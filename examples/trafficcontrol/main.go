// Traffic control: the Section 2.2 motivating application. A corridor of
// signalised intersections must pick green-phase offsets so a platoon of
// vehicles arrives at each light as it turns green; stage k's quantized
// values are candidate offsets for light k and the edge cost is the
// circular timing mismatch. The problem is monadic-serial, so it runs on
// the Design-3 feedback array (Figure 5), which inputs only node values —
// the order-of-magnitude I/O reduction the paper claims for this design.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"systolicdp"
)

func main() {
	const (
		lights  = 12 // intersections along the corridor
		offsets = 8  // candidate offsets per light
		seed    = 1985
	)
	rng := rand.New(rand.NewSource(seed))

	prob, err := systolicdp.Workload("traffic", rng, lights, offsets)
	if err != nil {
		log.Fatal(err)
	}

	res, err := systolicdp.SolveFeedback(prob)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corridor of %d lights, %d candidate offsets each\n", lights, offsets)
	fmt.Printf("total timing mismatch: %.2f s\n", res.Cost)
	fmt.Println("optimal offsets (s):")
	for k, idx := range res.Path {
		fmt.Printf("  light %2d: offset %6.2f\n", k+1, prob.Values[k][idx])
	}

	// The paper's Section 3.2 accounting: the array uses m PEs for
	// (N+1)*m iterations versus (N-1)*m^2+m serial steps.
	iters := (lights + 1) * offsets
	serial := (lights-1)*offsets*offsets + offsets
	fmt.Printf("\nDesign 3: %d PEs, %d iterations (serial: %d steps, PU = %.3f)\n",
		offsets, iters, serial, float64(serial)/float64(iters*offsets))
	fmt.Println("per-PE busy cycles:", res.Busy)
}
