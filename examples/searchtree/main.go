// Optimal binary search tree: the second polyadic DP example Section 2.1
// of the paper names. Builds the optimal tree for a word-frequency table,
// compares the O(n^3) polyadic DP with Knuth's O(n^2) speedup, and maps
// the problem's AND/OR-graph (the same shape as Figure 2) onto the
// systolic engine after Figure-8 serialisation.
package main

import (
	"fmt"
	"log"
	"strings"

	"systolicdp"

	"systolicdp/internal/obst"
	"systolicdp/internal/semiring"
)

func main() {
	// A small keyword-lookup table: keys in sorted order with access
	// weights, and gap weights for misses between them.
	keys := []string{"break", "case", "chan", "const", "defer", "func", "go", "if", "range", "return"}
	p := &systolicdp.BST{
		P: []float64{4, 10, 2, 6, 3, 22, 8, 25, 9, 18},
		Q: []float64{1, 2, 1, 1, 2, 3, 2, 4, 2, 3, 1},
	}

	cost, root, left, right, err := systolicdp.OptimalBST(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d keys, total weight %g\n", len(keys), total(p))
	fmt.Printf("optimal expected search cost: %g comparisons (weighted)\n", cost)
	fmt.Printf("root: %q\n\n", keys[root])
	printTree(keys, left, right, root, 0)

	// Ablation: the full polyadic DP vs Knuth's monotone-root window.
	full, err := p.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fast, err := p.SolveKnuth()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nO(n^3) DP inner iterations:  %d\n", full.Inner)
	fmt.Printf("Knuth O(n^2) inner iterations: %d (%.1fx fewer)\n",
		fast.Inner, float64(full.Inner)/float64(fast.Inner))

	// The problem's AND/OR-graph, serialised and run on the engine.
	g, err := p.BuildANDOR()
	if err != nil {
		log.Fatal(err)
	}
	leaves, ands, ors := g.Count()
	sg, dummies := g.Serialize()
	res, err := sg.MapSystolic(semiring.MinPlus{}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAND/OR-graph: %d leaves, %d AND, %d OR; +%d dummies to serialise\n",
		leaves, ands, ors, dummies)
	fmt.Printf("systolic evaluation: %g in %d wavefront cycles on %d PEs\n",
		res.RootValues[0], res.Cycles, res.Processors)
}

func total(p *obst.Problem) float64 {
	t := 0.0
	for _, v := range p.P {
		t += v
	}
	for _, v := range p.Q {
		t += v
	}
	return t
}

func printTree(keys []string, left, right []int, k, depth int) {
	if k < 0 {
		return
	}
	printTree(keys, left, right, right[k], depth+1)
	fmt.Printf("%s%s\n", strings.Repeat("      ", depth), keys[k])
	printTree(keys, left, right, left[k], depth+1)
}
