// Inventory control: one of the "practical sequentially controlled
// systems" (with Kalman filtering and multistage production) that Section
// 3.2 names as applications of the matrix-string systolic arrays. Periods
// are stages, stock levels are states, and the edge cost from stock s to
// stock s' in period t is the ordering + holding cost of covering that
// period's demand. The problem is monadic-serial, solved here on both
// Design 1 (pipelined) and Design 2 (broadcast) and cross-checked against
// the sequential DP baseline with plan reconstruction.
package main

import (
	"fmt"
	"log"
	"math"

	"systolicdp"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

const (
	periods   = 8    // planning horizon
	maxStock  = 9    // stock levels 0..maxStock
	orderCost = 12.0 // fixed cost per order placed
	unitCost  = 2.0  // per unit ordered
	holdCost  = 1.0  // per unit held per period
	initStock = 2
)

// demand per period.
var demand = []int{3, 2, 5, 1, 4, 6, 2, 3}

func main() {
	m := maxStock + 1
	inf := math.Inf(1)

	// Transition cost from stock s (before ordering) to stock s' (after
	// satisfying demand d): order q = s' + d - s.
	edge := func(s, next, d int) float64 {
		q := next + d - s
		if q < 0 {
			return inf // cannot sell back
		}
		c := unitCost*float64(q) + holdCost*float64(next)
		if q > 0 {
			c += orderCost
		}
		return c
	}

	// Build the matrix string: a 1 x m row from the fixed initial stock,
	// then (periods-1) full m x m period matrices; the final period's
	// costs become the initial vector of the array, requiring zero
	// terminal stock.
	var ms []*matrix.Matrix
	first := matrix.New(1, m, inf)
	for next := 0; next < m; next++ {
		first.Set(0, next, edge(initStock, next, demand[0]))
	}
	ms = append(ms, first)
	for t := 1; t < periods-1; t++ {
		mt := matrix.New(m, m, inf)
		for s := 0; s < m; s++ {
			for next := 0; next < m; next++ {
				mt.Set(s, next, edge(s, next, demand[t]))
			}
		}
		ms = append(ms, mt)
	}
	v := make([]float64, m)
	for s := 0; s < m; s++ {
		v[s] = edge(s, 0, demand[periods-1]) // must end with empty shelves
	}

	d1, err := systolicdp.SolvePipelined(ms, v)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := systolicdp.SolveBroadcast(ms, v)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline DP over the same graph, with plan reconstruction.
	g := &multistage.Graph{StageSizes: []int{1}, Cost: ms}
	for range ms {
		g.StageSizes = append(g.StageSizes, m)
	}
	last := matrix.New(m, 1, 0)
	for s := 0; s < m; s++ {
		last.Set(s, 0, v[s])
	}
	g.Cost = append(g.Cost, last)
	g.StageSizes = append(g.StageSizes, 1)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	best := multistage.SolveOptimal(semiring.MinPlus{}, g)

	fmt.Printf("%d periods, demand %v, initial stock %d\n", periods, demand, initStock)
	fmt.Printf("design 1 (pipelined): %.1f\n", d1[0])
	fmt.Printf("design 2 (broadcast): %.1f\n", d2[0])
	fmt.Printf("baseline DP:          %.1f\n", best.Cost)
	if math.Abs(d1[0]-best.Cost) > 1e-9 || math.Abs(d2[0]-best.Cost) > 1e-9 {
		log.Fatal("systolic arrays disagree with the baseline")
	}

	fmt.Println("\noptimal plan (stock after each period):")
	stock := initStock
	for t := 0; t < periods; t++ {
		next := 0
		if t < periods-1 {
			next = best.Nodes[t+1]
		}
		order := next + demand[t] - stock
		fmt.Printf("  period %d: demand %d, order %2d, carry %d\n", t+1, demand[t], order, next)
		stock = next
	}
}
