// Resource allocation with ternary interactions: a monadic-nonserial
// problem (Section 6.1). A pipeline of processing stages must each pick a
// buffer size; the congestion cost of stage k depends on its own choice
// and BOTH downstream neighbours — g(v_k, v_{k+1}, v_{k+2}) — so the
// objective is nonserial. Following the paper, the variables are grouped
// pairwise (V'_i = (V_i, V_{i+1})), producing a serial problem that the
// Design-3 systolic array solves; the elimination step count matches
// equation (40).
package main

import (
	"fmt"
	"log"
	"math"

	"systolicdp"

	"systolicdp/internal/nonserial"
)

func main() {
	// Candidate buffer sizes shared by all 6 pipeline stages.
	sizes := []float64{1, 2, 4, 8}
	chain := &nonserial.Chain3{
		G: congestion,
		Domains: [][]float64{
			sizes, sizes, sizes, sizes, sizes, sizes,
		},
	}

	p := chain.AsProblem()
	fmt.Printf("6 stages, %d candidate buffer sizes each\n", len(sizes))
	fmt.Printf("interaction edges: %v (serial: %v)\n", p.InteractionEdges(), p.IsSerial())

	// Direct elimination (equations (37)-(39)).
	cost, steps, err := chain.Eliminate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelimination optimum: %.3f in %d steps (eq (40) predicts %d)\n",
		cost, steps, chain.StepsEq40())

	// Grouped serial problem on the Design-3 array.
	nv, err := chain.GroupToSerial()
	if err != nil {
		log.Fatal(err)
	}
	res, err := systolicdp.SolveFeedback(nv)
	if err != nil {
		log.Fatal(err)
	}
	m, _ := nv.Uniform()
	fmt.Printf("grouped serial form: %d composite stages of %d states each\n", len(nv.Values), m)
	fmt.Printf("Design-3 optimum:    %.3f (matches: %v)\n", res.Cost, math.Abs(res.Cost-cost) < 1e-9)

	// Decode the composite path back to per-stage buffer sizes.
	radix := len(sizes)
	buffers := make([]float64, 0, len(chain.Domains))
	for i, code := range res.Path {
		pair := int(nv.Values[i][code])
		a, b := pair/radix%radix, pair%radix
		if i == 0 {
			buffers = append(buffers, sizes[a])
		}
		buffers = append(buffers, sizes[b])
	}
	fmt.Printf("optimal buffer sizes: %v\n", buffers)

	// Brute force confirms on this small instance.
	_, brute, err := p.BruteForce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force:         %.3f\n", brute)
}

// congestion charges for imbalance across a sliding window of three
// stages: a stage flanked by much smaller buffers backs up, and oversized
// buffers waste memory.
func congestion(a, b, c float64) float64 {
	imbalance := math.Abs(a-b) + math.Abs(b-c)
	memory := 0.05 * (a + b + c)
	stall := 6 / b // undersized middle buffers stall the pipeline
	backlog := 0.0
	if b > a+c {
		backlog = b - (a + c)
	}
	return imbalance + memory + stall + 2*backlog
}
