// Matrix-chain ordering: the paper's running polyadic-nonserial example
// (equation (6), Figure 2). Finds the optimal parenthesisation, inspects
// the AND/OR-graph and its Figure-8 serialisation, compares the
// broadcast-bus and systolic timing models of Propositions 2-3, and then
// multiplies the chain in the optimal order with the Section-4
// divide-and-conquer scheduler.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"systolicdp"

	"systolicdp/internal/matchain"
	"systolicdp/internal/semiring"
)

func main() {
	// The classic instance plus a larger random one.
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	n := len(dims) - 1

	cost, order, err := systolicdp.OptimalOrder(dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain of %d matrices, dims %v\n", n, dims)
	fmt.Printf("optimal cost:  %.0f scalar multiplications\n", cost)
	fmt.Printf("optimal order: %s\n", order)

	// The AND/OR-graph of Figure 2 and its serialisation (Figure 8).
	g, err := matchain.BuildANDOR(dims)
	if err != nil {
		log.Fatal(err)
	}
	leaves, ands, ors := g.Count()
	fmt.Printf("\nFigure 2 AND/OR-graph: %d leaves, %d AND, %d OR; serial: %v\n",
		leaves, ands, ors, g.IsSerial())
	sg, dummies := g.Serialize()
	fmt.Printf("after Figure 8 serialisation: +%d dummy nodes; serial: %v\n", dummies, sg.IsSerial())
	vals, err := sg.Evaluate(semiring.MinPlus{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialised graph optimum: %.0f (unchanged)\n", vals[sg.Roots[0]])

	// Propositions 2-3: completion times of the two parallel designs.
	bus, err := matchain.SimulateBus(dims)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := matchain.SimulateSystolic(dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbroadcast-bus design:  T_d = %g steps on %d processors (Prop 2: N = %d)\n",
		bus.Completion, bus.Processors, n)
	fmt.Printf("serialised systolic:   T_p = %g steps (Prop 3: 2N = %d)\n", sys.Completion, 2*n)

	// Finally, multiply an actual chain in parallel: random (MIN,+)
	// matrices stand in for the numeric payload.
	rng := rand.New(rand.NewSource(42))
	ms := make([]*systolicdp.Matrix, 32)
	for i := range ms {
		ms[i] = randomMatrix(rng, 8)
	}
	k := systolicdp.OptimalGranularity(len(ms))
	prod, err := systolicdp.ParallelChainProduct(ms, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultiplied a 32-matrix (MIN,+) chain on K = %d workers (N/log2 N); product is %dx%d\n",
		k, prod.Rows, prod.Cols)
}

func randomMatrix(rng *rand.Rand, n int) *systolicdp.Matrix {
	m := &systolicdp.Matrix{Rows: n, Cols: n, Data: make([]float64, n*n)}
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 10
	}
	return m
}
