// Paper walkthrough: reconstructs the paper's own worked figures on tiny
// instances and checks each narrated number — Figure 1(a)'s five-stage
// graph as the matrix string A.(B.(C.D)), Figure 1(b)'s 4x3 node-valued
// graph finishing in 15 iterations on Design 3, Figure 2's four-matrix
// AND/OR-graph with its three top-level parenthesisations, Figure 7's
// two-variable reduction, and Figure 6's KT^2 minimum region.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"systolicdp"

	"systolicdp/internal/andor"
	"systolicdp/internal/dnc"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func main() {
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1985))

	fmt.Println("— Figure 1(a): single-source single-sink multistage graph —")
	inner := multistage.RandomUniform(rng, 3, 3, 1, 9)
	g := multistage.SingleSourceSink(mp, inner)
	best := multistage.SolveOptimal(mp, g)
	mats := g.Matrices()
	k := len(mats)
	d1, err := systolicdp.SolvePipelined(mats[:k-1], mats[k-1].Col(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  5 stages; A.(B.(C.D)) on Design 1 = %.3f; baseline = %.3f\n\n", d1[0], best.Cost)

	fmt.Println("— Figure 1(b): 4 stages x 3 values, Design 3 in (N+1)m = 15 iterations —")
	nv := multistage.RandomNodeValued(rng, 4, 3, 0, 10)
	arr, err := fbarray.New(nv)
	if err != nil {
		log.Fatal(err)
	}
	res, err := arr.Run(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  iterations: %d (paper: 15); cost %.3f; assignment %v\n\n",
		arr.Iterations(), res.Cost, res.Path)

	fmt.Println("— Figure 2: AND/OR-graph for M1 x M2 x M3 x M4 —")
	dims := []int{5, 4, 6, 2, 7}
	ao, err := matchain.BuildANDOR(dims)
	if err != nil {
		log.Fatal(err)
	}
	leaves, ands, ors := ao.Count()
	root := ao.Roots[0]
	fmt.Printf("  %d leaves, %d AND, %d OR; top node has %d children (the paper's three orderings)\n",
		leaves, ands, ors, len(ao.Nodes[root].Children))
	cost, order, err := systolicdp.OptimalOrder(dims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimal: %s at %.0f scalar multiplications\n\n", order, cost)

	fmt.Println("— Figure 7: reducing a three-stage graph (m=2, p=2) to one stage —")
	g3 := multistage.RandomUniform(rng, 3, 2, 1, 9) // 3 stages = 2 cost matrices = p^1
	r, err := andor.BuildRegular(g3, 2)
	if err != nil {
		log.Fatal(err)
	}
	l7, a7, o7 := r.Count()
	fmt.Printf("  bottom level %d cost values (paper: p*m^2 = 8), %d AND (m^{p+1} = 8), %d OR\n",
		l7, a7, o7)
	fmt.Printf("  u(2) formula: %g; built: %d\n\n", andor.UP(2, 2, 2), l7+a7+o7)

	fmt.Println("— Figure 6: KT^2 over K for N = 4096 —")
	ks, min := dnc.ArgminKT2(4096, 1, 4096)
	fmt.Printf("  measured argmin K = %v (KT^2 = %g); N/log2N = %d\n", ks, min, dnc.OptimalGranularity(4096))
	for _, kk := range []int{431, 465} {
		fmt.Printf("  paper's K = %d: T = %g, KT^2 = %g (%.1f%% above measured min)\n",
			kk, dnc.TimeEq29(4096, kk), dnc.KT2Eq29(4096, kk), 100*(dnc.KT2Eq29(4096, kk)/min-1))
	}
}
