// Quickstart: solve a multistage shortest-path problem — the paper's
// canonical monadic-serial DP problem — four ways: the sequential
// baseline, Design 1 (pipelined array), Design 2 (broadcast array), and
// Design 3 (feedback array on the node-valued form).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"systolicdp"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// An 6-stage graph with 4 nodes per stage, wrapped to a single source
	// and sink as in Figure 1(a).
	inner := systolicdp.RandomGraph(rng, 6, 4, 1, 10)
	g := systolicdp.SingleSourceSink(inner)

	// Baseline: sequential DP with path reconstruction.
	best := systolicdp.ShortestPath(g)
	fmt.Printf("baseline:  cost %.3f  path %v\n", best.Cost, best.Nodes)

	// Designs 1-2 evaluate the equivalent string of (MIN,+) matrix
	// products A.(B.(...(Z.v))).
	mats := g.Cost
	k := len(mats)
	v := mats[k-1].Col(0)

	d1, err := systolicdp.SolvePipelined(mats[:k-1], v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design 1:  cost %.3f  (pipelined array, Figure 3)\n", d1[0])

	d2, err := systolicdp.SolveBroadcast(mats[:k-1], v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design 2:  cost %.3f  (broadcast array, Figure 4)\n", d2[0])

	// Design 3 wants the node-valued form of equation (4): stage values
	// plus a cost function. Build one and solve it with path registers.
	nv := &systolicdp.NodeValued{
		Values: [][]float64{
			{2, 5, 9},
			{1, 4, 8},
			{3, 6, 7},
			{0, 5, 10},
		},
		F: func(x, y float64) float64 {
			if x > y {
				return x - y
			}
			return y - x
		},
	}
	res, err := systolicdp.SolveFeedback(nv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design 3:  cost %.3f  assignment %v  (feedback array, Figure 5)\n", res.Cost, res.Path)

	// The classification front-end picks the architecture per Table 1.
	sol, err := systolicdp.Solve(&systolicdp.MultistageProblem{Graph: g, Design: 2})
	if err != nil {
		log.Fatal(err)
	}
	rec := systolicdp.Recommend(sol.Class)
	fmt.Printf("dispatch:  class %s -> %s (%s): cost %.3f\n",
		sol.Class, rec.Method, rec.Requirements, sol.Cost)
}
