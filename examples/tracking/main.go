// Quantized optimal tracking control: the "sequentially controlled
// systems" extension of Section 3.2 (Kalman filtering, inventory,
// multistage production). A scalar plant must follow a reference
// trajectory under quantized states and controls; quantized DP reduces the
// problem to a multistage shortest path whose stage matrices run directly
// on the Design-1 and Design-2 systolic arrays.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"systolicdp"

	"systolicdp/internal/control"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/semiring"
)

func main() {
	sys := &control.System{
		A: 0.9, B: 1.0, // a slightly leaky integrator
		Qw: 1.0, Rw: 0.25,
		Ref:      []float64{0, 0.5, 1.5, 2.5, 3.5, 4, 4, 4, 3, 2, 1, 0},
		States:   gridRange(0, 4.5, 19),
		Controls: gridRange(-1.5, 1.5, 13),
		X0:       0,
	}

	tr, err := sys.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("horizon %d steps, %d quantized states, %d quantized controls\n",
		sys.Horizon(), len(sys.States), len(sys.Controls))
	fmt.Printf("optimal quantized cost: %.4f\n\n", tr.Cost)
	fmt.Println(" t   ref    x      u      |x-ref|")
	for t := 0; t < len(tr.States); t++ {
		u := math.NaN()
		if t < len(tr.Controls) {
			u = tr.Controls[t]
		}
		bar := strings.Repeat("#", int(tr.States[t]*4))
		if t < len(tr.Controls) {
			fmt.Printf("%2d  %5.2f  %5.2f  %5.2f  %7.3f  %s\n", t, sys.Ref[t], tr.States[t], u, math.Abs(tr.States[t]-sys.Ref[t]), bar)
		} else {
			fmt.Printf("%2d  %5.2f  %5.2f      -  %7.3f  %s\n", t, sys.Ref[t], tr.States[t], math.Abs(tr.States[t]-sys.Ref[t]), bar)
		}
	}

	// The same problem on the systolic arrays.
	ms, v, err := sys.MatrixString()
	if err != nil {
		log.Fatal(err)
	}
	d1, err := systolicdp.SolvePipelined(ms, v)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := systolicdp.SolveBroadcast(ms, v)
	if err != nil {
		log.Fatal(err)
	}
	// Design 3 runs the staged form: per-stage F_i units computing edge
	// costs from node values on-array (one input word per iteration).
	staged, err := sys.ToStaged()
	if err != nil {
		log.Fatal(err)
	}
	arr3, err := fbarray.NewStaged(semiring.MinPlus{}, staged)
	if err != nil {
		log.Fatal(err)
	}
	r3, err := arr3.Run(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDesign 1 (pipelined array):  %.4f\n", d1[0])
	fmt.Printf("Design 2 (broadcast array):  %.4f\n", d2[0])
	fmt.Printf("Design 3 (feedback, staged): %.4f\n", r3.Cost)
	if math.Abs(d1[0]-tr.Cost) > 1e-9 || math.Abs(d2[0]-tr.Cost) > 1e-9 || math.Abs(r3.Cost-tr.Cost) > 1e-9 {
		log.Fatal("systolic arrays disagree with the DP baseline")
	}
	fmt.Println("all four agree.")
}

func gridRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
