// Package systolicdp is a Go reproduction of Wah & Li, "Systolic
// Processing for Dynamic Programming Problems" (ICPP 1985 / Algorithmica).
//
// The paper classifies dynamic-programming formulations into four classes
// and maps each to a parallel architecture:
//
//   - monadic-serial: solved as a string of (MIN,+) matrix products on one
//     of three linear systolic arrays (Figures 3-5) — the pipelined array,
//     the broadcast array, and the feedback array with path registers;
//   - polyadic-serial: solved by parallel divide-and-conquer over the
//     product tree, with the KT^2-optimal granularity K = Theta(N/log2 N)
//     (Figure 6, Theorem 1, Proposition 1), or by searching a regular
//     AND/OR-graph whose size u(p) is minimised by binary partitioning
//     (Theorem 2);
//   - monadic-nonserial: transformed into a serial problem by grouping
//     variables (Section 6.1) and then run on the systolic arrays;
//   - polyadic-nonserial: searched as an AND/OR-graph, optionally
//     serialised with dummy nodes into a planar systolic structure
//     (Propositions 2-3, the Guibas-Kung-Thompson array).
//
// The paper's VLSI processing elements are simulated: a deterministic
// lock-step engine gives exact cycle accounting against the paper's closed
// forms, and a goroutine-per-PE runner (channels as pipeline registers)
// executes the same PE logic concurrently.
//
// This package is the public facade; the implementation lives under
// internal/ (one package per subsystem — see DESIGN.md for the inventory
// and EXPERIMENTS.md for the paper-vs-measured record).
package systolicdp
