// Package control implements quantized discrete-time optimal control —
// the "practical sequentially controlled systems, such as Kalman
// filtering, inventory systems, and multistage production processes" that
// Section 3.2 names as the natural extension of the matrix-string systolic
// arrays, where each stage carries many quantized values.
//
// The plant is x_{t+1} = A*x_t + B*u_t with state and control restricted
// to quantized grids; the objective is the LQ tracking cost
//
//	sum_t [ Qw*(x_t - ref_t)^2 + Rw*u_t^2 ]
//
// Quantized DP turns this into a multistage shortest-path problem: stage t
// holds the state grid, and the edge (x, x') costs the cheapest quantized
// control that steers x to x'. The resulting stage matrices feed Designs
// 1-2 directly, and ToStaged targets the Design-3 feedback array with
// per-stage F units (the general, subscripted form of Figure 5).
package control

import (
	"fmt"
	"math"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

// System is a quantized scalar control problem.
type System struct {
	A, B     float64   // dynamics x' = A*x + B*u
	Qw, Rw   float64   // tracking and control-effort weights
	Ref      []float64 // reference trajectory ref_0..ref_T (T+1 values)
	States   []float64 // quantized state grid (ascending)
	Controls []float64 // quantized control grid
	X0       float64   // initial state (snapped to the grid)
}

// Validate checks the configuration.
func (s *System) Validate() error {
	if len(s.Ref) < 2 {
		return fmt.Errorf("control: need a reference of at least 2 points, have %d", len(s.Ref))
	}
	if len(s.States) == 0 || len(s.Controls) == 0 {
		return fmt.Errorf("control: empty state or control grid")
	}
	if s.Qw < 0 || s.Rw < 0 {
		return fmt.Errorf("control: negative weights")
	}
	for i := 1; i < len(s.States); i++ {
		if s.States[i] <= s.States[i-1] {
			return fmt.Errorf("control: state grid not strictly ascending at %d", i)
		}
	}
	return nil
}

// Horizon returns T, the number of control steps.
func (s *System) Horizon() int { return len(s.Ref) - 1 }

// snap returns the index of the grid point nearest to x.
func snap(grid []float64, x float64) int {
	best, arg := math.Inf(1), 0
	for i, g := range grid {
		if d := math.Abs(g - x); d < best {
			best, arg = d, i
		}
	}
	return arg
}

// stageCost is the running cost charged when leaving state x at time t
// with control u.
func (s *System) stageCost(t int, x, u float64) float64 {
	e := x - s.Ref[t]
	return s.Qw*e*e + s.Rw*u*u
}

// Graph expands the system into a multistage graph: stage 0 is the
// (snapped) initial state alone, stages 1..T the full state grid. The
// edge (x, x') at step t costs the cheapest control whose successor snaps
// to x' (+inf if no control reaches it); a terminal tracking cost on x_T
// is folded into the last stage's edges.
func (s *System) Graph() (*multistage.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inf := math.Inf(1)
	tN := s.Horizon()
	m := len(s.States)
	x0 := snap(s.States, s.X0)
	g := &multistage.Graph{StageSizes: []int{1}}
	for t := 1; t <= tN; t++ {
		g.StageSizes = append(g.StageSizes, m)
	}
	for t := 0; t < tN; t++ {
		rows := m
		if t == 0 {
			rows = 1
		}
		c := matrix.New(rows, m, inf)
		for ri := 0; ri < rows; ri++ {
			si := ri
			if t == 0 {
				si = x0
			}
			x := s.States[si]
			for _, u := range s.Controls {
				next := s.A*x + s.B*u
				ni := snap(s.States, next)
				cost := s.stageCost(t, x, u)
				if t == tN-1 {
					// Terminal tracking cost on the final state.
					e := s.States[ni] - s.Ref[tN]
					cost += s.Qw * e * e
				}
				if cost < c.At(ri, ni) {
					c.Set(ri, ni, cost)
				}
			}
		}
		g.Cost = append(g.Cost, c)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Trajectory is an optimal quantized plan.
type Trajectory struct {
	Cost     float64
	States   []float64 // x_0..x_T on the grid
	Controls []float64 // u_0..u_{T-1}, the cheapest control per transition
}

// Solve computes the optimal quantized trajectory with the sequential DP
// baseline and recovers the control sequence.
func (s *System) Solve() (*Trajectory, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	mp := semiring.MinPlus{}
	best := multistage.SolveOptimal(mp, g)
	tr := &Trajectory{Cost: best.Cost}
	x0 := snap(s.States, s.X0)
	tr.States = append(tr.States, s.States[x0])
	prev := x0
	for t := 1; t < len(best.Nodes); t++ {
		ni := best.Nodes[t]
		tr.States = append(tr.States, s.States[ni])
		// Recover the cheapest control achieving this transition.
		bu, bc := math.NaN(), math.Inf(1)
		for _, u := range s.Controls {
			if snap(s.States, s.A*s.States[prev]+s.B*u) == ni {
				if c := s.stageCost(t-1, s.States[prev], u); c < bc {
					bu, bc = u, c
				}
			}
		}
		tr.Controls = append(tr.Controls, bu)
		prev = ni
	}
	return tr, nil
}

// MatrixString returns the graph's cost matrices arranged for Designs 1-2
// (the string without the final column, plus the initial vector).
func (s *System) MatrixString() (ms []*matrix.Matrix, v []float64, err error) {
	g, err := s.Graph()
	if err != nil {
		return nil, nil, err
	}
	mats := g.Matrices()
	k := len(mats)
	if k < 2 {
		return nil, nil, fmt.Errorf("control: horizon %d too short for the array designs (need >= 2 steps)", s.Horizon())
	}
	// Designs 1-2 consume the rightmost matrix as the moving input vector,
	// so the string must end in an m x m matrix followed by a vector; use
	// the final stage costs folded with a zero terminal vector.
	last := mats[k-1]
	v = make([]float64, last.Rows)
	mp := semiring.MinPlus{}
	for i := 0; i < last.Rows; i++ {
		v[i] = semiring.Fold(mp, last.Row(i))
	}
	return mats[:k-1], v, nil
}

// ToStaged expresses the system as a staged node-valued problem for the
// Design-3 feedback array with per-stage F units: every stage carries the
// full state grid (Design 3 needs uniform stages), the initial state is
// enforced by charging +inf for leaving any other stage-0 state, and the
// terminal tracking cost folds into the final transition, exactly as in
// Graph.
func (s *System) ToStaged() (*multistage.StagedNodeValued, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tN := s.Horizon()
	x0 := snap(s.States, s.X0)
	p := &multistage.StagedNodeValued{}
	for t := 0; t <= tN; t++ {
		p.Values = append(p.Values, append([]float64(nil), s.States...))
	}
	states := append([]float64(nil), s.States...)
	controls := append([]float64(nil), s.Controls...)
	sys := *s
	p.FK = func(k int, x, y float64) float64 {
		if k == 0 && snap(states, x) != x0 {
			return math.Inf(1) // only the initial state leaves stage 0
		}
		ni := snap(states, y)
		best := math.Inf(1)
		for _, u := range controls {
			if snap(states, sys.A*x+sys.B*u) != ni {
				continue
			}
			cost := sys.stageCost(k, x, u)
			if cost < best {
				best = cost
			}
		}
		if k == tN-1 && best < math.Inf(1) {
			e := states[ni] - sys.Ref[tN]
			best += sys.Qw * e * e
		}
		return best
	}
	return p, nil
}
