package control

import (
	"math"
	"testing"
	"testing/quick"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func grid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func stepSystem() *System {
	return &System{
		A: 1, B: 1, Qw: 1, Rw: 0.1,
		Ref:      []float64{0, 1, 2, 3, 4, 4, 4, 4},
		States:   grid(0, 5, 11),
		Controls: grid(-2, 2, 9),
		X0:       0,
	}
}

func TestValidate(t *testing.T) {
	if err := stepSystem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := stepSystem()
	bad.Ref = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("short reference accepted")
	}
	bad = stepSystem()
	bad.States = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty state grid accepted")
	}
	bad = stepSystem()
	bad.States = []float64{1, 1}
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending grid accepted")
	}
	bad = stepSystem()
	bad.Qw = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSnap(t *testing.T) {
	g := []float64{0, 1, 2}
	if snap(g, 0.4) != 0 || snap(g, 0.6) != 1 || snap(g, 99) != 2 {
		t.Error("snap wrong")
	}
}

func TestTrackingRampThenHold(t *testing.T) {
	s := stepSystem()
	tr, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.States) != len(s.Ref) || len(tr.Controls) != s.Horizon() {
		t.Fatalf("trajectory lengths: %d states, %d controls", len(tr.States), len(tr.Controls))
	}
	// The optimal quantized trajectory should end at the reference.
	if math.Abs(tr.States[len(tr.States)-1]-4) > 0.5+1e-9 {
		t.Errorf("final state %v, want near 4", tr.States[len(tr.States)-1])
	}
	// Every state must lie on the grid and respect the dynamics to within
	// one quantisation cell.
	for i, x := range tr.States {
		if snapVal(s.States, x) != x {
			t.Errorf("state %d = %v off grid", i, x)
		}
	}
	for t2 := 0; t2 < s.Horizon(); t2++ {
		next := s.A*tr.States[t2] + s.B*tr.Controls[t2]
		if math.Abs(next-tr.States[t2+1]) > 0.25+1e-9 { // half a cell
			t.Errorf("step %d: dynamics violated: %v -> %v (u=%v)", t2, tr.States[t2], tr.States[t2+1], tr.Controls[t2])
		}
	}
}

func snapVal(grid []float64, x float64) float64 { return grid[snap(grid, x)] }

func TestDesigns12MatchBaseline(t *testing.T) {
	s := stepSystem()
	ms, v, err := s.MatrixString()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := pipearray.Solve(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bcastarray.Solve(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1[0]-tr.Cost) > 1e-9 {
		t.Errorf("Design 1 %v != baseline %v", d1[0], tr.Cost)
	}
	if math.Abs(d2[0]-tr.Cost) > 1e-9 {
		t.Errorf("Design 2 %v != baseline %v", d2[0], tr.Cost)
	}
}

func TestFinerGridNeverWorse(t *testing.T) {
	coarse := stepSystem()
	coarse.States = grid(0, 5, 6)
	fine := stepSystem()
	fine.States = grid(0, 5, 21)
	// Refine so that the coarse grid is a subset of the fine one
	// (6 points step 1.0; 21 points step 0.25): every coarse plan is
	// feasible on the fine grid, so the fine optimum cannot be worse.
	ct, err := coarse.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ft, err := fine.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ft.Cost > ct.Cost+1e-9 {
		t.Errorf("finer grid cost %v worse than coarse %v", ft.Cost, ct.Cost)
	}
}

func TestZeroControlWeightTracksExactly(t *testing.T) {
	// With free control effort and a reachable reference on the grid, the
	// tracking error should be zero.
	s := &System{
		A: 1, B: 1, Qw: 1, Rw: 0,
		Ref:      []float64{0, 1, 2, 1, 0},
		States:   grid(0, 3, 4),
		Controls: grid(-2, 2, 17),
		X0:       0,
	}
	tr, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost > 1e-9 {
		t.Errorf("cost %v, want 0 (perfect tracking)", tr.Cost)
	}
	for i, x := range tr.States {
		if math.Abs(x-s.Ref[i]) > 1e-9 {
			t.Errorf("state %d = %v, ref %v", i, x, s.Ref[i])
		}
	}
}

func TestGraphShape(t *testing.T) {
	s := stepSystem()
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Stages() != len(s.Ref) {
		t.Errorf("stages %d, want %d", g.Stages(), len(s.Ref))
	}
	if g.StageSizes[0] != 1 {
		t.Error("stage 0 must hold only the initial state")
	}
	// Against brute force on a tiny instance.
	tiny := &System{
		A: 1, B: 1, Qw: 1, Rw: 0.5,
		Ref:      []float64{0, 1, 2},
		States:   grid(0, 2, 3),
		Controls: grid(-1, 1, 5),
		X0:       0,
	}
	tg, err := tiny.Graph()
	if err != nil {
		t.Fatal(err)
	}
	opt := multistage.SolveOptimal(mp, tg)
	bf := multistage.BruteForce(mp, tg)
	if math.Abs(opt.Cost-bf.Cost) > 1e-9 {
		t.Errorf("DP %v != brute force %v", opt.Cost, bf.Cost)
	}
}

func TestMatrixStringTooShort(t *testing.T) {
	s := stepSystem()
	s.Ref = []float64{0, 1}
	if _, _, err := s.MatrixString(); err == nil {
		t.Error("1-step horizon accepted by MatrixString")
	}
}

func TestPropertyDesignsAgree(t *testing.T) {
	f := func(seed int64) bool {
		// Vary the reference deterministically from the seed.
		ref := make([]float64, 5)
		x := float64(seed%7) / 2
		for i := range ref {
			ref[i] = math.Mod(x+float64(i), 4)
		}
		s := &System{
			A: 1, B: 1, Qw: 1, Rw: 0.2,
			Ref:      ref,
			States:   grid(0, 4, 9),
			Controls: grid(-2, 2, 9),
			X0:       0,
		}
		tr, err := s.Solve()
		if err != nil {
			return false
		}
		ms, v, err := s.MatrixString()
		if err != nil {
			return false
		}
		d2, err := bcastarray.Solve(ms, v)
		if err != nil {
			return false
		}
		return math.Abs(d2[0]-tr.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDesign3StagedMatchesBaseline(t *testing.T) {
	s := stepSystem()
	nv, err := s.ToStaged()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := fbarray.NewStaged(mp, nv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := arr.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-tr.Cost) > 1e-9 {
		t.Errorf("Design 3 (staged) %v != baseline %v", res.Cost, tr.Cost)
	}
	// The array's reconstructed state sequence must start at the initial
	// state and match the baseline cost when replayed.
	if res.Path[0] != snap(s.States, s.X0) {
		t.Errorf("staged path starts at state %d, want %d", res.Path[0], snap(s.States, s.X0))
	}
}
