package dnc

import (
	"container/heap"
	"fmt"

	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// Section 4's closing observation: when the matrices have different
// dimensions, the multiplication order matters (the "secondary
// optimization problem"); once the optimal order is found — itself a
// polyadic-nonserial DP problem solved by matchain — processors can be
// assigned to evaluate the products asynchronously, treating the
// parenthesisation tree as a dataflow graph. DataflowChain implements
// exactly that pipeline.

// DataflowStats reports an asynchronous dataflow evaluation.
type DataflowStats struct {
	Workers  int
	TotalOps float64 // sum of scalar-multiplication counts over all products
	Makespan float64 // simulated completion time (ops units)
	Products int     // number of matrix products (n-1)
}

// freeHeap is a min-heap of worker free times.
type freeHeap []float64

func (h freeHeap) Len() int            { return len(h) }
func (h freeHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h freeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *freeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// dfTask is one product node of the parenthesisation tree.
type dfTask struct {
	left, right *dfTask // nil for leaves
	leaf        int     // leaf matrix index when left == nil
	dur         float64 // scalar multiplications for this product
	pending     int     // unfinished children
	ready       float64 // max child finish time
	parent      *dfTask
	value       *matrix.Matrix
}

// readyHeap orders runnable tasks by ready time, breaking ties toward
// longer tasks (a longest-processing-time flavour of list scheduling).
type readyHeap []*dfTask

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].dur > h[j].dur
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(*dfTask)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DataflowChain multiplies the string ms in the optimal parenthesisation
// order on `workers` asynchronous processors: the ordering DP of
// equation (6) fixes the tree, and a list scheduler assigns each product
// to the earliest-free worker once its operands exist. Task durations are
// the products' scalar-multiplication counts, so Makespan with one worker
// equals the ordering DP's optimal cost.
func DataflowChain(s semiring.Semiring, ms []*matrix.Matrix, workers int) (*matrix.Matrix, *DataflowStats, error) {
	if len(ms) == 0 {
		return nil, nil, fmt.Errorf("dnc: empty matrix string")
	}
	if workers < 1 {
		return nil, nil, fmt.Errorf("dnc: need workers >= 1, have %d", workers)
	}
	dims := make([]int, 0, len(ms)+1)
	dims = append(dims, ms[0].Rows)
	for i, m := range ms {
		if m.Rows != dims[i] {
			return nil, nil, fmt.Errorf("dnc: matrix %d has %d rows, want %d", i, m.Rows, dims[i])
		}
		dims = append(dims, m.Cols)
	}
	tab, err := matchain.DP(dims)
	if err != nil {
		return nil, nil, err
	}

	// Build the task tree from the split table.
	var build func(i, j int, parent *dfTask) *dfTask
	var all []*dfTask
	build = func(i, j int, parent *dfTask) *dfTask {
		t := &dfTask{parent: parent, leaf: -1}
		if i == j {
			t.leaf = i
			t.value = ms[i]
			return t
		}
		k := tab.Split[i][j]
		t.left = build(i, k, t)
		t.right = build(k+1, j, t)
		t.pending = 0
		if t.left.leaf < 0 {
			t.pending++
		}
		if t.right.leaf < 0 {
			t.pending++
		}
		t.dur = float64(dims[i] * dims[k+1] * dims[j+1])
		all = append(all, t)
		return t
	}
	root := build(0, tab.N-1, nil)

	st := &DataflowStats{Workers: workers, Products: len(all)}
	for _, t := range all {
		st.TotalOps += t.dur
	}
	if root.leaf >= 0 {
		// Single matrix: nothing to multiply.
		return ms[0].Clone(), st, nil
	}

	// List scheduling: ready tasks to the earliest-free worker.
	var ready readyHeap
	for _, t := range all {
		if t.pending == 0 {
			heap.Push(&ready, t)
		}
	}
	free := make(freeHeap, workers)
	heap.Init(&free)
	for ready.Len() > 0 {
		t := heap.Pop(&ready).(*dfTask)
		wf := heap.Pop(&free).(float64)
		start := t.ready
		if wf > start {
			start = wf
		}
		finish := start + t.dur
		heap.Push(&free, finish)
		// "Execute" the product.
		t.value = matrix.MulMat(s, t.left.value, t.right.value)
		if finish > st.Makespan {
			st.Makespan = finish
		}
		if p := t.parent; p != nil {
			if finish > p.ready {
				p.ready = finish
			}
			p.pending--
			if p.pending == 0 {
				heap.Push(&ready, p)
			}
		}
	}
	return root.value, st, nil
}

// BalancedOps returns the total scalar-multiplication count of the
// balanced (mid-split) tree for the same dimensions — the fixed-shape
// baseline the optimal ordering beats on heterogeneous chains.
func BalancedOps(dims []int) float64 {
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i == j {
			return 0
		}
		k := (i + j) / 2
		return rec(i, k) + rec(k+1, j) + float64(dims[i]*dims[k+1]*dims[j+1])
	}
	return rec(0, len(dims)-2)
}
