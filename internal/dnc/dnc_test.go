package dnc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

func TestTimeEq29Basics(t *testing.T) {
	if got := TimeEq29(1, 5); got != 0 {
		t.Errorf("T(1,5) = %v, want 0 (nothing to multiply)", got)
	}
	// n=2, k=1: one product.
	if got := TimeEq29(2, 1); got != 1 {
		t.Errorf("T(2,1) = %v, want 1", got)
	}
	// Serial evaluation: n-1 products.
	if got := TimeEq29(9, 1); got != 8 {
		t.Errorf("T(9,1) = %v, want 8", got)
	}
	// Unlimited processors: tree height log2(n).
	if got := TimeEq29(8, 8); got != 3 {
		t.Errorf("T(8,8) = %v, want 3", got)
	}
	if !math.IsNaN(TimeEq29(0, 1)) || !math.IsNaN(TimeEq29(4, 0)) {
		t.Error("invalid arguments must yield NaN")
	}
}

func TestScheduleMatchesEq29(t *testing.T) {
	// The greedy level-synchronous schedule attains equation (29) exactly
	// across a broad sweep.
	for n := 2; n <= 400; n += 13 {
		for k := 1; k <= n; k += 5 {
			st, err := Schedule(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := TimeEq29(n, k); float64(st.Time) != want {
				t.Errorf("n=%d k=%d: simulated %d, eq29 %v", n, k, st.Time, want)
			}
			if st.Busy != n-1 {
				t.Errorf("n=%d k=%d: busy %d, want %d products", n, k, st.Busy, n-1)
			}
		}
	}
}

func TestScheduleN4096(t *testing.T) {
	st, err := Schedule(4096, 431)
	if err != nil {
		t.Fatal(err)
	}
	if float64(st.Time) != TimeEq29(4096, 431) {
		t.Errorf("N=4096 K=431: simulated %d, eq29 %v", st.Time, TimeEq29(4096, 431))
	}
}

func TestFigure6Shape(t *testing.T) {
	// Figure 6 (N = 4096): the KT^2 minimum falls near the optimal
	// granularity N/log2(N) = 341, well inside [256, 512], and the curve
	// rises toward both K = 1 and K = N.
	ks, min := ArgminKT2(4096, 1, 4096)
	if len(ks) == 0 {
		t.Fatal("no argmin")
	}
	if ks[0] < 256 || ks[0] > 640 {
		t.Errorf("argmin K = %d, want within [256,640] around N/log2N=341", ks[0])
	}
	if edge := KT2Eq29(4096, 1); edge <= 10*min {
		t.Errorf("KT2 at K=1 (%v) should dwarf the minimum (%v)", edge, min)
	}
	if edge := KT2Eq29(4096, 4096); edge <= 3*min {
		t.Errorf("KT2 at K=N (%v) should dwarf the minimum (%v)", edge, min)
	}
	// The paper's reported minima (431/465) must be near-optimal: within
	// 10% of the measured minimum.
	for _, k := range []int{431, 465} {
		if v := KT2Eq29(4096, k); v > 1.10*min {
			t.Errorf("KT2(%d) = %v, more than 10%% above min %v", k, v, min)
		}
	}
}

func TestFigure6DivisibilityDips(t *testing.T) {
	// The paper notes the curve is not smooth because the wind-down time
	// drops when N is divisible by K. Verify the curve is non-monotonic in
	// the region around the minimum.
	pts := SweepKT2(4096, 300, 600)
	ups, downs := 0, 0
	for i := 1; i < len(pts); i++ {
		switch {
		case pts[i].KT2 > pts[i-1].KT2:
			ups++
		case pts[i].KT2 < pts[i-1].KT2:
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Errorf("curve should be jagged near the minimum: ups=%d downs=%d", ups, downs)
	}
}

func TestOptimalGranularity(t *testing.T) {
	if got := OptimalGranularity(4096); got != 341 {
		t.Errorf("OptimalGranularity(4096) = %d, want 341", got)
	}
	if got := OptimalGranularity(1); got != 1 {
		t.Errorf("OptimalGranularity(1) = %d, want 1", got)
	}
}

func TestProposition1Asymptotics(t *testing.T) {
	// PU(k,N) -> 1/(1+c) for k = c*N/log2(N) (equation (17)). The
	// convergence rate is O(log2 log2 N / log2 N), so finite-N PU sits
	// above the limit and approaches it monotonically; the finite-N
	// prediction 1/(1 + c*(1 - log2(log2 N)/log2 N)) from the proof of
	// case (c) should match the measurement closely.
	sizes := []int{1 << 12, 1 << 16, 1 << 20}
	for _, c := range []float64{0.25, 0.5, 1, 2} {
		limit := 1 / (1 + c)
		var pus []float64
		for _, n := range sizes {
			pu, err := PUAsymptotic(n, c)
			if err != nil {
				t.Fatal(err)
			}
			pus = append(pus, pu)
			logN := math.Log2(float64(n))
			pred := 1 / (1 + c*(1-math.Log2(logN)/logN+math.Log2(c)/logN))
			if math.Abs(pu-pred) > 0.03 {
				t.Errorf("c=%v N=%d: PU %.4f vs finite-N prediction %.4f", c, n, pu, pred)
			}
		}
		for i := range pus {
			if pus[i] < limit-1e-9 {
				t.Errorf("c=%v N=%d: PU %.4f below the limit %.4f", c, sizes[i], pus[i], limit)
			}
			// Rounding k = round(c*N/log2 N) to an integer puts small
			// wiggles on top of the downward trend.
			if i > 0 && pus[i] > pus[i-1]+0.01 {
				t.Errorf("c=%v: PU not converging: %.4f (N=%d) > %.4f (N=%d)",
					c, pus[i], sizes[i], pus[i-1], sizes[i-1])
			}
		}
		// Strict progress toward the limit across three decades of N.
		if (pus[2] - limit) > 0.8*(pus[0]-limit) {
			t.Errorf("c=%v: PU gap to limit shrank too little: %v -> %v", c, pus[0]-limit, pus[2]-limit)
		}
	}
	// c -> 0 (e.g. k = sqrt(N)): PU -> 1.
	st, err := Schedule(1<<18, int(math.Sqrt(float64(1<<18))))
	if err != nil {
		t.Fatal(err)
	}
	if st.PU < 0.95 {
		t.Errorf("k=sqrt(N): PU = %.4f, want -> 1", st.PU)
	}
	// Large c: PU falls toward 0.
	pu, err := PUAsymptotic(1<<18, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pu > 0.1 {
		t.Errorf("c=16: PU = %.4f, want near 0", pu)
	}
}

func TestTheorem1OptimalAtNOverLogN(t *testing.T) {
	// S*T^2 at S = N/log2(N) must beat the other policies by a growing
	// factor; at N = 2^16 the ordering is already strict.
	n := 1 << 16
	rows := TheoremOneTable(n)
	var optimal, others []GranularityRow
	for _, r := range rows {
		if r.Policy == "N/log2(N)" {
			optimal = append(optimal, r)
		} else {
			others = append(others, r)
		}
	}
	if len(optimal) != 1 {
		t.Fatalf("missing optimal row: %+v", rows)
	}
	for _, r := range others {
		if r.AT2 <= optimal[0].AT2 {
			t.Errorf("policy %s: AT2 %v <= optimal %v", r.Policy, r.AT2, optimal[0].AT2)
		}
	}
	// And the optimal AT2 is Theta(N log2 N): within a small constant.
	bound := float64(n) * math.Log2(float64(n))
	ratio := optimal[0].AT2 / bound
	if ratio < 0.5 || ratio > 8 {
		t.Errorf("AT2/NlogN = %v, want O(1)", ratio)
	}
}

func TestPUAnalyticAgreesWithSchedule(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{64, 8}, {256, 32}, {1024, 100}} {
		st, err := Schedule(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if got := PUAnalytic(tc.n, tc.k); math.Abs(got-st.PU) > 1e-9 {
			t.Errorf("n=%d k=%d: analytic PU %v vs simulated %v", tc.n, tc.k, got, st.PU)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Schedule(4, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestParallelChainCorrectAndTimed(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k int }{{2, 1}, {5, 2}, {8, 3}, {16, 16}, {17, 4}} {
		ms := make([]*matrix.Matrix, tc.n)
		for i := range ms {
			ms[i] = matrix.Random(rng, 4, 4, 0, 10)
		}
		res, err := ParallelChain(s, ms, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.ChainMat(s, ms)
		if !res.Product.Equal(want, 1e-9) {
			t.Errorf("n=%d k=%d: parallel product differs from serial", tc.n, tc.k)
		}
		if float64(res.Stats.Time) != TimeEq29(tc.n, tc.k) {
			t.Errorf("n=%d k=%d: rounds %d vs eq29 %v", tc.n, tc.k, res.Stats.Time, TimeEq29(tc.n, tc.k))
		}
	}
}

func TestParallelChainErrors(t *testing.T) {
	s := semiring.MinPlus{}
	if _, err := ParallelChain(s, nil, 2); err == nil {
		t.Error("empty string accepted")
	}
	if _, err := ParallelChain(s, []*matrix.Matrix{matrix.New(2, 2, 0)}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestParallelChainSingleMatrix(t *testing.T) {
	s := semiring.MinPlus{}
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	res, err := ParallelChain(s, []*matrix.Matrix{m}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Product.Equal(m, 0) || res.Stats.Time != 0 {
		t.Errorf("single-matrix chain mishandled: %+v", res.Stats)
	}
}

func TestPropertyScheduleBounds(t *testing.T) {
	// Equation (25): T >= N/K - 1 + log2(K) (the lower bound used in
	// Theorem 1), and trivially T <= N-1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2000)
		k := 1 + rng.Intn(n)
		st, err := Schedule(n, k)
		if err != nil {
			return false
		}
		lower := float64(n)/float64(k) - 1 + math.Log2(float64(k))
		return float64(st.Time) >= lower-1.0000001 && st.Time <= n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKT2SweepConsistency(t *testing.T) {
	pts := SweepKT2(128, 1, 128)
	if len(pts) != 128 {
		t.Fatalf("sweep length %d", len(pts))
	}
	for _, p := range pts {
		if p.KT2 != float64(p.K)*p.T*p.T {
			t.Errorf("inconsistent point %+v", p)
		}
	}
}
