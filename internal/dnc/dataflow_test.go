package dnc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// heteroChain builds a chain of matrices with varying dimensions.
func heteroChain(rng *rand.Rand, n int) ([]*matrix.Matrix, []int) {
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(8)
	}
	ms := make([]*matrix.Matrix, n)
	for i := range ms {
		ms[i] = matrix.Random(rng, dims[i], dims[i+1], 0, 10)
	}
	return ms, dims
}

func TestDataflowChainCorrect(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 9, 16} {
		ms, _ := heteroChain(rng, n)
		got, st, err := DataflowChain(s, ms, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := matrix.ChainMat(s, ms)
		if !got.Equal(want, 1e-9) {
			t.Errorf("n=%d: dataflow product differs from serial", n)
		}
		if st.Products != n-1 {
			t.Errorf("n=%d: %d products, want %d", n, st.Products, n-1)
		}
	}
}

func TestDataflowTotalOpsEqualsOrderingDP(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		ms, dims := heteroChain(rng, 2+rng.Intn(10))
		_, st, err := DataflowChain(s, ms, 2)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := matchain.DP(dims)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.TotalOps-tab.OptimalCost()) > 1e-9 {
			t.Fatalf("trial %d: total ops %v != DP optimum %v", trial, st.TotalOps, tab.OptimalCost())
		}
	}
}

func TestDataflowOneWorkerMakespanEqualsTotalOps(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(3))
	ms, _ := heteroChain(rng, 12)
	_, st, err := DataflowChain(s, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Makespan-st.TotalOps) > 1e-9 {
		t.Errorf("1 worker: makespan %v != total ops %v", st.Makespan, st.TotalOps)
	}
}

func TestDataflowMakespanMonotoneInWorkers(t *testing.T) {
	s := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(4))
	ms, _ := heteroChain(rng, 20)
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8} {
		_, st, err := DataflowChain(s, ms, w)
		if err != nil {
			t.Fatal(err)
		}
		if st.Makespan > prev+1e-9 {
			t.Errorf("makespan grew with more workers: %v -> %v at w=%d", prev, st.Makespan, w)
		}
		prev = st.Makespan
		// Critical-path and work lower bounds.
		if st.Makespan < st.TotalOps/float64(w)-1e-9 {
			t.Errorf("w=%d: makespan %v below work bound %v", w, st.Makespan, st.TotalOps/float64(w))
		}
	}
}

func TestOptimalOrderBeatsBalancedOnSkewedChain(t *testing.T) {
	// The secondary optimization problem matters: a chain engineered so
	// the balanced split is bad.
	dims := []int{2, 100, 2, 100, 2, 100, 2}
	ms := make([]*matrix.Matrix, len(dims)-1)
	rng := rand.New(rand.NewSource(5))
	for i := range ms {
		ms[i] = matrix.Random(rng, dims[i], dims[i+1], 0, 10)
	}
	_, st, err := DataflowChain(semiring.MinPlus{}, ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	bal := BalancedOps(dims)
	if st.TotalOps >= bal {
		t.Errorf("optimal ordering (%v ops) should beat balanced (%v ops)", st.TotalOps, bal)
	}
}

func TestBalancedOpsMatchesTreeShape(t *testing.T) {
	// For uniform dims every ordering costs the same: (n-1)*m^3.
	dims := []int{4, 4, 4, 4, 4}
	if got, want := BalancedOps(dims), float64(3*4*4*4); got != want {
		t.Errorf("BalancedOps = %v, want %v", got, want)
	}
}

func TestDataflowErrors(t *testing.T) {
	s := semiring.MinPlus{}
	if _, _, err := DataflowChain(s, nil, 2); err == nil {
		t.Error("empty chain accepted")
	}
	ms := []*matrix.Matrix{matrix.New(2, 3, 0), matrix.New(4, 2, 0)}
	if _, _, err := DataflowChain(s, ms, 2); err == nil {
		t.Error("incompatible dims accepted")
	}
	if _, _, err := DataflowChain(s, ms[:1], 0); err == nil {
		t.Error("workers=0 accepted")
	}
}

func TestPropertyDataflowEqualsSerialProduct(t *testing.T) {
	s := semiring.MinPlus{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms, _ := heteroChain(rng, 1+rng.Intn(10))
		got, _, err := DataflowChain(s, ms, 1+rng.Intn(4))
		if err != nil {
			return false
		}
		return got.Equal(matrix.ChainMat(s, ms), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
