package dnc_test

import (
	"fmt"

	"systolicdp/internal/dnc"
)

// ExampleTimeEq29 evaluates the paper's equation (29) at the Figure 6
// operating points.
func ExampleTimeEq29() {
	fmt.Println(dnc.TimeEq29(4096, 341)) // optimal granularity N/log2(N)
	fmt.Println(dnc.TimeEq29(4096, 1))   // serial
	fmt.Println(dnc.TimeEq29(4096, 4096))
	// Output:
	// 20
	// 4095
	// 12
}

// ExampleSchedule simulates the greedy divide-and-conquer schedule and
// confirms it attains equation (29).
func ExampleSchedule() {
	st, err := dnc.Schedule(4096, 431)
	if err != nil {
		panic(err)
	}
	fmt.Println(st.Time, st.Busy)
	// Output:
	// 18 4095
}

// ExampleOptimalGranularity reports Theorem 1's optimal processor count.
func ExampleOptimalGranularity() {
	fmt.Println(dnc.OptimalGranularity(4096))
	// Output:
	// 341
}
