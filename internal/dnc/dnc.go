// Package dnc implements Section 4 of the paper: evaluating a
// polyadic-serial DP problem — a string of N m x m matrices — by a
// parallel divide-and-conquer algorithm on K processors (each processor a
// matrix-multiplication systolic array), together with the paper's
// analytic machinery:
//
//   - the exact completion-time model of equation (29),
//     T = floor((N-1)/K)*T1 + floor(log2(N + K - 1 - K*floor((N-1)/K)))*T1,
//     whose KT^2 curve is Figure 6;
//   - the asymptotic processor-utilization limits of Proposition 1
//     (equation (17));
//   - the AT^2 lower bound of Theorem 1, minimised at S(N) = Theta(N/log2 N);
//   - a discrete-event list-scheduling simulator of the binary AND-tree
//     that cross-checks the analytic model and actually multiplies the
//     matrices (goroutine workers model the systolic arrays).
package dnc

import (
	"fmt"
	"math"
	"sort"
)

// TimeEq29 evaluates equation (29): the total time, in units of T1 (the
// time one systolic array needs for one matrix-matrix product), to
// multiply a string of n matrices with k processors: the computation phase
// floor((n-1)/k) plus the wind-down phase floor(log2(n+k-1-k*floor((n-1)/k))).
func TimeEq29(n, k int) float64 {
	if n < 1 || k < 1 {
		return math.NaN()
	}
	if n == 1 {
		return 0
	}
	tc := math.Floor(float64(n-1) / float64(k))
	rem := float64(n) + float64(k) - 1 - float64(k)*tc
	tw := 0.0
	if rem > 1 {
		tw = math.Floor(math.Log2(rem))
	}
	return tc + tw
}

// KT2Eq29 evaluates K * T^2 with T from equation (29), the quantity
// plotted in Figure 6.
func KT2Eq29(n, k int) float64 {
	t := TimeEq29(n, k)
	return float64(k) * t * t
}

// KT2Point is one point on the Figure 6 curve.
type KT2Point struct {
	K   int
	T   float64
	KT2 float64
}

// SweepKT2 evaluates equation (29) for k in [kmin, kmax] and returns the
// curve, reproducing Figure 6 for n = 4096.
func SweepKT2(n, kmin, kmax int) []KT2Point {
	pts := make([]KT2Point, 0, kmax-kmin+1)
	for k := kmin; k <= kmax; k++ {
		t := TimeEq29(n, k)
		pts = append(pts, KT2Point{K: k, T: t, KT2: float64(k) * t * t})
	}
	return pts
}

// ArgminKT2 returns every k in [kmin, kmax] attaining the minimum KT^2 of
// equation (29) — the paper reports 431 and 465 for N = 4096 — along with
// the minimum value.
func ArgminKT2(n, kmin, kmax int) (ks []int, min float64) {
	min = math.Inf(1)
	for k := kmin; k <= kmax; k++ {
		v := KT2Eq29(n, k)
		switch {
		case v < min-1e-9:
			min = v
			ks = []int{k}
		case math.Abs(v-min) <= 1e-9:
			ks = append(ks, k)
		}
	}
	return ks, min
}

// OptimalGranularity returns the paper's optimal processor count
// N/log2(N), the granularity attaining the AT^2 lower bound of Theorem 1.
func OptimalGranularity(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Round(float64(n) / math.Log2(float64(n))))
}

// PUAnalytic is the processor utilization implied by equation (29):
// useful work (N-1 products) over K * T.
func PUAnalytic(n, k int) float64 {
	t := TimeEq29(n, k)
	if t <= 0 {
		return 1
	}
	return float64(n-1) / (float64(k) * t)
}

// AT2Analytic is S * T^2 with T from equation (29) — the quantity Theorem
// 1 lower-bounds by Theta(N log2 N) at S(N) = Theta(N/log2 N).
func AT2Analytic(n, s int) float64 {
	t := TimeEq29(n, s)
	return float64(s) * t * t
}

// ScheduleStats reports a simulated divide-and-conquer run.
type ScheduleStats struct {
	N, K        int
	Time        int     // completion time in units of T1
	Busy        int     // total busy processor-steps (= N-1 products)
	PU          float64 // Busy / (K * Time)
	KT2         float64
	WindDown    int // steps during which some processor idled for lack of work
	Computation int // steps with all processors busy
}

// Schedule simulates level-by-level greedy scheduling of the complete
// binary multiplication tree of a string of n matrices on k processors:
// each time step, up to k ready products (pairs of adjacent completed
// partial products) are evaluated. It returns the completion statistics;
// the resulting time is compared against equation (29) in the tests and
// experiments.
func Schedule(n, k int) (*ScheduleStats, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("dnc: need n >= 1 and k >= 1, have n=%d k=%d", n, k)
	}
	st := &ScheduleStats{N: n, K: k}
	if n == 1 {
		st.PU = 1
		return st, nil
	}
	// The work list holds the sizes (leaf counts) of the current adjacent
	// segments; each step merges up to k adjacent pairs, preferring the
	// deepest subtrees first (greedy longest-processing-time is not needed
	// since all products cost T1; pairing left to right matches the
	// balanced tree's level order when segments are equal).
	segs := make([]int, n)
	for i := range segs {
		segs[i] = 1
	}
	for len(segs) > 1 {
		merges := len(segs) / 2
		if merges > k {
			merges = k
		}
		// Merge the `merges` leftmost disjoint adjacent pairs.
		next := make([]int, 0, len(segs)-merges)
		i := 0
		for done := 0; done < merges; done++ {
			next = append(next, segs[i]+segs[i+1])
			i += 2
		}
		next = append(next, segs[i:]...)
		segs = next
		st.Time++
		st.Busy += merges
		if merges == k {
			st.Computation++
		} else {
			st.WindDown++
		}
	}
	st.PU = float64(st.Busy) / (float64(k) * float64(st.Time))
	st.KT2 = float64(k) * float64(st.Time) * float64(st.Time)
	return st, nil
}

// PUAsymptotic evaluates the measured PU for k(N) = c * N/log2(N)
// processors at the given N, for comparison against the limit of
// Proposition 1 (equation (17)): 1/(1+c).
func PUAsymptotic(n int, c float64) (float64, error) {
	k := int(math.Max(1, math.Round(c*float64(n)/math.Log2(float64(n)))))
	st, err := Schedule(n, k)
	if err != nil {
		return 0, err
	}
	return st.PU, nil
}

// GranularityRow is one row of the Theorem-1 experiment: a processor-count
// policy and its S*T^2.
type GranularityRow struct {
	Policy string
	S      int
	T      float64
	AT2    float64
}

// TheoremOneTable evaluates S*T^2 for the processor-count policies the
// theorem contrasts: sqrt(N), N/log2(N) (optimal), N/4, and N.
func TheoremOneTable(n int) []GranularityRow {
	policies := []struct {
		name string
		s    int
	}{
		{"sqrt(N)", int(math.Round(math.Sqrt(float64(n))))},
		{"N/log2(N)", OptimalGranularity(n)},
		{"N/4", n / 4},
		{"N", n},
	}
	rows := make([]GranularityRow, 0, len(policies))
	for _, p := range policies {
		if p.s < 1 {
			p.s = 1
		}
		t := TimeEq29(n, p.s)
		rows = append(rows, GranularityRow{Policy: p.name, S: p.s, T: t, AT2: float64(p.s) * t * t})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].S < rows[j].S })
	return rows
}
