package dnc

import (
	"fmt"
	"sync"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// ParallelResult reports an actual parallel divide-and-conquer
// matrix-string multiplication.
type ParallelResult struct {
	Product *matrix.Matrix
	Stats   ScheduleStats
}

// ParallelChain multiplies the string ms on k worker goroutines, each
// standing in for one matrix-multiplication systolic array, using the
// level-synchronous greedy schedule of Schedule: every round, up to k
// adjacent pairs of completed partial products are multiplied
// concurrently. The product equals the sequential ChainMat result (matrix
// multiplication over a semiring is associative), and the recorded round
// count equals Schedule's completion time.
func ParallelChain(s semiring.Semiring, ms []*matrix.Matrix, k int) (*ParallelResult, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("dnc: empty matrix string")
	}
	if k < 1 {
		return nil, fmt.Errorf("dnc: need k >= 1, have %d", k)
	}
	segs := make([]*matrix.Matrix, len(ms))
	copy(segs, ms)
	res := &ParallelResult{Stats: ScheduleStats{N: len(ms), K: k}}
	st := &res.Stats
	for len(segs) > 1 {
		merges := len(segs) / 2
		if merges > k {
			merges = k
		}
		out := make([]*matrix.Matrix, merges)
		var wg sync.WaitGroup
		for w := 0; w < merges; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				out[w] = matrix.MulMat(s, segs[2*w], segs[2*w+1])
			}(w)
		}
		wg.Wait()
		next := make([]*matrix.Matrix, 0, len(segs)-merges)
		next = append(next, out...)
		next = append(next, segs[2*merges:]...)
		segs = next
		st.Time++
		st.Busy += merges
		if merges == k {
			st.Computation++
		} else {
			st.WindDown++
		}
	}
	st.PU = 1
	if st.Time > 0 {
		st.PU = float64(st.Busy) / (float64(k) * float64(st.Time))
	}
	st.KT2 = float64(k) * float64(st.Time) * float64(st.Time)
	res.Product = segs[0]
	return res, nil
}
