package bcastarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func randomChain(rng *rand.Rand, k, m int) ([]*matrix.Matrix, []float64) {
	ms := make([]*matrix.Matrix, k)
	for i := range ms {
		ms[i] = matrix.Random(rng, m, m, 0, 10)
	}
	v := make([]float64, m)
	for i := range v {
		v[i] = rng.Float64() * 10
	}
	return ms, v
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestMatchesBaselineAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 5, 8} {
		for _, m := range []int{1, 2, 3, 6} {
			ms, v := randomChain(rng, k, m)
			got, err := Solve(ms, v)
			if err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			if want := ReferenceSolve(ms, v); !almostEqual(got, want) {
				t.Errorf("k=%d m=%d: got %v, want %v", k, m, got, want)
			}
		}
	}
}

func TestGoroutinesMatchLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		ms, v := randomChain(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		a, err := New(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		lout, lbusy := a.RunLockstep()
		gout, gbusy := a.RunGoroutines()
		if !almostEqual(lout, gout) {
			t.Errorf("trial %d: lockstep %v != goroutines %v", trial, lout, gout)
		}
		for i := range lbusy {
			if lbusy[i] != gbusy[i] {
				t.Errorf("trial %d: busy[%d] %d vs %d", trial, i, lbusy[i], gbusy[i])
			}
		}
	}
}

func TestAgreesWithDesign1(t *testing.T) {
	// Designs 1 and 2 compute the same matrix string; their results must
	// be identical even though the data movement differs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		ms, v := randomChain(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		d2, err := Solve(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := pipearray.Solve(ms, v)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(d1, d2) {
			t.Errorf("trial %d: design1 %v != design2 %v", trial, d1, d2)
		}
	}
}

func TestGraphOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inner := multistage.RandomUniform(rng, 4, 3, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	mats := g.Matrices()
	k := len(mats)
	v := mats[k-1].Col(0)
	got, err := Solve(mats[:k-1], v)
	if err != nil {
		t.Fatal(err)
	}
	want := multistage.SolveOptimal(mp, g)
	if len(got) != 1 || math.Abs(got[0]-want.Cost) > 1e-9 {
		t.Errorf("array %v, optimal %v", got, want.Cost)
	}
}

func TestIterationCountNoSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ms, v := randomChain(rng, 4, 5)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations() != 20 || a.WallCycles() != 20 {
		t.Errorf("iterations=%d wall=%d, want 20/20 (broadcast has no skew)", a.Iterations(), a.WallCycles())
	}
	_, busy := a.RunLockstep()
	for i, b := range busy {
		if b != 20 {
			t.Errorf("PE %d busy %d, want 20", i, b)
		}
	}
}

func TestPUMatchesEquation9(t *testing.T) {
	// With wall = K*m = (N-1)*m and serial = (N-2)m^2+m, the measured PU
	// exceeds eq (9) by exactly the paper's extra input phase; check both
	// the formula relationship and convergence to 1.
	for _, tc := range []struct{ n, m int }{{8, 4}, {32, 8}, {128, 16}} {
		k := tc.n - 1
		wall := k * tc.m
		serial := metrics.SerialItersGraph(tc.n, tc.m)
		pu := metrics.PU(serial, wall, tc.m)
		eq9 := metrics.PUEq9(tc.n, tc.m)
		if pu < eq9-1e-9 || pu-eq9 > 2.0/float64(tc.n) {
			t.Errorf("N=%d m=%d: PU %.4f vs eq(9) %.4f", tc.n, tc.m, pu, eq9)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil, []float64{1}); err == nil {
		t.Error("empty string accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(2, 2, 0)}, nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(3, 2, 0)}, []float64{1, 2}); err == nil {
		t.Error("oversized first matrix accepted")
	}
	if _, err := New([]*matrix.Matrix{matrix.New(2, 2, 0), matrix.New(1, 2, 0)}, []float64{1, 2}); err == nil {
		t.Error("degenerate inner matrix accepted")
	}
}

func TestDegenerateFirstMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	row := matrix.Random(rng, 1, 4, 0, 5)
	mid := matrix.Random(rng, 4, 4, 0, 5)
	v := []float64{1, 2, 3, 4}
	got, err := Solve([]*matrix.Matrix{row, mid}, v)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceSolve([]*matrix.Matrix{row, mid}, v)
	if len(got) != 1 || !almostEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestInputWordsPerCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ms, v := randomChain(rng, 2, 5)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InputWordsPerCycle(); got != 6 {
		t.Errorf("InputWordsPerCycle = %d, want 6", got)
	}
}

func TestPropertyMatchesBaseline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ms, v := randomChain(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		got, err := Solve(ms, v)
		if err != nil {
			return false
		}
		return almostEqual(got, ReferenceSolve(ms, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
