package bcastarray

import (
	"math/rand"
	"testing"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

func TestMaxPlusMatchesBaseline(t *testing.T) {
	s := semiring.MaxPlus{}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ k, m int }{{1, 3}, {2, 4}, {4, 3}} {
		ms, v := randomChain(rng, tc.k, tc.m)
		a, err := NewSemiring(s, ms, v)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := a.RunLockstep()
		want := matrix.ChainVec(s, ms, v)
		if !almostEqual(got, want) {
			t.Errorf("k=%d m=%d: got %v, want %v", tc.k, tc.m, got, want)
		}
		goro, _ := a.RunGoroutines()
		if !almostEqual(goro, want) {
			t.Errorf("k=%d m=%d: goroutines %v, want %v", tc.k, tc.m, goro, want)
		}
	}
}
