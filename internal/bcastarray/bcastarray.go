// Package bcastarray implements Design 2 of the paper (Figure 4): a linear
// systolic array with parallel inputs and a broadcast bus that evaluates a
// string of (MIN,+) matrix products.
//
// Unlike Design 1, every matrix is fed in the same (row) format and the
// moving vector is broadcast to all PEs in the same cycle, so there is no
// pipeline skew: processing K matrices takes exactly K*m iterations. At
// each phase boundary the MOVE signal gates the accumulated result vector
// into the S registers; with FIRST = 0 the S values are fed back and
// broadcast as the next phase's inputs. As the paper notes, only one
// feedback line drives the bus in any iteration, selected by a circulating
// token — here, S_j is driven by PE j at iteration j.
//
// The broadcast bus is combinational, so the array is simulated by a
// bespoke lock-step loop rather than the registered-wire engine; the
// goroutine runner models the bus as a coordinator goroutine fanning
// tokens out to one goroutine per PE and collecting the gated results at
// phase boundaries.
package bcastarray

import (
	"fmt"
	"runtime"
	"sync"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

// Array is a configured Design-2 broadcast array for one matrix string.
type Array struct {
	M, K              int
	rows              int
	feed              [][][]float64 // [phase][pe][iteration]
	v                 []float64
	s                 semiring.Comparative
	parallelism       int
	parallelThreshold int
}

// New builds a Design-2 array over (MIN,+) computing
// ms[0].(ms[1].(...(ms[K-1].v))). Shape rules match Design 1: all
// matrices m x m with m = len(v), except ms[0] which may be r x m
// (padded with semiring-Zero rows).
func New(ms []*matrix.Matrix, v []float64) (*Array, error) {
	return NewSemiring(semiring.MinPlus{}, ms, v)
}

// NewSemiring builds a Design-2 array over any comparative semiring.
func NewSemiring(s semiring.Comparative, ms []*matrix.Matrix, v []float64) (*Array, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("bcastarray: empty matrix string")
	}
	m := len(v)
	if m == 0 {
		return nil, fmt.Errorf("bcastarray: empty input vector")
	}
	for idx, mm := range ms {
		wantRows := m
		if idx == 0 {
			if mm.Rows > m {
				return nil, fmt.Errorf("bcastarray: first matrix has %d rows > m=%d", mm.Rows, m)
			}
			wantRows = mm.Rows
		}
		if mm.Rows != wantRows || mm.Cols != m {
			return nil, fmt.Errorf("bcastarray: matrix %d is %dx%d, want %dx%d", idx, mm.Rows, mm.Cols, wantRows, m)
		}
	}
	k := len(ms)
	inf := s.Zero()
	feed := make([][][]float64, k)
	for ph := 0; ph < k; ph++ {
		src := ms[k-1-ph] // phase ph multiplies the (ph+1)-th matrix from the right
		fv := make([][]float64, m)
		for i := 0; i < m; i++ {
			fv[i] = make([]float64, m)
			for j := 0; j < m; j++ {
				if i < src.Rows {
					fv[i][j] = src.At(i, j)
				} else {
					fv[i][j] = inf
				}
			}
		}
		feed[ph] = fv
	}
	return &Array{M: m, K: k, rows: ms[0].Rows, feed: feed, v: append([]float64(nil), v...), s: s}, nil
}

// SetParallelism sets the compute-phase worker count of the bespoke
// lock-step loop, mirroring systolic.Array.Parallelism: <=1 runs
// sequentially, >1 shards the per-phase PE loop, negative uses GOMAXPROCS.
func (a *Array) SetParallelism(p int) { a.parallelism = p }

// SetParallelThreshold sets the minimum PE count at which the parallel
// loop engages; 0 keeps systolic.DefaultParallelThreshold, 1 forces it on.
func (a *Array) SetParallelThreshold(n int) { a.parallelThreshold = n }

// LockstepWorkers reports the worker count a lock-step run will use after
// threshold gating and clamping, with the same semantics as
// systolic.Array.LockstepWorkers.
func (a *Array) LockstepWorkers() int {
	p := a.parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	thr := a.parallelThreshold
	if thr <= 0 {
		thr = systolic.DefaultParallelThreshold
	}
	if p <= 1 || a.M < thr {
		return 1
	}
	if p > a.M {
		p = a.M
	}
	return p
}

// Iterations returns the iteration count K*m; with a combinational
// broadcast bus this is also the wall-cycle count.
func (a *Array) Iterations() int { return a.K * a.M }

// WallCycles equals Iterations: broadcast removes the pipeline skew of
// Design 1.
func (a *Array) WallCycles() int { return a.Iterations() }

// ObservedCycles reports the number of iterations an observed run
// executes, for sizing cycle recorders (one iteration = one cycle: the
// broadcast bus removes the pipeline skew).
func (a *Array) ObservedCycles() int { return a.Iterations() }

// RunLockstep simulates the array cycle by cycle and returns the result
// vector (live entries only) and the per-PE busy counts. All state is
// per-run, so the array is re-runnable: repeated runs are bit-identical.
func (a *Array) RunLockstep() ([]float64, []int) {
	return a.RunLockstepObserved(nil)
}

// RunLockstepObserved is RunLockstep with a per-PE trace hook invoked
// once per PE per iteration (Design 2 keeps every PE busy every
// iteration — the broadcast bus has no fill or drain). With a parallelism
// setting above 1 and at least the threshold of PEs, the per-phase PE
// loop is sharded across a persistent worker pool; because the bus values
// of a phase are fully determined before the phase starts (FIRST selects
// the input vector, afterwards the gated S registers of the previous
// phase), each PE's accumulation order is unchanged and the results, busy
// counts, and trace observations are bit-identical to the sequential
// loop. peTrace may then be invoked concurrently for distinct PEs within
// a phase (the systolic.PETrace contract).
func (a *Array) RunLockstepObserved(peTrace systolic.PETrace) ([]float64, []int) {
	if workers := a.LockstepWorkers(); workers > 1 {
		return a.runLockstepParallel(workers, peTrace)
	}
	m := a.M
	acc := make([]float64, m) // A_i accumulators
	gated := make([]float64, m)
	for i := range acc {
		acc[i] = a.s.Zero()
	}
	busy := make([]int, m)
	for k := 0; k < a.K; k++ {
		for j := 0; j < m; j++ {
			// FIRST=1 on phase 0: the external input vector is broadcast;
			// afterwards PE j drives its S register onto the bus.
			x := a.v[j]
			if k > 0 {
				x = gated[j]
			}
			for i := 0; i < m; i++ {
				acc[i] = a.s.Add(acc[i], a.s.Mul(a.feed[k][i][j], x))
				busy[i]++
				if peTrace != nil {
					peTrace(i, k*m+j, true)
				}
			}
		}
		// MOVE: gate accumulators into the S registers.
		copy(gated, acc)
		for i := range acc {
			acc[i] = a.s.Zero()
		}
	}
	return gated[:a.rows], busy
}

// runLockstepParallel is the sharded lock-step loop: a persistent pool of
// workers, each owning a contiguous PE range, synchronised once per phase
// (m iterations) rather than per cycle. The coordinator snapshots the
// phase's bus values into xs, broadcasts the phase index, and gates the
// accumulators at the barrier — the MOVE signal.
func (a *Array) runLockstepParallel(workers int, peTrace systolic.PETrace) ([]float64, []int) {
	m := a.M
	acc := make([]float64, m)
	gated := make([]float64, m)
	for i := range acc {
		acc[i] = a.s.Zero()
	}
	busy := make([]int, m)
	xs := make([]float64, m) // bus value per iteration of the current phase

	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * m / workers
	}
	start := make([]chan int, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start[w] = make(chan int, 1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := bounds[w], bounds[w+1]
			for k := range start[w] {
				for i := lo; i < hi; i++ {
					ai := acc[i]
					for j := 0; j < m; j++ {
						ai = a.s.Add(ai, a.s.Mul(a.feed[k][i][j], xs[j]))
						busy[i]++
						if peTrace != nil {
							peTrace(i, k*m+j, true)
						}
					}
					acc[i] = ai
				}
				done <- struct{}{}
			}
		}(w)
	}
	for k := 0; k < a.K; k++ {
		if k == 0 {
			copy(xs, a.v)
		} else {
			copy(xs, gated)
		}
		for w := range start {
			start[w] <- k
		}
		for range start {
			<-done
		}
		copy(gated, acc)
		for i := range acc {
			acc[i] = a.s.Zero()
		}
	}
	for w := range start {
		close(start[w])
	}
	wg.Wait()
	return gated[:a.rows], busy
}

// busMsg is one broadcast: the value on the bus for one iteration.
type busMsg struct {
	phase int
	x     float64
}

// RunGoroutines executes the array with one goroutine per PE plus a bus
// coordinator. The coordinator broadcasts the moving value each iteration
// and collects the gated S values at phase boundaries (the circulating
// token of the paper). Results and busy counts match RunLockstep exactly.
func (a *Array) RunGoroutines() ([]float64, []int) {
	return a.RunGoroutinesObserved(nil)
}

// RunGoroutinesObserved is RunGoroutines with a per-PE trace hook: each
// PE goroutine reports its own iterations concurrently (see
// systolic.PETrace for the contract). The iteration index matches the
// lock-step schedule: k*m + j for phase k, broadcast step j.
func (a *Array) RunGoroutinesObserved(peTrace systolic.PETrace) ([]float64, []int) {
	m := a.M
	bus := make([]chan busMsg, m)   // coordinator -> PE i
	gate := make([]chan float64, m) // PE i -> coordinator at phase end
	for i := range bus {
		bus[i] = make(chan busMsg, 1)
		gate[i] = make(chan float64, 1)
	}
	busy := make([]int, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc := a.s.Zero()
			b := 0
			for k := 0; k < a.K; k++ {
				for j := 0; j < m; j++ {
					msg := <-bus[i]
					acc = a.s.Add(acc, a.s.Mul(a.feed[msg.phase][i][j], msg.x))
					if peTrace != nil {
						peTrace(i, msg.phase*m+j, true)
					}
					b++
				}
				gate[i] <- acc
				acc = a.s.Zero()
			}
			busy[i] = b
		}(i)
	}
	gated := make([]float64, m)
	for k := 0; k < a.K; k++ {
		for j := 0; j < m; j++ {
			x := a.v[j]
			if k > 0 {
				x = gated[j]
			}
			for i := 0; i < m; i++ {
				bus[i] <- busMsg{phase: k, x: x}
			}
		}
		for i := 0; i < m; i++ {
			gated[i] = <-gate[i]
		}
	}
	wg.Wait()
	return gated[:a.rows], busy
}

// Solve builds and runs the array in lock-step mode.
func Solve(ms []*matrix.Matrix, v []float64) ([]float64, error) {
	a, err := New(ms, v)
	if err != nil {
		return nil, err
	}
	out, _ := a.RunLockstep()
	return out, nil
}

// ReferenceSolve computes the same product with the sequential baseline.
func ReferenceSolve(ms []*matrix.Matrix, v []float64) []float64 {
	return matrix.ChainVec(semiring.MinPlus{}, ms, v)
}

// InputWordsPerCycle reports the external input bandwidth the design
// needs: m matrix elements per iteration plus the bus value during the
// first phase. Section 3.2 argues this I/O cost motivates Design 3.
func (a *Array) InputWordsPerCycle() int { return a.M + 1 }
