package bcastarray

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// The sharded lock-step loop must be bit-identical to the sequential one:
// same result vector (exact float comparison — the per-PE accumulation
// order is unchanged), same busy counts, same per-PE trace observations,
// across odd and even PE counts and worker counts ∈ {1, 2, NumCPU, > m}.
func TestParallelLockstepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 3, 6, 9} {
		for _, k := range []int{1, 2, 5} {
			ms, v := randomChain(rng, k, m)
			seq, err := New(ms, v)
			if err != nil {
				t.Fatal(err)
			}
			seqBusy := make(map[int]int)
			var mu sync.Mutex
			wantOut, wantCnt := seq.RunLockstepObserved(func(pe, cycle int, busy bool) {
				mu.Lock()
				seqBusy[pe]++
				mu.Unlock()
			})
			for _, workers := range []int{2, runtime.NumCPU(), m + 3} {
				par, err := New(ms, v)
				if err != nil {
					t.Fatal(err)
				}
				par.SetParallelism(workers)
				par.SetParallelThreshold(1)
				if got := par.LockstepWorkers(); got < 1 || got > m {
					t.Fatalf("m=%d workers=%d: LockstepWorkers = %d out of range", m, workers, got)
				}
				parBusy := make(map[int]int)
				gotOut, gotCnt := par.RunLockstepObserved(func(pe, cycle int, busy bool) {
					mu.Lock()
					parBusy[pe]++
					mu.Unlock()
				})
				if !reflect.DeepEqual(wantOut, gotOut) {
					t.Errorf("m=%d k=%d workers=%d: result %v, want %v", m, k, workers, gotOut, wantOut)
				}
				if !reflect.DeepEqual(wantCnt, gotCnt) {
					t.Errorf("m=%d k=%d workers=%d: busy %v, want %v", m, k, workers, gotCnt, wantCnt)
				}
				if !reflect.DeepEqual(seqBusy, parBusy) {
					t.Errorf("m=%d k=%d workers=%d: trace observations %v, want %v", m, k, workers, parBusy, seqBusy)
				}
			}
		}
	}
}

// Below the threshold the parallel loop must not engage.
func TestParallelThresholdGating(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ms, v := randomChain(rng, 2, 4)
	a, err := New(ms, v)
	if err != nil {
		t.Fatal(err)
	}
	a.SetParallelism(4)
	if got := a.LockstepWorkers(); got != 1 {
		t.Errorf("below default threshold: workers = %d, want 1", got)
	}
	a.SetParallelThreshold(4)
	if got := a.LockstepWorkers(); got != 4 {
		t.Errorf("at threshold: workers = %d, want 4", got)
	}
	a.SetParallelThreshold(5)
	if got := a.LockstepWorkers(); got != 1 {
		t.Errorf("just below threshold: workers = %d, want 1", got)
	}
}
