package viterbi

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/fbarray"
	"systolicdp/internal/semiring"
)

func randTrellis(rng *rand.Rand, stages int, uniform bool) *Trellis {
	t := &Trellis{}
	sizes := make([]int, stages)
	m := 1 + rng.Intn(5)
	for k := range sizes {
		if uniform {
			sizes[k] = m
		} else {
			sizes[k] = 1 + rng.Intn(5)
		}
	}
	for k := 0; k < stages; k++ {
		ns := make([]float64, sizes[k])
		for i := range ns {
			ns[i] = float64(rng.Intn(21) - 10)
		}
		t.Node = append(t.Node, ns)
	}
	for k := 0; k+1 < stages; k++ {
		blk := make([][]float64, sizes[k])
		for i := range blk {
			row := make([]float64, sizes[k+1])
			for j := range row {
				row[j] = float64(rng.Intn(21) - 10)
			}
			blk[i] = row
		}
		t.Trans = append(t.Trans, blk)
	}
	return t
}

// bruteForce enumerates every state sequence.
func bruteForce(t *Trellis) float64 {
	best := math.Inf(1)
	var rec func(k, i int, acc float64)
	rec = func(k, i int, acc float64) {
		if k == len(t.Node)-1 {
			if acc < best {
				best = acc
			}
			return
		}
		for j := range t.Node[k+1] {
			rec(k+1, j, acc+t.EdgeCost(k, i, j))
		}
	}
	for i := range t.Node[0] {
		if len(t.Node) == 1 {
			if v := t.Node[0][i]; v < best {
				best = v
			}
			continue
		}
		rec(0, i, 0)
	}
	return best
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		tr := randTrellis(rng, 1+rng.Intn(4), rng.Intn(2) == 0)
		got, path, err := tr.Sequential()
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForce(tr); got != want {
			t.Fatalf("trial %d: Sequential %v, brute force %v", trial, got, want)
		}
		// Metamorphic re-derivation: replaying the returned path through
		// the same EdgeCost terms must reproduce the cost bitwise.
		rc, err := tr.PathCost(path)
		if err != nil {
			t.Fatal(err)
		}
		if rc != got {
			t.Fatalf("trial %d: PathCost(path) %v != Sequential cost %v", trial, rc, got)
		}
	}
}

func TestSingleStage(t *testing.T) {
	tr := &Trellis{Node: [][]float64{{5, 2, 9}}, Trans: nil}
	cost, path, err := tr.Sequential()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("single-stage: cost %v path %v", cost, path)
	}
}

func TestStagedEliminationMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := randTrellis(rng, 2+rng.Intn(4), rng.Intn(2) == 0)
		want, wantPath, err := tr.Sequential()
		if err != nil {
			t.Fatal(err)
		}
		sp := tr.Staged()
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
		s := semiring.MinPlus{}
		if got := sp.Solve(s); got != want {
			t.Fatalf("trial %d: staged elimination %v != sequential %v", trial, got, want)
		}
		p := sp.SolvePath(s)
		if p.Cost != want {
			t.Fatalf("trial %d: SolvePath cost %v != %v", trial, p.Cost, want)
		}
		for k, st := range p.Nodes {
			if st != wantPath[k] {
				t.Fatalf("trial %d: SolvePath nodes %v != sequential path %v", trial, p.Nodes, wantPath)
			}
		}
	}
}

func TestFeedbackArrayMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		tr := randTrellis(rng, 2+rng.Intn(4), true)
		want, wantPath, err := tr.Sequential()
		if err != nil {
			t.Fatal(err)
		}
		arr, err := fbarray.NewStaged(semiring.MinPlus{}, tr.Staged())
		if err != nil {
			t.Fatal(err)
		}
		for _, gor := range []bool{false, true} {
			res, err := arr.Run(gor)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != want {
				t.Fatalf("trial %d goroutines=%v: fbarray %v != sequential %v", trial, gor, res.Cost, want)
			}
			for k, st := range res.Path {
				if st != wantPath[k] {
					t.Fatalf("trial %d goroutines=%v: fbarray path %v != %v", trial, gor, res.Path, wantPath)
				}
			}
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Trellis{
		{},
		{Node: [][]float64{{1}, {}}, Trans: [][][]float64{{{1}}}},
		{Node: [][]float64{{1}, {2}}},
		{Node: [][]float64{{1}, {2}}, Trans: [][][]float64{{{1, 2}}}},
		{Node: [][]float64{{math.NaN()}}},
		{Node: [][]float64{{1}, {2}}, Trans: [][][]float64{{{math.Inf(1)}}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("bad trellis %d accepted", i)
		}
	}
}

func TestPathCostRejectsBadPaths(t *testing.T) {
	tr := &Trellis{Node: [][]float64{{1, 2}, {3}}, Trans: [][][]float64{{{0}, {0}}}}
	if _, err := tr.PathCost([]int{0}); err == nil {
		t.Fatal("short path accepted")
	}
	if _, err := tr.PathCost([]int{2, 0}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
}
