// Package viterbi implements trellis path dynamic programming with node
// and transition costs — the Viterbi / shortest-trellis-path family
// (mbl_dyn_prog in the vxl exemplar). A trellis is a multistage graph
// whose stage-k states each carry a node cost and whose stage-k→k+1
// moves each carry a transition cost; the objective is the cheapest
// state sequence.
//
// The problem maps directly onto the paper's Design 3 node-valued
// feedback array: the quantized "values" of stage k are the state
// INDICES 0..|N_k|-1, and the staged cost function folds both the
// transition cost and the destination node cost (plus, at stage 0, the
// source node cost) into one edge weight. Sequential and the
// StagedNodeValued / fbarray engines all evaluate the shared EdgeCost
// expression, so every engine is bitwise identical and ties break the
// same way (strict improvement, first state index wins — PE order).
package viterbi

import (
	"fmt"
	"math"

	"systolicdp/internal/multistage"
)

// Trellis is the trellis instance: Node[k][i] is the cost of being in
// state i at stage k, Trans[k][i][j] the cost of moving from state i at
// stage k to state j at stage k+1. len(Trans) == len(Node)-1; a
// single-stage trellis (no transitions) is legal and degenerates to
// picking the cheapest stage-0 state.
type Trellis struct {
	Node  [][]float64
	Trans [][][]float64
}

// Validate checks shape and finiteness.
func (t *Trellis) Validate() error {
	if len(t.Node) == 0 {
		return fmt.Errorf("viterbi: trellis needs >= 1 stage")
	}
	for k, ns := range t.Node {
		if len(ns) == 0 {
			return fmt.Errorf("viterbi: stage %d has no states", k)
		}
		for i, v := range ns {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("viterbi: non-finite node cost at stage %d state %d", k, i)
			}
		}
	}
	if len(t.Trans) != len(t.Node)-1 {
		return fmt.Errorf("viterbi: %d transition blocks for %d stages, want %d",
			len(t.Trans), len(t.Node), len(t.Node)-1)
	}
	for k, blk := range t.Trans {
		if len(blk) != len(t.Node[k]) {
			return fmt.Errorf("viterbi: transition block %d has %d rows, stage has %d states",
				k, len(blk), len(t.Node[k]))
		}
		for i, row := range blk {
			if len(row) != len(t.Node[k+1]) {
				return fmt.Errorf("viterbi: transition block %d row %d has %d cols, next stage has %d states",
					k, i, len(row), len(t.Node[k+1]))
			}
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("viterbi: non-finite transition cost %d:%d->%d", k, i, j)
				}
			}
		}
	}
	return nil
}

// Stages returns the number of trellis stages.
func (t *Trellis) Stages() int { return len(t.Node) }

// Uniform reports whether every stage has the same number of states —
// the regularity Design 3's feedback pipeline requires.
func (t *Trellis) Uniform() (m int, ok bool) {
	m = len(t.Node[0])
	for _, ns := range t.Node[1:] {
		if len(ns) != m {
			return 0, false
		}
	}
	return m, true
}

// Work returns the number of edge relaxations plus the final fold —
// the closed form the admission controller prices viterbi requests
// with: sum_k |N_k|·|N_k+1| + |N_last|.
func (t *Trellis) Work() int {
	if len(t.Node) == 0 {
		return 0
	}
	w := len(t.Node[len(t.Node)-1])
	for k := range t.Trans {
		w += len(t.Node[k]) * len(t.Node[k+1])
	}
	return w
}

// EdgeCost is THE canonical edge weight every engine evaluates: the
// k→k+1 move into state j absorbs the transition cost and the
// destination node cost, and the first move also absorbs the source
// node cost (stage-0 states start at h=0 in every engine). Sequential,
// the StagedNodeValued elimination, and the fbarray PEs all call this
// one function, which is what makes them bitwise identical.
func (t *Trellis) EdgeCost(k, i, j int) float64 {
	if k == 0 {
		return t.Node[0][i] + (t.Trans[k][i][j] + t.Node[k+1][j])
	}
	return t.Trans[k][i][j] + t.Node[k+1][j]
}

// Staged maps the trellis onto Design 3's node-valued formulation: the
// stage-k "quantized values" are the state indices 0..|N_k|-1 and the
// staged cost function is EdgeCost — the order-of-magnitude
// input-bandwidth reduction of Section 3.2, since the array streams
// state indices instead of materialized |N_k|×|N_k+1| cost matrices.
// Requires >= 2 stages (StagedNodeValued's own minimum).
func (t *Trellis) Staged() *multistage.StagedNodeValued {
	vals := make([][]float64, len(t.Node))
	for k, ns := range t.Node {
		vs := make([]float64, len(ns))
		for i := range vs {
			vs[i] = float64(i)
		}
		vals[k] = vs
	}
	return &multistage.StagedNodeValued{
		Values: vals,
		FK: func(k int, x, y float64) float64 {
			return t.EdgeCost(k, int(x), int(y))
		},
	}
}

// Sequential is the reference trellis sweep: h over stage-k states,
// relaxed one stage at a time through EdgeCost, ties broken by strict
// improvement with the first (lowest) state index winning — the same
// order Design 3's PEs scan predecessors in. It returns the optimal
// cost and one optimal state sequence.
func (t *Trellis) Sequential() (cost float64, path []int, err error) {
	if err := t.Validate(); err != nil {
		return 0, nil, err
	}
	n := len(t.Node)
	if n == 1 {
		// Degenerate single-stage trellis: cheapest stage-0 state.
		best, arg := 0.0, -1
		for i, v := range t.Node[0] {
			if arg == -1 || v < best {
				best, arg = v, i
			}
		}
		return best, []int{arg}, nil
	}
	h := make([]float64, len(t.Node[0]))
	pred := make([][]int, n)
	for k := 1; k < n; k++ {
		nh := make([]float64, len(t.Node[k]))
		pk := make([]int, len(t.Node[k]))
		for j := range t.Node[k] {
			best, arg := 0.0, -1
			for i := range t.Node[k-1] {
				v := h[i] + t.EdgeCost(k-1, i, j)
				if arg == -1 || v < best {
					best, arg = v, i
				}
			}
			nh[j], pk[j] = best, arg
		}
		h, pred[k] = nh, pk
	}
	best, arg := 0.0, -1
	for j, v := range h {
		if arg == -1 || v < best {
			best, arg = v, j
		}
	}
	path = make([]int, n)
	path[n-1] = arg
	for k := n - 1; k >= 1; k-- {
		path[k-1] = pred[k][path[k]]
	}
	return best, path, nil
}

// PathCost re-derives the cost of an explicit state sequence by summing
// the SAME EdgeCost terms the solvers minimize over — the metamorphic
// re-derivation invariant: PathCost(Sequential's path) must equal
// Sequential's cost bitwise, because it replays the identical addition
// chain h[i] + EdgeCost(...) along the winning path.
func (t *Trellis) PathCost(path []int) (float64, error) {
	if len(path) != len(t.Node) {
		return 0, fmt.Errorf("viterbi: path length %d for %d stages", len(path), len(t.Node))
	}
	for k, s := range path {
		if s < 0 || s >= len(t.Node[k]) {
			return 0, fmt.Errorf("viterbi: path state %d out of range at stage %d", s, k)
		}
	}
	if len(path) == 1 {
		return t.Node[0][path[0]], nil
	}
	c := 0.0
	for k := 1; k < len(path); k++ {
		c = c + t.EdgeCost(k-1, path[k-1], path[k])
	}
	return c, nil
}
