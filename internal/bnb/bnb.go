// Package bnb implements branch-and-bound search over multistage graphs —
// the paper's Section 1 observation (after Morin & Marsten and Ibaraki)
// that DP is a special case of branch-and-bound: a top-down OR-tree search
// with dominance tests. A node of the OR-tree is a partial path; the
// dominance test "two partial paths ending at the same (stage, node) —
// keep the cheaper" is exactly Bellman's principle, and with it enabled
// the number of expanded nodes collapses to the DP state count. The
// package provides best-first serial search, pluggable lower bounds, the
// dominance switch, and a parallel variant with worker goroutines sharing
// the live-node pool (the paper's reference [28], Wah, Li & Yu,
// "Multiprocessing of Combinatorial Search Problems").
package bnb

import (
	"container/heap"
	"fmt"
	"math"
	"sync"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

// Bound computes an admissible (non-overestimating) lower bound on the
// cost to complete a partial path ending at node `node` of stage `stage`.
type Bound func(g *multistage.Graph, stage, node int) float64

// BoundZero is the trivial bound (plain best-first on accumulated cost).
func BoundZero(*multistage.Graph, int, int) float64 { return 0 }

// BoundStageMin lower-bounds the remaining cost by the sum over remaining
// stages of each stage's globally cheapest edge. Admissible and cheap to
// precompute; weaker than the exact bound.
func BoundStageMin(g *multistage.Graph, stage, node int) float64 {
	total := 0.0
	for k := stage; k < len(g.Cost); k++ {
		min := math.Inf(1)
		for _, v := range g.Cost[k].Data {
			if v < min {
				min = v
			}
		}
		total += min
	}
	return total
}

// NewBoundStageMin precomputes the suffix sums of per-stage minimum edge
// costs and returns a O(1) bound function.
func NewBoundStageMin(g *multistage.Graph) Bound {
	suffix := make([]float64, len(g.Cost)+1)
	for k := len(g.Cost) - 1; k >= 0; k-- {
		min := math.Inf(1)
		for _, v := range g.Cost[k].Data {
			if v < min {
				min = v
			}
		}
		suffix[k] = suffix[k+1] + min
	}
	return func(_ *multistage.Graph, stage, _ int) float64 { return suffix[stage] }
}

// NewBoundExact precomputes the true cost-to-go by backward DP (the
// perfect heuristic): with it, best-first search expands only the optimal
// path's nodes. It exists as the other end of the bound-quality ablation.
func NewBoundExact(g *multistage.Graph) Bound {
	mp := semiring.MinPlus{}
	n := g.Stages()
	togo := make([][]float64, n)
	togo[n-1] = make([]float64, g.StageSizes[n-1])
	for k := n - 2; k >= 0; k-- {
		togo[k] = make([]float64, g.StageSizes[k])
		for i := 0; i < g.StageSizes[k]; i++ {
			acc := mp.Zero()
			for j := 0; j < g.StageSizes[k+1]; j++ {
				acc = mp.Add(acc, g.Cost[k].At(i, j)+togo[k+1][j])
			}
			togo[k][i] = acc
		}
	}
	return func(_ *multistage.Graph, stage, node int) float64 { return togo[stage][node] }
}

// Options configure a search.
type Options struct {
	// Dominance enables the DP dominance test: prune a partial path if a
	// cheaper one already reached the same (stage, node) state.
	Dominance bool
	// Bound is the admissible lower bound; nil means BoundZero.
	Bound Bound
	// Workers > 1 runs the parallel shared-pool search.
	Workers int
}

// Result of a search.
type Result struct {
	Cost     float64
	Path     []int
	Expanded int // OR-tree nodes expanded
}

// node is a partial path ending at (stage, last).
type node struct {
	stage, last int
	gcost       float64 // accumulated cost
	f           float64 // gcost + bound
	parent      *node
}

type pq []*node

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

func extractPath(nd *node) []int {
	var rev []int
	for p := nd; p != nil; p = p.parent {
		rev = append(rev, p.last)
	}
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Solve searches g for a minimum-cost source-to-sink path (any node of
// stage 0 to any node of the final stage). With an admissible bound the
// returned cost is optimal and equals the DP solution.
func Solve(g *multistage.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opt.Bound == nil {
		opt.Bound = BoundZero
	}
	if opt.Workers > 1 {
		return solveParallel(g, opt)
	}
	n := g.Stages()
	var q pq
	for i := 0; i < g.StageSizes[0]; i++ {
		heap.Push(&q, &node{stage: 0, last: i, f: opt.Bound(g, 0, i)})
	}
	best := make(map[[2]int]float64)
	res := &Result{Cost: math.Inf(1)}
	for q.Len() > 0 {
		nd := heap.Pop(&q).(*node)
		if nd.f >= res.Cost {
			break // admissible bound: nothing better remains
		}
		if nd.stage == n-1 {
			if nd.gcost < res.Cost {
				res.Cost = nd.gcost
				res.Path = extractPath(nd)
			}
			continue
		}
		if opt.Dominance {
			key := [2]int{nd.stage, nd.last}
			if c, ok := best[key]; ok && c <= nd.gcost {
				continue // dominated
			}
			best[key] = nd.gcost
		}
		res.Expanded++
		for j := 0; j < g.StageSizes[nd.stage+1]; j++ {
			gc := nd.gcost + g.Cost[nd.stage].At(nd.last, j)
			if math.IsInf(gc, 1) {
				continue
			}
			child := &node{stage: nd.stage + 1, last: j, gcost: gc, parent: nd}
			child.f = gc + opt.Bound(g, child.stage, j)
			if opt.Dominance {
				key := [2]int{child.stage, j}
				if c, ok := best[key]; ok && c <= gc {
					continue
				}
			}
			heap.Push(&q, child)
		}
	}
	if res.Path == nil {
		return nil, fmt.Errorf("bnb: no feasible path")
	}
	return res, nil
}

// solveParallel runs the shared-pool parallel best-first search of the
// paper's reference [28]: workers repeatedly draw the globally best live
// node, expand it, and insert children, under one lock with a condition
// variable for termination. The returned cost is optimal (admissible
// bounds); the expansion count can exhibit the acceleration/deceleration
// anomalies that reference studies, so it is reported but not
// deterministic.
func solveParallel(g *multistage.Graph, opt Options) (*Result, error) {
	n := g.Stages()
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		q        pq
		busy     int
		best     = make(map[[2]int]float64)
		res      = &Result{Cost: math.Inf(1)}
		finished bool
	)
	for i := 0; i < g.StageSizes[0]; i++ {
		heap.Push(&q, &node{stage: 0, last: i, f: opt.Bound(g, 0, i)})
	}
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for q.Len() == 0 && busy > 0 && !finished {
					cond.Wait()
				}
				if finished || (q.Len() == 0 && busy == 0) {
					finished = true
					cond.Broadcast()
					mu.Unlock()
					return
				}
				nd := heap.Pop(&q).(*node)
				if nd.f >= res.Cost {
					// Everything remaining is at least as bad.
					finished = true
					cond.Broadcast()
					mu.Unlock()
					return
				}
				if nd.stage == n-1 {
					if nd.gcost < res.Cost {
						res.Cost = nd.gcost
						res.Path = extractPath(nd)
					}
					cond.Broadcast()
					mu.Unlock()
					continue
				}
				if opt.Dominance {
					key := [2]int{nd.stage, nd.last}
					if c, ok := best[key]; ok && c <= nd.gcost {
						mu.Unlock()
						continue
					}
					best[key] = nd.gcost
				}
				res.Expanded++
				busy++
				stage, last, gcost := nd.stage, nd.last, nd.gcost
				mu.Unlock()

				// Expand outside the lock: compute children costs.
				type cand struct {
					j  int
					gc float64
					f  float64
				}
				var cands []cand
				for j := 0; j < g.StageSizes[stage+1]; j++ {
					gc := gcost + g.Cost[stage].At(last, j)
					if math.IsInf(gc, 1) {
						continue
					}
					cands = append(cands, cand{j, gc, gc + opt.Bound(g, stage+1, j)})
				}

				mu.Lock()
				for _, c := range cands {
					if opt.Dominance {
						key := [2]int{stage + 1, c.j}
						if bc, ok := best[key]; ok && bc <= c.gc {
							continue
						}
					}
					if c.f < res.Cost {
						heap.Push(&q, &node{stage: stage + 1, last: c.j, gcost: c.gc, f: c.f, parent: nd})
					}
				}
				busy--
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if res.Path == nil {
		return nil, fmt.Errorf("bnb: no feasible path")
	}
	return res, nil
}
