package bnb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestSolveMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := multistage.RandomUniform(rng, 3+rng.Intn(5), 2+rng.Intn(4), 0, 20)
		want := multistage.SolveOptimal(mp, g)
		for _, opt := range []Options{
			{},
			{Dominance: true},
			{Bound: NewBoundStageMin(g)},
			{Dominance: true, Bound: NewBoundStageMin(g)},
			{Dominance: true, Bound: NewBoundExact(g)},
		} {
			res, err := Solve(g, opt)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, opt, err)
			}
			if math.Abs(res.Cost-want.Cost) > 1e-9 {
				t.Fatalf("trial %d %+v: cost %v, want %v", trial, opt, res.Cost, want.Cost)
			}
			c, err := g.CostOf(mp, res.Path)
			if err != nil || math.Abs(c-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: path invalid (%v) or cost %v != %v", trial, err, c, res.Cost)
			}
		}
	}
}

func TestDominanceCollapsesToDPStateCount(t *testing.T) {
	// The dominance test is Bellman's principle: expansions with it are
	// bounded by the number of DP states (N*m), while without it the
	// OR-tree grows exponentially.
	rng := rand.New(rand.NewSource(2))
	n, m := 8, 4
	g := multistage.RandomUniform(rng, n, m, 0, 10)
	with, err := Solve(g, Options{Dominance: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.Expanded > n*m {
		t.Errorf("with dominance expanded %d > N*m = %d", with.Expanded, n*m)
	}
	if without.Expanded <= with.Expanded {
		t.Errorf("without dominance expanded %d <= with %d", without.Expanded, with.Expanded)
	}
}

func TestExactBoundExpandsMinimally(t *testing.T) {
	// With the perfect heuristic, best-first expands only nodes on
	// optimal paths: at most N per optimum (ties aside).
	rng := rand.New(rand.NewSource(3))
	g := multistage.RandomUniform(rng, 10, 5, 0.1, 10)
	exact, err := Solve(g, Options{Bound: NewBoundExact(g), Dominance: true})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(g, Options{Bound: NewBoundStageMin(g), Dominance: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Expanded > loose.Expanded {
		t.Errorf("exact bound expanded %d > stage-min bound %d", exact.Expanded, loose.Expanded)
	}
	if exact.Expanded > 2*g.Stages() {
		t.Errorf("exact bound expanded %d nodes, want ~N = %d", exact.Expanded, g.Stages())
	}
}

func TestBoundsAreAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := multistage.RandomUniform(rng, 6, 4, 0, 10)
	exact := NewBoundExact(g)
	smin := NewBoundStageMin(g)
	for k := 0; k < g.Stages(); k++ {
		for i := 0; i < g.StageSizes[k]; i++ {
			if smin(g, k, i) > exact(g, k, i)+1e-9 {
				t.Errorf("stage-min bound exceeds true cost-to-go at (%d,%d)", k, i)
			}
		}
	}
	// BoundStageMin (uncached) agrees with the precomputed version.
	if math.Abs(BoundStageMin(g, 2, 0)-smin(g, 2, 0)) > 1e-9 {
		t.Error("cached and direct stage-min bounds disagree")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := multistage.RandomUniform(rng, 4+rng.Intn(4), 2+rng.Intn(4), 0, 15)
		want := multistage.SolveOptimal(mp, g)
		for _, workers := range []int{2, 4, 8} {
			res, err := Solve(g, Options{Dominance: true, Bound: NewBoundStageMin(g), Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if math.Abs(res.Cost-want.Cost) > 1e-9 {
				t.Fatalf("trial %d workers %d: %v, want %v", trial, workers, res.Cost, want.Cost)
			}
			c, err := g.CostOf(mp, res.Path)
			if err != nil || math.Abs(c-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: bad path", trial)
			}
		}
	}
}

func TestInfeasibleGraph(t *testing.T) {
	g := multistage.RandomUniform(rand.New(rand.NewSource(6)), 3, 2, 0, 1)
	for _, m := range g.Cost {
		for i := range m.Data {
			m.Data[i] = math.Inf(1)
		}
	}
	if _, err := Solve(g, Options{}); err == nil {
		t.Error("infeasible graph returned a path")
	}
	if _, err := Solve(g, Options{Workers: 3}); err == nil {
		t.Error("parallel: infeasible graph returned a path")
	}
}

func TestInvalidGraph(t *testing.T) {
	if _, err := Solve(&multistage.Graph{StageSizes: []int{2}}, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestPropertyAllConfigurationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := multistage.RandomUniform(rng, 3+rng.Intn(4), 1+rng.Intn(4), 0, 25)
		want := multistage.SolveOptimal(mp, g).Cost
		for _, opt := range []Options{
			{Dominance: true},
			{Dominance: true, Bound: NewBoundStageMin(g)},
			{Dominance: true, Bound: NewBoundStageMin(g), Workers: 3},
		} {
			res, err := Solve(g, opt)
			if err != nil || math.Abs(res.Cost-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
