package check

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// Options configures a randomized differential-testing run.
type Options struct {
	N       int      // instances to generate; default 200
	Seed    int64    // generator seed; same seed => same instances
	Kinds   []string // instance kinds to draw from; default Kinds()
	Workers []int    // parallel lock-step worker counts; default DefaultWorkers
	Gen     GenConfig
	// StopOnFirst stops the run at the first mismatching instance (the
	// CLI minimizes and prints that one).
	StopOnFirst bool
	// Progress, if non-nil, is called after each instance is checked.
	Progress func(done, total int)
}

// Report summarizes a run.
type Report struct {
	Instances  int // instances generated and checked
	Combos     int // engine/engine and engine/invariant comparisons performed
	Mismatches []*Mismatch
}

// OK reports whether the run found no mismatches.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// Run generates opts.N seeded instances and differentially checks each
// one across every applicable engine/design combination.
func Run(opts Options) (*Report, error) {
	if opts.N <= 0 {
		opts.N = 200
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = Kinds()
	}
	known := map[string]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	for _, k := range kinds {
		if !known[k] {
			return nil, fmt.Errorf("check: unknown kind %q (have %v)", k, Kinds())
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rep := &Report{}
	for i := 0; i < opts.N; i++ {
		inst := GenKind(rng, kinds[rng.Intn(len(kinds))], opts.Gen)
		ms, combos := Check(inst, opts.Workers)
		rep.Instances++
		rep.Combos += combos
		rep.Mismatches = append(rep.Mismatches, ms...)
		if opts.Progress != nil {
			opts.Progress(i+1, opts.N)
		}
		if len(ms) > 0 && opts.StopOnFirst {
			break
		}
	}
	return rep, nil
}

// Reproducer renders an instance as the JSON spec dpcheck prints on a
// mismatch; `dpcheck -replay file.json` (or any spec-aware tool, for the
// inner File) re-runs it.
func Reproducer(inst *Instance) string {
	b, err := json.MarshalIndent(inst, "", "  ")
	if err != nil {
		return fmt.Sprintf("{/* marshal failed: %v */}", err)
	}
	return string(b)
}

// Replay re-checks a reproducer previously printed by Reproducer.
func Replay(data []byte, workers []int) ([]*Mismatch, error) {
	var inst Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("check: bad reproducer: %w", err)
	}
	ms, _ := Check(&inst, workers)
	return ms, nil
}
