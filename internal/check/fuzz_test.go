package check

import (
	"math/rand"
	"testing"
)

// FuzzCheckInstances drives the differential oracle from a fuzzed
// (seed, kind) pair: whatever instance the generator derives, every
// engine combination must agree. A finding here is a real engine bug —
// the failing input pins the exact seed for replay.
func FuzzCheckInstances(f *testing.F) {
	for _, seed := range []int64{1, 2, 42} {
		for k := range Kinds() {
			f.Add(seed, byte(k))
		}
	}
	cfg := GenConfig{MaxStages: 5, MaxM: 4, MaxLen: 8, MaxChain: 6, MaxVars: 5}
	f.Fuzz(func(t *testing.T, seed int64, kind byte) {
		kinds := Kinds()
		inst := GenKind(rand.New(rand.NewSource(seed)), kinds[int(kind)%len(kinds)], cfg)
		ms, _ := Check(inst, []int{1, 2})
		for _, m := range ms {
			t.Errorf("mismatch: %s\nreproducer:\n%s", m.Error(), Reproducer(m.Instance))
		}
	})
}

// FuzzReplay feeds arbitrary bytes to the reproducer loader: it must
// never panic, and any instance it accepts must check without panicking
// (mismatches are fine — hand-edited reproducers may describe broken
// shapes — but the oracle itself has to survive them).
func FuzzReplay(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{"spec":{"problem":"chain","dims":[2,3,4]}}`))
	f.Add([]byte(`{"spec":{"problem":"dtw","x":[1],"y":[0,2]}}`))
	f.Add([]byte(`{"spec":{"problem":"graph","costs":[[[1,"+Inf"]],[[3],[4]]]},"semiring":"max-plus"}`))
	f.Add([]byte(`{"spec":{"problem":"nonserial","domains":[[1],[2],[3]]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst := &Instance{}
		if err := inst.UnmarshalJSON(data); err != nil {
			return
		}
		if tooBig(inst) {
			return
		}
		Check(inst, []int{1, 2})
	})
}

// tooBig caps fuzz-driven instance sizes so a hostile byte string cannot
// turn one fuzz iteration into a minute-long brute force.
func tooBig(in *Instance) bool {
	if instSize(in) > 400 {
		return true
	}
	if len(in.File.Dims) > 10 {
		return true
	}
	for _, d := range in.File.Dims {
		if d > 50 {
			return true
		}
	}
	total := 1
	for _, dom := range in.File.Domains {
		if len(dom) == 0 {
			continue
		}
		total *= len(dom)
		if total > 1<<12 {
			return true
		}
	}
	return false
}
