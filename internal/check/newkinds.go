package check

// Oracles for the alignment, Viterbi, and knapsack kinds. Each follows
// the established discipline: a sequential reference, every other
// engine diffed against it BITWISE (integer-valued generated weights
// make all sums exact), the kind's metamorphic invariant (alignment
// symmetry, Viterbi path-cost re-derivation, knapsack prefix
// monotonicity), batch kernels at every width including order
// invariance, and the full spec round-trip through core.Solve.

import (
	"fmt"

	"systolicdp/internal/align"
	"systolicdp/internal/core"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/knapsack"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
	"systolicdp/internal/spec"
	"systolicdp/internal/viterbi"
)

// checkAlign cross-checks the affine-gap lattice: the rolling-row
// reference, the pooled anti-diagonal fast path, the stacked-lattice
// batch sweeps, the symmetry invariant Cost(x,y) == Cost(y,x), and the
// serving wire path.
func (c *checker) checkAlign() {
	x, y := c.inst.File.X, c.inst.File.Y
	p := align.Params{Open: c.inst.File.GapOpen, Ext: c.inst.File.GapExtend}
	seq, err := align.Sequential(x, y, p)
	if err != nil {
		c.addf("result", "align-sequential", "%v", err)
		return
	}
	fast, err := align.SolveFast(x, y, p)
	if err != nil {
		c.addf("result", "align-fast", "%v", err)
		return
	}
	c.cmpScalar("result", "align-sequential vs align-fast", seq, fast)
	// Pooled-workspace reuse: the second solve draws the arena buffers the
	// first one returned and must be bit-identical.
	fast2, err := align.SolveFast(x, y, p)
	if err != nil {
		c.addf("result", "align-fast-rerun", "%v", err)
		return
	}
	c.cmpScalar("result", "align-fast vs align-fast-rerun", fast, fast2)
	// |a-b| substitution makes the lattice symmetric.
	sym, err := align.Sequential(y, x, p)
	if err == nil {
		c.cmpScalar("result", "align(x,y) vs align(y,x) symmetry", seq, sym)
	}
	c.checkAlignBatch(p)
	c.checkAlignRoundTrip(seq)
}

func (c *checker) checkAlignBatch(p align.Params) {
	x, y := c.inst.File.X, c.inst.File.Y
	// Same-shape variants: rotate x so instances differ in values while
	// sharing the lattice shape AND gap penalties the kernel buckets on.
	variant := func(i int) align.Pair {
		vx := make([]float64, len(x))
		for j := range x {
			vx[j] = x[(j+i)%len(x)]
		}
		return align.Pair{X: vx, Y: y}
	}
	for _, b := range batchSizes {
		pairs := make([]align.Pair, b)
		want := make([]float64, b)
		for i := range pairs {
			pairs[i] = variant(i)
			seq, err := align.Sequential(pairs[i].X, pairs[i].Y, p)
			if err != nil {
				c.addf("result", "align-batch-baseline", "b=%d i=%d: %v", b, i, err)
				return
			}
			want[i] = seq
		}
		costs, cycles, err := align.SweepBatch(pairs, p)
		if err != nil {
			c.addf("result", "align-batch", "b=%d: %v", b, err)
			return
		}
		for i := range costs {
			c.cmpScalar("result", fmt.Sprintf("align-sequential vs align-batch[b=%d,i=%d]", b, i),
				want[i], costs[i])
		}
		c.cmpInt("cycles", fmt.Sprintf("align-batch[b=%d] wall cycles vs B*(n+1)+m", b),
			cycles, b*(len(x)+1)+len(y))
		fcosts, fcyc, err := align.SweepBatchFast(pairs, p)
		if err != nil {
			c.addf("result", "align-batch-fast", "b=%d: %v", b, err)
			return
		}
		for i := range fcosts {
			c.cmpScalar("result", fmt.Sprintf("align-batch vs align-batch-fast[b=%d,i=%d]", b, i),
				costs[i], fcosts[i])
		}
		c.cmpInt("cycles", fmt.Sprintf("align-batch vs align-batch-fast[b=%d]", b), cycles, fcyc)
		// Order invariance: reversing the batch permutes outputs only.
		rev := make([]align.Pair, b)
		for i := range rev {
			rev[i] = pairs[b-1-i]
		}
		rcosts, _, err := align.SweepBatch(rev, p)
		if err != nil {
			c.addf("result", "align-batch-reversed", "b=%d: %v", b, err)
			return
		}
		for i := range rcosts {
			c.cmpScalar("result", fmt.Sprintf("align-batch order invariance [b=%d,i=%d]", b, i),
				costs[b-1-i], rcosts[i])
		}
	}
}

func (c *checker) checkAlignRoundTrip(seq float64) {
	data, err := c.inst.File.Marshal()
	if err != nil {
		c.addf("result", "align-spec-marshal", "%v", err)
		return
	}
	p, err := spec.Parse(data)
	if err != nil {
		c.addf("result", "align-spec-parse", "%v", err)
		return
	}
	sol, err := core.Solve(p)
	if err != nil {
		c.addf("result", "align-core-solve", "%v", err)
		return
	}
	c.cmpScalar("result", "align-sequential vs spec-roundtrip", seq, sol.Cost)
}

// checkViterbi cross-checks the trellis: the sequential sweep, the
// Design-3 staged elimination, the expanded-graph baseline, the
// feedback array under every runner, the path-cost re-derivation
// invariant, and the serving wire path. Non-uniform and single-stage
// trellises exercise the fallbacks.
func (c *checker) checkViterbi(workers []int) {
	tr := &viterbi.Trellis{Node: c.inst.File.Values, Trans: c.inst.File.Costs}
	if err := tr.Validate(); err != nil {
		c.addf("invariant", "generator", "invalid trellis: %v", err)
		return
	}
	seq, path, err := tr.Sequential()
	if err != nil {
		c.addf("result", "vit-sequential", "%v", err)
		return
	}
	// Metamorphic re-derivation: replaying the winning path through the
	// same EdgeCost terms must reproduce the cost bitwise.
	if rc, err := tr.PathCost(path); err != nil {
		c.addf("path", "vit-sequential", "invalid path: %v", err)
	} else {
		c.cmpScalar("path", "vit-sequential cost vs PathCost(path)", seq, rc)
	}
	if tr.Stages() >= 2 {
		sp := tr.Staged()
		s := semiring.MinPlus{}
		c.cmpScalar("result", "vit-sequential vs vit-staged-elimination", seq, sp.Solve(s))
		sres := sp.SolvePath(s)
		c.cmpScalar("result", "vit-sequential vs vit-staged-path", seq, sres.Cost)
		c.cmpInts("path", "vit-sequential vs vit-staged-path", path, sres.Nodes)
		// The high-bandwidth expansion Design 3 exists to avoid must still
		// agree.
		expanded := multistage.SolveOptimal(s, sp.Expand())
		c.cmpScalar("result", "vit-sequential vs vit-expanded-graph", seq, expanded.Cost)
		if _, uniform := tr.Uniform(); uniform {
			c.checkViterbiArray(tr, seq, path, workers)
		}
	}
	c.checkViterbiRoundTrip(seq, path)
}

func (c *checker) checkViterbiArray(tr *viterbi.Trellis, seq float64, path []int, workers []int) {
	build := func() (*fbarray.Array, error) {
		return fbarray.NewStaged(semiring.MinPlus{}, tr.Staged())
	}
	a, err := build()
	if err != nil {
		c.addf("result", "vit-fb-build", "%v", err)
		return
	}
	res, err := a.Run(false)
	if err != nil {
		c.addf("result", "vit-fb-lockstep", "%v", err)
		return
	}
	c.cmpScalar("result", "vit-sequential vs vit-fb-lockstep", seq, res.Cost)
	c.cmpInts("path", "vit-sequential vs vit-fb-lockstep", path, res.Path)
	for _, w := range workers {
		if w == 1 {
			continue
		}
		ap, err := build()
		if err != nil {
			continue
		}
		ap.SetParallelism(w)
		ap.SetParallelThreshold(1)
		pres, err := ap.Run(false)
		if err != nil {
			c.addf("result", fmt.Sprintf("vit-fb-lockstep-w%d", w), "%v", err)
			continue
		}
		c.cmpScalar("result", fmt.Sprintf("vit-fb-lockstep vs vit-fb-lockstep-w%d", w), res.Cost, pres.Cost)
		c.cmpInts("path", fmt.Sprintf("vit-fb-lockstep vs vit-fb-lockstep-w%d", w), res.Path, pres.Path)
	}
	ag, err := build()
	if err == nil {
		gres, err := ag.Run(true)
		if err != nil {
			c.addf("result", "vit-fb-goroutines", "%v", err)
		} else {
			c.cmpScalar("result", "vit-fb-lockstep vs vit-fb-goroutines", res.Cost, gres.Cost)
			c.cmpInts("path", "vit-fb-lockstep vs vit-fb-goroutines", res.Path, gres.Path)
		}
	}
}

func (c *checker) checkViterbiRoundTrip(seq float64, path []int) {
	data, err := c.inst.File.Marshal()
	if err != nil {
		c.addf("result", "vit-spec-marshal", "%v", err)
		return
	}
	p, err := spec.Parse(data)
	if err != nil {
		c.addf("result", "vit-spec-parse", "%v", err)
		return
	}
	sol, err := core.Solve(p)
	if err != nil {
		c.addf("result", "vit-core-solve", "%v", err)
		return
	}
	c.cmpScalar("result", "vit-sequential vs spec-roundtrip", seq, sol.Cost)
	c.cmpInts("path", "vit-sequential vs spec-roundtrip", path, sol.Path)
}

// checkKnapsack cross-checks the Lawler-Moore DP: the in-place
// reference against the double-buffered lockstep wave engine (bitwise,
// plus the n-wave cycle count), job-order invariance, prefix
// monotonicity of the on-time weight, and the serving wire path.
func (c *checker) checkKnapsack() {
	f := &c.inst.File
	jobs := make([]knapsack.Job, len(f.Proc))
	for i := range jobs {
		jobs[i] = knapsack.Job{P: f.Proc[i], D: f.Due[i], W: f.Weights[i]}
	}
	seq, err := knapsack.Sequential(jobs)
	if err != nil {
		c.addf("result", "ks-sequential", "%v", err)
		return
	}
	lock, cycles, err := knapsack.Lockstep(jobs)
	if err != nil {
		c.addf("result", "ks-lockstep", "%v", err)
		return
	}
	c.cmpScalar("result", "ks-sequential vs ks-lockstep", seq, lock)
	c.cmpInt("cycles", "ks-lockstep waves vs n jobs", cycles, len(jobs))
	// The objective is a set function of the jobs: any input order must
	// give the same answer (EDD reorders internally).
	rev := make([]knapsack.Job, len(jobs))
	for i := range rev {
		rev[i] = jobs[len(jobs)-1-i]
	}
	rseq, err := knapsack.Sequential(rev)
	if err != nil {
		c.addf("result", "ks-sequential-reversed", "%v", err)
		return
	}
	c.cmpScalar("result", "ks order invariance", seq, rseq)
	// Prefix monotonicity: appending a job can never decrease the maximum
	// on-time weight.
	prev := 0.0
	for k := 0; k <= len(jobs); k++ {
		v, err := knapsack.OnTimeWeight(jobs[:k])
		if err != nil {
			c.addf("result", "ks-prefix", "k=%d: %v", k, err)
			return
		}
		c.combos++
		if v < prev {
			c.addf("invariant", "ks prefix monotonicity", "on-time weight fell %v -> %v at k=%d", prev, v, k)
			return
		}
		prev = v
	}
	data, err := f.Marshal()
	if err != nil {
		c.addf("result", "ks-spec-marshal", "%v", err)
		return
	}
	p, err := spec.Parse(data)
	if err != nil {
		c.addf("result", "ks-spec-parse", "%v", err)
		return
	}
	sol, err := core.Solve(p)
	if err != nil {
		c.addf("result", "ks-core-solve", "%v", err)
		return
	}
	c.cmpScalar("result", "ks-sequential vs spec-roundtrip", seq, sol.Cost)
}
