package check

import (
	"encoding/json"
	"fmt"
	"math"

	"systolicdp/internal/spec"
)

// jsonFloat is a float64 whose JSON form can express the non-finite
// values standard JSON cannot: single-edge degenerate graphs carry
// semiring-Zero (±Inf) edges, and a reproducer must round-trip them.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		case "NaN":
			*f = jsonFloat(math.NaN())
		default:
			return fmt.Errorf("check: bad float literal %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// fileJSON shadows spec.File's costs with the Inf-capable float type;
// every other field is always finite by construction.
type fileJSON struct {
	spec.File
	Costs [][][]jsonFloat `json:"costs,omitempty"`
}

type instanceJSON struct {
	File     fileJSON `json:"spec"`
	Semiring string   `json:"semiring,omitempty"`
	Label    string   `json:"label,omitempty"`
}

// MarshalJSON renders the instance with non-finite cost entries encoded
// as the strings "+Inf"/"-Inf"/"NaN".
func (in Instance) MarshalJSON() ([]byte, error) {
	fj := fileJSON{File: in.File}
	fj.File.Costs = nil
	fj.Costs = costsToJSON(in.File.Costs)
	return json.Marshal(instanceJSON{File: fj, Semiring: in.Semiring, Label: in.Label})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var a instanceJSON
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	in.File = a.File.File
	in.File.Costs = costsFromJSON(a.File.Costs)
	in.Semiring = a.Semiring
	in.Label = a.Label
	return nil
}

func costsToJSON(costs [][][]float64) [][][]jsonFloat {
	if costs == nil {
		return nil
	}
	out := make([][][]jsonFloat, len(costs))
	for k, stage := range costs {
		out[k] = make([][]jsonFloat, len(stage))
		for i, row := range stage {
			out[k][i] = make([]jsonFloat, len(row))
			for j, v := range row {
				out[k][i][j] = jsonFloat(v)
			}
		}
	}
	return out
}

func costsFromJSON(costs [][][]jsonFloat) [][][]float64 {
	if costs == nil {
		return nil
	}
	out := make([][][]float64, len(costs))
	for k, stage := range costs {
		out[k] = make([][]float64, len(stage))
		for i, row := range stage {
			out[k][i] = make([]float64, len(row))
			for j, v := range row {
				out[k][i][j] = float64(v)
			}
		}
	}
	return out
}
