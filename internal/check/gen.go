// Package check is the differential-testing and invariant-checking
// subsystem: a seeded generator produces randomized DP instances, an
// oracle runs each instance through every applicable engine/design
// combination — the sequential baselines, the lock-step engine
// (sequential and parallel at several worker counts), and the
// goroutine-per-PE runner — and diffs results, optimal paths, cycle
// counts, and per-PE busy totals bit for bit. The paper's closed forms
// (the N·m and (N+1)·m iteration counts, the eq (9) processor
// utilization) are asserted as metamorphic invariants on every instance.
//
// The repo has three execution substrates that must agree exactly across
// Designs 1–3; this package is the systematic randomized cross-check
// behind that obligation, shipped as a library (property tests, fuzz
// targets) and as the dpcheck CLI.
//
// All generated weights are integer-valued float64s, so every sum an
// engine computes is exact regardless of association order and mismatch
// detection can use bitwise equality rather than tolerances.
package check

import (
	"fmt"
	"math/rand"
	"sort"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
	"systolicdp/internal/spec"
)

// Kinds lists the instance kinds the generator produces — every
// servable spec kind. The serving tier's pricing exhaustiveness test
// iterates this list, so adding a kind here without an EstimateCost arm
// fails CI.
func Kinds() []string {
	return []string{"graph", "nodevalued", "dtw", "align", "viterbi", "knapsack", "chain", "nonserial"}
}

// Instance is one randomized DP instance. The problem data rides in a
// spec.File — the same wire shape dpsolve and dpserve consume — so every
// reproducer is directly replayable; Semiring selects the engine
// semiring for graph instances ("" means min-plus, the only choice the
// spec format itself expresses).
type Instance struct {
	File     spec.File `json:"spec"`
	Semiring string    `json:"semiring,omitempty"`
	Label    string    `json:"label,omitempty"` // generator note: shape class, weight class
}

// Kind returns the instance's problem kind.
func (in *Instance) Kind() string { return in.File.Problem }

// String renders a short human-readable identity for reports.
func (in *Instance) String() string {
	s := in.Semiring
	if s == "" {
		s = "min-plus"
	}
	return fmt.Sprintf("%s[%s] %s", in.Kind(), s, in.Label)
}

// GenConfig bounds the generator. The zero value selects defaults sized
// for fast per-instance checks (brute-force oracles stay feasible).
type GenConfig struct {
	MaxStages int // inner stages of graph / nodevalued instances; default 7
	MaxM      int // nodes (values) per stage; default 6
	MaxLen    int // dtw series length; default 12
	MaxChain  int // matrices in a chain-ordering instance; default 8
	MaxVars   int // variables of a nonserial chain; default 6
	MaxJobs   int // jobs of a knapsack instance; default 8
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxStages <= 1 {
		c.MaxStages = 7
	}
	if c.MaxM <= 0 {
		c.MaxM = 6
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 12
	}
	if c.MaxChain <= 1 {
		c.MaxChain = 8
	}
	if c.MaxVars <= 2 {
		c.MaxVars = 6
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 8
	}
	return c
}

// weight classes: every class yields integer-valued float64s so engine
// sums are exact in any association order (magnitudes stay far below
// 2^53 even after folding every edge of an instance).
const extremeWeight = 1e12

func genWeight(rng *rand.Rand, class int) float64 {
	switch class {
	case 0: // small signed
		return float64(rng.Intn(19) - 9)
	case 1: // zero-heavy (exercises ties and the semiring One)
		if rng.Intn(2) == 0 {
			return 0
		}
		return float64(rng.Intn(5))
	case 2: // extreme magnitudes (overflow-adjacent but exactly representable)
		sign := float64(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		return sign * extremeWeight * float64(1+rng.Intn(4))
	default: // wide signed
		return float64(rng.Intn(2_000_001) - 1_000_000)
	}
}

func genSeries(rng *rand.Rand, n, class int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = genWeight(rng, class)
	}
	return xs
}

// Gen produces one random instance of a random kind.
func Gen(rng *rand.Rand, cfg GenConfig) *Instance {
	kinds := Kinds()
	return GenKind(rng, kinds[rng.Intn(len(kinds))], cfg)
}

// GenKind produces one random instance of the given kind. It panics on
// an unknown kind (the caller controls the kind set).
func GenKind(rng *rand.Rand, kind string, cfg GenConfig) *Instance {
	cfg = cfg.withDefaults()
	switch kind {
	case "graph":
		return genGraph(rng, cfg)
	case "nodevalued":
		return genNodeValued(rng, cfg)
	case "dtw":
		return genDTW(rng, cfg)
	case "align":
		return genAlign(rng, cfg)
	case "viterbi":
		return genViterbi(rng, cfg)
	case "knapsack":
		return genKnapsack(rng, cfg)
	case "chain":
		return genChain(rng, cfg)
	case "nonserial":
		return genNonserial(rng, cfg)
	default:
		panic(fmt.Sprintf("check: unknown instance kind %q", kind))
	}
}

// genGraph produces a uniform multistage graph wrapped to single
// source/sink (the shape Designs 1–2 require), with occasional
// degenerate shapes: m=1 (single node per stage), the minimum stage
// count, and single-edge stages (all but one edge absent).
func genGraph(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 2 + rng.Intn(cfg.MaxStages-1) // inner stages
	m := 1 + rng.Intn(cfg.MaxM)
	class := rng.Intn(4)
	label := fmt.Sprintf("n=%d m=%d w%d", n, m, class)
	switch rng.Intn(8) {
	case 0:
		m = 1
		label += " degenerate:m=1"
	case 1:
		n = 2
		label += " degenerate:n=2"
	}
	sr := semiring.Comparative(semiring.MinPlus{})
	srName := "min-plus"
	if rng.Intn(3) == 0 {
		sr, srName = semiring.MaxPlus{}, "max-plus"
	}
	inner := &multistage.Graph{}
	singleEdge := rng.Intn(8) == 0
	if singleEdge {
		label += " degenerate:single-edge"
	}
	for k := 0; k+1 < n; k++ {
		c := matrix.New(m, m, 0)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				c.Set(i, j, genWeight(rng, class))
			}
		}
		if singleEdge {
			// Keep exactly one finite edge per row so a path always exists.
			for i := 0; i < m; i++ {
				keep := rng.Intn(m)
				for j := 0; j < m; j++ {
					if j != keep {
						c.Set(i, j, sr.Zero())
					}
				}
			}
		}
		inner.Cost = append(inner.Cost, c)
	}
	inner.StageSizes = make([]int, n)
	for i := range inner.StageSizes {
		inner.StageSizes[i] = m
	}
	wrapped := multistage.SingleSourceSink(sr, inner)
	f, err := spec.FromGraph(wrapped, 1)
	if err != nil {
		panic(fmt.Sprintf("check: generated graph invalid: %v", err))
	}
	// Single-edge graphs carry semiring-Zero (±Inf) entries that the spec
	// wire format cannot express; those instances are engine-only.
	return &Instance{File: *f, Semiring: srName, Label: label}
}

func genNodeValued(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 2 + rng.Intn(cfg.MaxStages-1)
	m := 1 + rng.Intn(cfg.MaxM)
	if rng.Intn(8) == 0 {
		m = 1
	}
	names := costNames(spec.PairCosts())
	name := names[rng.Intn(len(names))]
	// Keep values small: quadratic squares them and rise multiplies by 5;
	// small integers keep every engine sum exact.
	values := make([][]float64, n)
	for k := range values {
		values[k] = make([]float64, m)
		for i := range values[k] {
			values[k][i] = float64(rng.Intn(101) - 50)
		}
	}
	return &Instance{
		File:  spec.File{Problem: "nodevalued", Values: values, Cost: name},
		Label: fmt.Sprintf("n=%d m=%d cost=%s", n, m, name),
	}
}

func genDTW(rng *rand.Rand, cfg GenConfig) *Instance {
	nx := 1 + rng.Intn(cfg.MaxLen)
	ny := 1 + rng.Intn(cfg.MaxLen)
	switch rng.Intn(8) {
	case 0:
		nx = 1
	case 1:
		ny = 1
	}
	class := rng.Intn(4)
	return &Instance{
		File: spec.File{
			Problem: "dtw",
			X:       genSeries(rng, nx, class),
			Y:       genSeries(rng, ny, class),
		},
		Label: fmt.Sprintf("|x|=%d |y|=%d w%d", nx, ny, class),
	}
}

// genAlign produces an affine-gap alignment instance. Unlike dtw, empty
// series are legal degenerates (all-gap alignments); gap penalties stay
// small integers so every engine sum is exact.
func genAlign(rng *rand.Rand, cfg GenConfig) *Instance {
	nx := 1 + rng.Intn(cfg.MaxLen)
	ny := 1 + rng.Intn(cfg.MaxLen)
	label := ""
	switch rng.Intn(8) {
	case 0:
		nx = 0
		label = " degenerate:empty-x"
	case 1:
		ny = 0
		label = " degenerate:empty-y"
	case 2:
		nx, ny = 0, 0
		label = " degenerate:empty-both"
	}
	class := rng.Intn(4)
	return &Instance{
		File: spec.File{
			Problem:   "align",
			X:         genSeries(rng, nx, class),
			Y:         genSeries(rng, ny, class),
			GapOpen:   float64(rng.Intn(6)),
			GapExtend: float64(rng.Intn(4)),
		},
		Label: fmt.Sprintf("|x|=%d |y|=%d w%d%s", nx, ny, class, label),
	}
}

// genViterbi produces a trellis instance on the node/transition wire
// form (Values = stage node costs, Costs = transition matrices).
// Roughly half are uniform (the shape the Design-3 feedback array
// accepts) and ~1/8 are single-stage degenerates (no transitions).
func genViterbi(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 2 + rng.Intn(cfg.MaxStages-1)
	uniform := rng.Intn(2) == 0
	label := ""
	if rng.Intn(8) == 0 {
		n = 1
		label = " degenerate:single-stage"
	}
	class := rng.Intn(4)
	sizes := make([]int, n)
	m := 1 + rng.Intn(cfg.MaxM)
	for k := range sizes {
		if uniform {
			sizes[k] = m
		} else {
			sizes[k] = 1 + rng.Intn(cfg.MaxM)
		}
	}
	values := make([][]float64, n)
	for k := range values {
		values[k] = genSeries(rng, sizes[k], class)
	}
	var trans [][][]float64
	for k := 0; k+1 < n; k++ {
		blk := make([][]float64, sizes[k])
		for i := range blk {
			blk[i] = genSeries(rng, sizes[k+1], class)
		}
		trans = append(trans, blk)
	}
	return &Instance{
		File:  spec.File{Problem: "viterbi", Values: values, Costs: trans},
		Label: fmt.Sprintf("n=%d uniform=%v w%d%s", n, uniform, class, label),
	}
}

// genKnapsack produces a weighted-deadline scheduling instance with
// degenerate shapes: no jobs, all-zero weights, and zero-length jobs
// (P=0 occurs naturally in the processing-time range).
func genKnapsack(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 1 + rng.Intn(cfg.MaxJobs)
	label := ""
	zeroWeight := false
	switch rng.Intn(8) {
	case 0:
		n = 0
		label = " degenerate:no-jobs"
	case 1:
		zeroWeight = true
		label = " degenerate:zero-weights"
	}
	proc := make([]int, n)
	due := make([]int, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		proc[i] = rng.Intn(6)
		due[i] = rng.Intn(16)
		if !zeroWeight {
			weights[i] = float64(rng.Intn(10))
		}
	}
	return &Instance{
		File:  spec.File{Problem: "knapsack", Proc: proc, Due: due, Weights: weights},
		Label: fmt.Sprintf("n=%d%s", n, label),
	}
}

func genChain(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 1 + rng.Intn(cfg.MaxChain) // matrices
	if rng.Intn(8) == 0 {
		n = 1
	}
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = 1 + rng.Intn(30)
	}
	if rng.Intn(8) == 0 {
		for i := range dims {
			dims[i] = 1
		}
	}
	return &Instance{
		File:  spec.File{Problem: "chain", Dims: dims},
		Label: fmt.Sprintf("n=%d", n),
	}
}

func genNonserial(rng *rand.Rand, cfg GenConfig) *Instance {
	n := 3 + rng.Intn(cfg.MaxVars-2)
	names := ternaryNames(spec.TernaryCosts())
	name := names[rng.Intn(len(names))]
	uniform := rng.Intn(2) == 0
	m := 1 + rng.Intn(4)
	domains := make([][]float64, n)
	for i := range domains {
		sz := m
		if !uniform {
			sz = 1 + rng.Intn(4)
		}
		domains[i] = make([]float64, sz)
		for j := range domains[i] {
			domains[i][j] = float64(rng.Intn(41) - 20)
		}
	}
	return &Instance{
		File:  spec.File{Problem: "nonserial", Domains: domains, Cost: name},
		Label: fmt.Sprintf("n=%d uniform=%v cost=%s", n, uniform, name),
	}
}

func costNames(m map[string]multistage.CostFunc) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func ternaryNames(m map[string]func(a, b, c float64) float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
