package check

// Minimize greedily shrinks a mismatching instance while the mismatch
// persists: it drops stages/nodes/elements and zeroes weights, accepting
// any transformation after which Check still reports a mismatch. The
// result is the small reproducer dpcheck prints.
func Minimize(inst *Instance, workers []int) *Instance {
	return minimizeWith(inst, func(cand *Instance) bool {
		ms, _ := Check(cand, workers)
		return len(ms) > 0
	})
}

// minimizeWith is Minimize against an arbitrary "still failing"
// predicate (tests inject synthetic bugs through it).
func minimizeWith(inst *Instance, still func(*Instance) bool) *Instance {
	if !still(inst) {
		return inst // flaky or environment-dependent; report as-is
	}
	cur := inst
	for budget := 0; budget < 400; budget++ {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if still(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	cur.Label += " (minimized)"
	return cur
}

// shrinkCandidates proposes structurally smaller variants, largest
// reductions first.
func shrinkCandidates(in *Instance) []*Instance {
	switch in.Kind() {
	case "graph":
		return shrinkGraph(in)
	case "nodevalued":
		return shrinkNodeValued(in)
	case "dtw":
		return shrinkDTW(in)
	case "chain":
		return shrinkChain(in)
	case "nonserial":
		return shrinkNonserial(in)
	}
	return nil
}

func cloneInstance(in *Instance) *Instance {
	out := *in
	out.File.Costs = clone3(in.File.Costs)
	out.File.Values = clone2(in.File.Values)
	out.File.Domains = clone2(in.File.Domains)
	out.File.X = append([]float64(nil), in.File.X...)
	out.File.Y = append([]float64(nil), in.File.Y...)
	out.File.Dims = append([]int(nil), in.File.Dims...)
	return &out
}

func clone2(v [][]float64) [][]float64 {
	if v == nil {
		return nil
	}
	out := make([][]float64, len(v))
	for i := range v {
		out[i] = append([]float64(nil), v[i]...)
	}
	return out
}

func clone3(v [][][]float64) [][][]float64 {
	if v == nil {
		return nil
	}
	out := make([][][]float64, len(v))
	for i := range v {
		out[i] = clone2(v[i])
	}
	return out
}

// shrinkGraph operates on the wrapped single-source/sink shape the
// generator emits: Costs[0] is 1 x m, the middle matrices are m x m, the
// last is m x 1.
func shrinkGraph(in *Instance) []*Instance {
	var out []*Instance
	costs := in.File.Costs
	// Drop one intermediate m x m stage matrix.
	for k := 1; k+1 < len(costs); k++ {
		c := cloneInstance(in)
		c.File.Costs = append(c.File.Costs[:k], c.File.Costs[k+1:]...)
		out = append(out, c)
	}
	// Drop node j from every intermediate stage: remove column j of each
	// matrix feeding a stage and row j of each matrix leaving one.
	if len(costs) > 0 && len(costs[0]) > 0 {
		m := len(costs[0][0])
		if m > 1 {
			for j := 0; j < m; j++ {
				c := cloneInstance(in)
				for k, mat := range c.File.Costs {
					if k > 0 { // drop row j (source stage keeps its 1 row)
						mat = append(mat[:j], mat[j+1:]...)
					}
					if k+1 < len(c.File.Costs) { // drop column j (sink keeps its 1 col)
						for r := range mat {
							mat[r] = append(mat[r][:j], mat[r][j+1:]...)
						}
					}
					c.File.Costs[k] = mat
				}
				out = append(out, c)
			}
		}
	}
	// Zero one nonzero finite weight.
	out = append(out, zeroOne3(in, func(c *Instance) [][][]float64 { return c.File.Costs })...)
	return out
}

func shrinkNodeValued(in *Instance) []*Instance {
	var out []*Instance
	vals := in.File.Values
	if len(vals) > 2 {
		for k := range vals {
			c := cloneInstance(in)
			c.File.Values = append(c.File.Values[:k], c.File.Values[k+1:]...)
			out = append(out, c)
		}
	}
	if len(vals) > 0 && len(vals[0]) > 1 {
		for j := range vals[0] {
			c := cloneInstance(in)
			for k := range c.File.Values {
				c.File.Values[k] = append(c.File.Values[k][:j], c.File.Values[k][j+1:]...)
			}
			out = append(out, c)
		}
	}
	out = append(out, zeroOne2(in, func(c *Instance) [][]float64 { return c.File.Values })...)
	return out
}

func shrinkDTW(in *Instance) []*Instance {
	var out []*Instance
	if len(in.File.X) > 1 {
		for i := range in.File.X {
			c := cloneInstance(in)
			c.File.X = append(c.File.X[:i], c.File.X[i+1:]...)
			out = append(out, c)
		}
	}
	if len(in.File.Y) > 1 {
		for i := range in.File.Y {
			c := cloneInstance(in)
			c.File.Y = append(c.File.Y[:i], c.File.Y[i+1:]...)
			out = append(out, c)
		}
	}
	for i, v := range in.File.X {
		if v != 0 {
			c := cloneInstance(in)
			c.File.X[i] = 0
			out = append(out, c)
		}
	}
	for i, v := range in.File.Y {
		if v != 0 {
			c := cloneInstance(in)
			c.File.Y[i] = 0
			out = append(out, c)
		}
	}
	return out
}

func shrinkChain(in *Instance) []*Instance {
	var out []*Instance
	if len(in.File.Dims) > 2 {
		for i := range in.File.Dims {
			c := cloneInstance(in)
			c.File.Dims = append(c.File.Dims[:i], c.File.Dims[i+1:]...)
			out = append(out, c)
		}
	}
	for i, d := range in.File.Dims {
		if d > 1 {
			c := cloneInstance(in)
			c.File.Dims[i] = 1
			out = append(out, c)
		}
	}
	return out
}

func shrinkNonserial(in *Instance) []*Instance {
	var out []*Instance
	if len(in.File.Domains) > 3 {
		for k := range in.File.Domains {
			c := cloneInstance(in)
			c.File.Domains = append(c.File.Domains[:k], c.File.Domains[k+1:]...)
			out = append(out, c)
		}
	}
	for k := range in.File.Domains {
		if len(in.File.Domains[k]) > 1 {
			c := cloneInstance(in)
			c.File.Domains[k] = c.File.Domains[k][:len(c.File.Domains[k])-1]
			out = append(out, c)
		}
	}
	out = append(out, zeroOne2(in, func(c *Instance) [][]float64 { return c.File.Domains })...)
	return out
}

func zeroOne2(in *Instance, field func(*Instance) [][]float64) []*Instance {
	var out []*Instance
	src := field(in)
	for i := range src {
		for j, v := range src[i] {
			if v != 0 && isFinite(v) {
				c := cloneInstance(in)
				field(c)[i][j] = 0
				out = append(out, c)
			}
		}
	}
	return out
}

func zeroOne3(in *Instance, field func(*Instance) [][][]float64) []*Instance {
	var out []*Instance
	src := field(in)
	for k := range src {
		for i := range src[k] {
			for j, v := range src[k][i] {
				if v != 0 && isFinite(v) {
					c := cloneInstance(in)
					field(c)[k][i][j] = 0
					out = append(out, c)
				}
			}
		}
	}
	return out
}

func isFinite(v float64) bool { return v == v && v < 1e308 && v > -1e308 }
