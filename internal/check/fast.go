package check

// Fast-path oracle: the zero-alloc monomorphized/tiled kernels must be
// BITWISE identical to the reference engines they replaced on the
// serving hot path — a tiling or pooling bug that perturbs even the
// last ulp is a mismatch, not noise. Each per-kind check below is
// invoked from the corresponding reference check in check.go, so every
// generated instance (including the degenerate shapes the generator
// emits) exercises the fast path at several tile sizes and batch
// widths.

import (
	"fmt"

	"systolicdp/internal/core"
	"systolicdp/internal/dtw"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/semiring"
)

// fastTiles are the tile edges the differential checker sweeps: every
// cell its own tile, a ragged prime that misaligns all borders, the
// production default, and one tile swallowing the whole lattice.
var fastTiles = []int{1, 7, dtw.DefaultTile, 1 << 20}

// checkDTWFast diffs the tiled monomorphized solver against the
// sequential recurrence at every tile size, and the monomorphized batch
// sweep against the reference batch sweep.
func (c *checker) checkDTWFast(seq float64) {
	x, y := c.inst.File.X, c.inst.File.Y
	fast, err := dtw.SolveFast(x, y, dtw.AbsDist)
	if err != nil {
		c.addf("result", "dtw-fast", "%v", err)
		return
	}
	c.cmpScalar("result", "dtw-sequential vs dtw-fast", seq, fast)
	// nil Dist selects the inlinable AbsMetric op — the serving path's
	// actual instantiation.
	op, err := dtw.SolveFast(x, y, nil)
	if err != nil {
		c.addf("result", "dtw-fast-op", "%v", err)
		return
	}
	c.cmpScalar("result", "dtw-sequential vs dtw-fast-op", seq, op)
	for _, T := range fastTiles {
		got, err := dtw.SolveTiled(x, y, dtw.AbsDist, T)
		if err != nil {
			c.addf("result", fmt.Sprintf("dtw-tiled-T%d", T), "%v", err)
			continue
		}
		c.cmpScalar("result", fmt.Sprintf("dtw-sequential vs dtw-tiled-T%d", T), seq, got)
	}
	for _, b := range batchSizes {
		pairs := make([]dtw.Pair, b)
		for i := range pairs {
			vx := make([]float64, len(x))
			for j := range x {
				vx[j] = x[(j+i)%len(x)]
			}
			pairs[i] = dtw.Pair{X: vx, Y: y}
		}
		want, wantCyc, err := dtw.SweepBatch(pairs, dtw.AbsDist)
		if err != nil {
			c.addf("result", "dtw-batch-fast-baseline", "b=%d: %v", b, err)
			return
		}
		got, cyc, err := dtw.SweepBatchFast(pairs, nil)
		if err != nil {
			c.addf("result", "dtw-batch-fast", "b=%d: %v", b, err)
			return
		}
		for i := range want {
			c.cmpScalar("result", fmt.Sprintf("dtw-batch vs dtw-batch-fast[b=%d,i=%d]", b, i), want[i], got[i])
		}
		c.cmpInt("cycles", fmt.Sprintf("dtw-batch vs dtw-batch-fast[b=%d]", b), wantCyc, cyc)
	}
}

// checkChainFast diffs the flat pooled chain-ordering DP — cost AND
// parenthesization — against the table DP, plus the monomorphized batch
// wavefront against the reference one.
func (c *checker) checkChainFast(tab *matchain.Table) {
	dims := c.inst.File.Dims
	cost, paren, err := matchain.SolveFast(dims)
	if err != nil {
		c.addf("result", "chain-fast", "%v", err)
		return
	}
	c.cmpScalar("result", "chain-dp vs chain-fast", tab.OptimalCost(), cost)
	c.combos++
	if want := tab.Parenthesization(); paren != want {
		c.addf("result", "chain-dp vs chain-fast", "parenthesization %q != %q", paren, want)
	}
	for _, b := range batchSizes {
		dimsList := make([][]int, b)
		for i := range dimsList {
			v := make([]int, len(dims))
			for j := range dims {
				v[j] = dims[(j+i)%len(dims)]
			}
			dimsList[i] = v
		}
		tabs, wantCyc, err := matchain.WavefrontBatch(dimsList)
		if err != nil {
			c.addf("result", "chain-batch-fast-baseline", "b=%d: %v", b, err)
			return
		}
		costs, parens, cyc, err := matchain.WavefrontBatchFast(dimsList)
		if err != nil {
			c.addf("result", "chain-batch-fast", "b=%d: %v", b, err)
			return
		}
		for i := range tabs {
			c.cmpScalar("result", fmt.Sprintf("chain-batch vs chain-batch-fast[b=%d,i=%d]", b, i),
				tabs[i].OptimalCost(), costs[i])
			c.combos++
			if want := tabs[i].Parenthesization(); parens[i] != want {
				c.addf("result", fmt.Sprintf("chain-batch vs chain-batch-fast[b=%d,i=%d]", b, i),
					"parenthesization %q != %q", parens[i], want)
			}
		}
		c.cmpInt("cycles", fmt.Sprintf("chain-batch vs chain-batch-fast[b=%d]", b), wantCyc, cyc)
	}
}

// checkNonserialFast diffs pooled monomorphized elimination against the
// reference, with GName set so named cost functions take their
// inlinable op path, and the batch variant against EliminateBatch.
func (c *checker) checkNonserialFast(ch *nonserial.Chain3, name string, elim float64, steps int) {
	named := &nonserial.Chain3{Domains: ch.Domains, G: ch.G, GName: name}
	cost, fsteps, err := nonserial.EliminateFast(named)
	if err != nil {
		c.addf("result", "ns-fast", "%v", err)
		return
	}
	c.cmpScalar("result", "ns-eliminate vs ns-fast", elim, cost)
	c.cmpInt("invariant", "ns-eliminate vs ns-fast steps", steps, fsteps)
	// The unnamed path (FuncOp dispatch) must agree too.
	anon, asteps, err := nonserial.EliminateFast(ch)
	if err != nil {
		c.addf("result", "ns-fast-func", "%v", err)
		return
	}
	c.cmpScalar("result", "ns-eliminate vs ns-fast-func", elim, anon)
	c.cmpInt("invariant", "ns-eliminate vs ns-fast-func steps", steps, asteps)
	for _, b := range batchSizes {
		chains := make([]*nonserial.Chain3, b)
		for i := range chains {
			doms := make([][]float64, len(ch.Domains))
			for d, vals := range ch.Domains {
				doms[d] = make([]float64, len(vals))
				for j, v := range vals {
					doms[d][j] = v + float64(i)
				}
			}
			chains[i] = &nonserial.Chain3{Domains: doms, G: ch.G, GName: name}
		}
		want, wantSteps, err := nonserial.EliminateBatch(chains)
		if err != nil {
			c.addf("result", "ns-batch-fast-baseline", "b=%d: %v", b, err)
			return
		}
		got, gotSteps, err := nonserial.EliminateBatchFast(chains)
		if err != nil {
			c.addf("result", "ns-batch-fast", "b=%d: %v", b, err)
			return
		}
		for i := range want {
			c.cmpScalar("result", fmt.Sprintf("ns-batch vs ns-batch-fast[b=%d,i=%d]", b, i), want[i], got[i])
		}
		c.cmpInt("invariant", fmt.Sprintf("ns-batch vs ns-batch-fast[b=%d] steps", b), wantSteps, gotSteps)
	}
}

// checkGraphFast diffs the monomorphized chain product against the
// interface-typed ChainVec for the instance's comparative semiring.
func (c *checker) checkGraphFast(s semiring.Comparative, ms []*matrix.Matrix, v, ref []float64) {
	var got []float64
	switch sr := s.(type) {
	case semiring.MinPlus:
		got = matrix.ChainVecG(sr, ms, v)
	case semiring.MaxPlus:
		got = matrix.ChainVecG(sr, ms, v)
	default:
		return
	}
	c.cmpVec("result", fmt.Sprintf("chain-vec vs chain-vec-fast (%s)", s.Name()), ref, got)
}

// checkStreamFast diffs the direct library solve (monomorphized chain
// product over the stream decomposition) against the sequential
// baseline — min-plus only, like the stream it bypasses.
func (c *checker) checkStreamFast(g *multistage.Graph, baseCost float64) {
	sol, err := core.SolveGraphDirect(g)
	if err != nil {
		c.addf("result", "graph-direct", "%v", err)
		return
	}
	c.cmpScalar("result", "seq-baseline vs graph-direct", baseCost, sol.Cost)
}
