package check

import (
	"math/rand"
	"strings"
	"testing"
)

// The central property: every engine/design combination agrees on every
// generated instance, including degenerate shapes and extreme weights.
// Workers include 4 — more than this host may have CPUs — so the
// parallel lock-step pool is exercised oversubscribed.
func TestRunCleanAcrossEngines(t *testing.T) {
	rep, err := Run(Options{N: 120, Seed: 7, Workers: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 120 {
		t.Errorf("instances = %d, want 120", rep.Instances)
	}
	if rep.Combos == 0 {
		t.Fatal("no comparisons performed")
	}
	for _, m := range rep.Mismatches {
		t.Errorf("mismatch: %s\nreproducer:\n%s", m.Error(), Reproducer(m.Instance))
	}
}

// Every kind individually stays clean and actually produces comparisons.
func TestRunPerKind(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			rep, err := Run(Options{N: 30, Seed: 11, Kinds: []string{kind}, Workers: []int{1, 2}})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Combos == 0 {
				t.Fatal("no comparisons performed")
			}
			for _, m := range rep.Mismatches {
				t.Errorf("mismatch: %s\nreproducer:\n%s", m.Error(), Reproducer(m.Instance))
			}
		})
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	if _, err := Run(Options{N: 1, Kinds: []string{"sudoku"}}); err == nil {
		t.Fatal("Run accepted unknown kind")
	}
}

// Identical seeds generate identical instance streams — reproducibility
// is what makes a printed seed a bug report.
func TestGenDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(5))
	b := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		ia, ib := Gen(a, GenConfig{}), Gen(b, GenConfig{})
		if Reproducer(ia) != Reproducer(ib) {
			t.Fatalf("instance %d diverged under the same seed", i)
		}
	}
}

// The generator must actually emit its advertised degenerate shapes.
func TestGenCoversDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 800; i++ {
		in := Gen(rng, GenConfig{})
		seen[in.Kind()] = true
		for _, tag := range []string{"degenerate:m=1", "degenerate:n=2", "degenerate:single-edge"} {
			if strings.Contains(in.Label, tag) {
				seen[tag] = true
			}
		}
		if in.Semiring == "max-plus" {
			seen["max-plus"] = true
		}
	}
	for _, want := range append(Kinds(),
		"degenerate:m=1", "degenerate:n=2", "degenerate:single-edge", "max-plus") {
		if !seen[want] {
			t.Errorf("800 instances never produced %q", want)
		}
	}
}

// Reproducer output replays to the same verdict (clean instances stay
// clean through the JSON round trip).
func TestReproducerReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 10; i++ {
		in := Gen(rng, GenConfig{})
		ms, err := Replay([]byte(Reproducer(in)), []int{1, 2})
		if err != nil {
			t.Fatalf("replay %s: %v", in, err)
		}
		for _, m := range ms {
			t.Errorf("replayed %s mismatched: %s", in, m.Error())
		}
	}
}

func TestMinimizeLeavesCleanInstanceAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := GenKind(rng, "graph", GenConfig{})
	out := Minimize(in, []int{1})
	if Reproducer(out) != Reproducer(in) {
		t.Error("Minimize altered an instance with no mismatch")
	}
}

// Inject a synthetic bug — "fails whenever any weight equals 7" — and
// confirm the minimizer shrinks a large graph down to near the minimal
// failing shape while preserving the failure.
func TestMinimizeShrinksInjectedFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var in *Instance
	has7 := func(c *Instance) bool {
		for _, stage := range c.File.Costs {
			for _, row := range stage {
				for _, w := range row {
					if w == 7 {
						return true
					}
				}
			}
		}
		return false
	}
	for in == nil || !has7(in) {
		in = GenKind(rng, "graph", GenConfig{MaxStages: 7, MaxM: 6})
	}
	before := instSize(in)
	out := minimizeWith(in, has7)
	if !has7(out) {
		t.Fatal("minimizer lost the failure")
	}
	after := instSize(out)
	if after >= before {
		t.Errorf("minimizer did not shrink: %d -> %d weights", before, after)
	}
	// Minimal failing graph: source row + sink column + the single kept 7.
	// Allow slack for shapes where stage structure pins extra entries, but
	// it must get close.
	if after > 8 {
		t.Errorf("minimized instance still has %d weights, want <= 8\n%s", after, Reproducer(out))
	}
	if !strings.Contains(out.Label, "minimized") {
		t.Errorf("label %q not marked minimized", out.Label)
	}
}

func instSize(in *Instance) int {
	n := 0
	for _, stage := range in.File.Costs {
		for _, row := range stage {
			n += len(row)
		}
	}
	for _, row := range in.File.Values {
		n += len(row)
	}
	for _, d := range in.File.Domains {
		n += len(d)
	}
	n += len(in.File.X) + len(in.File.Y) + len(in.File.Dims)
	return n
}

// The oracle must notice an actually-wrong answer: corrupt a weight in a
// way that breaks the spec round-trip agreement and confirm Check
// reports it. (Guards against the harness silently comparing nothing.)
func TestCheckDetectsSyntheticMismatch(t *testing.T) {
	in := &Instance{Label: "synthetic"}
	in.File.Problem = "graph"
	// A wrapped 3-stage graph whose sink matrix disagrees in length with
	// the stage structure — the generator never emits this, so the
	// checker must flag it rather than silently skipping the instance.
	in.File.Costs = [][][]float64{
		{{1, 2}},
		{{3}, {4}, {5}}, // 3 rows feeding a 2-node stage: invalid
	}
	ms, _ := Check(in, []int{1})
	if len(ms) == 0 {
		t.Fatal("Check accepted a structurally invalid instance")
	}
}
