package check

import (
	"fmt"
	"math"
	"runtime"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/core"
	"systolicdp/internal/dtw"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
	"systolicdp/internal/spec"
	"systolicdp/internal/systolic"
)

// Mismatch is one observed disagreement: two engines (or an engine and a
// closed-form invariant) produced different answers for the same
// instance.
type Mismatch struct {
	Instance *Instance
	Field    string // "result", "path", "cycles", "busy", "invariant"
	Engines  string // the disagreeing pair, e.g. "pipe-lockstep vs pipe-goroutines"
	Detail   string
}

// Error renders the mismatch as a one-line report.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("%s: %s (%s): %s", m.Instance, m.Field, m.Engines, m.Detail)
}

// Workers are the parallel lock-step worker counts the oracle exercises
// by default (0 is replaced by runtime-dependent NumCPU at check time;
// see Options.Workers in run.go).
var DefaultWorkers = []int{1, 2, -1}

// checker accumulates mismatches and comparison counts for one instance.
type checker struct {
	inst   *Instance
	combos int
	ms     []*Mismatch
}

func (c *checker) addf(field, engines, format string, args ...any) {
	c.ms = append(c.ms, &Mismatch{
		Instance: c.inst,
		Field:    field,
		Engines:  engines,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// eqF is bitwise float equality with NaN never equal to anything —
// generated weights are integer-valued, so agreeing engines agree
// exactly.
func eqF(a, b float64) bool { return a == b }

func (c *checker) cmpScalar(field, engines string, a, b float64) {
	c.combos++
	if !eqF(a, b) {
		c.addf(field, engines, "%v != %v", a, b)
	}
}

func (c *checker) cmpVec(field, engines string, a, b []float64) {
	c.combos++
	if len(a) != len(b) {
		c.addf(field, engines, "length %d != %d", len(a), len(b))
		return
	}
	for i := range a {
		if !eqF(a[i], b[i]) {
			c.addf(field, engines, "[%d]: %v != %v", i, a[i], b[i])
			return
		}
	}
}

func (c *checker) cmpInts(field, engines string, a, b []int) {
	c.combos++
	if len(a) != len(b) {
		c.addf(field, engines, "length %d != %d", len(a), len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			c.addf(field, engines, "[%d]: %d != %d", i, a[i], b[i])
			return
		}
	}
}

func (c *checker) cmpInt(field, engines string, a, b int) {
	c.combos++
	if a != b {
		c.addf(field, engines, "%d != %d", a, b)
	}
}

// Check runs the instance through every applicable engine/design
// combination and returns the mismatches found, together with the number
// of comparisons performed.
func Check(inst *Instance, workers []int) (mismatches []*Mismatch, combos int) {
	if len(workers) == 0 {
		workers = DefaultWorkers
	}
	ws := make([]int, 0, len(workers))
	seen := map[int]bool{}
	for _, w := range workers {
		if w <= 0 {
			w = runtime.NumCPU()
		}
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	workers = ws
	c := &checker{inst: inst}
	switch inst.Kind() {
	case "graph":
		c.checkGraph(workers)
	case "nodevalued":
		c.checkNodeValued(workers)
	case "dtw":
		c.checkDTW()
	case "align":
		c.checkAlign()
	case "viterbi":
		c.checkViterbi(workers)
	case "knapsack":
		c.checkKnapsack()
	case "chain":
		c.checkChain(workers)
	case "nonserial":
		c.checkNonserial(workers)
	default:
		c.addf("invariant", "generator", "unknown kind %q", inst.Kind())
	}
	return c.ms, c.combos
}

// graph reconstructs the multistage graph an instance's spec carries.
func (in *Instance) graph() (*multistage.Graph, error) {
	if in.Kind() != "graph" {
		return nil, fmt.Errorf("check: not a graph instance")
	}
	g := &multistage.Graph{}
	for si, rows := range in.File.Costs {
		if len(rows) == 0 || len(rows[0]) == 0 {
			return nil, fmt.Errorf("check: stage %d empty", si)
		}
		for ri, r := range rows {
			if len(r) != len(rows[0]) {
				return nil, fmt.Errorf("check: stage %d row %d ragged (%d entries, want %d)",
					si, ri, len(r), len(rows[0]))
			}
		}
		m := matrix.FromRows(rows)
		g.Cost = append(g.Cost, m)
		if si == 0 {
			g.StageSizes = append(g.StageSizes, m.Rows)
		}
		g.StageSizes = append(g.StageSizes, m.Cols)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (in *Instance) comparative() (semiring.Comparative, string) {
	if in.Semiring == "max-plus" {
		return semiring.MaxPlus{}, "max-plus"
	}
	return semiring.MinPlus{}, "min-plus"
}

// hasNonFinite reports whether any cost matrix entry is ±Inf or NaN
// (single-edge degenerate graphs carry semiring-Zero entries the spec
// wire format cannot express — those skip the spec round-trip check).
func hasNonFinite(g *multistage.Graph) bool {
	for _, m := range g.Cost {
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if v := m.At(i, j); math.IsInf(v, 0) || math.IsNaN(v) {
					return true
				}
			}
		}
	}
	return false
}

// checkGraph is the Designs-1/2 oracle: the sequential baselines, the
// pipelined array, the broadcast array, the streamed array, and the
// serving entry points must all report the same optimum; cycle counts
// and per-PE busy totals must match the paper's closed forms; and every
// runner (lock-step sequential, lock-step parallel at each worker count,
// goroutine-per-PE) must be bit-identical.
func (c *checker) checkGraph(workers []int) {
	g, err := c.inst.graph()
	if err != nil {
		c.addf("invariant", "generator", "graph rebuild: %v", err)
		return
	}
	s, srName := c.inst.comparative()

	// Sequential baselines agree among themselves.
	base := multistage.SolveOptimal(s, g)
	if pathCost, err := g.CostOf(s, base.Nodes); err != nil {
		c.addf("path", "seq-baseline", "invalid optimal path: %v", err)
	} else {
		c.cmpScalar("path", "seq-baseline cost vs CostOf(path)", base.Cost, pathCost)
	}
	brute := multistage.BruteForce(s, g)
	c.cmpScalar("result", "seq-baseline vs brute-force", base.Cost, brute.Cost)
	c.cmpScalar("result", "seq-baseline vs forward-sweep",
		base.Cost, semiring.Fold(s, multistage.SolveForward(s, g)))
	c.cmpScalar("result", "seq-baseline vs backward-sweep",
		base.Cost, semiring.Fold(s, multistage.SolveBackward(s, g)))

	// The matrix-string form of the same search (equation (8)).
	mats := g.Matrices()
	k := len(mats)
	if k < 2 || mats[k-1].Cols != 1 {
		c.addf("invariant", "generator", "graph not single-sink wrapped")
		return
	}
	ms, v := mats[:k-1], mats[k-1].Col(0)
	ref := matrix.ChainVec(s, ms, v)
	c.cmpScalar("result", "seq-baseline vs chain-vec", base.Cost, semiring.Fold(s, ref))
	c.checkGraphFast(s, ms, v, ref)

	m := len(v)
	c.checkPipearray(workers, s, srName, ms, v, ref, g)
	c.checkBcastarray(workers, s, srName, ms, v, ref)
	if srName == "min-plus" {
		c.checkStream(ms, v, ref, g, base.Cost, workers)
		c.checkStreamFast(g, base.Cost)
		if !hasNonFinite(g) {
			c.checkSpecRoundTrip(g, base.Cost)
		}
	}
	c.checkSemiringSweep(g)

	// Closed forms: an (N+1)-stage wrapped graph with m nodes per
	// intermediate stage takes N*m iterations on Designs 1-2 (N*m - 1
	// wall cycles for Design 1 including skew), and its processor
	// utilization obeys equation (9).
	n := g.Stages() - 1
	pu := metrics.PU(metrics.SerialItersGraph(n, m), n*m, m)
	pu9 := metrics.PUEq9(n, m)
	c.combos++
	if math.Abs(pu-pu9) > 1e-12*math.Max(1, math.Abs(pu9)) {
		c.addf("invariant", "PU vs eq(9)", "PU=%v, closed form %v (n=%d m=%d)", pu, pu9, n, m)
	}
}

func (c *checker) checkPipearray(workers []int, s semiring.Comparative, srName string,
	ms []*matrix.Matrix, v, ref []float64, g *multistage.Graph) {
	build := func() (*pipearray.Array, error) { return pipearray.NewSemiring(s, ms, v) }
	a, err := build()
	if err != nil {
		c.addf("result", "pipe-build", "%v", err)
		return
	}
	n := g.Stages() - 1
	c.cmpInt("cycles", "pipe wall cycles vs paper N*m-1", a.WallCycles(), n*len(v)-1)
	c.cmpInt("cycles", "pipe iterations vs paper K*m", a.Iterations(), a.K*a.M)

	type run struct {
		name string
		out  []float64
		res  *systolicResult
	}
	var runs []run
	addRun := func(name string, out []float64, cycles int, busy []int, err error) {
		if err != nil {
			c.addf("result", name, "run failed: %v", err)
			return
		}
		runs = append(runs, run{name: name, out: out, res: &systolicResult{Cycles: cycles, Busy: busy}})
	}

	out, res, err := a.Run(false)
	addRun("pipe-lockstep", out, resCycles(res), resBusy(res), err)
	if err == nil {
		// Re-run determinism: RunObserved resets the network first, so a
		// second run of the same array must be bit-identical (the contract
		// the serving layer's array reuse depends on).
		out2, res2, err2 := a.Run(false)
		if err2 != nil {
			c.addf("result", "pipe-rerun", "second run failed: %v", err2)
		} else {
			c.cmpVec("result", "pipe-lockstep vs pipe-rerun", out, out2)
			c.cmpInt("cycles", "pipe-lockstep vs pipe-rerun", resCycles(res), resCycles(res2))
			c.cmpInts("busy", "pipe-lockstep vs pipe-rerun", resBusy(res), resBusy(res2))
		}
	}
	for _, w := range workers {
		if w == 1 {
			continue
		}
		ap, err := build()
		if err != nil {
			c.addf("result", "pipe-build", "%v", err)
			continue
		}
		ap.SetParallelism(w)
		ap.SetParallelThreshold(1)
		out, res, err := ap.Run(false)
		addRun(fmt.Sprintf("pipe-lockstep-w%d", w), out, resCycles(res), resBusy(res), err)
	}
	ag, err := build()
	if err == nil {
		out, res, err := ag.Run(true)
		addRun("pipe-goroutines", out, resCycles(res), resBusy(res), err)
	}

	if len(runs) == 0 {
		return
	}
	c.cmpVec("result", "pipe-lockstep vs chain-vec", runs[0].out, ref)
	for _, r := range runs[1:] {
		c.cmpVec("result", "pipe-lockstep vs "+r.name, runs[0].out, r.out)
		c.cmpInt("cycles", "pipe-lockstep vs "+r.name, runs[0].res.Cycles, r.res.Cycles)
		c.cmpInts("busy", "pipe-lockstep vs "+r.name, runs[0].res.Busy, r.res.Busy)
	}
	// Every PE performs exactly K*m useful iterations (the paper's count).
	for pe, b := range runs[0].res.Busy {
		c.combos++
		if b != a.Iterations() {
			c.addf("busy", "pipe-lockstep vs iteration closed form",
				"PE %d busy %d, want %d", pe, b, a.Iterations())
			break
		}
	}
	_ = srName
}

func (c *checker) checkBcastarray(workers []int, s semiring.Comparative, srName string,
	ms []*matrix.Matrix, v, ref []float64) {
	a, err := bcastarray.NewSemiring(s, ms, v)
	if err != nil {
		c.addf("result", "bcast-build", "%v", err)
		return
	}
	c.cmpInt("cycles", "bcast wall cycles vs paper K*m", a.WallCycles(), a.K*a.M)

	outSeq, busySeq := a.RunLockstep()
	c.cmpVec("result", "bcast-lockstep vs chain-vec", outSeq, ref)
	out2, busy2 := a.RunLockstep()
	c.cmpVec("result", "bcast-lockstep vs bcast-rerun", outSeq, out2)
	c.cmpInts("busy", "bcast-lockstep vs bcast-rerun", busySeq, busy2)
	for _, w := range workers {
		if w == 1 {
			continue
		}
		ap, err := bcastarray.NewSemiring(s, ms, v)
		if err != nil {
			continue
		}
		ap.SetParallelism(w)
		ap.SetParallelThreshold(1)
		out, busy := ap.RunLockstep()
		name := fmt.Sprintf("bcast-lockstep-w%d", w)
		c.cmpVec("result", "bcast-lockstep vs "+name, outSeq, out)
		c.cmpInts("busy", "bcast-lockstep vs "+name, busySeq, busy)
	}
	outG, busyG := a.RunGoroutines()
	c.cmpVec("result", "bcast-lockstep vs bcast-goroutines", outSeq, outG)
	c.cmpInts("busy", "bcast-lockstep vs bcast-goroutines", busySeq, busyG)
	// Design 2 keeps every PE busy every iteration.
	for pe, b := range busySeq {
		c.combos++
		if b != a.Iterations() {
			c.addf("busy", "bcast-lockstep vs iteration closed form",
				"PE %d busy %d, want %d", pe, b, a.Iterations())
			break
		}
	}
	_ = srName
}

// checkStream cross-checks the streamed (batched) Design-1 array — the
// serving substrate — against the one-shot array, for a single instance
// and for a duplicated batch, under both runners and the parallel
// lock-step compute phase.
func (c *checker) checkStream(ms []*matrix.Matrix, v, ref []float64, g *multistage.Graph,
	baseCost float64, workers []int) {
	one := pipearray.StreamProblem{Ms: ms, V: v}
	for _, b := range []int{1, 3} {
		problems := make([]pipearray.StreamProblem, b)
		for i := range problems {
			problems[i] = one
		}
		st, err := pipearray.NewStream(problems)
		if err != nil {
			c.addf("result", "stream-build", "%v", err)
			return
		}
		outs, _, err := st.RunObserved(false)
		if err != nil {
			c.addf("result", "stream-lockstep", "%v", err)
			return
		}
		for i, out := range outs {
			c.cmpVec("result", fmt.Sprintf("stream-lockstep[b=%d,i=%d] vs chain-vec", b, i), out, ref)
		}
		stg, err := pipearray.NewStream(problems)
		if err == nil {
			goOuts, _, err := stg.RunObserved(true)
			if err != nil {
				c.addf("result", "stream-goroutines", "%v", err)
			} else {
				for i := range goOuts {
					c.cmpVec("result", fmt.Sprintf("stream-lockstep vs stream-goroutines[b=%d,i=%d]", b, i),
						outs[i], goOuts[i])
				}
			}
		}
	}
	// The serving batch entry point, including the parallel engine knob.
	for _, w := range workers {
		gs := []*multistage.Graph{g, g}
		sols, _, err := core.SolveGraphBatchParallel(gs, w, 1)
		if err != nil {
			c.addf("result", "core-batch", "workers=%d: %v", w, err)
			continue
		}
		for i, sol := range sols {
			c.cmpScalar("result", fmt.Sprintf("seq-baseline vs core-batch[w=%d,i=%d]", w, i),
				baseCost, sol.Cost)
		}
	}
}

// checkSpecRoundTrip drives the full serving wire path: encode the graph
// as a spec, re-parse it, and solve through core.Solve for Designs 0-2.
func (c *checker) checkSpecRoundTrip(g *multistage.Graph, baseCost float64) {
	for design := 0; design <= 2; design++ {
		f, err := spec.FromGraph(g, design)
		if err != nil {
			c.addf("result", "spec-encode", "design %d: %v", design, err)
			continue
		}
		data, err := f.Marshal()
		if err != nil {
			c.addf("result", "spec-marshal", "design %d: %v", design, err)
			continue
		}
		p, err := spec.Parse(data)
		if err != nil {
			c.addf("result", "spec-parse", "design %d: %v", design, err)
			continue
		}
		sol, err := core.Solve(p)
		if err != nil {
			c.addf("result", "core-solve", "design %d: %v", design, err)
			continue
		}
		c.cmpScalar("result", fmt.Sprintf("seq-baseline vs spec-roundtrip[design=%d]", design),
			baseCost, sol.Cost)
	}
}

// checkSemiringSweep re-checks the forward/backward sweep agreement over
// all four semirings on a sanitized copy of the graph (weights mapped
// into each semiring's domain), the "multistage graphs over all four
// semirings" obligation.
func (c *checker) checkSemiringSweep(g *multistage.Graph) {
	for _, s := range semiring.All() {
		gg := &multistage.Graph{StageSizes: g.StageSizes}
		for _, mm := range g.Cost {
			nm := matrix.New(mm.Rows, mm.Cols, 0)
			for i := 0; i < mm.Rows; i++ {
				for j := 0; j < mm.Cols; j++ {
					nm.Set(i, j, sanitizeWeight(s, mm.At(i, j)))
				}
			}
			gg.Cost = append(gg.Cost, nm)
		}
		fwd := semiring.Fold(s, multistage.SolveForward(s, gg))
		bwd := semiring.Fold(s, multistage.SolveBackward(s, gg))
		c.cmpScalar("result", fmt.Sprintf("forward vs backward sweep (%s)", s.Name()), fwd, bwd)
	}
}

// sanitizeWeight maps an arbitrary generated weight into a small value
// meaningful for the given semiring: 0/1 for the Boolean semiring, small
// non-negative integers for (+,x) so products of path sums stay exact,
// and the weight itself for the tropical semirings.
func sanitizeWeight(s semiring.Semiring, w float64) float64 {
	switch s.(type) {
	case semiring.BoolOrAnd:
		if int64(math.Abs(math.Mod(w, 1e6)))%2 == 1 {
			return 1
		}
		return 0
	case semiring.PlusTimes:
		return float64(int64(math.Abs(math.Mod(w, 1e6)))%3) + 1
	default:
		if math.IsInf(w, 0) {
			return w // semiring Zero of the tropical instance stays absent
		}
		// Clamp extremes so even (MAX,+) path sums stay exactly
		// representable in the sweep.
		return math.Mod(w, 1e9)
	}
}

// checkNodeValued is the Design-3 oracle: the elimination baseline, the
// expanded-graph baseline, and the feedback array under every runner
// must agree on cost and produce mutually optimal paths.
func (c *checker) checkNodeValued(workers []int) {
	name := c.inst.File.Cost
	if name == "" {
		name = "absdiff"
	}
	cf, ok := spec.PairCosts()[name]
	if !ok {
		c.addf("invariant", "generator", "unknown pair cost %q", name)
		return
	}
	p := &multistage.NodeValued{Values: c.inst.File.Values, F: cf}
	if err := p.Validate(); err != nil {
		c.addf("invariant", "generator", "invalid nodevalued: %v", err)
		return
	}
	for _, s := range []semiring.Comparative{semiring.MinPlus{}, semiring.MaxPlus{}} {
		c.checkNodeValuedSemiring(p, s, workers)
	}
}

// pathObjective recomputes the node-valued objective along a path of
// value indices.
func pathObjective(p *multistage.NodeValued, path []int) (float64, error) {
	if len(path) != p.Stages() {
		return 0, fmt.Errorf("path has %d stages, want %d", len(path), p.Stages())
	}
	total := 0.0
	for k := 0; k+1 < len(path); k++ {
		if path[k] < 0 || path[k] >= len(p.Values[k]) {
			return 0, fmt.Errorf("stage %d index %d out of range", k, path[k])
		}
		total += p.F(p.Values[k][path[k]], p.Values[k+1][path[k+1]])
	}
	last := len(path) - 1
	if path[last] < 0 || path[last] >= len(p.Values[last]) {
		return 0, fmt.Errorf("stage %d index %d out of range", last, path[last])
	}
	return total, nil
}

func (c *checker) checkNodeValuedSemiring(p *multistage.NodeValued, s semiring.Comparative, workers []int) {
	srName := s.Name()
	base := p.SolvePath(s)
	if obj, err := pathObjective(p, base.Nodes); err != nil {
		c.addf("path", "nv-baseline ("+srName+")", "invalid path: %v", err)
	} else {
		c.cmpScalar("path", "nv-baseline cost vs objective(path) ("+srName+")", base.Cost, obj)
	}
	c.cmpScalar("result", "nv-baseline vs elimination ("+srName+")", base.Cost, p.Solve(s))
	expanded := multistage.SolveOptimal(s, p.Expand())
	c.cmpScalar("result", "nv-baseline vs expanded-graph ("+srName+")", base.Cost, expanded.Cost)

	build := func() (*fbarray.Array, error) { return fbarray.NewSemiring(s, p) }
	a, err := build()
	if err != nil {
		c.addf("result", "fb-build ("+srName+")", "%v", err)
		return
	}
	// The paper's (N+1)*m iteration count is executed literally: the run
	// is given exactly Iterations() cycles and must observe the final
	// comparison token within them.
	c.cmpInt("cycles", "fb iterations vs paper (N+1)*m", a.Iterations(), (p.Stages()+1)*len(p.Values[0]))

	type fbrun struct {
		name string
		res  *fbarray.Result
	}
	var runs []fbrun
	addRun := func(name string, res *fbarray.Result, err error) {
		if err != nil {
			c.addf("result", name, "run failed: %v", err)
			return
		}
		runs = append(runs, fbrun{name, res})
	}
	res, err := a.Run(false)
	addRun("fb-lockstep ("+srName+")", res, err)
	if err == nil {
		res2, err2 := a.Run(false)
		if err2 != nil {
			c.addf("result", "fb-rerun ("+srName+")", "second run failed: %v", err2)
		} else {
			c.cmpScalar("result", "fb-lockstep vs fb-rerun ("+srName+")", res.Cost, res2.Cost)
			c.cmpInts("path", "fb-lockstep vs fb-rerun ("+srName+")", res.Path, res2.Path)
			c.cmpInts("busy", "fb-lockstep vs fb-rerun ("+srName+")", res.Busy, res2.Busy)
		}
	}
	for _, w := range workers {
		if w == 1 {
			continue
		}
		ap, err := build()
		if err != nil {
			continue
		}
		ap.SetParallelism(w)
		ap.SetParallelThreshold(1)
		res, err := ap.Run(false)
		addRun(fmt.Sprintf("fb-lockstep-w%d (%s)", w, srName), res, err)
	}
	ag, err := build()
	if err == nil {
		res, err := ag.Run(true)
		addRun("fb-goroutines ("+srName+")", res, err)
	}
	if len(runs) == 0 {
		return
	}
	for _, r := range runs {
		c.cmpScalar("result", "nv-baseline vs "+r.name, base.Cost, r.res.Cost)
		if obj, err := pathObjective(p, r.res.Path); err != nil {
			c.addf("path", r.name, "invalid path: %v", err)
		} else {
			c.cmpScalar("path", r.name+" cost vs objective(path)", r.res.Cost, obj)
		}
	}
	for _, r := range runs[1:] {
		c.cmpInts("busy", runs[0].name+" vs "+r.name, runs[0].res.Busy, r.res.Busy)
		c.cmpInts("path", runs[0].name+" vs "+r.name, runs[0].res.Path, r.res.Path)
	}
}

// checkDTW cross-checks the sequential DTW baseline against the
// anti-diagonal systolic array under both runners, asserts the n+m-1
// wavefront cycle count, and uses the symmetry of the lattice
// (DTW(x,y) == DTW(y,x) for a symmetric distance) as a metamorphic
// invariant.
func (c *checker) checkDTW() {
	x, y := c.inst.File.X, c.inst.File.Y
	seq, err := dtw.Sequential(x, y, dtw.AbsDist)
	if err != nil {
		c.addf("result", "dtw-sequential", "%v", err)
		return
	}
	a, err := dtw.New(y, dtw.AbsDist)
	if err != nil {
		c.addf("result", "dtw-build", "%v", err)
		return
	}
	lock, cyc, err := a.Match(x, false)
	if err != nil {
		c.addf("result", "dtw-lockstep", "%v", err)
		return
	}
	c.cmpScalar("result", "dtw-sequential vs dtw-lockstep", seq, lock)
	c.cmpInt("cycles", "dtw wall cycles vs paper n+m-1", cyc, len(x)+len(y)-1)
	gor, gcyc, err := a.Match(x, true)
	if err != nil {
		c.addf("result", "dtw-goroutines", "%v", err)
		return
	}
	c.cmpScalar("result", "dtw-lockstep vs dtw-goroutines", lock, gor)
	c.cmpInt("cycles", "dtw-lockstep vs dtw-goroutines", cyc, gcyc)
	sym, err := dtw.Sequential(y, x, dtw.AbsDist)
	if err == nil {
		c.cmpScalar("result", "dtw(x,y) vs dtw(y,x) symmetry", seq, sym)
	}
	c.checkDTWFast(seq)
	c.checkDTWBatch()
}

// checkChain cross-checks the chain-ordering DP against the concurrent
// wavefront evaluation, the AND/OR-graph engine mapping, the two timed
// Section-6.2 simulators, and (for small instances) brute force.
func (c *checker) checkChain(workers []int) {
	dims := c.inst.File.Dims
	tab, err := matchain.DP(dims)
	if err != nil {
		c.addf("result", "chain-dp", "%v", err)
		return
	}
	best := tab.OptimalCost()
	c.cmpScalar("result", "chain-dp cost vs MultiplyCost(parenthesization)", best, tab.MultiplyCost())
	for _, w := range workers {
		wt, err := matchain.Wavefront(dims, w)
		if err != nil {
			c.addf("result", fmt.Sprintf("chain-wavefront-w%d", w), "%v", err)
			continue
		}
		c.cmpScalar("result", fmt.Sprintf("chain-dp vs chain-wavefront-w%d", w), best, wt.OptimalCost())
	}
	if n := len(dims) - 1; n <= 8 {
		bf, err := matchain.BruteForce(dims)
		if err != nil {
			c.addf("result", "chain-bruteforce", "%v", err)
		} else {
			c.cmpScalar("result", "chain-dp vs chain-bruteforce", best, bf)
		}
	}
	if n := len(dims) - 1; n >= 2 {
		er, err := matchain.SolveOnEngine(dims)
		if err != nil {
			c.addf("result", "chain-engine", "%v", err)
		} else {
			c.cmpScalar("result", "chain-dp vs chain-engine", best, er.Cost)
		}
		for name, sim := range map[string]func([]int) (*matchain.TimingResult, error){
			"chain-bus":      matchain.SimulateBus,
			"chain-systolic": matchain.SimulateSystolic,
		} {
			tr, err := sim(dims)
			if err != nil {
				c.addf("result", name, "%v", err)
				continue
			}
			c.cmpScalar("result", "chain-dp vs "+name, best, tr.Cost)
		}
	}
	c.checkChainFast(tab)
	c.checkChainBatch()
}

// checkNonserial cross-checks direct elimination of the ternary chain
// against brute force, the grouped serial transformations (equation
// (41)), and — for uniform domains — the Design-3 feedback array run on
// the grouped problem.
func (c *checker) checkNonserial(workers []int) {
	name := c.inst.File.Cost
	if name == "" {
		name = "default"
	}
	gf, ok := spec.TernaryCosts()[name]
	if !ok {
		c.addf("invariant", "generator", "unknown ternary cost %q", name)
		return
	}
	ch := &nonserial.Chain3{Domains: c.inst.File.Domains, G: gf}
	if err := ch.Validate(); err != nil {
		c.addf("invariant", "generator", "invalid chain3: %v", err)
		return
	}
	elim, steps, err := ch.Eliminate()
	if err != nil {
		c.addf("result", "ns-eliminate", "%v", err)
		return
	}
	c.cmpInt("invariant", "ns-eliminate steps vs eq(40)", steps, ch.StepsEq40())
	c.checkNonserialFast(ch, name, elim, steps)
	c.checkNonserialBatch(ch)
	total := 1
	for _, d := range ch.Domains {
		total *= len(d)
		if total > 1<<14 {
			break
		}
	}
	if total <= 1<<14 {
		_, bf, err := ch.AsProblem().BruteForce()
		if err != nil {
			c.addf("result", "ns-bruteforce", "%v", err)
		} else {
			c.cmpScalar("result", "ns-eliminate vs ns-bruteforce", elim, bf)
		}
	}
	gg, err := ch.GroupToGraph()
	if err != nil {
		c.addf("result", "ns-group-graph", "%v", err)
	} else {
		c.cmpScalar("result", "ns-eliminate vs ns-grouped-graph",
			elim, multistage.SolveOptimal(semiring.MinPlus{}, gg).Cost)
	}
	if ch.UniformDomains() {
		nv, err := ch.GroupToSerial()
		if err != nil {
			c.addf("result", "ns-group-serial", "%v", err)
			return
		}
		c.cmpScalar("result", "ns-eliminate vs ns-grouped-elimination",
			elim, nv.Solve(semiring.MinPlus{}))
		for _, w := range workers {
			a, err := fbarray.New(nv)
			if err != nil {
				c.addf("result", "ns-fb-build", "%v", err)
				return
			}
			if w != 1 {
				a.SetParallelism(w)
				a.SetParallelThreshold(1)
			}
			res, err := a.Run(false)
			if err != nil {
				c.addf("result", fmt.Sprintf("ns-fb-lockstep-w%d", w), "%v", err)
				continue
			}
			c.cmpScalar("result", fmt.Sprintf("ns-eliminate vs ns-fb-lockstep-w%d", w), elim, res.Cost)
		}
		ag, err := fbarray.New(nv)
		if err == nil {
			res, err := ag.Run(true)
			if err != nil {
				c.addf("result", "ns-fb-goroutines", "%v", err)
			} else {
				c.cmpScalar("result", "ns-eliminate vs ns-fb-goroutines", elim, res.Cost)
			}
		}
	}
}

// systolicResult is the runner-shape-agnostic slice of an engine result
// the oracle compares.
type systolicResult struct {
	Cycles int
	Busy   []int
}

func resCycles(r *systolic.Result) int {
	if r == nil {
		return -1
	}
	return r.Cycles
}

func resBusy(r *systolic.Result) []int {
	if r == nil {
		return nil
	}
	return r.Busy
}
