package check

import (
	"fmt"

	"systolicdp/internal/dtw"
	"systolicdp/internal/matchain"
	"systolicdp/internal/nonserial"
)

// batchSizes are the multi-instance widths the oracle exercises against
// every batch kernel: the degenerate single-instance batch, the smallest
// real batch, and a non-power-of-two that staggers bucket arithmetic.
var batchSizes = []int{1, 2, 7}

// checkDTWBatch cross-checks the stacked anti-diagonal sweep
// (dtw.SweepBatch) against the sequential recurrence: every instance of
// every batch width must match bitwise, results must not depend on the
// instance order inside the batch, and the lattice symmetry
// DTW(x,y) == DTW(y,x) must survive batching.
func (c *checker) checkDTWBatch() {
	x, y := c.inst.File.X, c.inst.File.Y
	// Same-shape variants: rotate x so instances differ in values while
	// sharing the (|x|, |y|) lattice the kernel buckets on.
	variant := func(i int) dtw.Pair {
		vx := make([]float64, len(x))
		for j := range x {
			vx[j] = x[(j+i)%len(x)]
		}
		return dtw.Pair{X: vx, Y: y}
	}
	for _, b := range batchSizes {
		pairs := make([]dtw.Pair, b)
		want := make([]float64, b)
		for i := range pairs {
			pairs[i] = variant(i)
			seq, err := dtw.Sequential(pairs[i].X, pairs[i].Y, dtw.AbsDist)
			if err != nil {
				c.addf("result", "dtw-batch-baseline", "b=%d i=%d: %v", b, i, err)
				return
			}
			want[i] = seq
		}
		dists, cycles, err := dtw.SweepBatch(pairs, dtw.AbsDist)
		if err != nil {
			c.addf("result", "dtw-batch", "b=%d: %v", b, err)
			return
		}
		for i := range dists {
			c.cmpScalar("result", fmt.Sprintf("dtw-sequential vs dtw-batch[b=%d,i=%d]", b, i), want[i], dists[i])
		}
		c.cmpInt("cycles", fmt.Sprintf("dtw-batch[b=%d] wall cycles vs B*n+m-1", b),
			cycles, b*len(x)+len(y)-1)
		// Order invariance: reversing the batch permutes the outputs and
		// changes nothing else.
		rev := make([]dtw.Pair, b)
		for i := range rev {
			rev[i] = pairs[b-1-i]
		}
		rdists, _, err := dtw.SweepBatch(rev, dtw.AbsDist)
		if err != nil {
			c.addf("result", "dtw-batch-reversed", "b=%d: %v", b, err)
			return
		}
		for i := range rdists {
			c.cmpScalar("result", fmt.Sprintf("dtw-batch order invariance [b=%d,i=%d]", b, i),
				dists[b-1-i], rdists[i])
		}
	}
	// Symmetry survives batching: a batched solve of the swapped pair
	// agrees with the sequential solve of the original.
	swapped, _, err := dtw.SweepBatch([]dtw.Pair{{X: y, Y: x}}, dtw.AbsDist)
	if err != nil {
		c.addf("result", "dtw-batch-swapped", "%v", err)
		return
	}
	seq, err := dtw.Sequential(x, y, dtw.AbsDist)
	if err == nil {
		c.cmpScalar("result", "dtw-batch(y,x) vs dtw-sequential(x,y) symmetry", seq, swapped[0])
	}
}

// checkChainBatch cross-checks the shared diagonal sweep
// (matchain.WavefrontBatch) against the sequential DP: costs AND
// parenthesizations must match bitwise per instance at every batch
// width, independent of instance order.
func (c *checker) checkChainBatch() {
	dims := c.inst.File.Dims
	// Same-length variants: rotating the dimension vector preserves the
	// chain length n the kernel buckets on while changing every cost.
	variant := func(i int) []int {
		v := make([]int, len(dims))
		for j := range dims {
			v[j] = dims[(j+i)%len(dims)]
		}
		return v
	}
	for _, b := range batchSizes {
		dimsList := make([][]int, b)
		wantCost := make([]float64, b)
		wantParen := make([]string, b)
		for i := range dimsList {
			dimsList[i] = variant(i)
			tab, err := matchain.DP(dimsList[i])
			if err != nil {
				c.addf("result", "chain-batch-baseline", "b=%d i=%d: %v", b, i, err)
				return
			}
			wantCost[i] = tab.OptimalCost()
			wantParen[i] = tab.Parenthesization()
		}
		tabs, _, err := matchain.WavefrontBatch(dimsList)
		if err != nil {
			c.addf("result", "chain-batch", "b=%d: %v", b, err)
			return
		}
		for i, tab := range tabs {
			c.cmpScalar("result", fmt.Sprintf("chain-dp vs chain-batch[b=%d,i=%d]", b, i),
				wantCost[i], tab.OptimalCost())
			c.combos++
			if got := tab.Parenthesization(); got != wantParen[i] {
				c.addf("result", fmt.Sprintf("chain-dp vs chain-batch[b=%d,i=%d]", b, i),
					"parenthesization %q != %q", got, wantParen[i])
			}
		}
		rev := make([][]int, b)
		for i := range rev {
			rev[i] = dimsList[b-1-i]
		}
		rtabs, _, err := matchain.WavefrontBatch(rev)
		if err != nil {
			c.addf("result", "chain-batch-reversed", "b=%d: %v", b, err)
			return
		}
		for i := range rtabs {
			c.cmpScalar("result", fmt.Sprintf("chain-batch order invariance [b=%d,i=%d]", b, i),
				tabs[b-1-i].OptimalCost(), rtabs[i].OptimalCost())
		}
	}
}

// checkNonserialBatch cross-checks lockstep batched elimination
// (nonserial.EliminateBatch) against per-instance Eliminate: bitwise
// costs, the exact eq-(40) step total, and order invariance.
func (c *checker) checkNonserialBatch(ch *nonserial.Chain3) {
	// Same-profile variants: shift every domain value by the instance
	// index — domain SIZES (the bucket shape) are untouched, the cost
	// surface moves.
	variant := func(i int) *nonserial.Chain3 {
		doms := make([][]float64, len(ch.Domains))
		for d, vals := range ch.Domains {
			doms[d] = make([]float64, len(vals))
			for j, v := range vals {
				doms[d][j] = v + float64(i)
			}
		}
		return &nonserial.Chain3{Domains: doms, G: ch.G}
	}
	for _, b := range batchSizes {
		chains := make([]*nonserial.Chain3, b)
		want := make([]float64, b)
		wantSteps := 0
		for i := range chains {
			chains[i] = variant(i)
			seq, steps, err := chains[i].Eliminate()
			if err != nil {
				c.addf("result", "ns-batch-baseline", "b=%d i=%d: %v", b, i, err)
				return
			}
			want[i] = seq
			wantSteps += steps
		}
		costs, steps, err := nonserial.EliminateBatch(chains)
		if err != nil {
			c.addf("result", "ns-batch", "b=%d: %v", b, err)
			return
		}
		for i := range costs {
			c.cmpScalar("result", fmt.Sprintf("ns-eliminate vs ns-batch[b=%d,i=%d]", b, i), want[i], costs[i])
		}
		c.cmpInt("invariant", fmt.Sprintf("ns-batch[b=%d] steps vs sum of eq(40)", b), steps, wantSteps)
		rev := make([]*nonserial.Chain3, b)
		for i := range rev {
			rev[i] = chains[b-1-i]
		}
		rcosts, _, err := nonserial.EliminateBatch(rev)
		if err != nil {
			c.addf("result", "ns-batch-reversed", "b=%d: %v", b, err)
			return
		}
		for i := range rcosts {
			c.cmpScalar("result", fmt.Sprintf("ns-batch order invariance [b=%d,i=%d]", b, i),
				costs[b-1-i], rcosts[i])
		}
	}
}
