// Package trace records and renders cycle-by-cycle activity of a systolic
// array run: the waveform view a hardware designer would use to check the
// data movement of Figures 3-5. A Recorder plugs into the lock-step
// engine's trace callback; Render produces an ASCII timing diagram with
// one row per watched wire and one column per cycle.
package trace

import (
	"fmt"
	"math"
	"strings"

	"systolicdp/internal/systolic"
)

// Recorder accumulates per-cycle wire snapshots.
type Recorder struct {
	names   []string
	history [][]systolic.Token // [cycle][wire]
}

// NewRecorder creates a recorder; names labels the wires (index-aligned
// with the array's wire list; missing names are auto-generated).
func NewRecorder(names []string) *Recorder {
	return &Recorder{names: names}
}

// Callback returns the function to pass as the lock-step runner's trace
// argument.
func (r *Recorder) Callback() func(cycle int, wires []systolic.Token) {
	return func(cycle int, wires []systolic.Token) {
		snap := make([]systolic.Token, len(wires))
		copy(snap, wires)
		r.history = append(r.history, snap)
	}
}

// Cycles returns the number of recorded cycles.
func (r *Recorder) Cycles() int { return len(r.history) }

// At returns the token on wire w at cycle t.
func (r *Recorder) At(t, w int) (systolic.Token, error) {
	if t < 0 || t >= len(r.history) {
		return systolic.Token{}, fmt.Errorf("trace: cycle %d out of range [0,%d)", t, len(r.history))
	}
	if w < 0 || w >= len(r.history[t]) {
		return systolic.Token{}, fmt.Errorf("trace: wire %d out of range [0,%d)", w, len(r.history[t]))
	}
	return r.history[t][w], nil
}

// name returns the label for wire w.
func (r *Recorder) name(w int) string {
	if w >= 0 && w < len(r.names) && r.names[w] != "" {
		return r.names[w]
	}
	return fmt.Sprintf("w%d", w)
}

// cell renders one token as a fixed-width cell.
func cell(t systolic.Token, width int) string {
	if !t.Valid {
		return strings.Repeat(".", width)
	}
	var s string
	switch {
	case math.IsInf(t.V, 1):
		s = "+oo"
	case math.IsInf(t.V, -1):
		s = "-oo"
	default:
		s = fmt.Sprintf("%.3g", t.V)
	}
	if len(s) > width {
		s = s[:width]
	}
	return fmt.Sprintf("%*s", width, s)
}

// Render draws the timing diagram for the chosen wires (nil means all)
// over cycles [from, to). Each cell shows the wire's token value, with
// dots for pipeline bubbles.
func (r *Recorder) Render(wires []int, from, to int) string {
	if len(r.history) == 0 {
		return "trace: empty\n"
	}
	if from < 0 {
		from = 0
	}
	if to <= 0 || to > len(r.history) {
		to = len(r.history)
	}
	if wires == nil {
		wires = make([]int, len(r.history[0]))
		for i := range wires {
			wires[i] = i
		}
	}
	const width = 6
	nameW := 0
	for _, w := range wires {
		if l := len(r.name(w)); l > nameW {
			nameW = l
		}
	}
	var b strings.Builder
	// Header: cycle numbers.
	fmt.Fprintf(&b, "%-*s |", nameW, "cycle")
	for t := from; t < to; t++ {
		fmt.Fprintf(&b, "%*d", width+1, t)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s-+%s\n", strings.Repeat("-", nameW), strings.Repeat("-", (to-from)*(width+1)))
	for _, w := range wires {
		fmt.Fprintf(&b, "%-*s |", nameW, r.name(w))
		if w < 0 || w >= len(r.history[0]) {
			// An out-of-range wire index (caller-supplied watch list) is a
			// render error, not a panic: At performs the same check.
			fmt.Fprintf(&b, " <wire %d out of range [0,%d)>\n", w, len(r.history[0]))
			continue
		}
		for t := from; t < to; t++ {
			b.WriteByte(' ')
			b.WriteString(cell(r.history[t][w], width))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ValidCounts returns the number of valid tokens latched at each recorded
// cycle: the data series behind the Perfetto valid_tokens counter track.
func (r *Recorder) ValidCounts() []int {
	counts := make([]int, len(r.history))
	for t, snap := range r.history {
		for _, tok := range snap {
			if tok.Valid {
				counts[t]++
			}
		}
	}
	return counts
}

// BusyProfile renders per-PE busy counts as a bar chart: the utilization
// picture behind the paper's PU tables.
func BusyProfile(busy []int, cycles int) string {
	var b strings.Builder
	maxBar := 40
	for i, v := range busy {
		bar := 0
		if cycles > 0 {
			bar = v * maxBar / cycles
		}
		fmt.Fprintf(&b, "P%-3d %4d/%-4d |%s%s|\n", i+1, v, cycles,
			strings.Repeat("#", bar), strings.Repeat(" ", maxBar-bar))
	}
	return b.String()
}
