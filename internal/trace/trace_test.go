package trace

import (
	"math"
	"strings"
	"testing"

	"systolicdp/internal/systolic"
)

// passPE forwards its input.
type passPE struct{}

func (passPE) NumIn() int  { return 1 }
func (passPE) NumOut() int { return 1 }
func (passPE) Step(in []systolic.Token) ([]systolic.Token, bool) {
	return []systolic.Token{in[0]}, in[0].Valid
}
func (passPE) Reset() {}

func buildChain(n int, feed func(int) systolic.Token) *systolic.Array {
	a := &systolic.Array{}
	for i := 0; i < n; i++ {
		a.PEs = append(a.PEs, passPE{})
	}
	a.Wires = append(a.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0}, Source: feed,
	})
	for i := 0; i+1 < n; i++ {
		a.Wires = append(a.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: i, Port: 0},
			To:   systolic.Endpoint{PE: i + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	a.Wires = append(a.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: n - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	return a
}

func TestRecorderCapturesPipeline(t *testing.T) {
	a := buildChain(3, func(c int) systolic.Token {
		if c < 2 {
			return systolic.Token{V: float64(c + 1), Valid: true}
		}
		return systolic.Bubble()
	})
	rec := NewRecorder([]string{"in", "p0->p1", "p1->p2", "out"})
	if _, err := a.RunLockstep(6, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	if rec.Cycles() != 6 {
		t.Fatalf("recorded %d cycles, want 6", rec.Cycles())
	}
	// Value 1 fed at cycle 0 must appear on the sink wire (index 3) at
	// cycle 2 (two internal registers).
	tok, err := rec.At(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.Valid || tok.V != 1 {
		t.Errorf("sink at cycle 2 = %+v, want value 1", tok)
	}
	// And be a bubble before that.
	tok, err = rec.At(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Valid {
		t.Errorf("sink at cycle 1 should be a bubble, got %+v", tok)
	}
}

func TestAtErrors(t *testing.T) {
	rec := NewRecorder(nil)
	if _, err := rec.At(0, 0); err == nil {
		t.Error("empty recorder accepted At")
	}
	a := buildChain(1, func(int) systolic.Token { return systolic.Bubble() })
	if _, err := a.RunLockstep(2, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.At(0, 99); err == nil {
		t.Error("out-of-range wire accepted")
	}
	if _, err := rec.At(9, 0); err == nil {
		t.Error("out-of-range cycle accepted")
	}
}

func TestRenderShape(t *testing.T) {
	a := buildChain(2, func(c int) systolic.Token {
		return systolic.Token{V: float64(c), Valid: true}
	})
	rec := NewRecorder([]string{"in"})
	if _, err := a.RunLockstep(4, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	out := rec.Render(nil, 0, 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + separator + one row per wire (3 wires).
	if len(lines) != 2+3 {
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "in") {
		t.Error("wire name missing")
	}
	if !strings.Contains(out, "w1") {
		t.Error("auto-generated wire name missing")
	}
	// Bubbles render as dots.
	if !strings.Contains(out, "......") {
		t.Error("bubble cells missing")
	}
	// Sub-range rendering.
	partial := rec.Render([]int{0}, 1, 3)
	if strings.Count(strings.Split(partial, "\n")[0], " ") < 2 {
		t.Errorf("partial render malformed:\n%s", partial)
	}
}

func TestRenderInfinities(t *testing.T) {
	a := buildChain(1, func(c int) systolic.Token {
		return systolic.Token{V: math.Inf(1), Valid: true}
	})
	rec := NewRecorder(nil)
	if _, err := a.RunLockstep(2, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	if out := rec.Render(nil, 0, 0); !strings.Contains(out, "+oo") {
		t.Errorf("infinity not rendered:\n%s", out)
	}
}

func TestRenderOutOfRangeWire(t *testing.T) {
	a := buildChain(2, func(c int) systolic.Token {
		return systolic.Token{V: float64(c), Valid: true}
	})
	rec := NewRecorder(nil)
	if _, err := a.RunLockstep(3, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	// Out-of-range indices in the watch list must render an error line,
	// not panic (they used to index history unchecked).
	out := rec.Render([]int{0, 99, -1}, 0, 0)
	if !strings.Contains(out, "wire 99 out of range") || !strings.Contains(out, "wire -1 out of range") {
		t.Errorf("out-of-range wires not reported:\n%s", out)
	}
	if !strings.Contains(out, "w0") {
		t.Errorf("in-range wire missing from render:\n%s", out)
	}
}

func TestValidCounts(t *testing.T) {
	a := buildChain(2, func(c int) systolic.Token {
		if c == 0 {
			return systolic.Token{V: 1, Valid: true}
		}
		return systolic.Bubble()
	})
	rec := NewRecorder(nil)
	if _, err := a.RunLockstep(4, rec.Callback()); err != nil {
		t.Fatal(err)
	}
	// Snapshot at cycle 0: the combinational source wire holds the token
	// and PE0's output is freshly latched on the pipe wire (2 valid).
	// Cycle 1: only the sink wire carries it (1). Then the array drains.
	got := rec.ValidCounts()
	want := []int{2, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("valid counts %v, want %v", got, want)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	rec := NewRecorder(nil)
	if out := rec.Render(nil, 0, 0); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}

func TestBusyProfile(t *testing.T) {
	out := BusyProfile([]int{10, 5, 0}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("profile lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 40)) {
		t.Error("full bar missing for fully busy PE")
	}
	if strings.Contains(lines[2], "#") {
		t.Error("idle PE shows a bar")
	}
}
