package trace

import (
	"io"

	"systolicdp/internal/obs"
)

// ExportPerfetto writes a recorded run as Chrome trace-event / Perfetto
// JSON, loadable directly in ui.perfetto.dev: one track per PE with
// busy/idle spans, counter tracks for busy-PE count, utilization and (for
// lock-step runs) valid tokens in flight, and the array metadata in the
// trace header. The heavy lifting lives in internal/obs; this is the
// waveform package's JSON counterpart to Render's ASCII diagram.
func ExportPerfetto(w io.Writer, rec *obs.CycleRecorder, meta obs.ArrayMeta) error {
	return rec.Trace(meta).Write(w)
}
