// Package semiring implements the closed semirings over which the paper's
// dynamic-programming recurrences are expressed.
//
// Section 3.1 of Wah & Li defines matrix multiplication over the closed
// semiring (R, MIN, +, +inf, 0), in which "MIN" plays the role of addition
// and "+" plays the role of multiplication of conventional linear algebra.
// Solving a monadic-serial DP problem is then exactly a string of matrix
// multiplications over that semiring (equations (7)-(8) of the paper).
//
// The package provides the (MIN,+) tropical semiring used throughout the
// paper, together with (MAX,+), the ordinary (+,x) semiring, and the
// Boolean (OR,AND) semiring used for reachability; all satisfy the
// monotonicity requirement of Bellman's Principle of Optimality.
package semiring

import (
	"fmt"
	"math"
)

// Semiring describes a closed semiring (S, Add, Mul, Zero, One) over
// float64-encoded elements. Add must be commutative, associative and
// idempotent-or-commutative-monoid; Mul must distribute over Add; Zero is
// the identity of Add and annihilator of Mul; One is the identity of Mul.
//
// Elements are carried as float64 so that all semirings share storage; the
// Boolean semiring encodes false/true as 0/1.
type Semiring interface {
	// Add combines two alternatives (MIN for shortest path).
	Add(a, b float64) float64
	// Mul extends a partial solution (+ for path-cost accumulation).
	Mul(a, b float64) float64
	// Zero is the Add identity and Mul annihilator (+inf for (MIN,+)).
	Zero() float64
	// One is the Mul identity (0 for (MIN,+)).
	One() float64
	// Name reports a short human-readable name, e.g. "min-plus".
	Name() string
}

// Comparative is implemented by semirings whose Add operation selects one
// of its arguments (MIN or MAX). Argmin/argmax-style path reconstruction is
// only meaningful for such semirings.
type Comparative interface {
	Semiring
	// Better reports whether a is strictly preferable to b under Add
	// (a < b for MIN-based semirings, a > b for MAX-based ones).
	Better(a, b float64) bool
}

// MinPlus is the tropical (MIN,+) semiring of the paper: Add=min, Mul=+,
// Zero=+inf, One=0. It solves minimum-cost path problems.
type MinPlus struct{}

// Add returns min(a, b).
func (MinPlus) Add(a, b float64) float64 { return math.Min(a, b) }

// Mul returns a + b, with the convention that anything plus +inf is +inf.
func (MinPlus) Mul(a, b float64) float64 { return a + b }

// Zero returns +inf, the identity of min.
func (MinPlus) Zero() float64 { return math.Inf(1) }

// One returns 0, the identity of +.
func (MinPlus) One() float64 { return 0 }

// Name returns "min-plus".
func (MinPlus) Name() string { return "min-plus" }

// Better reports a < b.
func (MinPlus) Better(a, b float64) bool { return a < b }

// MaxPlus is the (MAX,+) semiring: Add=max, Mul=+, Zero=-inf, One=0. It
// solves maximum-reward path problems (the paper's cost functions may
// maximise or minimise; see Section 2).
type MaxPlus struct{}

// Add returns max(a, b).
func (MaxPlus) Add(a, b float64) float64 { return math.Max(a, b) }

// Mul returns a + b.
func (MaxPlus) Mul(a, b float64) float64 { return a + b }

// Zero returns -inf, the identity of max.
func (MaxPlus) Zero() float64 { return math.Inf(-1) }

// One returns 0.
func (MaxPlus) One() float64 { return 0 }

// Name returns "max-plus".
func (MaxPlus) Name() string { return "max-plus" }

// Better reports a > b.
func (MaxPlus) Better(a, b float64) bool { return a > b }

// PlusTimes is the ordinary (+,x) semiring of linear algebra, used to
// cross-check the systolic matrix pipelines against conventional products.
type PlusTimes struct{}

// Add returns a + b.
func (PlusTimes) Add(a, b float64) float64 { return a + b }

// Mul returns a * b.
func (PlusTimes) Mul(a, b float64) float64 { return a * b }

// Zero returns 0.
func (PlusTimes) Zero() float64 { return 0 }

// One returns 1.
func (PlusTimes) One() float64 { return 1 }

// Name returns "plus-times".
func (PlusTimes) Name() string { return "plus-times" }

// BoolOrAnd is the Boolean semiring (OR, AND) with elements 0 and 1,
// computing reachability in multistage graphs.
type BoolOrAnd struct{}

// Add returns a OR b on 0/1-encoded booleans.
func (BoolOrAnd) Add(a, b float64) float64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// Mul returns a AND b on 0/1-encoded booleans.
func (BoolOrAnd) Mul(a, b float64) float64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

// Zero returns 0 (false).
func (BoolOrAnd) Zero() float64 { return 0 }

// One returns 1 (true).
func (BoolOrAnd) One() float64 { return 1 }

// Name returns "bool-or-and".
func (BoolOrAnd) Name() string { return "bool-or-and" }

// ByName returns the semiring with the given Name.
func ByName(name string) (Semiring, error) {
	switch name {
	case "min-plus":
		return MinPlus{}, nil
	case "max-plus":
		return MaxPlus{}, nil
	case "plus-times":
		return PlusTimes{}, nil
	case "bool-or-and":
		return BoolOrAnd{}, nil
	default:
		return nil, fmt.Errorf("semiring: unknown semiring %q", name)
	}
}

// All returns every semiring provided by the package, for property tests.
func All() []Semiring {
	return []Semiring{MinPlus{}, MaxPlus{}, PlusTimes{}, BoolOrAnd{}}
}

// Fold reduces xs with s.Add starting from s.Zero(); for (MIN,+) this is
// the minimum of xs. An empty slice yields s.Zero().
func Fold(s Semiring, xs []float64) float64 {
	acc := s.Zero()
	for _, x := range xs {
		acc = s.Add(acc, x)
	}
	return acc
}

// Dot computes the semiring inner product of equal-length vectors a and b:
// Add-fold of elementwise Mul. For (MIN,+) this is the paper's equation (7)
// min_j(a_j + b_j). It panics if the lengths differ.
func Dot(s Semiring, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("semiring: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	acc := s.Zero()
	for i := range a {
		acc = s.Add(acc, s.Mul(a[i], b[i]))
	}
	return acc
}

// ArgDot computes Dot and additionally returns the index attaining the
// folded value under a Comparative semiring (ties resolve to the smallest
// index). It returns index -1 for empty vectors.
func ArgDot(s Comparative, a, b []float64) (val float64, arg int) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("semiring: ArgDot length mismatch %d vs %d", len(a), len(b)))
	}
	val = s.Zero()
	arg = -1
	for i := range a {
		t := s.Mul(a[i], b[i])
		if arg == -1 || s.Better(t, val) {
			val, arg = t, i
		}
	}
	return val, arg
}
