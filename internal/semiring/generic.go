package semiring

// Monomorphizable mirrors of Fold and Dot. The concrete semirings
// (MinPlus, MaxPlus, PlusTimes, BoolOrAnd) are zero-size value types, so
// instantiating these generics at a concrete semiring lets the compiler
// devirtualize and inline the per-element Add/Mul calls that the
// interface-typed Fold/Dot pay on every iteration. The loop bodies are
// copies of Fold and Dot, so results are bitwise identical.

import "fmt"

// FoldOps is Fold with the semiring monomorphized.
func FoldOps[S Semiring](s S, xs []float64) float64 {
	acc := s.Zero()
	for _, x := range xs {
		acc = s.Add(acc, x)
	}
	return acc
}

// DotOps is Dot with the semiring monomorphized.
func DotOps[S Semiring](s S, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("semiring: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	acc := s.Zero()
	for i := range a {
		acc = s.Add(acc, s.Mul(a[i], b[i]))
	}
	return acc
}
