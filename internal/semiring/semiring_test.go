package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinPlusBasics(t *testing.T) {
	s := MinPlus{}
	if got := s.Add(3, 5); got != 3 {
		t.Errorf("Add(3,5) = %v, want 3", got)
	}
	if got := s.Mul(3, 5); got != 8 {
		t.Errorf("Mul(3,5) = %v, want 8", got)
	}
	if !math.IsInf(s.Zero(), 1) {
		t.Errorf("Zero() = %v, want +inf", s.Zero())
	}
	if s.One() != 0 {
		t.Errorf("One() = %v, want 0", s.One())
	}
	if !s.Better(1, 2) || s.Better(2, 1) {
		t.Error("Better must order by <")
	}
}

func TestMaxPlusBasics(t *testing.T) {
	s := MaxPlus{}
	if got := s.Add(3, 5); got != 5 {
		t.Errorf("Add(3,5) = %v, want 5", got)
	}
	if !math.IsInf(s.Zero(), -1) {
		t.Errorf("Zero() = %v, want -inf", s.Zero())
	}
	if !s.Better(2, 1) || s.Better(1, 2) {
		t.Error("Better must order by >")
	}
}

func TestBoolOrAnd(t *testing.T) {
	s := BoolOrAnd{}
	cases := []struct{ a, b, or, and float64 }{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := s.Add(c.a, c.b); got != c.or {
			t.Errorf("Add(%v,%v) = %v, want %v", c.a, c.b, got, c.or)
		}
		if got := s.Mul(c.a, c.b); got != c.and {
			t.Errorf("Mul(%v,%v) = %v, want %v", c.a, c.b, got, c.and)
		}
	}
}

func TestByName(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Errorf("ByName(%q).Name() = %q", s.Name(), got.Name())
		}
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName(no-such) should fail")
	}
}

// clampFinite maps arbitrary floats into a well-behaved range so that
// property tests do not trip over NaN/overflow artifacts irrelevant to the
// algebra under test.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestPropertyAddCommutativeAssociative(t *testing.T) {
	for _, s := range []Semiring{MinPlus{}, MaxPlus{}, PlusTimes{}} {
		s := s
		comm := func(a, b float64) bool {
			a, b = clampFinite(a), clampFinite(b)
			return s.Add(a, b) == s.Add(b, a)
		}
		if err := quick.Check(comm, nil); err != nil {
			t.Errorf("%s: Add not commutative: %v", s.Name(), err)
		}
		assoc := func(a, b, c float64) bool {
			a, b, c = clampFinite(a), clampFinite(b), clampFinite(c)
			l := s.Add(s.Add(a, b), c)
			r := s.Add(a, s.Add(b, c))
			return l == r || math.Abs(l-r) < 1e-9
		}
		if err := quick.Check(assoc, nil); err != nil {
			t.Errorf("%s: Add not associative: %v", s.Name(), err)
		}
	}
}

func TestPropertyIdentities(t *testing.T) {
	for _, s := range []Semiring{MinPlus{}, MaxPlus{}, PlusTimes{}} {
		s := s
		ident := func(a float64) bool {
			a = clampFinite(a)
			return s.Add(a, s.Zero()) == a && s.Mul(a, s.One()) == a
		}
		if err := quick.Check(ident, nil); err != nil {
			t.Errorf("%s: identity laws fail: %v", s.Name(), err)
		}
	}
}

func TestPropertyZeroAnnihilates(t *testing.T) {
	// For (MIN,+): a + inf = inf. For (+,x): a * 0 = 0.
	for _, s := range []Semiring{MinPlus{}, MaxPlus{}, PlusTimes{}} {
		s := s
		ann := func(a float64) bool {
			a = clampFinite(a)
			return s.Mul(a, s.Zero()) == s.Zero()
		}
		if err := quick.Check(ann, nil); err != nil {
			t.Errorf("%s: Zero does not annihilate: %v", s.Name(), err)
		}
	}
}

func TestPropertyMulDistributesOverAdd(t *testing.T) {
	// (MIN,+): c + min(a,b) == min(c+a, c+b).
	for _, s := range []Semiring{MinPlus{}, MaxPlus{}} {
		s := s
		dist := func(a, b, c float64) bool {
			a, b, c = clampFinite(a), clampFinite(b), clampFinite(c)
			return s.Mul(c, s.Add(a, b)) == s.Add(s.Mul(c, a), s.Mul(c, b))
		}
		if err := quick.Check(dist, nil); err != nil {
			t.Errorf("%s: Mul does not distribute: %v", s.Name(), err)
		}
	}
}

func TestFold(t *testing.T) {
	s := MinPlus{}
	if got := Fold(s, nil); !math.IsInf(got, 1) {
		t.Errorf("Fold(empty) = %v, want +inf", got)
	}
	if got := Fold(s, []float64{4, 2, 9}); got != 2 {
		t.Errorf("Fold = %v, want 2", got)
	}
}

func TestDotEquation7(t *testing.T) {
	// Equation (7) of the paper: f(C1) = min{c11+d11, c12+d21, c13+d31}.
	s := MinPlus{}
	c := []float64{5, 2, 7}
	d := []float64{1, 4, 0}
	want := math.Min(5+1, math.Min(2+4, 7+0)) // = 6
	if got := Dot(s, c, d); got != want {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths must panic")
		}
	}()
	Dot(MinPlus{}, []float64{1}, []float64{1, 2})
}

func TestArgDot(t *testing.T) {
	s := MinPlus{}
	val, arg := ArgDot(s, []float64{5, 2, 7}, []float64{1, 3, 0}) // 6, 5, 7
	if val != 5 || arg != 1 {
		t.Errorf("ArgDot = (%v,%d), want (5,1)", val, arg)
	}
	val, arg = ArgDot(s, nil, nil)
	if arg != -1 || !math.IsInf(val, 1) {
		t.Errorf("ArgDot(empty) = (%v,%d), want (+inf,-1)", val, arg)
	}
	// Ties resolve to the smallest index.
	_, arg = ArgDot(s, []float64{3, 3}, []float64{0, 0})
	if arg != 0 {
		t.Errorf("ArgDot tie arg = %d, want 0", arg)
	}
}

func TestPropertyDotMatchesFoldOfMuls(t *testing.T) {
	s := MinPlus{}
	f := func(raw []float64) bool {
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, x := range raw {
			a[i] = clampFinite(x)
			b[i] = clampFinite(x * 3)
		}
		muls := make([]float64, len(a))
		for i := range a {
			muls[i] = s.Mul(a[i], b[i])
		}
		return Dot(s, a, b) == Fold(s, muls)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
