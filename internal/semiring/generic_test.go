package semiring

import (
	"math/rand"
	"testing"
)

// The monomorphized folds must be bitwise identical to the
// interface-typed originals for every semiring.
func TestOpsBitwiseVsInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	xs := make([]float64, 33)
	ys := make([]float64, 33)
	for i := range xs {
		xs[i] = rng.Float64()*20 - 10
		ys[i] = rng.Float64()*20 - 10
	}
	check := func(s Semiring, fold, dot float64) {
		if want := Fold(s, xs); fold != want {
			t.Fatalf("%s: FoldOps %v != Fold %v", s.Name(), fold, want)
		}
		if want := Dot(s, xs, ys); dot != want {
			t.Fatalf("%s: DotOps %v != Dot %v", s.Name(), dot, want)
		}
	}
	check(MinPlus{}, FoldOps(MinPlus{}, xs), DotOps(MinPlus{}, xs, ys))
	check(MaxPlus{}, FoldOps(MaxPlus{}, xs), DotOps(MaxPlus{}, xs, ys))
	check(PlusTimes{}, FoldOps(PlusTimes{}, xs), DotOps(PlusTimes{}, xs, ys))
	check(BoolOrAnd{}, FoldOps(BoolOrAnd{}, xs), DotOps(BoolOrAnd{}, xs, ys))
	// Empty and mismatched inputs behave like the originals.
	if FoldOps(MinPlus{}, nil) != Fold(MinPlus{}, nil) {
		t.Fatal("empty FoldOps differs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DotOps length mismatch did not panic")
		}
	}()
	DotOps(MinPlus{}, xs, ys[:5])
}
