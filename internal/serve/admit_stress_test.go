package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chainSpec builds a distinct chain-ordering spec; salt perturbs one
// dimension so specs hash differently (no cache/singleflight coalescing).
func chainSpec(salt int) string {
	return fmt.Sprintf(`{"problem":"chain","dims":[30,35,15,%d,10,20,25]}`, 5+salt%20+1)
}

// Shed-under-ramp, race-clean and leak-free: with admission on and the
// chain rate pinned infeasibly slow, a concurrent ramp of distinct
// requests — half doomed chains, half feasible DTWs — must all return
// (429 for the doomed, 200 for the feasible), leave zero backlog, and
// leak no goroutines after Close.
func TestStressAdmissionShedUnderRamp(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{BatchWindow: -1, Timeout: time.Second, AdmitEnabled: true})
	ts := httptest.NewServer(s.Handler())
	// Chains route through the batch kernel, so their admission rate key
	// is the execution path's kind, not the pool kind.
	s.admit.setRate("chain-batch", 1) // ~57 units -> minutes of predicted work

	const ramp = 40
	var shed, solved, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < ramp; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body string
			if i%2 == 0 {
				body = chainSpec(i)
			} else {
				body = fmt.Sprintf(`{"problem":"dtw","x":[0,1,2,%d],"y":[0,1,1,2,3]}`, i)
			}
			status, _, _, _ := postSpec(t, ts.URL, body)
			switch status {
			case http.StatusTooManyRequests:
				shed.Add(1)
			case http.StatusOK:
				solved.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ramp requests stuck")
	}

	if got := shed.Load(); got != ramp/2 {
		t.Errorf("shed %d requests, want %d (every doomed chain)", got, ramp/2)
	}
	if got := solved.Load(); got != ramp/2 {
		t.Errorf("solved %d requests, want %d (every feasible dtw)", got, ramp/2)
	}
	if got := other.Load(); got != 0 {
		t.Errorf("%d requests got neither 200 nor 429", got)
	}
	if got := s.admit.BacklogSeconds(); got != 0 {
		t.Errorf("backlog after ramp = %v, want 0", got)
	}
	if got := s.metrics.AdmitShed.Value(); got != int64(ramp/2) {
		t.Errorf("dpserve_admit_shed_total = %d, want %d", got, ramp/2)
	}

	ts.Close()
	s.Close()
	if n, ok := goroutinesSettleTo(baseline, 5*time.Second); !ok {
		buf := make([]byte, 1<<16)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked after shed ramp: %d > baseline %d\n%s", n, baseline, buf)
	}
}

// Deadline propagation into the batcher: a Design-1 dispatch whose
// context deadline expires during the collection window must return
// DeadlineExceeded, release both its admission reservation and its
// batcher queue slot, and be counted abandoned at the window flush.
func TestAdmissionDeadlineReachesBatcher(t *testing.T) {
	s := New(Config{
		BatchWindow:  40 * time.Millisecond,
		BatchMax:     64, // never size-triggers: only the window flush runs
		AdmitEnabled: true,
	})
	defer s.Close()

	p := specProblem(t, graphSpec(0))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := s.dispatch(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dispatch err = %v, want DeadlineExceeded", err)
	}
	// The submitter is back before the window flush: its admission
	// reservation and batcher slot must already be free.
	if got := s.admit.BacklogSeconds(); got != 0 {
		t.Errorf("backlog right after expired dispatch = %v, want 0", got)
	}
	s.batcher.mu.Lock()
	inflight := s.batcher.inflight
	s.batcher.mu.Unlock()
	if inflight != 0 {
		t.Errorf("batcher inflight right after expired dispatch = %d, want 0", inflight)
	}
	// The window flush sees the dead item and abandons it.
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.BatchAbandoned.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("window flush never counted the expired item abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.metrics.Batches.Value(); got != 0 {
		t.Errorf("abandoned-only flush spun the array: batches = %d, want 0", got)
	}
}

// Close during shedding: concurrent submitters racing the server's Close
// — some shed by admission, some rejected by the drain, some solving —
// must all return promptly with no race and no leaked goroutine.
func TestStressCloseDuringShedding(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for round := 0; round < 5; round++ {
		s := New(Config{BatchWindow: -1, Timeout: time.Second, AdmitEnabled: true})
		ts := httptest.NewServer(s.Handler())
		s.admit.setRate("chain-batch", 1)

		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				body := chainSpec(i)
				if i%2 == 1 {
					body = fmt.Sprintf(`{"problem":"dtw","x":[0,1,%d],"y":[0,1,2]}`, i)
				}
				// Raw client: the server may die mid-exchange, which is the
				// point — submitters must not hang or trip the race detector.
				resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}(i)
		}
		close(start)
		s.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("submitters stuck racing Close")
		}
		ts.Close()
	}

	if n, ok := goroutinesSettleTo(baseline, 5*time.Second); !ok {
		buf := make([]byte, 1<<16)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked racing Close: %d > baseline %d\n%s", n, baseline, buf)
	}
}
