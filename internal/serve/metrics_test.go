package serve

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, x := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum %v, want 556.5", h.Sum())
	}
	var sb strings.Builder
	h.Write(&sb, "x")
	out := sb.String()
	// Cumulative: <=1 holds {0.5, 1}, <=10 adds 5, <=100 adds 50, +Inf all.
	for _, want := range []string{
		`x_bucket{le="1"} 2`,
		`x_bucket{le="10"} 3`,
		`x_bucket{le="100"} 4`,
		`x_bucket{le="+Inf"} 5`,
		"x_sum 556.5",
		"x_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsRenderIsDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Request("graph")
	m.Request("chain")
	m.Request("graph")
	var a, b strings.Builder
	m.Write(&a)
	m.Write(&b)
	if a.String() != b.String() {
		t.Error("metrics render not deterministic")
	}
	if !strings.Contains(a.String(), `dpserve_requests_total{problem="graph"} 2`) {
		t.Errorf("bad request counts:\n%s", a.String())
	}
	if m.Requests("graph") != 2 || m.Requests("chain") != 1 || m.Requests("dtw") != 0 {
		t.Error("Requests getter mismatch")
	}
}
