package serve

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/check"
	"systolicdp/internal/spec"
)

func getStatusz(t *testing.T, url string) Statusz {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status %d", resp.StatusCode)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	return st
}

// /statusz must expose the router-facing view: worker count, queue
// bounds, admission state with calibrated rates, and cache counters that
// move with traffic.
func TestStatuszSchema(t *testing.T) {
	s := New(Config{Workers: 3, QueueSize: 17, CacheSize: 64, AdmitEnabled: true, AdmitHeadroom: 1.5})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := getStatusz(t, ts.URL)
	if st.Draining {
		t.Error("fresh server reports draining")
	}
	if st.Workers != 3 || st.QueueCap != 17 {
		t.Errorf("workers/queue_cap = %d/%d, want 3/17", st.Workers, st.QueueCap)
	}
	if !st.Admit.Enabled || st.Admit.Headroom != 1.5 {
		t.Errorf("admit state %+v", st.Admit)
	}
	if st.Cache.Capacity != 64 {
		t.Errorf("cache capacity %d, want 64", st.Cache.Capacity)
	}

	// One solved request calibrates a rate and fills the cache; a repeat
	// hits it. Both must be visible in the next snapshot.
	body := `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`
	if code, _, _, _ := postSpec(t, ts.URL, body); code != http.StatusOK {
		t.Fatalf("solve status %d", code)
	}
	if code, _, _, hdr := postSpec(t, ts.URL, body); code != http.StatusOK || hdr != "hit" {
		t.Fatalf("repeat solve status %d cache %q", code, hdr)
	}
	st = getStatusz(t, ts.URL)
	if st.Cache.Len != 1 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache counters %+v, want len=1 hits=1 misses=1", st.Cache)
	}
	// Chains execute through the batch kernel, so the calibrated rate
	// lives under the execution path's kind.
	if st.Admit.Rates["chain-batch"] <= 0 {
		t.Errorf("chain-batch rate uncalibrated after a solve: %v", st.Admit.Rates)
	}
}

// Statusz keeps answering (200, draining=true) after drain begins — the
// router distinguishes a draining replica from a dead one by body, not
// by status code.
func TestStatuszDuringDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.BeginDrain()
	if st := getStatusz(t, ts.URL); !st.Draining {
		t.Error("statusz does not report draining after BeginDrain")
	}
}

// Regression test: /healthz must flip to 503 the moment drain begins,
// not when the process dies. Before BeginDrain existed, the shutdown
// sequence had no way to signal drain ahead of teardown, so a load
// balancer's probe saw 200 right up until connections started failing.
func TestHealthzFlipsOnBeginDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", code)
	}
	s.BeginDrain()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after BeginDrain = %d, want 503", code)
	}
	if !s.Draining() {
		t.Error("Draining() false after BeginDrain")
	}
	// New solves are refused while draining...
	if code, _, _, _ := postSpec(t, ts.URL, `{"problem":"chain","dims":[3,4,5]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain = %d, want 503", code)
	}
	// ...and a later Close still tears down cleanly (idempotent latch).
	s.Close()
	s.Close()
}

// EstimateCostFile must agree exactly with EstimateCost on the built
// problem for every generator kind: the router divides File-level
// estimates by replica-calibrated rates that are denominated in
// problem-level units.
func TestEstimateCostFileMatchesProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		in := check.Gen(rng, check.GenConfig{})
		if in.File.Validate() != nil {
			continue
		}
		p, err := in.File.Build()
		if err != nil {
			continue
		}
		wantKind, wantCycles := EstimateCost(p)
		gotKind, gotCycles := EstimateCostFile(&in.File)
		if gotKind != wantKind || math.Abs(gotCycles-wantCycles) > 1e-9 {
			t.Fatalf("instance %v: EstimateCostFile = (%s, %g), EstimateCost = (%s, %g)",
				in, gotKind, gotCycles, wantKind, wantCycles)
		}
	}
}

// A request arriving with X-Deadline-Ms is priced against that deadline,
// not the server's -timeout. Regression test for deadline loss across a
// proxy hop: before the header existed, a replica admitted (and solved)
// work whose edge deadline had already expired.
func TestDeadlineHeaderHonoredByAdmission(t *testing.T) {
	s := New(Config{Workers: 1, AdmitEnabled: true, AdmitHeadroom: 1, Timeout: 30 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pin the chain rate so the model predicts ~1s of work: shed against
	// a 50 ms edge deadline, admitted against the 30 s default.
	const body = `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`
	f, err := spec.Decode([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	_, cycles := EstimateCostFile(f)
	// The request executes on the chain batch kernel, so admission prices
	// it against the "chain-batch" rate.
	s.admit.setRate("chain-batch", cycles) // 1 second predicted

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", strings.NewReader(body))
	req.Header.Set(DeadlineHeader, "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tight proxied deadline: status %d, want 429 (admission shed)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// The same spec without the header has the full -timeout to spend.
	if code, _, _, _ := postSpec(t, ts.URL, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`); code != http.StatusOK {
		t.Fatalf("unproxied request: status %d, want 200", code)
	}
}
