package serve

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func batchGraph(seed int64, stages, m int) *multistage.Graph {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, stages, m, 1, 10)
	return multistage.SingleSourceSink(semiring.MinPlus{}, inner)
}

// Instances arriving inside one window flush together; each waiter gets
// its own instance's solution.
func TestBatcherFlushOnWindow(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(60*time.Millisecond, 16, 100, met)
	defer b.Close()

	const n = 3
	gs := make([]*multistage.Graph, n)
	for i := range gs {
		gs[i] = batchGraph(int64(i+1), 5, 4)
	}
	var wg sync.WaitGroup
	sols := make([]*core.Solution, n)
	for i := range gs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := b.Submit(context.Background(), gs[i])
			if err != nil {
				t.Error(err)
				return
			}
			sols[i] = sol
		}(i)
	}
	wg.Wait()
	if got := met.Batches.Value(); got != 1 {
		t.Errorf("flushes = %d, want 1 (window batch)", got)
	}
	if got := met.Batched.Value(); got != n {
		t.Errorf("batched instances = %d, want %d", got, n)
	}
	for i, g := range gs {
		want, err := core.Solve(&core.MultistageProblem{Graph: g, Design: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sols[i].Cost-want.Cost) > 1e-9 {
			t.Errorf("instance %d: batched cost %v, want %v", i, sols[i].Cost, want.Cost)
		}
	}
}

// Hitting maxBatch flushes immediately, long before the window elapses.
func TestBatcherFlushOnFull(t *testing.T) {
	met := NewMetrics()
	const maxBatch = 4
	b := NewBatcher(5*time.Second, maxBatch, 100, met)
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < maxBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), batchGraph(int64(i+1), 5, 4)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("size-triggered flush took %v; should not wait for the window", elapsed)
	}
	if got := met.Batches.Value(); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
	if got := met.BatchOccupancy.Sum(); got != maxBatch {
		t.Errorf("occupancy sum = %v, want %v", got, maxBatch)
	}
}

// Different graph shapes never share a stream; they flush as separate
// batches.
func TestBatcherShardsByShape(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(40*time.Millisecond, 16, 100, met)
	defer b.Close()

	var wg sync.WaitGroup
	for _, g := range []*multistage.Graph{batchGraph(1, 5, 4), batchGraph(2, 5, 3)} {
		wg.Add(1)
		go func(g *multistage.Graph) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), g); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if got := met.Batches.Value(); got != 2 {
		t.Errorf("flushes = %d, want 2 (one per shape)", got)
	}
}

// Over-admission is rejected with ErrBusy while the window is still open.
func TestBatcherBackpressure(t *testing.T) {
	b := NewBatcher(200*time.Millisecond, 64, 2, NewMetrics())
	defer b.Close()

	results := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Submit(context.Background(), batchGraph(int64(i+1), 5, 4))
			results <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // both admitted, window still open
	if _, err := b.Submit(context.Background(), batchGraph(9, 5, 4)); err != ErrBusy {
		t.Errorf("over-admission err = %v, want ErrBusy", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
}

// Close flushes pending work instead of stranding waiters, then rejects
// new submissions.
func TestBatcherCloseDrains(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(10*time.Second, 16, 100, met) // window too long to fire
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), batchGraph(1, 5, 4))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drained request failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not flush the pending batch")
	}
	if _, err := b.Submit(context.Background(), batchGraph(2, 5, 4)); err != ErrShutdown {
		t.Errorf("post-Close err = %v, want ErrShutdown", err)
	}
}

// A caller whose context expires before the flush is unblocked by ctx.
func TestBatcherSubmitTimeout(t *testing.T) {
	b := NewBatcher(5*time.Second, 16, 100, NewMetrics())
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(ctx, batchGraph(1, 5, 4)); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

// Regression: a panic during the batch solve ran in a detached flush
// goroutine and crashed the whole process, stranding every submitter. It
// must be delivered to each live item as an error, with the inflight
// slots released so the batcher keeps serving.
func TestBatcherFlushPanicDeliversErrors(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(20*time.Millisecond, 16, 4, met)
	defer b.Close()
	b.solveBatch = func([]*multistage.Graph, int, int) ([]*core.Solution, *core.BatchStats, error) {
		panic("engine blew up")
	}

	const n = 3
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), batchGraph(int64(i+1), 4, 3))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Errorf("submitter %d err = %v, want panic-derived error", i, err)
		}
	}

	// Slots were released and the batcher still works with a healthy engine.
	b.solveBatch = nil
	g := batchGraph(99, 4, 3)
	sol, err := b.Submit(context.Background(), g)
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	want, err := core.Solve(&core.MultistageProblem{Graph: g, Design: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != want.Cost {
		t.Errorf("post-panic cost %v, want %v", sol.Cost, want.Cost)
	}
}
