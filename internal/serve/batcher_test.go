package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func batchGraph(seed int64, stages, m int) *core.MultistageProblem {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, stages, m, 1, 10)
	return &core.MultistageProblem{Graph: multistage.SingleSourceSink(semiring.MinPlus{}, inner), Design: 1}
}

// Instances arriving inside one window flush together; each waiter gets
// its own instance's solution.
func TestBatcherFlushOnWindow(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(60*time.Millisecond, 16, 100, met)
	defer b.Close()

	const n = 3
	gs := make([]*core.MultistageProblem, n)
	for i := range gs {
		gs[i] = batchGraph(int64(i+1), 5, 4)
	}
	var wg sync.WaitGroup
	sols := make([]*core.Solution, n)
	for i := range gs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := b.Submit(context.Background(), gs[i])
			if err != nil {
				t.Error(err)
				return
			}
			sols[i] = sol
		}(i)
	}
	wg.Wait()
	if got := met.Batches.Value(); got != 1 {
		t.Errorf("flushes = %d, want 1 (window batch)", got)
	}
	if got := met.Batched.Value(); got != n {
		t.Errorf("batched instances = %d, want %d", got, n)
	}
	for i, g := range gs {
		want, err := core.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sols[i].Cost-want.Cost) > 1e-9 {
			t.Errorf("instance %d: batched cost %v, want %v", i, sols[i].Cost, want.Cost)
		}
	}
}

// Hitting maxBatch flushes immediately, long before the window elapses.
func TestBatcherFlushOnFull(t *testing.T) {
	met := NewMetrics()
	const maxBatch = 4
	b := NewBatcher(5*time.Second, maxBatch, 100, met)
	defer b.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < maxBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), batchGraph(int64(i+1), 5, 4)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("size-triggered flush took %v; should not wait for the window", elapsed)
	}
	if got := met.Batches.Value(); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
	if got := met.BatchOccupancy.With("graph-stream").Sum(); got != maxBatch {
		t.Errorf("occupancy sum = %v, want %v", got, maxBatch)
	}
}

// Different graph shapes never share a stream; they flush as separate
// batches.
func TestBatcherShardsByShape(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(40*time.Millisecond, 16, 100, met)
	defer b.Close()

	var wg sync.WaitGroup
	for _, g := range []*core.MultistageProblem{batchGraph(1, 5, 4), batchGraph(2, 5, 3)} {
		wg.Add(1)
		go func(g *core.MultistageProblem) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), g); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if got := met.Batches.Value(); got != 2 {
		t.Errorf("flushes = %d, want 2 (one per shape)", got)
	}
}

// Over-admission is rejected with ErrBusy while the window is still open.
func TestBatcherBackpressure(t *testing.T) {
	b := NewBatcher(200*time.Millisecond, 64, 2, NewMetrics())
	defer b.Close()

	results := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Submit(context.Background(), batchGraph(int64(i+1), 5, 4))
			results <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // both admitted, window still open
	if _, err := b.Submit(context.Background(), batchGraph(9, 5, 4)); err != ErrBusy {
		t.Errorf("over-admission err = %v, want ErrBusy", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
}

// Close flushes pending work instead of stranding waiters, then rejects
// new submissions.
func TestBatcherCloseDrains(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(10*time.Second, 16, 100, met) // window too long to fire
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), batchGraph(1, 5, 4))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drained request failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not flush the pending batch")
	}
	if _, err := b.Submit(context.Background(), batchGraph(2, 5, 4)); err != ErrShutdown {
		t.Errorf("post-Close err = %v, want ErrShutdown", err)
	}
}

// A caller whose context expires before the flush is unblocked by ctx.
func TestBatcherSubmitTimeout(t *testing.T) {
	b := NewBatcher(5*time.Second, 16, 100, NewMetrics())
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(ctx, batchGraph(1, 5, 4)); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

// Regression (deterministic): Submit used to call wg.Add(1) for a
// size-triggered flush AFTER releasing b.mu, so Close could set closed,
// find nothing pending, and return from wg.Wait before the Add landed —
// a WaitGroup misuse that let the flush outlive Close. The testPreFlush
// seam parks the submitter exactly in that window; Close must block
// until the admitted flush completes.
func TestBatcherCloseWaitsForAdmittedFlush(t *testing.T) {
	b := NewBatcher(time.Hour, 1, 100, NewMetrics())
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	b.testPreFlush = func() {
		once.Do(func() { close(entered) })
		<-release
	}

	subErr := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), batchGraph(1, 4, 3))
		subErr <- err
	}()
	<-entered // the submitter holds a slot; its flush is not yet spawned

	closeDone := make(chan struct{})
	go func() {
		b.Close()
		close(closeDone)
	}()
	time.Sleep(20 * time.Millisecond) // let Close reach wg.Wait
	select {
	case <-closeDone:
		t.Fatal("Close returned while an admitted flush had not run: the flush escaped wg.Wait")
	default:
	}
	close(release)
	select {
	case <-closeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the flush was released")
	}
	if err := <-subErr; err != nil {
		t.Errorf("admitted submit err = %v, want its flushed solution", err)
	}
	b.mu.Lock()
	inflight := b.inflight
	b.mu.Unlock()
	if inflight != 0 {
		t.Errorf("inflight = %d after Close, want 0", inflight)
	}
}

// The same race, probabilistically: loop Submit-vs-Close churn under
// -race. Every admitted flush must complete before Close returns
// (observable as inflight == 0 at that instant: an escaped flush would
// not yet have released its slots).
func TestBatcherCloseSubmitRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		// maxBatch 1 makes every Submit take the size-trigger path.
		b := NewBatcher(time.Hour, 1, 100, NewMetrics())
		const subs = 4
		var wg sync.WaitGroup
		for i := 0; i < subs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := b.Submit(context.Background(), batchGraph(int64(i+1), 4, 3))
				if err != nil && err != ErrShutdown {
					t.Errorf("round %d submit %d: %v", round, i, err)
				}
			}(i)
		}
		b.Close()
		b.mu.Lock()
		inflight := b.inflight
		b.mu.Unlock()
		if inflight != 0 {
			t.Fatalf("round %d: inflight = %d immediately after Close; a flush escaped Close's wg.Wait", round, inflight)
		}
		wg.Wait()
	}
}

// Regression: a submitter that returned on ctx.Done used to stay counted
// in inflight until the window flush, so a burst of cancellations caused
// spurious 429s for up to a full batch window. The slot must come back
// the moment Submit returns.
func TestBatcherCancelledReleasesSlotEagerly(t *testing.T) {
	const quota = 3
	// Window far longer than the test: if release waited for the flush,
	// the final Submit below would see ErrBusy.
	b := NewBatcher(time.Hour, 64, quota, NewMetrics())
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, quota)
	for i := 0; i < quota; i++ {
		go func(i int) {
			_, err := b.Submit(ctx, batchGraph(int64(i+1), 4, 3))
			errs <- err
		}(i)
	}
	// Wait until all three hold slots, then cancel them.
	deadline := time.After(2 * time.Second)
	for {
		b.mu.Lock()
		n := b.inflight
		b.mu.Unlock()
		if n == quota {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("submitters never admitted: inflight = %d", n)
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := b.Submit(context.Background(), batchGraph(9, 4, 3)); err != ErrBusy {
		t.Fatalf("pre-cancel over-quota err = %v, want ErrBusy", err)
	}
	cancel()
	for i := 0; i < quota; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled submit err = %v, want context.Canceled", err)
		}
	}
	// All cancelled submitters have returned: their slots must already be
	// free, with the window still hours from flushing.
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), batchGraph(10, 4, 3))
		done <- err
	}()
	b.mu.Lock()
	inflight := b.inflight
	b.mu.Unlock()
	if inflight >= quota {
		t.Errorf("inflight = %d after all submitters cancelled, want < %d (eager release)", inflight, quota)
	}
	// The new Submit was admitted (it is waiting on its window, not
	// rejected): give it a moment to either fail fast or park.
	select {
	case err := <-done:
		t.Fatalf("post-cancel Submit returned early: %v (want admission + window wait)", err)
	case <-time.After(100 * time.Millisecond):
	}
}

// Regression: a panic during the batch solve ran in a detached flush
// goroutine and crashed the whole process, stranding every submitter. It
// must be delivered to each live item as an error, with the inflight
// slots released so the batcher keeps serving.
func TestBatcherFlushPanicDeliversErrors(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(20*time.Millisecond, 16, 4, met)
	defer b.Close()
	b.solveBatch = func(core.BatchKernel, []core.Problem, int, int) ([]*core.Solution, *core.BatchStats, error) {
		panic("engine blew up")
	}

	const n = 3
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), batchGraph(int64(i+1), 4, 3))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Errorf("submitter %d err = %v, want panic-derived error", i, err)
		}
	}

	// Slots were released and the batcher still works with a healthy engine.
	b.solveBatch = nil
	g := batchGraph(99, 4, 3)
	sol, err := b.Submit(context.Background(), g)
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	want, err := core.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != want.Cost {
		t.Errorf("post-panic cost %v, want %v", sol.Cost, want.Cost)
	}
}
