package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"systolicdp/internal/promtext"
)

// The full live /metrics output — after traffic that populates every
// family, including batched solves, cache hits, rejections, and the
// runtime gauges — must satisfy the strict family rules enforced by
// promtext.Lint (every sample in exactly one declared family, histograms
// owning only their _bucket/_sum/_count series). Before the PR-5 fix,
// dpserve_solve_latency_seconds{quantile=...} reused the histogram's
// family name and this parse failed; the checker now lives in
// internal/promtext so the router tier and dptop share it.
func TestMetricsExpositionTypeChecks(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts.URL, graphSpec(0))
	postSpec(t, ts.URL, graphSpec(0)) // cache hit
	postSpec(t, ts.URL, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`)
	postSpec(t, ts.URL, `{not json`) // error counter

	text := metricsText(t, ts.URL)
	if err := promtext.Lint(text); err != nil {
		t.Fatalf("/metrics exposition is not strictly parseable: %v\n%s", err, text)
	}
	// The renamed quantile family exists and the old duplicate does not.
	if !strings.Contains(text, `dpserve_solve_latency_quantile_seconds{quantile="0.95"}`) {
		t.Errorf("missing renamed quantile family:\n%s", text)
	}
	if strings.Contains(text, `dpserve_solve_latency_seconds{quantile=`) {
		t.Errorf("old duplicate-family quantile series still emitted:\n%s", text)
	}
	// The parsed form is what dptop consumes: per-kind request counters
	// and the engine PU gauges must be readable back out.
	fams, err := promtext.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	byKind := fams.Labeled("dpserve_requests_total", "problem")
	if byKind["graph"] != 2 || byKind["chain"] != 1 {
		t.Errorf("parsed request counters = %v", byKind)
	}
	if _, ok := fams["dpserve_engine_pu_expected"]; !ok {
		t.Error("dpserve_engine_pu_expected gauge missing from exposition")
	}
}

// Quantile gauges still track the histogram after the rename.
func TestSolveLatencyQuantileFamilyValues(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 100; i++ {
		m.SolveSeconds.Observe(float64(i) / 100)
	}
	var sb strings.Builder
	m.Write(&sb)
	p95 := m.SolveSeconds.Quantile(0.95)
	want := fmt.Sprintf(`dpserve_solve_latency_quantile_seconds{quantile="0.95"} %g`, p95)
	if !strings.Contains(sb.String(), want) {
		t.Errorf("missing %q in:\n%s", want, sb.String())
	}
}
