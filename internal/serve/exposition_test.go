package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// parseExposition is a strict Prometheus text-format checker, modeling
// the family rules real registries enforce:
//
//   - every sample must belong to exactly one # TYPE-declared family,
//     declared before its samples;
//   - a family may be declared only once;
//   - a histogram family owns exactly its _bucket/_sum/_count series
//     (buckets must carry an le label); a bare sample under the
//     histogram's own name — the old quantile-summary emission — is a
//     duplicate-family error;
//   - no family name may collide with another histogram's suffixed
//     series.
//
// It returns the first violation, or nil for a clean exposition.
func parseExposition(text string) error {
	families := map[string]string{} // name -> type
	sampleSeen := map[string]bool{} // families that already emitted samples
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", ln+1, typ)
				}
				if _, dup := families[name]; dup {
					return fmt.Errorf("line %d: family %q declared twice", ln+1, name)
				}
				// A new family must not collide with a histogram's series.
				for fam, ftyp := range families {
					if ftyp != "histogram" {
						continue
					}
					for _, sfx := range []string{"", "_bucket", "_sum", "_count"} {
						if name == fam+sfx {
							return fmt.Errorf("line %d: family %q collides with histogram %q", ln+1, name, fam)
						}
					}
				}
				if families[name] == "" {
					families[name] = typ
				}
			}
			continue
		}
		// Sample line: name[{labels}] value.
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		labels := ""
		if i := strings.Index(line, "{"); i >= 0 {
			j := strings.Index(line, "}")
			if j < i {
				return fmt.Errorf("line %d: malformed labels in %q", ln+1, line)
			}
			labels = line[i : j+1]
		}
		owner := ""
		if typ, ok := families[name]; ok {
			if typ == "histogram" {
				return fmt.Errorf("line %d: sample %q reuses histogram family name %q (only _bucket/_sum/_count belong to it)", ln+1, line, name)
			}
			owner = name
		}
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, sfx)
			if !found {
				continue
			}
			if typ, ok := families[base]; ok && typ == "histogram" {
				if owner != "" {
					return fmt.Errorf("line %d: sample %q owned by both family %q and histogram %q", ln+1, line, owner, base)
				}
				if sfx == "_bucket" && !strings.Contains(labels, "le=") {
					return fmt.Errorf("line %d: histogram bucket %q without le label", ln+1, line)
				}
				owner = base
			}
		}
		if owner == "" {
			return fmt.Errorf("line %d: sample %q belongs to no declared family", ln+1, line)
		}
		sampleSeen[owner] = true
	}
	return nil
}

// The full live /metrics output — after traffic that populates every
// family, including batched solves, cache hits, rejections, and the
// runtime gauges — must satisfy the strict family rules. Before the fix,
// dpserve_solve_latency_seconds{quantile=...} reused the histogram's
// family name and this parse failed.
func TestMetricsExpositionTypeChecks(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts.URL, graphSpec(0))
	postSpec(t, ts.URL, graphSpec(0)) // cache hit
	postSpec(t, ts.URL, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`)
	postSpec(t, ts.URL, `{not json`) // error counter

	text := metricsText(t, ts.URL)
	if err := parseExposition(text); err != nil {
		t.Fatalf("/metrics exposition is not strictly parseable: %v\n%s", err, text)
	}
	// The renamed quantile family exists and the old duplicate does not.
	if !strings.Contains(text, `dpserve_solve_latency_quantile_seconds{quantile="0.95"}`) {
		t.Errorf("missing renamed quantile family:\n%s", text)
	}
	if strings.Contains(text, `dpserve_solve_latency_seconds{quantile=`) {
		t.Errorf("old duplicate-family quantile series still emitted:\n%s", text)
	}
}

// The checker itself must reject the pre-fix shape: summary-style
// quantile samples under the same family name as a histogram.
func TestExpositionParserRejectsDuplicateFamily(t *testing.T) {
	bad := `# TYPE dpserve_solve_latency_seconds histogram
dpserve_solve_latency_seconds_bucket{le="1"} 1
dpserve_solve_latency_seconds_bucket{le="+Inf"} 1
dpserve_solve_latency_seconds_sum 0.5
dpserve_solve_latency_seconds_count 1
dpserve_solve_latency_seconds{quantile="0.5"} 0.5
`
	if err := parseExposition(bad); err == nil {
		t.Fatal("parser accepted a quantile sample reusing a histogram family name")
	}
	for name, text := range map[string]string{
		"orphan sample":        "dpserve_undeclared_total 3\n",
		"double declaration":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"bucket without le":    "# TYPE h histogram\nh_bucket 1\n",
		"family collides with": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# TYPE h_sum counter\n",
	} {
		if err := parseExposition(text); err == nil {
			t.Errorf("%s: parser accepted invalid exposition:\n%s", name, text)
		}
	}
	good := "# TYPE a counter\na 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"
	if err := parseExposition(good); err != nil {
		t.Errorf("parser rejected a valid exposition: %v", err)
	}
}

// Quantile gauges still track the histogram after the rename.
func TestSolveLatencyQuantileFamilyValues(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 100; i++ {
		m.SolveSeconds.Observe(float64(i) / 100)
	}
	var sb strings.Builder
	m.Write(&sb)
	p95 := m.SolveSeconds.Quantile(0.95)
	want := fmt.Sprintf(`dpserve_solve_latency_quantile_seconds{quantile="0.95"} %g`, p95)
	if !strings.Contains(sb.String(), want) {
		t.Errorf("missing %q in:\n%s", want, sb.String())
	}
}
