package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/spec"
)

// specProblem decodes a spec JSON and builds its core.Problem.
func specProblem(t *testing.T, js string) core.Problem {
	t.Helper()
	f, err := spec.Decode([]byte(js))
	if err != nil {
		t.Fatalf("decode %s: %v", js, err)
	}
	p, err := f.Build()
	if err != nil {
		t.Fatalf("build %s: %v", js, err)
	}
	return p
}

// EstimateCost must reproduce the paper's closed forms: Design-1 streams
// cost K'·m + m − 1 cycles, DTW |x|·|y| cells, chain ordering ~n³/6
// table updates — and every kind must price strictly positive.
func TestEstimateCostClosedForms(t *testing.T) {
	kind, cycles := EstimateCost(specProblem(t, graphSpec(0)))
	if kind != "graph-stream" {
		t.Fatalf("design-1 graph kind = %q, want graph-stream", kind)
	}
	// graphSpec is a 1-4-4-1 staged graph: the stream problem has m = 4
	// (padded vector) and K' matrices; verify against the engine's own
	// model rather than hand-deriving the padding.
	p := specProblem(t, graphSpec(0)).(*core.MultistageProblem)
	sp, err := core.StreamProblemFromGraph(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(sp.Ms)*len(sp.V) + len(sp.V) - 1)
	if cycles != want {
		t.Errorf("design-1 cycles = %v, want K'·m+m-1 = %v", cycles, want)
	}

	kind, cycles = EstimateCost(&core.DTWProblem{X: make([]float64, 7), Y: make([]float64, 5)})
	if kind != "dtw" || cycles != 7*5+1 {
		t.Errorf("dtw = (%q, %v), want (dtw, 36)", kind, cycles)
	}

	kind, cycles = EstimateCost(specProblem(t, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	if kind != "chain" || cycles <= 36 {
		t.Errorf("chain = (%q, %v), want kind chain and > n² cost", kind, cycles)
	}

	for _, js := range []string{
		`{"problem":"nodevalued","values":[[1,2],[3,4],[5]]}`,
		`{"problem":"dtw","x":[1,2,3],"y":[4,5]}`,
	} {
		if _, c := EstimateCost(specProblem(t, js)); c <= 0 {
			t.Errorf("%s priced non-positive cost %v", js, c)
		}
	}
}

// Uncalibrated kinds always admit (cold start must not 429); once a rate
// is observed, requests that cannot meet their deadline shed with an
// OverloadError that maps to ErrBusy and carries a sane Retry-After.
func TestAdmitterShedsOnlyWhenCalibratedAndLate(t *testing.T) {
	a := NewAdmitter(true, 1.0, 1)

	// Cold start: no rate for "dtw" yet, any deadline admits.
	res, err := a.Admit("dtw", 1e12, time.Millisecond)
	if err != nil {
		t.Fatalf("uncalibrated admit failed: %v", err)
	}
	res.Release()

	// Calibrate: 1000 units/second. A 10000-unit request (10s) cannot
	// meet a 1s deadline.
	a.Observe("dtw", 1000, 1)
	if got := a.Rate("dtw"); got != 1000 {
		t.Fatalf("rate after first observe = %v, want 1000", got)
	}
	_, err = a.Admit("dtw", 10000, time.Second)
	var ovl *OverloadError
	if !errors.As(err, &ovl) {
		t.Fatalf("late request admitted, err = %v", err)
	}
	if !errors.Is(err, ErrBusy) {
		t.Error("OverloadError does not map to ErrBusy (429)")
	}
	if ovl.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", ovl.RetryAfter)
	}

	// The same request with a generous deadline admits and reserves ~10s
	// of backlog; releasing drains it back to zero.
	res, err = a.Admit("dtw", 10000, time.Minute)
	if err != nil {
		t.Fatalf("feasible request shed: %v", err)
	}
	if got := a.BacklogSeconds(); got < 9 || got > 11 {
		t.Errorf("backlog after admit = %v, want ~10s", got)
	}
	// A second request that fits its own solve but not behind the backlog
	// sheds: 1000 units = 1s of work, deadline 2s, but 10s of backlog sits
	// ahead of it.
	if _, err := a.Admit("dtw", 1000, 2*time.Second); !errors.Is(err, ErrBusy) {
		t.Errorf("request behind 10s backlog admitted, err = %v", err)
	}
	res.Release()
	res.Release() // idempotent
	if got := a.BacklogSeconds(); got != 0 {
		t.Errorf("backlog after release = %v, want 0", got)
	}
	// Backlog gone: the same request now admits.
	res, err = a.Admit("dtw", 1000, 2*time.Second)
	if err != nil {
		t.Fatalf("request shed after backlog drained: %v", err)
	}
	res.Release()
}

// Disabled admission still calibrates and tracks backlog (warm handoff,
// live gauges) but never sheds.
func TestAdmitterDisabledNeverSheds(t *testing.T) {
	a := NewAdmitter(false, 1.0, 1)
	a.Observe("dtw", 1000, 1)
	res, err := a.Admit("dtw", 1e9, time.Millisecond)
	if err != nil {
		t.Fatalf("disabled admitter shed: %v", err)
	}
	if got := a.BacklogSeconds(); got <= 0 {
		t.Error("disabled admitter does not track backlog")
	}
	res.Release()
}

// Headroom sheds earlier: a request that fits exactly at headroom 1 is
// shed at headroom 2.
func TestAdmitterHeadroom(t *testing.T) {
	tight := NewAdmitter(true, 1.0, 1)
	tight.setRate("dtw", 1000)
	if _, err := tight.Admit("dtw", 1000, 1500*time.Millisecond); err != nil {
		t.Fatalf("1s of work shed against 1.5s deadline at headroom 1: %v", err)
	}
	wide := NewAdmitter(true, 2.0, 1)
	wide.setRate("dtw", 1000)
	if _, err := wide.Admit("dtw", 1000, 1500*time.Millisecond); !errors.Is(err, ErrBusy) {
		t.Errorf("headroom 2 admitted work predicted at 2x the deadline, err = %v", err)
	}
}

// End to end over HTTP: with admission on and the model calibrated to a
// rate that makes the deadline infeasible, /solve answers 429 with a
// Retry-After header and dpserve_admit_shed_total counts it; the backlog
// gauge is exported.
func TestServeAdmissionShedsOverHTTP(t *testing.T) {
	s := New(Config{
		BatchWindow:  -1,
		Timeout:      50 * time.Millisecond,
		AdmitEnabled: true,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Calibrate chain ordering absurdly slow: 1 unit/second means the
	// ~57-unit chain below prices far past the 50ms budget. Chains route
	// through the batch kernel, so the rate key is the execution path's
	// kind ("chain-batch"), not the pool kind.
	s.admit.setRate("chain-batch", 1)

	resp, err := http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}

	text := metricsText(t, ts.URL)
	if v := metricValue(t, text, "dpserve_admit_shed_total"); v != 1 {
		t.Errorf("dpserve_admit_shed_total = %v, want 1", v)
	}
	if !strings.Contains(text, "dpserve_admit_backlog_seconds") {
		t.Errorf("/metrics missing backlog gauge:\n%s", text)
	}
	if v := metricValue(t, text, "dpserve_rejected_total"); v != 1 {
		t.Errorf("shed not counted as rejection, rejected = %v", v)
	}

	// A feasible request still solves, and its measured rate rewrites the
	// bogus calibration so subsequent requests admit again.
	s.admit.setRate("chain-batch", 0)
	resp, err = http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"problem":"chain","dims":[3,5,7,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feasible request after recalibration: status %d", resp.StatusCode)
	}
	if s.admit.Rate("chain-batch") <= 0 {
		t.Error("successful solve did not calibrate the chain-batch rate")
	}
}

// Solving through the real pipeline calibrates every kind it touches,
// and the Design-1 batcher path feeds the graph-stream rate.
func TestAdmitterCalibratesFromTraffic(t *testing.T) {
	s := New(Config{BatchWindow: time.Millisecond, BatchMax: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postSpec(t, ts.URL, graphSpec(0))
	postSpec(t, ts.URL, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`)

	if r := s.admit.Rate("graph-stream"); r <= 0 {
		t.Error("batched Design-1 solve did not calibrate graph-stream rate")
	}
	if r := s.admit.Rate("chain-batch"); r <= 0 {
		t.Error("batched chain solve did not calibrate chain-batch rate")
	}
	if got := s.admit.BacklogSeconds(); got != 0 {
		t.Errorf("backlog non-zero at idle: %v", got)
	}
}

// The reservation releases on every dispatch outcome — success, shed,
// error, and client abandonment — so the backlog cannot leak upward and
// turn into a permanent 429.
func TestAdmitterBacklogReleasesOnAllPaths(t *testing.T) {
	s := New(Config{BatchWindow: -1, Timeout: 5 * time.Second, AdmitEnabled: true})
	defer s.Close()

	// Abandonment: a dispatch whose context dies mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := specProblem(t, `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`)
	if _, err := s.dispatch(ctx, p); err == nil {
		t.Fatal("dispatch with dead context succeeded")
	}
	if got := s.admit.BacklogSeconds(); got != 0 {
		t.Errorf("backlog after abandoned dispatch = %v, want 0", got)
	}

	// Success path.
	if _, err := s.dispatch(context.Background(), p); err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if got := s.admit.BacklogSeconds(); got != 0 {
		t.Errorf("backlog after successful dispatch = %v, want 0", got)
	}
}

// BatchKind must cover every batch kernel the server can calibrate
// under: for each core.BatchKernels() kernel there is a pool kind whose
// BatchKind is that kernel's Kind(), and BatchKind never invents a kind
// no kernel executes.
func TestBatchKindCoversBatchKernels(t *testing.T) {
	poolKinds := []string{"graph-stream", "graph", "nodevalued", "dtw", "align", "viterbi", "knapsack", "chain", "nonserial", "other"}
	reachable := make(map[string]bool)
	for _, k := range poolKinds {
		if bk := BatchKind(k); bk != "" {
			reachable[bk] = true
		}
	}
	execKinds := make(map[string]bool)
	for _, kern := range core.BatchKernels() {
		execKinds[kern.Kind()] = true
		if !reachable[kern.Kind()] {
			t.Errorf("batch kernel kind %q unreachable from any pool kind via BatchKind", kern.Kind())
		}
	}
	for bk := range reachable {
		if !execKinds[bk] {
			t.Errorf("BatchKind maps to %q, but no batch kernel executes under that kind", bk)
		}
	}
}
