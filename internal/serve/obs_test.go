package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"systolicdp/internal/obs"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram should yield NaN")
	}
	for _, x := range []float64{0.5, 1.5, 3} {
		h.Observe(x)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.5, 1.5}, // rank 1.5 lands mid-bucket (1,2]
		{1, 4},     // rank 3 exhausts the last finite bucket
		{-1, 0},    // clamps to p=0, start of the first bucket
		{1.0 / 3, 1}}
	for _, c := range cases {
		if got := h.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}

	// Observations past the last bound land in +Inf and clamp to the
	// highest finite bound instead of extrapolating to infinity.
	inf := NewHistogram(1, 2)
	inf.Observe(100)
	if got := inf.Quantile(0.99); got != 2 {
		t.Errorf("+Inf bucket quantile = %v, want clamp to 2", got)
	}
}

// metricValue extracts the value of an exact metric line ("name value").
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// lockedBuffer makes a bytes.Buffer safe for concurrent slog writes from
// handler goroutines.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// Acceptance: under load the server exposes non-empty queue_wait and
// solve histograms with quantiles on /metrics, retains request spans on
// /debug/dptrace, propagates or generates X-Request-ID, and emits one
// structured log line per request.
func TestServeObservability(t *testing.T) {
	logs := &lockedBuffer{}
	s := New(Config{
		BatchWindow: -1,
		Logger:      slog.New(slog.NewTextHandler(logs, nil)),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A propagated request id must round-trip to the response header.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve",
		strings.NewReader(`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`))
	req.Header.Set("X-Request-ID", "client-supplied-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chain solve: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-7" {
		t.Errorf("X-Request-ID = %q, want propagated client id", got)
	}

	// A request without an id gets a generated one.
	resp2, err := http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(graphSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("graph solve: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no generated X-Request-ID on response")
	}

	text := metricsText(t, ts.URL)
	if n := metricValue(t, text, "dpserve_queue_wait_seconds_count"); n < 1 {
		t.Errorf("queue_wait histogram empty (count %v)", n)
	}
	if n := metricValue(t, text, "dpserve_solve_latency_seconds_count"); n < 1 {
		t.Errorf("solve histogram empty (count %v)", n)
	}
	for _, want := range []string{
		`dpserve_solve_latency_quantile_seconds{quantile="0.5"}`,
		`dpserve_solve_latency_quantile_seconds{quantile="0.99"}`,
		"dpserve_batch_assembly_seconds_bucket",
		"dpserve_goroutines",
		"dpserve_heap_alloc_bytes",
		"dpserve_gc_cycles_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/dptrace must hold at least one finished request span.
	tresp, err := http.Get(ts.URL + "/debug/dptrace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var tr obs.Trace
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatalf("/debug/dptrace is not trace-event JSON: %v", err)
	}
	requests, stages := 0, 0
	for _, e := range tr.TraceEvents {
		if e.Pid != obs.ServePid || e.Ph != obs.PhaseComplete {
			continue
		}
		if e.Name == "request" {
			requests++
		} else {
			stages++
		}
	}
	if requests < 2 {
		t.Errorf("trace has %d request spans, want >= 2", requests)
	}
	if stages < 2 {
		t.Errorf("trace has %d stage spans, want >= 2 (decode/queue_wait/solve/encode)", stages)
	}

	logged := logs.String()
	if !strings.Contains(logged, "client-supplied-7") {
		t.Errorf("structured log missing propagated request id:\n%s", logged)
	}
	if !strings.Contains(logged, "problem=chain") {
		t.Errorf("structured log missing problem kind:\n%s", logged)
	}
}

// pprof handlers mount only behind Config.EnablePprof.
func TestServePprofGate(t *testing.T) {
	off := New(Config{})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	r, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode == http.StatusOK {
		t.Error("pprof served without EnablePprof")
	}

	on := New(Config{EnablePprof: true})
	defer on.Close()
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	r, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d with EnablePprof", r.StatusCode)
	}
}
