package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// LRU is a bounded least-recently-used cache from canonical spec hash to
// solved response. A zero or negative capacity disables caching.
type LRU struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

// NewLRU builds a cache holding at most max responses.
func NewLRU(max int) *LRU {
	return &LRU{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached response for key, promoting it to most recent.
func (c *LRU) Get(key string) (*Response, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// Put stores a response, evicting the least-recently-used entry if full.
func (c *LRU) Put(key string, resp *Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached responses.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight deduplicates concurrent identical work: the first request for a
// key starts fn in its own goroutine; later requests for the same key wait
// on the same result. fn runs detached from any single request's context,
// so a waiter abandoning early (ctx done) never fails the others.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// do returns fn's result for key, coalescing concurrent callers. shared
// reports whether this caller joined an already-in-flight solve.
func (f *flight) do(ctx context.Context, key string, fn func() (*Response, error)) (resp *Response, shared bool, err error) {
	f.mu.Lock()
	c, ok := f.calls[key]
	if !ok {
		c = &flightCall{done: make(chan struct{})}
		f.calls[key] = c
		f.mu.Unlock()
		go func() {
			// LIFO defers: the recover runs first so a panicking fn still
			// reaches the cleanup below — the key is always unwedged and
			// done is always closed, even when fn never returns normally.
			defer func() {
				f.mu.Lock()
				delete(f.calls, key)
				f.mu.Unlock()
				close(c.done)
			}()
			defer func() {
				if r := recover(); r != nil {
					c.resp, c.err = nil, fmt.Errorf("serve: solve panicked: %v", r)
				}
			}()
			c.resp, c.err = fn()
		}()
	} else {
		f.mu.Unlock()
	}
	select {
	case <-c.done:
		return c.resp, ok, c.err
	case <-ctx.Done():
		return nil, ok, ctx.Err()
	}
}
