// Cycle-model admission control.
//
// The paper's central operational claim is that systolic DP cost is
// predictable in closed form BEFORE running: a Design-1 stream of K'
// matrices over an m-vector occupies the array for exactly K'·m + m − 1
// cycles (Section 3.2), and the other problem kinds have equally explicit
// iteration counts. A server that can price a request before enqueueing
// it does not have to discover overload the expensive way (admit
// everything, let deadlines expire mid-solve); it can compare the
// predicted completion time of the current backlog against each
// request's deadline and shed the ones that cannot finish in time with a
// cheap, immediate 429 + Retry-After.
//
// Two model pieces are involved:
//
//   - EstimateCost maps a core.Problem to (kind, cycles): the closed-form
//     work unit count for that problem kind. The units are per-kind
//     (stream cycles for Design-1 graphs, lattice cells for DTW, table
//     entries for chain ordering, ...), so they are NOT comparable across
//     kinds directly;
//   - the Admitter calibrates a per-kind service rate (units/second, an
//     EWMA over measured solves) that converts those units into predicted
//     seconds, and tracks the total admitted-but-unfinished backlog in
//     seconds.
//
// Admission is optimistic until calibrated: the first request of a kind
// is always admitted (its measured solve seeds the rate), so an idle
// server never 429s a cold start.
package serve

import (
	"fmt"
	"sync"
	"time"

	"systolicdp/internal/align"
	"systolicdp/internal/core"
	"systolicdp/internal/knapsack"
	"systolicdp/internal/spec"
)

// UnpricedKind is the calibration bucket for problems with no
// closed-form pricing arm. Nothing the server can build should land
// here — TestEstimateCostExhaustive pins every registered spec kind to
// a real arm — but a Problem type added without pricing still must not
// sail past admission at ~zero predicted cost: unpriced work is priced
// pessimistically from its own observed per-solve seconds (see
// Admitter.Admit) and counted by dpserve_admit_unpriced_total.
const UnpricedKind = "other"

// EstimateCost returns the closed-form cost model for one problem: a
// calibration kind and the predicted work in that kind's units.
func EstimateCost(p core.Problem) (kind string, cycles float64) {
	switch q := p.(type) {
	case *core.MultistageProblem:
		if q.Design == 1 {
			if sp, err := core.StreamProblemFromGraph(q.Graph); err == nil {
				// Section 3.2: K' matrices over an m-vector stream through
				// the pipelined array in K'·m + m − 1 wall cycles.
				kp, m := float64(len(sp.Ms)), float64(len(sp.V))
				return "graph-stream", kp*m + m - 1
			}
		}
		// Sequential / Design-2 path: one multiply-accumulate per edge.
		total := 0.0
		for _, c := range q.Graph.Matrices() {
			total += float64(c.Rows * c.Cols)
		}
		return "graph", total
	case *core.NodeValuedProblem:
		// Design 3: (N+1)·m iterations over m² candidate transitions per
		// stage pair — count the pairwise comparisons.
		vs := q.Problem.Values
		total := 0.0
		for k := 0; k+1 < len(vs); k++ {
			total += float64(len(vs[k]) * len(vs[k+1]))
		}
		return "nodevalued", total + 1
	case *core.DTWProblem:
		// The warping lattice has |x|·|y| cells, swept by anti-diagonals.
		return "dtw", float64(len(q.X)*len(q.Y)) + 1
	case *core.AlignProblem:
		// Three affine-gap layers over the boundary-inclusive lattice.
		return "align", float64(align.Cells(len(q.X), len(q.Y))) + 1
	case *core.ViterbiProblem:
		// One relaxation per trellis edge plus the final fold over the
		// last stage's states.
		return "viterbi", float64(q.Trellis.Work()) + 1
	case *core.KnapsackProblem:
		// Lawler-Moore: n lockstep waves over a row of Horizon+1 cells.
		return "knapsack", float64(len(q.Jobs)*(knapsack.Horizon(q.Jobs)+1)) + 1
	case *core.ChainOrderingProblem:
		// Equation (6): O(n³) table fill — n³/6 min-plus updates.
		n := float64(len(q.Dims) - 1)
		return "chain", n*n*n/6 + n*n + 1
	case *core.NonserialChainProblem:
		// Equation (40) shape: eliminating variable i scans the product of
		// the three adjacent domains.
		ds := q.Chain.Domains
		total := 0.0
		for i := 0; i+2 < len(ds); i++ {
			total += float64(len(ds[i]) * len(ds[i+1]) * len(ds[i+2]))
		}
		return "nonserial", total + 1
	case *core.MatrixStringProblem:
		total := 0.0
		for i := 0; i+1 < len(q.Matrices); i++ {
			total += float64(q.Matrices[i].Rows * q.Matrices[i].Cols * q.Matrices[i+1].Cols)
		}
		return "matrixstring", total + 1
	default:
		return UnpricedKind, 1
	}
}

// EstimateCostFile prices a decoded spec without building the problem:
// the same (kind, cycles) EstimateCost would return for f.Build(), read
// straight off the File's dimensions. It exists for the routing tier,
// which must price a request from the wire bytes it already decoded for
// hashing — constructing matrices just to count their cells would cost
// more than the estimate is worth. The two functions are kept in lockstep
// by TestEstimateCostFileMatchesProblem; the units must agree because a
// router-side estimate is divided by replica-calibrated rates that are
// denominated in EstimateCost units.
func EstimateCostFile(f *spec.File) (kind string, cycles float64) {
	switch f.Problem {
	case "graph":
		if f.Design == 1 && len(f.Costs) >= 2 {
			last := f.Costs[len(f.Costs)-1]
			if len(last) > 0 && len(last[0]) == 1 {
				// Single-sink stream: K' = stage matrices minus the sink
				// column, m = the sink column's length (core.
				// StreamProblemFromGraph's decomposition).
				kp, m := float64(len(f.Costs)-1), float64(len(last))
				return "graph-stream", kp*m + m - 1
			}
		}
		total := 0.0
		for _, rows := range f.Costs {
			if len(rows) > 0 {
				total += float64(len(rows) * len(rows[0]))
			}
		}
		return "graph", total
	case "nodevalued":
		total := 0.0
		for k := 0; k+1 < len(f.Values); k++ {
			total += float64(len(f.Values[k]) * len(f.Values[k+1]))
		}
		return "nodevalued", total + 1
	case "dtw":
		return "dtw", float64(len(f.X)*len(f.Y)) + 1
	case "chain":
		n := float64(len(f.Dims) - 1)
		return "chain", n*n*n/6 + n*n + 1
	case "nonserial":
		total := 0.0
		for i := 0; i+2 < len(f.Domains); i++ {
			total += float64(len(f.Domains[i]) * len(f.Domains[i+1]) * len(f.Domains[i+2]))
		}
		return "nonserial", total + 1
	case "align":
		return "align", float64(align.Cells(len(f.X), len(f.Y))) + 1
	case "viterbi":
		// The trellis wire form reuses Values for per-stage node costs:
		// edges = sum of adjacent stage-size products, plus the final fold.
		total := 0.0
		for k := 0; k+1 < len(f.Values); k++ {
			total += float64(len(f.Values[k]) * len(f.Values[k+1]))
		}
		if n := len(f.Values); n > 0 {
			total += float64(len(f.Values[n-1]))
		}
		return "viterbi", total + 1
	case "knapsack":
		// Same horizon closed form as knapsack.Horizon, read off the wire
		// fields: min(max due, total processing).
		sumProc, maxDue := 0, 0
		for _, p := range f.Proc {
			sumProc += p
		}
		for _, d := range f.Due {
			if d > maxDue {
				maxDue = d
			}
		}
		horizon := maxDue
		if sumProc < horizon {
			horizon = sumProc
		}
		return "knapsack", float64(len(f.Proc)*(horizon+1)) + 1
	default:
		return UnpricedKind, 1
	}
}

// BatchKind maps an EstimateCost pool kind to the execution-path kind a
// micro-batching replica calibrates under. The batcher observes service
// rates with the batch kernel's Kind() ("dtw-batch", ...) while the
// admission estimate prices requests under the pool kind ("dtw", ...);
// anything comparing an estimate against advertised rates (the router's
// edge shed in particular) must consult both names. The units agree:
// batch kernels observe the sum of their items' EstimateCost units (and
// GraphStreamKernel its stream cycles, which IS its EstimateCost), so a
// single request's cycles divided by a batch rate is well-formed.
// Returns "" for kinds with no batch kernel.
func BatchKind(kind string) string {
	switch kind {
	case "dtw":
		return "dtw-batch"
	case "align":
		return "align-batch"
	case "chain":
		return "chain-batch"
	case "nonserial":
		return "nonserial-batch"
	case "graph-stream":
		return "graph-stream" // batch kernel shares the pool kind name
	default:
		return ""
	}
}

// OverloadError is the admission controller's shed verdict: the backlog's
// predicted completion exceeds the request's deadline, so solving it
// would only produce a late answer. It maps to 429 (errors.Is ErrBusy)
// and carries the model's earliest useful retry time.
type OverloadError struct {
	RetryAfter time.Duration
	Predicted  time.Duration // model-predicted completion had it been admitted
	Deadline   time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: admission shed: predicted completion %v exceeds deadline %v (retry after %v)",
		e.Predicted.Round(time.Millisecond), e.Deadline.Round(time.Millisecond), e.RetryAfter)
}

// Is maps the shed to the 429 backpressure status.
func (e *OverloadError) Is(target error) bool { return target == ErrBusy }

// Reservation is one admitted request's claim on the backlog; Release
// returns it when the request finishes (or fails, or is abandoned).
type Reservation struct {
	a       *Admitter
	seconds float64
	once    sync.Once
}

// Release frees the reservation. Idempotent.
func (r *Reservation) Release() {
	if r == nil || r.a == nil {
		return
	}
	r.once.Do(func() {
		r.a.mu.Lock()
		r.a.outstanding--
		r.a.backlog -= r.seconds
		// Float addition is not associative: releases interleaved in a
		// different order than their admissions can leave a ~1e-18 residue
		// that would ratchet up forever. With no reservations outstanding
		// the backlog is zero by definition, so snap it.
		if r.a.backlog < 0 || r.a.outstanding == 0 {
			r.a.backlog = 0
		}
		r.a.mu.Unlock()
	})
}

// Admitter prices requests with the closed-form cycle model and sheds
// the ones whose predicted completion misses their deadline. With
// enabled=false it still tracks backlog and calibrates rates (so the
// gauges stay meaningful and a later enablement starts warm) but never
// sheds.
type Admitter struct {
	enabled  bool
	headroom float64 // >1 sheds earlier (safety factor on the prediction)
	workers  int     // concurrent service lanes draining the backlog

	mu          sync.Mutex
	backlog     float64            // seconds of admitted-but-unfinished predicted work
	outstanding int                // live reservations backing the backlog
	rates       map[string]float64 // EWMA units/second per kind; 0 = uncalibrated
	// unpricedSecs is the EWMA of observed per-solve WALL SECONDS for
	// UnpricedKind work. Unpriced requests all carry cycles=1, so the
	// shared units/second rate says nothing about how long one takes —
	// a single fast unpriced solve would price every later one at ~zero.
	// Seconds-per-solve is the honest (pessimistic) model when no closed
	// form exists.
	unpricedSecs float64
}

// NewAdmitter builds an Admitter. headroom <= 0 defaults to 1; workers
// <= 0 defaults to 1.
func NewAdmitter(enabled bool, headroom float64, workers int) *Admitter {
	if headroom <= 0 {
		headroom = 1
	}
	if workers < 1 {
		workers = 1
	}
	return &Admitter{
		enabled:  enabled,
		headroom: headroom,
		workers:  workers,
		rates:    make(map[string]float64),
	}
}

// Admit prices a request of the given kind and cost against the current
// backlog and the request's deadline. On admission it returns a
// Reservation the caller must Release when the work finishes. On shed it
// returns an *OverloadError with the Retry-After the model suggests.
func (a *Admitter) Admit(kind string, cycles float64, deadline time.Duration) (*Reservation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	est := 0.0
	if rate := a.rates[kind]; rate > 0 {
		est = cycles / rate
	}
	if kind == UnpricedKind && a.unpricedSecs > est {
		// No closed-form pricing arm: the rate-based estimate is
		// meaningless (every unpriced request carries cycles=1), so take
		// the observed per-solve seconds instead of sailing past the shed
		// at ~zero predicted cost.
		est = a.unpricedSecs
	}
	// Predicted completion: the standing backlog drains across the
	// worker lanes while this request's own solve occupies one of them.
	predicted := a.backlog/float64(a.workers) + est
	if a.enabled && predicted*a.headroom > deadline.Seconds() {
		retry := time.Duration((predicted*a.headroom - deadline.Seconds()) * float64(time.Second))
		if retry < time.Second {
			retry = time.Second
		}
		return nil, &OverloadError{
			RetryAfter: retry,
			Predicted:  time.Duration(predicted * float64(time.Second)),
			Deadline:   deadline,
		}
	}
	a.backlog += est
	a.outstanding++
	return &Reservation{a: a, seconds: est}, nil
}

// Observe feeds one measured solve back into the per-kind rate model:
// cycles of modeled work completed in the given wall seconds. An EWMA
// (α=0.3) keeps the rate tracking drift (engine parallelism changes, CPU
// contention) without whipsawing on one outlier.
func (a *Admitter) Observe(kind string, cycles, seconds float64) {
	if cycles <= 0 || seconds <= 0 {
		return
	}
	sample := cycles / seconds
	a.mu.Lock()
	if cur := a.rates[kind]; cur > 0 {
		a.rates[kind] = 0.7*cur + 0.3*sample
	} else {
		a.rates[kind] = sample
	}
	if kind == UnpricedKind {
		if cur := a.unpricedSecs; cur > 0 {
			a.unpricedSecs = 0.7*cur + 0.3*seconds
		} else {
			a.unpricedSecs = seconds
		}
	}
	a.mu.Unlock()
}

// BacklogSeconds reports the admitted-but-unfinished predicted work.
func (a *Admitter) BacklogSeconds() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.backlog
}

// Rate reports the calibrated units/second for one kind (0 until the
// first Observe).
func (a *Admitter) Rate(kind string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rates[kind]
}

// Rates returns a snapshot of every calibrated per-kind service rate
// (units/second). The map is a copy; mutating it does not affect the
// admitter.
func (a *Admitter) Rates() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.rates))
	for k, v := range a.rates {
		out[k] = v
	}
	return out
}

// Enabled reports whether the admitter sheds (vs. calibrate-only).
func (a *Admitter) Enabled() bool { return a.enabled }

// HeadroomFactor reports the safety factor applied to predictions.
func (a *Admitter) HeadroomFactor() float64 { return a.headroom }

// Workers reports the concurrent service lanes the backlog drains across.
func (a *Admitter) Workers() int { return a.workers }

// setRate pins a kind's calibration directly (tests).
func (a *Admitter) setRate(kind string, rate float64) {
	a.mu.Lock()
	a.rates[kind] = rate
	a.mu.Unlock()
}
