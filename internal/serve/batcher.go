package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obs"
	"systolicdp/internal/pipearray"
)

// Batcher micro-batches concurrent requests of every batchable kind:
// problems of one kind and one shape that arrive within one collection
// window are flushed together through that kind's batch kernel — the
// streamed pipelined array for Design-1 graphs, the stacked anti-diagonal
// wavefront for DTW, the shared diagonal sweep for chain ordering, and
// lockstep elimination for nonserial chains — so B instances pay one
// pipeline fill (and one scheduling round) instead of B. This is the
// serving-side form of the paper's Section 3.2 observation that
// successive instances can be fed with no inter-problem delay,
// generalized from graphs to all wavefront-shaped kinds.
type Batcher struct {
	window   time.Duration // collection window after the first arrival
	maxBatch int           // flush immediately at this many instances
	maxQueue int           // total waiting instances before backpressure

	// kernels is the per-kind batch solver set, in lookup priority order.
	kernels []core.BatchKernel

	// Lock-step engine parallel-compute knobs for streamed graph runs; see
	// systolic.Array.Parallelism / ParallelThreshold. Software wavefront
	// kernels ignore them.
	engineParallelism int
	engineThreshold   int

	mu       sync.Mutex
	pending  map[batchKey]*batch
	inflight int
	closed   bool
	wg       sync.WaitGroup // outstanding flush goroutines

	metrics *Metrics
	admit   *Admitter // calibration sink for measured batch rates; may be nil

	// solveBatch is the batch solve entry point; tests override it to
	// exercise the flush failure paths. Nil means the kernel's own Solve.
	solveBatch func(k core.BatchKernel, ps []core.Problem, parallelism, threshold int) ([]*core.Solution, *core.BatchStats, error)

	// testPreFlush is a test seam that runs in Submit between releasing
	// b.mu and spawning the size-triggered flush goroutine — the window in
	// which Close used to be able to slip past an admitted flush. Nil
	// outside tests.
	testPreFlush func()
}

// batchKey identifies one bucket of co-batchable problems: the kernel's
// execution-path kind plus its kernel-specific shape string. The shape is
// the FULL compatibility profile (for graphs, every stage matrix's
// dimensions — not just the first), so two problems share a bucket only
// when the kernel can actually run them in one sweep.
type batchKey struct{ kind, shape string }

type batch struct {
	key    batchKey
	kernel core.BatchKernel
	items  []*batchItem
	timer  *time.Timer
}

type batchItem struct {
	problem  core.Problem
	units    float64          // EstimateCost work units (admission calibration)
	ctx      context.Context  // the submitter's context; cancelled items are dropped at flush
	ch       chan batchResult // buffered; flush never blocks on delivery
	enqueued time.Time
	span     *obs.ReqSpan // request-lifecycle span; nil-safe
	released bool         // admission slot freed; guarded by Batcher.mu
}

type batchResult struct {
	sol *core.Solution
	err error
}

// NewBatcher builds a micro-batcher. window <= 0 degenerates to immediate
// per-request flushes; maxBatch < 1 is treated as 1.
func NewBatcher(window time.Duration, maxBatch, maxQueue int, m *Metrics) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Batcher{
		window:   window,
		maxBatch: maxBatch,
		maxQueue: maxQueue,
		kernels:  core.BatchKernels(),
		pending:  make(map[batchKey]*batch),
		metrics:  m,
	}
}

// Kernel returns the batch kernel owning p and p's shape bucket, or
// ok=false when no kernel accepts it (the problem stays on the general
// pool). The server's dispatch uses this to pick the admission rate key
// before pricing, so batched work is priced against the batched path's
// calibration, not the pool's.
func (b *Batcher) Kernel(p core.Problem) (core.BatchKernel, string, bool) {
	for _, k := range b.kernels {
		if shape, ok := k.Shape(p); ok {
			return k, shape, true
		}
	}
	return nil, "", false
}

// Submit enqueues one batchable problem and blocks until its batch
// flushes (or ctx is done). Returns ErrBusy when maxQueue instances are
// already waiting and ErrShutdown after Close.
func (b *Batcher) Submit(ctx context.Context, p core.Problem) (*core.Solution, error) {
	kernel, shape, ok := b.Kernel(p)
	if !ok {
		return nil, fmt.Errorf("serve: no batch kernel accepts %T", p)
	}
	key := batchKey{kind: kernel.Kind(), shape: shape}
	_, units := EstimateCost(p)
	item := &batchItem{
		problem:  p,
		units:    units,
		ctx:      ctx,
		ch:       make(chan batchResult, 1),
		enqueued: time.Now(),
		span:     obs.SpanFrom(ctx),
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrShutdown
	}
	if b.inflight >= b.maxQueue {
		b.mu.Unlock()
		return nil, ErrBusy
	}
	b.inflight++
	bt, found := b.pending[key]
	if !found {
		bt = &batch{key: key, kernel: kernel}
		b.pending[key] = bt
		if b.window > 0 && b.maxBatch > 1 {
			bt.timer = time.AfterFunc(b.window, func() { b.flushKey(key, bt) })
		}
	}
	bt.items = append(bt.items, item)
	full := len(bt.items) >= b.maxBatch || b.window <= 0
	if full {
		b.detachLocked(key, bt)
		b.wg.Add(1) // registered under b.mu — see runFlush
	}
	b.mu.Unlock()
	if full {
		if b.testPreFlush != nil {
			b.testPreFlush()
		}
		b.runFlush(bt)
	}

	select {
	case r := <-item.ch:
		return r.sol, r.err
	case <-ctx.Done():
		// Free the admission slot now rather than at the window flush: a
		// burst of cancellations must not hold maxQueue hostage (spurious
		// 429s) for the rest of the collection window. The flush will
		// still see ctx.Err() and skip the item; releaseSlot is idempotent
		// so the two paths cannot double-free.
		b.releaseSlot(item)
		return nil, ctx.Err()
	}
}

// releaseSlot frees item's admission slot exactly once, whichever of the
// cancelling submitter or the flush gets there first.
func (b *Batcher) releaseSlot(it *batchItem) {
	b.mu.Lock()
	if !it.released {
		it.released = true
		b.inflight--
	}
	b.mu.Unlock()
}

// detachLocked removes bt from the pending map and stops its timer.
// Callers hold b.mu.
func (b *Batcher) detachLocked(key batchKey, bt *batch) {
	if b.pending[key] == bt {
		delete(b.pending, key)
	}
	if bt.timer != nil {
		bt.timer.Stop()
	}
}

// flushKey is the timer path: flush bt if it is still pending.
func (b *Batcher) flushKey(key batchKey, bt *batch) {
	b.mu.Lock()
	if b.pending[key] != bt {
		b.mu.Unlock()
		return // already flushed on the size trigger
	}
	b.detachLocked(key, bt)
	b.wg.Add(1)
	b.mu.Unlock()
	b.runFlush(bt)
}

// runFlush runs one flush registered with the WaitGroup. The wg.Add(1)
// MUST have happened under b.mu, before the closed flag could have been
// observed unset: doing it here (after the mutex is released) races
// Close — Close can set closed, find no pending work, and reach wg.Wait
// before the Add lands, which is the documented WaitGroup misuse and
// lets a flush outlive Close.
func (b *Batcher) runFlush(bt *batch) {
	go func() {
		defer b.wg.Done()
		b.flush(bt)
	}()
}

// flush runs one batched kernel sweep and delivers each instance's
// result. Items whose submitter already gave up (ctx done) are dropped at
// assembly: their slots are released immediately, they consume no kernel
// cycles, and no spans are recorded for them — the submitter has long
// since returned ctx.Err(). A batch whose items ALL abandoned skips the
// kernel entirely. Stage accounting for live items: each item's
// queue_wait is its enqueue -> flush start; the flush's batch_assembly is
// the oldest item's wait (what the batching window added to tail
// latency); solve is the shared kernel run.
func (b *Batcher) flush(bt *batch) {
	flushStart := time.Now()
	live := make([]*batchItem, 0, len(bt.items))
	for _, it := range bt.items {
		if it.ctx.Err() != nil {
			continue
		}
		live = append(live, it)
	}
	if abandoned := len(bt.items) - len(live); abandoned > 0 {
		b.metrics.BatchAbandoned.Add(int64(abandoned))
		for _, it := range bt.items {
			if it.ctx.Err() != nil {
				b.releaseSlot(it) // usually a no-op: the submitter released eagerly
			}
		}
	}
	if len(live) == 0 {
		return // nothing left to solve: the kernel never spins up
	}
	ps := make([]core.Problem, len(live))
	earliest := flushStart
	for i, it := range live {
		ps[i] = it.problem
		if it.enqueued.Before(earliest) {
			earliest = it.enqueued
		}
	}
	solveStart := time.Now()
	// The batch run executes in a detached goroutine: a panic here would
	// take down the whole process and strand every waiting submitter, so
	// it is converted to a per-item error instead.
	sols, stats, err := func() (sols []*core.Solution, stats *core.BatchStats, err error) {
		defer func() {
			if r := recover(); r != nil {
				sols, stats = nil, nil
				err = fmt.Errorf("serve: batch solve panicked: %v", r)
			}
		}()
		solve := b.solveBatch
		if solve == nil {
			solve = func(k core.BatchKernel, ps []core.Problem, parallelism, threshold int) ([]*core.Solution, *core.BatchStats, error) {
				return k.Solve(ps, parallelism, threshold)
			}
		}
		return solve(bt.kernel, ps, b.engineParallelism, b.engineThreshold)
	}()
	solveEnd := time.Now()
	b.metrics.Batches.Inc()
	b.metrics.Batched.Add(int64(len(live)))
	b.metrics.BatchOccupancy.With(bt.key.kind).Observe(float64(len(live)))
	b.metrics.BatchAssemblySeconds.Observe(flushStart.Sub(earliest).Seconds())
	if stats != nil {
		if _, stream := bt.kernel.(core.GraphStreamKernel); stream {
			// The engine gauges describe the last streamed ARRAY run; the
			// software wavefront kernels must not clobber them with their
			// fixed single-worker shape.
			b.metrics.EngineWorkers.Set(float64(stats.Workers))
			b.metrics.EngineUtilization.Set(stats.Utilization)
			// The paper's Eq. 9 closed-form PU for this batch's shape next to
			// the measured utilization, so dptop and /metrics scrapes can show
			// measured-vs-predicted without re-deriving the formula.
			b.metrics.EnginePUExpected.Set(stats.PUExpected)
		}
		if b.admit != nil && err == nil {
			// Calibrate the admission model with the measured BATCHED rate,
			// under the kernel's own execution-path kind (satellite: pool-
			// calibrated rates must not price batched work, and vice versa).
			// The streamed graph engine reports exactly the cycle count the
			// closed form predicts, so its measured cycles are the right
			// units; the software kernels report their own sweep models, so
			// for them the batch's work is the sum of the per-item
			// EstimateCost units — dividing by the batch wall time makes the
			// calibrated rate absorb occupancy, which is what prices a single
			// batched request at marginal rather than standalone cost.
			units := float64(stats.Cycles)
			if _, stream := bt.kernel.(core.GraphStreamKernel); !stream {
				units = 0
				for _, it := range live {
					units += it.units
				}
			}
			b.admit.Observe(bt.key.kind, units, solveEnd.Sub(solveStart).Seconds())
		}
	}
	for _, it := range live {
		b.releaseSlot(it)
	}
	for i, it := range live {
		b.metrics.QueueWaitSeconds.Observe(flushStart.Sub(it.enqueued).Seconds())
		it.span.Observe("queue_wait", it.enqueued, flushStart)
		it.span.Observe("batch_assembly", flushStart, solveStart)
		it.span.Observe("solve", solveStart, solveEnd)
		if err != nil {
			it.ch <- batchResult{err: err}
		} else {
			it.ch <- batchResult{sol: sols[i]}
		}
	}
}

// SetAdmitter points batch-solve rate observations at the admission
// controller's calibration. Call before serving.
func (b *Batcher) SetAdmitter(a *Admitter) { b.admit = a }

// SetEngineParallelism configures the lock-step engine's parallel compute
// phase for this batcher's streamed runs: parallelism is the worker-count
// knob (<=1 sequential, negative = GOMAXPROCS), threshold the minimum PE
// count at which it engages (0 = engine default). Call before serving.
func (b *Batcher) SetEngineParallelism(parallelism, threshold int) {
	b.engineParallelism = parallelism
	b.engineThreshold = threshold
}

// StreamCycles exposes the cycle model for a hypothetical flush of n
// instances of graph g — used by tests and capacity planning.
func (b *Batcher) StreamCycles(g *multistage.Graph, n int) (int, error) {
	sp, err := core.StreamProblemFromGraph(g)
	if err != nil {
		return 0, err
	}
	problems := make([]pipearray.StreamProblem, n)
	for i := range problems {
		problems[i] = sp
	}
	st, err := pipearray.NewStream(problems)
	if err != nil {
		return 0, err
	}
	return st.WallCycles(), nil
}

// Close flushes every pending batch, waits for outstanding flushes, and
// rejects subsequent Submits with ErrShutdown.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	remaining := make([]*batch, 0, len(b.pending))
	for key, bt := range b.pending {
		b.detachLocked(key, bt)
		remaining = append(remaining, bt)
	}
	b.wg.Add(len(remaining))
	b.mu.Unlock()
	for _, bt := range remaining {
		b.runFlush(bt)
	}
	b.wg.Wait()
}
