package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"systolicdp/internal/core"
	papermetrics "systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obs"
	"systolicdp/internal/pipearray"
)

// Batcher micro-batches concurrent Design-1 multistage-graph requests:
// instances of identical shape that arrive within one collection window
// are flushed together through the streamed pipelined array
// (core.SolveGraphBatch), so B instances pay one pipeline fill instead of
// B. This is the serving-side form of the paper's Section 3.2 observation
// that successive matrices can be fed with no inter-problem delay.
type Batcher struct {
	window   time.Duration // collection window after the first arrival
	maxBatch int           // flush immediately at this many instances
	maxQueue int           // total waiting instances before backpressure

	// Lock-step engine parallel-compute knobs for the streamed run; see
	// systolic.Array.Parallelism / ParallelThreshold.
	engineParallelism int
	engineThreshold   int

	mu       sync.Mutex
	pending  map[shapeKey]*batch
	inflight int
	closed   bool
	wg       sync.WaitGroup // outstanding flush goroutines

	metrics *Metrics
	admit   *Admitter // calibration sink for measured stream rates; may be nil

	// solveBatch is the batch solve entry point; tests override it to
	// exercise the flush failure paths. Nil means the real engine.
	solveBatch func(gs []*multistage.Graph, parallelism, threshold int) ([]*core.Solution, *core.BatchStats, error)

	// testPreFlush is a test seam that runs in Submit between releasing
	// b.mu and spawning the size-triggered flush goroutine — the window in
	// which Close used to be able to slip past an admitted flush. Nil
	// outside tests.
	testPreFlush func()
}

// shapeKey identifies a stream-compatible problem shape: vector length,
// matrix-string length, and first-matrix row count (pipearray.NewStream's
// batching precondition).
type shapeKey struct{ m, k, rows int }

type batch struct {
	key   shapeKey
	items []*batchItem
	timer *time.Timer
}

type batchItem struct {
	graph    *multistage.Graph
	ctx      context.Context  // the submitter's context; cancelled items are dropped at flush
	ch       chan batchResult // buffered; flush never blocks on delivery
	enqueued time.Time
	span     *obs.ReqSpan // request-lifecycle span; nil-safe
	released bool         // admission slot freed; guarded by Batcher.mu
}

type batchResult struct {
	sol *core.Solution
	err error
}

// NewBatcher builds a micro-batcher. window <= 0 degenerates to immediate
// per-request flushes; maxBatch < 1 is treated as 1.
func NewBatcher(window time.Duration, maxBatch, maxQueue int, m *Metrics) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Batcher{
		window:   window,
		maxBatch: maxBatch,
		maxQueue: maxQueue,
		pending:  make(map[shapeKey]*batch),
		metrics:  m,
	}
}

// Submit enqueues one Design-1 graph and blocks until its batch flushes
// (or ctx is done). Returns ErrBusy when maxQueue instances are already
// waiting and ErrShutdown after Close.
func (b *Batcher) Submit(ctx context.Context, g *multistage.Graph) (*core.Solution, error) {
	sp, err := core.StreamProblemFromGraph(g)
	if err != nil {
		return nil, err
	}
	key := shapeKey{m: len(sp.V), k: len(sp.Ms), rows: sp.Ms[0].Rows}
	item := &batchItem{
		graph:    g,
		ctx:      ctx,
		ch:       make(chan batchResult, 1),
		enqueued: time.Now(),
		span:     obs.SpanFrom(ctx),
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrShutdown
	}
	if b.inflight >= b.maxQueue {
		b.mu.Unlock()
		return nil, ErrBusy
	}
	b.inflight++
	bt, ok := b.pending[key]
	if !ok {
		bt = &batch{key: key}
		b.pending[key] = bt
		if b.window > 0 && b.maxBatch > 1 {
			bt.timer = time.AfterFunc(b.window, func() { b.flushKey(key, bt) })
		}
	}
	bt.items = append(bt.items, item)
	full := len(bt.items) >= b.maxBatch || b.window <= 0
	if full {
		b.detachLocked(key, bt)
		b.wg.Add(1) // registered under b.mu — see runFlush
	}
	b.mu.Unlock()
	if full {
		if b.testPreFlush != nil {
			b.testPreFlush()
		}
		b.runFlush(bt)
	}

	select {
	case r := <-item.ch:
		return r.sol, r.err
	case <-ctx.Done():
		// Free the admission slot now rather than at the window flush: a
		// burst of cancellations must not hold maxQueue hostage (spurious
		// 429s) for the rest of the collection window. The flush will
		// still see ctx.Err() and skip the item; releaseSlot is idempotent
		// so the two paths cannot double-free.
		b.releaseSlot(item)
		return nil, ctx.Err()
	}
}

// releaseSlot frees item's admission slot exactly once, whichever of the
// cancelling submitter or the flush gets there first.
func (b *Batcher) releaseSlot(it *batchItem) {
	b.mu.Lock()
	if !it.released {
		it.released = true
		b.inflight--
	}
	b.mu.Unlock()
}

// detachLocked removes bt from the pending map and stops its timer.
// Callers hold b.mu.
func (b *Batcher) detachLocked(key shapeKey, bt *batch) {
	if b.pending[key] == bt {
		delete(b.pending, key)
	}
	if bt.timer != nil {
		bt.timer.Stop()
	}
}

// flushKey is the timer path: flush bt if it is still pending.
func (b *Batcher) flushKey(key shapeKey, bt *batch) {
	b.mu.Lock()
	if b.pending[key] != bt {
		b.mu.Unlock()
		return // already flushed on the size trigger
	}
	b.detachLocked(key, bt)
	b.wg.Add(1)
	b.mu.Unlock()
	b.runFlush(bt)
}

// runFlush runs one flush registered with the WaitGroup. The wg.Add(1)
// MUST have happened under b.mu, before the closed flag could have been
// observed unset: doing it here (after the mutex is released) races
// Close — Close can set closed, find no pending work, and reach wg.Wait
// before the Add lands, which is the documented WaitGroup misuse and
// lets a flush outlive Close.
func (b *Batcher) runFlush(bt *batch) {
	go func() {
		defer b.wg.Done()
		b.flush(bt)
	}()
}

// flush runs one streamed batch and delivers each instance's result.
// Items whose submitter already gave up (ctx done) are dropped at
// assembly: their slots are released immediately, they consume no array
// cycles, and no spans are recorded for them — the submitter has long
// since returned ctx.Err(). Stage accounting for live items: each item's
// queue_wait is its enqueue -> flush start; the flush's batch_assembly is
// the oldest item's wait (what the batching window added to tail
// latency); solve is the shared streamed array run.
func (b *Batcher) flush(bt *batch) {
	flushStart := time.Now()
	live := make([]*batchItem, 0, len(bt.items))
	for _, it := range bt.items {
		if it.ctx.Err() != nil {
			continue
		}
		live = append(live, it)
	}
	if abandoned := len(bt.items) - len(live); abandoned > 0 {
		b.metrics.BatchAbandoned.Add(int64(abandoned))
		for _, it := range bt.items {
			if it.ctx.Err() != nil {
				b.releaseSlot(it) // usually a no-op: the submitter released eagerly
			}
		}
	}
	if len(live) == 0 {
		return // nothing left to solve: the array never spins up
	}
	gs := make([]*multistage.Graph, len(live))
	earliest := flushStart
	for i, it := range live {
		gs[i] = it.graph
		if it.enqueued.Before(earliest) {
			earliest = it.enqueued
		}
	}
	solveStart := time.Now()
	// The batch run executes in a detached goroutine: a panic here would
	// take down the whole process and strand every waiting submitter, so
	// it is converted to a per-item error instead.
	sols, stats, err := func() (sols []*core.Solution, stats *core.BatchStats, err error) {
		defer func() {
			if r := recover(); r != nil {
				sols, stats = nil, nil
				err = fmt.Errorf("serve: batch solve panicked: %v", r)
			}
		}()
		solve := b.solveBatch
		if solve == nil {
			solve = core.SolveGraphBatchParallel
		}
		return solve(gs, b.engineParallelism, b.engineThreshold)
	}()
	solveEnd := time.Now()
	b.metrics.Batches.Inc()
	b.metrics.Batched.Add(int64(len(live)))
	b.metrics.BatchOccupancy.Observe(float64(len(live)))
	b.metrics.BatchAssemblySeconds.Observe(flushStart.Sub(earliest).Seconds())
	if stats != nil {
		b.metrics.EngineWorkers.Set(float64(stats.Workers))
		b.metrics.EngineUtilization.Set(stats.Utilization)
		// Publish the paper's Eq. 9 closed-form PU for this batch's shape
		// (n = k+1 stages of m-vectors) next to the measured utilization,
		// so dptop and /metrics scrapes can show measured-vs-predicted
		// without re-deriving the formula.
		b.metrics.EnginePUExpected.Set(papermetrics.PUEq9(bt.key.k+1, bt.key.m))
		if b.admit != nil && err == nil {
			// Calibrate the admission model with the measured stream rate:
			// the engine reports exactly the cycle count the closed form
			// predicts, so cycles/second here prices future Design-1 work.
			b.admit.Observe("graph-stream", float64(stats.Cycles), solveEnd.Sub(solveStart).Seconds())
		}
	}
	for _, it := range live {
		b.releaseSlot(it)
	}
	for i, it := range live {
		b.metrics.QueueWaitSeconds.Observe(flushStart.Sub(it.enqueued).Seconds())
		it.span.Observe("queue_wait", it.enqueued, flushStart)
		it.span.Observe("batch_assembly", flushStart, solveStart)
		it.span.Observe("solve", solveStart, solveEnd)
		if err != nil {
			it.ch <- batchResult{err: err}
		} else {
			it.ch <- batchResult{sol: sols[i]}
		}
	}
}

// SetAdmitter points batch-solve rate observations at the admission
// controller's calibration. Call before serving.
func (b *Batcher) SetAdmitter(a *Admitter) { b.admit = a }

// SetEngineParallelism configures the lock-step engine's parallel compute
// phase for this batcher's streamed runs: parallelism is the worker-count
// knob (<=1 sequential, negative = GOMAXPROCS), threshold the minimum PE
// count at which it engages (0 = engine default). Call before serving.
func (b *Batcher) SetEngineParallelism(parallelism, threshold int) {
	b.engineParallelism = parallelism
	b.engineThreshold = threshold
}

// StreamCycles exposes the cycle model for a hypothetical flush of n
// instances of graph g — used by tests and capacity planning.
func (b *Batcher) StreamCycles(g *multistage.Graph, n int) (int, error) {
	sp, err := core.StreamProblemFromGraph(g)
	if err != nil {
		return 0, err
	}
	problems := make([]pipearray.StreamProblem, n)
	for i := range problems {
		problems[i] = sp
	}
	st, err := pipearray.NewStream(problems)
	if err != nil {
		return 0, err
	}
	return st.WallCycles(), nil
}

// Close flushes every pending batch, waits for outstanding flushes, and
// rejects subsequent Submits with ErrShutdown.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	remaining := make([]*batch, 0, len(b.pending))
	for key, bt := range b.pending {
		b.detachLocked(key, bt)
		remaining = append(remaining, bt)
	}
	b.wg.Add(len(remaining))
	b.mu.Unlock()
	for _, bt := range remaining {
		b.runFlush(bt)
	}
	b.wg.Wait()
}
