package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", &Response{Cost: 1})
	c.Put("b", &Response{Cost: 2})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	// "a" was just touched, so inserting "c" evicts "b".
	c.Put("c", &Response{Cost: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be cached")
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", &Response{Cost: 1})
	c.Put("a", &Response{Cost: 9})
	if r, _ := c.Get("a"); r.Cost != 9 {
		t.Errorf("cost %v, want 9", r.Cost)
	}
	if c.Len() != 1 {
		t.Errorf("len %d, want 1", c.Len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := NewLRU(-1)
	c.Put("a", &Response{})
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache should never hit")
	}
}

// Concurrent identical keys run fn exactly once; everyone gets the result.
func TestFlightCoalesces(t *testing.T) {
	f := newFlight()
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared, err := f.do(context.Background(), "k", func() (*Response, error) {
				calls.Add(1)
				<-release
				return &Response{Cost: 42}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Cost != 42 {
				t.Errorf("cost %v", resp.Cost)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Give all callers time to join the flight before releasing fn.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("%d callers shared, want %d", got, n-1)
	}
}

// A waiter whose context expires abandons the flight without failing it.
func TestFlightWaiterTimeout(t *testing.T) {
	f := newFlight()
	release := make(chan struct{})
	go f.do(context.Background(), "k", func() (*Response, error) {
		<-release
		return &Response{Cost: 7}, nil
	})
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, _, err := f.do(ctx, "k", nil); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	close(release)
	// The original flight still completes for a fresh waiter that joins
	// before fn finishes or starts a new call after.
	resp, _, err := f.do(context.Background(), "k", func() (*Response, error) {
		return &Response{Cost: 7}, nil
	})
	if err != nil || resp.Cost != 7 {
		t.Errorf("resp %v err %v", resp, err)
	}
}

// Regression: a panicking fn used to strand every waiter forever (done
// was only closed after the map delete, which the panic skipped) and
// permanently wedge the key. Now the panic surfaces as an error and the
// key is immediately reusable.
func TestFlightPanicUnwedgesKeyAndWaiters(t *testing.T) {
	f := newFlight()
	started := make(chan struct{})
	boom := make(chan struct{})
	var wg sync.WaitGroup
	const waiters = 3
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.do(context.Background(), "k", func() (*Response, error) {
				close(started)
				<-boom
				panic("solver exploded")
			})
		}(i)
	}
	<-started
	close(boom)

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters still stranded after fn panicked")
	}
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Errorf("waiter %d err = %v, want panic-derived error", i, err)
		}
	}

	// The key must not be wedged: a fresh call runs a fresh fn.
	resp, shared, err := f.do(context.Background(), "k", func() (*Response, error) {
		return &Response{Cost: 11}, nil
	})
	if err != nil || shared || resp.Cost != 11 {
		t.Errorf("post-panic call: resp %+v shared %v err %v, want fresh successful run", resp, shared, err)
	}
}
