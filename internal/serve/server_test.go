package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/spec"
)

// postSpec posts a raw spec body and returns status, decoded response (on
// 200), body text, and the cache header.
func postSpec(t *testing.T, url string, body string) (int, *Response, string, string) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var r *Response
	if resp.StatusCode == http.StatusOK {
		r = &Response{}
		if err := json.Unmarshal(raw, r); err != nil {
			t.Fatalf("bad response body %q: %v", raw, err)
		}
	}
	return resp.StatusCode, r, string(raw), resp.Header.Get("X-Dpserve-Cache")
}

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// graphSpec builds a distinct 1-4-4-1 Design-1 graph spec; salt perturbs
// one edge cost so specs hash differently but share a stream shape.
func graphSpec(salt int) string {
	return fmt.Sprintf(`{"problem":"graph","design":1,"costs":[
		[[1,2,3,%d]],
		[[4,5,6,7],[7,8,9,1],[1,1,2,5],[3,2,8,6]],
		[[2],[3],[4],[5]]]}`, 4+salt)
}

// The served answer must match what dpsolve -spec computes for the same
// file: core.Solve on the parsed spec.
func TestServeMatchesDirectSolve(t *testing.T) {
	s := New(Config{BatchWindow: -1}) // immediate flushes; no batching delay
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		graphSpec(0),
		`{"problem":"chain","dims":[30,35,15,5,10,20,25]}`,
		`{"problem":"nodevalued","values":[[0,10],[5,20],[5,0]],"cost":"absdiff"}`,
		`{"problem":"nonserial","domains":[[1,2],[1,2],[1,2],[1,2]],"cost":"span"}`,
		`{"problem":"dtw","x":[0,1,2,3],"y":[0,1,1,2,3]}`,
	} {
		status, got, raw, _ := postSpec(t, ts.URL, body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, status, raw)
		}
		p, err := spec.Parse([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Errorf("%s: served cost %v, direct cost %v", body, got.Cost, want.Cost)
		}
		if got.Class != want.Class.String() {
			t.Errorf("%s: class %q, want %q", body, got.Class, want.Class)
		}
		if len(got.Path) != len(want.Path) {
			t.Errorf("%s: path %v, want %v", body, got.Path, want.Path)
		}
	}
}

// Acceptance: concurrent identical requests produce ONE underlying solve
// (singleflight), later identical requests hit the LRU, and /metrics
// reflects both.
func TestServeSingleflightAndCache(t *testing.T) {
	s := New(Config{BatchWindow: 250 * time.Millisecond, BatchMax: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := graphSpec(0)
	const n = 4
	var wg sync.WaitGroup
	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, r, raw, _ := postSpec(t, ts.URL, body)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, raw)
				return
			}
			costs[i] = r.Cost
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if costs[i] != costs[0] {
			t.Errorf("cost %d = %v, want %v", i, costs[i], costs[0])
		}
	}
	// One underlying solve: the batcher saw exactly one instance.
	if got := s.Metrics().Batched.Value(); got != 1 {
		t.Errorf("underlying solves = %d, want 1 (singleflight)", got)
	}
	if got := s.Metrics().FlightShare.Value(); got != n-1 {
		t.Errorf("coalesced waiters = %d, want %d", got, n-1)
	}
	// Regression: only the flight leader solves, so only the leader may
	// count a cache miss — waiters used to inflate this to n.
	if got := s.Metrics().CacheMisses.Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1 (leader only)", got)
	}
	if got := s.Metrics().FlightWait.Value(); got != n-1 {
		t.Errorf("flight waits = %d, want %d", got, n-1)
	}

	// A later identical request is a pure cache hit.
	status, _, _, cacheHdr := postSpec(t, ts.URL, body)
	if status != http.StatusOK || cacheHdr != "hit" {
		t.Errorf("repeat request: status %d cache %q, want 200 hit", status, cacheHdr)
	}
	if got := s.Metrics().CacheHits.Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}

	mt := metricsText(t, ts.URL)
	for _, want := range []string{
		`dpserve_requests_total{problem="graph"} 5`,
		"dpserve_cache_hits_total 1",
		"dpserve_cache_misses_total 1",
		fmt.Sprintf("dpserve_singleflight_shared_total %d", n-1),
		fmt.Sprintf("dpserve_flight_wait_total %d", n-1),
		"dpserve_batched_requests_total 1",
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, mt)
		}
	}
}

// Acceptance: concurrent DISTINCT Design-1 graph requests of one shape are
// solved in a single StreamPipelined batch, and /metrics reflects it.
func TestServeMicroBatchesConcurrentGraphs(t *testing.T) {
	s := New(Config{BatchWindow: 250 * time.Millisecond, BatchMax: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := graphSpec(i)
			status, r, raw, _ := postSpec(t, ts.URL, body)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, raw)
				return
			}
			p, _ := spec.Parse([]byte(body))
			want, _ := core.Solve(p)
			if math.Abs(r.Cost-want.Cost) > 1e-9 {
				t.Errorf("graph %d: served %v, want %v", i, r.Cost, want.Cost)
			}
		}(i)
	}
	wg.Wait()
	if got := s.Metrics().Batches.Value(); got != 1 {
		t.Errorf("stream flushes = %d, want 1 (micro-batch)", got)
	}
	if got := s.Metrics().Batched.Value(); got != n {
		t.Errorf("batched instances = %d, want %d", got, n)
	}
	mt := metricsText(t, ts.URL)
	for _, want := range []string{
		"dpserve_batches_total 1",
		fmt.Sprintf("dpserve_batched_requests_total %d", n),
		fmt.Sprintf(`dpserve_batch_occupancy_sum{kind="graph-stream"} %d`, n),
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, mt)
		}
	}
}

// A full admission queue answers 429 and counts the rejection.
func TestServeBackpressure429(t *testing.T) {
	const queue = 2
	s := New(Config{QueueSize: queue, BatchWindow: time.Second, BatchMax: 64})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill the batcher's admission quota; the window keeps them pending.
	admitted := make(chan int, queue)
	for i := 0; i < queue; i++ {
		go func(i int) {
			status, _, _, _ := postSpec(t, ts.URL, graphSpec(i))
			admitted <- status
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	status, _, raw, _ := postSpec(t, ts.URL, graphSpec(99))
	if status != http.StatusTooManyRequests {
		t.Errorf("over-quota status = %d (%s), want 429", status, raw)
	}
	if got := s.Metrics().Rejected.Value(); got < 1 {
		t.Errorf("rejected counter = %d, want >= 1", got)
	}
	for i := 0; i < queue; i++ {
		if st := <-admitted; st != http.StatusOK {
			t.Errorf("admitted request got %d, want 200", st)
		}
	}
}

// An expired per-request budget answers 504 and counts the timeout.
func TestServeTimeout504(t *testing.T) {
	s := New(Config{Timeout: time.Nanosecond, BatchWindow: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, raw, _ := postSpec(t, ts.URL, `{"problem":"chain","dims":[5,6,7]}`)
	if status != http.StatusGatewayTimeout {
		t.Errorf("status = %d (%s), want 504", status, raw)
	}
	if got := s.Metrics().Timeouts.Value(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// Bad requests answer 400.
func TestServeBadSpec400(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{not json`,
		`{"problem":"warp-drive"}`,
		`{"problem":"chain","dims":[5]}`,
	} {
		status, _, _, _ := postSpec(t, ts.URL, body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, status)
		}
	}
	if got := s.Metrics().Errors.Value(); got != 3 {
		t.Errorf("errors = %d, want 3", got)
	}
}

// Graceful shutdown flushes pending batches (waiters get answers, not
// errors) and flips /healthz and /solve to 503.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(Config{BatchWindow: 10 * time.Second, BatchMax: 64}) // window never fires
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			status, _, _, _ := postSpec(t, ts.URL, graphSpec(i))
			done <- status
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // both pending in the batcher
	s.Close()
	for i := 0; i < 2; i++ {
		select {
		case st := <-done:
			if st != http.StatusOK {
				t.Errorf("drained request got %d, want 200", st)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("shutdown stranded an in-flight request")
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close = %d, want 503", resp.StatusCode)
	}
	status, _, _, _ := postSpec(t, ts.URL, graphSpec(9))
	if status != http.StatusServiceUnavailable {
		t.Errorf("solve after Close = %d, want 503", status)
	}
}

// Regression: a general-pool job whose context expired while it sat in
// the queue must be skipped at pickup — counted in
// dpserve_expired_skipped_total, with no queue-wait or solve stage
// recorded — instead of being handed to the solver after its submitter
// already gave up.
func TestRunJobSkipsExpiredContext(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before pickup, like a deadline passing in-queue
	j := &job{
		problem:  &core.ChainOrderingProblem{Dims: []int{5, 6, 7}},
		ctx:      ctx,
		done:     make(chan jobResult, 1),
		enqueued: time.Now(),
	}
	before := s.metrics.QueueWaitSeconds.Count()
	s.runJob(j)
	r := <-j.done
	if !errors.Is(r.err, context.Canceled) {
		t.Errorf("skipped job err = %v, want context.Canceled", r.err)
	}
	if r.sol != nil {
		t.Errorf("skipped job produced a solution: %+v", r.sol)
	}
	if got := s.metrics.ExpiredSkipped.Value(); got != 1 {
		t.Errorf("expired skips = %d, want 1", got)
	}
	if got := s.metrics.QueueWaitSeconds.Count(); got != before {
		t.Errorf("queue-wait observations = %d, want %d (dead work must not pollute stage latencies)", got, before)
	}

	// A live job still solves and does record its stages.
	j2 := &job{
		problem:  &core.ChainOrderingProblem{Dims: []int{5, 6, 7}},
		ctx:      context.Background(),
		done:     make(chan jobResult, 1),
		enqueued: time.Now(),
	}
	s.runJob(j2)
	if r := <-j2.done; r.err != nil || r.sol == nil {
		t.Errorf("live job: sol=%v err=%v", r.sol, r.err)
	}
	if got := s.metrics.ExpiredSkipped.Value(); got != 1 {
		t.Errorf("live job wrongly counted as expired (skips = %d)", got)
	}
	var sb strings.Builder
	s.metrics.Write(&sb)
	if !strings.Contains(sb.String(), "dpserve_expired_skipped_total 1") {
		t.Errorf("/metrics missing expired-skip counter:\n%s", sb.String())
	}
}

// Healthz and method guards.
func TestServeHealthzAndMethods(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve = %d, want 405", resp.StatusCode)
	}
}
