package serve

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/check"
	"systolicdp/internal/core"
	"systolicdp/internal/spec"
)

// Every kind the generator can emit must hit a real pricing arm: the
// (UnpricedKind, 1) default is a last-resort fallback for Problem types
// added without a cost model, not a bucket any registered spec kind is
// allowed to land in. This is the exhaustiveness guard the admit.go
// default arms point at.
func TestEstimateCostExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, kind := range check.Kinds() {
		for trial := 0; trial < 25; trial++ {
			in := check.GenKind(rng, kind, check.GenConfig{})
			if err := in.File.Validate(); err != nil {
				t.Fatalf("kind %s trial %d: generated invalid spec: %v", kind, trial, err)
			}
			p, err := in.File.Build()
			if err != nil {
				t.Fatalf("kind %s trial %d: build: %v", kind, trial, err)
			}
			pk, cycles := EstimateCost(p)
			if pk == UnpricedKind {
				t.Fatalf("kind %s trial %d: EstimateCost fell through to the %q default — add a pricing arm",
					kind, trial, UnpricedKind)
			}
			if cycles < 1 {
				t.Fatalf("kind %s trial %d: EstimateCost cycles = %g, want >= 1", kind, trial, cycles)
			}
			fk, fcycles := EstimateCostFile(&in.File)
			if fk == UnpricedKind {
				t.Fatalf("kind %s trial %d: EstimateCostFile fell through to the %q default — add a pricing arm",
					kind, trial, UnpricedKind)
			}
			if fk != pk || math.Abs(fcycles-cycles) > 1e-9 {
				t.Fatalf("kind %s trial %d: EstimateCostFile = (%s, %g), EstimateCost = (%s, %g)",
					kind, trial, fk, fcycles, pk, cycles)
			}
		}
	}
}

// Degenerate shapes the random generator only hits probabilistically:
// the pricing lockstep must hold on them deterministically.
func TestEstimateCostDegenerateShapes(t *testing.T) {
	cases := []struct {
		name string
		file spec.File
	}{
		{"align-empty-x", spec.File{Problem: "align", Y: []float64{1, 2}, GapOpen: 2, GapExtend: 1}},
		{"align-empty-y", spec.File{Problem: "align", X: []float64{3}, GapOpen: 2, GapExtend: 1}},
		{"align-both-empty", spec.File{Problem: "align", GapOpen: 1, GapExtend: 1}},
		{"viterbi-single-stage", spec.File{Problem: "viterbi", Values: [][]float64{{4, 1, 3}}}},
		{"knapsack-zero-weight", spec.File{Problem: "knapsack", Proc: []int{2, 1}, Due: []int{3, 2}, Weights: []float64{0, 0}}},
		{"knapsack-no-jobs", spec.File{Problem: "knapsack"}},
		{"knapsack-zero-length-jobs", spec.File{Problem: "knapsack", Proc: []int{0, 0}, Due: []int{1, 5}, Weights: []float64{2, 3}}},
	}
	for _, tc := range cases {
		if err := tc.file.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", tc.name, err)
		}
		p, err := tc.file.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", tc.name, err)
		}
		pk, cycles := EstimateCost(p)
		fk, fcycles := EstimateCostFile(&tc.file)
		if pk == UnpricedKind || fk != pk || math.Abs(fcycles-cycles) > 1e-9 {
			t.Fatalf("%s: EstimateCostFile = (%s, %g), EstimateCost = (%s, %g)",
				tc.name, fk, fcycles, pk, cycles)
		}
		if _, err := core.Solve(p); err != nil {
			t.Fatalf("%s: Solve: %v", tc.name, err)
		}
	}
}

// unregisteredProblem is a Problem type with no EstimateCost arm.
type unregisteredProblem struct{}

func (unregisteredProblem) Classify() core.Class { return core.Class{} }
func (unregisteredProblem) Describe() string     { return "unregistered" }

func TestEstimateCostUnknownProblem(t *testing.T) {
	kind, cycles := EstimateCost(unregisteredProblem{})
	if kind != UnpricedKind || cycles != 1 {
		t.Fatalf("EstimateCost(unregistered) = (%s, %g), want (%s, 1)", kind, cycles, UnpricedKind)
	}
}

// Regression test for the unpriced-kind admission hole: every request
// with no pricing arm carries cycles=1, so once ANY unpriced solve
// calibrated the shared units/second rate, later unpriced requests were
// estimated at cycles/rate ≈ 0 seconds and sailed past admission no
// matter how large the backlog grew. Pre-fix, the third Admit below was
// accepted (est ≈ 1e-6 s each, predicted backlog never approached the
// deadline); post-fix the Admitter prices unpriced work at its observed
// per-solve seconds and sheds at 2× capacity.
func TestUnpricedKindShedAtOverload(t *testing.T) {
	a := NewAdmitter(true, 1, 1)
	// A fast early solve poisons the rate: 1 cycle / 1µs = 1e6 units/s.
	a.setRate(UnpricedKind, 1e6)
	// One observed unpriced solve took a full second.
	a.Observe(UnpricedKind, 1, 1.0)

	deadline := 2 * time.Second
	r1, err := a.Admit(UnpricedKind, 1, deadline)
	if err != nil {
		t.Fatalf("first unpriced Admit shed: %v", err)
	}
	defer r1.Release()
	r2, err := a.Admit(UnpricedKind, 1, deadline)
	if err != nil {
		t.Fatalf("second unpriced Admit shed: %v", err)
	}
	defer r2.Release()
	// Backlog now holds 2 s of predicted work against a 2 s deadline: a
	// third 1 s request cannot finish in time and must shed.
	r3, err := a.Admit(UnpricedKind, 1, deadline)
	if err == nil {
		r3.Release()
		t.Fatal("third unpriced Admit accepted at 2x capacity; unpriced work is sailing past admission")
	}
	var oe *OverloadError
	if !asOverload(err, &oe) {
		t.Fatalf("shed error = %T %v, want *OverloadError", err, err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("shed RetryAfter = %v, want > 0", oe.RetryAfter)
	}

	// Releasing the backlog reopens admission.
	r1.Release()
	r2.Release()
	r4, err := a.Admit(UnpricedKind, 1, deadline)
	if err != nil {
		t.Fatalf("Admit after release shed: %v", err)
	}
	r4.Release()
}

func asOverload(err error, target **OverloadError) bool {
	oe, ok := err.(*OverloadError)
	if ok {
		*target = oe
	}
	return ok
}

// The unpriced counter must reach the exposition endpoint.
func TestAdmitUnpricedMetricExposed(t *testing.T) {
	m := NewMetrics()
	m.AdmitUnpriced.Inc()
	var b strings.Builder
	m.Write(&b)
	if !strings.Contains(b.String(), "dpserve_admit_unpriced_total 1") {
		t.Fatalf("metrics output missing dpserve_admit_unpriced_total:\n%s", b.String())
	}
}
