package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Stress the cache and singleflight together under the race detector:
// many goroutines interleave LRU.Get/Put with flight.do on a small,
// colliding key space, including leaders that fail or panic. The
// assertions are (a) no data race, (b) no lost wakeup — every do returns
// — and (c) fn's result is delivered intact.
func TestStressCacheFlightCollidingKeys(t *testing.T) {
	lru := NewLRU(8)
	fl := newFlight()
	keys := []string{"a", "b", "c", "d"}

	const workers = 16
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				key := keys[rng.Intn(len(keys))]
				switch rng.Intn(4) {
				case 0:
					lru.Get(key)
				case 1:
					lru.Put(key, &Response{Cost: float64(i)})
				case 2:
					resp, _, err := fl.do(context.Background(), key, func() (*Response, error) {
						if rng.Intn(8) == 0 {
							return nil, fmt.Errorf("transient")
						}
						r := &Response{Cost: 42}
						lru.Put(key, r)
						return r, nil
					})
					if err == nil && resp.Cost != 42 {
						t.Errorf("flight returned cost %v, want 42", resp.Cost)
					}
				default:
					// Panicking leaders must neither wedge the key nor
					// leak a waiter; waiters see an error.
					fl.do(context.Background(), key, func() (*Response, error) {
						panic("stress panic")
					})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress workers stuck: lost wakeup in flight/cache interleaving")
	}
}

// goroutineBaseline samples the goroutine count after a settle loop so
// leak checks don't flake on runtime bookkeeping goroutines.
func goroutinesSettleTo(baseline int, d time.Duration) (int, bool) {
	deadline := time.Now().Add(d)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Server shutdown must not leak goroutines: after serving a burst of
// requests (batched solves, singleflight waits, cached hits) and
// closing, the goroutine count returns to its pre-server baseline.
func TestServerShutdownGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{BatchWindow: 10 * time.Millisecond, BatchMax: 8})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A mix of identical (coalesced) and distinct specs.
			postSpec(t, ts.URL, graphSpec(i%3))
		}(i)
	}
	wg.Wait()

	ts.Close()
	s.Close()

	if n, ok := goroutinesSettleTo(baseline, 5*time.Second); !ok {
		buf := make([]byte, 1<<16)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked after shutdown: %d > baseline %d\n%s", n, baseline, buf)
	}
}

// Batcher drain must not leak its flush goroutines or strand submitters:
// Close flushes everything, and afterwards the goroutine count settles
// back to baseline while every submitter has returned.
func TestBatcherDrainGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	b := NewBatcher(50*time.Millisecond, 64, 100, NewMetrics())
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), batchGraph(int64(i+1), 4, 3)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	// Close while the window is still open: drain must flush the pending
	// batch rather than strand the six submitters.
	time.Sleep(10 * time.Millisecond)
	b.Close()
	wg.Wait()

	if _, err := b.Submit(context.Background(), batchGraph(9, 4, 3)); err != ErrShutdown {
		t.Errorf("post-close submit err = %v, want ErrShutdown", err)
	}
	if n, ok := goroutinesSettleTo(baseline, 5*time.Second); !ok {
		buf := make([]byte, 1<<16)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s", n, baseline, buf)
	}
}

// The flight panic path under race: concurrent waiters on a panicking
// leader all get errors and the process survives (pre-fix this crashed
// the binary, post-fix it must also be race-clean).
func TestStressFlightPanicConcurrent(t *testing.T) {
	fl := newFlight()
	var wg sync.WaitGroup
	for round := 0; round < 20; round++ {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _, err := fl.do(context.Background(), "k", func() (*Response, error) {
					panic("round boom")
				})
				if err != nil && !strings.Contains(err.Error(), "panic") {
					t.Errorf("err = %v, want panic-derived", err)
				}
			}()
		}
	}
	wg.Wait()
}
