package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float value (atomic bit-pattern store).
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus-style:
// bucket i counts observations <= Bounds[i], plus an implicit +Inf).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  int64
}

// NewHistogram builds a histogram over ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.sum += x
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the bucket containing the target rank, the same estimator
// Prometheus's histogram_quantile applies server-side. The first bucket
// interpolates from 0 (observations here are non-negative latencies), and
// ranks landing in the +Inf bucket clamp to the highest finite bound.
// With no observations it returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	cum := 0.0
	lo := 0.0
	for i, b := range h.bounds {
		c := float64(h.counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return lo + frac*(b-lo)
		}
		cum += c
		lo = b
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// write renders the histogram in Prometheus text exposition format,
// preceded by its # TYPE metadata line. A histogram family owns exactly
// the _bucket/_sum/_count series — no other sample may use its name,
// which is what strict exposition parsers enforce.
func (h *Histogram) write(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// writeCounter and writeGauge render one single-series family with its
// # TYPE line.
func writeCounter(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

func writeGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
}

func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// Metrics is the server's instrumentation: plain stdlib counters and
// histograms in the spirit of internal/metrics, exported as Prometheus
// text format by the /metrics handler.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]*Counter // by problem kind

	CacheHits      Counter
	CacheMisses    Counter // flight leaders that actually solved (not coalesced waiters)
	FlightShare    Counter // requests coalesced onto another request's solve
	FlightWait     Counter // waits on an in-flight solve, successful or not
	Rejected       Counter // 429s from a full queue
	Timeouts       Counter // server-side deadline expiries (504s)
	ClientCancel   Counter // client disconnects before a result (499s)
	Errors         Counter // solver / bad-spec failures
	Batches        Counter // micro-batch flushes
	Batched        Counter // requests that went through a micro-batch
	BatchAbandoned Counter // cancelled items dropped at flush assembly
	ExpiredSkipped Counter // general-pool jobs skipped at pickup (context already done)
	AdmitShed      Counter // requests shed by cycle-model admission control (429 + Retry-After)

	EngineWorkers     Gauge // compute-phase workers of the last streamed run
	EngineUtilization Gauge // measured PU of the last streamed run

	BatchOccupancy *Histogram // instances per flush
	SolveSeconds   *Histogram // end-to-end solve latency

	// Per-stage latency histograms: where a request's time actually went.
	QueueWaitSeconds     *Histogram // enqueue -> worker pickup / batch flush
	BatchAssemblySeconds *Histogram // first batch arrival -> flush (per flush)

	QueueDepth          func() int     // sampled at render time; nil reads as 0
	AdmitBacklogSeconds func() float64 // admission controller's estimated backlog; nil reads as 0
}

// NewMetrics builds the metric set with the server's bucket layout.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:             make(map[string]*Counter),
		BatchOccupancy:       NewHistogram(1, 2, 4, 8, 16, 32, 64),
		SolveSeconds:         NewHistogram(0.0001, 0.001, 0.01, 0.1, 1, 10),
		QueueWaitSeconds:     NewHistogram(0.00001, 0.0001, 0.001, 0.01, 0.1, 1),
		BatchAssemblySeconds: NewHistogram(0.00001, 0.0001, 0.001, 0.01, 0.1, 1),
	}
}

// Request counts one request of the given problem kind.
func (m *Metrics) Request(kind string) {
	m.mu.Lock()
	c, ok := m.requests[kind]
	if !ok {
		c = &Counter{}
		m.requests[kind] = c
	}
	m.mu.Unlock()
	c.Inc()
}

// Requests returns the count for one problem kind.
func (m *Metrics) Requests(kind string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.requests[kind]; ok {
		return c.Value()
	}
	return 0
}

// Write renders all metrics in Prometheus text exposition format, in a
// deterministic order.
func (m *Metrics) Write(w io.Writer) {
	m.mu.Lock()
	kinds := make([]string, 0, len(m.requests))
	for k := range m.requests {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	counts := make([]int64, len(kinds))
	for i, k := range kinds {
		counts[i] = m.requests[k].Value()
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE dpserve_requests_total counter\n")
	for i, k := range kinds {
		fmt.Fprintf(w, "dpserve_requests_total{problem=%q} %d\n", k, counts[i])
	}
	writeCounter(w, "dpserve_cache_hits_total", m.CacheHits.Value())
	writeCounter(w, "dpserve_cache_misses_total", m.CacheMisses.Value())
	writeCounter(w, "dpserve_singleflight_shared_total", m.FlightShare.Value())
	writeCounter(w, "dpserve_flight_wait_total", m.FlightWait.Value())
	writeCounter(w, "dpserve_rejected_total", m.Rejected.Value())
	writeCounter(w, "dpserve_timeouts_total", m.Timeouts.Value())
	writeCounter(w, "dpserve_client_cancel_total", m.ClientCancel.Value())
	writeCounter(w, "dpserve_errors_total", m.Errors.Value())
	writeCounter(w, "dpserve_batches_total", m.Batches.Value())
	writeCounter(w, "dpserve_batched_requests_total", m.Batched.Value())
	writeCounter(w, "dpserve_batch_abandoned_total", m.BatchAbandoned.Value())
	writeCounter(w, "dpserve_expired_skipped_total", m.ExpiredSkipped.Value())
	writeCounter(w, "dpserve_admit_shed_total", m.AdmitShed.Value())
	writeGauge(w, "dpserve_engine_workers", m.EngineWorkers.Value())
	writeGauge(w, "dpserve_engine_worker_utilization", m.EngineUtilization.Value())
	m.BatchOccupancy.write(w, "dpserve_batch_occupancy")
	m.SolveSeconds.write(w, "dpserve_solve_latency_seconds")
	m.QueueWaitSeconds.write(w, "dpserve_queue_wait_seconds")
	m.BatchAssemblySeconds.write(w, "dpserve_batch_assembly_seconds")
	// Server-side quantile estimates live in their OWN family: emitting
	// them as dpserve_solve_latency_seconds{quantile=...} would reuse the
	// histogram's family name, which strict Prometheus parsers reject as a
	// duplicate family (a histogram owns _bucket/_sum/_count and nothing
	// else).
	fmt.Fprintf(w, "# TYPE dpserve_solve_latency_quantile_seconds gauge\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "dpserve_solve_latency_quantile_seconds{quantile=\"%g\"} %g\n", q, m.SolveSeconds.Quantile(q))
	}
	depth := 0
	if m.QueueDepth != nil {
		depth = m.QueueDepth()
	}
	writeGauge(w, "dpserve_queue_depth", float64(depth))
	backlog := 0.0
	if m.AdmitBacklogSeconds != nil {
		backlog = m.AdmitBacklogSeconds()
	}
	writeGauge(w, "dpserve_admit_backlog_seconds", backlog)
}

// WriteRuntime appends Go-runtime gauges (goroutines, heap bytes, GC
// cycles). It lives outside Write so Metrics.Write stays deterministic
// for a fixed observation set; the /metrics handler emits both.
func WriteRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeGauge(w, "dpserve_goroutines", float64(runtime.NumGoroutine()))
	writeGauge(w, "dpserve_heap_alloc_bytes", float64(ms.HeapAlloc))
	writeCounter(w, "dpserve_gc_cycles_total", int64(ms.NumGC))
}
