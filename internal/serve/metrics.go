package serve

import (
	"fmt"
	"io"
	"runtime"

	"systolicdp/internal/promtext"
)

// The metric primitives are the shared internal/promtext registry types;
// the aliases keep this package's historical API (serve.Counter in
// internal/route, NewHistogram in tests) while both tiers render one
// strictly-tested exposition dialect.
type (
	// Counter is a monotone event count.
	Counter = promtext.Counter
	// Gauge is a last-write-wins float value.
	Gauge = promtext.Gauge
	// Histogram is a fixed-bucket cumulative histogram.
	Histogram = promtext.Histogram
)

// NewHistogram builds a histogram over ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram { return promtext.NewHistogram(bounds...) }

// Metrics is the server's instrumentation: plain stdlib counters and
// histograms from internal/promtext, exported as Prometheus text format
// by the /metrics handler.
type Metrics struct {
	requests *promtext.CounterVec // by problem kind

	CacheHits      Counter
	CacheMisses    Counter // flight leaders that actually solved (not coalesced waiters)
	FlightShare    Counter // requests coalesced onto another request's solve
	FlightWait     Counter // waits on an in-flight solve, successful or not
	Rejected       Counter // 429s from a full queue
	Timeouts       Counter // server-side deadline expiries (504s)
	ClientCancel   Counter // client disconnects before a result (499s)
	Errors         Counter // solver / bad-spec failures
	Batches        Counter // micro-batch flushes
	Batched        Counter // requests that went through a micro-batch
	BatchAbandoned Counter // cancelled items dropped at flush assembly
	ExpiredSkipped Counter // general-pool jobs skipped at pickup (context already done)
	AdmitShed      Counter // requests shed by cycle-model admission control (429 + Retry-After)
	AdmitUnpriced  Counter // requests priced under the UnpricedKind fallback (no closed-form arm)

	EngineWorkers     Gauge // compute-phase workers of the last streamed run
	EngineUtilization Gauge // measured PU of the last streamed run
	EnginePUExpected  Gauge // paper eq (9) closed-form PU for the last streamed run's shape

	BatchOccupancy *promtext.HistogramVec // instances per flush, labeled by execution-path kind
	SolveSeconds   *Histogram             // end-to-end solve latency

	// Per-stage latency histograms: where a request's time actually went.
	QueueWaitSeconds     *Histogram // enqueue -> worker pickup / batch flush
	BatchAssemblySeconds *Histogram // first batch arrival -> flush (per flush)

	QueueDepth          func() int     // sampled at render time; nil reads as 0
	AdmitBacklogSeconds func() float64 // admission controller's estimated backlog; nil reads as 0
}

// NewMetrics builds the metric set with the server's bucket layout.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:             promtext.NewCounterVec("problem"),
		BatchOccupancy:       promtext.NewHistogramVec("kind", 1, 2, 4, 8, 16, 32, 64),
		SolveSeconds:         NewHistogram(0.0001, 0.001, 0.01, 0.1, 1, 10),
		QueueWaitSeconds:     NewHistogram(0.00001, 0.0001, 0.001, 0.01, 0.1, 1),
		BatchAssemblySeconds: NewHistogram(0.00001, 0.0001, 0.001, 0.01, 0.1, 1),
	}
}

// Request counts one request of the given problem kind.
func (m *Metrics) Request(kind string) { m.requests.With(kind).Inc() }

// Requests returns the count for one problem kind.
func (m *Metrics) Requests(kind string) int64 { return m.requests.Value(kind) }

// Write renders all metrics in Prometheus text exposition format, in a
// deterministic order.
func (m *Metrics) Write(w io.Writer) {
	m.requests.Write(w, "dpserve_requests_total")
	promtext.WriteCounter(w, "dpserve_cache_hits_total", m.CacheHits.Value())
	promtext.WriteCounter(w, "dpserve_cache_misses_total", m.CacheMisses.Value())
	promtext.WriteCounter(w, "dpserve_singleflight_shared_total", m.FlightShare.Value())
	promtext.WriteCounter(w, "dpserve_flight_wait_total", m.FlightWait.Value())
	promtext.WriteCounter(w, "dpserve_rejected_total", m.Rejected.Value())
	promtext.WriteCounter(w, "dpserve_timeouts_total", m.Timeouts.Value())
	promtext.WriteCounter(w, "dpserve_client_cancel_total", m.ClientCancel.Value())
	promtext.WriteCounter(w, "dpserve_errors_total", m.Errors.Value())
	promtext.WriteCounter(w, "dpserve_batches_total", m.Batches.Value())
	promtext.WriteCounter(w, "dpserve_batched_requests_total", m.Batched.Value())
	promtext.WriteCounter(w, "dpserve_batch_abandoned_total", m.BatchAbandoned.Value())
	promtext.WriteCounter(w, "dpserve_expired_skipped_total", m.ExpiredSkipped.Value())
	promtext.WriteCounter(w, "dpserve_admit_shed_total", m.AdmitShed.Value())
	promtext.WriteCounter(w, "dpserve_admit_unpriced_total", m.AdmitUnpriced.Value())
	promtext.WriteGauge(w, "dpserve_engine_workers", m.EngineWorkers.Value())
	promtext.WriteGauge(w, "dpserve_engine_worker_utilization", m.EngineUtilization.Value())
	promtext.WriteGauge(w, "dpserve_engine_pu_expected", m.EnginePUExpected.Value())
	m.BatchOccupancy.Write(w, "dpserve_batch_occupancy")
	m.SolveSeconds.Write(w, "dpserve_solve_latency_seconds")
	m.QueueWaitSeconds.Write(w, "dpserve_queue_wait_seconds")
	m.BatchAssemblySeconds.Write(w, "dpserve_batch_assembly_seconds")
	// Server-side quantile estimates live in their OWN family: emitting
	// them as dpserve_solve_latency_seconds{quantile=...} would reuse the
	// histogram's family name, which strict Prometheus parsers reject as a
	// duplicate family (a histogram owns _bucket/_sum/_count and nothing
	// else).
	fmt.Fprintf(w, "# TYPE dpserve_solve_latency_quantile_seconds gauge\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "dpserve_solve_latency_quantile_seconds{quantile=\"%g\"} %g\n", q, m.SolveSeconds.Quantile(q))
	}
	depth := 0
	if m.QueueDepth != nil {
		depth = m.QueueDepth()
	}
	promtext.WriteGauge(w, "dpserve_queue_depth", float64(depth))
	backlog := 0.0
	if m.AdmitBacklogSeconds != nil {
		backlog = m.AdmitBacklogSeconds()
	}
	promtext.WriteGauge(w, "dpserve_admit_backlog_seconds", backlog)
}

// WriteRuntime appends Go-runtime gauges (goroutines, heap bytes, GC
// cycles). It lives outside Write so Metrics.Write stays deterministic
// for a fixed observation set; the /metrics handler emits both.
func WriteRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	promtext.WriteGauge(w, "dpserve_goroutines", float64(runtime.NumGoroutine()))
	promtext.WriteGauge(w, "dpserve_heap_alloc_bytes", float64(ms.HeapAlloc))
	promtext.WriteCounter(w, "dpserve_gc_cycles_total", int64(ms.NumGC))
}
