package serve

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/semiring"
)

// stagedGraph builds a Design-1 problem over explicit stage sizes, so
// tests can construct shape collisions deliberately.
func stagedGraph(seed int64, stageSizes []int) *core.MultistageProblem {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.Random(rng, stageSizes, 1, 10)
	return &core.MultistageProblem{Graph: multistage.SingleSourceSink(semiring.MinPlus{}, inner), Design: 1}
}

// batchDTW, batchChain, batchNonserial build batchable non-graph problems
// for the per-kind tests; salt perturbs values, not shapes, so instances
// co-bucket.
func batchDTW(salt int) *core.DTWProblem {
	rng := rand.New(rand.NewSource(int64(salt) + 1))
	x := make([]float64, 6)
	y := make([]float64, 5)
	for i := range x {
		x[i] = float64(rng.Intn(20) - 10)
	}
	for i := range y {
		y[i] = float64(rng.Intn(20) - 10)
	}
	return &core.DTWProblem{X: x, Y: y}
}

func batchChain(salt int) *core.ChainOrderingProblem {
	return &core.ChainOrderingProblem{Dims: []int{30, 35, 15, 5 + salt%20 + 1, 10, 20, 25}}
}

func batchNonserial(salt int) *core.NonserialChainProblem {
	rng := rand.New(rand.NewSource(int64(salt) + 1))
	return &core.NonserialChainProblem{Chain: nonserial.RandomChain3(rng, 4, 3, 0, 9)}
}

// Regression test for the shape-key bug: the old bucket key was
// {m, matrixCount, Ms[0].Rows}, taking the row count from the FIRST
// stage matrix only. A non-uniform Design-1 graph (one narrow middle
// stage) can agree with a valid uniform graph on all three — while its
// middle matrix is not m×m, which pipearray.NewStream rejects. Under the
// old key the two co-bucketed and the whole batch failed, so the VALID
// request errored collaterally. The full per-matrix profile key buckets
// them apart: the valid graph solves, the invalid one fails alone.
func TestBatcherShapeKeyUsesFullProfile(t *testing.T) {
	good := batchGraph(1, 5, 4)                 // uniform: every matrix m×m
	bad := stagedGraph(2, []int{4, 4, 3, 4, 4}) // 4x3 middle matrix, same m/k/rows
	for _, p := range []*core.MultistageProblem{good, bad} {
		if _, ok := (core.GraphStreamKernel{}).Shape(p); !ok {
			t.Fatalf("graph rejected by kernel shape: %v", p.Describe())
		}
	}

	// Precondition guard: the two problems must actually collide under
	// the old key, or this test stops testing the regression.
	spG, err := core.StreamProblemFromGraph(good.Graph)
	if err != nil {
		t.Fatal(err)
	}
	spB, err := core.StreamProblemFromGraph(bad.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(spG.V) != len(spB.V) || len(spG.Ms) != len(spB.Ms) || spG.Ms[0].Rows != spB.Ms[0].Rows {
		t.Fatalf("test graphs no longer collide under the old {m,k,rows} key: v=%d/%d k=%d/%d rows=%d/%d",
			len(spG.V), len(spB.V), len(spG.Ms), len(spB.Ms), spG.Ms[0].Rows, spB.Ms[0].Rows)
	}
	var kern core.GraphStreamKernel
	shapeG, _ := kern.Shape(good)
	shapeB, _ := kern.Shape(bad)
	if shapeG == shapeB {
		t.Fatalf("full-profile shapes identical for different middle stages: %q", shapeG)
	}

	met := NewMetrics()
	batcher := NewBatcher(60*time.Millisecond, 16, 100, met)
	defer batcher.Close()

	var wg sync.WaitGroup
	var goodSol *core.Solution
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodSol, goodErr = batcher.Submit(context.Background(), good)
	}()
	go func() {
		defer wg.Done()
		_, badErr = batcher.Submit(context.Background(), bad)
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("valid graph failed collaterally from a colliding bucket: %v", goodErr)
	}
	want, err := core.Solve(good)
	if err != nil {
		t.Fatal(err)
	}
	if goodSol.Cost != want.Cost {
		t.Errorf("valid graph: batched cost %v, want %v", goodSol.Cost, want.Cost)
	}
	if badErr == nil {
		t.Error("non-uniform graph streamed successfully — expected its own bucket to fail")
	}
	// Two buckets, two flushes: the shapes never shared a kernel run.
	if got := met.Batches.Value(); got != 2 {
		t.Errorf("flushes = %d, want 2 (one per shape bucket)", got)
	}
}

// Every batch kernel round-trips through the batcher: co-windowed
// same-shape instances of each kind flush as ONE kernel sweep, every
// waiter gets its own instance's answer, answers are bitwise equal to the
// sequential solver's, and occupancy is recorded under the kernel's kind.
func TestBatcherAllKindsRoundTrip(t *testing.T) {
	cases := []struct {
		kind string
		mk   func(salt int) core.Problem
	}{
		{"graph-stream", func(s int) core.Problem { return batchGraph(int64(s+1), 5, 4) }},
		{"dtw-batch", func(s int) core.Problem { return batchDTW(s) }},
		{"chain-batch", func(s int) core.Problem { return batchChain(s) }},
		{"nonserial-batch", func(s int) core.Problem { return batchNonserial(s) }},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			met := NewMetrics()
			b := NewBatcher(60*time.Millisecond, 16, 100, met)
			defer b.Close()

			const n = 3
			ps := make([]core.Problem, n)
			for i := range ps {
				ps[i] = tc.mk(i)
			}
			var wg sync.WaitGroup
			sols := make([]*core.Solution, n)
			for i := range ps {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sol, err := b.Submit(context.Background(), ps[i])
					if err != nil {
						t.Error(err)
						return
					}
					sols[i] = sol
				}(i)
			}
			wg.Wait()
			if got := met.Batches.Value(); got != 1 {
				t.Errorf("flushes = %d, want 1 (same shape, one window)", got)
			}
			h := met.BatchOccupancy.With(tc.kind)
			if h.Count() != 1 || h.Sum() != n {
				t.Errorf("occupancy under %q = (count %d, sum %v), want (1, %d)", tc.kind, h.Count(), h.Sum(), n)
			}
			for i := range ps {
				want, err := core.Solve(ps[i])
				if err != nil {
					t.Fatal(err)
				}
				if sols[i] == nil || sols[i].Cost != want.Cost {
					t.Errorf("instance %d: batched cost %+v, want bitwise %v", i, sols[i], want.Cost)
				}
				if want.Ordering != "" && sols[i].Ordering != want.Ordering {
					t.Errorf("instance %d: ordering %q, want %q", i, sols[i].Ordering, want.Ordering)
				}
			}
		})
	}
}

// Regression test for stale-rate pricing across the pool->batch cutover:
// a kind's pool-calibrated service rate describes one-at-a-time solves,
// so it must never price the batched execution path (and vice versa).
// Before per-execution-path rate keys, the pool's stale "chain" rate shed
// batched requests that the batch kernel could easily meet — a permanent
// 429 for a healthy server.
func TestAdmissionRateKeyFollowsExecutionPath(t *testing.T) {
	const body = `{"problem":"chain","dims":[30,35,15,5,10,20,25]}`

	post := func(t *testing.T, url string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, url+"/solve", strings.NewReader(body))
		req.Header.Set(DeadlineHeader, "50")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Batched path: a poisoned POOL rate must not shed, the batch path's
	// own rate must.
	s := New(Config{AdmitEnabled: true, AdmitHeadroom: 1, CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	s.admit.setRate("chain", 1) // stale pool calibration: ~57 units -> ~1 minute
	if code := post(t, ts.URL); code != http.StatusOK {
		t.Errorf("batched chain priced by stale pool rate: status %d, want 200", code)
	}
	s.admit.setRate("chain-batch", 1)
	if code := post(t, ts.URL); code != http.StatusTooManyRequests {
		t.Errorf("infeasible batched rate admitted: status %d, want 429", code)
	}
	ts.Close()
	s.Close()

	// Pool path (BatchMax 1 disables batching): the symmetric property —
	// a poisoned BATCH rate must not shed pool work.
	s = New(Config{AdmitEnabled: true, AdmitHeadroom: 1, BatchMax: 1, CacheSize: -1})
	ts = httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	s.admit.setRate("chain-batch", 1)
	if code := post(t, ts.URL); code != http.StatusOK {
		t.Errorf("pool chain priced by stale batch rate: status %d, want 200", code)
	}
	if r := s.admit.Rate("chain"); r <= 0 {
		t.Error("pool solve did not calibrate the pool chain rate")
	}
	s.admit.setRate("chain", 1)
	if code := post(t, ts.URL); code != http.StatusTooManyRequests {
		t.Errorf("infeasible pool rate admitted: status %d, want 429", code)
	}
}

// Cancellation safety holds for every software batch kernel, not just
// the graph stream (run under -race): a cancelled submitter frees its
// admission slot eagerly, the flush drops it without solving it, and
// survivors in the same bucket still get correct answers.
func TestBatcherCancelPerKind(t *testing.T) {
	cases := []struct {
		kind string
		mk   func(salt int) core.Problem
	}{
		{"dtw-batch", func(s int) core.Problem { return batchDTW(s) }},
		{"chain-batch", func(s int) core.Problem { return batchChain(s) }},
		{"nonserial-batch", func(s int) core.Problem { return batchNonserial(s) }},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			met := NewMetrics()
			b := NewBatcher(80*time.Millisecond, 16, 100, met)
			defer b.Close()

			ctx, cancel := context.WithCancel(context.Background())
			cancelled := make(chan error, 1)
			go func() {
				_, err := b.Submit(ctx, tc.mk(0))
				cancelled <- err
			}()
			type res struct {
				sol *core.Solution
				err error
				p   core.Problem
			}
			live := make(chan res, 2)
			for i := 0; i < 2; i++ {
				go func(i int) {
					p := tc.mk(i + 1)
					sol, err := b.Submit(context.Background(), p)
					live <- res{sol, err, p}
				}(i)
			}
			time.Sleep(20 * time.Millisecond) // all three admitted, window open
			cancel()
			if err := <-cancelled; !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Submit returned %v, want context.Canceled", err)
			}
			// Eager release: the slot is back before the window flush fires.
			b.mu.Lock()
			inflight := b.inflight
			b.mu.Unlock()
			if inflight != 2 {
				t.Errorf("inflight after eager cancel = %d, want 2 (survivors only)", inflight)
			}
			for i := 0; i < 2; i++ {
				r := <-live
				if r.err != nil {
					t.Errorf("surviving request failed: %v", r.err)
					continue
				}
				want, err := core.Solve(r.p)
				if err != nil {
					t.Fatal(err)
				}
				if r.sol.Cost != want.Cost {
					t.Errorf("survivor cost %v, want %v", r.sol.Cost, want.Cost)
				}
			}
			if got := met.BatchAbandoned.Value(); got != 1 {
				t.Errorf("abandoned = %d, want 1", got)
			}
			if got := met.BatchOccupancy.With(tc.kind).Sum(); got != 2 {
				t.Errorf("occupancy sum = %v, want 2 (cancelled item not solved)", got)
			}
			b.mu.Lock()
			inflight = b.inflight
			b.mu.Unlock()
			if inflight != 0 {
				t.Errorf("inflight after flush = %d, want 0 (slot leak)", inflight)
			}
		})
	}
}

// An all-cancelled bucket never runs its kernel, for every software kind.
func TestBatcherAllCancelledSkipsKernelPerKind(t *testing.T) {
	for _, tc := range []struct {
		kind string
		mk   func(salt int) core.Problem
	}{
		{"dtw-batch", func(s int) core.Problem { return batchDTW(s) }},
		{"chain-batch", func(s int) core.Problem { return batchChain(s) }},
		{"nonserial-batch", func(s int) core.Problem { return batchNonserial(s) }},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			met := NewMetrics()
			b := NewBatcher(60*time.Millisecond, 16, 4, met)
			defer b.Close()

			errs := make(chan error, 2)
			ctx, cancel := context.WithCancel(context.Background())
			for i := 0; i < 2; i++ {
				go func(i int) {
					_, err := b.Submit(ctx, tc.mk(i))
					errs <- err
				}(i)
			}
			time.Sleep(20 * time.Millisecond)
			cancel()
			for i := 0; i < 2; i++ {
				if err := <-errs; !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			}
			deadline := time.After(2 * time.Second)
			for met.BatchAbandoned.Value() != 2 {
				select {
				case <-deadline:
					t.Fatalf("flush never counted abandoned items: %d", met.BatchAbandoned.Value())
				case <-time.After(5 * time.Millisecond):
				}
			}
			if got := met.Batches.Value(); got != 0 {
				t.Errorf("kernel ran for an all-cancelled %s batch (batches = %d)", tc.kind, got)
			}
			if got := met.BatchOccupancy.With(tc.kind).Count(); got != 0 {
				t.Errorf("occupancy observed for a skipped %s flush", tc.kind)
			}
		})
	}
}

// Mixed kinds submitted in one window land in per-kind buckets: one
// flush per kind, no cross-kind contamination, all answers correct.
func TestBatcherMixedKindsBucketSeparately(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(60*time.Millisecond, 16, 100, met)
	defer b.Close()

	ps := []core.Problem{
		batchGraph(1, 5, 4), batchGraph(2, 5, 4),
		batchDTW(0), batchDTW(1),
		batchChain(0), batchChain(1),
		batchNonserial(0), batchNonserial(1),
	}
	var wg sync.WaitGroup
	for i := range ps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := b.Submit(context.Background(), ps[i])
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			want, err := core.Solve(ps[i])
			if err != nil {
				t.Error(err)
				return
			}
			if sol.Cost != want.Cost {
				t.Errorf("instance %d: cost %v, want %v", i, sol.Cost, want.Cost)
			}
		}(i)
	}
	wg.Wait()
	if got := met.Batches.Value(); got != 4 {
		t.Errorf("flushes = %d, want 4 (one per kind bucket)", got)
	}
	for _, kind := range []string{"graph-stream", "dtw-batch", "chain-batch", "nonserial-batch"} {
		h := met.BatchOccupancy.With(kind)
		if h.Count() != 1 || h.Sum() != 2 {
			t.Errorf("occupancy[%s] = (count %d, sum %v), want (1, 2)", kind, h.Count(), h.Sum())
		}
	}
}
