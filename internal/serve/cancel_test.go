package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A Submit whose ctx is cancelled before the window fires must not be
// solved: its slot is released at flush, it is counted as abandoned, and
// the surviving items still get correct answers.
func TestBatcherCancelBeforeFlush(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(80*time.Millisecond, 16, 100, met)
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, batchGraph(1, 5, 4))
		cancelled <- err
	}()
	live := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Submit(context.Background(), batchGraph(int64(i+2), 5, 4))
			live <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // all three admitted, window open
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Submit returned %v, want context.Canceled", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-live; err != nil {
			t.Errorf("surviving request failed: %v", err)
		}
	}
	if got := met.BatchAbandoned.Value(); got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
	if got := met.Batched.Value(); got != 2 {
		t.Errorf("batched = %d, want 2 (cancelled item must not be solved)", got)
	}
	if got := met.BatchOccupancy.With("graph-stream").Sum(); got != 2 {
		t.Errorf("occupancy sum = %v, want 2", got)
	}
	b.mu.Lock()
	inflight := b.inflight
	b.mu.Unlock()
	if inflight != 0 {
		t.Errorf("inflight after flush = %d, want 0 (slot leak)", inflight)
	}
}

// A batch whose every item was cancelled never runs the array.
func TestBatcherAllCancelledSkipsSolve(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(60*time.Millisecond, 16, 2, met)
	defer b.Close()

	errs := make(chan error, 2)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Submit(ctx, batchGraph(int64(i+1), 5, 4))
			errs <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	// Slots come back eagerly, before the window flush even fires.
	b.mu.Lock()
	inflight := b.inflight
	b.mu.Unlock()
	if inflight != 0 {
		t.Errorf("inflight = %d after cancelled submitters returned, want 0 (eager release)", inflight)
	}
	// Wait for the window flush, then verify the array never spun up.
	deadline := time.After(2 * time.Second)
	for met.BatchAbandoned.Value() != 2 {
		select {
		case <-deadline:
			t.Fatalf("flush never counted the abandoned items: abandoned = %d", met.BatchAbandoned.Value())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := met.Batches.Value(); got != 0 {
		t.Errorf("flush ran the array for an all-cancelled batch (batches = %d)", got)
	}
	// The freed slots admit new work immediately.
	if _, err := b.Submit(context.Background(), batchGraph(9, 5, 4)); err != nil {
		t.Errorf("post-release Submit failed: %v", err)
	}
}

// Cancellation racing the flush itself must be safe (run under -race) and
// never lose a slot, whichever side of the ctx.Err() check each item
// lands on.
func TestBatcherCancelDuringFlush(t *testing.T) {
	met := NewMetrics()
	b := NewBatcher(time.Millisecond, 4, 100, met)
	defer b.Close()

	const rounds = 20
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithCancel(context.Background())
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := context.Background()
				if i%2 == 0 {
					c = ctx
				}
				b.Submit(c, batchGraph(int64(i+1), 5, 4))
			}(i)
		}
		time.Sleep(time.Duration(r%3) * time.Millisecond)
		cancel()
		wg.Wait()
	}
	deadline := time.After(2 * time.Second)
	for {
		b.mu.Lock()
		inflight := b.inflight
		b.mu.Unlock()
		if inflight == 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("inflight = %d after all rounds, want 0", inflight)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Client cancellation and server deadline are different failures.
func TestStatusForSeparatesCancelFromDeadline(t *testing.T) {
	if got := statusFor(context.Canceled); got != StatusClientClosedRequest {
		t.Errorf("statusFor(Canceled) = %d, want %d", got, StatusClientClosedRequest)
	}
	if got := statusFor(context.DeadlineExceeded); got != http.StatusGatewayTimeout {
		t.Errorf("statusFor(DeadlineExceeded) = %d, want 504", got)
	}
	if got := statusFor(fmt.Errorf("wrap: %w", context.Canceled)); got != StatusClientClosedRequest {
		t.Errorf("statusFor(wrapped Canceled) = %d, want %d", got, StatusClientClosedRequest)
	}
}

// A client that disconnects mid-solve yields 499 handling: ClientCancel
// counts it, Timeouts does not.
func TestServeClientCancel499(t *testing.T) {
	// The long window parks the request in the batcher until the client
	// gives up.
	s := New(Config{BatchWindow: 10 * time.Second, BatchMax: 64})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(graphSpec(0)))
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.handleSolve(rec, req)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // request parked in the batcher
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}
	if rec.Code != StatusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if got := s.Metrics().ClientCancel.Value(); got != 1 {
		t.Errorf("client cancels = %d, want 1", got)
	}
	if got := s.Metrics().Timeouts.Value(); got != 0 {
		t.Errorf("timeouts = %d, want 0 (client disconnect is not a server timeout)", got)
	}
	var sb strings.Builder
	s.Metrics().Write(&sb)
	if !strings.Contains(sb.String(), "dpserve_client_cancel_total 1") {
		t.Errorf("/metrics missing client-cancel counter:\n%s", sb.String())
	}
}

// A waiter coalesced onto a lead that answers ErrBusy retries the solve
// path once instead of inheriting the rejection, and error shares never
// count toward FlightShare.
func TestFlightTransientNotShared(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()

	release := make(chan struct{})
	leadErr := make(chan error, 1)
	go func() {
		_, err := s.flightSolve(context.Background(), "k", func() (*Response, error) {
			<-release
			return nil, ErrBusy
		})
		leadErr <- err
	}()
	// Wait until the lead's flight is registered so the waiter coalesces.
	waitForFlight(t, s, "k")

	var waiterSolves atomic.Int64
	waiterDone := make(chan error, 1)
	var waiterResp *Response
	go func() {
		r, err := s.flightSolve(context.Background(), "k", func() (*Response, error) {
			waiterSolves.Add(1)
			return &Response{Cost: 42}, nil
		})
		waiterResp = r
		waiterDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // waiter joined the lead's flight
	close(release)

	if err := <-leadErr; !errors.Is(err, ErrBusy) {
		t.Fatalf("lead err = %v, want ErrBusy", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want nil (retried past the lead's ErrBusy)", err)
	}
	if waiterResp == nil || waiterResp.Cost != 42 {
		t.Errorf("waiter resp = %+v, want Cost 42 from its own retry", waiterResp)
	}
	if got := waiterSolves.Load(); got != 1 {
		t.Errorf("waiter solve ran %d times, want 1 (exactly one retry)", got)
	}
	if got := s.Metrics().FlightShare.Value(); got != 0 {
		t.Errorf("FlightShare = %d, want 0 (no successful share happened)", got)
	}
}

// Non-transient lead errors ARE shared (re-solving a deterministic
// failure helps nobody) but still never count as successful shares.
func TestFlightSolverErrorSharedUncounted(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()

	boom := errors.New("solver exploded")
	release := make(chan struct{})
	leadErr := make(chan error, 1)
	go func() {
		_, err := s.flightSolve(context.Background(), "k", func() (*Response, error) {
			<-release
			return nil, boom
		})
		leadErr <- err
	}()
	waitForFlight(t, s, "k")
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.flightSolve(context.Background(), "k", func() (*Response, error) {
			t.Error("waiter re-solved a non-transient failure")
			return nil, nil
		})
		waiterDone <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(release)
	if err := <-leadErr; !errors.Is(err, boom) {
		t.Fatalf("lead err = %v, want %v", err, boom)
	}
	if err := <-waiterDone; !errors.Is(err, boom) {
		t.Fatalf("waiter err = %v, want shared %v", err, boom)
	}
	if got := s.Metrics().FlightShare.Value(); got != 0 {
		t.Errorf("FlightShare = %d, want 0 (error shares are not successes)", got)
	}
}

// waitForFlight polls until a singleflight call for key is registered.
func waitForFlight(t *testing.T, s *Server, key string) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		s.flight.mu.Lock()
		_, ok := s.flight.calls[key]
		s.flight.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("flight never registered")
		case <-time.After(time.Millisecond):
		}
	}
}

// failWriter accepts headers but fails body writes, like a peer that
// reset the connection between the header flush and the body.
type failWriter struct {
	h      http.Header
	status int
}

func (f *failWriter) Header() http.Header { return f.h }
func (f *failWriter) WriteHeader(s int) {
	if f.status == 0 {
		f.status = s
	}
}
func (f *failWriter) Write([]byte) (int, error) {
	if f.status == 0 {
		f.status = http.StatusOK
	}
	return 0, errors.New("connection reset by peer")
}

// A failed response write is recorded as an error, not logged as success.
func TestServeEncodeErrorCounted(t *testing.T) {
	s := New(Config{BatchWindow: -1})
	defer s.Close()

	req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(`{"problem":"chain","dims":[5,6,7]}`))
	w := &failWriter{h: make(http.Header)}
	s.handleSolve(w, req)
	if got := s.Metrics().Errors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1 (half-written response)", got)
	}
}
