package serve

import (
	"encoding/json"
	"net/http"
)

// Statusz is the machine-readable replica status served at /statusz. It
// is the router tier's view of one dpserve: whether it is draining, how
// loaded its admission backlog is, and the calibrated per-kind service
// rates a router needs to price requests at the edge (shed with a
// model-derived Retry-After before burning a proxy hop). The schema is
// part of the serving contract — internal/route decodes exactly this
// shape — so fields are additive-only.
type Statusz struct {
	Draining   bool        `json:"draining"`
	Workers    int         `json:"workers"`
	QueueDepth int         `json:"queue_depth"`
	QueueCap   int         `json:"queue_cap"`
	Admit      AdmitStatus `json:"admit"`
	Cache      CacheStatus `json:"cache"`
}

// AdmitStatus is the admission controller's exported state.
type AdmitStatus struct {
	Enabled        bool    `json:"enabled"`
	Headroom       float64 `json:"headroom"`
	BacklogSeconds float64 `json:"backlog_seconds"`
	// Rates maps problem kind to the calibrated EWMA service rate in
	// EstimateCost units/second; a kind absent or 0 is uncalibrated.
	Rates map[string]float64 `json:"rates"`
}

// CacheStatus is the LRU result cache's exported state.
type CacheStatus struct {
	Capacity int   `json:"capacity"`
	Len      int   `json:"len"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// Statusz snapshots the server's routing-relevant state.
func (s *Server) Statusz() Statusz {
	return Statusz{
		Draining:   s.draining.Load(),
		Workers:    s.cfg.Workers,
		QueueDepth: len(s.jobs),
		QueueCap:   cap(s.jobs),
		Admit: AdmitStatus{
			Enabled:        s.admit.Enabled(),
			Headroom:       s.admit.HeadroomFactor(),
			BacklogSeconds: s.admit.BacklogSeconds(),
			Rates:          s.admit.Rates(),
		},
		Cache: CacheStatus{
			Capacity: s.cfg.CacheSize,
			Len:      s.cache.Len(),
			Hits:     s.metrics.CacheHits.Value(),
			Misses:   s.metrics.CacheMisses.Value(),
		},
	}
}

// handleStatusz serves the replica status JSON. Unlike /healthz it keeps
// answering 200 while draining — the body carries the draining flag — so
// a router can distinguish "drained on purpose" from "dead".
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Statusz())
}
