// Package serve is the long-lived solving service around the library: an
// HTTP/JSON endpoint whose wire format is the internal/spec File and
// whose dispatch is core.Solve. It exists because the one-shot CLIs pay a
// full pipeline fill per invocation, while the paper's Design 1 amortizes
// fill across streamed instances — a property only a long-lived process
// with concurrent traffic can exploit.
//
// Architecture:
//
//   - a worker pool sharded by problem class: batchable kinds — Design-1
//     multistage graphs, DTW, chain ordering, nonserial chains — go to
//     the kind-generic micro-batcher (one shared kernel sweep per
//     same-shape batch); everything else (graph designs 0/2, nodevalued)
//     goes to a bounded general pool;
//   - an LRU result cache keyed by the canonical spec hash, with
//     singleflight deduplication so identical in-flight requests solve
//     once;
//   - robustness: per-request timeouts, bounded queues with 429
//     backpressure, graceful shutdown that drains in-flight work;
//   - observability: /healthz and a Prometheus-text /metrics endpoint.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"systolicdp/internal/core"
	"systolicdp/internal/obs"
	"systolicdp/internal/spec"
)

// Sentinel errors mapped to HTTP statuses by the handler.
var (
	// ErrBusy means a bounded queue is full; clients get 429.
	ErrBusy = errors.New("serve: queue full")
	// ErrShutdown means the server is draining; clients get 503.
	ErrShutdown = errors.New("serve: shutting down")
)

// Config parameterizes a Server. Zero values select the defaults noted on
// each field.
type Config struct {
	Workers     int           // general-pool workers; default runtime.NumCPU()
	QueueSize   int           // bounded general queue; default 256
	BatchWindow time.Duration // micro-batch collection window; default 2ms
	BatchMax    int           // flush at this many instances; default 16; <=1 disables batching
	CacheSize   int           // LRU entries; default 1024; <0 disables caching
	Timeout     time.Duration // per-solve budget; default 30s
	TraceSpans  int           // request spans retained for /debug/dptrace; default 256
	EnablePprof bool          // mount net/http/pprof under /debug/pprof/
	Logger      *slog.Logger  // structured request logs; nil discards

	// AdmitEnabled turns on cycle-model admission control: requests whose
	// predicted completion (estimated cost at the calibrated service rate,
	// plus the admitted backlog) exceeds their deadline are shed up front
	// with 429 + Retry-After instead of timing out mid-queue. Off, the
	// model still calibrates and exports its backlog gauge but never
	// sheds.
	AdmitEnabled bool
	// AdmitHeadroom is the safety factor on the predicted completion time
	// (shed iff predicted*headroom > deadline); default 1.2. Values > 1
	// shed earlier, absorbing model optimism.
	AdmitHeadroom float64

	// EngineParallelism is the lock-step engine's compute-phase worker
	// count for streamed Design-1 batch runs: 0 or 1 solves sequentially,
	// >1 shards the per-cycle PE loop, negative uses GOMAXPROCS.
	EngineParallelism int
	// EngineParallelThreshold is the minimum PE count (vector length m) at
	// which the parallel compute phase engages; 0 keeps the engine default
	// (systolic.DefaultParallelThreshold).
	EngineParallelThreshold int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax == 0 {
		c.BatchMax = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 256
	}
	if c.AdmitHeadroom <= 0 {
		c.AdmitHeadroom = 1.2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Response is the JSON solution shape — the same fields dpsolve -json
// prints, so a served answer is byte-comparable with the CLI's.
type Response struct {
	Problem  string  `json:"problem"`
	Class    string  `json:"class"`
	Method   string  `json:"method"`
	Hardware string  `json:"hardware"`
	Cost     float64 `json:"cost"`
	Path     []int   `json:"path,omitempty"`
	Ordering string  `json:"ordering,omitempty"`
}

// job is one general-pool work item.
type job struct {
	problem  core.Problem
	ctx      context.Context
	done     chan jobResult
	enqueued time.Time
	span     *obs.ReqSpan // request-lifecycle span; nil-safe
	kind     string       // admission cost-model kind
	cycles   float64      // admission cost-model work units
}

type jobResult struct {
	sol *core.Solution
	err error
}

// Server is the solving service. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	cfg      Config
	metrics  *Metrics
	cache    *LRU
	flight   *flight
	batcher  *Batcher
	admit    *Admitter
	spans    *obs.SpanRecorder
	logger   *slog.Logger
	jobs     chan *job
	stop     chan struct{} // closed to tell idle workers to exit
	wg       sync.WaitGroup
	submitMu sync.RWMutex // excludes submits racing Close's drain
	draining atomic.Bool  // refuse new work; set by BeginDrain and Close
	closed   atomic.Bool  // full-teardown latch; set only by Close
	mux      *http.ServeMux
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		cache:   NewLRU(cfg.CacheSize),
		flight:  newFlight(),
		spans:   obs.NewSpanRecorder(cfg.TraceSpans),
		logger:  cfg.Logger,
		jobs:    make(chan *job, cfg.QueueSize),
		stop:    make(chan struct{}),
		mux:     http.NewServeMux(),
	}
	s.admit = NewAdmitter(cfg.AdmitEnabled, cfg.AdmitHeadroom, cfg.Workers)
	s.batcher = NewBatcher(cfg.BatchWindow, cfg.BatchMax, cfg.QueueSize, s.metrics)
	s.batcher.SetEngineParallelism(cfg.EngineParallelism, cfg.EngineParallelThreshold)
	s.batcher.SetAdmitter(s.admit)
	s.metrics.QueueDepth = func() int { return len(s.jobs) }
	s.metrics.AdmitBacklogSeconds = s.admit.BacklogSeconds
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/dptrace", s.handleTrace)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler tree (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's instrumentation (tests, embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// worker drains the general queue; after stop closes it finishes whatever
// is still queued, then exits.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			s.runJob(j)
		case <-s.stop:
			for {
				select {
				case j := <-s.jobs:
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) runJob(j *job) {
	// A job whose context is already done is dead work: the submitter
	// returned ctx.Err() long ago, so picking it up would only burn the
	// worker under exactly the overload that made it expire. Skip it —
	// counted, not solved, with no queue-wait/solve stage accounting.
	if err := j.ctx.Err(); err != nil {
		s.metrics.ExpiredSkipped.Inc()
		j.done <- jobResult{nil, err}
		return
	}
	start := time.Now()
	s.metrics.QueueWaitSeconds.Observe(start.Sub(j.enqueued).Seconds())
	j.span.Observe("queue_wait", j.enqueued, start)
	sol, err := core.SolveCtx(j.ctx, j.problem)
	end := time.Now()
	j.span.Observe("solve", start, end)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		// Pure solve duration (queue wait excluded) calibrates the
		// admission model's per-kind service rate. Timed-out solves count
		// too: they burned their whole budget without finishing, so
		// cycles/elapsed under-reports the true rate — exactly the
		// conservative correction needed, since skipping them would teach
		// the model only from fast survivors and leave it optimistic under
		// the overload it exists to manage.
		s.admit.Observe(j.kind, j.cycles, end.Sub(start).Seconds())
	}
	j.done <- jobResult{sol, err}
}

// submit queues a job for the general pool with backpressure. The read
// lock guarantees no job lands in the queue after Close's final drain.
func (s *Server) submit(j *job) error {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.draining.Load() {
		return ErrShutdown
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return ErrBusy
	}
}

// dispatch routes a problem to its shard — the Design-1 micro-batcher or
// the general pool — and waits for the solution under ctx. Admission
// runs first: the request is priced with the closed-form cycle model
// against its deadline, and shed with an OverloadError (429 +
// Retry-After upstream) when the predicted completion cannot make it.
// The reservation holds the request's predicted seconds in the backlog
// until the work finishes on any path — success, error, or abandonment.
func (s *Server) dispatch(ctx context.Context, p core.Problem) (*core.Solution, error) {
	kind, cycles := EstimateCost(p)
	if kind == UnpricedKind {
		// Every servable kind must have a pricing arm (the exhaustiveness
		// test pins this); anything that still lands here is flying blind
		// through admission, so make it visible.
		s.metrics.AdmitUnpriced.Inc()
	}
	// Routing decides the admission rate key: a kind's pool-calibrated
	// service rate describes one-at-a-time solves and goes stale the moment
	// the kind cuts over to a batch kernel (whose per-request marginal cost
	// is far lower), so batched work is priced and calibrated under the
	// kernel's own execution-path kind instead. EstimateCost already names
	// the Design-1 stream path "graph-stream"; the other kernels report
	// "<kind>-batch".
	batched := false
	if s.cfg.BatchMax > 1 {
		if k, _, ok := s.batcher.Kernel(p); ok {
			batched = true
			kind = k.Kind()
		}
	}
	deadline := s.cfg.Timeout
	if dl, ok := ctx.Deadline(); ok {
		deadline = time.Until(dl)
	}
	res, err := s.admit.Admit(kind, cycles, deadline)
	if err != nil {
		s.metrics.AdmitShed.Inc()
		return nil, err
	}
	defer res.Release()
	if batched {
		return s.batcher.Submit(ctx, p)
	}
	j := &job{
		problem:  p,
		ctx:      ctx,
		done:     make(chan jobResult, 1),
		enqueued: time.Now(),
		span:     obs.SpanFrom(ctx),
		kind:     kind,
		cycles:   cycles,
	}
	if err := s.submit(j); err != nil {
		return nil, err
	}
	select {
	case r := <-j.done:
		return r.sol, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solveSpec is the full cache → singleflight → dispatch path for one
// decoded spec. It is the unit the handler and benchmarks share. cached
// reports whether the response came straight from the LRU.
func (s *Server) solveSpec(ctx context.Context, f *spec.File) (resp *Response, cached bool, status int, err error) {
	key, err := f.Hash()
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	if resp, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Inc()
		return resp, true, http.StatusOK, nil
	}

	fn := func() (*Response, error) {
		// Counted here — inside the flight leader — not at the LRU miss
		// above: coalesced waiters fall through the cache check too, and
		// counting them would inflate the miss rate under dedup-heavy
		// load. Waiters are visible as dpserve_flight_wait_total instead.
		s.metrics.CacheMisses.Inc()
		p, err := f.Build()
		if err != nil {
			return nil, badSpec{err}
		}
		// The solve context is detached from the request (singleflight may
		// outlive its first caller), so the request span is re-attached
		// explicitly for stage accounting. The detached budget is the
		// server's -timeout clamped to the leader's remaining deadline
		// (X-Deadline-Ms from a routing tier, or a client disconnect
		// deadline): work the edge has already given up on must not be
		// admitted or solved at full budget here.
		budget := s.cfg.Timeout
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < budget {
				budget = rem
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), budget)
		defer cancel()
		sctx = obs.WithSpan(sctx, obs.SpanFrom(ctx))
		start := time.Now()
		sol, err := s.dispatch(sctx, p)
		if err != nil {
			return nil, err
		}
		s.metrics.SolveSeconds.Observe(time.Since(start).Seconds())
		rec := core.Recommend(sol.Class)
		r := &Response{
			Problem:  p.Describe(),
			Class:    sol.Class.String(),
			Method:   rec.Method,
			Hardware: rec.Requirements,
			Cost:     sol.Cost,
			Path:     sol.Path,
			Ordering: sol.Ordering,
		}
		s.cache.Put(key, r)
		return r, nil
	}
	resp, err = s.flightSolve(ctx, key, fn)
	if err != nil {
		return nil, false, statusFor(err), err
	}
	return resp, false, http.StatusOK, nil
}

// flightSolve runs fn through the singleflight group. A waiter that
// inherits the lead caller's transient answer (ErrBusy / ErrShutdown)
// retries the solve path once: the lead's queue-full or draining verdict
// reflects conditions at *its* submit instant, and inheriting it would
// turn one full queue into N rejections of deduplicated requests. Only
// successful coalescing counts toward FlightShare.
func (s *Server) flightSolve(ctx context.Context, key string, fn func() (*Response, error)) (*Response, error) {
	resp, shared, err := s.flight.do(ctx, key, fn)
	if shared {
		s.metrics.FlightWait.Inc()
	}
	if shared && (errors.Is(err, ErrBusy) || errors.Is(err, ErrShutdown)) {
		resp, shared, err = s.flight.do(ctx, key, fn)
		if shared {
			s.metrics.FlightWait.Inc()
		}
	}
	if shared && err == nil {
		s.metrics.FlightShare.Inc()
	}
	return resp, err
}

// badSpec marks spec-construction failures so statusFor maps them to 400.
type badSpec struct{ err error }

func (b badSpec) Error() string { return b.err.Error() }
func (b badSpec) Unwrap() error { return b.err }

// DeadlineHeader carries the client's remaining deadline in integer
// milliseconds across a proxy hop. A routing tier sets it from the edge
// deadline so a replica never admits or keeps solving work the client
// has already abandoned; dpserve honors it by clamping the request
// context and the detached solve budget to the smaller of the header and
// the server's own -timeout.
const DeadlineHeader = "X-Deadline-Ms"

// StatusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client went away before a response existed. It is kept
// distinct from 504 so dashboards don't blame server capacity for client
// disconnects.
const StatusClientClosedRequest = 499

func statusFor(err error) int {
	switch {
	case errors.As(err, &badSpec{}):
		return http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// A cancelled request context means the *client* abandoned the
		// exchange (server deadlines surface as DeadlineExceeded), so this
		// must not count against server timeouts.
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// handleSolve answers POST /solve: body is a spec.File, response the
// Response JSON. Errors map to 400 (bad spec), 429 (backpressure), 503
// (draining), 504 (timeout), 500 (solver failure). Every request gets a
// lifecycle span (decode/queue_wait/batch_assembly/solve/encode) retained
// for /debug/dptrace, an X-Request-ID (propagated from the client or
// generated), and one structured log line.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a spec.File JSON body", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)

	span := obs.NewReqSpan(reqID, "", start)
	// Join the distributed trace the router started, or root a fresh one
	// for direct traffic so every request is stitchable by trace id.
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
		span.SetTrace(tc.TraceID, tc.SpanID)
	} else {
		span.SetTrace(obs.NewTraceContext().TraceID, "")
	}
	fail := func(status int, err error) {
		span.Finish(time.Now(), status, false)
		s.spans.Add(span)
		s.logger.Warn("solve failed",
			"id", reqID, "status", status, "err", err,
			"duration", time.Since(start))
		http.Error(w, err.Error(), status)
	}

	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, ErrShutdown)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	f, err := spec.Decode(body)
	span.Observe("decode", start, time.Now())
	if err != nil {
		s.metrics.Errors.Inc()
		fail(http.StatusBadRequest, err)
		return
	}
	span.SetKind(f.Problem)
	s.metrics.Request(f.Problem)

	ctx := r.Context()
	// A proxied request carries the edge's remaining deadline; honor it by
	// shrinking the request context (never growing it past -timeout, which
	// solveSpec applies as the ceiling on the detached solve budget).
	if ms := r.Header.Get(DeadlineHeader); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(v)*time.Millisecond)
			defer cancel()
		}
	}
	ctx = obs.WithSpan(ctx, span)
	resp, cached, status, err := s.solveSpec(ctx, f)
	if err != nil {
		var ovl *OverloadError
		if errors.As(err, &ovl) {
			// Admission sheds carry the model's earliest useful retry time;
			// the header is whole seconds rounded up, never below 1.
			w.Header().Set("Retry-After",
				strconv.Itoa(int((ovl.RetryAfter+time.Second-1)/time.Second)))
		}
		switch status {
		case http.StatusTooManyRequests:
			s.metrics.Rejected.Inc()
		case http.StatusGatewayTimeout:
			s.metrics.Timeouts.Inc()
		case StatusClientClosedRequest:
			s.metrics.ClientCancel.Inc()
		default:
			s.metrics.Errors.Inc()
		}
		fail(status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Dpserve-Cache", "hit")
	} else {
		w.Header().Set("X-Dpserve-Cache", "miss")
	}
	encStart := time.Now()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	encErr := enc.Encode(resp)
	end := time.Now()
	span.Observe("encode", encStart, end)
	span.Finish(end, status, cached)
	s.spans.Add(span)
	if encErr != nil {
		// Headers are already on the wire, so the status cannot be
		// rewritten — but a half-written body is not a success and must not
		// be logged as one.
		s.metrics.Errors.Inc()
		s.logger.Warn("solve response write failed",
			"id", reqID, "problem", f.Problem, "err", encErr,
			"duration", end.Sub(start))
		return
	}
	s.logger.Info("solve",
		"id", reqID, "problem", f.Problem, "status", status,
		"cached", cached, "duration", end.Sub(start))
}

// handleHealthz reports liveness: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the metric set plus Go-runtime gauges as
// Prometheus text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Write(w)
	WriteRuntime(w)
}

// handleTrace serves the retained request-lifecycle spans. The default
// form is a Perfetto trace-event JSON document (load it in
// ui.perfetto.dev, or summarize with cmd/dptrace); ?format=wire returns
// the raw obs.WireSpan list the fleet trace collector pulls.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "wire" {
		json.NewEncoder(w).Encode(s.spans.WireSpans())
		return
	}
	s.spans.Trace().Write(w)
}

// BeginDrain flips the server into draining mode without stopping it:
// /healthz starts answering 503 immediately (so load balancers and the
// dprouter health checker eject this replica), new /solve requests are
// refused with 503, and in-flight work keeps running to completion.
// This is the first step of a graceful shutdown — signal unhealthiness
// first, give the routing tier time to stop sending, then Close. Before
// this existed the drain window was invisible: /healthz said 200 right
// up until the listener died, so an LB's next probe still routed traffic
// into a dying replica. Idempotent.
func (s *Server) BeginDrain() {
	s.submitMu.Lock()
	s.draining.Store(true)
	s.submitMu.Unlock()
}

// Draining reports whether drain has begun (BeginDrain or Close).
func (s *Server) Draining() bool { return s.draining.Load() }

// Close gracefully shuts the server down: new requests are rejected with
// 503, pending micro-batches flush, queued general-pool jobs run to
// completion, and all workers exit before Close returns.
func (s *Server) Close() {
	s.submitMu.Lock()
	already := s.closed.Swap(true)
	s.draining.Store(true)
	s.submitMu.Unlock()
	if already {
		return
	}
	s.batcher.Close()
	close(s.stop)
	s.wg.Wait()
}
