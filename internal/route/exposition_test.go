package route

import (
	"strings"
	"testing"

	"systolicdp/internal/promtext"
)

// The router's /metrics output gets the same strict exposition check the
// replica tier got in PR 5: every family declared exactly once with a
// # TYPE line before its samples, labeled families rendered under one
// declaration. Populate every counter the router can emit, then lint.
func TestRouterMetricsExpositionTypeChecks(t *testing.T) {
	m := NewMetrics()
	m.Forwarded("http://a:1", 200)
	m.Forwarded("http://a:1", 429)
	m.Forwarded("http://b:2", 200)
	m.Shed.Inc()
	m.Retries.Inc()
	m.NoReplica.Inc()
	m.ProxyErrors.Inc()
	m.BadSpec.Inc()
	m.Ejections.Inc()
	m.Readmits.Inc()
	m.Reloads.Inc()
	m.SlowTraces.Inc()

	var sb strings.Builder
	m.Write(&sb)
	text := sb.String()
	if err := promtext.Lint(text); err != nil {
		t.Fatalf("router /metrics exposition is not strictly parseable: %v\n%s", err, text)
	}
	fams, err := promtext.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	// Every family must carry its own # TYPE declaration (Lint enforces
	// that structurally; assert the important ones exist at all).
	for _, name := range []string{
		"dprouter_forwards_total", "dprouter_upstream_responses_total",
		"dprouter_shed_total", "dprouter_retries_total", "dprouter_no_replica_total",
		"dprouter_proxy_errors_total", "dprouter_bad_spec_total",
		"dprouter_ejections_total", "dprouter_readmits_total",
		"dprouter_membership_reloads_total", "dprouter_slow_traces_total",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	byReplica := fams.Labeled("dprouter_forwards_total", "replica")
	if byReplica["http://a:1"] != 2 || byReplica["http://b:2"] != 1 {
		t.Errorf("forwards by replica = %v", byReplica)
	}
	byStatus := fams.Labeled("dprouter_upstream_responses_total", "status")
	if byStatus["200"] != 2 || byStatus["429"] != 1 {
		t.Errorf("responses by status = %v", byStatus)
	}
}

// An untouched metric set (fresh router, no traffic) must also lint: the
// labeled families still declare their TYPE with zero samples, so a
// scraper sees a stable family set from the first poll.
func TestRouterMetricsExpositionEmpty(t *testing.T) {
	var sb strings.Builder
	NewMetrics().Write(&sb)
	if err := promtext.Lint(sb.String()); err != nil {
		t.Fatalf("empty router exposition invalid: %v\n%s", err, sb.String())
	}
}
