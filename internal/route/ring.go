// Package route is the horizontal scale-out tier: a thin HTTP router
// that shards canonical spec hashes across N dpserve replicas with a
// consistent-hash ring, so each replica's LRU cache and singleflight
// stay shard-local.
//
// The design transposes the paper's systolic discipline to the cluster:
// scale comes from composing many small identical processing units —
// here, identical dpserve replicas — behind a fixed, deterministic
// mapping of work onto units, not from making any single unit cleverer.
// The ring is that mapping: a pure function from spec hash to replica,
// stable across router restarts and minimally perturbed by membership
// change (≈1/N of keys move when a replica joins or leaves), which is
// exactly the property that keeps per-key cache affinity intact while
// the replica set evolves.
//
// The router does four things per request: decode the body just enough
// to compute the canonical spec.File hash, place the hash on the ring
// over healthy replicas, optionally shed at the edge using the target
// replica's advertised admission state (/statusz) with a model-derived
// Retry-After, and forward with the remaining deadline propagated via
// the X-Deadline-Ms header. Replica lifecycle is managed by a prober
// with ejection/readmission hysteresis, and membership is static or
// file-reloadable with graceful draining: a replica removed from the
// ring finishes its in-flight requests before the router lets go of it.
package route

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring over a set of replica names.
// Each replica contributes vnodes virtual points, placed by SHA-256 of
// "name#i"; a key is owned by the replica of the first point clockwise
// from the key's hash. Determinism is structural: no seeds, no process
// state — two routers (or one router across restarts) built over the
// same membership map every key identically.
type Ring struct {
	points   []ringPoint // sorted by hash
	replicas []string    // distinct members, sorted
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing builds a ring over the distinct non-empty replicas with the
// given virtual-node count per replica (minimum 1). Input order is
// irrelevant to the resulting mapping.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{}
	seen := make(map[string]bool, len(replicas))
	for _, rep := range replicas {
		if rep == "" || seen[rep] {
			continue
		}
		seen[rep] = true
		r.replicas = append(r.replicas, rep)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", rep, i)), rep})
		}
	}
	sort.Strings(r.replicas)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash collisions between vnodes of different replicas are broken
		// by name so the mapping stays independent of input order.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// hash64 places a string on the ring: the first 8 bytes of its SHA-256.
// FNV and friends cluster badly on near-identical short strings (vnode
// labels differ by one digit), which skews arc lengths enough to break
// the uniformity bound; SHA-256 mixes fully and stays dependency-free
// and deterministic across processes.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len reports the number of distinct replicas on the ring.
func (r *Ring) Len() int { return len(r.replicas) }

// Replicas returns the distinct members, sorted.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Lookup returns the replica owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Shares reports each replica's fraction of the key space: the summed
// arc length (to the next point clockwise, wrapping) of its vnodes,
// normalized to 1. With the default vnode count the shares land near
// 1/N; the spread that remains is the ring's real placement skew, which
// is why dptop displays this instead of assuming uniformity.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.replicas))
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].replica] = 1
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	// A key belongs to the first point at-or-after its hash, so each
	// point owns the arc *preceding* it (from the previous point,
	// exclusive, to itself). Unsigned wrap-around subtraction makes the
	// arc across zero come out right without a special case.
	for i, p := range r.points {
		prev := r.points[(i-1+len(r.points))%len(r.points)].hash
		out[p.replica] += float64(p.hash-prev) / whole
	}
	return out
}

// Successors returns up to n distinct replicas in ring order starting at
// key's owner. The tail entries are the key's failover targets: when the
// owner is ejected, the key's traffic moves to the next distinct replica
// clockwise — the same replica it would move to if the owner left the
// membership — so failover and resharding agree about where a key goes.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
