package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"systolicdp/internal/obs"
	"systolicdp/internal/serve"
	"systolicdp/internal/spec"
)

// Policy selects how the router places a request on a replica.
const (
	// PolicyHash is consistent hashing of the canonical spec hash: every
	// key has a stable owner, so replica caches and singleflight stay
	// shard-local. The default, and the point of this tier.
	PolicyHash = "hash"
	// PolicyRandom picks a uniformly random healthy replica per request.
	// It exists as the ablation baseline: same replicas, no affinity —
	// the measured cache-hit collapse is the argument for PolicyHash.
	PolicyRandom = "random"
)

// Config parameterizes a Router. Zero values select the defaults noted
// on each field.
type Config struct {
	// Replicas is the initial static membership: dpserve base URLs
	// ("http://host:port"). A bare "host:port" gets an http:// prefix.
	Replicas []string
	// ReplicasFile, when set, makes membership file-reloadable: the file
	// (one base URL per line, '#' comments, commas also accepted) is
	// polled every ReloadInterval and applied on modification. When both
	// Replicas and ReplicasFile are given, the file wins once readable.
	ReplicasFile   string
	ReloadInterval time.Duration // membership file poll period; default 2s

	VNodes int // virtual nodes per replica on the ring; default 128
	// Replication is the failover depth: how many distinct ring
	// successors a key may be tried on when earlier candidates are
	// ejected or fail at transport level. Default 2, minimum 1.
	Replication int

	HealthInterval time.Duration // probe period; default 1s
	HealthTimeout  time.Duration // per-probe budget; default 500ms
	EjectAfter     int           // consecutive probe failures before ejection; default 3
	ReadmitAfter   int           // consecutive probe successes before readmission; default 2

	// Deadline is the per-request budget assumed when the client sends no
	// X-Deadline-Ms header; it is what the router prices sheds against
	// and what it propagates to the replica. Default 30s.
	Deadline time.Duration

	// ShedEnabled turns on early shedding: requests whose predicted
	// completion on their shard (replica-advertised admission backlog and
	// calibrated per-kind rates from /statusz) exceeds their deadline are
	// refused at the edge with 429 + Retry-After, before burning a proxy
	// hop. Off, the router still polls /statusz but never sheds.
	ShedEnabled  bool
	ShedHeadroom float64 // safety factor on the prediction; default 1.2
	// StatuszMaxAge bounds how stale a replica's advertised state may be
	// and still drive shedding; default 4×HealthInterval.
	StatuszMaxAge time.Duration

	Policy  string       // PolicyHash (default) or PolicyRandom
	MaxBody int64        // request body cap in bytes; default 64 MiB
	Logger  *slog.Logger // structured logs; nil discards

	// TraceSpans is how many recent hop spans the router retains for
	// /debug/dptrace (and for stitching into /debug/fleettrace). Default
	// 256.
	TraceSpans int
	// SlowTrace enables tail-based slow-request capture: a background
	// collector periodically stitches the fleet's recent spans and logs
	// every trace at least this slow, once, with its full cross-tier
	// phase breakdown. 0 disables the background loop (the on-demand
	// /debug/fleettrace endpoint works regardless).
	SlowTrace time.Duration
	// CollectInterval is the background collector's poll period when
	// SlowTrace is enabled; default 2s.
	CollectInterval time.Duration

	// Transport overrides the upstream RoundTripper (tests). nil uses a
	// pooled http.Transport sized for fan-in traffic.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.ReloadInterval <= 0 {
		c.ReloadInterval = 2 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.Replication < 1 {
		c.Replication = 2
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	if c.EjectAfter < 1 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter < 1 {
		c.ReadmitAfter = 2
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.ShedHeadroom <= 0 {
		c.ShedHeadroom = 1.2
	}
	if c.StatuszMaxAge <= 0 {
		c.StatuszMaxAge = 4 * c.HealthInterval
	}
	if c.Policy == "" {
		c.Policy = PolicyHash
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 256
	}
	if c.CollectInterval <= 0 {
		c.CollectInterval = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// replica is one upstream dpserve and its router-side lifecycle state.
// The object survives membership reloads (health history and in-flight
// accounting carry over) and, once removed from membership, lives on in
// the drain list until its last in-flight request finishes.
type replica struct {
	base string

	healthy  atomic.Bool  // on the ring and accepting traffic
	removed  atomic.Bool  // dropped from membership; draining in-flight
	inflight atomic.Int64 // forwards currently against this replica

	mu         sync.Mutex // guards the hysteresis counters
	consecFail int
	consecOK   int

	status atomic.Pointer[replicaStatus] // last decoded /statusz; nil before first poll
}

type replicaStatus struct {
	at time.Time
	s  serve.Statusz
}

// Router is the sharded routing tier. Create with New, expose via
// Handler, stop with Close.
type Router struct {
	cfg     Config
	metrics *Metrics
	logger  *slog.Logger
	client  *http.Client
	rng     *rand.Rand
	rngMu   sync.Mutex

	mu      sync.RWMutex // guards ring, members, drains, fileMod
	ring    *Ring
	members map[string]*replica
	drains  []*replica
	fileMod time.Time

	submitMu sync.RWMutex // excludes forwards racing Close's wait
	draining atomic.Bool
	closed   atomic.Bool
	inflight sync.WaitGroup // in-flight forwards
	wg       sync.WaitGroup // background loops
	stop     chan struct{}

	hops      *obs.HopRecorder // recent hop spans for /debug/dptrace
	collector *obs.Collector   // fleet span stitching for /debug/fleettrace

	mux *http.ServeMux
}

// New builds a Router over the configured membership and starts its
// health and (if file-backed) reload loops.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		metrics: NewMetrics(),
		logger:  cfg.Logger,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		members: make(map[string]*replica),
		stop:    make(chan struct{}),
		mux:     http.NewServeMux(),
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt.client = &http.Client{Transport: transport}
	rt.hops = obs.NewHopRecorder(cfg.TraceSpans)
	rt.collector = &obs.Collector{
		Endpoints: rt.traceEndpoints,
		Local:     rt.hops.WireSpans,
		LocalName: "router",
		// Same pooled transport as forwards, but with a hard timeout: a
		// wedged replica must not stall trace assembly.
		Client:        &http.Client{Transport: transport, Timeout: 2 * time.Second},
		SlowThreshold: cfg.SlowTrace,
		Logger:        cfg.Logger,
	}

	bases := normalizeBases(cfg.Replicas)
	if cfg.ReplicasFile != "" {
		fileBases, mod, err := readReplicasFile(cfg.ReplicasFile)
		switch {
		case err == nil:
			bases = fileBases
			rt.fileMod = mod
		case len(bases) == 0:
			return nil, fmt.Errorf("route: replicas file %s: %v", cfg.ReplicasFile, err)
		default:
			rt.logger.Warn("replicas file unreadable, using static membership", "file", cfg.ReplicasFile, "err", err)
		}
	}
	if len(bases) == 0 {
		return nil, errors.New("route: no replicas configured")
	}
	rt.applyMembership(bases)

	rt.mux.HandleFunc("/solve", rt.handleSolve)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/statusz", rt.handleStatusz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/debug/dptrace", rt.handleTrace)
	rt.mux.HandleFunc("/debug/fleettrace", rt.handleFleetTrace)

	rt.wg.Add(1)
	go rt.healthLoop()
	if cfg.ReplicasFile != "" {
		rt.wg.Add(1)
		go rt.reloadLoop()
	}
	if cfg.SlowTrace > 0 {
		rt.wg.Add(1)
		go rt.collectLoop()
	}
	return rt, nil
}

// traceEndpoints enumerates the current membership as span-pull targets
// for the trace collector, tracking reloads.
func (rt *Router) traceEndpoints() []obs.Endpoint {
	bases := rt.ReplicaBases()
	eps := make([]obs.Endpoint, 0, len(bases))
	for _, b := range bases {
		eps = append(eps, obs.Endpoint{Name: b, Base: b})
	}
	return eps
}

// Handler returns the HTTP handler tree (for http.Server or httptest).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics exposes the router's instrumentation (tests, embedding).
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// ReplicaBases returns the current membership's base URLs, sorted.
func (rt *Router) ReplicaBases() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Replicas()
}

// normalizeBases trims, deduplicates, and schemes the replica list.
func normalizeBases(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, b := range in {
		b = strings.TrimSpace(strings.TrimRight(b, "/"))
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// readReplicasFile parses a membership file: one base URL per line,
// commas also split, '#' starts a comment.
func readReplicasFile(path string) ([]string, time.Time, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, time.Time{}, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, time.Time{}, err
	}
	var bases []string
	for _, line := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, field := range strings.Split(line, ",") {
			if f := strings.TrimSpace(field); f != "" {
				bases = append(bases, f)
			}
		}
	}
	return normalizeBases(bases), st.ModTime(), nil
}

// SetReplicas swaps the membership. Replicas present in both sets keep
// their lifecycle state (health history, in-flight count); removed
// replicas leave the ring immediately but drain gracefully — requests
// already forwarded to them run to completion, and the router only
// forgets a removed replica once its in-flight count reaches zero. New
// replicas start healthy-optimistic and are ejected by the prober within
// EjectAfter probes if they are not actually there.
func (rt *Router) SetReplicas(bases []string) error {
	bases = normalizeBases(bases)
	if len(bases) == 0 {
		return errors.New("route: refusing empty membership")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	changed := len(bases) != len(rt.members)
	next := make(map[string]*replica, len(bases))
	for _, b := range bases {
		if rep, ok := rt.members[b]; ok {
			next[b] = rep
			continue
		}
		changed = true
		rep := &replica{base: b}
		rep.healthy.Store(true)
		next[b] = rep
	}
	for b, rep := range rt.members {
		if _, kept := next[b]; !kept {
			changed = true
			rep.removed.Store(true)
			if rep.inflight.Load() > 0 {
				rt.drains = append(rt.drains, rep)
			}
		}
	}
	if !changed {
		return nil
	}
	rt.members = next
	rt.ring = NewRing(bases, rt.cfg.VNodes)
	rt.metrics.Reloads.Inc()
	rt.logger.Info("membership applied", "replicas", len(bases))
	return nil
}

// applyMembership is SetReplicas without the no-change short-circuit,
// for initial construction.
func (rt *Router) applyMembership(bases []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, b := range bases {
		rep := &replica{base: b}
		rep.healthy.Store(true)
		rt.members[b] = rep
	}
	rt.ring = NewRing(bases, rt.cfg.VNodes)
}

// candidates resolves a key to its ordered forward targets: the key's
// ring owner first, then its distinct successors up to the replication
// depth, keeping only healthy, non-removed replicas. Under PolicyRandom
// it instead returns one uniformly random healthy replica (the
// no-affinity ablation baseline).
func (rt *Router) candidates(key string) []*replica {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.cfg.Policy == PolicyRandom {
		var healthy []*replica
		for _, rep := range rt.members {
			if rep.healthy.Load() {
				healthy = append(healthy, rep)
			}
		}
		if len(healthy) == 0 {
			return nil
		}
		rt.rngMu.Lock()
		i := rt.rng.Intn(len(healthy))
		rt.rngMu.Unlock()
		return healthy[i : i+1]
	}
	var out []*replica
	for _, base := range rt.ring.Successors(key, rt.cfg.Replication) {
		rep, ok := rt.members[base]
		if !ok || !rep.healthy.Load() {
			continue
		}
		out = append(out, rep)
	}
	return out
}

// shedCheck prices one request against its shard's advertised admission
// state. It sheds only on fresh, calibrated data: a replica that has
// never reported, reports stale data, or has no rate for this kind gets
// the request (the replica's own admission control is the backstop —
// the edge shed is an optimization that saves the proxy hop, not the
// correctness mechanism).
func (rt *Router) shedCheck(rep *replica, kind string, cycles float64, deadline time.Duration) (time.Duration, bool) {
	if !rt.cfg.ShedEnabled {
		return 0, false
	}
	st := rep.status.Load()
	if st == nil || time.Since(st.at) > rt.cfg.StatuszMaxAge {
		return 0, false
	}
	// Micro-batching replicas calibrate under the batch kernels'
	// execution kinds ("dtw-batch", ...), not the pool kinds
	// EstimateCostFile prices with ("dtw", ...) — and those are exactly
	// the highest-throughput deployments, where a blind edge shed hurts
	// most. Prefer the batch rate when the replica advertises one (its
	// units are the same EstimateCost units, summed per batch), falling
	// back to the pool-kind rate for unbatched replicas.
	rate := st.s.Admit.Rates[kind]
	if bk := serve.BatchKind(kind); bk != "" {
		if br := st.s.Admit.Rates[bk]; br > 0 {
			rate = br
		}
	}
	if rate <= 0 {
		return 0, false
	}
	workers := st.s.Workers
	if workers < 1 {
		workers = 1
	}
	predicted := st.s.Admit.BacklogSeconds/float64(workers) + cycles/rate
	if predicted*rt.cfg.ShedHeadroom <= deadline.Seconds() {
		return 0, false
	}
	retry := time.Duration((predicted*rt.cfg.ShedHeadroom - deadline.Seconds()) * float64(time.Second))
	if retry < time.Second {
		retry = time.Second
	}
	return retry, true
}

// handleSolve is the proxy path: decode just enough to hash, place on
// the ring, maybe shed at the edge, then forward with the remaining
// deadline attached, failing over across ring successors on transport
// errors. Upstream responses pass through verbatim — status, Retry-After,
// cache disposition, request ID — so a client cannot tell one replica
// from the fleet. Every request gets a hop span (decode_hash ->
// candidate_pick -> admission_check -> one annotated proxy phase per
// attempt) retained for /debug/dptrace, and every response — proxied or
// router-originated — carries X-Request-ID, so a 429/502/503 minted here
// is as traceable in client logs as a replica answer.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a spec.File JSON body", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)

	hop := obs.NewHopSpan(reqID, start)
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
		hop.SetTrace(tc.TraceID) // a tracing client stays the trace root
	} else {
		hop.SetTrace(obs.NewTraceContext().TraceID) // the router is the edge: root here
	}
	fail := func(status int, msg string) {
		hop.Finish(time.Now(), status, "")
		rt.hops.Add(hop)
		http.Error(w, msg, status)
	}

	rt.submitMu.RLock()
	if rt.draining.Load() {
		rt.submitMu.RUnlock()
		fail(http.StatusServiceUnavailable, "router draining")
		return
	}
	rt.inflight.Add(1)
	rt.submitMu.RUnlock()
	defer rt.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		rt.metrics.BadSpec.Inc()
		fail(http.StatusBadRequest, err.Error())
		return
	}
	f, err := spec.Decode(body)
	if err != nil {
		// Malformed specs die at the edge: no replica burns decode work on
		// a request that can only 400.
		rt.metrics.BadSpec.Inc()
		fail(http.StatusBadRequest, err.Error())
		return
	}
	key, err := f.Hash()
	hop.Observe("decode_hash", start, time.Now())
	if err != nil {
		rt.metrics.BadSpec.Inc()
		fail(http.StatusBadRequest, err.Error())
		return
	}
	hop.SetKind(f.Problem)

	deadline := rt.cfg.Deadline
	if ms := r.Header.Get(serve.DeadlineHeader); ms != "" {
		if v, perr := strconv.ParseInt(ms, 10, 64); perr == nil && v > 0 {
			deadline = time.Duration(v) * time.Millisecond
		}
	}

	pickStart := time.Now()
	cands := rt.candidates(key)
	hop.ObserveNote("candidate_pick", fmt.Sprintf("candidates=%d", len(cands)), pickStart, time.Now())
	if len(cands) == 0 {
		rt.metrics.NoReplica.Inc()
		fail(http.StatusServiceUnavailable, "route: no healthy replica")
		return
	}

	admitStart := time.Now()
	kind, cycles := serve.EstimateCostFile(f)
	retry, shed := rt.shedCheck(cands[0], kind, cycles, deadline)
	hop.ObserveNote("admission_check", fmt.Sprintf("shed=%v", shed), admitStart, time.Now())
	if shed {
		rt.metrics.Shed.Inc()
		w.Header().Set("Retry-After",
			strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		fail(http.StatusTooManyRequests,
			fmt.Sprintf("route: shard overloaded, predicted completion exceeds deadline %v", deadline))
		return
	}

	// The forward context outlives the deadline slightly so the replica's
	// own verdict (a 504 with accounting behind it) wins the race against
	// the router's cruder cut.
	ctx, cancel := context.WithTimeout(r.Context(), deadline+500*time.Millisecond)
	defer cancel()

	var lastErr error
	for i, rep := range cands {
		if i > 0 {
			rt.metrics.Retries.Inc()
		}
		rem := deadline - time.Since(start)
		if rem <= 0 {
			break
		}
		attemptStart := time.Now()
		resp, err := rt.send(ctx, hop, reqID, rep, body, rem)
		if err != nil {
			lastErr = err
			hop.ObserveNote("proxy",
				fmt.Sprintf("attempt=%d replica=%s err=%v", i+1, rep.base, err),
				attemptStart, time.Now())
			if ctx.Err() != nil {
				break
			}
			continue
		}
		hop.ObserveNote("proxy",
			fmt.Sprintf("attempt=%d replica=%s status=%d", i+1, rep.base, resp.StatusCode),
			attemptStart, time.Now())
		rt.metrics.Forwarded(rep.base, resp.StatusCode)
		hop.Finish(time.Now(), resp.StatusCode, rep.base)
		rt.hops.Add(hop)
		copyResponse(w, resp)
		return
	}
	if ctx.Err() != nil {
		fail(http.StatusGatewayTimeout, "route: deadline exceeded before any replica answered")
		return
	}
	rt.metrics.ProxyErrors.Inc()
	rt.logger.Warn("all candidates failed", "key", key[:16], "candidates", len(cands), "err", lastErr)
	fail(http.StatusBadGateway, fmt.Sprintf("route: all replicas failed: %v", lastErr))
}

// send forwards one request to one replica, attaching the request id and
// the hop's trace context (trace id + this hop's span id as the parent)
// so the replica's span links under this hop. Solves are pure functions
// of the spec, so a transport-level failure (no response) is always safe
// to retry on the next candidate.
func (rt *Router) send(ctx context.Context, hop *obs.HopSpan, reqID string, rep *replica, body []byte, remaining time.Duration) (*http.Response, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	ms := remaining.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	req.Header.Set(serve.DeadlineHeader, strconv.FormatInt(ms, 10))
	req.Header.Set("X-Request-ID", reqID)
	if tc := hop.Context(); tc.TraceID != "" {
		req.Header.Set(obs.TraceHeader, tc.String())
	}
	return rt.client.Do(req)
}

// copyResponse streams an upstream response back to the client:
// passthrough status and the headers that carry serving semantics
// (Retry-After for 429s, the cache disposition, the request ID).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "X-Dpserve-Cache", "X-Request-ID"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// healthLoop probes every member each HealthInterval and applies
// ejection/readmission hysteresis, refreshes /statusz snapshots for the
// shed model, and reaps drained-out removed replicas.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		rt.mu.RLock()
		reps := make([]*replica, 0, len(rt.members))
		for _, rep := range rt.members {
			reps = append(reps, rep)
		}
		rt.mu.RUnlock()
		for _, rep := range reps {
			rt.probe(rep)
		}
		rt.reapDrains()
	}
}

// probe runs one health check + statusz refresh against one replica.
func (rt *Router) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err == nil {
		resp, err := rt.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	rt.observeProbe(rep, ok)
	if ok {
		rt.refreshStatus(ctx, rep)
	}
}

// observeProbe applies one probe outcome to the replica's hysteresis
// counters. Ejection needs EjectAfter consecutive failures; readmission
// needs ReadmitAfter consecutive successes — a flapping replica neither
// bounces in and out per probe nor wedges the counters.
func (rt *Router) observeProbe(rep *replica, ok bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if ok {
		rep.consecOK++
		rep.consecFail = 0
		if !rep.healthy.Load() && rep.consecOK >= rt.cfg.ReadmitAfter {
			rep.healthy.Store(true)
			rt.metrics.Readmits.Inc()
			rt.logger.Info("replica readmitted", "replica", rep.base)
		}
		return
	}
	rep.consecFail++
	rep.consecOK = 0
	if rep.healthy.Load() && rep.consecFail >= rt.cfg.EjectAfter {
		rep.healthy.Store(false)
		rt.metrics.Ejections.Inc()
		rt.logger.Warn("replica ejected", "replica", rep.base, "consecutive_failures", rep.consecFail)
	}
}

// refreshStatus pulls the replica's /statusz for the shed model.
func (rt *Router) refreshStatus(ctx context.Context, rep *replica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/statusz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	var st serve.Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	rep.status.Store(&replicaStatus{at: time.Now(), s: st})
}

// reapDrains forgets removed replicas whose last in-flight request has
// finished.
func (rt *Router) reapDrains() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	kept := rt.drains[:0]
	for _, rep := range rt.drains {
		if rep.inflight.Load() > 0 {
			kept = append(kept, rep)
		} else {
			rt.logger.Info("removed replica drained", "replica", rep.base)
		}
	}
	rt.drains = kept
}

// reloadLoop polls the membership file and applies changes.
func (rt *Router) reloadLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.ReloadInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		st, err := os.Stat(rt.cfg.ReplicasFile)
		if err != nil {
			continue
		}
		rt.mu.RLock()
		unchanged := st.ModTime().Equal(rt.fileMod)
		rt.mu.RUnlock()
		if unchanged {
			continue
		}
		bases, mod, err := readReplicasFile(rt.cfg.ReplicasFile)
		if err != nil {
			rt.logger.Warn("replicas file reload failed", "err", err)
			continue
		}
		if err := rt.SetReplicas(bases); err != nil {
			rt.logger.Warn("replicas file rejected", "err", err)
			continue
		}
		rt.mu.Lock()
		rt.fileMod = mod
		rt.mu.Unlock()
	}
}

// routerStatusz is the router's own /statusz shape: an aggregated view
// of the fleet for operators and smoke tests.
type routerStatusz struct {
	Draining bool                   `json:"draining"`
	Policy   string                 `json:"policy"`
	Replicas []routerReplicaStatusz `json:"replicas"`
}

type routerReplicaStatusz struct {
	Base            string  `json:"base"`
	Healthy         bool    `json:"healthy"`
	Removed         bool    `json:"removed,omitempty"`
	Inflight        int64   `json:"inflight"`
	OwnShare        float64 `json:"own_share"` // fraction of the key space this replica owns
	BacklogSeconds  float64 `json:"backlog_seconds"`
	ReplicaDraining bool    `json:"replica_draining"`
	StatusAgeMs     int64   `json:"status_age_ms"` // -1 before the first successful poll
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
}

// Statusz snapshots the router's aggregated fleet view.
func (rt *Router) Statusz() []routerReplicaStatusz {
	rt.mu.RLock()
	reps := make([]*replica, 0, len(rt.members)+len(rt.drains))
	for _, rep := range rt.members {
		reps = append(reps, rep)
	}
	reps = append(reps, rt.drains...)
	shares := rt.ring.Shares()
	rt.mu.RUnlock()
	out := make([]routerReplicaStatusz, 0, len(reps))
	for _, rep := range reps {
		rs := routerReplicaStatusz{
			Base:        rep.base,
			Healthy:     rep.healthy.Load(),
			Removed:     rep.removed.Load(),
			Inflight:    rep.inflight.Load(),
			OwnShare:    shares[rep.base],
			StatusAgeMs: -1,
		}
		if st := rep.status.Load(); st != nil {
			rs.StatusAgeMs = time.Since(st.at).Milliseconds()
			rs.BacklogSeconds = st.s.Admit.BacklogSeconds
			rs.ReplicaDraining = st.s.Draining
			rs.CacheHits = st.s.Cache.Hits
			rs.CacheMisses = st.s.Cache.Misses
		}
		out = append(out, rs)
	}
	sortReplicaStatusz(out)
	return out
}

func sortReplicaStatusz(rs []routerReplicaStatusz) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Base < rs[j-1].Base; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(routerStatusz{
		Draining: rt.draining.Load(),
		Policy:   rt.cfg.Policy,
		Replicas: rt.Statusz(),
	})
}

// handleHealthz reports router liveness: 200 while routing, 503 once
// drain begins.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.metrics.Write(w)
}

// handleTrace serves the router's retained hop spans: Perfetto trace-
// event JSON by default, raw wire spans with ?format=wire (the form the
// fleet trace collector pulls — same contract as dpserve's endpoint).
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "wire" {
		json.NewEncoder(w).Encode(rt.hops.WireSpans())
		return
	}
	rt.hops.Trace().Write(w)
}

// handleFleetTrace pulls every replica's recent spans plus the router's
// own hops, stitches them by trace id, and serves one Perfetto document
// with a process track per fleet member — the cross-tier view of where
// requests spent their time. Pull failures for individual replicas are
// reported in otherData rather than failing the whole view.
func (rt *Router) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	traces, errs := rt.collector.Collect(ctx)
	tr := obs.FleetTrace(traces)
	for name, err := range errs {
		tr.OtherData["pull_error "+name] = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	tr.Write(w)
}

// collectLoop is the tail-based capture driver: periodically stitch the
// fleet's recent spans and log (once per trace) any that crossed the
// SlowTrace bar, with the full cross-tier phase breakdown.
func (rt *Router) collectLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.cfg.CollectInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.CollectInterval)
		traces, _ := rt.collector.Collect(ctx)
		cancel()
		if n := rt.collector.LogSlow(traces); n > 0 {
			rt.metrics.SlowTraces.Add(int64(n))
		}
	}
}

// BeginDrain flips the router into draining mode: /healthz answers 503,
// new /solve requests are refused, in-flight forwards run to completion.
// Idempotent; the first step of a graceful shutdown.
func (rt *Router) BeginDrain() {
	rt.submitMu.Lock()
	rt.draining.Store(true)
	rt.submitMu.Unlock()
}

// Close shuts the router down: drains, stops the background loops, waits
// for in-flight forwards, and releases upstream connections. Idempotent.
func (rt *Router) Close() {
	rt.submitMu.Lock()
	already := rt.closed.Swap(true)
	rt.draining.Store(true)
	rt.submitMu.Unlock()
	if already {
		return
	}
	close(rt.stop)
	rt.wg.Wait()
	rt.inflight.Wait()
	if t, ok := rt.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}
