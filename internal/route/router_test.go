package route

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"systolicdp/internal/serve"
)

// fakeReplica is a scriptable upstream: counts solves, can fail health
// probes, serve a canned statusz, or stall solves.
type fakeReplica struct {
	ts       *httptest.Server
	solves   atomic.Int64
	unwell   atomic.Bool  // healthz answers 503
	status   atomic.Value // serve.Statusz to serve; zero value if unset
	stall    atomic.Int64 // per-solve delay in ms
	lastHdrs atomic.Value // http.Header of the last /solve request
}

func newFakeReplica() *fakeReplica {
	f := &fakeReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		f.lastHdrs.Store(r.Header.Clone())
		if d := f.stall.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		f.solves.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("X-Dpserve-Cache", "miss")
		fmt.Fprintf(w, `{"problem":"fake","cost":1}`)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.unwell.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		st, _ := f.status.Load().(serve.Statusz)
		json.NewEncoder(w).Encode(st)
	})
	f.ts = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) base() string { return f.ts.URL }

func chainBody(salt int) string {
	return fmt.Sprintf(`{"problem":"chain","dims":[30,35,15,5,10,20,%d]}`, 25+salt)
}

func postBody(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, string(raw)
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// Identical bodies must always land on the same replica (shard-local
// cache affinity), and distinct keys must spread across the fleet.
func TestRouterHashAffinity(t *testing.T) {
	a, b := newFakeReplica(), newFakeReplica()
	defer a.ts.Close()
	defer b.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base(), b.base()}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// The same body 10 times: exactly one replica sees all 10.
	for i := 0; i < 10; i++ {
		resp, body := postBody(t, ts.URL, chainBody(0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("X-Dpserve-Cache") == "" {
			t.Error("cache disposition header not passed through")
		}
	}
	na, nb := a.solves.Load(), b.solves.Load()
	if na+nb != 10 || (na != 0 && nb != 0) {
		t.Fatalf("affinity broken: replica solves %d / %d, want 10 / 0", na, nb)
	}

	// Many distinct bodies: both replicas see traffic.
	for i := 1; i <= 40; i++ {
		postBody(t, ts.URL, chainBody(i))
	}
	if a.solves.Load() == na || b.solves.Load() == nb {
		t.Fatalf("distribution broken: solves %d / %d after 40 distinct keys", a.solves.Load(), b.solves.Load())
	}
}

// A malformed spec dies at the edge with 400 — no replica sees it.
func TestRouterRejectsBadSpecAtEdge(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Malformed JSON and a spec Validate rejects (non-finite weight):
	// both die at decode, before any replica is chosen.
	for i, body := range []string{`{not json`, `{"problem":"dtw","x":[1,2],"y":[3,"NaN"]}`} {
		resp, _ := postBody(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if a.solves.Load() != 0 {
		t.Error("bad spec was forwarded to a replica")
	}
	if rt.Metrics().BadSpec.Value() != 2 {
		t.Errorf("bad_spec counter %d, want 2", rt.Metrics().BadSpec.Value())
	}
}

// The router must propagate the remaining deadline to the replica via
// X-Deadline-Ms: configured default when the client sends nothing, the
// client's own header when present.
func TestRouterDeadlinePropagation(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}, Deadline: 10 * time.Second})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	postBody(t, ts.URL, chainBody(0))
	hdrs := a.lastHdrs.Load().(http.Header)
	ms, err := time.ParseDuration(hdrs.Get(serve.DeadlineHeader) + "ms")
	if err != nil || ms <= 0 || ms > 10*time.Second {
		t.Fatalf("forwarded deadline %q, want (0s, 10s]", hdrs.Get(serve.DeadlineHeader))
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", strings.NewReader(chainBody(1)))
	req.Header.Set(serve.DeadlineHeader, "1500")
	req.Header.Set("X-Request-ID", "edge-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	hdrs = a.lastHdrs.Load().(http.Header)
	ms, err = time.ParseDuration(hdrs.Get(serve.DeadlineHeader) + "ms")
	if err != nil || ms <= 0 || ms > 1500*time.Millisecond {
		t.Fatalf("client deadline not propagated: forwarded %q, want (0, 1500]ms", hdrs.Get(serve.DeadlineHeader))
	}
	if hdrs.Get("X-Request-ID") != "edge-42" {
		t.Errorf("request ID not propagated: %q", hdrs.Get("X-Request-ID"))
	}
}

// Ejection and readmission follow the hysteresis thresholds: traffic
// fails over to the ring successor while the owner is ejected, and
// returns (cache affinity restored) once it is readmitted.
func TestRouterEjectionReadmissionHysteresis(t *testing.T) {
	a, b := newFakeReplica(), newFakeReplica()
	defer a.ts.Close()
	defer b.ts.Close()
	rt := newTestRouter(t, Config{
		Replicas:       []string{a.base(), b.base()},
		HealthInterval: 10 * time.Millisecond,
		EjectAfter:     3,
		ReadmitAfter:   2,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find a body owned by replica a.
	owned := ""
	for i := 0; i < 200; i++ {
		body := chainBody(i)
		before := a.solves.Load()
		postBody(t, ts.URL, body)
		if a.solves.Load() > before {
			owned = body
			break
		}
	}
	if owned == "" {
		t.Fatal("no key maps to replica a")
	}

	a.unwell.Store(true)
	waitFor(t, time.Second, func() bool { return rt.Metrics().Ejections.Value() >= 1 })

	// While ejected, the owned key fails over to b.
	nb := b.solves.Load()
	resp, body := postBody(t, ts.URL, owned)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d: %s", resp.StatusCode, body)
	}
	if b.solves.Load() != nb+1 {
		t.Fatalf("failover did not reach ring successor (b solves %d, want %d)", b.solves.Load(), nb+1)
	}

	a.unwell.Store(false)
	waitFor(t, time.Second, func() bool { return rt.Metrics().Readmits.Value() >= 1 })

	na := a.solves.Load()
	postBody(t, ts.URL, owned)
	if a.solves.Load() != na+1 {
		t.Fatal("traffic did not return to readmitted owner")
	}
}

// A single failed probe must NOT eject (hysteresis), and a single good
// probe must not readmit.
func TestRouterHysteresisCounters(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}, EjectAfter: 3, ReadmitAfter: 2,
		HealthInterval: time.Hour}) // probes driven by hand
	rep := rt.members[normalizeBases([]string{a.base()})[0]]

	rt.observeProbe(rep, false)
	rt.observeProbe(rep, false)
	if !rep.healthy.Load() {
		t.Fatal("ejected after 2 failures with EjectAfter=3")
	}
	rt.observeProbe(rep, false)
	if rep.healthy.Load() {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	rt.observeProbe(rep, true)
	if rep.healthy.Load() {
		t.Fatal("readmitted after 1 success with ReadmitAfter=2")
	}
	// An interleaved failure resets the readmission streak.
	rt.observeProbe(rep, false)
	rt.observeProbe(rep, true)
	if rep.healthy.Load() {
		t.Fatal("readmission streak survived an interleaved failure")
	}
	rt.observeProbe(rep, true)
	if !rep.healthy.Load() {
		t.Fatal("not readmitted after 2 consecutive successes")
	}
}

// Early shedding: when the shard's advertised backlog and calibrated
// rate predict a deadline miss, the router answers 429 + Retry-After
// without forwarding. Uncalibrated or stale state never sheds.
func TestRouterEarlyShed(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{
		Replicas:       []string{a.base()},
		HealthInterval: 10 * time.Millisecond,
		ShedEnabled:    true,
		ShedHeadroom:   1.0,
		Deadline:       time.Second,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// No statusz yet (zero rates): must forward, not shed.
	resp, _ := postBody(t, ts.URL, chainBody(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uncalibrated request status %d, want 200", resp.StatusCode)
	}

	// Advertise a huge backlog with a calibrated chain rate; wait for the
	// poller to pick it up, then expect an edge shed.
	a.status.Store(serve.Statusz{
		Workers: 1,
		Admit: serve.AdmitStatus{
			BacklogSeconds: 3600,
			Rates:          map[string]float64{"chain": 1e6},
		},
	})
	waitFor(t, time.Second, func() bool {
		rep := rt.Statusz()
		return len(rep) == 1 && rep[0].BacklogSeconds > 0
	})
	solved := a.solves.Load()
	resp, _ = postBody(t, ts.URL, chainBody(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded shard status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("edge shed missing Retry-After")
	}
	if a.solves.Load() != solved {
		t.Error("shed request still burned a proxy hop")
	}
	if rt.Metrics().Shed.Value() != 1 {
		t.Errorf("shed counter %d, want 1", rt.Metrics().Shed.Value())
	}
}

// Transport-level failures fail over to the next ring successor within
// the same request; with every candidate down the client gets 502.
func TestRouterTransportFailover(t *testing.T) {
	a, b := newFakeReplica(), newFakeReplica()
	defer b.ts.Close()
	deadBase := a.base()
	a.ts.Close() // a is in membership and nominally healthy, but unreachable

	rt := newTestRouter(t, Config{
		Replicas:       []string{deadBase, b.base()},
		Replication:    2,
		HealthInterval: time.Hour, // prober never runs: forwards must cope alone
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	for i := 0; i < 20; i++ {
		resp, body := postBody(t, ts.URL, chainBody(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover status %d: %s", resp.StatusCode, body)
		}
	}
	if b.solves.Load() != 20 {
		t.Fatalf("live replica solved %d of 20", b.solves.Load())
	}

	b.ts.Close()
	resp, _ := postBody(t, ts.URL, chainBody(999))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead status %d, want 502", resp.StatusCode)
	}
	if rt.Metrics().ProxyErrors.Value() != 1 {
		t.Errorf("proxy_errors %d, want 1", rt.Metrics().ProxyErrors.Value())
	}
}

// Membership change drains gracefully: a request in flight against a
// replica removed from the ring finishes on that replica, and the router
// forgets the replica only after its in-flight count reaches zero.
func TestRouterMembershipDrain(t *testing.T) {
	a, b := newFakeReplica(), newFakeReplica()
	defer a.ts.Close()
	defer b.ts.Close()
	rt := newTestRouter(t, Config{
		Replicas:       []string{a.base(), b.base()},
		HealthInterval: 10 * time.Millisecond,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find a key owned by a, then stall a's solves so we can hold one in
	// flight across the membership change.
	owned := ""
	for i := 0; i < 200; i++ {
		body := chainBody(i)
		before := a.solves.Load()
		postBody(t, ts.URL, body)
		if a.solves.Load() > before {
			owned = body
			break
		}
	}
	if owned == "" {
		t.Fatal("no key maps to replica a")
	}
	a.stall.Store(300)

	type result struct {
		status int
		ra     int64 // a's solve count when the response landed
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(owned))
		if err != nil {
			done <- result{0, 0}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, a.solves.Load()}
	}()

	// Remove a while the request is in flight on it.
	waitFor(t, time.Second, func() bool {
		for _, rs := range rt.Statusz() {
			if rs.Base == normalizeBases([]string{a.base()})[0] && rs.Inflight > 0 {
				return true
			}
		}
		return false
	})
	solvedBefore := a.solves.Load()
	if err := rt.SetReplicas([]string{b.base()}); err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during membership change: status %d", r.status)
	}
	if r.ra != solvedBefore+1 {
		t.Fatal("in-flight request did not finish on its old shard")
	}

	// After the drain, a disappears from the fleet view; new traffic for
	// the old key goes to b.
	waitFor(t, time.Second, func() bool { return len(rt.Statusz()) == 1 })
	a.stall.Store(0)
	nb := b.solves.Load()
	postBody(t, ts.URL, owned)
	if b.solves.Load() != nb+1 {
		t.Fatal("re-sharded key did not move to the surviving replica")
	}
}

// The membership file is polled and applied on modification.
func TestRouterReplicasFileReload(t *testing.T) {
	a, b := newFakeReplica(), newFakeReplica()
	defer a.ts.Close()
	defer b.ts.Close()

	path := filepath.Join(t.TempDir(), "replicas")
	if err := os.WriteFile(path, []byte("# fleet\n"+a.base()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rt := newTestRouter(t, Config{
		ReplicasFile:   path,
		ReloadInterval: 10 * time.Millisecond,
		HealthInterval: 10 * time.Millisecond,
	})
	if got := rt.ring.Len(); got != 1 {
		t.Fatalf("initial membership %d, want 1", got)
	}

	// Grow the fleet; mtime granularity can be coarse, so force it.
	if err := os.WriteFile(path, []byte(a.base()+","+b.base()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Second)
	os.Chtimes(path, future, future)
	waitFor(t, 2*time.Second, func() bool {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		return rt.ring.Len() == 2
	})
}

// Router drain: healthz flips to 503 and new solves are refused, while
// Close remains idempotent.
func TestRouterDrain(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}
	rt.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain %d, want 503", resp.StatusCode)
	}
	r2, _ := postBody(t, ts.URL, chainBody(0))
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain %d, want 503", r2.StatusCode)
	}
	rt.Close()
	rt.Close()
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A micro-batching replica calibrates its admission rates under the
// batch kernels' execution kinds ("chain-batch", ...), not the pool
// kinds EstimateCostFile reports ("chain", ...). The edge shed must
// price against the batch rate when that is what the replica
// advertises — before the fix this request forwarded into the hour-long
// backlog instead of shedding at the edge.
func TestRouterEarlyShedBatchedKinds(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{
		Replicas:       []string{a.base()},
		HealthInterval: 10 * time.Millisecond,
		ShedEnabled:    true,
		ShedHeadroom:   1.0,
		Deadline:       time.Second,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// The replica batches chain solves: only "chain-batch" is calibrated.
	a.status.Store(serve.Statusz{
		Workers: 1,
		Admit: serve.AdmitStatus{
			BacklogSeconds: 3600,
			Rates:          map[string]float64{"chain-batch": 1e6},
		},
	})
	waitFor(t, time.Second, func() bool {
		rep := rt.Statusz()
		return len(rep) == 1 && rep[0].BacklogSeconds > 0
	})
	solved := a.solves.Load()
	resp, _ := postBody(t, ts.URL, chainBody(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batched-kind overload status %d, want 429 (edge shed blind to batch rates)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("edge shed missing Retry-After")
	}
	if a.solves.Load() != solved {
		t.Error("shed request still burned a proxy hop")
	}
}
