package route

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// goroutinesSettleTo polls until the goroutine count returns to the
// baseline (runtime bookkeeping and netpoll goroutines settle lazily).
func goroutinesSettleTo(baseline int, d time.Duration) (int, bool) {
	deadline := time.Now().Add(d)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The router's three concurrent activities — request forwarding,
// membership reloads, and prober-driven ejection/readmission — must
// interleave without races, and shutting the router down mid-storm must
// strand no goroutine. Run under -race (CI does).
func TestRouterConcurrentForwardReloadEject(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const nReplicas = 4
	reps := make([]*fakeReplica, nReplicas)
	bases := make([]string, nReplicas)
	for i := range reps {
		reps[i] = newFakeReplica()
		bases[i] = reps[i].base()
		defer reps[i].ts.Close()
	}

	rt, err := New(Config{
		Replicas:       bases,
		Replication:    2,
		HealthInterval: 5 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   1,
		ShedEnabled:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Forwarders: distinct keys, constantly.
	var ok200, other atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				resp, err := http.Post(ts.URL+"/solve", "application/json",
					strings.NewReader(chainBody(w*10_000+i)))
				if err != nil {
					continue
				}
				drainBody(resp)
				if resp.StatusCode == http.StatusOK {
					ok200.Add(1)
				} else {
					other.Add(1)
				}
			}
		}(w)
	}

	// Membership churn: flip between the full fleet and a subset.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if i%2 == 0 {
				rt.SetReplicas(bases[:3])
			} else {
				rt.SetReplicas(bases)
			}
			time.Sleep(7 * time.Millisecond)
		}
	}()

	// Health churn: one replica flaps, driving ejection/readmission
	// through the prober while forwards race it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			reps[1].unwell.Store(i%2 == 0)
			time.Sleep(11 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no request succeeded during the churn storm")
	}
	// Requests racing a flapping replica may fail over or 502/503; what
	// they must never do is hang or corrupt state. Shut down and assert
	// every goroutine is accounted for (the fake replicas close first so
	// only router-owned goroutines can be the leak).
	ts.Close()
	rt.Close()
	for _, rep := range reps {
		rep.ts.Close()
	}
	if n, leaked := goroutinesSettleTo(baseline, 5*time.Second); !leaked {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked after router shutdown: %d > baseline %d\n%s", n, baseline, buf)
	}
}

// Close during active traffic must wait for in-flight forwards, refuse
// new ones, and leave nothing behind — even when called from several
// goroutines at once.
func TestRouterCloseRace(t *testing.T) {
	baseline := runtime.NumGoroutine()
	a := newFakeReplica()
	a.stall.Store(20)
	defer a.ts.Close()

	rt, err := New(Config{Replicas: []string{a.base()}, HealthInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(chainBody(i)))
			if err == nil {
				drainBody(resp)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	var closers sync.WaitGroup
	for i := 0; i < 4; i++ {
		closers.Add(1)
		go func() { defer closers.Done(); rt.Close() }()
	}
	closers.Wait()
	wg.Wait()
	ts.Close()
	a.ts.Close()
	if n, settled := goroutinesSettleTo(baseline, 5*time.Second); !settled {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked racing Close: %d > baseline %d\n%s", n, baseline, buf)
	}
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
