package route

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/obs"
	"systolicdp/internal/serve"
)

// The router must mint a trace at the edge and send X-Dp-Trace (trace id
// + its hop's span id) and X-Request-ID downstream; its own hop span,
// retained at /debug/dptrace, must carry the same ids.
func TestRouterTracePropagation(t *testing.T) {
	a := newFakeReplica()
	defer a.ts.Close()
	rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, body := postBody(t, ts.URL, chainBody(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hdrs, _ := a.lastHdrs.Load().(http.Header)
	if hdrs == nil {
		t.Fatal("replica saw no request")
	}
	tc, ok := obs.ParseTraceContext(hdrs.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("replica got unparseable %s header %q", obs.TraceHeader, hdrs.Get(obs.TraceHeader))
	}
	reqID := hdrs.Get("X-Request-ID")
	if reqID == "" {
		t.Error("router did not propagate X-Request-ID downstream")
	}
	if resp.Header.Get("X-Request-ID") != reqID {
		t.Errorf("client saw request id %q, replica %q", resp.Header.Get("X-Request-ID"), reqID)
	}

	// The hop span at /debug/dptrace?format=wire carries the same trace
	// and exposes its span id as the replica's parent.
	wireResp, err := http.Get(ts.URL + "/debug/dptrace?format=wire")
	if err != nil {
		t.Fatal(err)
	}
	defer wireResp.Body.Close()
	var spans []obs.WireSpan
	if err := json.NewDecoder(wireResp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("router retained %d hop spans, want 1", len(spans))
	}
	hop := spans[0]
	if hop.Service != "dprouter" || hop.TraceID != tc.TraceID || hop.SpanID != tc.SpanID {
		t.Errorf("hop span %+v does not match propagated context %+v", hop, tc)
	}
	if hop.ID != reqID || hop.Status != http.StatusOK || hop.Replica != a.base() {
		t.Errorf("hop span %+v: want id %s, status 200, replica %s", hop, reqID, a.base())
	}
	var phases []string
	for _, p := range hop.Phases {
		phases = append(phases, p.Name)
	}
	if got := strings.Join(phases, ","); got != "decode_hash,candidate_pick,admission_check,proxy" {
		t.Errorf("hop phases %q, want decode_hash,candidate_pick,admission_check,proxy", got)
	}

	// A client that already traces stays the root: its trace id is kept.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve", strings.NewReader(chainBody(1)))
	req.Header.Set(obs.TraceHeader, "feedc0de-1234abcd")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	hdrs, _ = a.lastHdrs.Load().(http.Header)
	tc2, ok := obs.ParseTraceContext(hdrs.Get(obs.TraceHeader))
	if !ok || tc2.TraceID != "feedc0de" {
		t.Errorf("client trace id not kept: downstream context %+v", tc2)
	}
	if tc2.SpanID == "1234abcd" {
		t.Error("router forwarded the client's span id instead of its own hop's")
	}
}

// Every router-originated error response must carry X-Request-ID: a 429
// or 503 minted at the edge has to be as traceable in client logs as a
// replica answer. One subtest per router status path.
func TestRouterRequestIDOnEveryStatusPath(t *testing.T) {
	post := func(t *testing.T, url, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url+"/solve", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	check := func(t *testing.T, resp *http.Response, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Errorf("%d response missing X-Request-ID", wantStatus)
		}
	}

	t.Run("400 bad spec", func(t *testing.T) {
		a := newFakeReplica()
		defer a.ts.Close()
		rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		check(t, post(t, ts.URL, "{not json", nil), http.StatusBadRequest)
	})

	t.Run("429 edge shed", func(t *testing.T) {
		a := newFakeReplica()
		defer a.ts.Close()
		a.status.Store(serve.Statusz{
			Workers: 1,
			Admit: serve.AdmitStatus{
				BacklogSeconds: 3600,
				Rates:          map[string]float64{"chain": 1e6},
			},
		})
		rt := newTestRouter(t, Config{
			Replicas:       []string{a.base()},
			HealthInterval: 10 * time.Millisecond,
			ShedEnabled:    true,
			Deadline:       time.Second,
		})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		waitFor(t, time.Second, func() bool {
			rep := rt.Statusz()
			return len(rep) == 1 && rep[0].BacklogSeconds > 0
		})
		check(t, post(t, ts.URL, chainBody(0), nil), http.StatusTooManyRequests)
	})

	t.Run("502 all replicas failed", func(t *testing.T) {
		a := newFakeReplica()
		deadBase := a.base()
		a.ts.Close() // nominally healthy but unreachable
		rt := newTestRouter(t, Config{
			Replicas:       []string{deadBase},
			HealthInterval: time.Hour,
		})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		check(t, post(t, ts.URL, chainBody(0), nil), http.StatusBadGateway)
	})

	t.Run("503 no healthy replica", func(t *testing.T) {
		a := newFakeReplica()
		defer a.ts.Close()
		a.unwell.Store(true)
		rt := newTestRouter(t, Config{
			Replicas:       []string{a.base()},
			HealthInterval: 10 * time.Millisecond,
			EjectAfter:     1,
		})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		waitFor(t, time.Second, func() bool {
			rep := rt.Statusz()
			return len(rep) == 1 && !rep[0].Healthy
		})
		check(t, post(t, ts.URL, chainBody(0), nil), http.StatusServiceUnavailable)
	})

	t.Run("503 router draining", func(t *testing.T) {
		a := newFakeReplica()
		defer a.ts.Close()
		rt := newTestRouter(t, Config{Replicas: []string{a.base()}})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		rt.BeginDrain()
		check(t, post(t, ts.URL, chainBody(0), nil), http.StatusServiceUnavailable)
	})

	t.Run("504 deadline before any answer", func(t *testing.T) {
		a := newFakeReplica()
		defer a.ts.Close()
		a.stall.Store(2000)
		rt := newTestRouter(t, Config{
			Replicas:       []string{a.base()},
			HealthInterval: time.Hour,
			Deadline:       20 * time.Millisecond,
		})
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		check(t, post(t, ts.URL, chainBody(0), nil), http.StatusGatewayTimeout)
	})
}

// End-to-end stitching: two real dpserve replicas behind the router, a
// few solves, then /debug/fleettrace must contain at least one trace id
// whose spans sit on two different process tracks (router + replica).
func TestRouterFleetTraceStitching(t *testing.T) {
	s1, s2 := serve.New(serve.Config{}), serve.New(serve.Config{})
	defer s1.Close()
	defer s2.Close()
	r1, r2 := httptest.NewServer(s1.Handler()), httptest.NewServer(s2.Handler())
	defer r1.Close()
	defer r2.Close()
	rt := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, body := postBody(t, ts.URL, chainBody(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/fleettrace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	pidsByTrace := map[string]map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			tracks[e.Args["name"].(string)] = true
		}
		if e.Ph != "X" {
			continue
		}
		id, _ := e.Args["trace_id"].(string)
		if id == "" {
			continue
		}
		if pidsByTrace[id] == nil {
			pidsByTrace[id] = map[int]bool{}
		}
		pidsByTrace[id][e.Pid] = true
	}
	if !tracks["router"] || (!tracks[r1.URL] && !tracks[r2.URL]) {
		t.Fatalf("fleet trace tracks %v: want router plus at least one replica", tracks)
	}
	stitched := 0
	for _, pids := range pidsByTrace {
		if len(pids) >= 2 {
			stitched++
		}
	}
	if stitched < 4 {
		t.Errorf("only %d of 4 traces span two tracks; otherData=%v", stitched, doc.OtherData)
	}
}
