package route

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Keys in production are hex SHA-256 spec hashes; synthetic keys
		// with similar entropy stand in.
		keys[i] = fmt.Sprintf("key-%d-%x", i, i*2654435761)
	}
	return keys
}

func testReplicas(n int) []string {
	reps := make([]string, n)
	for i := range reps {
		reps[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return reps
}

// Key shares must stay near-uniform at every fleet size the scaling
// curve uses: with 200 vnodes per replica no replica may own more than
// ~1.45x or less than ~0.55x its fair share of a large key population.
func TestRingDistributionUniformity(t *testing.T) {
	keys := testKeys(100_000)
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		ring := NewRing(testReplicas(n), 200)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[ring.Lookup(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d replicas own keys", n, len(counts))
		}
		ideal := float64(len(keys)) / float64(n)
		for rep, c := range counts {
			share := float64(c) / ideal
			if share > 1.45 || share < 0.55 {
				t.Errorf("n=%d: replica %s owns %.2fx its fair share (%d keys)", n, rep, share, c)
			}
		}
	}
}

// Growing the fleet from N to N+1 replicas must remap roughly 1/(N+1) of
// the keys — and every remapped key must land on the NEW replica. A key
// that moved between two old replicas would be a cache-affinity loss the
// consistent-hash construction exists to prevent.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	keys := testKeys(50_000)
	for _, n := range []int{1, 2, 3, 4, 7} {
		before := NewRing(testReplicas(n), 200)
		after := NewRing(testReplicas(n+1), 200)
		added := testReplicas(n + 1)[n]
		moved := 0
		for _, k := range keys {
			b, a := before.Lookup(k), after.Lookup(k)
			if b == a {
				continue
			}
			moved++
			if a != added {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the new replica %s", n, k, b, a, added)
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1.0 / float64(n+1)
		if frac > 1.5*ideal {
			t.Errorf("n=%d->%d: %.3f of keys moved, want <= %.3f (1.5x ideal %.3f)", n, n+1, frac, 1.5*ideal, ideal)
		}
		if frac < 0.5*ideal {
			t.Errorf("n=%d->%d: only %.3f of keys moved — the new replica is underweighted (ideal %.3f)", n, n+1, frac, ideal)
		}
	}
}

// Removal is the mirror image: keys owned by the departed replica
// scatter to the survivors; everyone else's keys stay put.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	keys := testKeys(50_000)
	reps := testReplicas(5)
	before := NewRing(reps, 200)
	gone := reps[2]
	after := NewRing(append(append([]string{}, reps[:2]...), reps[3:]...), 200)
	for _, k := range keys {
		b, a := before.Lookup(k), after.Lookup(k)
		if b == gone {
			if a == gone {
				t.Fatalf("key %q still mapped to removed replica", k)
			}
			continue
		}
		if b != a {
			t.Fatalf("key %q moved %s -> %s though its owner never left", k, b, a)
		}
	}
}

// The mapping must be a pure function of membership: independent of
// construction order and identical across "process restarts" (fresh
// Ring values). Routers on different machines must agree where a key
// lives, or shard-local caching falls apart.
func TestRingDeterminism(t *testing.T) {
	reps := testReplicas(6)
	ring1 := NewRing(reps, 128)

	shuffled := append([]string{}, reps...)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ring2 := NewRing(shuffled, 128)

	// Duplicates and empties must not perturb the mapping either.
	noisy := append(append([]string{"", reps[0]}, shuffled...), reps[3])
	ring3 := NewRing(noisy, 128)

	for _, k := range testKeys(20_000) {
		a, b, c := ring1.Lookup(k), ring2.Lookup(k), ring3.Lookup(k)
		if a != b || b != c {
			t.Fatalf("key %q maps inconsistently: %q / %q / %q", k, a, b, c)
		}
	}
}

// Successors must be distinct replicas in ring order, capped at the
// membership size, and the first successor must be Lookup's owner.
func TestRingSuccessors(t *testing.T) {
	ring := NewRing(testReplicas(4), 64)
	for _, k := range testKeys(1000) {
		succ := ring.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("key %q: %d successors, want 3", k, len(succ))
		}
		if succ[0] != ring.Lookup(k) {
			t.Fatalf("key %q: successors[0] %q != owner %q", k, succ[0], ring.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %q: duplicate successor %q", k, s)
			}
			seen[s] = true
		}
	}
	if got := ring.Successors("k", 99); len(got) != 4 {
		t.Errorf("successor count capped wrong: %d, want 4", len(got))
	}
	empty := NewRing(nil, 64)
	if empty.Lookup("k") != "" || empty.Successors("k", 2) != nil {
		t.Error("empty ring must return no owners")
	}
}

// Shares must sum to 1 and, at the default vnode count, sit near 1/N —
// it is the ownership view dptop renders, so the arc accounting has to
// agree with the Lookup-based distribution the other tests measure.
func TestRingShares(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(reps, 128)
	shares := r.Shares()
	if len(shares) != len(reps) {
		t.Fatalf("shares for %d replicas, want %d", len(shares), len(reps))
	}
	var sum float64
	for rep, s := range shares {
		sum += s
		if s < 0.10 || s > 0.45 {
			t.Errorf("replica %s owns %.3f of the key space; wildly off 1/4", rep, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum %.6f, want 1", sum)
	}
	if got := NewRing([]string{"http://solo:1"}, 1).Shares(); got["http://solo:1"] != 1 {
		t.Errorf("single-replica share %v, want 1", got)
	}
	if got := NewRing(nil, 8).Shares(); len(got) != 0 {
		t.Errorf("empty ring shares %v, want none", got)
	}
}
