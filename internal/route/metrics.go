package route

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"systolicdp/internal/serve"
)

// Metrics is the router's instrumentation, rendered as Prometheus text
// by the /metrics handler. The counter/gauge primitives are shared with
// internal/serve so both tiers expose the same exposition dialect.
type Metrics struct {
	mu       sync.Mutex
	forwards map[string]*serve.Counter // upstream responses by replica base
	statuses map[int]*serve.Counter    // upstream responses by status code

	Shed        serve.Counter // early sheds at the edge (429 + Retry-After, no proxy hop)
	Retries     serve.Counter // failovers to a later ring successor after a transport error
	NoReplica   serve.Counter // requests with no healthy candidate (503)
	ProxyErrors serve.Counter // every candidate failed at transport level (502)
	BadSpec     serve.Counter // requests rejected at decode (400, never forwarded)
	Ejections   serve.Counter // replica health transitions healthy -> ejected
	Readmits    serve.Counter // replica health transitions ejected -> healthy
	Reloads     serve.Counter // membership changes applied (file reload or SetReplicas)
}

// NewMetrics builds the metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		forwards: make(map[string]*serve.Counter),
		statuses: make(map[int]*serve.Counter),
	}
}

// Forwarded counts one upstream response from the given replica.
func (m *Metrics) Forwarded(replica string, status int) {
	m.mu.Lock()
	fc, ok := m.forwards[replica]
	if !ok {
		fc = &serve.Counter{}
		m.forwards[replica] = fc
	}
	sc, ok := m.statuses[status]
	if !ok {
		sc = &serve.Counter{}
		m.statuses[status] = sc
	}
	m.mu.Unlock()
	fc.Inc()
	sc.Inc()
}

// Forwards reports the upstream response count for one replica.
func (m *Metrics) Forwards(replica string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.forwards[replica]; ok {
		return c.Value()
	}
	return 0
}

// StatusCount reports the upstream response count for one status code.
func (m *Metrics) StatusCount(status int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.statuses[status]; ok {
		return c.Value()
	}
	return 0
}

// Write renders all metrics in Prometheus text exposition format, in a
// deterministic order.
func (m *Metrics) Write(w io.Writer) {
	m.mu.Lock()
	reps := make([]string, 0, len(m.forwards))
	for r := range m.forwards {
		reps = append(reps, r)
	}
	sort.Strings(reps)
	repCounts := make([]int64, len(reps))
	for i, r := range reps {
		repCounts[i] = m.forwards[r].Value()
	}
	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	codeCounts := make([]int64, len(codes))
	for i, c := range codes {
		codeCounts[i] = m.statuses[c].Value()
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE dprouter_forwards_total counter\n")
	for i, r := range reps {
		fmt.Fprintf(w, "dprouter_forwards_total{replica=%q} %d\n", r, repCounts[i])
	}
	fmt.Fprintf(w, "# TYPE dprouter_upstream_responses_total counter\n")
	for i, c := range codes {
		fmt.Fprintf(w, "dprouter_upstream_responses_total{status=\"%d\"} %d\n", c, codeCounts[i])
	}
	writeCounter(w, "dprouter_shed_total", m.Shed.Value())
	writeCounter(w, "dprouter_retries_total", m.Retries.Value())
	writeCounter(w, "dprouter_no_replica_total", m.NoReplica.Value())
	writeCounter(w, "dprouter_proxy_errors_total", m.ProxyErrors.Value())
	writeCounter(w, "dprouter_bad_spec_total", m.BadSpec.Value())
	writeCounter(w, "dprouter_ejections_total", m.Ejections.Value())
	writeCounter(w, "dprouter_readmits_total", m.Readmits.Value())
	writeCounter(w, "dprouter_membership_reloads_total", m.Reloads.Value())
}

func writeCounter(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}
