package route

import (
	"io"
	"strconv"

	"systolicdp/internal/promtext"
	"systolicdp/internal/serve"
)

// Metrics is the router's instrumentation, rendered as Prometheus text
// by the /metrics handler. The primitives and exposition dialect are the
// shared internal/promtext registry, so both tiers (and dptop's scraper)
// speak the same strictly-tested format.
type Metrics struct {
	forwards *promtext.CounterVec // upstream responses by replica base
	statuses *promtext.CounterVec // upstream responses by status code

	Shed        serve.Counter // early sheds at the edge (429 + Retry-After, no proxy hop)
	Retries     serve.Counter // failovers to a later ring successor after a transport error
	NoReplica   serve.Counter // requests with no healthy candidate (503)
	ProxyErrors serve.Counter // every candidate failed at transport level (502)
	BadSpec     serve.Counter // requests rejected at decode (400, never forwarded)
	Ejections   serve.Counter // replica health transitions healthy -> ejected
	Readmits    serve.Counter // replica health transitions ejected -> healthy
	Reloads     serve.Counter // membership changes applied (file reload or SetReplicas)
	SlowTraces  serve.Counter // stitched traces logged by tail-based slow capture
}

// NewMetrics builds the metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		forwards: promtext.NewCounterVec("replica"),
		statuses: promtext.NewCounterVec("status"),
	}
}

// Forwarded counts one upstream response from the given replica.
func (m *Metrics) Forwarded(replica string, status int) {
	m.forwards.With(replica).Inc()
	m.statuses.With(strconv.Itoa(status)).Inc()
}

// Forwards reports the upstream response count for one replica.
func (m *Metrics) Forwards(replica string) int64 { return m.forwards.Value(replica) }

// StatusCount reports the upstream response count for one status code.
func (m *Metrics) StatusCount(status int) int64 { return m.statuses.Value(strconv.Itoa(status)) }

// Write renders all metrics in Prometheus text exposition format, in a
// deterministic order.
func (m *Metrics) Write(w io.Writer) {
	m.forwards.Write(w, "dprouter_forwards_total")
	m.statuses.Write(w, "dprouter_upstream_responses_total")
	promtext.WriteCounter(w, "dprouter_shed_total", m.Shed.Value())
	promtext.WriteCounter(w, "dprouter_retries_total", m.Retries.Value())
	promtext.WriteCounter(w, "dprouter_no_replica_total", m.NoReplica.Value())
	promtext.WriteCounter(w, "dprouter_proxy_errors_total", m.ProxyErrors.Value())
	promtext.WriteCounter(w, "dprouter_bad_spec_total", m.BadSpec.Value())
	promtext.WriteCounter(w, "dprouter_ejections_total", m.Ejections.Value())
	promtext.WriteCounter(w, "dprouter_readmits_total", m.Readmits.Value())
	promtext.WriteCounter(w, "dprouter_membership_reloads_total", m.Reloads.Value())
	promtext.WriteCounter(w, "dprouter_slow_traces_total", m.SlowTraces.Value())
}
