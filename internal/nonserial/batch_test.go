package nonserial

import (
	"math/rand"
	"testing"
)

// Batched elimination must be bitwise identical to Eliminate per
// instance, and the total step count must be the sum of the per-instance
// eq-(40) counts.
func TestEliminateBatchMatchesEliminate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, nv := range []int{3, 4, 6} {
		for _, b := range []int{1, 2, 7} {
			chains := make([]*Chain3, b)
			wantSteps := 0
			for q := range chains {
				chains[q] = RandomChain3(rand.New(rand.NewSource(rng.Int63())), nv, 3, -5, 5)
				wantSteps += chains[q].StepsEq40()
			}
			costs, steps, err := EliminateBatch(chains)
			if err != nil {
				t.Fatalf("EliminateBatch(N=%d b=%d): %v", nv, b, err)
			}
			if steps != wantSteps {
				t.Fatalf("N=%d b=%d: steps = %d, want Σ eq(40) = %d", nv, b, steps, wantSteps)
			}
			for q, c := range chains {
				ref, _, err := c.Eliminate()
				if err != nil {
					t.Fatal(err)
				}
				if costs[q] != ref {
					t.Fatalf("N=%d b=%d instance %d: batch %v != Eliminate %v", nv, b, q, costs[q], ref)
				}
			}
		}
	}
}

func TestEliminateBatchOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	chains := make([]*Chain3, 5)
	for q := range chains {
		chains[q] = RandomChain3(rand.New(rand.NewSource(rng.Int63())), 4, 3, -5, 5)
	}
	fwd, _, err := EliminateBatch(chains)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]*Chain3, len(chains))
	for q := range chains {
		rev[q] = chains[len(chains)-1-q]
	}
	back, _, err := EliminateBatch(rev)
	if err != nil {
		t.Fatal(err)
	}
	for q := range chains {
		if fwd[q] != back[len(chains)-1-q] {
			t.Fatalf("instance %d: cost differs under batch reordering", q)
		}
	}
}

func TestEliminateBatchRejectsMismatchedShapes(t *testing.T) {
	a := RandomChain3(rand.New(rand.NewSource(1)), 4, 3, -5, 5)
	bb := RandomChain3(rand.New(rand.NewSource(2)), 4, 2, -5, 5)
	if _, _, err := EliminateBatch([]*Chain3{a, bb}); err == nil {
		t.Fatal("mismatched domain sizes accepted")
	}
	c := RandomChain3(rand.New(rand.NewSource(3)), 5, 3, -5, 5)
	if _, _, err := EliminateBatch([]*Chain3{a, c}); err == nil {
		t.Fatal("mismatched variable counts accepted")
	}
	if _, _, err := EliminateBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
