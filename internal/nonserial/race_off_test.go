//go:build !race

package nonserial

const raceEnabled = false
