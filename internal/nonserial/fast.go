package nonserial

// The zero-allocation monomorphized elimination kernel. Eliminate's hot
// loop pays three costs the paper's fixed-function cells don't: a func
// call per step for G, one allocation per h-table row per eliminated
// variable, and [][] indirection per cell. EliminateFast closes all
// three: the ternary cost is a generic value-type Ternary op so named
// costs inline, and the h-tables are two flat ping-pong buffers drawn
// from a pooled workspace.
//
// Every step evaluates EXACTLY Eliminate's float64 expression
// h[a][b] + G(v_a, v_b, v_c) with the same strict-< minimization in the
// same (a, b, c) order, so costs are bitwise identical to Eliminate and
// the measured step count equals equation (40) exactly as before.

import (
	"fmt"
	"math"
	"sync"

	"systolicdp/internal/arena"
)

// Ternary is the monomorphizable ternary-cost constraint: implemented by
// zero-size op structs so the generic kernel inlines the per-step call.
type Ternary interface {
	At(a, b, c float64) float64
}

// DefaultOp is DefaultG as an inlinable value type.
type DefaultOp struct{}

// At returns |a-b| + |b-c| + |a-c|/2.
func (DefaultOp) At(a, b, c float64) float64 { return DefaultG(a, b, c) }

// SpanOp is SpanG as an inlinable value type.
type SpanOp struct{}

// At returns max(a,b,c) - min(a,b,c).
func (SpanOp) At(a, b, c float64) float64 { return SpanG(a, b, c) }

// FuncOp adapts an arbitrary ternary cost to the Ternary constraint —
// the fallback for unnamed costs; it keeps one indirect call per step,
// exactly the old cost.
type FuncOp struct{ F func(a, b, c float64) float64 }

// At calls the wrapped function.
func (o FuncOp) At(a, b, c float64) float64 { return o.F(a, b, c) }

// elimWS is the pooled pair of flat ping-pong h-tables.
type elimWS struct{ h, nh []float64 }

var elimPool = sync.Pool{New: func() any { return new(elimWS) }}

// EliminateFast is Eliminate on the monomorphized kernel: it dispatches
// on GName to an inlinable op (falling back to calling G through FuncOp
// when the name is unknown or empty) and runs the elimination on pooled
// flat tables. Bitwise identical to Eliminate in both cost and steps.
func EliminateFast(c *Chain3) (cost float64, steps int, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	ws := elimPool.Get().(*elimWS)
	cost, steps = eliminateWS(c, ws)
	elimPool.Put(ws) // clean completion only (arena discipline)
	return cost, steps, nil
}

// eliminateWS dispatches GName to the matching op. GName is a promise
// that G is the named function (the constructors and the spec parser
// uphold it); an empty or unrecognized name takes the FuncOp path, which
// is always correct.
func eliminateWS(c *Chain3, ws *elimWS) (float64, int) {
	switch c.GName {
	case GNameDefault:
		return eliminateFlat(c.Domains, DefaultOp{}, ws)
	case GNameSpan:
		return eliminateFlat(c.Domains, SpanOp{}, ws)
	default:
		return eliminateFlat(c.Domains, FuncOp{c.G}, ws)
	}
}

// eliminateFlat runs equations (37)-(39) on flat ping-pong tables:
// h[a*mb+b] is h_{k-1}(v_k, v_{k+1}), rebuilt into nh[b*mc+cc] per
// eliminated variable. The (a, b, c) loop order, the candidate
// expression and the strict-< updates are exactly Eliminate's, so the
// result is bitwise identical; the step count is accumulated in bulk
// (the per-iteration counter hoisted out of the loop) and equals
// equation (40) as before.
func eliminateFlat[O Ternary](domains [][]float64, op O, ws *elimWS) (float64, int) {
	n := len(domains)
	steps := 0
	h := arena.Floats(ws.h, len(domains[0])*len(domains[1]))
	for i := range h {
		h[i] = 0
	}
	nh := ws.nh
	for k := 0; k+2 < n; k++ {
		da, db, dc := domains[k], domains[k+1], domains[k+2]
		mb, mc := len(db), len(dc)
		nh = arena.Floats(nh, mb*mc)
		for i := range nh {
			nh[i] = math.Inf(1)
		}
		for a := range da {
			va := da[a]
			hrow := h[a*mb : a*mb+mb]
			for b := range db {
				hab := hrow[b]
				vb := db[b]
				nrow := nh[b*mc : b*mc+mc]
				for cc := range dc {
					cand := hab + op.At(va, vb, dc[cc])
					if cand < nrow[cc] {
						nrow[cc] = cand
					}
				}
			}
		}
		steps += len(da) * mb * mc
		h, nh = nh, h
	}
	cost := math.Inf(1)
	for _, v := range h {
		if v < cost {
			cost = v
		}
	}
	steps += len(h)
	ws.h, ws.nh = h, nh // keep the grown capacity pooled
	return cost, steps
}

// EliminateBatchFast is EliminateBatch on the monomorphized kernel: it
// validates exactly like EliminateBatch (same error messages) and solves
// the instances on one pooled workspace. Instances are independent, so
// the per-instance order here and EliminateBatch's lockstep interleaving
// compute identical tables; costs and the summed step count are bitwise
// identical.
func EliminateBatchFast(chains []*Chain3) (costs []float64, steps int, err error) {
	costs = make([]float64, len(chains))
	steps, err = EliminateBatchFastInto(costs, chains)
	if err != nil {
		return nil, 0, err
	}
	return costs, steps, nil
}

// EliminateBatchFastInto is EliminateBatchFast writing into a
// caller-owned cost slice for allocation-free steady-state batches.
func EliminateBatchFastInto(costs []float64, chains []*Chain3) (steps int, err error) {
	if len(chains) == 0 {
		return 0, fmt.Errorf("nonserial: empty batch")
	}
	if len(costs) != len(chains) {
		return 0, fmt.Errorf("nonserial: costs length %d != batch size %d", len(costs), len(chains))
	}
	profile := chains[0].Domains
	for q, c := range chains {
		if err := c.Validate(); err != nil {
			return 0, fmt.Errorf("nonserial: batch instance %d: %v", q, err)
		}
		if len(c.Domains) != len(profile) {
			return 0, fmt.Errorf("nonserial: batch instance %d has %d variables, batch shape has %d",
				q, len(c.Domains), len(profile))
		}
		for k := range c.Domains {
			if len(c.Domains[k]) != len(profile[k]) {
				return 0, fmt.Errorf("nonserial: batch instance %d domain %d has %d values, batch shape has %d",
					q, k, len(c.Domains[k]), len(profile[k]))
			}
		}
	}
	ws := elimPool.Get().(*elimWS)
	for q, c := range chains {
		cost, s := eliminateWS(c, ws)
		costs[q] = cost
		steps += s
	}
	elimPool.Put(ws) // clean completion only
	return steps, nil
}
