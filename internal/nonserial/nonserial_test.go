package nonserial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestProblemValidate(t *testing.T) {
	good := &Problem{
		Domains: [][]float64{{1, 2}, {3}},
		Terms:   []Term{{Vars: []int{0, 1}, F: func(v []float64) float64 { return v[0] + v[1] }}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{},
		{Domains: [][]float64{{}}, Terms: good.Terms},
		{Domains: good.Domains},
		{Domains: good.Domains, Terms: []Term{{Vars: []int{0, 1}}}},
		{Domains: good.Domains, Terms: []Term{{Vars: nil, F: good.Terms[0].F}}},
		{Domains: good.Domains, Terms: []Term{{Vars: []int{0, 7}, F: good.Terms[0].F}}},
		{Domains: good.Domains, Terms: []Term{{Vars: []int{0, 0}, F: good.Terms[0].F}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestInteractionEdges(t *testing.T) {
	// The paper's example: g1(X1,X2,X4) + g2(X3,X4) + g3(X2,X5).
	f := func(v []float64) float64 { return 0 }
	p := &Problem{
		Domains: [][]float64{{0}, {0}, {0}, {0}, {0}},
		Terms: []Term{
			{Vars: []int{0, 1, 3}, F: f},
			{Vars: []int{2, 3}, F: f},
			{Vars: []int{1, 4}, F: f},
		},
	}
	got := p.InteractionEdges()
	want := [][2]int{{0, 1}, {0, 3}, {1, 3}, {1, 4}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("edges %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d: %v, want %v", i, got[i], want[i])
		}
	}
	if p.IsSerial() {
		t.Error("nonserial example reported serial")
	}
}

func TestIsSerial(t *testing.T) {
	f := func(v []float64) float64 { return v[0] + v[1] }
	serial := &Problem{
		Domains: [][]float64{{0}, {0}, {0}},
		Terms:   []Term{{Vars: []int{0, 1}, F: f}, {Vars: []int{1, 2}, F: f}},
	}
	if !serial.IsSerial() {
		t.Error("chain problem reported nonserial")
	}
	skip := &Problem{
		Domains: [][]float64{{0}, {0}, {0}},
		Terms:   []Term{{Vars: []int{0, 2}, F: f}},
	}
	if skip.IsSerial() {
		t.Error("skipping term reported serial")
	}
}

func TestChain3EliminateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := RandomChain3(rng, 3+rng.Intn(3), 2+rng.Intn(3), 0, 10)
		cost, _, err := c.Eliminate()
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := c.AsProblem().BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cost-want) > 1e-9 {
			t.Fatalf("trial %d: eliminate %v != brute %v", trial, cost, want)
		}
	}
}

func TestStepCountEquation40(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		// Ragged domains to exercise the full formula.
		n := 3 + rng.Intn(4)
		c := &Chain3{G: DefaultG}
		for k := 0; k < n; k++ {
			m := 1 + rng.Intn(4)
			d := make([]float64, m)
			for i := range d {
				d[i] = rng.Float64() * 10
			}
			c.Domains = append(c.Domains, d)
		}
		_, steps, err := c.Eliminate()
		if err != nil {
			t.Fatal(err)
		}
		if want := c.StepsEq40(); steps != want {
			t.Fatalf("trial %d: measured %d steps, eq(40) %d", trial, steps, want)
		}
	}
}

func TestGroupToGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		c := RandomChain3(rng, 3+rng.Intn(3), 2+rng.Intn(2), 0, 10)
		g, err := c.GroupToGraph()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		got := multistage.SolveOptimal(mp, g).Cost
		_, want, err := c.AsProblem().BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: grouped graph %v != brute %v", trial, got, want)
		}
	}
}

func TestGroupToSerialOnDesign3(t *testing.T) {
	// The paper's end-to-end pipeline: nonserial chain -> grouped serial
	// problem -> Design-3 feedback array.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		c := RandomUniformChain3(rng, 3+rng.Intn(3), 2+rng.Intn(2), 0, 10)
		nv, err := c.GroupToSerial()
		if err != nil {
			t.Fatal(err)
		}
		res, err := fbarray.Solve(nv)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := c.AsProblem().BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: Design 3 on grouped problem %v != brute %v", trial, res.Cost, want)
		}
	}
}

func TestGroupToSerialRejectsNonUniform(t *testing.T) {
	c := &Chain3{
		Domains: [][]float64{{1, 2}, {3}, {4, 5}},
		G:       DefaultG,
	}
	if _, err := c.GroupToSerial(); err == nil {
		t.Error("non-uniform domains accepted by GroupToSerial")
	}
	if _, err := c.GroupToGraph(); err != nil {
		t.Errorf("GroupToGraph must accept non-uniform domains: %v", err)
	}
}

func TestChain3Validate(t *testing.T) {
	if err := (&Chain3{Domains: [][]float64{{1}, {2}}, G: DefaultG}).Validate(); err == nil {
		t.Error("2-variable chain accepted")
	}
	if err := (&Chain3{Domains: [][]float64{{1}, {2}, {}}, G: DefaultG}).Validate(); err == nil {
		t.Error("empty domain accepted")
	}
	if err := (&Chain3{Domains: [][]float64{{1}, {2}, {3}}}).Validate(); err == nil {
		t.Error("nil G accepted")
	}
}

func TestEvalAgainstManual(t *testing.T) {
	c := &Chain3{
		Domains: [][]float64{{1, 4}, {2}, {3, 0}},
		G:       func(a, b, cc float64) float64 { return a + 10*b + 100*cc },
	}
	p := c.AsProblem()
	// Single term (N=3): g(v0, v1, v2).
	if got := p.Eval([]int{1, 0, 1}); got != 4+20+0 {
		t.Errorf("Eval = %v, want 24", got)
	}
	idx, cost, err := p.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1+20+0 || idx[0] != 0 || idx[2] != 1 {
		t.Errorf("brute force = %v at %v", cost, idx)
	}
}

func TestPropertyGroupedEqualsElimination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomChain3(rng, 3+rng.Intn(4), 1+rng.Intn(3), 0, 20)
		viaElim, _, err := c.Eliminate()
		if err != nil {
			return false
		}
		g, err := c.GroupToGraph()
		if err != nil {
			return false
		}
		viaGraph := multistage.SolveOptimal(mp, g).Cost
		return math.Abs(viaElim-viaGraph) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupedProblemMoreOpsButSerial(t *testing.T) {
	// Section 6.1's observation: the grouped serial problem does more work
	// than the raw elimination but exposes systolic parallelism. Composite
	// stages have m^2 states.
	rng := rand.New(rand.NewSource(5))
	c := RandomUniformChain3(rng, 5, 3, 0, 10)
	nv, err := c.GroupToSerial()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := nv.Uniform(); !ok || got != 9 {
		t.Errorf("composite stage size = %d, want 9", got)
	}
	if len(nv.Values) != 4 {
		t.Errorf("composite stages = %d, want N-1 = 4", len(nv.Values))
	}
}
