package nonserial

import (
	"math/rand"
	"testing"
)

// TestEliminateFastBitwiseVsEliminate pins the monomorphized kernel —
// all three op paths (named default, named span, unnamed func) — against
// Eliminate in both cost (bitwise) and step count, over uniform and
// ragged domain profiles.
func TestEliminateFastBitwiseVsEliminate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	chains := []*Chain3{
		RandomChain3(rng, 3, 2, -5, 5),
		RandomChain3(rng, 6, 9, -10, 10),
		RandomUniformChain3(rng, 8, 5, 0, 1),
	}
	// A ragged profile: per-variable domain sizes differ.
	ragged := &Chain3{G: DefaultG, GName: GNameDefault}
	for k, m := range []int{2, 5, 3, 7, 4} {
		d := make([]float64, m)
		for i := range d {
			d[i] = rng.Float64()*20 - 10 + float64(k)
		}
		ragged.Domains = append(ragged.Domains, d)
	}
	chains = append(chains, ragged)
	for ci, base := range chains {
		variants := []*Chain3{
			base,
			{Domains: base.Domains, G: SpanG, GName: GNameSpan},
			{Domains: base.Domains, G: base.G}, // unnamed: FuncOp path
		}
		for vi, c := range variants {
			wantCost, wantSteps, err := c.Eliminate()
			if err != nil {
				t.Fatal(err)
			}
			gotCost, gotSteps, err := EliminateFast(c)
			if err != nil {
				t.Fatal(err)
			}
			if gotCost != wantCost {
				t.Fatalf("chain %d variant %d: cost %v != %v", ci, vi, gotCost, wantCost)
			}
			if gotSteps != wantSteps {
				t.Fatalf("chain %d variant %d: steps %d != %d", ci, vi, gotSteps, wantSteps)
			}
			if wantSteps != c.StepsEq40() {
				t.Fatalf("chain %d variant %d: steps %d != eq40 %d", ci, vi, wantSteps, c.StepsEq40())
			}
		}
	}
}

func TestEliminateFastRejectsInvalid(t *testing.T) {
	if _, _, err := EliminateFast(&Chain3{G: DefaultG}); err == nil {
		t.Fatal("chain with no variables accepted")
	}
	if _, _, err := EliminateFast(&Chain3{Domains: [][]float64{{1}, {1}, {1}}}); err == nil {
		t.Fatal("nil cost function accepted")
	}
}

func TestEliminateBatchFastMatchesEliminateBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, b := range []int{1, 2, 7} {
		chains := make([]*Chain3, b)
		for q := range chains {
			chains[q] = RandomChain3(rng, 5, 4, -3, 3)
		}
		wantCosts, wantSteps, err := EliminateBatch(chains)
		if err != nil {
			t.Fatal(err)
		}
		gotCosts, gotSteps, err := EliminateBatchFast(chains)
		if err != nil {
			t.Fatal(err)
		}
		if gotSteps != wantSteps {
			t.Fatalf("b=%d: steps %d != %d", b, gotSteps, wantSteps)
		}
		for q := range wantCosts {
			if gotCosts[q] != wantCosts[q] {
				t.Fatalf("b=%d q=%d: cost %v != %v", b, q, gotCosts[q], wantCosts[q])
			}
		}
	}
	// Profile mismatches fail the whole batch, like EliminateBatch.
	a := RandomChain3(rng, 5, 4, -3, 3)
	bb := RandomChain3(rng, 5, 3, -3, 3)
	if _, _, err := EliminateBatchFast([]*Chain3{a, bb}); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	if _, _, err := EliminateBatchFast(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestEliminateFastZeroAllocSteadyState is the tentpole's allocation
// gate for the nonserial kernel.
func TestEliminateFastZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(33))
	c := RandomChain3(rng, 8, 6, -5, 5)
	if _, _, err := EliminateFast(c); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := EliminateFast(c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EliminateFast allocates %v objects/op steady-state, want 0", allocs)
	}
}

func TestEliminateBatchFastIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(34))
	chains := []*Chain3{RandomChain3(rng, 6, 5, -5, 5), RandomChain3(rng, 6, 5, -5, 5)}
	costs := make([]float64, len(chains))
	if _, err := EliminateBatchFastInto(costs, chains); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := EliminateBatchFastInto(costs, chains); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EliminateBatchFastInto allocates %v objects/op steady-state, want 0", allocs)
	}
}

func BenchmarkEliminate12x8(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	c := RandomChain3(rng, 12, 8, -5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Eliminate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEliminateFast12x8(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	c := RandomChain3(rng, 12, 8, -5, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EliminateFast(c); err != nil {
			b.Fatal(err)
		}
	}
}
