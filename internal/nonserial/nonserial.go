// Package nonserial implements Section 6.1 of the paper: monadic-nonserial
// optimisation problems, their interaction graphs, and the transformation
// into a monadic-serial (multistage) problem by grouping state variables,
// after which the Design-3 systolic array applies.
//
// The general nonserial objective is equation (5):
//
//	f(X) = phi_i g_i(X^i),  X^i subset of X,
//
// which is NP-hard without structure. The paper works the tri-variable
// chain of equation (36),
//
//	f(V) = min sum_{k} g_k(v_k, v_{k+1}, v_{k+2}),
//
// eliminating variables one by one (equations (37)-(39)); the step count
// is equation (40): sum_k m_k*m_{k+1}*m_{k+2} + m_{N-1}*m_N. Grouping
// V'_i = (V_i, V_{i+1}) turns the problem into the serial form of
// equation (41), whose expanded multistage graph any of the three systolic
// designs can search.
package nonserial

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
)

// Term is one functional term g(X^i) of a nonserial objective: F is
// evaluated on the values of the variables listed in Vars, in order.
type Term struct {
	Vars []int
	F    func(vals []float64) float64
}

// Problem is a general nonserial optimisation problem over discrete
// variables: Domains[i] lists the quantized values variable i may take.
type Problem struct {
	Domains [][]float64
	Terms   []Term
}

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	if len(p.Domains) == 0 {
		return fmt.Errorf("nonserial: no variables")
	}
	for i, d := range p.Domains {
		if len(d) == 0 {
			return fmt.Errorf("nonserial: variable %d has empty domain", i)
		}
	}
	if len(p.Terms) == 0 {
		return fmt.Errorf("nonserial: no terms")
	}
	for ti, term := range p.Terms {
		if term.F == nil {
			return fmt.Errorf("nonserial: term %d has nil F", ti)
		}
		if len(term.Vars) == 0 {
			return fmt.Errorf("nonserial: term %d mentions no variables", ti)
		}
		seen := map[int]bool{}
		for _, v := range term.Vars {
			if v < 0 || v >= len(p.Domains) {
				return fmt.Errorf("nonserial: term %d references variable %d out of range", ti, v)
			}
			if seen[v] {
				return fmt.Errorf("nonserial: term %d repeats variable %d", ti, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// InteractionEdges returns the edges of the interaction graph of Section
// 2.2: an (i, j) pair (i < j) for every pair of variables sharing a term,
// deduplicated and sorted.
func (p *Problem) InteractionEdges() [][2]int {
	set := map[[2]int]bool{}
	for _, term := range p.Terms {
		for a := 0; a < len(term.Vars); a++ {
			for b := a + 1; b < len(term.Vars); b++ {
				i, j := term.Vars[a], term.Vars[b]
				if i > j {
					i, j = j, i
				}
				set[[2]int{i, j}] = true
			}
		}
	}
	edges := make([][2]int, 0, len(set))
	for e := range set {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return edges
}

// IsSerial reports whether the problem is serial in the paper's sense:
// every term involves exactly two variables {i, i+1}, so the interaction
// graph is a simple chain (Section 2.2).
func (p *Problem) IsSerial() bool {
	for _, term := range p.Terms {
		if len(term.Vars) != 2 {
			return false
		}
		i, j := term.Vars[0], term.Vars[1]
		if i > j {
			i, j = j, i
		}
		if j != i+1 {
			return false
		}
	}
	return true
}

// BruteForce enumerates every assignment and returns the optimal value
// indices and cost. Exponential; for validation only.
func (p *Problem) BruteForce() ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.Domains)
	idx := make([]int, n)
	best := math.Inf(1)
	var bestIdx []int
	vals := make([]float64, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			c := p.Eval(idx)
			if c < best {
				best = c
				bestIdx = append([]int(nil), idx...)
			}
			return
		}
		for i := range p.Domains[k] {
			idx[k] = i
			rec(k + 1)
		}
	}
	_ = vals
	rec(0)
	return bestIdx, best, nil
}

// Eval computes the objective at the assignment given by value indices.
func (p *Problem) Eval(idx []int) float64 {
	total := 0.0
	buf := make([]float64, 0, 4)
	for _, term := range p.Terms {
		buf = buf[:0]
		for _, v := range term.Vars {
			buf = append(buf, p.Domains[v][idx[v]])
		}
		total += term.F(buf)
	}
	return total
}

// Chain3 is the structured monadic-nonserial problem of equation (36): N
// variables, terms g_k(v_k, v_{k+1}, v_{k+2}) for k = 0..N-3, all sharing
// one ternary cost function G.
type Chain3 struct {
	Domains [][]float64
	G       func(a, b, c float64) float64
	// GName optionally names G so the monomorphized kernel (EliminateFast)
	// can dispatch to an inlinable op: GNameDefault and GNameSpan promise
	// G is DefaultG / SpanG respectively; any other value (including "")
	// means "call G through its func value". Setters of G are responsible
	// for keeping the promise — the constructors here and the spec parser
	// do.
	GName string
}

// Validate checks the chain has at least three variables, nonempty
// domains, and a cost function.
func (c *Chain3) Validate() error {
	if len(c.Domains) < 3 {
		return fmt.Errorf("nonserial: Chain3 needs >= 3 variables, have %d", len(c.Domains))
	}
	for i, d := range c.Domains {
		if len(d) == 0 {
			return fmt.Errorf("nonserial: variable %d has empty domain", i)
		}
	}
	if c.G == nil {
		return fmt.Errorf("nonserial: nil cost function")
	}
	return nil
}

// AsProblem converts the chain into the general representation (for
// interaction-graph inspection and brute force).
func (c *Chain3) AsProblem() *Problem {
	p := &Problem{Domains: c.Domains}
	for k := 0; k+2 < len(c.Domains); k++ {
		g := c.G
		p.Terms = append(p.Terms, Term{
			Vars: []int{k, k + 1, k + 2},
			F:    func(v []float64) float64 { return g(v[0], v[1], v[2]) },
		})
	}
	return p
}

// StepsEq40 evaluates equation (40): the number of elimination steps,
// sum_{k} m_k*m_{k+1}*m_{k+2} + m_{N-1}*m_N (a step = one evaluation of
// f, one addition and one comparison).
func (c *Chain3) StepsEq40() int {
	n := len(c.Domains)
	total := 0
	for k := 0; k+2 < n; k++ {
		total += len(c.Domains[k]) * len(c.Domains[k+1]) * len(c.Domains[k+2])
	}
	total += len(c.Domains[n-2]) * len(c.Domains[n-1])
	return total
}

// Eliminate runs the multistage elimination of equations (37)-(39):
// h_k(v_{k+1}, v_{k+2}) = min_{v_k} { h_{k-1}(v_k, v_{k+1}) + g(v_k,
// v_{k+1}, v_{k+2}) }, eliminating V_1, ..., V_{N-2} in order, then
// comparing the m_{N-1}*m_N values of the final table. It returns the
// optimal cost and the measured step count, which must equal StepsEq40.
func (c *Chain3) Eliminate() (cost float64, steps int, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	n := len(c.Domains)
	// h[b][cdx] over (V_{k+1}, V_{k+2}); initially zero over (V_0, V_1).
	h := make([][]float64, len(c.Domains[0]))
	for a := range h {
		h[a] = make([]float64, len(c.Domains[1]))
	}
	for k := 0; k+2 < n; k++ {
		da, db, dc := c.Domains[k], c.Domains[k+1], c.Domains[k+2]
		nh := make([][]float64, len(db))
		for b := range nh {
			nh[b] = make([]float64, len(dc))
			for cc := range nh[b] {
				nh[b][cc] = math.Inf(1)
			}
		}
		for a := range da {
			for b := range db {
				for cc := range dc {
					cand := h[a][b] + c.G(da[a], db[b], dc[cc])
					if cand < nh[b][cc] {
						nh[b][cc] = cand
					}
					steps++
				}
			}
		}
		h = nh
	}
	cost = math.Inf(1)
	for b := range h {
		for cc := range h[b] {
			if h[b][cc] < cost {
				cost = h[b][cc]
			}
			steps++
		}
	}
	return cost, steps, nil
}

// GroupToSerial performs the variable-grouping transformation of equation
// (41): composite variables V'_i = (V_i, V_{i+1}) for i = 0..N-2 become
// the stages of a node-valued multistage problem. Composite states are
// encoded as float64 pair codes a*m_{i+1}+b; the serial cost function
// charges g(a, b, c) for consistent transitions (the shared middle
// variable must match) and +inf otherwise. The result can be expanded to
// an explicit multistage graph or — when domains are uniform — run
// directly on the Design-3 feedback array.
func (c *Chain3) GroupToSerial() (*multistage.NodeValued, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !c.UniformDomains() {
		return nil, fmt.Errorf("nonserial: GroupToSerial requires uniform domains (Design 3 needs a stage-independent cost function); use GroupToGraph instead")
	}
	n := len(c.Domains)
	// Encode the composite value (a, b) of stage i as a float64 code; the
	// decoder needs the stage's second-domain size, so codes embed both
	// indices with a fixed radix large enough for all domains.
	radix := 0
	for _, d := range c.Domains {
		if len(d) > radix {
			radix = len(d)
		}
	}
	p := &multistage.NodeValued{}
	for i := 0; i+1 < n; i++ {
		vals := make([]float64, 0, len(c.Domains[i])*len(c.Domains[i+1]))
		for a := range c.Domains[i] {
			for b := range c.Domains[i+1] {
				vals = append(vals, float64(a*radix+b))
			}
		}
		p.Values = append(p.Values, vals)
	}
	domains := c.Domains
	g := c.G
	p.F = func(x, y float64) float64 {
		xa, xb := int(x)/radix, int(x)%radix
		ya, yb := int(y)/radix, int(y)%radix
		if xb != ya {
			return math.Inf(1) // inconsistent overlap
		}
		// Transition from stage i to i+1 charges g(v_i, v_{i+1}, v_{i+2});
		// the variable values are recovered from the indices. The cost
		// function is stage-independent only if the domains are, so look
		// up via the code's own indices against the first applicable
		// stage; for uniform domains any stage works.
		return g(domains[0][xa], domains[1][xb], domains[2][yb])
	}
	return p, nil
}

// GroupToGraph performs the same grouping as GroupToSerial but emits an
// explicit multistage graph with stage-dependent edge costs, valid for
// arbitrary (non-uniform) domains. Stage i's nodes are the composite
// states (a, b) of (V_i, V_{i+1}) in row-major order; edges charge
// g(v_i, v_{i+1}, v_{i+2}) on consistent transitions and +inf otherwise.
func (c *Chain3) GroupToGraph() (*multistage.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.Domains)
	g := &multistage.Graph{}
	for i := 0; i+1 < n; i++ {
		g.StageSizes = append(g.StageSizes, len(c.Domains[i])*len(c.Domains[i+1]))
	}
	for i := 0; i+2 < n; i++ {
		da, db, dc := c.Domains[i], c.Domains[i+1], c.Domains[i+2]
		cost := matrix.New(len(da)*len(db), len(db)*len(dc), math.Inf(1))
		for a := range da {
			for b := range db {
				for cc := range dc {
					cost.Set(a*len(db)+b, b*len(dc)+cc, c.G(da[a], db[b], dc[cc]))
				}
			}
		}
		g.Cost = append(g.Cost, cost)
	}
	return g, nil
}

// UniformDomains reports whether all variables share one domain — the
// condition under which GroupToSerial's stage-independent cost function is
// exact and Design 3 applies directly. An empty chain is vacuously
// uniform.
func (c *Chain3) UniformDomains() bool {
	if len(c.Domains) == 0 {
		return true
	}
	first := c.Domains[0]
	for _, d := range c.Domains[1:] {
		if len(d) != len(first) {
			return false
		}
		for i := range d {
			if d[i] != first[i] {
				return false
			}
		}
	}
	return true
}

// RandomChain3 generates an N-variable chain with m values per domain
// drawn from [lo, hi) and a smooth ternary cost |a-b| + |b-c| + |a-c|/2.
func RandomChain3(rng *rand.Rand, n, m int, lo, hi float64) *Chain3 {
	c := &Chain3{G: DefaultG, GName: GNameDefault}
	for k := 0; k < n; k++ {
		d := make([]float64, m)
		for i := range d {
			d[i] = lo + rng.Float64()*(hi-lo)
		}
		c.Domains = append(c.Domains, d)
	}
	return c
}

// RandomUniformChain3 generates a chain whose variables share one domain,
// so the grouped problem runs on Design 3.
func RandomUniformChain3(rng *rand.Rand, n, m int, lo, hi float64) *Chain3 {
	d := make([]float64, m)
	for i := range d {
		d[i] = lo + rng.Float64()*(hi-lo)
	}
	c := &Chain3{G: DefaultG, GName: GNameDefault}
	for k := 0; k < n; k++ {
		c.Domains = append(c.Domains, d)
	}
	return c
}

// Names of the built-in ternary costs, used as Chain3.GName values so
// EliminateFast can pick the matching inlinable op.
const (
	GNameDefault = "default"
	GNameSpan    = "span"
)

// DefaultG is a representative ternary interaction cost.
func DefaultG(a, b, c float64) float64 {
	return math.Abs(a-b) + math.Abs(b-c) + math.Abs(a-c)/2
}

// SpanG is the range of the three values, max - min: the "span" cost of
// the spec vocabulary.
func SpanG(a, b, c float64) float64 {
	hi := math.Max(a, math.Max(b, c))
	lo := math.Min(a, math.Min(b, c))
	return hi - lo
}
