package nonserial

import (
	"fmt"
	"math"
)

// EliminateBatch runs the multistage elimination of equations (37)-(39)
// over B chains in lockstep: one shared pass per eliminated variable,
// with every instance's h-table advanced before any instance moves to
// the next variable — the batched form of Eliminate that a shape-bucketed
// scheduler feeds. All chains must share the domain-size profile
// (len(Domains) and each len(Domains[k])); a mismatch fails the whole
// batch. Cost functions stay per-instance, so chains that share shape but
// not weights co-batch freely.
//
// Per instance the table updates are exactly Eliminate's float64
// operations in the same order, so costs are bitwise identical to
// Eliminate. steps is the total measured step count, Σ StepsEq40 across
// the batch (elimination has no pipeline fill to amortize; batching here
// buys scheduler amortization, not cycle count).
func EliminateBatch(chains []*Chain3) (costs []float64, steps int, err error) {
	if len(chains) == 0 {
		return nil, 0, fmt.Errorf("nonserial: empty batch")
	}
	profile := chains[0].Domains
	for q, c := range chains {
		if err := c.Validate(); err != nil {
			return nil, 0, fmt.Errorf("nonserial: batch instance %d: %v", q, err)
		}
		if len(c.Domains) != len(profile) {
			return nil, 0, fmt.Errorf("nonserial: batch instance %d has %d variables, batch shape has %d",
				q, len(c.Domains), len(profile))
		}
		for k := range c.Domains {
			if len(c.Domains[k]) != len(profile[k]) {
				return nil, 0, fmt.Errorf("nonserial: batch instance %d domain %d has %d values, batch shape has %d",
					q, k, len(c.Domains[k]), len(profile[k]))
			}
		}
	}
	b := len(chains)
	n := len(profile)
	// One h-table per instance over (V_{k+1}, V_{k+2}); initially zero over
	// (V_0, V_1), exactly Eliminate's initialization.
	hs := make([][][]float64, b)
	for q, c := range chains {
		h := make([][]float64, len(c.Domains[0]))
		for a := range h {
			h[a] = make([]float64, len(c.Domains[1]))
		}
		hs[q] = h
	}
	for k := 0; k+2 < n; k++ {
		for q, c := range chains {
			da, db, dc := c.Domains[k], c.Domains[k+1], c.Domains[k+2]
			nh := make([][]float64, len(db))
			for bi := range nh {
				nh[bi] = make([]float64, len(dc))
				for cc := range nh[bi] {
					nh[bi][cc] = math.Inf(1)
				}
			}
			h := hs[q]
			for a := range da {
				for bi := range db {
					for cc := range dc {
						cand := h[a][bi] + c.G(da[a], db[bi], dc[cc])
						if cand < nh[bi][cc] {
							nh[bi][cc] = cand
						}
						steps++
					}
				}
			}
			hs[q] = nh
		}
	}
	costs = make([]float64, b)
	for q := range chains {
		cost := math.Inf(1)
		for bi := range hs[q] {
			for cc := range hs[q][bi] {
				if hs[q][bi][cc] < cost {
					cost = hs[q][bi][cc]
				}
				steps++
			}
		}
		costs[q] = cost
	}
	return costs, steps, nil
}
