//go:build !race

package knapsack

const raceEnabled = false
