// Package knapsack implements the weighted-deadline scheduling DP
// 1||Σ w_j U_j (minimize the total weight of late jobs on one machine)
// via the Lawler–Moore pseudo-polynomial recurrence — the knapsack-style
// workload of the coflow exemplar. Jobs are sorted by due date (EDD,
// stable); A[t] tracks the maximum on-time weight achievable with total
// processing time exactly t, and each job relaxes the row like a 0/1
// knapsack item gated by its deadline.
//
// Sequential is the reference in-place sweep. Lockstep is the systolic
// mapping: one wave per job over a row of T+1 cell PEs, double-buffered
// so every cell reads only pre-wave values — exactly the paper's
// lockstep discipline. The in-place downward loop and the
// double-buffered wave are algebraically the same schedule (a downward
// scan only reads indices it has not yet written), and both engines
// share the relaxation expression, so results are bitwise identical.
package knapsack

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"systolicdp/internal/arena"
)

// Job is one unit of work: processing time P, due date D (both in
// integer time units), and late weight W. Zero-length and zero-weight
// jobs are legal degenerates.
type Job struct {
	P int     // processing time
	D int     // due date
	W float64 // weight lost if the job completes after D
}

// Validate rejects negative times and non-finite or negative weights.
func Validate(jobs []Job) error {
	for i, j := range jobs {
		if j.P < 0 {
			return fmt.Errorf("knapsack: job %d has negative processing time %d", i, j.P)
		}
		if j.D < 0 {
			return fmt.Errorf("knapsack: job %d has negative due date %d", i, j.D)
		}
		if math.IsNaN(j.W) || math.IsInf(j.W, 0) || j.W < 0 {
			return fmt.Errorf("knapsack: job %d has bad weight %v", i, j.W)
		}
	}
	return nil
}

// Horizon is the DP row length minus one: no on-time schedule can run
// past the latest due date or the total processing time, so
// T = min(max D, Σ P). This closed form is shared verbatim by the
// solver and the admission controller's pricing arm — they must agree
// or the priced cell count drifts from the executed one.
func Horizon(jobs []Job) int {
	maxDue, sumProc := 0, 0
	for _, j := range jobs {
		if j.D > maxDue {
			maxDue = j.D
		}
		sumProc += j.P
	}
	if sumProc < maxDue {
		return sumProc
	}
	return maxDue
}

// eddOrder returns the jobs stably sorted by due date — the order in
// which Lawler–Moore must consider them. Stability pins the tie order
// so both engines stream the identical job sequence.
func eddOrder(jobs []Job) []Job {
	s := make([]Job, len(jobs))
	copy(s, jobs)
	sort.SliceStable(s, func(a, b int) bool { return s[a].D < s[b].D })
	return s
}

// relax is THE shared per-cell expression: take job w at exact
// processing time t if it beats the incumbent. -Inf marks unreachable
// exact sums and flows through max-plus untouched (-Inf + w = -Inf,
// never > a finite incumbent), so both engines agree bitwise.
func relax(incumbent, below float64, w float64) float64 {
	if cand := below + w; cand > incumbent {
		return cand
	}
	return incumbent
}

// Sequential computes the minimum total late weight with the reference
// in-place Lawler–Moore sweep. An empty job list is legal (late weight
// 0).
func Sequential(jobs []Job) (float64, error) {
	if err := Validate(jobs); err != nil {
		return 0, err
	}
	on, err := OnTimeWeight(jobs)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, j := range jobs {
		total += j.W
	}
	return total - on, nil
}

// OnTimeWeight computes the maximum total weight of jobs that can all
// complete by their due dates — the quantity the DP row maximizes and
// the one dpcheck's prefix-monotonicity invariant is stated over:
// appending a job can never decrease it.
func OnTimeWeight(jobs []Job) (float64, error) {
	if err := Validate(jobs); err != nil {
		return 0, err
	}
	T := Horizon(jobs)
	A := make([]float64, T+1)
	ninf := math.Inf(-1)
	for t := 1; t <= T; t++ {
		A[t] = ninf
	}
	for _, j := range eddOrder(jobs) {
		hi := j.D
		if hi > T {
			hi = T
		}
		// Downward in-place scan: A[t-P] has not been rewritten yet when
		// cell t reads it, so every read sees the pre-job row.
		for t := hi; t >= j.P; t-- {
			A[t] = relax(A[t], A[t-j.P], j.W)
		}
	}
	best := 0.0
	for _, v := range A {
		if v > best {
			best = v
		}
	}
	return best, nil
}

type rowKey struct{ T int }

// workspace is the pooled Lockstep state: the double-buffered DP rows
// plus a scratch job slice for the EDD reorder, so steady-state
// same-horizon solves allocate nothing.
type workspace struct {
	rows [2][]float64
	jobs []Job
}

var rowPool = arena.NewKeyed[rowKey](func() *workspace { return new(workspace) })

// eddInto is eddOrder writing into a reusable buffer with the
// allocation-free generic stable sort — the same order, bitwise the
// same stream.
func eddInto(buf, jobs []Job) []Job {
	if cap(buf) < len(jobs) {
		buf = make([]Job, len(jobs))
	}
	buf = buf[:len(jobs)]
	copy(buf, jobs)
	slices.SortStableFunc(buf, func(a, b Job) int { return a.D - b.D })
	return buf
}

// Lockstep computes the same answer on the systolic mapping: T+1 cell
// PEs hold the row, each of the n EDD-ordered jobs is broadcast as one
// wave, and every PE relaxes from the double-buffered pre-wave row in
// lockstep. Rows come from a shape-keyed arena, so steady-state
// same-horizon solves allocate nothing. Returns the late weight and the
// wave (cycle) count n.
func Lockstep(jobs []Job) (float64, int, error) {
	if err := Validate(jobs); err != nil {
		return 0, 0, err
	}
	T := Horizon(jobs)
	key := rowKey{T}
	ws := rowPool.Get(key)
	cur := arena.Floats(ws.rows[0], T+1)
	next := arena.Floats(ws.rows[1], T+1)
	ws.jobs = eddInto(ws.jobs, jobs)
	ninf := math.Inf(-1)
	cur[0] = 0
	for t := 1; t <= T; t++ {
		cur[t] = ninf
	}
	total := 0.0
	for _, j := range jobs {
		total += j.W
	}
	for _, j := range ws.jobs {
		hi := j.D
		if hi > T {
			hi = T
		}
		// One lockstep wave: every cell computes from the pre-wave row.
		for t := 0; t <= T; t++ {
			if t >= j.P && t <= hi {
				next[t] = relax(cur[t], cur[t-j.P], j.W)
			} else {
				next[t] = cur[t]
			}
		}
		cur, next = next, cur
	}
	best := 0.0
	for _, v := range cur {
		if v > best {
			best = v
		}
	}
	ws.rows[0], ws.rows[1] = cur, next
	rowPool.Put(key, ws) // clean completion only (arena poisoning discipline)
	return total - best, len(jobs), nil
}
