package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

func randJobs(rng *rand.Rand, n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			P: rng.Intn(5),
			D: rng.Intn(12),
			W: float64(rng.Intn(10)),
		}
	}
	return jobs
}

// bruteForce tries every subset as the on-time set: a subset is
// feasible iff scheduling its members in EDD order meets every due
// date (EDD-feasibility is exact for 1|| problems).
func bruteForce(jobs []Job) float64 {
	n := len(jobs)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var sel []Job
		w := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, jobs[i])
				w += jobs[i].W
			}
		}
		t := 0
		ok := true
		for _, j := range eddOrder(sel) {
			t += j.P
			if t > j.D {
				ok = false
				break
			}
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func TestOnTimeWeightMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		jobs := randJobs(rng, rng.Intn(9))
		got, err := OnTimeWeight(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForce(jobs); got != want {
			t.Fatalf("trial %d %v: OnTimeWeight %v, brute force %v", trial, jobs, got, want)
		}
	}
}

func TestLockstepBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		jobs := randJobs(rng, rng.Intn(12))
		want, err := Sequential(jobs)
		if err != nil {
			t.Fatal(err)
		}
		got, cycles, err := Lockstep(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d %v: Lockstep %v != Sequential %v", trial, jobs, got, want)
		}
		if cycles != len(jobs) {
			t.Fatalf("trial %d: cycles %d, want %d", trial, cycles, len(jobs))
		}
	}
}

func TestPrefixMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	jobs := randJobs(rng, 10)
	prev := 0.0
	for k := 0; k <= len(jobs); k++ {
		v, err := OnTimeWeight(jobs[:k])
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("prefix %d: on-time weight fell %v -> %v", k, prev, v)
		}
		prev = v
	}
}

func TestDegenerates(t *testing.T) {
	if v, err := Sequential(nil); err != nil || v != 0 {
		t.Fatalf("empty: %v %v", v, err)
	}
	// All-zero-weight jobs: late or not, nothing is lost.
	if v, err := Sequential([]Job{{P: 3, D: 1, W: 0}, {P: 2, D: 0, W: 0}}); err != nil || v != 0 {
		t.Fatalf("zero-weight: %v %v", v, err)
	}
	// Zero-length job always fits at its due date.
	if v, err := Sequential([]Job{{P: 0, D: 0, W: 5}}); err != nil || v != 0 {
		t.Fatalf("zero-length: %v %v", v, err)
	}
	// Impossible deadline: full weight lost.
	if v, err := Sequential([]Job{{P: 4, D: 2, W: 7}}); err != nil || v != 7 {
		t.Fatalf("impossible: %v %v", v, err)
	}
}

func TestValidateRejects(t *testing.T) {
	for i, jobs := range [][]Job{
		{{P: -1, D: 0, W: 0}},
		{{P: 0, D: -1, W: 0}},
		{{P: 0, D: 0, W: -1}},
		{{P: 0, D: 0, W: math.NaN()}},
		{{P: 0, D: 0, W: math.Inf(1)}},
	} {
		if err := Validate(jobs); err == nil {
			t.Fatalf("bad jobs %d accepted", i)
		}
	}
}

func TestHorizon(t *testing.T) {
	if h := Horizon(nil); h != 0 {
		t.Fatalf("empty horizon %d", h)
	}
	// Due dates beyond total work clamp to sum of processing times.
	if h := Horizon([]Job{{P: 2, D: 100, W: 1}, {P: 3, D: 100, W: 1}}); h != 5 {
		t.Fatalf("horizon %d, want 5", h)
	}
	if h := Horizon([]Job{{P: 50, D: 4, W: 1}}); h != 4 {
		t.Fatalf("horizon %d, want 4", h)
	}
}

func TestLockstepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	rng := rand.New(rand.NewSource(31))
	jobs := randJobs(rng, 16)
	if _, _, err := Lockstep(jobs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := Lockstep(jobs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Lockstep allocates %v per op in steady state, want 0", allocs)
	}
}
