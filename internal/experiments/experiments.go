// Package experiments regenerates every table and figure of the paper's
// evaluation: one driver per artifact (E1-E10, indexed in DESIGN.md), each
// producing a rendered table plus notes comparing the measurement against
// the paper's closed form. The cmd/experiments binary prints them all;
// EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment pairs an artifact ID with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Design 1 (Fig 3): pipelined array, iteration counts and PU vs eq (9)", E1Design1},
		{"E2", "Design 2 (Fig 4): broadcast array, iteration counts and PU vs eq (9)", E2Design2},
		{"E3", "Design 3 (Fig 5): feedback array, (N+1)m iterations, PU, path registers", E3Design3},
		{"E4", "Figure 6: KT^2 vs K for N=4096 (eq 29) with scheduling cross-check", E4Figure6},
		{"E5", "Proposition 1 (eq 17): asymptotic processor utilization", E5Proposition1},
		{"E6", "Theorem 1: S*T^2 minimised at S = N/log2(N)", E6Theorem1},
		{"E7", "Theorem 2 (eq 32): u(p) node counts, binary partition optimal", E7Theorem2},
		{"E8", "Section 6.1 (eq 40): nonserial elimination step counts and grouping", E8Nonserial},
		{"E9", "Propositions 2-3 (eqs 42-43): matrix-chain ordering timings", E9MatrixChain},
		{"E10", "Table 1: classification and dispatch of the four DP classes", E10TableOne},
	}
	sort.Slice(exps, func(i, j int) bool {
		return len(exps[i].ID) < len(exps[j].ID) || (len(exps[i].ID) == len(exps[j].ID) && exps[i].ID < exps[j].ID)
	})
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
func g(x float64) string  { return fmt.Sprintf("%g", x) }

// RenderCSV formats the table as CSV (header row first); notes are
// emitted as trailing comment lines. Cells containing commas or quotes
// are quoted per RFC 4180.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
