package experiments

import (
	"fmt"
	"math"

	"systolicdp/internal/dnc"
	"systolicdp/internal/metrics"
)

// E4Figure6 regenerates Figure 6: KT^2 against K for N = 4096 under the
// exact-time model of equation (29), sampled over the K axis, with the
// minimum region resolved exactly and cross-checked against the
// discrete-event schedule simulation.
func E4Figure6() (*Table, error) {
	const n = 4096
	t := &Table{
		ID:     "E4",
		Title:  "Figure 6: KT^2 vs K, N = 4096 (eq 29)",
		Header: []string{"K", "T (eq29)", "KT^2", "T (sim)", "agree"},
	}
	samples := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 341, 399, 431, 455, 465, 512, 640, 768, 1024, 1536, 2048, 3072, 4096}
	for _, k := range samples {
		te := dnc.TimeEq29(n, k)
		st, err := dnc.Schedule(n, k)
		if err != nil {
			return nil, err
		}
		agree := float64(st.Time) == te
		t.Rows = append(t.Rows, []string{
			d(k), g(te), g(float64(k) * te * te), d(st.Time), fmt.Sprintf("%v", agree),
		})
		if !agree {
			return nil, fmt.Errorf("E4: simulation disagrees with eq (29) at K=%d", k)
		}
	}
	ks, min := dnc.ArgminKT2(n, 1, n)
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured argmin: K=%v with KT^2=%g (optimal granularity N/log2N = %d)", ks, min, dnc.OptimalGranularity(n)),
		fmt.Sprintf("paper reports minima at K=431 (KT^2=%g) and K=465 (KT^2=%g): within %.1f%% of the measured minimum — the discrepancy is the paper's unstated floor convention; the curve shape (jagged, minimum near N/log2 N) reproduces",
			dnc.KT2Eq29(n, 431), dnc.KT2Eq29(n, 465), 100*(dnc.KT2Eq29(n, 431)/min-1)),
		"the non-smooth dips occur where the wind-down phase shortens, as the paper observes")
	return t, nil
}

// E5Proposition1 measures PU(k, N) for k = c*N/log2(N) against the
// asymptotic limit 1/(1+c) of equation (17).
func E5Proposition1() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Proposition 1: normalized asymptotic processor utilization (eq 17)",
		Header: []string{"c", "N=2^12", "N=2^16", "N=2^20", "limit 1/(1+c)"},
	}
	sizes := []int{1 << 12, 1 << 16, 1 << 20}
	for _, c := range []float64{0.25, 0.5, 1, 2, 4} {
		row := []string{g(c)}
		for _, n := range sizes {
			pu, err := dnc.PUAsymptotic(n, c)
			if err != nil {
				return nil, err
			}
			row = append(row, f4(pu))
		}
		row = append(row, f4(metrics.AsymptoticPU(c)))
		t.Rows = append(t.Rows, row)
	}
	// The two extreme cases.
	st, err := dnc.Schedule(1<<20, int(math.Sqrt(float64(1<<20))))
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"->0 (k=sqrt N)", "", "", f4(st.PU), f4(1)})
	pu, err := dnc.PUAsymptotic(1<<20, 64)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"->inf (c=64)", "", "", f4(pu), f4(0)})
	t.Notes = append(t.Notes,
		"convergence is O(log2 log2 N / log2 N), so finite-N PU sits above the limit and descends toward it as N grows")
	return t, nil
}

// E6Theorem1 contrasts S*T^2 across processor-count policies; Theorem 1
// proves the minimum is Theta(N log2 N) at S = Theta(N/log2 N).
func E6Theorem1() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Theorem 1: S*T^2 by granularity policy",
		Header: []string{"N", "policy", "S", "T", "S*T^2", "S*T^2 / (N log2 N)"},
	}
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		bound := float64(n) * math.Log2(float64(n))
		for _, r := range dnc.TheoremOneTable(n) {
			t.Rows = append(t.Rows, []string{
				d(n), r.Policy, d(r.S), g(r.T), g(r.AT2), f2(r.AT2 / bound),
			})
		}
	}
	t.Notes = append(t.Notes,
		"S = N/log2(N) keeps S*T^2 within a constant of N log2 N; sqrt(N) pays the N^2/S computation term, S = N pays the S log^2 S wind-down term")
	return t, nil
}
