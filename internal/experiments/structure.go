package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"systolicdp/internal/andor"
	"systolicdp/internal/core"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/workload"
)

// E7Theorem2 tabulates u(p) (equation 32) for a range of partitions and
// verifies the formula against materialised graph node counts where
// feasible; Theorem 2 says p = 2 is minimal.
func E7Theorem2() (*Table, error) {
	rng := rand.New(rand.NewSource(1988))
	t := &Table{
		ID:     "E7",
		Title:  "Theorem 2: AND/OR-graph size u(p) (eq 32), N = 16",
		Header: []string{"m", "p", "u(p) formula", "built nodes", "match", "vs p=2"},
	}
	const n = 16
	for _, m := range []int{2, 3, 4} {
		u2 := andor.UP(n, 2, m)
		for _, p := range []int{2, 4, 16} {
			formula := andor.UP(n, p, m)
			built := "-"
			match := "-"
			// Materialise when the graph is small enough (m^(p+1) nodes per
			// combine).
			if math.Pow(float64(m), float64(p+1)) < 1e6 {
				g := multistage.RandomUniform(rng, n+1, m, 1, 10)
				ao, err := andor.BuildRegular(g, p)
				if err != nil {
					return nil, err
				}
				leaves, ands, ors := ao.Count()
				total := leaves + ands + ors
				built = d(total)
				match = fmt.Sprintf("%v", float64(total) == formula)
				if float64(total) != formula {
					return nil, fmt.Errorf("E7: built %d != u(p) %g for p=%d m=%d", total, formula, p, m)
				}
				// The graph must still find the right optimum.
				got, err := andor.SolveRegular(mp, g, p)
				if err != nil {
					return nil, err
				}
				if want := multistage.SolveOptimal(mp, g).Cost; math.Abs(got-want) > 1e-9 {
					return nil, fmt.Errorf("E7: p=%d m=%d wrong optimum", p, m)
				}
			}
			t.Rows = append(t.Rows, []string{
				d(m), d(p), g(formula), built, match, fmt.Sprintf("%.2fx", formula/u2),
			})
		}
	}
	t.Notes = append(t.Notes,
		"u(p) grows monotonically in p for m >= 2: binary partitioning minimises total node count, as Theorem 2 proves",
		"p = N degenerates to brute force: the Principle of Optimality is never applied")
	return t, nil
}

// E8Nonserial measures the monadic-nonserial elimination of Section 6.1:
// measured step counts against equation (40), and the grouped serial
// problem solved on Design 3 against brute force.
func E8Nonserial() (*Table, error) {
	rng := rand.New(rand.NewSource(1989))
	t := &Table{
		ID:     "E8",
		Title:  "Section 6.1: nonserial elimination steps (eq 40) and grouping",
		Header: []string{"N vars", "m", "steps meas", "eq(40)", "grouped m'", "Design3 == brute", "elim == brute"},
	}
	for _, c := range []struct{ n, m int }{{3, 2}, {4, 3}, {5, 3}, {6, 2}, {5, 4}} {
		ch := nonserial.RandomUniformChain3(rng, c.n, c.m, 0, 10)
		cost, steps, err := ch.Eliminate()
		if err != nil {
			return nil, err
		}
		_, brute, err := ch.AsProblem().BruteForce()
		if err != nil {
			return nil, err
		}
		nv, err := ch.GroupToSerial()
		if err != nil {
			return nil, err
		}
		res, err := fbarray.Solve(nv)
		if err != nil {
			return nil, err
		}
		elimOK := math.Abs(cost-brute) < 1e-9
		d3OK := math.Abs(res.Cost-brute) < 1e-9
		mPrime, _ := nv.Uniform()
		t.Rows = append(t.Rows, []string{
			d(c.n), d(c.m), d(steps), d(ch.StepsEq40()), d(mPrime),
			fmt.Sprintf("%v", d3OK), fmt.Sprintf("%v", elimOK),
		})
		if steps != ch.StepsEq40() || !elimOK || !d3OK {
			return nil, fmt.Errorf("E8: N=%d m=%d failed", c.n, c.m)
		}
	}
	t.Notes = append(t.Notes,
		"grouping V'_i = (V_i, V_{i+1}) yields composite stages of m^2 states: more work than raw elimination but systolic-mappable, as Section 6.1 observes")
	return t, nil
}

// E9MatrixChain regenerates the Section 6.2 timing results: broadcast-bus
// completion T_d(N) = N (Proposition 2) and serialised systolic completion
// T_p(N) = 2N (Proposition 3), with costs validated against sequential DP.
func E9MatrixChain() (*Table, error) {
	rng := rand.New(rand.NewSource(1990))
	t := &Table{
		ID:     "E9",
		Title:  "Propositions 2-3: parallel matrix-chain ordering times",
		Header: []string{"n", "T_d meas", "T_d rec", "n (Prop 2)", "T_p meas", "T_p rec", "2n (Prop 3)", "cost == DP"},
	}
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		dims, err := workload.MatrixChainDims(rng, n, 2, 30)
		if err != nil {
			return nil, err
		}
		bus, err := matchain.SimulateBus(dims)
		if err != nil {
			return nil, err
		}
		sys, err := matchain.SimulateSystolic(dims)
		if err != nil {
			return nil, err
		}
		tab, err := matchain.DP(dims)
		if err != nil {
			return nil, err
		}
		ok := bus.Cost == tab.OptimalCost() && sys.Cost == tab.OptimalCost()
		t.Rows = append(t.Rows, []string{
			d(n), g(bus.Completion), d(matchain.TdRecurrence(n)), d(n),
			g(sys.Completion), d(matchain.TpRecurrence(n)), d(2 * n),
			fmt.Sprintf("%v", ok),
		})
		if !ok || bus.Completion != float64(n) || sys.Completion != float64(2*n) {
			return nil, fmt.Errorf("E9: n=%d timing or cost mismatch", n)
		}
	}
	t.Notes = append(t.Notes,
		"the Figure 2 AND/OR-graph is nonserial; Figure 8's dummy-node serialisation doubles completion time (2N vs N) in exchange for a planar systolic structure — the Guibas-Kung-Thompson array")
	return t, nil
}

// E10TableOne prints the paper's Table 1 and demonstrates the dispatch by
// solving one representative problem per class.
func E10TableOne() (*Table, error) {
	rng := rand.New(rand.NewSource(1991))
	t := &Table{
		ID:     "E10",
		Title:  "Table 1: classification, method, and live dispatch",
		Header: []string{"class", "characteristic", "method", "example", "solved cost"},
	}
	inner := multistage.RandomUniform(rng, 5, 4, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	msp := &core.MultistageProblem{Graph: g, Design: 1}

	mats := g.Matrices()
	poly := &core.MatrixStringProblem{Matrices: mats[:len(mats)-1], Workers: 2}

	chain := nonserial.RandomUniformChain3(rng, 4, 3, 1, 10)
	// A cost with a load term so the optimum is not the degenerate
	// all-equal assignment.
	chain.G = func(a, b, c float64) float64 {
		return math.Abs(a-b) + math.Abs(b-c) + 0.2*(a+b+c)
	}
	nsc := &core.NonserialChainProblem{Chain: chain}
	cho := &core.ChainOrderingProblem{Dims: []int{30, 35, 15, 5, 10, 20, 25}}

	for _, p := range []core.Problem{msp, poly, nsc, cho} {
		sol, err := core.Solve(p)
		if err != nil {
			return nil, err
		}
		rec := core.Recommend(p.Classify())
		t.Rows = append(t.Rows, []string{
			p.Classify().String(), rec.Characteristic, rec.Method, p.Describe(), g2(sol.Cost),
		})
	}
	t.Notes = append(t.Notes,
		"each class is solved by the architecture Table 1 prescribes: systolic arrays (monadic), divide-and-conquer (polyadic-serial), grouping + systolic (monadic-nonserial), AND/OR-graph search (polyadic-nonserial)")
	return t, nil
}

func g2(x float64) string { return fmt.Sprintf("%.4g", x) }
