package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"systolicdp/internal/andor"
	"systolicdp/internal/bcastarray"
	"systolicdp/internal/bnb"
	"systolicdp/internal/control"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matrix"
	"systolicdp/internal/mesh"
	"systolicdp/internal/multistage"
	"systolicdp/internal/obst"
	"systolicdp/internal/pipearray"
)

// Extensions returns the drivers for the beyond-paper systems (DESIGN.md
// S16-S21): optional/extension features the paper names but does not
// evaluate. They print under `cmd/experiments -extensions`.
func Extensions() []Experiment {
	return []Experiment{
		{"X1", "2D systolic mesh: 3n-2 cycle completion and correctness", X1Mesh},
		{"X2", "Batch streaming through Design 1: one fill for B problems", X2Stream},
		{"X3", "Branch-and-bound: dominance = DP (expansion counts)", X3BnB},
		{"X4", "Optimal BST: Knuth's O(n^2) window vs the O(n^3) polyadic DP", X4OBST},
		{"X5", "Quantized tracking control on Designs 1-2 (Section 3.2 extension)", X5Control},
		{"X6", "Irregular-stage elimination ordering (Section 5 closing)", X6Irregular},
	}
}

// AllWithExtensions returns E1-E10 followed by X1-X5.
func AllWithExtensions() []Experiment {
	return append(All(), Extensions()...)
}

// X1Mesh verifies the stationary-result mesh: products equal the
// sequential kernel and complete in exactly 3n-2 cycles with every PE
// busy n cycles.
func X1Mesh() (*Table, error) {
	rng := rand.New(rand.NewSource(2001))
	t := &Table{
		ID:     "X1",
		Title:  "2D systolic matrix-multiplication mesh",
		Header: []string{"n", "PEs", "wall cycles", "3n-2", "busy/PE", "correct"},
	}
	for _, n := range []int{2, 4, 8, 12} {
		a := matrix.Random(rng, n, n, 0, 10)
		b := matrix.Random(rng, n, n, 0, 10)
		arr, err := mesh.New(mp, a, b)
		if err != nil {
			return nil, err
		}
		prod, res, err := arr.Run(false)
		if err != nil {
			return nil, err
		}
		ok := prod.Equal(matrix.MulMat(mp, a, b), 1e-9)
		busyOK := true
		for _, bz := range res.Busy {
			if bz != n {
				busyOK = false
			}
		}
		t.Rows = append(t.Rows, []string{
			d(n), d(n * n), d(arr.WallCycles()), d(3*n - 2),
			d(n), fmt.Sprintf("%v", ok && busyOK),
		})
		if !ok || !busyOK {
			return nil, fmt.Errorf("X1: n=%d failed", n)
		}
	}
	return t, nil
}

// X2Stream measures back-to-back batches on Design 1.
func X2Stream() (*Table, error) {
	rng := rand.New(rand.NewSource(2002))
	t := &Table{
		ID:     "X2",
		Title:  "Design-1 batch streaming",
		Header: []string{"B", "K", "m", "streamed cycles", "separate cycles", "saved", "correct"},
	}
	for _, tc := range []struct{ b, k, m int }{{2, 2, 4}, {4, 4, 4}, {8, 3, 6}, {16, 4, 8}} {
		probs := make([]pipearray.StreamProblem, tc.b)
		for i := range probs {
			ms := make([]*matrix.Matrix, tc.k)
			for j := range ms {
				ms[j] = matrix.Random(rng, tc.m, tc.m, 0, 10)
			}
			v := make([]float64, tc.m)
			for j := range v {
				v[j] = rng.Float64() * 10
			}
			probs[i] = pipearray.StreamProblem{Ms: ms, V: v}
		}
		st, err := pipearray.NewStream(probs)
		if err != nil {
			return nil, err
		}
		got, err := st.Run(false)
		if err != nil {
			return nil, err
		}
		ok := true
		for bi, pr := range probs {
			want, err := pipearray.Solve(pr.Ms, pr.V)
			if err != nil {
				return nil, err
			}
			for j := range want {
				if math.Abs(got[bi][j]-want[j]) > 1e-9 {
					ok = false
				}
			}
		}
		separate := tc.b * (st.KPadded*tc.m + tc.m - 1)
		t.Rows = append(t.Rows, []string{
			d(tc.b), d(tc.k), d(tc.m), d(st.WallCycles()), d(separate),
			d(separate - st.WallCycles()), fmt.Sprintf("%v", ok),
		})
		if !ok {
			return nil, fmt.Errorf("X2: B=%d failed", tc.b)
		}
	}
	t.Notes = append(t.Notes, "streaming pays the m-1 pipeline fill once per batch instead of once per problem")
	return t, nil
}

// X3BnB shows branch-and-bound collapsing to DP under dominance.
func X3BnB() (*Table, error) {
	rng := rand.New(rand.NewSource(2003))
	t := &Table{
		ID:     "X3",
		Title:  "branch-and-bound with and without the DP dominance test",
		Header: []string{"N", "m", "expand (no dom)", "expand (dom)", "DP states N*m", "costs agree"},
	}
	for _, tc := range []struct{ n, m int }{{6, 3}, {8, 4}, {10, 4}, {12, 3}} {
		g := multistage.RandomUniform(rng, tc.n, tc.m, 0, 10)
		want := multistage.SolveOptimal(mp, g).Cost
		bound := bnb.NewBoundStageMin(g)
		with, err := bnb.Solve(g, bnb.Options{Dominance: true, Bound: bound})
		if err != nil {
			return nil, err
		}
		without, err := bnb.Solve(g, bnb.Options{Bound: bound})
		if err != nil {
			return nil, err
		}
		agree := math.Abs(with.Cost-want) < 1e-9 && math.Abs(without.Cost-want) < 1e-9
		t.Rows = append(t.Rows, []string{
			d(tc.n), d(tc.m), d(without.Expanded), d(with.Expanded),
			d(tc.n * tc.m), fmt.Sprintf("%v", agree),
		})
		if !agree {
			return nil, fmt.Errorf("X3: N=%d failed", tc.n)
		}
	}
	t.Notes = append(t.Notes, "the dominance test is Bellman's principle: expansions collapse to the DP state count")
	return t, nil
}

// X4OBST compares the cubic DP and Knuth's quadratic variant.
func X4OBST() (*Table, error) {
	rng := rand.New(rand.NewSource(2004))
	t := &Table{
		ID:     "X4",
		Title:  "optimal binary search tree: inner-loop iteration counts",
		Header: []string{"n keys", "O(n^3) iters", "Knuth iters", "speedup", "costs agree"},
	}
	for _, n := range []int{16, 32, 64, 128} {
		p := &obst.Problem{P: make([]float64, n), Q: make([]float64, n+1)}
		for i := range p.P {
			p.P[i] = rng.Float64()
		}
		for i := range p.Q {
			p.Q[i] = rng.Float64() * 0.5
		}
		full, err := p.Solve()
		if err != nil {
			return nil, err
		}
		fast, err := p.SolveKnuth()
		if err != nil {
			return nil, err
		}
		agree := math.Abs(full.OptimalCost()-fast.OptimalCost()) < 1e-9
		t.Rows = append(t.Rows, []string{
			d(n), d(full.Inner), d(fast.Inner),
			fmt.Sprintf("%.1fx", float64(full.Inner)/float64(fast.Inner)),
			fmt.Sprintf("%v", agree),
		})
		if !agree {
			return nil, fmt.Errorf("X4: n=%d disagree", n)
		}
	}
	return t, nil
}

// X5Control runs the quantized tracking problem on Designs 1-2.
func X5Control() (*Table, error) {
	t := &Table{
		ID:     "X5",
		Title:  "quantized tracking control on the systolic arrays",
		Header: []string{"horizon", "states", "controls", "baseline", "Design 1", "Design 2", "Design 3", "agree"},
	}
	grids := func(lo, hi float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out
	}
	for _, tc := range []struct {
		horizon, states, controls int
	}{{5, 9, 7}, {8, 11, 9}, {12, 15, 11}} {
		ref := make([]float64, tc.horizon+1)
		for i := range ref {
			ref[i] = 2 + 2*math.Sin(float64(i)/2)
		}
		sys := &control.System{
			A: 0.95, B: 1, Qw: 1, Rw: 0.2,
			Ref:      ref,
			States:   grids(0, 4.5, tc.states),
			Controls: grids(-1.5, 1.5, tc.controls),
			X0:       2,
		}
		tr, err := sys.Solve()
		if err != nil {
			return nil, err
		}
		ms, v, err := sys.MatrixString()
		if err != nil {
			return nil, err
		}
		d1, err := pipearray.Solve(ms, v)
		if err != nil {
			return nil, err
		}
		d2v, err := bcastarray.Solve(ms, v)
		if err != nil {
			return nil, err
		}
		staged, err := sys.ToStaged()
		if err != nil {
			return nil, err
		}
		arr3, err := fbarray.NewStaged(mp, staged)
		if err != nil {
			return nil, err
		}
		r3, err := arr3.Run(false)
		if err != nil {
			return nil, err
		}
		agree := math.Abs(d1[0]-tr.Cost) < 1e-9 && math.Abs(d2v[0]-tr.Cost) < 1e-9 &&
			math.Abs(r3.Cost-tr.Cost) < 1e-9
		t.Rows = append(t.Rows, []string{
			d(tc.horizon), d(tc.states), d(tc.controls),
			f4(tr.Cost), f4(d1[0]), f4(d2v[0]), f4(r3.Cost), fmt.Sprintf("%v", agree),
		})
		if !agree {
			return nil, fmt.Errorf("X5: horizon=%d disagree", tc.horizon)
		}
	}
	t.Notes = append(t.Notes, "Design 3 runs the staged form (per-stage F_i units, the general Figure 5); Designs 1-2 take explicit matrices")
	return t, nil
}

// X6Irregular measures the Section 5 closing analysis: elimination
// ordering on irregular stage-size profiles — ternary vs binary
// reduction, and optimal vs naive binary order.
func X6Irregular() (*Table, error) {
	t := &Table{
		ID:     "X6",
		Title:  "irregular multistage graphs: elimination-order comparisons (Section 5 closing)",
		Header: []string{"stage sizes", "ternary 4-stage", "binary 4-stage", "optimal order", "naive order", "order"},
	}
	for _, sizes := range [][]int{
		{2, 3, 4, 5},
		{3, 50, 3, 2},
		{2, 2, 100, 2, 2},
		{4, 8, 2, 16, 2, 8},
		{5, 5, 5, 5, 5},
	} {
		tri, bin := "-", "-"
		if len(sizes) == 4 {
			tri = d(andor.TriReductionCost(sizes[0], sizes[1], sizes[2], sizes[3]))
			b, _ := andor.BinaryReductionCost(sizes[0], sizes[1], sizes[2], sizes[3])
			bin = d(b)
		}
		opt, order, err := andor.EliminationOrder(sizes)
		if err != nil {
			return nil, err
		}
		naive, err := andor.NaiveEliminationCost(sizes)
		if err != nil {
			return nil, err
		}
		if opt > naive {
			return nil, fmt.Errorf("X6: optimal %d worse than naive %d for %v", opt, naive, sizes)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", sizes), tri, bin, d(opt), d(naive), fmt.Sprintf("%v", order),
		})
	}
	t.Notes = append(t.Notes,
		"binary elimination never loses to the 3-arc AND-node (the paper's m1m3(m2+m4) vs m1m2m3m4 argument)",
		"choosing the elimination order is itself the secondary optimization problem (matrix-chain recurrence on stage sizes)")
	return t, nil
}
