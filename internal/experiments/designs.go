package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

// designSweep is the (N, m) grid for E1/E2: N+1 graph stages, m nodes per
// intermediate stage.
var designSweep = []struct{ n, m int }{
	{4, 3}, {8, 4}, {16, 4}, {16, 8}, {32, 8}, {64, 8}, {64, 16}, {128, 16},
}

// E1Design1 measures the pipelined array of Figure 3 across the sweep:
// wall cycles vs the paper's N*m iterations, measured PU vs equation (9),
// and correctness against the sequential baseline.
func E1Design1() (*Table, error) {
	rng := rand.New(rand.NewSource(1985))
	t := &Table{
		ID:     "E1",
		Title:  "Design 1 pipelined systolic array (Figure 3, eq 9)",
		Header: []string{"N", "m", "serial iters", "wall cycles", "paper N*m", "PU meas", "PU eq(9)", "correct"},
	}
	for _, c := range designSweep {
		inner := multistage.RandomUniform(rng, c.n-1, c.m, 1, 10)
		g := multistage.SingleSourceSink(mp, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		arr, err := pipearray.New(mats[:k-1], v)
		if err != nil {
			return nil, err
		}
		out, _, err := arr.Run(false)
		if err != nil {
			return nil, err
		}
		want := multistage.SolveOptimal(mp, g).Cost
		ok := len(out) == 1 && math.Abs(out[0]-want) < 1e-9
		serial := metrics.SerialItersGraph(c.n, c.m)
		pu := metrics.PU(serial, arr.WallCycles(), c.m)
		t.Rows = append(t.Rows, []string{
			d(c.n), d(c.m), d(serial), d(arr.WallCycles()), d(c.n * c.m),
			f4(pu), f4(metrics.PUEq9(c.n, c.m)), fmt.Sprintf("%v", ok),
		})
		if !ok {
			return nil, fmt.Errorf("E1: N=%d m=%d: array %v != baseline %v", c.n, c.m, out, want)
		}
	}
	t.Notes = append(t.Notes,
		"wall cycles = N*m - 1 (the paper's N*m iterations minus one cycle of overlap); PU -> 1 as N grows, matching eq (9)")
	return t, nil
}

// E2Design2 is the same protocol for the broadcast array of Figure 4.
func E2Design2() (*Table, error) {
	rng := rand.New(rand.NewSource(1986))
	t := &Table{
		ID:     "E2",
		Title:  "Design 2 broadcast systolic array (Figure 4, eq 9)",
		Header: []string{"N", "m", "serial iters", "wall cycles", "paper N*m", "PU meas", "PU eq(9)", "correct"},
	}
	for _, c := range designSweep {
		inner := multistage.RandomUniform(rng, c.n-1, c.m, 1, 10)
		g := multistage.SingleSourceSink(mp, inner)
		mats := g.Matrices()
		k := len(mats)
		v := mats[k-1].Col(0)
		arr, err := bcastarray.New(mats[:k-1], v)
		if err != nil {
			return nil, err
		}
		out, _ := arr.RunLockstep()
		want := multistage.SolveOptimal(mp, g).Cost
		ok := len(out) == 1 && math.Abs(out[0]-want) < 1e-9
		serial := metrics.SerialItersGraph(c.n, c.m)
		pu := metrics.PU(serial, arr.WallCycles(), c.m)
		t.Rows = append(t.Rows, []string{
			d(c.n), d(c.m), d(serial), d(arr.WallCycles()), d(c.n * c.m),
			f4(pu), f4(metrics.PUEq9(c.n, c.m)), fmt.Sprintf("%v", ok),
		})
		if !ok {
			return nil, fmt.Errorf("E2: N=%d m=%d incorrect", c.n, c.m)
		}
	}
	t.Notes = append(t.Notes,
		"broadcast removes the pipeline skew: wall cycles = (N-1)*m exactly; results identical to Design 1")
	return t, nil
}

// E3Design3 measures the feedback array of Figure 5: total iterations
// (N+1)m, busy cycles equal to the serial step count (N-1)m^2+m, PU, and
// path-register reconstruction.
func E3Design3() (*Table, error) {
	rng := rand.New(rand.NewSource(1987))
	t := &Table{
		ID:     "E3",
		Title:  "Design 3 feedback systolic array (Figure 5)",
		Header: []string{"N", "m", "iterations", "(N+1)m", "busy total", "(N-1)m^2+m", "PU", "path ok"},
	}
	cases := []struct{ n, m int }{{4, 3}, {8, 4}, {16, 8}, {32, 8}, {64, 16}, {128, 16}}
	for _, c := range cases {
		p := multistage.RandomNodeValued(rng, c.n, c.m, 0, 50)
		arr, err := fbarray.New(p)
		if err != nil {
			return nil, err
		}
		res, err := arr.Run(false)
		if err != nil {
			return nil, err
		}
		busy := 0
		for _, b := range res.Busy {
			busy += b
		}
		want := p.SolvePath(mp)
		pathOK := math.Abs(res.Cost-want.Cost) < 1e-9
		// Check the reconstructed path attains the cost.
		var pc float64
		for k := 0; k+1 < len(res.Path); k++ {
			pc += multistage.AbsDiff(p.Values[k][res.Path[k]], p.Values[k+1][res.Path[k+1]])
		}
		pathOK = pathOK && math.Abs(pc-res.Cost) < 1e-9
		pu := metrics.PU(arr.SerialIterations(), arr.Iterations(), c.m)
		t.Rows = append(t.Rows, []string{
			d(c.n), d(c.m), d(arr.Iterations()), d((c.n + 1) * c.m),
			d(busy), d(arr.SerialIterations()), f4(pu), fmt.Sprintf("%v", pathOK),
		})
		if !pathOK {
			return nil, fmt.Errorf("E3: N=%d m=%d path reconstruction failed", c.n, c.m)
		}
	}
	t.Notes = append(t.Notes,
		"the Figure 1(b) instance (N=4, m=3) completes in exactly 15 iterations, as the paper states",
		"busy totals equal the serial step count, so PU = ((N-1)m^2+m)/((N+1)m*m) ~ 1 for large N")
	return t, nil
}
