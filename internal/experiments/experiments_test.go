package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow under -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: render missing ID", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tab.Header))
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E4")
	if err != nil || e.ID != "E4" {
		t.Fatalf("ByID(E4) = %v, %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllOrdering(t *testing.T) {
	exps := All()
	if len(exps) != 10 {
		t.Fatalf("have %d experiments, want 10", len(exps))
	}
	if exps[0].ID != "E1" || exps[9].ID != "E10" {
		t.Errorf("ordering wrong: first %s last %s", exps[0].ID, exps[9].ID)
	}
}

func TestRenderAlignment(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "test",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell", "1"}},
		Notes:  []string{"a note"},
	}
	out := tab.Render()
	if !strings.Contains(out, "a note") {
		t.Error("notes missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestExtensionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are slow under -short")
	}
	for _, e := range Extensions() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
		})
	}
	if len(AllWithExtensions()) != 16 {
		t.Errorf("AllWithExtensions has %d entries, want 16", len(AllWithExtensions()))
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "has,comma"}, {"2", `has"quote`}},
		Notes:  []string{"a note"},
	}
	out := tab.RenderCSV()
	if !strings.Contains(out, "a,b\n") {
		t.Error("header row missing")
	}
	if !strings.Contains(out, `"has,comma"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Error("quote cell not escaped")
	}
	if !strings.Contains(out, "# a note") {
		t.Error("note comment missing")
	}
}

func TestRenderHTML(t *testing.T) {
	tables := []*Table{{
		ID: "E0", Title: "demo <escaped>",
		Header: []string{"a"},
		Rows:   [][]string{{"<1>"}},
		Notes:  []string{"n"},
	}}
	out, err := RenderHTML(tables)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "&lt;1&gt;") {
		t.Error("cell not HTML-escaped")
	}
	if !strings.Contains(out, "demo &lt;escaped&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "<table>") {
		t.Error("table missing")
	}
}
