package andor

import (
	"fmt"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

// Martelli & Montanari's equivalence is constructive: the minimum-cost
// solution tree of the reduction graph IS the optimal path. Index records
// the problem coordinates of every node built by BuildRegularIndexed so a
// solution tree can be decoded back into a multistage path.

// nodeMeta locates one AND/OR node in the reduction: the stage span
// [Lo, Hi] it covers, its endpoint node indices (A in stage Lo, B in
// stage Hi), and — for AND nodes — the p-1 cut stages with the interior
// node indices chosen at them.
type nodeMeta struct {
	Lo, Hi   int
	A, B     int
	Cuts     []int // cut stages (AND nodes)
	Interior []int // chosen node index at each cut (AND nodes)
}

// Index maps node IDs of a regular reduction graph back to problem
// coordinates.
type Index struct {
	P, N, M int
	meta    []nodeMeta
}

// BuildRegularIndexed is BuildRegular plus an Index for path decoding.
func BuildRegularIndexed(g *multistage.Graph, p int) (*Graph, *Index, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if p < 2 {
		return nil, nil, fmt.Errorf("andor: partition p must be >= 2, have %d", p)
	}
	n := g.Stages() - 1
	m := g.StageSizes[0]
	for _, sz := range g.StageSizes {
		if sz != m {
			return nil, nil, fmt.Errorf("andor: BuildRegularIndexed needs a uniform graph")
		}
	}
	if !IsPowerOf(n, p) {
		return nil, nil, fmt.Errorf("andor: N=%d is not a power of p=%d", n, p)
	}
	out := &Graph{}
	idx := &Index{P: p, N: n, M: m}
	note := func(id int, mt nodeMeta) {
		for len(idx.meta) <= id {
			idx.meta = append(idx.meta, nodeMeta{})
		}
		idx.meta[id] = mt
	}
	type seg struct {
		lo, hi int
		ids    []int
	}
	segs := make([]seg, n)
	for k := 0; k < n; k++ {
		ids := make([]int, m*m)
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				id := out.AddLeaf(g.Cost[k].At(a, b))
				ids[a*m+b] = id
				note(id, nodeMeta{Lo: k, Hi: k + 1, A: a, B: b})
			}
		}
		segs[k] = seg{lo: k, hi: k + 1, ids: ids}
	}
	for len(segs) > 1 {
		next := make([]seg, 0, len(segs)/p)
		for s := 0; s+p <= len(segs); s += p {
			group := segs[s : s+p]
			lo, hi := group[0].lo, group[p-1].hi
			cuts := make([]int, p-1)
			for c := 0; c < p-1; c++ {
				cuts[c] = group[c].hi
			}
			ids := make([]int, m*m)
			for a := 0; a < m; a++ {
				for b := 0; b < m; b++ {
					ands := make([]int, 0, intPow(m, p-1))
					interior := make([]int, p-1)
					for {
						children := make([]int, p)
						prev := a
						for sg := 0; sg < p; sg++ {
							nxt := b
							if sg < p-1 {
								nxt = interior[sg]
							}
							children[sg] = group[sg].ids[prev*m+nxt]
							prev = nxt
						}
						id := out.AddNode(And, children, 0)
						note(id, nodeMeta{
							Lo: lo, Hi: hi, A: a, B: b,
							Cuts:     append([]int(nil), cuts...),
							Interior: append([]int(nil), interior...),
						})
						ands = append(ands, id)
						i := 0
						for ; i < p-1; i++ {
							interior[i]++
							if interior[i] < m {
								break
							}
							interior[i] = 0
						}
						if i == p-1 {
							break
						}
					}
					id := out.AddNode(Or, ands, 0)
					note(id, nodeMeta{Lo: lo, Hi: hi, A: a, B: b})
					ids[a*m+b] = id
				}
			}
			next = append(next, seg{lo: lo, hi: hi, ids: ids})
		}
		segs = next
	}
	out.Roots = segs[0].ids
	return out, idx, nil
}

// PathBetween evaluates the indexed graph, extracts the minimum-cost
// solution tree rooted at endpoints (a, b), and decodes it into the
// optimal node sequence path[0..N] with path[0] = a and path[N] = b,
// together with its cost.
func PathBetween(s semiring.Comparative, g *Graph, idx *Index, a, b int) ([]int, float64, error) {
	if a < 0 || a >= idx.M || b < 0 || b >= idx.M {
		return nil, 0, fmt.Errorf("andor: endpoints (%d,%d) out of range m=%d", a, b, idx.M)
	}
	root := g.Roots[a*idx.M+b]
	st, err := g.ExtractSolution(s, root)
	if err != nil {
		return nil, 0, err
	}
	path := make([]int, idx.N+1)
	for i := range path {
		path[i] = -1
	}
	path[0], path[idx.N] = a, b
	// Walk the solution tree: at each OR node follow the chosen AND
	// child, whose interior assignments pin the cut stages.
	var walk func(id int)
	walk = func(id int) {
		n := g.Nodes[id]
		switch n.Kind {
		case Or:
			walk(st.Chosen[id])
		case And:
			mt := idx.meta[id]
			for c, stage := range mt.Cuts {
				path[stage] = mt.Interior[c]
			}
			for _, child := range n.Children {
				walk(child)
			}
		}
	}
	walk(root)
	for i, v := range path {
		if v < 0 {
			return nil, 0, fmt.Errorf("andor: stage %d unresolved in solution tree", i)
		}
	}
	return path, st.Value, nil
}
