package andor

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/multistage"
)

func TestMapSystolicRegularGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, p, m int }{{4, 2, 2}, {8, 2, 3}, {9, 3, 2}, {16, 4, 2}} {
		g := multistage.RandomUniform(rng, tc.n+1, tc.m, 0, 10)
		ao, err := BuildRegular(g, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ao.Evaluate(mp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ao.MapSystolic(mp, false)
		if err != nil {
			t.Fatalf("n=%d p=%d: %v", tc.n, tc.p, err)
		}
		for ri, r := range ao.Roots {
			if math.Abs(res.RootValues[ri]-want[r]) > 1e-9 {
				t.Errorf("n=%d p=%d root %d: systolic %v, evaluate %v", tc.n, tc.p, ri, res.RootValues[ri], want[r])
			}
		}
		// One level of the wavefront per cycle: completion == height.
		if res.Cycles != ao.Height() {
			t.Errorf("n=%d p=%d: cycles %d, height %d", tc.n, tc.p, res.Cycles, ao.Height())
		}
		_, ands, ors := ao.Count()
		if res.Processors != ands+ors {
			t.Errorf("n=%d p=%d: %d PEs, want %d", tc.n, tc.p, res.Processors, ands+ors)
		}
	}
}

func TestMapSystolicGoroutinesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := multistage.RandomUniform(rng, 5, 3, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	lock, err := ao.MapSystolic(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	goro, err := ao.MapSystolic(mp, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lock.RootValues {
		if lock.RootValues[i] != goro.RootValues[i] {
			t.Errorf("root %d: %v vs %v", i, lock.RootValues[i], goro.RootValues[i])
		}
	}
	if lock.Cycles != goro.Cycles {
		t.Errorf("cycles: %d vs %d", lock.Cycles, goro.Cycles)
	}
}

func TestMapSystolicRejectsNonserial(t *testing.T) {
	g := &Graph{}
	l0 := g.AddLeaf(5)
	l1 := g.AddLeaf(7)
	a1 := g.AddNode(And, []int{l0, l1}, 0)
	o1 := g.AddNode(Or, []int{a1}, 0)
	top := g.AddNode(And, []int{o1, l0}, 0) // skips a level
	g.Roots = []int{top}
	if _, err := g.MapSystolic(mp, false); err == nil {
		t.Fatal("nonserial graph accepted")
	}
	// After serialisation it must map and agree with Evaluate.
	sg, _ := g.Serialize()
	want, err := sg.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sg.MapSystolic(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RootValues[0]-want[sg.Roots[0]]) > 1e-9 {
		t.Errorf("systolic %v, evaluate %v", res.RootValues[0], want[sg.Roots[0]])
	}
}

func TestMapSystolicLeafRoot(t *testing.T) {
	g := &Graph{}
	l := g.AddLeaf(42)
	or := g.AddNode(Or, []int{l}, 0)
	g.Roots = []int{l, or}
	res, err := g.MapSystolic(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.RootValues[0] != 42 || res.RootValues[1] != 42 {
		t.Errorf("root values %v", res.RootValues)
	}
}

func TestMapSystolicSerializedMatrixChainShape(t *testing.T) {
	// End-to-end §6.2: build the Figure-2-style graph for OBST-shaped
	// data via the regular reduction, serialise, map, and check the
	// wavefront picture: cycles == serialised height.
	rng := rand.New(rand.NewSource(3))
	g := multistage.RandomUniform(rng, 9, 2, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sg, added := ao.Serialize()
	if added != 0 {
		t.Fatalf("regular graph should already be serial, added %d", added)
	}
	res, err := sg.MapSystolic(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != sg.Height() {
		t.Errorf("cycles %d != height %d", res.Cycles, sg.Height())
	}
}
