package andor

import (
	"fmt"
	"math"

	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

// Section 5 states that "the mapping of a regular AND/OR-graph onto a
// systolic array is straightforward", and Section 6.2 gives the recipe:
// serialise the graph (all arcs between adjacent levels, Figure 8), then
// assign one processor per node with wires along the arcs and let values
// ripple one level per cycle. MapSystolic implements exactly that on the
// shared engine; completion takes Height() cycles, the wavefront bound
// behind Proposition 3.

// multiPE evaluates one AND/OR node once all child tokens arrive (they
// arrive together, since the graph is serial) and then emits its value
// every cycle, like a latched output register; its fan-in matches the
// node's child count.
type multiPE struct {
	s     semiring.Comparative
	kind  Kind
	extra float64
	n     int
	value float64
	fired bool
}

func (p *multiPE) NumIn() int  { return p.n }
func (p *multiPE) NumOut() int { return 1 }
func (p *multiPE) Reset()      { p.fired = false; p.value = 0 }

func (p *multiPE) Step(in []systolic.Token) ([]systolic.Token, bool) {
	if p.fired {
		return []systolic.Token{{V: p.value, Valid: true}}, false
	}
	for _, t := range in {
		if !t.Valid {
			return []systolic.Token{systolic.Bubble()}, false
		}
	}
	switch p.kind {
	case And:
		acc := p.s.One()
		for _, t := range in {
			acc = p.s.Mul(acc, t.V)
		}
		p.value = p.s.Mul(acc, p.extra)
	case Or:
		acc := p.s.Zero()
		for _, t := range in {
			acc = p.s.Add(acc, t.V)
		}
		p.value = acc
	}
	p.fired = true
	return []systolic.Token{{V: p.value, Valid: true}}, true
}

// SystolicResult reports a MapSystolic run.
type SystolicResult struct {
	RootValues []float64 // value per root, in Roots order
	Cycles     int       // cycles until the last root fired (= Height)
	Processors int       // non-leaf PEs instantiated
}

// MapSystolic maps a *serial* AND/OR-graph (every arc spanning one level;
// call Serialize first if needed) onto the engine — one PE per non-leaf
// node, one wire per arc, leaves as external sources — and runs it to
// completion on the lock-step or goroutine runner. The returned root
// values equal Evaluate's, and Cycles equals the graph height: one level
// of the wavefront per cycle, the hardware picture behind the 2N bound of
// Proposition 3.
func (g *Graph) MapSystolic(s semiring.Comparative, goroutines bool) (*SystolicResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsSerial() {
		return nil, fmt.Errorf("andor: MapSystolic requires a serial graph; call Serialize first")
	}
	net := &systolic.Array{}
	// peIdx[nodeID] = engine PE index for non-leaf nodes.
	peIdx := make([]int, len(g.Nodes))
	for i := range peIdx {
		peIdx[i] = -1
	}
	var pes []*multiPE
	for _, n := range g.Nodes {
		if n.Kind == Leaf {
			continue
		}
		p := &multiPE{s: s, kind: n.Kind, extra: n.Extra, n: len(n.Children)}
		peIdx[n.ID] = len(net.PEs)
		net.PEs = append(net.PEs, p)
		pes = append(pes, p)
	}
	// Wires: child -> parent port. Leaves become sources that emit their
	// value from cycle 0 onward.
	for _, n := range g.Nodes {
		if n.Kind == Leaf {
			continue
		}
		for port, c := range n.Children {
			child := g.Nodes[c]
			if child.Kind == Leaf {
				v := child.Value
				net.Wires = append(net.Wires, systolic.Wire{
					From:   systolic.Endpoint{PE: systolic.External, Port: 0},
					To:     systolic.Endpoint{PE: peIdx[n.ID], Port: port},
					Source: func(int) systolic.Token { return systolic.Token{V: v, Valid: true} },
				})
			} else {
				net.Wires = append(net.Wires, systolic.Wire{
					From: systolic.Endpoint{PE: peIdx[c], Port: 0},
					To:   systolic.Endpoint{PE: peIdx[n.ID], Port: port},
					Init: systolic.Bubble(),
				})
			}
		}
	}
	// Root sinks.
	sinkWires := make([]int, len(g.Roots))
	for ri, r := range g.Roots {
		if g.Nodes[r].Kind == Leaf {
			sinkWires[ri] = -1
			continue
		}
		sinkWires[ri] = len(net.Wires)
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: peIdx[r], Port: 0},
			To:   systolic.Endpoint{PE: systolic.External, Port: 0},
		})
	}
	cycles := g.Height() + 1
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = net.RunGoroutines(cycles)
	} else {
		res, err = net.RunLockstep(cycles, nil)
	}
	if err != nil {
		return nil, err
	}
	out := &SystolicResult{Processors: len(pes), RootValues: make([]float64, len(g.Roots))}
	for ri, r := range g.Roots {
		if sinkWires[ri] < 0 {
			out.RootValues[ri] = g.Nodes[r].Value
			continue
		}
		found := false
		for _, rec := range res.Sunk[sinkWires[ri]] {
			if rec.Token.Valid && !math.IsNaN(rec.Token.V) {
				out.RootValues[ri] = rec.Token.V
				if rec.Cycle+1 > out.Cycles {
					out.Cycles = rec.Cycle + 1
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("andor: root %d never fired in %d cycles", r, cycles)
		}
	}
	return out, nil
}
