package andor

import (
	"fmt"
	"strings"

	"systolicdp/internal/semiring"
)

// DOT renders the AND/OR-graph in Graphviz format for inspection —
// AND-nodes as boxes, OR-nodes as diamonds, leaves as circles, dummy
// pass-throughs dashed, ranked by level so the drawing mirrors the
// paper's Figures 2, 7 and 8.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n  node [fontsize=10];\n")
	byLevel := map[int][]int{}
	maxLevel := 0
	for _, n := range g.Nodes {
		byLevel[n.Level] = append(byLevel[n.Level], n.ID)
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	roots := map[int]bool{}
	for _, r := range g.Roots {
		roots[r] = true
	}
	for level := 0; level <= maxLevel; level++ {
		if len(byLevel[level]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  { rank=same;")
		for _, id := range byLevel[level] {
			fmt.Fprintf(&b, " n%d;", id)
		}
		b.WriteString(" }\n")
	}
	for _, n := range g.Nodes {
		attrs := []string{}
		switch n.Kind {
		case Leaf:
			attrs = append(attrs, "shape=circle", fmt.Sprintf("label=\"%g\"", n.Value))
		case And:
			label := "AND"
			if n.Extra != 0 {
				label = fmt.Sprintf("AND +%g", n.Extra)
			}
			attrs = append(attrs, "shape=box", fmt.Sprintf("label=%q", label))
		case Or:
			attrs = append(attrs, "shape=diamond", "label=\"OR\"")
		}
		if n.Dummy {
			attrs = append(attrs, "style=dashed", "label=\"\"")
		}
		if roots[n.ID] {
			attrs = append(attrs, "penwidth=2")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, n := range g.Nodes {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", c, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOTWithSolution renders the graph with the minimum-cost solution tree
// rooted at `root` highlighted: chosen nodes and arcs drawn bold red,
// exactly the "minimal-cost solution tree" picture of Martelli &
// Montanari that Section 5 builds on.
func (g *Graph) DOTWithSolution(name string, s semiring.Comparative, root int) (string, error) {
	st, err := g.ExtractSolution(s, root)
	if err != nil {
		return "", err
	}
	inTree := map[int]bool{}
	for _, id := range st.Nodes {
		inTree[id] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [fontsize=10];\n", name)
	for _, n := range g.Nodes {
		shape := "circle"
		label := fmt.Sprintf("%g", n.Value)
		switch n.Kind {
		case And:
			shape, label = "box", "AND"
			if n.Extra != 0 {
				label = fmt.Sprintf("AND +%g", n.Extra)
			}
		case Or:
			shape, label = "diamond", "OR"
		}
		attrs := fmt.Sprintf("shape=%s, label=%q", shape, label)
		if inTree[n.ID] {
			attrs += ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
	}
	for _, n := range g.Nodes {
		for _, c := range n.Children {
			attrs := ""
			chosen := inTree[n.ID] && inTree[c]
			if n.Kind == Or {
				chosen = chosen && st.Chosen[n.ID] == c
			}
			if chosen {
				attrs = " [color=red, penwidth=2]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", c, n.ID, attrs)
		}
	}
	fmt.Fprintf(&b, "  label=\"solution value %g\";\n}\n", st.Value)
	return b.String(), nil
}
