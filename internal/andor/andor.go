// Package andor implements the AND/OR-graph machinery of Sections 5 and
// 6.2 of the paper. A polyadic DP problem is the search for a minimum-cost
// solution tree in an AND/OR-graph (Martelli & Montanari): AND-nodes sum
// their children (subproblem composition), OR-nodes take the minimum
// (alternative selection). The package provides:
//
//   - a DAG representation with levelled nodes and bottom-up evaluation
//     (sequential and level-synchronous parallel);
//   - the regular p-ary AND/OR-graph that reduces an (N+1)-stage graph to a
//     single stage (Figure 7), with the node-count formula u(p) of
//     equation (32) that Theorem 2 minimises at p = 2;
//   - the serialisation transform of Section 6.2: dummy pass-through nodes
//     are inserted so that every arc connects adjacent levels, making the
//     graph mappable onto a planar systolic array (Figure 8).
package andor

import (
	"fmt"
	"math"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

// Kind classifies a node.
type Kind int

// Node kinds: leaves carry input costs, AND-nodes add (subproblem
// composition), OR-nodes compare (alternative selection).
const (
	Leaf Kind = iota
	And
	Or
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case And:
		return "and"
	case Or:
		return "or"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one AND/OR-graph node. Children must have smaller IDs than their
// parent (the graphs are built bottom-up), Level 0 holds the leaves.
// Extra is an additive constant folded into an AND-node's sum — the
// r_{i-1}*r_k*r_j term of the matrix-chain recurrence rides there.
type Node struct {
	ID       int
	Kind     Kind
	Level    int
	Children []int
	Value    float64 // leaf input value
	Extra    float64 // additive constant for AND-nodes
	Dummy    bool    // inserted by Serialize
}

// Graph is a levelled AND/OR DAG.
type Graph struct {
	Nodes []Node
	Roots []int
}

// AddLeaf appends a leaf with the given value at level 0 and returns its ID.
func (g *Graph) AddLeaf(v float64) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: Leaf, Level: 0, Value: v})
	return id
}

// AddNode appends an AND or OR node and returns its ID. The level is set
// to one more than the highest child level.
func (g *Graph) AddNode(kind Kind, children []int, extra float64) int {
	id := len(g.Nodes)
	level := 0
	for _, c := range children {
		if l := g.Nodes[c].Level + 1; l > level {
			level = l
		}
	}
	g.Nodes = append(g.Nodes, Node{
		ID: id, Kind: kind, Level: level,
		Children: append([]int(nil), children...), Extra: extra,
	})
	return id
}

// Validate checks the DAG invariants: children precede parents, leaves
// have no children, AND/OR nodes have at least one child, and roots exist.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		switch n.Kind {
		case Leaf:
			if len(n.Children) != 0 {
				return fmt.Errorf("andor: leaf %d has children", n.ID)
			}
		case And, Or:
			if len(n.Children) == 0 {
				return fmt.Errorf("andor: %s node %d has no children", n.Kind, n.ID)
			}
			for _, c := range n.Children {
				if c < 0 || c >= n.ID {
					return fmt.Errorf("andor: node %d has out-of-order child %d", n.ID, c)
				}
			}
		default:
			return fmt.Errorf("andor: node %d has unknown kind %d", n.ID, int(n.Kind))
		}
	}
	for _, r := range g.Roots {
		if r < 0 || r >= len(g.Nodes) {
			return fmt.Errorf("andor: root %d out of range", r)
		}
	}
	return nil
}

// Height returns the number of levels above the leaves (the paper's
// 2*log_p(N) for the regular reduction graph).
func (g *Graph) Height() int {
	h := 0
	for _, n := range g.Nodes {
		if n.Level > h {
			h = n.Level
		}
	}
	return h
}

// Count reports the number of leaves, AND-nodes and OR-nodes (dummy
// pass-throughs count with their kind).
func (g *Graph) Count() (leaves, ands, ors int) {
	for _, n := range g.Nodes {
		switch n.Kind {
		case Leaf:
			leaves++
		case And:
			ands++
		case Or:
			ors++
		}
	}
	return leaves, ands, ors
}

// Evaluate computes every node's value bottom-up under a comparative
// semiring (Add folds OR-children, Mul accumulates AND-children) and
// returns the value vector indexed by node ID. For (MIN,+) an AND-node is
// the sum of its children plus Extra, an OR-node the minimum of its
// children — the paper's additive AND/OR-graphs.
func (g *Graph) Evaluate(s semiring.Comparative) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	val := make([]float64, len(g.Nodes))
	for i, n := range g.Nodes {
		switch n.Kind {
		case Leaf:
			val[i] = n.Value
		case And:
			acc := s.One()
			for _, c := range n.Children {
				acc = s.Mul(acc, val[c])
			}
			val[i] = s.Mul(acc, n.Extra)
		case Or:
			acc := s.Zero()
			for _, c := range n.Children {
				acc = s.Add(acc, val[c])
			}
			val[i] = acc
		}
	}
	return val, nil
}

// Serialize returns a copy of g in which every arc spans exactly one
// level: an arc from a node at level L to a child at level l < L-1 is
// routed through L-1-l dummy pass-through nodes (single-child OR nodes),
// the dotted-line nodes of Figure 8. The evaluation result is unchanged;
// the second return value counts the dummies added (the "redundant
// hardware" the transformation costs).
func (g *Graph) Serialize() (*Graph, int) {
	out := &Graph{Nodes: append([]Node(nil), g.Nodes...), Roots: append([]int(nil), g.Roots...)}
	// dummyAt[level][orig] is the ID of the dummy chain node lifting orig
	// to the given level; chains are shared among parents, as in the
	// paper's figure.
	dummyAt := make(map[[2]int]int)
	added := 0
	var lift func(orig, toLevel int) int
	lift = func(orig, toLevel int) int {
		if out.Nodes[orig].Level >= toLevel {
			return orig
		}
		key := [2]int{toLevel, orig}
		if id, ok := dummyAt[key]; ok {
			return id
		}
		below := lift(orig, toLevel-1)
		id := len(out.Nodes)
		out.Nodes = append(out.Nodes, Node{
			ID: id, Kind: Or, Level: toLevel, Children: []int{below}, Dummy: true,
		})
		dummyAt[key] = id
		added++
		return id
	}
	// Iterate over the original nodes only; dummies appended on the fly.
	orig := len(out.Nodes)
	for i := 0; i < orig; i++ {
		n := &out.Nodes[i]
		if n.Kind == Leaf {
			continue
		}
		for ci, c := range n.Children {
			if out.Nodes[c].Level < n.Level-1 {
				n.Children[ci] = lift(c, n.Level-1)
			}
		}
	}
	// Serialize breaks the children-precede-parents invariant (dummies get
	// higher IDs); re-normalise by topological renumbering.
	return out.renumber(), added
}

// renumber rewrites the graph so node IDs are a topological order
// (children precede parents), preserving levels and roots.
func (g *Graph) renumber() *Graph {
	order := make([]int, 0, len(g.Nodes))
	state := make([]int, len(g.Nodes)) // 0 unvisited, 1 in progress, 2 done
	var visit func(int)
	visit = func(id int) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, c := range g.Nodes[id].Children {
			visit(c)
		}
		state[id] = 2
		order = append(order, id)
	}
	for id := range g.Nodes {
		visit(id)
	}
	remap := make([]int, len(g.Nodes))
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	out := &Graph{Nodes: make([]Node, len(g.Nodes))}
	for _, oldID := range order {
		n := g.Nodes[oldID]
		nn := n
		nn.ID = remap[oldID]
		nn.Children = make([]int, len(n.Children))
		for i, c := range n.Children {
			nn.Children[i] = remap[c]
		}
		out.Nodes[nn.ID] = nn
	}
	out.Roots = make([]int, len(g.Roots))
	for i, r := range g.Roots {
		out.Roots[i] = remap[r]
	}
	return out
}

// IsSerial reports whether every arc connects adjacent levels — the
// structural property that makes a DP formulation serial (Section 2.2).
func (g *Graph) IsSerial() bool {
	for _, n := range g.Nodes {
		for _, c := range n.Children {
			if g.Nodes[c].Level != n.Level-1 {
				return false
			}
		}
	}
	return true
}

// UP evaluates equation (32), the total number of nodes in the regular
// AND/OR-graph reducing an (N+1)-stage problem with partition p and m
// values per stage:
//
//	u(p) = (N-1)/(p-1) * m^(p+1) + (N*p-1)/(p-1) * m^2
//
// N must be a power of p for the graph to exist; the formula itself is
// evaluated for any arguments.
func UP(n, p, m int) float64 {
	nf, pf, mf := float64(n), float64(p), float64(m)
	return (nf-1)/(pf-1)*math.Pow(mf, pf+1) + (nf*pf-1)/(pf-1)*mf*mf
}

// IsPowerOf reports whether n == p^q for some integer q >= 1.
func IsPowerOf(n, p int) bool {
	if n < p || p < 2 {
		return n == p
	}
	for n > 1 {
		if n%p != 0 {
			return false
		}
		n /= p
	}
	return true
}

// BuildRegular constructs the regular AND/OR-graph of Figure 7: the
// reduction of an (N+1)-stage graph g (N = p^q stage-to-stage cost
// matrices, m nodes per stage) to a single stage using p-ary partitions.
// The roots are the m^2 top-level OR-nodes, ordered (a, b) row-major:
// root a*m+b evaluates to the optimal cost from node a of stage 0 to node
// b of stage N.
func BuildRegular(g *multistage.Graph, p int) (*Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if p < 2 {
		return nil, fmt.Errorf("andor: partition p must be >= 2, have %d", p)
	}
	n := g.Stages() - 1
	m := g.StageSizes[0]
	for _, sz := range g.StageSizes {
		if sz != m {
			return nil, fmt.Errorf("andor: BuildRegular needs a uniform graph")
		}
	}
	if !IsPowerOf(n, p) {
		return nil, fmt.Errorf("andor: N=%d is not a power of p=%d", n, p)
	}
	out := &Graph{}
	// seg[k] holds the m^2 node IDs (row-major) of the current cost matrix
	// for segment k.
	segs := make([][]int, n)
	for k := 0; k < n; k++ {
		ids := make([]int, m*m)
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				ids[a*m+b] = out.AddLeaf(g.Cost[k].At(a, b))
			}
		}
		segs[k] = ids
	}
	// interior enumerates the m^(p-1) choices of p-1 interior nodes.
	for len(segs) > 1 {
		next := make([][]int, 0, len(segs)/p)
		for s := 0; s+p <= len(segs); s += p {
			group := segs[s : s+p]
			ids := make([]int, m*m)
			for a := 0; a < m; a++ {
				for b := 0; b < m; b++ {
					// One OR-node with m^(p-1) AND-children.
					ands := make([]int, 0, intPow(m, p-1))
					interior := make([]int, p-1)
					for {
						// AND-node: the path a -> interior... -> b through
						// the p segments.
						children := make([]int, p)
						prev := a
						for seg := 0; seg < p; seg++ {
							nxt := b
							if seg < p-1 {
								nxt = interior[seg]
							}
							children[seg] = group[seg][prev*m+nxt]
							prev = nxt
						}
						ands = append(ands, out.AddNode(And, children, 0))
						// Increment the mixed-radix interior counter.
						i := 0
						for ; i < p-1; i++ {
							interior[i]++
							if interior[i] < m {
								break
							}
							interior[i] = 0
						}
						if i == p-1 {
							break
						}
					}
					ids[a*m+b] = out.AddNode(Or, ands, 0)
				}
			}
			next = append(next, ids)
		}
		segs = next
	}
	out.Roots = segs[0]
	return out, nil
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// SolveRegular builds the p-ary reduction graph, evaluates it, and returns
// the overall optimum (the fold of the m^2 roots under the semiring) —
// comparable with multistage.SolveOptimal.
func SolveRegular(s semiring.Comparative, g *multistage.Graph, p int) (float64, error) {
	ao, err := BuildRegular(g, p)
	if err != nil {
		return 0, err
	}
	vals, err := ao.Evaluate(s)
	if err != nil {
		return 0, err
	}
	acc := s.Zero()
	for _, r := range ao.Roots {
		acc = s.Add(acc, vals[r])
	}
	return acc, nil
}
