package andor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestAddAndEvaluateSmall(t *testing.T) {
	// min( 1+2, 4 ) = 3.
	g := &Graph{}
	l1 := g.AddLeaf(1)
	l2 := g.AddLeaf(2)
	l3 := g.AddLeaf(4)
	and := g.AddNode(And, []int{l1, l2}, 0)
	or := g.AddNode(Or, []int{and, l3}, 0)
	g.Roots = []int{or}
	vals, err := g.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if vals[or] != 3 {
		t.Errorf("root = %v, want 3", vals[or])
	}
	if g.Height() != 2 {
		t.Errorf("height = %d, want 2", g.Height())
	}
}

func TestAndExtra(t *testing.T) {
	// The matrix-chain additive constant: AND sums children plus Extra.
	g := &Graph{}
	l1 := g.AddLeaf(1)
	l2 := g.AddLeaf(2)
	and := g.AddNode(And, []int{l1, l2}, 10)
	g.Roots = []int{and}
	vals, err := g.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if vals[and] != 13 {
		t.Errorf("and = %v, want 13", vals[and])
	}
}

func TestValidateRejects(t *testing.T) {
	g := &Graph{Nodes: []Node{{ID: 0, Kind: And}}}
	if err := g.Validate(); err == nil {
		t.Error("childless AND accepted")
	}
	g = &Graph{Nodes: []Node{{ID: 0, Kind: Leaf, Children: []int{0}}}}
	if err := g.Validate(); err == nil {
		t.Error("leaf with children accepted")
	}
	g = &Graph{Nodes: []Node{{ID: 0, Kind: Or, Children: []int{3}}}}
	if err := g.Validate(); err == nil {
		t.Error("forward child reference accepted")
	}
	g = &Graph{Nodes: []Node{{ID: 0, Kind: Leaf}}, Roots: []int{5}}
	if err := g.Validate(); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestUPFormulaEquation32(t *testing.T) {
	// Spot values computed by hand from equation (32).
	// N=2, p=2, m=2: (1/1)*2^3 + (3/1)*4 = 8 + 12 = 20.
	if got := UP(2, 2, 2); got != 20 {
		t.Errorf("UP(2,2,2) = %v, want 20", got)
	}
	// N=4, p=2, m=3: 3*81/... (4-1)/1*3^3 + (8-1)/1*9 = 81 + 63 = 144.
	if got := UP(4, 2, 3); got != 144 {
		t.Errorf("UP(4,2,3) = %v, want 144", got)
	}
}

func TestBuildRegularCountsMatchUP(t *testing.T) {
	// The constructed graph's node count must equal equation (32).
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, p, m int }{
		{2, 2, 2}, {4, 2, 2}, {4, 2, 3}, {8, 2, 2}, {4, 4, 2}, {9, 3, 2}, {16, 4, 2},
	} {
		g := multistage.RandomUniform(rng, tc.n+1, tc.m, 1, 10)
		ao, err := BuildRegular(g, tc.p)
		if err != nil {
			t.Fatalf("n=%d p=%d m=%d: %v", tc.n, tc.p, tc.m, err)
		}
		leaves, ands, ors := ao.Count()
		total := leaves + ands + ors
		if want := UP(tc.n, tc.p, tc.m); float64(total) != want {
			t.Errorf("n=%d p=%d m=%d: total %d, u(p) %v (leaves %d ands %d ors %d)",
				tc.n, tc.p, tc.m, total, want, leaves, ands, ors)
		}
		// Height is 2*log_p(N).
		if want := 2 * int(math.Round(math.Log(float64(tc.n))/math.Log(float64(tc.p)))); ao.Height() != want {
			t.Errorf("n=%d p=%d: height %d, want %d", tc.n, tc.p, ao.Height(), want)
		}
	}
}

func TestTheorem2BinaryPartitionMinimal(t *testing.T) {
	// Theorem 2: p = 2 minimises u(p) for m >= 2 (and m >= 3 strictly per
	// the derivative condition; check the full inventory for N=16).
	n := 16
	for _, m := range []int{2, 3, 5, 8} {
		u2 := UP(n, 2, m)
		for _, p := range []int{4, 8, 16} {
			if up := UP(n, p, m); up < u2 {
				t.Errorf("m=%d: u(%d)=%v < u(2)=%v, Theorem 2 violated", m, p, up, u2)
			}
		}
		// Strict growth for m >= 3.
		if m >= 3 {
			if UP(n, 4, m) <= u2 {
				t.Errorf("m=%d: u(4) should strictly exceed u(2)", m)
			}
		}
	}
}

func TestSolveRegularMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, p, m int }{
		{2, 2, 3}, {4, 2, 2}, {4, 2, 4}, {8, 2, 3}, {4, 4, 3}, {9, 3, 2}, {16, 2, 2},
	} {
		g := multistage.RandomUniform(rng, tc.n+1, tc.m, 0, 20)
		got, err := SolveRegular(mp, g, tc.p)
		if err != nil {
			t.Fatalf("n=%d p=%d m=%d: %v", tc.n, tc.p, tc.m, err)
		}
		want := multistage.SolveOptimal(mp, g).Cost
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d p=%d m=%d: AND/OR %v, optimal %v", tc.n, tc.p, tc.m, got, want)
		}
	}
}

func TestRootsAreAllPairsCosts(t *testing.T) {
	// Root a*m+b must equal the optimal a->b cost, f3(V_0, V_N) of
	// equation (15).
	rng := rand.New(rand.NewSource(3))
	m := 3
	g := multistage.RandomUniform(rng, 5, m, 0, 10) // N = 4
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ao.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: min-plus product of the four cost matrices.
	prod := matrix.ChainMat(mp, g.Cost)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if got, want := vals[ao.Roots[a*m+b]], prod.At(a, b); math.Abs(got-want) > 1e-9 {
				t.Errorf("root (%d,%d): %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestBuildRegularErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := multistage.RandomUniform(rng, 4, 2, 0, 10) // N = 3, not a power of 2
	if _, err := BuildRegular(g, 2); err == nil {
		t.Error("N not a power of p accepted")
	}
	if _, err := BuildRegular(multistage.RandomUniform(rng, 5, 2, 0, 10), 1); err == nil {
		t.Error("p=1 accepted")
	}
	ragged := multistage.Random(rng, []int{2, 3, 2}, 0, 10)
	if _, err := BuildRegular(ragged, 2); err == nil {
		t.Error("non-uniform graph accepted")
	}
}

func TestSerializeMakesSerial(t *testing.T) {
	// Build a deliberately nonserial graph: a root at level 3 with one
	// child at level 0 (like m_{1,3}*m_{4,4} in Figure 2).
	g := &Graph{}
	l0 := g.AddLeaf(5)
	l1 := g.AddLeaf(7)
	a1 := g.AddNode(And, []int{l0, l1}, 0) // level 1
	o1 := g.AddNode(Or, []int{a1}, 0)      // level 2
	top := g.AddNode(And, []int{o1, l0}, 0)
	g.Roots = []int{top}
	if g.IsSerial() {
		t.Fatal("test graph should be nonserial")
	}
	before, err := g.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	sg, added := g.Serialize()
	if !sg.IsSerial() {
		t.Error("Serialize did not produce a serial graph")
	}
	if added != 2 {
		t.Errorf("added %d dummies, want 2 (lift leaf from level 0 to 2)", added)
	}
	after, err := sg.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before[g.Roots[0]]-after[sg.Roots[0]]) > 1e-9 {
		t.Errorf("serialisation changed the result: %v vs %v", before[g.Roots[0]], after[sg.Roots[0]])
	}
}

func TestSerializeSharesDummyChains(t *testing.T) {
	// Two parents needing the same lifted child must share one chain.
	g := &Graph{}
	l0 := g.AddLeaf(5)
	l1 := g.AddLeaf(7)
	a1 := g.AddNode(And, []int{l0, l1}, 0)
	o1 := g.AddNode(Or, []int{a1}, 0)
	t1 := g.AddNode(And, []int{o1, l0}, 0)
	t2 := g.AddNode(And, []int{o1, l0}, 0)
	g.Roots = []int{t1, t2}
	_, added := g.Serialize()
	if added != 2 {
		t.Errorf("added %d dummies, want 2 shared", added)
	}
}

func TestSerializeIdempotentOnSerialGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := multistage.RandomUniform(rng, 5, 2, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ao.IsSerial() {
		t.Fatal("regular reduction graph should be serial already")
	}
	_, added := ao.Serialize()
	if added != 0 {
		t.Errorf("serial graph gained %d dummies", added)
	}
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := multistage.RandomUniform(rng, 9, 3, 0, 10) // N = 8
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ao.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		par, st, err := ao.EvaluateParallel(mp, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if math.Abs(seq[i]-par[i]) > 1e-9 {
				t.Fatalf("workers=%d: node %d: %v vs %v", workers, i, seq[i], par[i])
			}
		}
		if st.Levels != ao.Height() {
			t.Errorf("levels %d != height %d", st.Levels, ao.Height())
		}
		leaves, ands, ors := ao.Count()
		if st.NodeSteps != ands+ors {
			t.Errorf("node steps %d, want %d", st.NodeSteps, ands+ors)
		}
		_ = leaves
	}
	if _, _, err := ao.EvaluateParallel(mp, 0); err == nil {
		t.Error("workers=0 accepted")
	}
}

func TestPropertySerializePreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random layered DAG with arbitrary-level arcs.
		g := &Graph{}
		var pool []int
		for i := 0; i < 4+rng.Intn(4); i++ {
			pool = append(pool, g.AddLeaf(float64(rng.Intn(50))))
		}
		for i := 0; i < 8+rng.Intn(8); i++ {
			nc := 1 + rng.Intn(3)
			children := make([]int, nc)
			for j := range children {
				children[j] = pool[rng.Intn(len(pool))]
			}
			kind := Or
			if rng.Intn(2) == 0 {
				kind = And
			}
			pool = append(pool, g.AddNode(kind, children, 0))
		}
		root := pool[len(pool)-1]
		g.Roots = []int{root}
		before, err := g.Evaluate(mp)
		if err != nil {
			return false
		}
		sg, _ := g.Serialize()
		if !sg.IsSerial() {
			return false
		}
		after, err := sg.Evaluate(mp)
		if err != nil {
			return false
		}
		return math.Abs(before[root]-after[sg.Roots[0]]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIsPowerOf(t *testing.T) {
	cases := []struct {
		n, p int
		want bool
	}{
		{8, 2, true}, {9, 3, true}, {16, 4, true}, {6, 2, false},
		{2, 2, true}, {1, 2, false}, {27, 3, true}, {12, 3, false},
	}
	for _, c := range cases {
		if got := IsPowerOf(c.n, c.p); got != c.want {
			t.Errorf("IsPowerOf(%d,%d) = %v, want %v", c.n, c.p, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Leaf.String() != "leaf" || And.String() != "and" || Or.String() != "or" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must still render")
	}
}
