package andor

import (
	"fmt"

	"systolicdp/internal/semiring"
)

// Section 5 recalls Martelli & Montanari's result that a polyadic DP
// problem is the search for a minimum-cost solution tree in an additive
// AND/OR-graph, searchable top-down or bottom-up (Nilsson's AO* is the
// heuristic top-down variant). Evaluate is the bottom-up search; this
// file adds the memoized top-down search and solution-tree extraction.

// EvaluateTopDown computes the values of the given roots by memoized
// top-down recursion, visiting only nodes reachable from them. It returns
// the value vector (entries for unvisited nodes are unspecified) and the
// number of nodes visited — on graphs with unreachable or shared
// substructure the visit count is smaller than the node count, which is
// the practical argument for top-down search.
func (g *Graph) EvaluateTopDown(s semiring.Comparative, roots []int) ([]float64, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	val := make([]float64, len(g.Nodes))
	done := make([]bool, len(g.Nodes))
	visited := 0
	var rec func(id int) float64
	rec = func(id int) float64 {
		if done[id] {
			return val[id]
		}
		done[id] = true
		visited++
		n := g.Nodes[id]
		switch n.Kind {
		case Leaf:
			val[id] = n.Value
		case And:
			acc := s.One()
			for _, c := range n.Children {
				acc = s.Mul(acc, rec(c))
			}
			val[id] = s.Mul(acc, n.Extra)
		case Or:
			acc := s.Zero()
			for _, c := range n.Children {
				acc = s.Add(acc, rec(c))
			}
			val[id] = acc
		}
		return val[id]
	}
	for _, r := range roots {
		if r < 0 || r >= len(g.Nodes) {
			return nil, 0, fmt.Errorf("andor: root %d out of range", r)
		}
		rec(r)
	}
	return val, visited, nil
}

// SolutionTree is the minimum-cost solution tree rooted at one root: the
// subgraph that keeps every child of an AND-node but exactly one (best)
// child of each OR-node.
type SolutionTree struct {
	Root   int
	Value  float64
	Chosen map[int]int // OR-node ID -> selected child ID
	Nodes  []int       // all node IDs in the tree, root last
}

// ExtractSolution evaluates the graph bottom-up and extracts the solution
// tree under root: at each OR-node the Better-optimal child is selected
// (ties to the smallest child ID). The extracted tree's recomputed value
// equals the root's value — the paper's minimal-cost solution tree.
func (g *Graph) ExtractSolution(s semiring.Comparative, root int) (*SolutionTree, error) {
	vals, err := g.Evaluate(s)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= len(g.Nodes) {
		return nil, fmt.Errorf("andor: root %d out of range", root)
	}
	st := &SolutionTree{Root: root, Value: vals[root], Chosen: map[int]int{}}
	seen := map[int]bool{}
	var rec func(id int)
	rec = func(id int) {
		if seen[id] {
			return
		}
		seen[id] = true
		n := g.Nodes[id]
		switch n.Kind {
		case And:
			for _, c := range n.Children {
				rec(c)
			}
		case Or:
			best, arg := s.Zero(), -1
			for _, c := range n.Children {
				if arg == -1 || s.Better(vals[c], best) {
					best, arg = vals[c], c
				}
			}
			st.Chosen[id] = arg
			rec(arg)
		}
		st.Nodes = append(st.Nodes, id)
	}
	rec(root)
	return st, nil
}

// Recompute re-evaluates the solution tree from its leaves, ignoring
// unchosen OR-children; used to verify extraction consistency.
func (st *SolutionTree) Recompute(s semiring.Comparative, g *Graph) float64 {
	memo := map[int]float64{}
	var rec func(id int) float64
	rec = func(id int) float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		n := g.Nodes[id]
		var v float64
		switch n.Kind {
		case Leaf:
			v = n.Value
		case And:
			acc := s.One()
			for _, c := range n.Children {
				acc = s.Mul(acc, rec(c))
			}
			v = s.Mul(acc, n.Extra)
		case Or:
			v = rec(st.Chosen[id])
		}
		memo[id] = v
		return v
	}
	return rec(st.Root)
}
