package andor

import (
	"fmt"
	"math"
)

// The closing argument of Section 5: for irregular multistage graphs
// (stage sizes m_1..m_k not all equal), the number of comparisons in the
// AND/OR-graph depends on the order in which interior stages are
// eliminated, and binary partitioning still wins — using a 3-arc AND-node
// over stages (m1,m2,m3,m4) costs m1*m2*m3*m4 comparisons, while
// eliminating one stage at a time costs m1*m3*(m2+m4) or m2*m4*(m1+m3).
// Choosing the best binary elimination order is itself the secondary
// optimization problem: it has exactly the matrix-chain-ordering
// recurrence over the stage-size vector.

// TriReductionCost returns the comparison count of eliminating stages 2
// and 3 of a four-stage segment (sizes m1..m4) with a single 3-arc
// AND-node: m1*m2*m3*m4.
func TriReductionCost(m1, m2, m3, m4 int) int { return m1 * m2 * m3 * m4 }

// BinaryReductionCost returns the cheaper of the two binary elimination
// orders for the same segment — stage 2 first (m1*m2*m3 + m1*m3*m4) or
// stage 3 first (m2*m3*m4 + m1*m2*m4) — along with which stage to
// eliminate first (2 or 3). The paper states the folded form
// m1*m3*(m2+m4) and m2*m4*(m1+m3).
func BinaryReductionCost(m1, m2, m3, m4 int) (cost int, first int) {
	via2 := m1 * m3 * (m2 + m4) // eliminate stage 2, then stage 3
	via3 := m2 * m4 * (m1 + m3) // eliminate stage 3, then stage 2
	if via2 <= via3 {
		return via2, 2
	}
	return via3, 3
}

// EliminationOrder computes the optimal binary elimination order for an
// irregular multistage graph with the given stage sizes: the interior
// stages are removed one at a time, eliminating stage of size m_k between
// current neighbours of sizes m_i and m_j at a cost of m_i*m_k*m_j
// comparisons. The recurrence is the matrix-chain DP of equation (6) with
// the stage sizes as dimensions. It returns the minimum total comparison
// count and the elimination sequence (indices into sizes, in order).
func EliminationOrder(sizes []int) (int, []int, error) {
	n := len(sizes)
	if n < 2 {
		return 0, nil, fmt.Errorf("andor: need at least 2 stages, have %d", n)
	}
	for i, m := range sizes {
		if m < 1 {
			return 0, nil, fmt.Errorf("andor: stage %d has size %d", i, m)
		}
	}
	if n == 2 {
		return 0, nil, nil
	}
	// cost[i][j]: optimal comparisons to eliminate all stages strictly
	// between i and j; split[i][j]: the last stage eliminated.
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for span := 2; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best, arg := math.Inf(1), -1
			for k := i + 1; k < j; k++ {
				c := cost[i][k] + cost[k][j] + float64(sizes[i]*sizes[k]*sizes[j])
				if c < best {
					best, arg = c, k
				}
			}
			cost[i][j] = best
			split[i][j] = arg
		}
	}
	var order []int
	var rec func(i, j int)
	rec = func(i, j int) {
		if j-i < 2 {
			return
		}
		k := split[i][j]
		rec(i, k)
		rec(k, j)
		order = append(order, k) // k eliminated after its sub-segments
	}
	rec(0, n-1)
	return int(cost[0][n-1]), order, nil
}

// NaiveEliminationCost is the left-to-right elimination baseline: remove
// interior stages in index order.
func NaiveEliminationCost(sizes []int) (int, error) {
	n := len(sizes)
	if n < 2 {
		return 0, fmt.Errorf("andor: need at least 2 stages, have %d", n)
	}
	// Eliminating stage k merges it into the frontier from stage 0, so
	// each step costs m_0 * m_k * m_{k+1}.
	total := 0
	for k := 1; k+1 < n; k++ {
		total += sizes[0] * sizes[k] * sizes[k+1]
	}
	return total, nil
}
