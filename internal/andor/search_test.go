package andor

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/multistage"
)

func TestTopDownMatchesBottomUp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := multistage.RandomUniform(rng, 9, 3, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	up, err := ao.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	down, visited, err := ao.EvaluateTopDown(mp, ao.Roots)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ao.Roots {
		if math.Abs(up[r]-down[r]) > 1e-9 {
			t.Errorf("root %d: bottom-up %v, top-down %v", r, up[r], down[r])
		}
	}
	if visited != len(ao.Nodes) {
		// The regular graph is fully shared: all nodes reachable.
		t.Errorf("visited %d of %d nodes", visited, len(ao.Nodes))
	}
}

func TestTopDownSkipsUnreachable(t *testing.T) {
	g := &Graph{}
	l1 := g.AddLeaf(1)
	l2 := g.AddLeaf(2)
	g.AddLeaf(99) // unreachable
	or := g.AddNode(Or, []int{l1, l2}, 0)
	g.Roots = []int{or}
	_, visited, err := g.EvaluateTopDown(mp, g.Roots)
	if err != nil {
		t.Fatal(err)
	}
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3 (unreachable leaf skipped)", visited)
	}
}

func TestTopDownSingleRootVisitsSubgraph(t *testing.T) {
	// With m^2 roots, evaluating one root must visit fewer nodes than the
	// whole graph.
	rng := rand.New(rand.NewSource(2))
	g := multistage.RandomUniform(rng, 5, 3, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, visited, err := ao.EvaluateTopDown(mp, ao.Roots[:1])
	if err != nil {
		t.Fatal(err)
	}
	if visited >= len(ao.Nodes) {
		t.Errorf("single root visited all %d nodes", len(ao.Nodes))
	}
}

func TestTopDownErrors(t *testing.T) {
	g := &Graph{}
	g.AddLeaf(1)
	if _, _, err := g.EvaluateTopDown(mp, []int{5}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestExtractSolutionConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := multistage.RandomUniform(rng, 5, 3, 0, 20)
		ao, err := BuildRegular(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, root := range ao.Roots {
			st, err := ao.ExtractSolution(mp, root)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Recompute(mp, ao); math.Abs(got-st.Value) > 1e-9 {
				t.Fatalf("trial %d root %d: recomputed %v != value %v", trial, root, got, st.Value)
			}
			// Every OR node in the tree must have a chosen child that is
			// one of its children.
			for orID, chosen := range st.Chosen {
				ok := false
				for _, c := range ao.Nodes[orID].Children {
					if c == chosen {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("chosen child %d not a child of OR %d", chosen, orID)
				}
			}
		}
	}
}

func TestExtractSolutionPathMatchesGraphPath(t *testing.T) {
	// The solution tree's value at root (a,b) equals the optimal a->b
	// path cost from the baseline solver.
	rng := rand.New(rand.NewSource(4))
	m := 2
	g := multistage.RandomUniform(rng, 5, m, 0, 10)
	ao, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ao.ExtractSolution(mp, ao.Roots[0])
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ao.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Value-vals[ao.Roots[0]]) > 1e-9 {
		t.Errorf("solution value %v != root value %v", st.Value, vals[ao.Roots[0]])
	}
}

func TestExtractSolutionErrors(t *testing.T) {
	g := &Graph{}
	g.AddLeaf(1)
	if _, err := g.ExtractSolution(mp, 9); err == nil {
		t.Error("out-of-range root accepted")
	}
}
