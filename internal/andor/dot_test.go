package andor

import (
	"strings"
	"testing"
)

func TestDOTRendersAllElements(t *testing.T) {
	g := &Graph{}
	l1 := g.AddLeaf(3)
	l2 := g.AddLeaf(4)
	and := g.AddNode(And, []int{l1, l2}, 7)
	or := g.AddNode(Or, []int{and}, 0)
	g.Roots = []int{or}
	sg, _ := g.Serialize()
	out := sg.DOT("test")
	for _, want := range []string{
		"digraph \"test\"", "shape=circle", "shape=box", "shape=diamond",
		"AND +7", "rank=same", "->", "penwidth=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count equals the number of child links.
	edges := 0
	for _, n := range sg.Nodes {
		edges += len(n.Children)
	}
	if got := strings.Count(out, "->"); got != edges {
		t.Errorf("%d edges rendered, want %d", got, edges)
	}
}

func TestDOTDashedDummies(t *testing.T) {
	g := &Graph{}
	l0 := g.AddLeaf(5)
	l1 := g.AddLeaf(7)
	a1 := g.AddNode(And, []int{l0, l1}, 0)
	o1 := g.AddNode(Or, []int{a1}, 0)
	top := g.AddNode(And, []int{o1, l0}, 0)
	g.Roots = []int{top}
	sg, added := g.Serialize()
	if added == 0 {
		t.Fatal("expected dummies")
	}
	if got := strings.Count(sg.DOT("x"), "style=dashed"); got != added {
		t.Errorf("%d dashed nodes, want %d", got, added)
	}
}

func TestDOTWithSolutionHighlights(t *testing.T) {
	g := &Graph{}
	l1 := g.AddLeaf(1)
	l2 := g.AddLeaf(9)
	or := g.AddNode(Or, []int{l1, l2}, 0)
	g.Roots = []int{or}
	out, err := g.DOTWithSolution("sol", mp, or)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "color=red") {
		t.Error("no highlighted nodes")
	}
	if !strings.Contains(out, "solution value 1") {
		t.Errorf("solution label missing:\n%s", out)
	}
	// The chosen arc (leaf 1 -> or) must be red; the rejected one not.
	if !strings.Contains(out, "n0 -> n2 [color=red") {
		t.Error("chosen arc not highlighted")
	}
	if strings.Contains(out, "n1 -> n2 [color=red") {
		t.Error("rejected arc highlighted")
	}
	if _, err := g.DOTWithSolution("x", mp, 99); err == nil {
		t.Error("bad root accepted")
	}
}
