package andor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryBeatsTriReduction(t *testing.T) {
	// The paper: 3-arc AND-nodes need more comparisons whenever all
	// m_i >= 2.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m1, m2, m3, m4 := 2+rng.Intn(8), 2+rng.Intn(8), 2+rng.Intn(8), 2+rng.Intn(8)
		tri := TriReductionCost(m1, m2, m3, m4)
		bin, first := BinaryReductionCost(m1, m2, m3, m4)
		if bin > tri {
			t.Fatalf("binary %d > ternary %d for (%d,%d,%d,%d)", bin, tri, m1, m2, m3, m4)
		}
		if first != 2 && first != 3 {
			t.Fatalf("first = %d", first)
		}
	}
}

func TestBinaryReductionPicksCheaperOrder(t *testing.T) {
	// Asymmetric sizes force a specific order: with a huge stage 2 it
	// must go first.
	cost, first := BinaryReductionCost(2, 100, 2, 2)
	if first != 2 {
		t.Errorf("first = %d, want 2 (eliminate the huge stage early)", first)
	}
	if want := 2 * 2 * (100 + 2); cost != want {
		t.Errorf("cost = %d, want %d", cost, want)
	}
	_, first = BinaryReductionCost(2, 2, 100, 2)
	if first != 3 {
		t.Errorf("first = %d, want 3", first)
	}
}

func TestEliminationOrderMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(6)
		}
		got, order, err := EliminationOrder(sizes)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteEliminate(sizes)
		if got != want {
			t.Fatalf("trial %d sizes %v: DP %d, brute %d", trial, sizes, got, want)
		}
		// The order must contain each interior stage exactly once and
		// replaying it must cost exactly `got`.
		if replay := replayOrder(sizes, order); replay != got {
			t.Fatalf("trial %d: replaying order costs %d, want %d", trial, replay, got)
		}
	}
}

// bruteEliminate tries every elimination sequence.
func bruteEliminate(sizes []int) int {
	var rec func(cur []int) int
	rec = func(cur []int) int {
		if len(cur) == 2 {
			return 0
		}
		best := 1 << 60
		for k := 1; k+1 < len(cur); k++ {
			c := cur[k-1] * cur[k] * cur[k+1]
			next := append(append([]int(nil), cur[:k]...), cur[k+1:]...)
			if total := c + rec(next); total < best {
				best = total
			}
		}
		return best
	}
	return rec(sizes)
}

// replayOrder applies the elimination sequence and accumulates costs.
func replayOrder(sizes []int, order []int) int {
	alive := make([]bool, len(sizes))
	for i := range alive {
		alive[i] = true
	}
	total := 0
	for _, k := range order {
		li, ri := -1, -1
		for i := k - 1; i >= 0; i-- {
			if alive[i] {
				li = i
				break
			}
		}
		for i := k + 1; i < len(sizes); i++ {
			if alive[i] {
				ri = i
				break
			}
		}
		total += sizes[li] * sizes[k] * sizes[ri]
		alive[k] = false
	}
	return total
}

func TestEliminationOrderOptimalVsNaive(t *testing.T) {
	// A graph with one huge interior stage: the optimal order removes it
	// first, the naive left-to-right order pays for it repeatedly... in
	// this formulation naive differs once sizes are skewed.
	sizes := []int{2, 3, 50, 3, 2}
	opt, _, err := EliminationOrder(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteEliminate(sizes); opt != want {
		t.Fatalf("opt %d != brute %d", opt, want)
	}
	naive, err := NaiveEliminationCost(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if opt > naive {
		t.Errorf("optimal order %d worse than naive %d", opt, naive)
	}
}

func TestEliminationOrderEdgeCases(t *testing.T) {
	if _, _, err := EliminationOrder([]int{3}); err == nil {
		t.Error("single stage accepted")
	}
	if _, _, err := EliminationOrder([]int{3, 0, 2}); err == nil {
		t.Error("zero-size stage accepted")
	}
	c, order, err := EliminationOrder([]int{4, 7})
	if err != nil || c != 0 || len(order) != 0 {
		t.Errorf("two-stage graph: %d %v %v", c, order, err)
	}
}

func TestPropertyEliminationOrderIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(5)
		}
		got, _, err := EliminationOrder(sizes)
		return err == nil && got == bruteEliminate(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
