package andor_test

import (
	"fmt"

	"systolicdp/internal/andor"
)

// ExampleUP evaluates the node-count formula of equation (32), showing
// Theorem 2's preference for binary partitions.
func ExampleUP() {
	for _, p := range []int{2, 4, 16} {
		fmt.Println(p, andor.UP(16, p, 3))
	}
	// Output:
	// 2 684
	// 4 1404
	// 16 1.29140316e+08
}

// ExampleGraph_Serialize shows the Figure-8 transformation: a nonserial
// graph gains dummy pass-through nodes until every arc spans one level.
func ExampleGraph_Serialize() {
	g := &andor.Graph{}
	l0 := g.AddLeaf(5)
	l1 := g.AddLeaf(7)
	and := g.AddNode(andor.And, []int{l0, l1}, 0)
	or := g.AddNode(andor.Or, []int{and}, 0)
	top := g.AddNode(andor.And, []int{or, l0}, 0) // arc spans two levels
	g.Roots = []int{top}
	fmt.Println(g.IsSerial())
	sg, added := g.Serialize()
	fmt.Println(sg.IsSerial(), added)
	// Output:
	// false
	// true 2
}
