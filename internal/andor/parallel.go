package andor

import (
	"fmt"
	"sync"

	"systolicdp/internal/semiring"
)

// ParallelStats reports a level-synchronous parallel evaluation.
type ParallelStats struct {
	Levels    int // parallel steps (one per level above the leaves)
	Workers   int
	MaxWidth  int // widest level (nodes evaluated concurrently at peak)
	NodeSteps int // total node evaluations (equals non-leaf node count)
}

// EvaluateParallel computes node values level by level, evaluating each
// level's nodes concurrently on the given number of worker goroutines —
// the bottom-up parallel AND/OR-tree search of Section 6.2. Results equal
// Evaluate; the returned stats expose the graph's parallel profile (the
// number of levels is the critical-path length 2*log_p N for the regular
// reduction graph).
func (g *Graph) EvaluateParallel(s semiring.Comparative, workers int) ([]float64, *ParallelStats, error) {
	if workers < 1 {
		return nil, nil, fmt.Errorf("andor: need workers >= 1, have %d", workers)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	byLevel := make(map[int][]int)
	maxLevel := 0
	for _, n := range g.Nodes {
		byLevel[n.Level] = append(byLevel[n.Level], n.ID)
		if n.Level > maxLevel {
			maxLevel = n.Level
		}
	}
	val := make([]float64, len(g.Nodes))
	for _, id := range byLevel[0] {
		n := g.Nodes[id]
		if n.Kind == Leaf {
			val[id] = n.Value
		}
	}
	st := &ParallelStats{Levels: maxLevel, Workers: workers}
	for level := 1; level <= maxLevel; level++ {
		ids := byLevel[level]
		if len(ids) > st.MaxWidth {
			st.MaxWidth = len(ids)
		}
		st.NodeSteps += len(ids)
		var wg sync.WaitGroup
		chunk := (len(ids) + workers - 1) / workers
		for w := 0; w < workers && w*chunk < len(ids); w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(ids) {
				hi = len(ids)
			}
			wg.Add(1)
			go func(ids []int) {
				defer wg.Done()
				for _, id := range ids {
					n := g.Nodes[id]
					switch n.Kind {
					case And:
						acc := s.One()
						for _, c := range n.Children {
							acc = s.Mul(acc, val[c])
						}
						val[id] = s.Mul(acc, n.Extra)
					case Or:
						acc := s.Zero()
						for _, c := range n.Children {
							acc = s.Add(acc, val[c])
						}
						val[id] = acc
					case Leaf:
						val[id] = n.Value
					}
				}
			}(ids[lo:hi])
		}
		wg.Wait()
	}
	return val, st, nil
}
