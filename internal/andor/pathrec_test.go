package andor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func TestBuildRegularIndexedSameGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := multistage.RandomUniform(rng, 5, 3, 0, 10)
	plain, err := BuildRegular(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	indexed, idx, err := BuildRegularIndexed(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Nodes) != len(indexed.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(plain.Nodes), len(indexed.Nodes))
	}
	pv, err := plain.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := indexed.Evaluate(mp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pv {
		if pv[i] != iv[i] {
			t.Fatalf("node %d: %v vs %v", i, pv[i], iv[i])
		}
	}
	if idx.N != 4 || idx.M != 3 || idx.P != 2 {
		t.Errorf("index header %+v", idx)
	}
}

func TestPathBetweenMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, p, m int }{{4, 2, 3}, {8, 2, 2}, {9, 3, 2}, {4, 4, 2}} {
		g := multistage.RandomUniform(rng, tc.n+1, tc.m, 0, 20)
		ao, idx, err := BuildRegularIndexed(g, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		prod := matrix.ChainMat(mp, g.Cost)
		for a := 0; a < tc.m; a++ {
			for b := 0; b < tc.m; b++ {
				path, cost, err := PathBetween(mp, ao, idx, a, b)
				if err != nil {
					t.Fatalf("n=%d p=%d (%d,%d): %v", tc.n, tc.p, a, b, err)
				}
				if math.Abs(cost-prod.At(a, b)) > 1e-9 {
					t.Fatalf("n=%d p=%d (%d,%d): cost %v, want %v", tc.n, tc.p, a, b, cost, prod.At(a, b))
				}
				// The decoded path must be consistent and attain the cost.
				if path[0] != a || path[len(path)-1] != b {
					t.Fatalf("endpoints %v, want %d..%d", path, a, b)
				}
				c, err := g.CostOf(mp, path)
				if err != nil {
					t.Fatalf("invalid path %v: %v", path, err)
				}
				if math.Abs(c-cost) > 1e-9 {
					t.Fatalf("path cost %v != solution value %v (path %v)", c, cost, path)
				}
			}
		}
	}
}

func TestPathBetweenErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := multistage.RandomUniform(rng, 3, 2, 0, 10)
	ao, idx, err := BuildRegularIndexed(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := PathBetween(mp, ao, idx, 5, 0); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestBuildRegularIndexedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, _, err := BuildRegularIndexed(multistage.RandomUniform(rng, 4, 2, 0, 1), 2); err == nil {
		t.Error("non-power N accepted") // 3 matrices
	}
	if _, _, err := BuildRegularIndexed(multistage.RandomUniform(rng, 5, 2, 0, 1), 1); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestPropertyPathBetweenOptimal(t *testing.T) {
	s := semiring.MinPlus{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(2)
		g := multistage.RandomUniform(rng, 5, m, 0, 30) // N = 4
		ao, idx, err := BuildRegularIndexed(g, 2)
		if err != nil {
			return false
		}
		prod := matrix.ChainMat(s, g.Cost)
		a, b := rng.Intn(m), rng.Intn(m)
		path, cost, err := PathBetween(s, ao, idx, a, b)
		if err != nil {
			return false
		}
		c, err := g.CostOf(s, path)
		return err == nil && math.Abs(cost-prod.At(a, b)) < 1e-9 && math.Abs(c-cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
