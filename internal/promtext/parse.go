package promtext

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string            // full series name, including _bucket/_sum/_count suffixes
	Labels map[string]string // nil when the line carries no labels
	Value  float64
}

// Family is one # TYPE-declared metric family and the samples it owns.
// A histogram family owns its _bucket/_sum/_count series.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Families is a parsed exposition document keyed by family name.
type Families map[string]*Family

// Counter returns the value of a single-series counter or gauge family,
// or 0 when absent.
func (fs Families) Value(name string) float64 {
	f, ok := fs[name]
	if !ok || len(f.Samples) == 0 {
		return 0
	}
	return f.Samples[0].Value
}

// Labeled returns the sample values of one family keyed by the given
// label's value. Samples missing the label are skipped.
func (fs Families) Labeled(name, label string) map[string]float64 {
	out := map[string]float64{}
	f, ok := fs[name]
	if !ok {
		return out
	}
	for _, s := range f.Samples {
		if v, ok := s.Labels[label]; ok {
			out[v] = s.Value
		}
	}
	return out
}

// Lint checks text against the strict family rules real registries
// enforce, returning the first violation or nil for a clean exposition:
//
//   - every sample must belong to exactly one # TYPE-declared family,
//     declared before its samples;
//   - a family may be declared only once;
//   - a histogram family owns exactly its _bucket/_sum/_count series
//     (buckets must carry an le label); a bare sample under the
//     histogram's own name — e.g. a quantile-summary emission — is a
//     duplicate-family error;
//   - no family name may collide with another histogram's suffixed
//     series.
func Lint(text string) error {
	_, err := Parse(text)
	return err
}

// Parse reads an exposition document under the same strict rules as
// Lint, returning the parsed families on success.
func Parse(text string) (Families, error) {
	families := Families{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: family %q declared twice", ln+1, name)
				}
				// A new family must not collide with a histogram's series.
				for fam, f := range families {
					if f.Type != "histogram" {
						continue
					}
					for _, sfx := range []string{"", "_bucket", "_sum", "_count"} {
						if name == fam+sfx {
							return nil, fmt.Errorf("line %d: family %q collides with histogram %q", ln+1, name, fam)
						}
					}
				}
				families[name] = &Family{Name: name, Type: typ}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		owner := ""
		if f, ok := families[s.Name]; ok {
			if f.Type == "histogram" {
				return nil, fmt.Errorf("line %d: sample %q reuses histogram family name %q (only _bucket/_sum/_count belong to it)", ln+1, line, s.Name)
			}
			owner = s.Name
		}
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(s.Name, sfx)
			if !found {
				continue
			}
			if f, ok := families[base]; ok && f.Type == "histogram" {
				if owner != "" {
					return nil, fmt.Errorf("line %d: sample %q owned by both family %q and histogram %q", ln+1, line, owner, base)
				}
				if sfx == "_bucket" {
					if _, ok := s.Labels["le"]; !ok {
						return nil, fmt.Errorf("line %d: histogram bucket %q without le label", ln+1, line)
					}
				}
				owner = base
			}
		}
		if owner == "" {
			return nil, fmt.Errorf("line %d: sample %q belongs to no declared family", ln+1, line)
		}
		families[owner].Samples = append(families[owner].Samples, s)
	}
	return families, nil
}

// parseSample splits one sample line: name[{labels}] value.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		s.Name = line[:i]
		rest = line[i:]
	} else {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	if s.Name == "" {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		j := strings.LastIndex(rest, "}")
		if j < 0 {
			return Sample{}, fmt.Errorf("malformed labels in %q", line)
		}
		labels, err := parseLabels(rest[1:j])
		if err != nil {
			return Sample{}, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[j+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return Sample{}, fmt.Errorf("malformed value in %q", line)
	}
	s.Value = v
	return s, nil
}

// parseLabels reads the inside of a {k="v",...} block. Values are quoted
// strings with \" and \\ escapes (the subset this package emits).
func parseLabels(in string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(in) {
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, fmt.Errorf("unterminated label value")
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				b.WriteByte(in[i+1])
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
	return labels, nil
}
