// Package promtext is the shared metrics registry for both serving
// tiers: plain stdlib counter/gauge/histogram primitives plus a strictly
// disciplined Prometheus text exposition writer and parser.
//
// It exists because dpserve and dprouter each grew a hand-rolled copy of
// the same primitives and exposition code, and the fleet tools (dptop's
// /metrics scraper, the CI exposition checks) need one dialect they can
// trust from every process. The discipline the package enforces — every
// sample belongs to exactly one # TYPE-declared family, a histogram
// family owns exactly its _bucket/_sum/_count series — is the subset of
// the Prometheus text format that strict registries reject violations
// of; Lint checks it and Parse reads it back.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float value (atomic bit-pattern store).
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// CounterVec is one labeled counter family: a set of counters keyed by
// the value of a single label (problem kind, replica base, status code).
// Label values are created on first touch and rendered sorted, so the
// exposition stays deterministic.
type CounterVec struct {
	label string
	mu    sync.Mutex
	m     map[string]*Counter
}

// NewCounterVec builds a counter family over the given label name.
func NewCounterVec(label string) *CounterVec {
	return &CounterVec{label: label, m: make(map[string]*Counter)}
}

// With returns the counter for one label value, creating it if new.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Value reads the counter for one label value (0 if never touched).
func (v *CounterVec) Value(value string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[value]; ok {
		return c.Value()
	}
	return 0
}

// Write renders the family: one # TYPE line, then one sample per label
// value in sorted order. An empty family still declares its TYPE so
// scrapers see a stable family set.
func (v *CounterVec) Write(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = v.m[k].Value()
	}
	label := v.label
	v.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	for i, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[i])
	}
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus-style:
// bucket i counts observations <= Bounds[i], plus an implicit +Inf).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  int64
}

// NewHistogram builds a histogram over ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.sum += x
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the bucket containing the target rank, the same estimator
// Prometheus's histogram_quantile applies server-side. The first bucket
// interpolates from 0 (observations here are non-negative latencies), and
// ranks landing in the +Inf bucket clamp to the highest finite bound.
// With no observations it returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	cum := 0.0
	lo := 0.0
	for i, b := range h.bounds {
		c := float64(h.counts[i])
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return lo + frac*(b-lo)
		}
		cum += c
		lo = b
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Write renders the histogram in Prometheus text exposition format,
// preceded by its # TYPE metadata line. A histogram family owns exactly
// the _bucket/_sum/_count series — no other sample may use its name,
// which is what strict exposition parsers enforce.
func (h *Histogram) Write(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// WriteCounter renders one single-series counter family with its # TYPE
// line.
func WriteCounter(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

// WriteGauge renders one single-series gauge family with its # TYPE line.
func WriteGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, v)
}

func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}

// HistogramVec is one labeled histogram family: a set of histograms
// sharing bucket bounds, keyed by the value of a single label (problem
// kind). All label values share one # TYPE line; each renders its own
// _bucket/_sum/_count series with the vec label ahead of le, and values
// are created on first touch and rendered sorted, so the exposition
// stays deterministic.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	m      map[string]*Histogram
}

// NewHistogramVec builds a histogram family over the given label name and
// ascending bucket bounds.
func NewHistogramVec(label string, bounds ...float64) *HistogramVec {
	return &HistogramVec{label: label, bounds: bounds, m: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, creating it if new.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[value]
	if !ok {
		h = NewHistogram(v.bounds...)
		v.m[value] = h
	}
	return h
}

// Write renders the family: one # TYPE line, then each label value's
// _bucket/_sum/_count series in sorted label order. An empty family still
// declares its TYPE so scrapers see a stable family set.
func (v *HistogramVec) Write(w io.Writer, name string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hists := make([]*Histogram, len(keys))
	for i, k := range keys {
		hists[i] = v.m[k]
	}
	label := v.label
	v.mu.Unlock()
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for i, k := range keys {
		hists[i].writeLabeled(w, name, label, k)
	}
}

// writeLabeled renders one histogram's series with an extra leading
// label and no # TYPE line (the owning vec already declared the family).
func (h *Histogram) writeLabeled(w io.Writer, name, label, value string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, value, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, cum)
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, h.sum)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.count)
}
