package promtext

import (
	"math"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", g.Value())
	}
}

func TestCounterVecWriteDeterministic(t *testing.T) {
	v := NewCounterVec("problem")
	v.With("dtw").Add(2)
	v.With("chain").Inc()
	if v.Value("dtw") != 2 || v.Value("chain") != 1 || v.Value("absent") != 0 {
		t.Fatal("CounterVec values wrong")
	}
	var sb strings.Builder
	v.Write(&sb, "x_total")
	want := "# TYPE x_total counter\nx_total{problem=\"chain\"} 1\nx_total{problem=\"dtw\"} 2\n"
	if sb.String() != want {
		t.Fatalf("Write =\n%s\nwant\n%s", sb.String(), want)
	}
}

// An empty CounterVec still declares its family, so the scraped family
// set is stable from process start.
func TestCounterVecEmptyStillDeclaresType(t *testing.T) {
	var sb strings.Builder
	NewCounterVec("l").Write(&sb, "y_total")
	if sb.String() != "# TYPE y_total counter\n" {
		t.Fatalf("empty vec wrote %q", sb.String())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, p := range []float64{0, 0.5, 1} {
		if !math.IsNaN(h.Quantile(p)) {
			t.Errorf("empty histogram Quantile(%g) = %g, want NaN", p, h.Quantile(p))
		}
	}
	// No bounds at all: NaN even with observations.
	hb := NewHistogram()
	hb.Observe(3)
	if !math.IsNaN(hb.Quantile(0.5)) {
		t.Errorf("boundless histogram Quantile(0.5) = %g, want NaN", hb.Quantile(0.5))
	}
}

// All mass in the +Inf bucket: every quantile clamps to the highest
// finite bound, because the estimator has no upper edge to interpolate
// toward.
func TestHistogramQuantileInfBucketMass(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(100)
	h.Observe(1e9)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(p); got != 2 {
			t.Errorf("Quantile(%g) = %g, want clamp to 2", p, got)
		}
	}
}

// p=0 and p=1 are valid and must not panic or escape the observed range;
// out-of-range p clamps.
func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	if got := h.Quantile(0); got != 0 {
		// Rank 0 lands at the first bucket's lower edge (0).
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %g, want 4 (upper edge of last occupied bucket)", got)
	}
	if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
		t.Errorf("Quantile(-0.5) = %g, want clamp to Quantile(0) = %g", got, want)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, want)
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
}

// The exposition writers must round-trip through the strict parser.
func TestWritersRoundTripThroughParse(t *testing.T) {
	var sb strings.Builder
	WriteCounter(&sb, "a_total", 3)
	WriteGauge(&sb, "b", 1.25)
	v := NewCounterVec("status")
	v.With("200").Add(7)
	v.With("503").Inc()
	v.Write(&sb, "c_total")
	h := NewHistogram(0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(5)
	h.Write(&sb, "d_seconds")

	fams, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, sb.String())
	}
	if got := fams.Value("a_total"); got != 3 {
		t.Errorf("a_total = %g, want 3", got)
	}
	if got := fams.Value("b"); got != 1.25 {
		t.Errorf("b = %g, want 1.25", got)
	}
	byStatus := fams.Labeled("c_total", "status")
	if byStatus["200"] != 7 || byStatus["503"] != 1 {
		t.Errorf("c_total labels = %v", byStatus)
	}
	d := fams["d_seconds"]
	if d == nil || d.Type != "histogram" {
		t.Fatalf("d_seconds family missing or mistyped: %+v", d)
	}
	// _bucket/_sum/_count all assembled under the histogram family.
	var bucket, sum, count int
	for _, s := range d.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			bucket++
		case strings.HasSuffix(s.Name, "_sum"):
			sum++
		case strings.HasSuffix(s.Name, "_count"):
			count++
		}
	}
	if bucket != 4 || sum != 1 || count != 1 {
		t.Errorf("histogram series: %d buckets, %d sum, %d count", bucket, sum, count)
	}
}

func TestHistogramVecWriteRoundTrips(t *testing.T) {
	v := NewHistogramVec("kind", 1, 2, 4)
	v.With("dtw").Observe(1)
	v.With("dtw").Observe(3)
	v.With("chain").Observe(2)
	var b strings.Builder
	v.Write(&b, "occ")
	fams, err := Parse(b.String())
	if err != nil {
		t.Fatalf("Lint rejected HistogramVec exposition: %v\n%s", err, b.String())
	}
	f := fams["occ"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("occ family missing or wrong type: %+v", f)
	}
	// 4 buckets (3 finite + Inf) + sum + count per label value.
	if len(f.Samples) != 2*6 {
		t.Fatalf("got %d samples, want 12:\n%s", len(f.Samples), b.String())
	}
	counts := map[string]float64{}
	sums := map[string]float64{}
	for _, s := range f.Samples {
		switch s.Name {
		case "occ_count":
			counts[s.Labels["kind"]] = s.Value
		case "occ_sum":
			sums[s.Labels["kind"]] = s.Value
		}
	}
	if counts["dtw"] != 2 || counts["chain"] != 1 {
		t.Fatalf("per-kind counts = %v", counts)
	}
	if sums["dtw"] != 4 || sums["chain"] != 2 {
		t.Fatalf("per-kind sums = %v", sums)
	}
	// Deterministic order: chain sorts before dtw.
	out := b.String()
	if !strings.Contains(out, "# TYPE occ histogram\n") || strings.Index(out, `kind="chain"`) > strings.Index(out, `kind="dtw"`) {
		t.Fatalf("non-deterministic or untyped exposition:\n%s", out)
	}
}

func TestHistogramVecEmptyStillDeclaresType(t *testing.T) {
	var b strings.Builder
	NewHistogramVec("kind", 1).Write(&b, "occ")
	if b.String() != "# TYPE occ histogram\n" {
		t.Fatalf("empty vec exposition = %q", b.String())
	}
}
