package promtext

import "testing"

// The strict rules: the pre-PR-5 duplicate-family shape (summary-style
// quantile samples under a histogram's name) and friends must all be
// rejected.
func TestLintRejectsInvalidExpositions(t *testing.T) {
	bad := `# TYPE dpserve_solve_latency_seconds histogram
dpserve_solve_latency_seconds_bucket{le="1"} 1
dpserve_solve_latency_seconds_bucket{le="+Inf"} 1
dpserve_solve_latency_seconds_sum 0.5
dpserve_solve_latency_seconds_count 1
dpserve_solve_latency_seconds{quantile="0.5"} 0.5
`
	if err := Lint(bad); err == nil {
		t.Fatal("Lint accepted a quantile sample reusing a histogram family name")
	}
	for name, text := range map[string]string{
		"orphan sample":        "dpserve_undeclared_total 3\n",
		"double declaration":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"bucket without le":    "# TYPE h histogram\nh_bucket 1\n",
		"family collides with": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n# TYPE h_sum counter\n",
		"unknown type":         "# TYPE x widget\nx 1\n",
		"malformed value":      "# TYPE x counter\nx one\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"b 1\n",
	} {
		if err := Lint(text); err == nil {
			t.Errorf("%s: Lint accepted invalid exposition:\n%s", name, text)
		}
	}
	good := "# TYPE a counter\na 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"
	if err := Lint(good); err != nil {
		t.Errorf("Lint rejected a valid exposition: %v", err)
	}
}

func TestParseLabels(t *testing.T) {
	fams, err := Parse("# TYPE m counter\nm{a=\"x\",b=\"y,z\"} 4\nm{a=\"with \\\"quotes\\\"\"} 2\n")
	if err != nil {
		t.Fatal(err)
	}
	samples := fams["m"].Samples
	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	if samples[0].Labels["a"] != "x" || samples[0].Labels["b"] != "y,z" {
		t.Errorf("labels = %v", samples[0].Labels)
	}
	if samples[1].Labels["a"] != `with "quotes"` {
		t.Errorf("escaped label = %q", samples[1].Labels["a"])
	}
	if samples[0].Value != 4 || samples[1].Value != 2 {
		t.Errorf("values = %g, %g", samples[0].Value, samples[1].Value)
	}
}

// Families helpers degrade to zero values on absent names instead of
// panicking — dptop reads whatever the fleet exposes.
func TestFamiliesHelpersOnAbsent(t *testing.T) {
	fams, err := Parse("# TYPE present gauge\npresent 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if fams.Value("absent") != 0 {
		t.Error("Value(absent) != 0")
	}
	if m := fams.Labeled("absent", "l"); len(m) != 0 {
		t.Error("Labeled(absent) not empty")
	}
}
