package systolic

import (
	"testing"
)

// badPE violates the contract by emitting the wrong number of outputs.
type badPE struct{}

func (badPE) NumIn() int  { return 1 }
func (badPE) NumOut() int { return 1 }
func (badPE) Step(in []Token) ([]Token, bool) {
	return []Token{in[0], in[0]}, true // two outputs instead of one
}
func (badPE) Reset() {}

func TestLockstepReportsBadPE(t *testing.T) {
	a := chainArray([]PE{badPE{}}, seqSource(1))
	if _, err := a.RunLockstep(3, nil); err == nil {
		t.Error("lock-step runner accepted a PE with wrong output arity")
	}
}

func TestGoroutinesReportBadPE(t *testing.T) {
	a := chainArray([]PE{badPE{}}, seqSource(1))
	if _, err := a.RunGoroutines(3); err == nil {
		t.Error("goroutine runner accepted a PE with wrong output arity")
	}
}

// fanPE forwards its input on one port.
type fanPE struct{}

func (fanPE) NumIn() int                      { return 1 }
func (fanPE) NumOut() int                     { return 1 }
func (fanPE) Step(in []Token) ([]Token, bool) { return []Token{in[0]}, in[0].Valid }
func (fanPE) Reset()                          {}

func TestFanOutDeliversToAllConsumers(t *testing.T) {
	// One producer output drives two consumers and a sink.
	build := func() *Array {
		return &Array{
			PEs: []PE{fanPE{}, newAccPE(), newAccPE()},
			Wires: []Wire{
				{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: seqSource(4)},
				{From: Endpoint{0, 0}, To: Endpoint{1, 0}, Init: Bubble()},
				{From: Endpoint{0, 0}, To: Endpoint{2, 0}, Init: Bubble()},
				{From: Endpoint{0, 0}, To: Endpoint{External, 0}},
			},
		}
	}
	la := build()
	lres, err := la.RunLockstep(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if la.PEs[1].(*accPE).acc != 0 || la.PEs[2].(*accPE).acc != 0 {
		t.Errorf("fan-out consumers saw %v and %v, want 0 (min of 0..3)",
			la.PEs[1].(*accPE).acc, la.PEs[2].(*accPE).acc)
	}
	if got := validSunk(lres, 3); len(got) != 4 {
		t.Errorf("sink saw %d tokens, want 4", len(got))
	}
	ga := build()
	if _, err := ga.RunGoroutines(8); err != nil {
		t.Fatal(err)
	}
	if ga.PEs[1].(*accPE).acc != la.PEs[1].(*accPE).acc {
		t.Error("goroutine fan-out differs from lock-step")
	}
}

func TestZeroCycleRun(t *testing.T) {
	a := chainArray([]PE{&passPE{}}, seqSource(1))
	res, err := a.RunLockstep(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Utilization() != 0 {
		t.Errorf("zero-cycle run: %+v", res)
	}
	if _, err := a.RunGoroutines(0); err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsValidationError(t *testing.T) {
	a := &Array{PEs: []PE{&passPE{}}} // undriven input
	if _, err := a.RunLockstep(1, nil); err == nil {
		t.Error("lock-step ran an invalid array")
	}
	if _, err := a.RunGoroutines(1); err == nil {
		t.Error("goroutines ran an invalid array")
	}
}

func TestSinkFromExternalIgnored(t *testing.T) {
	// A wire from External to External is not recorded (no producer PE).
	a := &Array{
		PEs: []PE{&passPE{}},
		Wires: []Wire{
			{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: seqSource(2)},
			{From: Endpoint{0, 0}, To: Endpoint{External, 0}},
			{From: Endpoint{External, 0}, To: Endpoint{External, 0}, Source: seqSource(2)},
		},
	}
	res, err := a.RunLockstep(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Sunk[2]; ok {
		t.Error("external-to-external wire was recorded as a sink")
	}
	if len(res.Sunk[1]) != 4 {
		t.Errorf("real sink has %d records, want 4", len(res.Sunk[1]))
	}
}
