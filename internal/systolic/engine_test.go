package systolic

import (
	"math"
	"testing"
)

// passPE forwards its single input to its single output unchanged.
type passPE struct{ steps int }

func (p *passPE) NumIn() int  { return 1 }
func (p *passPE) NumOut() int { return 1 }
func (p *passPE) Step(in []Token) ([]Token, bool) {
	p.steps++
	return []Token{in[0]}, in[0].Valid
}
func (p *passPE) Reset() { p.steps = 0 }

// addPE adds a constant to valid tokens.
type addPE struct{ c float64 }

func (p *addPE) NumIn() int  { return 1 }
func (p *addPE) NumOut() int { return 1 }
func (p *addPE) Step(in []Token) ([]Token, bool) {
	t := in[0]
	if t.Valid {
		t.V += p.c
	}
	return []Token{t}, t.Valid
}
func (p *addPE) Reset() {}

// accPE accumulates the running min of valid inputs and forwards the input.
type accPE struct{ acc float64 }

func newAccPE() *accPE { return &accPE{acc: math.Inf(1)} }

func (p *accPE) NumIn() int  { return 1 }
func (p *accPE) NumOut() int { return 1 }
func (p *accPE) Step(in []Token) ([]Token, bool) {
	if in[0].Valid {
		p.acc = math.Min(p.acc, in[0].V)
	}
	return []Token{in[0]}, in[0].Valid
}
func (p *accPE) Reset() { p.acc = math.Inf(1) }

// chainArray builds source -> PE0 -> PE1 -> ... -> sink.
func chainArray(pes []PE, src func(int) Token) *Array {
	a := &Array{PEs: pes}
	a.Wires = append(a.Wires, Wire{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: src})
	for i := 0; i+1 < len(pes); i++ {
		a.Wires = append(a.Wires, Wire{From: Endpoint{i, 0}, To: Endpoint{i + 1, 0}, Init: Bubble()})
	}
	a.Wires = append(a.Wires, Wire{From: Endpoint{len(pes) - 1, 0}, To: Endpoint{External, 0}})
	return a
}

func seqSource(n int) func(int) Token {
	return func(t int) Token {
		if t < n {
			return Token{V: float64(t), Valid: true}
		}
		return Bubble()
	}
}

func sinkWire(a *Array) int {
	for wi, w := range a.Wires {
		if w.To.PE == External {
			return wi
		}
	}
	return -1
}

func validSunk(res *Result, wi int) []float64 {
	var out []float64
	for _, r := range res.Sunk[wi] {
		if r.Token.Valid {
			out = append(out, r.Token.V)
		}
	}
	return out
}

func TestValidateRejectsBadWiring(t *testing.T) {
	// Undriven input port.
	a := &Array{PEs: []PE{&passPE{}}}
	if err := a.Validate(); err == nil {
		t.Error("undriven input accepted")
	}
	// Source without Source func.
	a = &Array{PEs: []PE{&passPE{}}, Wires: []Wire{{From: Endpoint{External, 0}, To: Endpoint{0, 0}}}}
	if err := a.Validate(); err == nil {
		t.Error("nil Source accepted")
	}
	// Doubly driven input.
	src := seqSource(1)
	a = &Array{PEs: []PE{&passPE{}}, Wires: []Wire{
		{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: src},
		{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: src},
	}}
	if err := a.Validate(); err == nil {
		t.Error("doubly driven input accepted")
	}
	// Out-of-range ports.
	a = &Array{PEs: []PE{&passPE{}}, Wires: []Wire{
		{From: Endpoint{External, 0}, To: Endpoint{0, 0}, Source: src},
		{From: Endpoint{0, 5}, To: Endpoint{External, 0}},
	}}
	if err := a.Validate(); err == nil {
		t.Error("out-of-range From.Port accepted")
	}
	a = &Array{PEs: []PE{&passPE{}}, Wires: []Wire{
		{From: Endpoint{External, 0}, To: Endpoint{0, 3}, Source: src},
	}}
	if err := a.Validate(); err == nil {
		t.Error("out-of-range To.Port accepted")
	}
	a = &Array{PEs: []PE{&passPE{}}, Wires: []Wire{
		{From: Endpoint{External, 0}, To: Endpoint{7, 0}, Source: src},
	}}
	if err := a.Validate(); err == nil {
		t.Error("out-of-range To.PE accepted")
	}
}

func TestLockstepPipelineDelay(t *testing.T) {
	// A chain of k pass PEs delays the stream by k-1 internal registers:
	// token fed at cycle 0 reaches the sink stamped with cycle k-1.
	const k = 4
	pes := make([]PE, k)
	for i := range pes {
		pes[i] = &passPE{}
	}
	a := chainArray(pes, seqSource(3))
	res, err := a.RunLockstep(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	wi := sinkWire(a)
	recs := res.Sunk[wi]
	firstValid := -1
	for _, r := range recs {
		if r.Token.Valid {
			firstValid = r.Cycle
			break
		}
	}
	if firstValid != k-1 {
		t.Errorf("first valid token at cycle %d, want %d", firstValid, k-1)
	}
	if got := validSunk(res, wi); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("sunk = %v, want [0 1 2]", got)
	}
}

func TestAddChainComputes(t *testing.T) {
	a := chainArray([]PE{&addPE{c: 1}, &addPE{c: 10}, &addPE{c: 100}}, seqSource(5))
	res, err := a.RunLockstep(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := validSunk(res, sinkWire(a))
	for i, v := range got {
		if v != float64(i)+111 {
			t.Errorf("sunk[%d] = %v, want %v", i, v, float64(i)+111)
		}
	}
}

func TestGoroutineMatchesLockstep(t *testing.T) {
	build := func() *Array {
		return chainArray([]PE{&addPE{c: 2}, newAccPE(), &addPE{c: 5}}, seqSource(6))
	}
	la := build()
	lres, err := la.RunLockstep(15, nil)
	if err != nil {
		t.Fatal(err)
	}
	ga := build()
	gres, err := ga.RunGoroutines(15)
	if err != nil {
		t.Fatal(err)
	}
	lw, gw := sinkWire(la), sinkWire(ga)
	ls, gs := lres.Sunk[lw], gres.Sunk[gw]
	if len(ls) != len(gs) {
		t.Fatalf("sink lengths differ: %d vs %d", len(ls), len(gs))
	}
	for i := range ls {
		if ls[i] != gs[i] {
			t.Errorf("sink[%d]: lockstep %+v vs goroutine %+v", i, ls[i], gs[i])
		}
	}
	for i := range lres.Busy {
		if lres.Busy[i] != gres.Busy[i] {
			t.Errorf("busy[%d]: lockstep %d vs goroutine %d", i, lres.Busy[i], gres.Busy[i])
		}
	}
	// Stateful PEs must reach the same final state.
	lacc := la.PEs[1].(*accPE).acc
	gacc := ga.PEs[1].(*accPE).acc
	if lacc != gacc {
		t.Errorf("accumulators differ: %v vs %v", lacc, gacc)
	}
}

func TestFeedbackRing(t *testing.T) {
	// Two PEs in a ring with an injection source: tests that cycles with an
	// initial token per wire run deadlock-free in both runners.
	build := func() *Array {
		p0 := &addPE{c: 1}
		p1 := &passPE{}
		return &Array{
			PEs: []PE{p0, p1, &ringMux{}},
			Wires: []Wire{
				// mux selects: source on cycle 0, feedback after.
				{From: Endpoint{External, 0}, To: Endpoint{2, 0}, Source: func(t int) Token {
					if t == 0 {
						return Token{V: 0, Valid: true}
					}
					return Bubble()
				}},
				{From: Endpoint{1, 0}, To: Endpoint{2, 1}, Init: Bubble()}, // feedback
				{From: Endpoint{2, 0}, To: Endpoint{0, 0}, Init: Bubble()},
				{From: Endpoint{0, 0}, To: Endpoint{1, 0}, Init: Bubble()},
				{From: Endpoint{1, 0}, To: Endpoint{External, 0}},
			},
		}
	}
	la := build()
	lres, err := la.RunLockstep(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	ga := build()
	gres, err := ga.RunGoroutines(9)
	if err != nil {
		t.Fatal(err)
	}
	// The token circulates: each trip through the ring adds 1 (addPE) and
	// takes 3 cycles (three registers on the loop).
	want := []float64{1, 2, 3}
	got := validSunk(lres, 4)
	if len(got) < len(want) {
		t.Fatalf("lockstep sunk %v, want prefix %v", got, want)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("lockstep sunk[%d] = %v, want %v", i, got[i], w)
		}
	}
	ggot := validSunk(gres, 4)
	for i := range got {
		if i < len(ggot) && ggot[i] != got[i] {
			t.Errorf("goroutine sunk[%d] = %v, lockstep %v", i, ggot[i], got[i])
		}
	}
	if len(ggot) != len(got) {
		t.Errorf("goroutine sunk %d values, lockstep %d", len(ggot), len(got))
	}
}

// ringMux forwards the injected token if valid, else the feedback token.
type ringMux struct{}

func (m *ringMux) NumIn() int  { return 2 }
func (m *ringMux) NumOut() int { return 1 }
func (m *ringMux) Step(in []Token) ([]Token, bool) {
	if in[0].Valid {
		return []Token{in[0]}, true
	}
	return []Token{in[1]}, in[1].Valid
}
func (m *ringMux) Reset() {}

func TestUtilization(t *testing.T) {
	r := &Result{Cycles: 10, Busy: []int{5, 10}}
	if got := r.Utilization(); got != 0.75 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	empty := &Result{}
	if empty.Utilization() != 0 {
		t.Error("empty result utilization must be 0")
	}
}

func TestResetRestoresState(t *testing.T) {
	a := chainArray([]PE{newAccPE()}, seqSource(3))
	if _, err := a.RunLockstep(5, nil); err != nil {
		t.Fatal(err)
	}
	if a.PEs[0].(*accPE).acc != 0 {
		t.Fatalf("acc = %v, want 0", a.PEs[0].(*accPE).acc)
	}
	a.Reset()
	if !math.IsInf(a.PEs[0].(*accPE).acc, 1) {
		t.Error("Reset did not restore accumulator")
	}
}

func TestTraceCallback(t *testing.T) {
	a := chainArray([]PE{&passPE{}}, seqSource(2))
	calls := 0
	_, err := a.RunLockstep(4, func(cycle int, wires []Token) {
		calls++
		if len(wires) != len(a.Wires) {
			t.Errorf("trace got %d wires, want %d", len(wires), len(a.Wires))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Errorf("trace called %d times, want 4", calls)
	}
}

func TestBubble(t *testing.T) {
	b := Bubble()
	if b.Valid || !math.IsInf(b.V, 1) {
		t.Errorf("Bubble = %+v", b)
	}
}
