// Package systolic is the simulation substrate for the paper's systolic
// arrays. An Array is a set of processing elements (PEs) joined by wires;
// every internal wire is a one-cycle pipeline register, exactly the
// inter-PE latching discipline of the paper's designs (Figures 3-5).
//
// Two runners execute an array:
//
//   - RunLockstep: a deterministic two-phase global clock (compute, then
//     latch) used for exact cycle accounting against the paper's closed
//     forms, and
//   - RunGoroutines: one goroutine per PE with each wire a 1-deep buffered
//     channel; the single circulating token per wire makes the network a
//     marked graph, so channel dataflow enforces systolic lock-step with no
//     global clock. This is the "goroutines model PEs" substitution for the
//     paper's VLSI hardware.
//
// The lock-step compute phase is embarrassingly parallel: within one cycle
// every PE reads only the previous cycle's registers and writes only its
// own state and output wires, so the Parallelism knob shards the per-cycle
// Step loop across a persistent worker pool while the latch phase stays on
// the coordinating goroutine. Results, busy counts and sink streams are
// bit-identical to the sequential schedule.
//
// Both runners share PE step functions and are tested to produce identical
// results, busy counts and sink streams.
package systolic

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// External marks an endpoint outside the array (a source or sink).
const External = -1

// Token is the value latched on a wire for one cycle. V is the primary
// datum; W a secondary datum (Design 3 carries a node value and its partial
// cost h side by side); Tag an integer tag (node indices for path
// registers); Ctl a control word (FIRST/ODD/MOVE-style signals ride along
// with data, as in the paper's designs). Valid distinguishes real data from
// pipeline bubbles.
type Token struct {
	V, W  float64
	Tag   int
	Ctl   int
	Valid bool
}

// Bubble is an invalid token: what an idle wire carries.
func Bubble() Token { return Token{V: math.Inf(1), Valid: false} }

// PE is one processing element. Step consumes exactly one token per input
// port and produces exactly one token per output port each cycle, and
// reports whether the cycle performed useful work (for processor-
// utilization accounting, the paper's PU metric). Reset returns the PE to
// its initial state so an array can be rerun.
type PE interface {
	NumIn() int
	NumOut() int
	Step(in []Token) (out []Token, busy bool)
	Reset()
}

// Endpoint names one port of one PE; PE == External denotes the host.
type Endpoint struct {
	PE, Port int
}

// Wire connects an output endpoint to an input endpoint.
//
// A wire whose From.PE is External is a source: its Source function is
// sampled combinationally each cycle (the host feeds the array with no
// extra latency, standing in for the input pads of the VLSI chip).
//
// A wire whose To.PE is External is a sink: tokens produced on it are
// recorded in the run result.
//
// An internal wire (PE to PE) is a pipeline register with one cycle of
// latency, initialised to Init.
type Wire struct {
	From   Endpoint
	To     Endpoint
	Source func(cycle int) Token
	Init   Token
}

// DefaultParallelThreshold is the PE count below which a parallel
// Parallelism setting still runs the lock-step compute phase sequentially.
// The per-cycle pool barrier costs on the order of a microsecond; with the
// designs' Step functions at tens of nanoseconds each, arrays need a few
// hundred PEs before sharding pays for the synchronization (see
// BenchmarkLockstepParallelAblation).
const DefaultParallelThreshold = 256

// Array is a systolic array: PEs plus wires.
type Array struct {
	PEs   []PE
	Wires []Wire

	// Parallelism is the number of worker goroutines for the lock-step
	// compute phase: <= 1 steps PEs sequentially on the calling goroutine,
	// > 1 shards them across min(Parallelism, len(PEs)) persistent
	// workers, and a negative value selects runtime.GOMAXPROCS(0). The
	// goroutine runner ignores it (that runner is already one goroutine
	// per PE).
	Parallelism int

	// ParallelThreshold is the minimum PE count at which Parallelism > 1
	// actually engages the worker pool; below it runs stay sequential so
	// small arrays do not pay the per-cycle barrier. Zero selects
	// DefaultParallelThreshold; set 1 to force sharding regardless of
	// size (tests, explicit simulator flags).
	ParallelThreshold int
}

// LockstepWorkers resolves Parallelism against the array size and
// threshold: the number of compute-phase workers the next lock-step run
// will use (1 means the sequential path).
func (a *Array) LockstepWorkers() int {
	p := a.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	thr := a.ParallelThreshold
	if thr <= 0 {
		thr = DefaultParallelThreshold
	}
	if p <= 1 || len(a.PEs) < thr {
		return 1
	}
	if p > len(a.PEs) {
		p = len(a.PEs)
	}
	return p
}

// SinkRecord is one token observed on a sink wire, stamped with the cycle
// in which the producing PE emitted it.
type SinkRecord struct {
	Cycle int
	Token Token
}

// Result reports a run: total cycles executed, per-PE busy-cycle counts,
// and the streams observed on each sink wire (keyed by wire index).
type Result struct {
	Cycles int
	Busy   []int
	Sunk   map[int][]SinkRecord
}

// Utilization returns the fraction of PE-cycles that were busy; with the
// paper's definition of an iteration as one shift-multiply-accumulate this
// is the measured counterpart of the PU formulas.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 || len(r.Busy) == 0 {
		return 0
	}
	total := 0
	for _, b := range r.Busy {
		total += b
	}
	return float64(total) / float64(r.Cycles*len(r.Busy))
}

// Validate checks the wiring: every PE input port is driven by exactly one
// wire, port indices are in range, sources have Source functions, and
// internal wires reference existing PEs.
func (a *Array) Validate() error {
	seen := make(map[Endpoint]bool)
	for wi, w := range a.Wires {
		if w.From.PE == External {
			if w.Source == nil {
				return fmt.Errorf("systolic: wire %d is a source but has nil Source", wi)
			}
		} else {
			if w.From.PE < 0 || w.From.PE >= len(a.PEs) {
				return fmt.Errorf("systolic: wire %d From.PE %d out of range", wi, w.From.PE)
			}
			if w.From.Port < 0 || w.From.Port >= a.PEs[w.From.PE].NumOut() {
				return fmt.Errorf("systolic: wire %d From.Port %d out of range for PE %d", wi, w.From.Port, w.From.PE)
			}
		}
		if w.To.PE != External {
			if w.To.PE < 0 || w.To.PE >= len(a.PEs) {
				return fmt.Errorf("systolic: wire %d To.PE %d out of range", wi, w.To.PE)
			}
			if w.To.Port < 0 || w.To.Port >= a.PEs[w.To.PE].NumIn() {
				return fmt.Errorf("systolic: wire %d To.Port %d out of range for PE %d", wi, w.To.Port, w.To.PE)
			}
			if seen[w.To] {
				return fmt.Errorf("systolic: input port %+v driven by multiple wires", w.To)
			}
			seen[w.To] = true
		}
	}
	for pi, pe := range a.PEs {
		for port := 0; port < pe.NumIn(); port++ {
			if !seen[Endpoint{pi, port}] {
				return fmt.Errorf("systolic: PE %d input port %d undriven", pi, port)
			}
		}
	}
	return nil
}

// Reset restores every PE to its initial state. Runners that Reset
// before executing make their Array re-runnable: repeated runs of the
// same array are bit-identical, an invariant internal/check enforces
// across all three designs.
func (a *Array) Reset() {
	for _, pe := range a.PEs {
		pe.Reset()
	}
}

// inputWires[pe][port] -> wire index; outputWires[pe] -> wire indices.
func (a *Array) wiring() (in [][]int, out [][]int) {
	in = make([][]int, len(a.PEs))
	out = make([][]int, len(a.PEs))
	for pi, pe := range a.PEs {
		in[pi] = make([]int, pe.NumIn())
		for i := range in[pi] {
			in[pi][i] = -1
		}
	}
	for wi, w := range a.Wires {
		if w.To.PE != External {
			in[w.To.PE][w.To.Port] = wi
		}
		if w.From.PE != External {
			out[w.From.PE] = append(out[w.From.PE], wi)
		}
	}
	return in, out
}

// PETrace observes one PE-cycle: the PE index, the logical cycle, and
// whether that cycle performed useful work (the Step busy bit). It is the
// per-PE counterpart of the lock-step wire trace, usable by both runners:
// the lock-step runner invokes it in cycle order from one goroutine; the
// goroutine runner invokes it concurrently, one call stream per PE, each
// stream in its own cycle order (the marked-graph construction guarantees
// PE i's local iteration t corresponds exactly to lock-step cycle t).
// Implementations must therefore be safe for concurrent calls with
// distinct pe values; internal/obs.CycleRecorder is one such sink.
type PETrace func(pe, cycle int, busy bool)

// RunLockstep executes the array for the given number of cycles under a
// global two-phase clock: all PEs step on the current register values, then
// all wires latch the new outputs. Trace, if non-nil, is invoked after each
// cycle with the cycle index and freshly latched wire values (for the
// systolicsim debugger).
func (a *Array) RunLockstep(cycles int, trace func(cycle int, wires []Token)) (*Result, error) {
	return a.RunLockstepObserved(cycles, trace, nil)
}

// RunLockstepObserved is RunLockstep with an additional per-PE trace hook
// invoked once per PE per cycle with the busy bit, before the cycle's wire
// snapshot is delivered to trace. With Parallelism > 1 the per-cycle Step
// loop is sharded across a worker pool, so peTrace calls within one cycle
// are concurrent across distinct PEs — the same contract the goroutine
// runner already imposes (see PETrace); cycles still arrive in order.
func (a *Array) RunLockstepObserved(cycles int, trace func(cycle int, wires []Token), peTrace PETrace) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if workers := a.LockstepWorkers(); workers > 1 {
		return a.runLockstepParallel(cycles, workers, trace, peTrace)
	}
	inW, outW := a.wiring()
	regs := make([]Token, len(a.Wires))
	for wi, w := range a.Wires {
		regs[wi] = w.Init
	}
	res := &Result{
		Cycles: cycles,
		Busy:   make([]int, len(a.PEs)),
		Sunk:   make(map[int][]SinkRecord),
	}
	next := make([]Token, len(a.Wires))
	ins := make([][]Token, len(a.PEs))
	for pi, pe := range a.PEs {
		ins[pi] = make([]Token, pe.NumIn())
	}
	for t := 0; t < cycles; t++ {
		// Phase 1: sample sources and registers, step every PE.
		copy(next, regs)
		for wi, w := range a.Wires {
			if w.From.PE == External {
				next[wi] = w.Source(t)
				regs[wi] = next[wi] // sources are combinational
			}
		}
		for pi, pe := range a.PEs {
			for port, wi := range inW[pi] {
				ins[pi][port] = regs[wi]
			}
			out, busy := pe.Step(ins[pi])
			if len(out) != pe.NumOut() {
				return nil, fmt.Errorf("systolic: PE %d produced %d outputs, want %d", pi, len(out), pe.NumOut())
			}
			if busy {
				res.Busy[pi]++
			}
			if peTrace != nil {
				peTrace(pi, t, busy)
			}
			for _, wi := range outW[pi] {
				next[wi] = out[a.Wires[wi].From.Port]
			}
		}
		// Phase 2: latch and record sinks.
		for wi, w := range a.Wires {
			if w.To.PE == External && w.From.PE != External {
				res.Sunk[wi] = append(res.Sunk[wi], SinkRecord{Cycle: t, Token: next[wi]})
			}
		}
		copy(regs, next)
		if trace != nil {
			snapshot := make([]Token, len(regs))
			copy(snapshot, regs)
			trace(t, snapshot)
		}
	}
	return res, nil
}

// runLockstepParallel is the sharded compute phase: PEs are divided into
// contiguous shards once, each owned by one persistent worker goroutine;
// every cycle the coordinator samples the sources, broadcasts the cycle
// index, waits for all shards to step, then latches and records sinks
// itself. The phase is race-free without locks because during compute the
// registers are read-only and each shard writes only its own PEs' state:
// their input buffers, their Busy counters, and their output wires (every
// wire has exactly one driver). Execution is bit-identical to the
// sequential schedule — per-PE arithmetic order is unchanged and the
// latch phase is untouched.
func (a *Array) runLockstepParallel(cycles, workers int, trace func(cycle int, wires []Token), peTrace PETrace) (*Result, error) {
	inW, outW := a.wiring()
	regs := make([]Token, len(a.Wires))
	for wi, w := range a.Wires {
		regs[wi] = w.Init
	}
	res := &Result{
		Cycles: cycles,
		Busy:   make([]int, len(a.PEs)),
		Sunk:   make(map[int][]SinkRecord),
	}
	next := make([]Token, len(a.Wires))
	ins := make([][]Token, len(a.PEs))
	for pi, pe := range a.PEs {
		ins[pi] = make([]Token, pe.NumIn())
	}

	step := func(lo, hi, t int) error {
		for pi := lo; pi < hi; pi++ {
			pe := a.PEs[pi]
			in := ins[pi]
			for port, wi := range inW[pi] {
				in[port] = regs[wi]
			}
			out, busy := pe.Step(in)
			if len(out) != pe.NumOut() {
				return fmt.Errorf("systolic: PE %d produced %d outputs, want %d", pi, len(out), pe.NumOut())
			}
			if busy {
				res.Busy[pi]++
			}
			if peTrace != nil {
				peTrace(pi, t, busy)
			}
			for _, wi := range outW[pi] {
				next[wi] = out[a.Wires[wi].From.Port]
			}
		}
		return nil
	}

	// Shard bounds: contiguous, remainder spread over the leading shards.
	bounds := make([]int, workers+1)
	per, extra := len(a.PEs)/workers, len(a.PEs)%workers
	for w := 0; w < workers; w++ {
		bounds[w+1] = bounds[w] + per
		if w < extra {
			bounds[w+1]++
		}
	}
	start := make([]chan int, workers)
	done := make(chan struct{}, workers)
	werrs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start[w] = make(chan int, 1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := range start[w] {
				werrs[w] = step(bounds[w], bounds[w+1], t)
				done <- struct{}{}
			}
		}(w)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
		wg.Wait()
	}()

	for t := 0; t < cycles; t++ {
		// Phase 1: sample sources on the coordinator (Source functions are
		// host code with no thread-safety contract), then step all shards.
		copy(next, regs)
		for wi, w := range a.Wires {
			if w.From.PE == External {
				next[wi] = w.Source(t)
				regs[wi] = next[wi] // sources are combinational
			}
		}
		for _, ch := range start {
			ch <- t
		}
		for range start {
			<-done
		}
		// A shard stops at its first contract violation, so scanning in
		// shard order yields the lowest-numbered failing PE — the same
		// error the sequential schedule reports.
		for _, err := range werrs {
			if err != nil {
				return nil, err
			}
		}
		// Phase 2: latch and record sinks.
		for wi, w := range a.Wires {
			if w.To.PE == External && w.From.PE != External {
				res.Sunk[wi] = append(res.Sunk[wi], SinkRecord{Cycle: t, Token: next[wi]})
			}
		}
		copy(regs, next)
		if trace != nil {
			snapshot := make([]Token, len(regs))
			copy(snapshot, regs)
			trace(t, snapshot)
		}
	}
	return res, nil
}

// RunGoroutines executes the array with one goroutine per PE; wires are
// 1-deep buffered channels, internal wires pre-loaded with their Init
// token. The construction is a marked graph with one token per place, so
// execution is deterministic and deadlock-free, and each PE's local cycle
// ordering matches the lock-step schedule exactly.
func (a *Array) RunGoroutines(cycles int) (*Result, error) {
	return a.RunGoroutinesObserved(cycles, nil)
}

// RunGoroutinesObserved is RunGoroutines with a per-PE trace hook: each
// PE's goroutine invokes peTrace(pe, t, busy) after its t-th Step. Calls
// for different PEs are concurrent; see PETrace for the contract.
func (a *Array) RunGoroutinesObserved(cycles int, peTrace PETrace) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	inW, outW := a.wiring()
	chans := make([]chan Token, len(a.Wires))
	for wi := range a.Wires {
		chans[wi] = make(chan Token, 1)
	}
	for wi, w := range a.Wires {
		if w.From.PE != External && w.To.PE != External {
			chans[wi] <- w.Init
		}
	}
	res := &Result{
		Cycles: cycles,
		Busy:   make([]int, len(a.PEs)),
		Sunk:   make(map[int][]SinkRecord),
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(a.PEs))
	// quit aborts every goroutine when a PE violates its contract; without
	// it the feeders and peers would block forever on the dead PE's wires.
	quit := make(chan struct{})
	var quitOnce sync.Once
	abort := func(err error) {
		errs <- err
		quitOnce.Do(func() { close(quit) })
	}

	// Source feeders.
	for wi, w := range a.Wires {
		if w.From.PE != External {
			continue
		}
		wg.Add(1)
		go func(wi int, src func(int) Token) {
			defer wg.Done()
			for t := 0; t < cycles; t++ {
				select {
				case chans[wi] <- src(t):
				case <-quit:
					return
				}
			}
		}(wi, w.Source)
	}

	// Sink collectors. Each sink wire receives exactly one token per cycle.
	sinkMu := sync.Mutex{}
	for wi, w := range a.Wires {
		if w.To.PE != External || w.From.PE == External {
			continue
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			recs := make([]SinkRecord, 0, cycles)
			for t := 0; t < cycles; t++ {
				select {
				case tok := <-chans[wi]:
					recs = append(recs, SinkRecord{Cycle: t, Token: tok})
				case <-quit:
					return
				}
			}
			sinkMu.Lock()
			res.Sunk[wi] = recs
			sinkMu.Unlock()
		}(wi)
	}

	// PEs.
	for pi := range a.PEs {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pe := a.PEs[pi]
			in := make([]Token, pe.NumIn())
			busy := 0
			for t := 0; t < cycles; t++ {
				for port, wi := range inW[pi] {
					select {
					case in[port] = <-chans[wi]:
					case <-quit:
						return
					}
				}
				out, b := pe.Step(in)
				if len(out) != pe.NumOut() {
					abort(fmt.Errorf("systolic: PE %d produced %d outputs, want %d", pi, len(out), pe.NumOut()))
					return
				}
				if b {
					busy++
				}
				if peTrace != nil {
					peTrace(pi, t, b)
				}
				for _, wi := range outW[pi] {
					tok := out[a.Wires[wi].From.Port]
					if t == cycles-1 && a.Wires[wi].To.PE != External {
						// The consumer will not read a token for cycle
						// t+1; dropping the final latch keeps the marked
						// graph balanced at shutdown.
						continue
					}
					select {
					case chans[wi] <- tok:
					case <-quit:
						return
					}
				}
			}
			res.Busy[pi] = busy
		}(pi)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
