package systolic

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// buildChain returns a fresh add-chain array of n PEs over the same input
// stream, so sequential and parallel runs start from identical state.
func buildChain(n int) *Array {
	pes := make([]PE, n)
	for i := range pes {
		pes[i] = &addPE{c: float64(i + 1)}
	}
	return chainArray(pes, seqSource(n+3))
}

// The parallel compute phase must be bit-identical to the sequential
// schedule: same Result (cycles, busy counts, sink streams) and the same
// per-PE trace observations, across odd and even PE counts and worker
// counts ∈ {1, 2, NumCPU, > PEs}.
func TestLockstepParallelBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		cycles := 2*n + 5
		seq := buildChain(n)
		seqBusy := make(map[int]int)
		var mu sync.Mutex
		wantRes, err := seq.RunLockstepObserved(cycles, nil, func(pe, cycle int, busy bool) {
			if busy {
				mu.Lock()
				seqBusy[pe]++
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, runtime.NumCPU(), n + 5} {
			if workers < 1 {
				workers = 1
			}
			par := buildChain(n)
			par.Parallelism = workers
			par.ParallelThreshold = 1
			parBusy := make(map[int]int)
			gotRes, err := par.RunLockstepObserved(cycles, nil, func(pe, cycle int, busy bool) {
				if busy {
					mu.Lock()
					parBusy[pe]++
					mu.Unlock()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantRes, gotRes) {
				t.Errorf("n=%d workers=%d: parallel Result differs: %+v vs %+v", n, workers, gotRes, wantRes)
			}
			if !reflect.DeepEqual(seqBusy, parBusy) {
				t.Errorf("n=%d workers=%d: PETrace busy observations differ: %v vs %v", n, workers, parBusy, seqBusy)
			}
		}
	}
}

// The wire-trace callback still fires in cycle order from the coordinator
// under the parallel compute phase, with the same latched snapshots.
func TestLockstepParallelWireTrace(t *testing.T) {
	const n, cycles = 5, 12
	record := func(a *Array) [][]Token {
		var snaps [][]Token
		if _, err := a.RunLockstepObserved(cycles, func(cycle int, wires []Token) {
			if cycle != len(snaps) {
				t.Fatalf("wire trace out of order: cycle %d at position %d", cycle, len(snaps))
			}
			snaps = append(snaps, wires)
		}, nil); err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	want := record(buildChain(n))
	par := buildChain(n)
	par.Parallelism = 3
	par.ParallelThreshold = 1
	if got := record(par); !reflect.DeepEqual(want, got) {
		t.Error("parallel run latched different wire snapshots")
	}
}

// LockstepWorkers gates on the threshold and clamps to the PE count.
func TestLockstepWorkersGating(t *testing.T) {
	cases := []struct {
		pes, parallelism, threshold, want int
	}{
		{8, 0, 0, 1},                        // default: sequential
		{8, 1, 0, 1},                        // explicit sequential
		{8, 4, 0, 1},                        // below default threshold
		{8, 4, 8, 4},                        // at threshold
		{8, 4, 9, 1},                        // just below threshold
		{8, 16, 1, 8},                       // clamped to PE count
		{DefaultParallelThreshold, 2, 0, 2}, // default threshold engages
		{DefaultParallelThreshold - 1, 2, 0, 1},
	}
	for _, c := range cases {
		a := &Array{PEs: make([]PE, c.pes), Parallelism: c.parallelism, ParallelThreshold: c.threshold}
		if got := a.LockstepWorkers(); got != c.want {
			t.Errorf("pes=%d parallelism=%d threshold=%d: workers = %d, want %d",
				c.pes, c.parallelism, c.threshold, got, c.want)
		}
	}
	a := &Array{PEs: make([]PE, 4), Parallelism: -1, ParallelThreshold: 1}
	want := runtime.GOMAXPROCS(0)
	if want > 4 {
		want = 4
	}
	if want <= 1 {
		want = 1
	}
	if got := a.LockstepWorkers(); got != want {
		t.Errorf("negative parallelism: workers = %d, want %d (GOMAXPROCS clamped)", got, want)
	}
}

// faultyPE violates the Step contract when bad is set.
type faultyPE struct{ bad bool }

func (p *faultyPE) NumIn() int  { return 1 }
func (p *faultyPE) NumOut() int { return 1 }
func (p *faultyPE) Step(in []Token) ([]Token, bool) {
	if p.bad {
		return nil, false
	}
	return []Token{in[0]}, in[0].Valid
}
func (p *faultyPE) Reset() {}

// A contract violation under the parallel phase reports the same
// lowest-numbered failing PE as the sequential schedule, and the worker
// pool shuts down cleanly.
func TestLockstepParallelErrorDeterministic(t *testing.T) {
	build := func() *Array {
		pes := make([]PE, 9)
		for i := range pes {
			pes[i] = &faultyPE{bad: i == 4 || i == 7}
		}
		return chainArray(pes, seqSource(4))
	}
	_, wantErr := build().RunLockstep(6, nil)
	if wantErr == nil {
		t.Fatal("sequential run accepted a contract violation")
	}
	par := build()
	par.Parallelism = 3
	par.ParallelThreshold = 1
	_, gotErr := par.RunLockstep(6, nil)
	if gotErr == nil {
		t.Fatal("parallel run accepted a contract violation")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Errorf("parallel error %q, want sequential's %q", gotErr, wantErr)
	}
}

// The goroutine runner is unaffected by the knob.
func TestGoroutineRunnerIgnoresParallelism(t *testing.T) {
	a := buildChain(4)
	a.Parallelism = 8
	a.ParallelThreshold = 1
	res, err := a.RunGoroutines(13)
	if err != nil {
		t.Fatal(err)
	}
	b := buildChain(4)
	want, err := b.RunGoroutines(13)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Busy, want.Busy) {
		t.Errorf("busy %v, want %v", res.Busy, want.Busy)
	}
}
