package core

import (
	"context"
	"fmt"
	"strings"

	"systolicdp/internal/dtw"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	papermetrics "systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// DTWProblem is the pattern-recognition DP of the paper's Section 1
// citations: dynamic time warping of a query series X against a template
// Y, solved on the anti-diagonal linear systolic array.
type DTWProblem struct {
	X, Y []float64
}

// Classify reports monadic-serial: the DTW lattice is a monadic
// recurrence swept serially along anti-diagonals.
func (p *DTWProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *DTWProblem) Describe() string {
	return fmt.Sprintf("dynamic time warping (|x|=%d, |y|=%d), anti-diagonal array", len(p.X), len(p.Y))
}

func solveDTW(p *DTWProblem) (*Solution, error) {
	// The cache-tiled monomorphized kernel (bitwise identical to the
	// cycle-stepped array and to dtw.Sequential) is the serving hot path;
	// the PE-level array stays available via dtw.New for cycle telemetry.
	d, err := dtw.SolveFast(p.X, p.Y, nil)
	if err != nil {
		return nil, err
	}
	return &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method, Cost: d}, nil
}

// SolveCtx is Solve bounded by a context: it returns early with ctx.Err()
// if the context is cancelled or its deadline passes before the solve
// completes. The underlying computation is not interruptible, so on early
// return it continues in a background goroutine and its result is
// discarded; callers that solve untrusted sizes should bound them before
// submission.
func SolveCtx(ctx context.Context, p Problem) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		sol *Solution
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		// This goroutine is detached once the caller's context fires; a
		// panicking Problem implementation must not crash the process
		// (dpserve runs every solve through here).
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("core: solve panicked: %v", r)}
			}
		}()
		sol, err := Solve(p)
		ch <- outcome{sol, err}
	}()
	select {
	case o := <-ch:
		return o.sol, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StreamProblemFromGraph converts a validated single-sink multistage
// graph into one instance of a Design-1 stream batch: the cost-matrix
// string (all but the last transition) and the initial vector (the final
// single-column transition). This is the per-instance form
// pipearray.NewStream consumes.
func StreamProblemFromGraph(g *multistage.Graph) (pipearray.StreamProblem, error) {
	var sp pipearray.StreamProblem
	if err := g.Validate(); err != nil {
		return sp, err
	}
	mats := g.Matrices()
	k := len(mats)
	if k < 2 {
		return sp, fmt.Errorf("core: streamed Design 1 needs at least 2 cost matrices")
	}
	if mats[k-1].Cols != 1 {
		return sp, fmt.Errorf("core: streamed Design 1 needs a single-sink graph (last stage of 1 node); wrap with SingleSourceSink")
	}
	sp.Ms = mats[:k-1]
	sp.V = mats[k-1].Col(0)
	return sp, nil
}

// SolveGraphDirect solves one single-sink multistage graph on the
// monomorphized min-plus chain product (matrix.ChainVecG) — the library
// and benchmark fast path, bitwise identical to the ChainVec baseline
// and therefore to the Design-1 engines the checker pins against it. The
// serving path intentionally keeps the streamed engine
// (SolveGraphBatchParallel): its cycle counts and measured PU feed the
// observability plane, which the direct product cannot produce.
func SolveGraphDirect(g *multistage.Graph) (*Solution, error) {
	sp, err := StreamProblemFromGraph(g)
	if err != nil {
		return nil, err
	}
	mp := semiring.MinPlus{}
	out := matrix.ChainVecG(mp, sp.Ms, sp.V)
	class := Class{Monadic, Serial}
	return &Solution{
		Class:  class,
		Method: Recommend(class).Method,
		Cost:   semiring.FoldOps(mp, out),
	}, nil
}

// SolveGraphBatch solves a batch of identically-shaped single-sink
// multistage graphs in ONE streamed Design-1 run: all instances share a
// single pipeline fill (B*K'*m + m - 1 cycles versus B*(K'*m + m - 1) for
// separate runs). Returns one Solution per graph, in order. All graphs
// must share stage count and stage sizes; pipearray.NewStream enforces
// this.
func SolveGraphBatch(gs []*multistage.Graph) ([]*Solution, error) {
	sols, _, err := SolveGraphBatchParallel(gs, 0, 0)
	return sols, err
}

// BatchStats reports the engine-side measurements of one batch run: the
// model wall-cycle count, the compute-phase worker count the lock-step
// engine used after threshold gating (1 for the software wavefront
// kernels), the measured processor utilization (the paper's PU, observed
// through the serving path), and — where the paper has a closed form for
// the shape — the predicted PU to chart next to the measurement.
type BatchStats struct {
	Cycles      int
	Workers     int
	Utilization float64
	PUExpected  float64 // 0 when the kind has no closed-form prediction
}

// SolveGraphBatchParallel is SolveGraphBatch with the lock-step engine's
// parallel compute phase configured: parallelism is the worker-count knob
// (<=1 sequential, negative = GOMAXPROCS) and threshold the minimum PE
// count at which it engages (0 = engine default). It additionally returns
// the run's BatchStats.
func SolveGraphBatchParallel(gs []*multistage.Graph, parallelism, threshold int) ([]*Solution, *BatchStats, error) {
	if len(gs) == 0 {
		return nil, nil, fmt.Errorf("core: empty graph batch")
	}
	problems := make([]pipearray.StreamProblem, len(gs))
	for i, g := range gs {
		sp, err := StreamProblemFromGraph(g)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch graph %d: %v", i, err)
		}
		problems[i] = sp
	}
	st, err := pipearray.NewStream(problems)
	if err != nil {
		return nil, nil, err
	}
	st.SetParallelism(parallelism)
	st.SetParallelThreshold(threshold)
	outs, res, err := st.RunObserved(false)
	if err != nil {
		return nil, nil, err
	}
	stats := &BatchStats{
		Cycles:      res.Cycles,
		Workers:     st.LockstepWorkers(),
		Utilization: res.Utilization(),
		// Eq. (9) closed-form PU for this stream's shape: n = K'+1 stages of
		// m-vectors.
		PUExpected: papermetrics.PUEq9(len(problems[0].Ms)+1, len(problems[0].V)),
	}
	mp := semiring.MinPlus{}
	class := Class{Monadic, Serial}
	sols := make([]*Solution, len(outs))
	for i, out := range outs {
		sols[i] = &Solution{
			Class:  class,
			Method: Recommend(class).Method,
			Cost:   semiring.Fold(mp, out),
		}
	}
	return sols, stats, nil
}

// BatchKernel is one problem kind's batched solver: the serving tier's
// shape-bucketed scheduler groups concurrent problems by (Kind, Shape)
// and hands each bucket to its kernel in one shared run. Implementations
// must be bitwise identical per instance to the kind's sequential engine
// (the differential checker enforces this), and must not let one
// instance's values affect another's.
type BatchKernel interface {
	// Kind names the kernel's execution path. It doubles as the admission
	// cost-model calibration key for batched work, so it must differ from
	// the kind EstimateCost assigns the general-pool path whenever the two
	// paths have different service rates.
	Kind() string
	// Shape returns the batch-compatibility bucket for p: problems this
	// kernel accepts with equal shape strings may share one run. ok=false
	// means p is not batchable by this kernel.
	Shape(p Problem) (shape string, ok bool)
	// Solve runs the whole batch in one shared sweep, returning one
	// Solution per problem in order. parallelism/threshold are the
	// lock-step engine knobs; kernels without an engine ignore them.
	Solve(ps []Problem, parallelism, threshold int) ([]*Solution, *BatchStats, error)
}

// BatchKernels returns the kernel set in serving priority order. The
// first kernel whose Shape accepts a problem owns it; kinds without a
// kernel (nodevalued, matrixstring) stay on the general pool.
func BatchKernels() []BatchKernel {
	return []BatchKernel{
		GraphStreamKernel{},
		DTWKernel{},
		AlignKernel{},
		ChainKernel{},
		NonserialKernel{},
	}
}

// GraphStreamKernel batches Design-1 multistage graphs through the
// streamed pipelined array (SolveGraphBatchParallel): B same-shape
// instances share one pipeline fill, B·K'·m + m − 1 cycles total.
type GraphStreamKernel struct{}

// Kind names the Design-1 stream path.
func (GraphStreamKernel) Kind() string { return "graph-stream" }

// Shape returns the FULL per-matrix dimension profile of the stream
// decomposition — every cost matrix's rows×cols plus the vector length —
// not just (m, k, rows[0]): two specs can agree on vector length, matrix
// count and first-stage rows yet still disagree on later-stage
// dimensions, and co-batching those would feed pipearray.NewStream a
// mixed-shape batch that fails as a whole.
func (GraphStreamKernel) Shape(p Problem) (string, bool) {
	mp, ok := p.(*MultistageProblem)
	if !ok || mp.Design != 1 {
		return "", false
	}
	sp, err := StreamProblemFromGraph(mp.Graph)
	if err != nil {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", len(sp.V))
	for _, m := range sp.Ms {
		fmt.Fprintf(&b, ";%dx%d", m.Rows, m.Cols)
	}
	return b.String(), true
}

// Solve streams the batch through the pipelined array.
func (GraphStreamKernel) Solve(ps []Problem, parallelism, threshold int) ([]*Solution, *BatchStats, error) {
	gs := make([]*multistage.Graph, len(ps))
	for i, p := range ps {
		mp, ok := p.(*MultistageProblem)
		if !ok {
			return nil, nil, fmt.Errorf("core: graph-stream kernel got %T", p)
		}
		gs[i] = mp.Graph
	}
	return SolveGraphBatchParallel(gs, parallelism, threshold)
}

// DTWKernel batches same-shape DTW instances with one anti-diagonal
// wavefront over the stacked lattices (dtw.SweepBatchFast).
type DTWKernel struct{}

// Kind names the batched DTW path.
func (DTWKernel) Kind() string { return "dtw-batch" }

// Shape buckets by (|x|, |y|) — the full lattice shape.
func (DTWKernel) Shape(p Problem) (string, bool) {
	q, ok := p.(*DTWProblem)
	if !ok || len(q.X) == 0 || len(q.Y) == 0 {
		return "", false
	}
	return fmt.Sprintf("x%d;y%d", len(q.X), len(q.Y)), true
}

// Solve sweeps the stacked lattices.
func (DTWKernel) Solve(ps []Problem, _, _ int) ([]*Solution, *BatchStats, error) {
	pairs := make([]dtw.Pair, len(ps))
	for i, p := range ps {
		q, ok := p.(*DTWProblem)
		if !ok {
			return nil, nil, fmt.Errorf("core: dtw kernel got %T", p)
		}
		pairs[i] = dtw.Pair{X: q.X, Y: q.Y}
	}
	// SweepBatchFast is the monomorphized zero-allocation sweep; a nil
	// metric selects the inlinable AbsDist op, bitwise identical to
	// SweepBatch(pairs, dtw.AbsDist).
	dists, cycles, err := dtw.SweepBatchFast(pairs, nil)
	if err != nil {
		return nil, nil, err
	}
	n, m := len(pairs[0].X), len(pairs[0].Y)
	stats := &BatchStats{
		Cycles:  cycles,
		Workers: 1,
		// Stream-model PU of m PEs over B·n+m−1 cycles doing B·n useful
		// updates each: fill amortization pushes this toward 1 as B grows.
		Utilization: float64(len(ps)*n) / float64(cycles),
	}
	class := Class{Monadic, Serial}
	sols := make([]*Solution, len(ps))
	for i, d := range dists {
		sols[i] = &Solution{Class: class, Method: Recommend(class).Method, Cost: d}
	}
	_ = m
	return sols, stats, nil
}

// ChainKernel batches same-length matrix-chain ordering instances with
// one shared diagonal wavefront (matchain.WavefrontBatchFast).
type ChainKernel struct{}

// Kind names the batched chain path.
func (ChainKernel) Kind() string { return "chain-batch" }

// Shape buckets by chain length.
func (ChainKernel) Shape(p Problem) (string, bool) {
	q, ok := p.(*ChainOrderingProblem)
	if !ok || len(q.Dims) < 2 {
		return "", false
	}
	return fmt.Sprintf("n%d", len(q.Dims)-1), true
}

// Solve fills the stacked tables wave by wave.
func (ChainKernel) Solve(ps []Problem, _, _ int) ([]*Solution, *BatchStats, error) {
	dimsList := make([][]int, len(ps))
	for i, p := range ps {
		q, ok := p.(*ChainOrderingProblem)
		if !ok {
			return nil, nil, fmt.Errorf("core: chain kernel got %T", p)
		}
		dimsList[i] = q.Dims
	}
	// WavefrontBatchFast runs the flat zero-allocation kernel on a pooled
	// table, bitwise identical per instance to WavefrontBatch/DP.
	costs, parens, cycles, err := matchain.WavefrontBatchFast(dimsList)
	if err != nil {
		return nil, nil, err
	}
	n := len(dimsList[0]) - 1
	stats := &BatchStats{
		Cycles:  cycles,
		Workers: 1,
		// Proposition-3 stream model: B·(n−1) useful waves out of
		// B·(n−1)+(n−1) ripple cycles, → B/(B+1).
		Utilization: float64(len(ps)) / float64(len(ps)+1),
	}
	if n < 2 {
		stats.Utilization = 1
	}
	class := Class{Polyadic, Nonserial}
	sols := make([]*Solution, len(ps))
	for i := range ps {
		sols[i] = &Solution{
			Class:    class,
			Method:   Recommend(class).Method,
			Cost:     costs[i],
			Ordering: parens[i],
		}
	}
	return sols, stats, nil
}

// NonserialKernel batches same-profile ternary chains through lockstep
// variable elimination (nonserial.EliminateBatchFast).
type NonserialKernel struct{}

// Kind names the batched elimination path.
func (NonserialKernel) Kind() string { return "nonserial-batch" }

// Shape buckets by the full domain-size profile.
func (NonserialKernel) Shape(p Problem) (string, bool) {
	q, ok := p.(*NonserialChainProblem)
	if !ok || q.Chain == nil || q.Chain.Validate() != nil {
		return "", false
	}
	var b strings.Builder
	b.WriteString("d")
	for i, d := range q.Chain.Domains {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", len(d))
	}
	return b.String(), true
}

// Solve eliminates all chains in lockstep.
func (NonserialKernel) Solve(ps []Problem, _, _ int) ([]*Solution, *BatchStats, error) {
	chains := make([]*nonserial.Chain3, len(ps))
	for i, p := range ps {
		q, ok := p.(*NonserialChainProblem)
		if !ok {
			return nil, nil, fmt.Errorf("core: nonserial kernel got %T", p)
		}
		chains[i] = q.Chain
	}
	// EliminateBatchFast monomorphizes the ternary cost (via Chain3.GName)
	// and reuses pooled flat tables, bitwise identical to EliminateBatch.
	costs, steps, err := nonserial.EliminateBatchFast(chains)
	if err != nil {
		return nil, nil, err
	}
	stats := &BatchStats{
		Cycles:  steps,
		Workers: 1,
		// Elimination has no pipeline fill: every step is a useful table
		// update, so the sweep itself runs at full utilization.
		Utilization: 1,
	}
	class := Class{Monadic, Nonserial}
	sols := make([]*Solution, len(ps))
	for i, c := range costs {
		sols[i] = &Solution{Class: class, Method: Recommend(class).Method, Cost: c}
	}
	return sols, stats, nil
}
