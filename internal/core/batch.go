package core

import (
	"context"
	"fmt"

	"systolicdp/internal/dtw"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// DTWProblem is the pattern-recognition DP of the paper's Section 1
// citations: dynamic time warping of a query series X against a template
// Y, solved on the anti-diagonal linear systolic array.
type DTWProblem struct {
	X, Y []float64
}

// Classify reports monadic-serial: the DTW lattice is a monadic
// recurrence swept serially along anti-diagonals.
func (p *DTWProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *DTWProblem) Describe() string {
	return fmt.Sprintf("dynamic time warping (|x|=%d, |y|=%d), anti-diagonal array", len(p.X), len(p.Y))
}

func solveDTW(p *DTWProblem) (*Solution, error) {
	arr, err := dtw.New(p.Y, dtw.AbsDist)
	if err != nil {
		return nil, err
	}
	d, _, err := arr.Match(p.X, false)
	if err != nil {
		return nil, err
	}
	return &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method, Cost: d}, nil
}

// SolveCtx is Solve bounded by a context: it returns early with ctx.Err()
// if the context is cancelled or its deadline passes before the solve
// completes. The underlying computation is not interruptible, so on early
// return it continues in a background goroutine and its result is
// discarded; callers that solve untrusted sizes should bound them before
// submission.
func SolveCtx(ctx context.Context, p Problem) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		sol *Solution
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		// This goroutine is detached once the caller's context fires; a
		// panicking Problem implementation must not crash the process
		// (dpserve runs every solve through here).
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("core: solve panicked: %v", r)}
			}
		}()
		sol, err := Solve(p)
		ch <- outcome{sol, err}
	}()
	select {
	case o := <-ch:
		return o.sol, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// StreamProblemFromGraph converts a validated single-sink multistage
// graph into one instance of a Design-1 stream batch: the cost-matrix
// string (all but the last transition) and the initial vector (the final
// single-column transition). This is the per-instance form
// pipearray.NewStream consumes.
func StreamProblemFromGraph(g *multistage.Graph) (pipearray.StreamProblem, error) {
	var sp pipearray.StreamProblem
	if err := g.Validate(); err != nil {
		return sp, err
	}
	mats := g.Matrices()
	k := len(mats)
	if k < 2 {
		return sp, fmt.Errorf("core: streamed Design 1 needs at least 2 cost matrices")
	}
	if mats[k-1].Cols != 1 {
		return sp, fmt.Errorf("core: streamed Design 1 needs a single-sink graph (last stage of 1 node); wrap with SingleSourceSink")
	}
	sp.Ms = mats[:k-1]
	sp.V = mats[k-1].Col(0)
	return sp, nil
}

// SolveGraphBatch solves a batch of identically-shaped single-sink
// multistage graphs in ONE streamed Design-1 run: all instances share a
// single pipeline fill (B*K'*m + m - 1 cycles versus B*(K'*m + m - 1) for
// separate runs). Returns one Solution per graph, in order. All graphs
// must share stage count and stage sizes; pipearray.NewStream enforces
// this.
func SolveGraphBatch(gs []*multistage.Graph) ([]*Solution, error) {
	sols, _, err := SolveGraphBatchParallel(gs, 0, 0)
	return sols, err
}

// BatchStats reports the engine-side measurements of one streamed batch
// run: the wall-cycle count, the compute-phase worker count the lock-step
// engine used after threshold gating, and the measured processor
// utilization (the paper's PU, observed through the serving path).
type BatchStats struct {
	Cycles      int
	Workers     int
	Utilization float64
}

// SolveGraphBatchParallel is SolveGraphBatch with the lock-step engine's
// parallel compute phase configured: parallelism is the worker-count knob
// (<=1 sequential, negative = GOMAXPROCS) and threshold the minimum PE
// count at which it engages (0 = engine default). It additionally returns
// the run's BatchStats.
func SolveGraphBatchParallel(gs []*multistage.Graph, parallelism, threshold int) ([]*Solution, *BatchStats, error) {
	if len(gs) == 0 {
		return nil, nil, fmt.Errorf("core: empty graph batch")
	}
	problems := make([]pipearray.StreamProblem, len(gs))
	for i, g := range gs {
		sp, err := StreamProblemFromGraph(g)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch graph %d: %v", i, err)
		}
		problems[i] = sp
	}
	st, err := pipearray.NewStream(problems)
	if err != nil {
		return nil, nil, err
	}
	st.SetParallelism(parallelism)
	st.SetParallelThreshold(threshold)
	outs, res, err := st.RunObserved(false)
	if err != nil {
		return nil, nil, err
	}
	stats := &BatchStats{
		Cycles:      res.Cycles,
		Workers:     st.LockstepWorkers(),
		Utilization: res.Utilization(),
	}
	mp := semiring.MinPlus{}
	class := Class{Monadic, Serial}
	sols := make([]*Solution, len(outs))
	for i, out := range outs {
		sols[i] = &Solution{
			Class:  class,
			Method: Recommend(class).Method,
			Cost:   semiring.Fold(mp, out),
		}
	}
	return sols, stats, nil
}
