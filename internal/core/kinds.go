package core

import (
	"fmt"

	"systolicdp/internal/align"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/knapsack"
	"systolicdp/internal/semiring"
	"systolicdp/internal/viterbi"
)

// AlignProblem is affine-gap sequence alignment (Needleman–Wunsch–
// Gotoh): a 2-D monadic-serial lattice like DTW, but with the
// three-layer affine-gap state swept along anti-diagonals. Empty series
// are legal (all-gap alignments).
type AlignProblem struct {
	X, Y   []float64
	Params align.Params
}

// Classify reports monadic-serial: each lattice cell is a monadic
// recurrence over its three neighbours, swept serially by anti-diagonals.
func (p *AlignProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *AlignProblem) Describe() string {
	return fmt.Sprintf("affine-gap alignment (|x|=%d, |y|=%d, open=%g, ext=%g), anti-diagonal array",
		len(p.X), len(p.Y), p.Params.Open, p.Params.Ext)
}

func solveAlign(p *AlignProblem) (*Solution, error) {
	// Pooled anti-diagonal kernel, bitwise identical to align.Sequential.
	c, err := align.SolveFast(p.X, p.Y, p.Params)
	if err != nil {
		return nil, err
	}
	return &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method, Cost: c}, nil
}

// ViterbiProblem is the trellis path DP with node and transition costs,
// the monadic-serial problem Design 3's node-valued feedback array
// solves: states play the role of quantized values and the staged cost
// function folds node costs into the edges.
type ViterbiProblem struct {
	Trellis *viterbi.Trellis
}

// Classify reports monadic-serial.
func (p *ViterbiProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *ViterbiProblem) Describe() string {
	return fmt.Sprintf("viterbi trellis (%d stages), Design 3 feedback array", p.Trellis.Stages())
}

func solveViterbi(p *ViterbiProblem) (*Solution, error) {
	if err := p.Trellis.Validate(); err != nil {
		return nil, err
	}
	sol := &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method}
	// The feedback array needs Design 3's regularity: a uniform trellis
	// with at least one transition. Non-uniform or single-stage trellises
	// take the sequential sweep — bitwise identical either way (the
	// differential checker pins all engines to Sequential).
	if _, uniform := p.Trellis.Uniform(); uniform && p.Trellis.Stages() >= 2 {
		arr, err := fbarray.NewStaged(semiring.MinPlus{}, p.Trellis.Staged())
		if err != nil {
			return nil, err
		}
		res, err := arr.Run(false)
		if err != nil {
			return nil, err
		}
		sol.Cost, sol.Path = res.Cost, res.Path
		return sol, nil
	}
	cost, path, err := p.Trellis.Sequential()
	if err != nil {
		return nil, err
	}
	sol.Cost, sol.Path = cost, path
	return sol, nil
}

// KnapsackProblem is the weighted-deadline scheduling DP 1||Σ w_j U_j:
// minimize the total weight of late jobs on one machine via the
// Lawler–Moore knapsack-style row relaxation.
type KnapsackProblem struct {
	Jobs []knapsack.Job
}

// Classify reports monadic-serial: each wave relaxes the row from the
// previous wave's values only.
func (p *KnapsackProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *KnapsackProblem) Describe() string {
	return fmt.Sprintf("weighted-deadline scheduling (n=%d jobs, horizon %d), lockstep row",
		len(p.Jobs), knapsack.Horizon(p.Jobs))
}

func solveKnapsack(p *KnapsackProblem) (*Solution, error) {
	// Pooled lockstep wave engine, bitwise identical to knapsack.Sequential.
	c, _, err := knapsack.Lockstep(p.Jobs)
	if err != nil {
		return nil, err
	}
	return &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method, Cost: c}, nil
}

// AlignKernel batches same-shape, same-penalty alignment instances with
// one anti-diagonal wavefront over the stacked three-layer lattices
// (align.SweepBatchFast) — the alignment twin of DTWKernel.
type AlignKernel struct{}

// Kind names the batched alignment path.
func (AlignKernel) Kind() string { return "align-batch" }

// Shape buckets by (|x|, |y|) AND the gap penalties: instances in one
// sweep share the folded Open+Ext constant, so co-batching different
// penalties would change results. Empty series are batchable — the
// empty row/column is part of every lattice.
func (AlignKernel) Shape(p Problem) (string, bool) {
	q, ok := p.(*AlignProblem)
	if !ok || q.Params.Validate() != nil {
		return "", false
	}
	return fmt.Sprintf("x%d;y%d;o%g;e%g", len(q.X), len(q.Y), q.Params.Open, q.Params.Ext), true
}

// Solve sweeps the stacked lattices.
func (AlignKernel) Solve(ps []Problem, _, _ int) ([]*Solution, *BatchStats, error) {
	pairs := make([]align.Pair, len(ps))
	var params align.Params
	for i, p := range ps {
		q, ok := p.(*AlignProblem)
		if !ok {
			return nil, nil, fmt.Errorf("core: align kernel got %T", p)
		}
		if i == 0 {
			params = q.Params
		} else if q.Params != params {
			return nil, nil, fmt.Errorf("core: align kernel got mixed gap penalties %+v vs %+v", q.Params, params)
		}
		pairs[i] = align.Pair{X: q.X, Y: q.Y}
	}
	costs, cycles, err := align.SweepBatchFast(pairs, params)
	if err != nil {
		return nil, nil, err
	}
	n := len(pairs[0].X)
	stats := &BatchStats{
		Cycles:  cycles,
		Workers: 1,
		// Stream model: m+1 PEs over B·(n+1)+m cycles doing B·(n+1) useful
		// row injections each; fill amortization pushes this toward 1.
		Utilization: float64(len(ps)*(n+1)) / float64(cycles),
	}
	class := Class{Monadic, Serial}
	sols := make([]*Solution, len(ps))
	for i, c := range costs {
		sols[i] = &Solution{Class: class, Method: Recommend(class).Method, Cost: c}
	}
	return sols, stats, nil
}
