// Package core is the paper's Table 1 in executable form: it classifies a
// dynamic-programming problem into one of the four formulation classes —
// monadic-serial, polyadic-serial, monadic-nonserial, polyadic-nonserial —
// recommends the evaluation method and architecture the paper prescribes
// for that class, and dispatches to the corresponding solver.
package core

import (
	"fmt"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/dnc"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// Arity distinguishes monadic from polyadic functional equations
// (Section 2.1): monadic cost functions involve one recursive term,
// polyadic ones more.
type Arity int

// Arity values.
const (
	Monadic Arity = iota
	Polyadic
)

// String names the arity.
func (a Arity) String() string {
	if a == Monadic {
		return "monadic"
	}
	return "polyadic"
}

// Structure distinguishes serial from nonserial objective functions
// (Section 2.2): serial problems chain each functional term to its
// neighbours through shared variables.
type Structure int

// Structure values.
const (
	Serial Structure = iota
	Nonserial
)

// String names the structure.
func (s Structure) String() string {
	if s == Serial {
		return "serial"
	}
	return "nonserial"
}

// Class is one cell of the paper's classification.
type Class struct {
	Arity     Arity
	Structure Structure
}

// String renders e.g. "monadic-serial".
func (c Class) String() string { return c.Arity.String() + "-" + c.Structure.String() }

// Recommendation is one row of Table 1.
type Recommendation struct {
	Class          Class
	Characteristic string
	Method         string
	Requirements   string
}

// TableOne returns the paper's summary table.
func TableOne() []Recommendation {
	return []Recommendation{
		{
			Class:          Class{Monadic, Serial},
			Characteristic: "many states or quantized values in each stage",
			Method:         "solve as string of matrix multiplications",
			Requirements:   "systolic processing",
		},
		{
			Class:          Class{Polyadic, Serial},
			Characteristic: "many stages",
			Method:         "solve by divide-and-conquer algorithms, or search AND/OR-trees",
			Requirements:   "loose coupling for fine grain; tight coupling for coarse grain",
		},
		{
			Class:          Class{Monadic, Nonserial},
			Characteristic: "variables can be eliminated one by one",
			Method:         "transform into monadic-serial representation (by grouping variables)",
			Requirements:   "systolic processing",
		},
		{
			Class:          Class{Polyadic, Nonserial},
			Characteristic: "unstructured problems",
			Method:         "search AND/OR-graphs; transform into serial AND/OR-graphs",
			Requirements:   "dataflow or systolic processing",
		},
	}
}

// Recommend returns the Table 1 row for a class.
func Recommend(c Class) Recommendation {
	for _, r := range TableOne() {
		if r.Class == c {
			return r
		}
	}
	return Recommendation{Class: c, Method: "unknown"}
}

// Problem is a DP problem the library can classify and solve.
type Problem interface {
	// Classify returns the formulation class of the problem as posed.
	Classify() Class
	// Describe names the problem for reports.
	Describe() string
}

// Solution is the result of Solve.
type Solution struct {
	Class    Class
	Method   string
	Cost     float64
	Path     []int  // optimal assignment/path where applicable, else nil
	Ordering string // optimal parenthesisation for chain ordering, else ""
}

// MultistageProblem is a monadic-serial problem: a shortest path in an
// explicit multistage graph (equations (1)-(2)).
type MultistageProblem struct {
	Graph *multistage.Graph
	// Design selects the systolic array: 1 (pipelined), 2 (broadcast) or 0
	// for the sequential baseline. Designs 1-2 require a uniform graph
	// wrapped to single source/sink.
	Design int
}

// Classify reports monadic-serial.
func (p *MultistageProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *MultistageProblem) Describe() string {
	return fmt.Sprintf("multistage graph (%d stages), Design %d", p.Graph.Stages(), p.Design)
}

// NodeValuedProblem is a monadic-serial problem in the node-valued form of
// equation (4), solved on the Design-3 feedback array.
type NodeValuedProblem struct {
	Problem *multistage.NodeValued
}

// Classify reports monadic-serial.
func (p *NodeValuedProblem) Classify() Class { return Class{Monadic, Serial} }

// Describe names the problem.
func (p *NodeValuedProblem) Describe() string {
	return fmt.Sprintf("node-valued serial problem (%d stages), Design 3", p.Problem.Stages())
}

// MatrixStringProblem is a polyadic-serial problem: the same multistage
// search posed as a string of matrix multiplications evaluated by parallel
// divide-and-conquer (Section 4) on Workers processors.
type MatrixStringProblem struct {
	Matrices []*matrix.Matrix
	Workers  int
}

// Classify reports polyadic-serial.
func (p *MatrixStringProblem) Classify() Class { return Class{Polyadic, Serial} }

// Describe names the problem.
func (p *MatrixStringProblem) Describe() string {
	return fmt.Sprintf("matrix string (N=%d) by divide-and-conquer on %d workers", len(p.Matrices), p.Workers)
}

// ChainOrderingProblem is the polyadic-nonserial optimal-parenthesisation
// problem of equation (6).
type ChainOrderingProblem struct {
	Dims []int
}

// Classify reports polyadic-nonserial.
func (p *ChainOrderingProblem) Classify() Class { return Class{Polyadic, Nonserial} }

// Describe names the problem.
func (p *ChainOrderingProblem) Describe() string {
	return fmt.Sprintf("matrix-chain ordering (n=%d)", len(p.Dims)-1)
}

// NonserialChainProblem is the monadic-nonserial tri-variable chain of
// equation (36), solved by grouping variables into a serial problem.
type NonserialChainProblem struct {
	Chain *nonserial.Chain3
}

// Classify reports monadic-nonserial.
func (p *NonserialChainProblem) Classify() Class { return Class{Monadic, Nonserial} }

// Describe names the problem.
func (p *NonserialChainProblem) Describe() string {
	return fmt.Sprintf("nonserial ternary chain (N=%d variables)", len(p.Chain.Domains))
}

// Solve classifies the problem, applies the method Table 1 prescribes for
// its class, and returns the solution.
func Solve(p Problem) (*Solution, error) {
	sol := &Solution{Class: p.Classify(), Method: Recommend(p.Classify()).Method}
	mp := semiring.MinPlus{}
	switch q := p.(type) {
	case *MultistageProblem:
		if err := q.Graph.Validate(); err != nil {
			return nil, err
		}
		switch q.Design {
		case 0:
			path := multistage.SolveOptimal(mp, q.Graph)
			sol.Cost, sol.Path = path.Cost, path.Nodes
		case 1, 2:
			mats := q.Graph.Matrices()
			k := len(mats)
			if k < 2 {
				return nil, fmt.Errorf("core: designs 1-2 need at least 2 cost matrices")
			}
			v := mats[k-1].Col(0)
			if mats[k-1].Cols != 1 {
				return nil, fmt.Errorf("core: designs 1-2 need a single-sink graph (last stage of 1 node); wrap with SingleSourceSink")
			}
			var out []float64
			var err error
			if q.Design == 1 {
				out, err = pipearray.Solve(mats[:k-1], v)
			} else {
				out, err = bcastarray.Solve(mats[:k-1], v)
			}
			if err != nil {
				return nil, err
			}
			sol.Cost = semiring.Fold(mp, out)
		default:
			return nil, fmt.Errorf("core: unknown design %d", q.Design)
		}
	case *NodeValuedProblem:
		res, err := fbarray.Solve(q.Problem)
		if err != nil {
			return nil, err
		}
		sol.Cost, sol.Path = res.Cost, res.Path
	case *MatrixStringProblem:
		workers := q.Workers
		if workers < 1 {
			workers = dnc.OptimalGranularity(len(q.Matrices))
		}
		res, err := dnc.ParallelChain(mp, q.Matrices, workers)
		if err != nil {
			return nil, err
		}
		// The product matrix's fold is the best any-to-any cost.
		sol.Cost = semiring.Fold(mp, res.Product.Data)
	case *ChainOrderingProblem:
		// Pooled flat-table kernel, bitwise identical to matchain.DP.
		cost, paren, err := matchain.SolveFast(q.Dims)
		if err != nil {
			return nil, err
		}
		sol.Cost = cost
		sol.Ordering = paren
	case *NonserialChainProblem:
		if err := q.Chain.Validate(); err != nil {
			return nil, err
		}
		if q.Chain.UniformDomains() {
			nv, err := q.Chain.GroupToSerial()
			if err != nil {
				return nil, err
			}
			res, err := fbarray.Solve(nv)
			if err != nil {
				return nil, err
			}
			sol.Cost = res.Cost
		} else {
			g, err := q.Chain.GroupToGraph()
			if err != nil {
				return nil, err
			}
			sol.Cost = multistage.SolveOptimal(mp, g).Cost
		}
	case *DTWProblem:
		res, err := solveDTW(q)
		if err != nil {
			return nil, err
		}
		sol.Cost = res.Cost
	case *AlignProblem:
		res, err := solveAlign(q)
		if err != nil {
			return nil, err
		}
		sol.Cost = res.Cost
	case *ViterbiProblem:
		res, err := solveViterbi(q)
		if err != nil {
			return nil, err
		}
		sol.Cost, sol.Path = res.Cost, res.Path
	case *KnapsackProblem:
		res, err := solveKnapsack(q)
		if err != nil {
			return nil, err
		}
		sol.Cost = res.Cost
	default:
		return nil, fmt.Errorf("core: unsupported problem type %T", p)
	}
	return sol, nil
}
