package core

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/matchain"
	"systolicdp/internal/matrix"
	"systolicdp/internal/multistage"
	"systolicdp/internal/nonserial"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		{Monadic, Serial}:     "monadic-serial",
		{Polyadic, Serial}:    "polyadic-serial",
		{Monadic, Nonserial}:  "monadic-nonserial",
		{Polyadic, Nonserial}: "polyadic-nonserial",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%v.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestTableOneCoversAllClasses(t *testing.T) {
	rows := TableOne()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	seen := map[Class]bool{}
	for _, r := range rows {
		seen[r.Class] = true
		if r.Method == "" || r.Requirements == "" || r.Characteristic == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
	if len(seen) != 4 {
		t.Error("Table 1 rows do not cover the four classes")
	}
	// Systolic processing is the prescription for both monadic rows.
	if Recommend(Class{Monadic, Serial}).Requirements != "systolic processing" {
		t.Error("monadic-serial should prescribe systolic processing")
	}
	if Recommend(Class{Monadic, Nonserial}).Requirements != "systolic processing" {
		t.Error("monadic-nonserial should prescribe systolic processing")
	}
}

func TestSolveMultistageAllDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inner := multistage.RandomUniform(rng, 4, 3, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	want := multistage.SolveOptimal(mp, g).Cost
	for design := 0; design <= 2; design++ {
		sol, err := Solve(&MultistageProblem{Graph: g, Design: design})
		if err != nil {
			t.Fatalf("design %d: %v", design, err)
		}
		if sol.Class != (Class{Monadic, Serial}) {
			t.Errorf("design %d: class %v", design, sol.Class)
		}
		if math.Abs(sol.Cost-want) > 1e-9 {
			t.Errorf("design %d: cost %v, want %v", design, sol.Cost, want)
		}
	}
	if _, err := Solve(&MultistageProblem{Graph: g, Design: 7}); err == nil {
		t.Error("unknown design accepted")
	}
	// Designs 1-2 reject multi-sink graphs.
	if _, err := Solve(&MultistageProblem{Graph: inner, Design: 1}); err == nil {
		t.Error("multi-sink graph accepted by Design 1")
	}
}

func TestSolveNodeValued(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := multistage.RandomNodeValued(rng, 5, 3, 0, 10)
	sol, err := Solve(&NodeValuedProblem{Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Solve(mp); math.Abs(sol.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", sol.Cost, want)
	}
	if len(sol.Path) != 5 {
		t.Errorf("path length %d, want 5", len(sol.Path))
	}
}

func TestSolveMatrixString(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := make([]*matrix.Matrix, 8)
	for i := range ms {
		ms[i] = matrix.Random(rng, 3, 3, 0, 10)
	}
	sol, err := Solve(&MatrixStringProblem{Matrices: ms, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := semiring.Fold(mp, matrix.ChainMat(mp, ms).Data)
	if math.Abs(sol.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", sol.Cost, want)
	}
	if sol.Class != (Class{Polyadic, Serial}) {
		t.Errorf("class %v", sol.Class)
	}
	// Workers <= 0 defaults to the optimal granularity.
	if _, err := Solve(&MatrixStringProblem{Matrices: ms}); err != nil {
		t.Errorf("default workers failed: %v", err)
	}
}

func TestSolveChainOrdering(t *testing.T) {
	sol, err := Solve(&ChainOrderingProblem{Dims: []int{30, 35, 15, 5, 10, 20, 25}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 15125 {
		t.Errorf("cost %v, want 15125", sol.Cost)
	}
	if sol.Ordering == "" {
		t.Error("missing ordering")
	}
	if sol.Class != (Class{Polyadic, Nonserial}) {
		t.Errorf("class %v", sol.Class)
	}
}

func TestSolveNonserialChain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Uniform domains: solved via Design 3.
	cu := nonserial.RandomUniformChain3(rng, 4, 3, 0, 10)
	sol, err := Solve(&NonserialChainProblem{Chain: cu})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := cu.AsProblem().BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-want) > 1e-9 {
		t.Errorf("uniform: cost %v, want %v", sol.Cost, want)
	}
	// Ragged domains: solved via the grouped graph.
	cr := nonserial.RandomChain3(rng, 4, 2, 0, 10)
	cr.Domains[1] = append(cr.Domains[1], 3.3)
	sol, err = Solve(&NonserialChainProblem{Chain: cr})
	if err != nil {
		t.Fatal(err)
	}
	_, want, err = cr.AsProblem().BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-want) > 1e-9 {
		t.Errorf("ragged: cost %v, want %v", sol.Cost, want)
	}
}

func TestSolveAgreesWithMatchainPackage(t *testing.T) {
	dims := []int{5, 4, 6, 2, 7}
	sol, err := Solve(&ChainOrderingProblem{Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := matchain.DP(dims)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != tab.OptimalCost() || sol.Ordering != tab.Parenthesization() {
		t.Error("core dispatch disagrees with matchain")
	}
}

func TestDescribe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := multistage.RandomUniform(rng, 3, 2, 0, 1)
	probs := []Problem{
		&MultistageProblem{Graph: g, Design: 1},
		&NodeValuedProblem{Problem: multistage.RandomNodeValued(rng, 3, 2, 0, 1)},
		&MatrixStringProblem{Matrices: []*matrix.Matrix{matrix.New(2, 2, 0)}, Workers: 1},
		&ChainOrderingProblem{Dims: []int{2, 3, 4}},
		&NonserialChainProblem{Chain: nonserial.RandomChain3(rng, 3, 2, 0, 1)},
	}
	for _, p := range probs {
		if p.Describe() == "" {
			t.Errorf("%T: empty description", p)
		}
	}
}

func TestSolveRejectsUnknownType(t *testing.T) {
	if _, err := Solve(bogus{}); err == nil {
		t.Error("unknown problem type accepted")
	}
}

type bogus struct{}

func (bogus) Classify() Class  { return Class{} }
func (bogus) Describe() string { return "bogus" }

func TestRecommendUnknownClass(t *testing.T) {
	// Force the fallback row with an out-of-range class value.
	r := Recommend(Class{Arity: Arity(9), Structure: Structure(9)})
	if r.Method != "unknown" {
		t.Errorf("method %q, want unknown", r.Method)
	}
}

func TestSolveErrorPaths(t *testing.T) {
	// Invalid graph.
	if _, err := Solve(&MultistageProblem{Graph: &multistage.Graph{StageSizes: []int{1}}}); err == nil {
		t.Error("invalid graph accepted")
	}
	// Too-short matrix string for designs 1-2.
	g := &multistage.Graph{
		StageSizes: []int{1, 1},
		Cost:       []*matrix.Matrix{matrix.New(1, 1, 0)},
	}
	if _, err := Solve(&MultistageProblem{Graph: g, Design: 1}); err == nil {
		t.Error("1-matrix string accepted by design 1")
	}
	// Bad chain dims.
	if _, err := Solve(&ChainOrderingProblem{Dims: []int{3}}); err == nil {
		t.Error("short dims accepted")
	}
	// Bad node-valued problem.
	if _, err := Solve(&NodeValuedProblem{Problem: &multistage.NodeValued{}}); err == nil {
		t.Error("invalid node-valued problem accepted")
	}
	// Bad nonserial chain.
	if _, err := Solve(&NonserialChainProblem{Chain: &nonserial.Chain3{}}); err == nil {
		t.Error("invalid chain accepted")
	}
	// Bad matrix string for divide and conquer.
	if _, err := Solve(&MatrixStringProblem{Matrices: nil, Workers: 1}); err == nil {
		t.Error("empty matrix string accepted")
	}
}
