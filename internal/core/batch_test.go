package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func testGraph(seed int64, stages, m int) *multistage.Graph {
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, stages, m, 1, 10)
	return multistage.SingleSourceSink(semiring.MinPlus{}, inner)
}

// A streamed batch must agree with per-instance Design-1 solves.
func TestSolveGraphBatchMatchesSingle(t *testing.T) {
	var gs []*multistage.Graph
	for seed := int64(1); seed <= 4; seed++ {
		gs = append(gs, testGraph(seed, 5, 4))
	}
	batch, err := SolveGraphBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(gs) {
		t.Fatalf("got %d solutions, want %d", len(batch), len(gs))
	}
	for i, g := range gs {
		single, err := Solve(&MultistageProblem{Graph: g, Design: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(batch[i].Cost-single.Cost) > 1e-9 {
			t.Errorf("graph %d: batch cost %v, single cost %v", i, batch[i].Cost, single.Cost)
		}
	}
}

func TestSolveGraphBatchRejectsMixedShapes(t *testing.T) {
	gs := []*multistage.Graph{testGraph(1, 5, 4), testGraph(2, 5, 3)}
	if _, err := SolveGraphBatch(gs); err == nil {
		t.Fatal("mixed-shape batch should fail")
	}
	if _, err := SolveGraphBatch(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
}

func TestSolveCtx(t *testing.T) {
	g := testGraph(7, 5, 4)
	p := &MultistageProblem{Graph: g, Design: 1}

	sol, err := SolveCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Solve(p)
	if sol.Cost != want.Cost {
		t.Errorf("SolveCtx cost %v, want %v", sol.Cost, want.Cost)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveCtx(ctx, p); err != context.Canceled {
		t.Errorf("cancelled SolveCtx err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, err := SolveCtx(ctx2, p); err != context.DeadlineExceeded {
		t.Errorf("expired SolveCtx err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDTWProblemViaSolve(t *testing.T) {
	p := &DTWProblem{X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 1, 2, 3}}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Errorf("warping identical shapes should cost 0, got %v", sol.Cost)
	}
	if sol.Class.String() != "monadic-serial" {
		t.Errorf("class %v", sol.Class)
	}
}

// panicProblem explodes as soon as Solve touches it.
type panicProblem struct{}

func (panicProblem) Classify() Class  { panic("malformed problem state") }
func (panicProblem) Describe() string { return "panic stub" }

// Regression: a panic inside the detached solve goroutine used to crash
// the whole process (dpserve routes every request through SolveCtx); it
// must surface as an ordinary error instead.
func TestSolveCtxRecoversPanic(t *testing.T) {
	sol, err := SolveCtx(context.Background(), panicProblem{})
	if sol != nil || err == nil {
		t.Fatalf("SolveCtx = (%v, %v), want nil solution and panic-derived error", sol, err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("err = %v, want mention of panic", err)
	}
}
