package core

import (
	"math"
	"testing"

	"systolicdp/internal/matrix"
	"systolicdp/internal/semiring"
)

// SolveGraphDirect must be bitwise identical to the ChainVec baseline
// and agree with the Design-1 engine path.
func TestSolveGraphDirectMatchesBaselineAndEngine(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := testGraph(seed, 5, 4)
		direct, err := SolveGraphDirect(g)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := StreamProblemFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		mp := semiring.MinPlus{}
		want := semiring.Fold(mp, matrix.ChainVec(mp, sp.Ms, sp.V))
		if direct.Cost != want {
			t.Fatalf("seed %d: direct cost %v != baseline %v (must be bitwise)", seed, direct.Cost, want)
		}
		engine, err := Solve(&MultistageProblem{Graph: g, Design: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct.Cost-engine.Cost) > 1e-9 {
			t.Fatalf("seed %d: direct cost %v, engine cost %v", seed, direct.Cost, engine.Cost)
		}
	}
}

func TestSolveGraphDirectRejectsBadGraph(t *testing.T) {
	rngGraph := testGraph(9, 5, 4)
	// Drop the single-sink final stage: StreamProblemFromGraph must refuse.
	rngGraph.Cost = rngGraph.Cost[:len(rngGraph.Cost)-1]
	rngGraph.StageSizes = rngGraph.StageSizes[:len(rngGraph.StageSizes)-1]
	if _, err := SolveGraphDirect(rngGraph); err == nil {
		t.Fatal("multi-sink graph accepted")
	}
}
