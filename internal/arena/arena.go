// Package arena provides reusable per-shape solve workspaces for the
// zero-allocation hot path: sync.Pool sets keyed by the same shape
// buckets the serving batcher groups requests under, so a replica that
// sees a steady stream of same-shape solves (the common case — clients
// resubmit one problem family) touches the allocator only on the first
// request of each shape.
//
// # Poisoning discipline
//
// A pooled workspace must be returned ONLY after a fully successful
// solve. If the solve panics, is cancelled, or errors after partially
// writing the workspace, the checkout must simply not be returned: the
// buffer is dropped and the garbage collector reclaims it. Returning a
// workspace from a failure path is a poisoning bug — the next solve of
// a colliding shape would alias half-written state while the panicking
// goroutine's deferred handlers may still hold the same backing arrays.
// The kernel call sites therefore follow the pattern
//
//	ws := pool.Get(key)
//	v := solve(..., ws)   // may panic
//	pool.Put(key, ws)     // reached only on clean completion
//	return v
//
// with NO deferred Put: a panic unwinds past the Put and the workspace
// is garbage, exactly as required. TestPoisonedWorkspaceDropped in this
// package pins the discipline under the race detector.
package arena

import "sync"

// Keyed is a set of sync.Pools, one per shape key. K is any comparable
// shape descriptor — small structs of dimensions, not formatted strings,
// so that Get/Put themselves allocate nothing on the steady-state path.
type Keyed[K comparable, T any] struct {
	newT  func() T
	mu    sync.RWMutex
	pools map[K]*sync.Pool
}

// NewKeyed builds a keyed pool set; newT constructs a fresh (empty)
// workspace when a shape's pool is dry.
func NewKeyed[K comparable, T any](newT func() T) *Keyed[K, T] {
	return &Keyed[K, T]{newT: newT, pools: make(map[K]*sync.Pool)}
}

func (a *Keyed[K, T]) pool(key K) *sync.Pool {
	a.mu.RLock()
	p := a.pools[key]
	a.mu.RUnlock()
	if p != nil {
		return p
	}
	a.mu.Lock()
	if p = a.pools[key]; p == nil {
		p = &sync.Pool{New: func() any { return a.newT() }}
		a.pools[key] = p
	}
	a.mu.Unlock()
	return p
}

// Get checks a workspace out of key's pool, constructing one if the
// pool is dry. Steady-state (warm pool, known key) it performs no
// allocations.
func (a *Keyed[K, T]) Get(key K) T {
	return a.pool(key).Get().(T)
}

// Put returns a workspace to key's pool. Call it only on the clean
// completion path — never from a deferred handler that also runs on
// panic, and never for a workspace whose solve was abandoned midway
// (see the package comment on poisoning).
func (a *Keyed[K, T]) Put(key K, v T) {
	a.pool(key).Put(v)
}

// Floats returns buf resliced to length n, reallocating only when the
// capacity is short. Contents are NOT zeroed: callers own initialization
// (a recycled workspace carries a previous solve's values by design).
func Floats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Ints is Floats for int slices.
func Ints(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
