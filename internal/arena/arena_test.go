package arena

import (
	"sync"
	"testing"
)

type ws struct {
	buf   []float64
	stamp int64
}

type shape struct{ n, m int }

func TestKeyedReuseAndIsolation(t *testing.T) {
	p := NewKeyed[shape](func() *ws { return new(ws) })
	a := p.Get(shape{4, 4})
	a.stamp = 42
	p.Put(shape{4, 4}, a)
	b := p.Get(shape{4, 4})
	if b != a {
		t.Fatalf("same-shape Get did not reuse the returned workspace")
	}
	// A different shape must never see the other bucket's workspace.
	c := p.Get(shape{4, 5})
	if c == a {
		t.Fatalf("cross-shape Get aliased another bucket's workspace")
	}
}

func TestKeyedGetAllocsSteadyState(t *testing.T) {
	p := NewKeyed[shape](func() *ws { return &ws{buf: make([]float64, 64)} })
	key := shape{8, 8}
	p.Put(key, p.Get(key)) // warm the bucket
	allocs := testing.AllocsPerRun(200, func() {
		w := p.Get(key)
		p.Put(key, w)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v objects per op, want 0", allocs)
	}
}

func TestGrowHelpers(t *testing.T) {
	f := Floats(nil, 8)
	if len(f) != 8 {
		t.Fatalf("Floats len = %d", len(f))
	}
	f2 := Floats(f, 4)
	if &f2[0] != &f[0] {
		t.Fatalf("Floats reallocated when capacity sufficed")
	}
	i := Ints(nil, 3)
	if len(Ints(i, 9)) != 9 {
		t.Fatalf("Ints did not grow")
	}
}

// solveInto simulates a kernel writing its workspace then maybe
// panicking midway: on the failure path the workspace holds a poisoned
// half-written state and must NOT reach the pool.
func solveInto(w *ws, id int64, poison bool) {
	for i := range w.buf {
		w.buf[i] = float64(id)
	}
	w.stamp = id
	if poison {
		panic("kernel failure after partial write")
	}
}

// TestPoisonedWorkspaceDropped is the arena-recycling poisoning audit:
// it interleaves panicking solves with clean solves on COLLIDING shape
// keys under the race detector, following the package's checkout
// pattern (Put only on the clean path). Every workspace observed after
// a Get must be internally consistent — a poisoned buffer that reached
// the pool would surface as a torn (stamp, buf) pair or as a data race
// between the panicking goroutine and the reuser.
func TestPoisonedWorkspaceDropped(t *testing.T) {
	pool := NewKeyed[shape](func() *ws { return &ws{buf: make([]float64, 256)} })
	key := shape{16, 16}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				id := int64(g*1000 + iter)
				poison := iter%3 == 0
				func() {
					defer func() { recover() }() // the serving tier's panic boundary
					w := pool.Get(key)
					solveInto(w, id, poison)
					// Clean completion only: a panic above skips the Put and
					// the poisoned workspace is dropped to the GC.
					pool.Put(key, w)
				}()
				// Reuse path: whatever the pool hands out must be wholly
				// written by a single completed solve.
				w := pool.Get(key)
				stamp := w.stamp
				for i, v := range w.buf {
					if v != float64(stamp) && stamp != 0 {
						t.Errorf("poisoned workspace recycled: buf[%d]=%v, stamp=%d", i, v, stamp)
						return
					}
				}
				pool.Put(key, w)
			}
		}(g)
	}
	wg.Wait()
}
