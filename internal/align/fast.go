package align

// The anti-diagonal fast path. Cells on one anti-diagonal of the
// affine-gap lattice are independent — all three layers of cell (i,j)
// read only diagonals t-1 and t-2 — so the sweep follows the paper's
// wavefront order on nine rolling diagonal buffers (three layers ×
// three diagonals), drawn from a per-shape pooled workspace
// (internal/arena, drop-on-panic discipline) so steady-state same-shape
// solves allocate nothing. Wide diagonals fan out in chunks across the
// shared internal/tile wavefront pool, the same persistent PE fabric
// the DTW kernel uses.
//
// Every cell evaluates EXACTLY Sequential's float64 expressions (same
// math.Min nesting, Open+Ext folded once per solve in both engines) in
// a dependency-respecting order, so results are bitwise identical; the
// differential checker pins this on every generated instance, empty
// series included.

import (
	"fmt"
	"math"

	"systolicdp/internal/arena"
	"systolicdp/internal/tile"
)

// parallelMinCells gates the wavefront fan-out: below this much lattice
// the barrier overhead exceeds the win.
const parallelMinCells = 1 << 16

// parallelMinSpan is the minimum diagonal width worth splitting across
// lanes: one barrier per diagonal only pays off when each lane gets a
// substantial contiguous span of three-layer cell updates.
const parallelMinSpan = 2048

// Workspace is the pooled per-shape diagonal storage: three layers ×
// three rolling diagonals, plus the reusable fan-out job.
type Workspace struct {
	bufs [9][]float64
	job  *alignJob
}

type shapeKey struct{ n, m int }

var wsPool = arena.NewKeyed[shapeKey](func() *Workspace { return new(Workspace) })

// SolveFast computes the affine-gap alignment cost on the pooled
// anti-diagonal kernel — bitwise identical to Sequential(x, y, p).
func SolveFast(x, y []float64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	key := shapeKey{len(x), len(y)}
	ws := wsPool.Get(key)
	v := solveDiag(x, y, p, ws, tile.Default())
	// Clean completion only — a panicking solve drops ws (arena
	// poisoning discipline).
	wsPool.Put(key, ws)
	return v, nil
}

// alignJob carries one anti-diagonal's chunked fan-out across the tile
// pool; it lives in the Workspace so steady-state sweeps allocate
// nothing.
type alignJob struct {
	x, y             []float64
	oe, ext          float64
	t, lo            int // current diagonal and its lowest row index
	hi               int
	chunk            int
	cur, prev, prev2 [3][]float64
}

func (j *alignJob) Do(_, k int) {
	a := j.lo + k*j.chunk
	b := a + j.chunk
	if b > j.hi+1 {
		b = j.hi + 1
	}
	alignSpan(j.x, j.y, j.oe, j.ext, j.t, a, b, j.cur, j.prev, j.prev2)
}

// alignSpan evaluates cells i in [a, b) of anti-diagonal t (j = t - i).
// The layer order inside cur/prev/prev2 is [M, Ix, Iy]; buffers are
// indexed by lattice row i. The per-cell expressions are Sequential's,
// verbatim: the boundary arms mirror its row-0/column-0 loops and the
// interior arm is the shared interior() kernel.
func alignSpan(x, y []float64, oe, ext float64, t, a, b int, cur, prev, prev2 [3][]float64) {
	cM, cX, cY := cur[0], cur[1], cur[2]
	pM, pX, pY := prev[0], prev[1], prev[2]
	qM, qX, qY := prev2[0], prev2[1], prev2[2]
	for i := a; i < b; i++ {
		j := t - i
		switch {
		case i == 0 && j == 0:
			cM[0], cX[0], cY[0] = 0, inf, inf
		case j == 0:
			// Empty-y boundary: only Ix (gap run over x) is live.
			cM[i], cY[i] = inf, inf
			cX[i] = math.Min(pM[i-1]+oe, math.Min(pX[i-1]+ext, pY[i-1]+oe))
		case i == 0:
			// Empty-x boundary: only Iy (gap run over y) is live.
			cM[0], cX[0] = inf, inf
			cY[0] = math.Min(pM[0]+oe, math.Min(pY[0]+ext, pX[0]+oe))
		default:
			s := sub(x[i-1], y[j-1])
			cM[i], cX[i], cY[i] = interior(s,
				qM[i-1], qX[i-1], qY[i-1],
				pM[i-1], pX[i-1], pY[i-1],
				pM[i], pX[i], pY[i],
				oe, ext)
		}
	}
}

// solveDiag runs the pooled anti-diagonal sweep; pl supplies the
// wavefront lanes (nil or width 1 keeps the sweep inline).
func solveDiag(x, y []float64, p Params, ws *Workspace, pl *tile.Pool) float64 {
	n, m := len(x), len(y)
	rows := n + 1
	for i := range ws.bufs {
		ws.bufs[i] = arena.Floats(ws.bufs[i], rows)
	}
	if ws.job == nil {
		ws.job = new(alignJob)
	}
	j := ws.job
	j.x, j.y = x, y
	j.oe, j.ext = p.Open+p.Ext, p.Ext
	j.cur = [3][]float64{ws.bufs[0], ws.bufs[1], ws.bufs[2]}
	j.prev = [3][]float64{ws.bufs[3], ws.bufs[4], ws.bufs[5]}
	j.prev2 = [3][]float64{ws.bufs[6], ws.bufs[7], ws.bufs[8]}
	lanes := pl.Workers()
	par := lanes > 1 && rows*(m+1) >= parallelMinCells
	for t := 0; t <= n+m; t++ {
		lo := t - m
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > n {
			hi = n
		}
		width := hi - lo + 1
		if par && width >= parallelMinSpan {
			j.t, j.lo, j.hi = t, lo, hi
			j.chunk = (width + lanes - 1) / lanes
			pl.Run(lanes, j)
		} else {
			alignSpan(x, y, j.oe, j.ext, t, lo, hi+1, j.cur, j.prev, j.prev2)
		}
		j.cur, j.prev, j.prev2 = j.prev2, j.cur, j.prev
	}
	// After the final rotation prev holds diagonal n+m (the corner cell).
	v := math.Min(j.prev[0][n], math.Min(j.prev[1][n], j.prev[2][n]))
	j.x, j.y = nil, nil // don't pin caller series in the pool
	return v
}

// Pair is one alignment instance of a multi-instance batch.
type Pair struct {
	X, Y []float64
}

// SweepBatch aligns B same-shape instances with ONE anti-diagonal
// wavefront over the stacked (n+1)×(m+1) lattices — the same
// multi-instance pipelining as dtw.SweepBatch. All pairs must share
// len(X) and len(Y) (empties included: the empty row/column is part of
// every lattice). Per instance the cell updates are EXACTLY
// Sequential's, so results are bitwise identical.
//
// The returned cycle count is the stream model for a linear array of
// m+1 PEs: the B stacked lattices stream their B·(n+1) rows back to
// back through one pipeline, so the batch occupies the array for
// B·(n+1) + m cycles instead of B·(n+1 + m).
func SweepBatch(pairs []Pair, p Params) (costs []float64, cycles int, err error) {
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("align: empty batch")
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n, m := len(pairs[0].X), len(pairs[0].Y)
	for i, pr := range pairs {
		if len(pr.X) != n || len(pr.Y) != m {
			return nil, 0, fmt.Errorf("align: batch instance %d is %dx%d, batch shape is %dx%d",
				i, len(pr.X), len(pr.Y), n, m)
		}
	}
	b := len(pairs)
	rows := n + 1
	var bufs [9][]float64
	for i := range bufs {
		bufs[i] = make([]float64, b*rows)
	}
	costs = make([]float64, b)
	sweepBatch(costs, pairs, p, bufs)
	return costs, b*rows + m, nil
}

// SweepBatchFast is SweepBatch on a shared pooled workspace — bitwise
// identical per instance, zero allocations in steady state beyond the
// result slice.
func SweepBatchFast(pairs []Pair, p Params) (costs []float64, cycles int, err error) {
	costs = make([]float64, len(pairs))
	cycles, err = SweepBatchFastInto(costs, pairs, p)
	if err != nil {
		return nil, 0, err
	}
	return costs, cycles, nil
}

// SweepBatchFastInto is SweepBatchFast writing into a caller-owned
// result slice for allocation-free steady-state batches.
func SweepBatchFastInto(costs []float64, pairs []Pair, p Params) (cycles int, err error) {
	if len(pairs) == 0 {
		return 0, fmt.Errorf("align: empty batch")
	}
	if len(costs) != len(pairs) {
		return 0, fmt.Errorf("align: costs length %d != batch size %d", len(costs), len(pairs))
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n, m := len(pairs[0].X), len(pairs[0].Y)
	for i, pr := range pairs {
		if len(pr.X) != n || len(pr.Y) != m {
			return 0, fmt.Errorf("align: batch instance %d is %dx%d, batch shape is %dx%d",
				i, len(pr.X), len(pr.Y), n, m)
		}
	}
	b := len(pairs)
	rows := n + 1
	key := shapeKey{n, m}
	ws := wsPool.Get(key)
	var bufs [9][]float64
	for i := range ws.bufs {
		ws.bufs[i] = arena.Floats(ws.bufs[i], b*rows)
		bufs[i] = ws.bufs[i]
	}
	sweepBatch(costs, pairs, p, bufs)
	wsPool.Put(key, ws) // clean completion only
	return b*rows + m, nil
}

// sweepBatch is the shared stacked-lattice sweep: one wavefront
// schedule, per-instance buffer strips, Sequential's exact cell
// expressions via alignSpan.
func sweepBatch(costs []float64, pairs []Pair, p Params, bufs [9][]float64) {
	n, m := len(pairs[0].X), len(pairs[0].Y)
	rows := n + 1
	oe, ext := p.Open+p.Ext, p.Ext
	cur := [3][]float64{bufs[0], bufs[1], bufs[2]}
	prev := [3][]float64{bufs[3], bufs[4], bufs[5]}
	prev2 := [3][]float64{bufs[6], bufs[7], bufs[8]}
	for t := 0; t <= n+m; t++ {
		lo := t - m
		if lo < 0 {
			lo = 0
		}
		hi := t
		if hi > n {
			hi = n
		}
		for q, pr := range pairs {
			base := q * rows
			var c, pv, p2 [3][]float64
			for l := 0; l < 3; l++ {
				c[l] = cur[l][base : base+rows]
				pv[l] = prev[l][base : base+rows]
				p2[l] = prev2[l][base : base+rows]
			}
			alignSpan(pr.X, pr.Y, oe, ext, t, lo, hi+1, c, pv, p2)
		}
		cur, prev, prev2 = prev2, cur, prev
	}
	for q := range pairs {
		base := q * rows
		costs[q] = math.Min(prev[0][base+n], math.Min(prev[1][base+n], prev[2][base+n]))
	}
}
