//go:build !race

package align

const raceEnabled = false
