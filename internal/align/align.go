// Package align implements global sequence alignment with affine gap
// penalties (Needleman–Wunsch–Gotoh) over float64 series — the
// edit-distance / Smith–Waterman family of lattice DPs the paper's
// Section 1 cites as the canonical pattern-recognition workload. Like
// DTW it is a 2-D monadic-serial lattice swept by anti-diagonals, but
// each cell carries THREE coupled states (match, gap-in-y, gap-in-x),
// the affine-gap automaton of Gotoh's algorithm: a gap of length L
// costs Open + L·Ext, so extending a gap is cheaper than opening one.
//
// The lattice is (n+1)×(m+1) over x (length n) and y (length m); the
// empty row/column 0 is part of the recurrence (an empty series aligns
// against pure gap runs), so empty inputs are legal — align("", "") is 0
// and align("", y) is one gap run over y.
//
// Sequential is the reference engine (rolling rows). The fast engine in
// fast.go sweeps the same recurrence by anti-diagonals on pooled
// workspaces — the paper's wavefront order — and must stay bitwise
// identical: both engines evaluate the exact same per-cell float64
// expressions (see cell.go), and the differential checker pins them to
// each other on every generated instance.
package align

import (
	"fmt"
	"math"
)

// Params are the affine gap penalties: a gap of length L costs
// Open + L·Ext. Substitution cost is fixed at |a-b| (the same absolute
// metric the DTW serving path uses), which keeps the lattice symmetric:
// Cost(x,y) == Cost(y,x), the metamorphic invariant the checker asserts.
type Params struct {
	Open float64 // gap opening penalty (charged once per gap run)
	Ext  float64 // gap extension penalty (charged per gapped sample)
}

// Validate rejects non-finite or negative penalties.
func (p Params) Validate() error {
	for name, v := range map[string]float64{"open": p.Open, "ext": p.Ext} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("align: non-finite gap %s %v", name, v)
		}
		if v < 0 {
			return fmt.Errorf("align: negative gap %s %v", name, v)
		}
	}
	return nil
}

// Cells returns the number of DP cell updates the solve performs: three
// affine-gap layers over the full boundary-inclusive lattice. This is
// the closed form the admission controller prices align requests with.
func Cells(n, m int) int { return 3 * (n + 1) * (m + 1) }

// inf is the out-of-lattice sentinel: an unreachable layer state. It
// flows through the min-plus recurrence exactly (Inf+c = Inf,
// min(Inf, v) = v), so both engines agree bitwise on boundary cells.
var inf = math.Inf(1)

// interior computes one interior cell's three layer values from its
// neighbours: d* = diagonal (i-1,j-1), u* = up (i-1,j), l* = left
// (i,j-1). oe is Open+Ext precomputed ONCE per solve by both engines, so
// the addition trees are identical and the results bitwise equal.
//
//   - M:  x_i aligned to y_j, entered from any layer diagonally;
//   - Ix: x_i aligned to a gap — extend an x-gap (Ext) or open one (oe);
//   - Iy: y_j aligned to a gap, the mirror image.
func interior(sub, dM, dIx, dIy, uM, uIx, uIy, lM, lIx, lIy, oe, ext float64) (m, ix, iy float64) {
	m = sub + math.Min(dM, math.Min(dIx, dIy))
	ix = math.Min(uM+oe, math.Min(uIx+ext, uIy+oe))
	iy = math.Min(lM+oe, math.Min(lIy+ext, lIx+oe))
	return
}

// sub is the substitution cost |a-b|.
func sub(a, b float64) float64 { return math.Abs(a - b) }

// Sequential computes the affine-gap alignment cost with the reference
// rolling-row recurrence. Empty series are legal (all-gap alignments).
func Sequential(x, y []float64, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n, m := len(x), len(y)
	oe := p.Open + p.Ext
	// Rolling rows indexed by j: prev is lattice row i-1, cur is row i.
	pM := make([]float64, m+1)
	pX := make([]float64, m+1)
	pY := make([]float64, m+1)
	cM := make([]float64, m+1)
	cX := make([]float64, m+1)
	cY := make([]float64, m+1)
	// Row 0: the empty-x boundary. Only Iy (gap run over y) is live.
	cM[0], cX[0], cY[0] = 0, inf, inf
	for j := 1; j <= m; j++ {
		cM[j], cX[j] = inf, inf
		cY[j] = math.Min(cM[j-1]+oe, math.Min(cY[j-1]+p.Ext, cX[j-1]+oe))
	}
	for i := 1; i <= n; i++ {
		pM, cM = cM, pM
		pX, cX = cX, pX
		pY, cY = cY, pY
		// Column 0: the empty-y boundary. Only Ix (gap run over x) is live.
		cM[0], cY[0] = inf, inf
		cX[0] = math.Min(pM[0]+oe, math.Min(pX[0]+p.Ext, pY[0]+oe))
		for j := 1; j <= m; j++ {
			s := sub(x[i-1], y[j-1])
			cM[j], cX[j], cY[j] = interior(s,
				pM[j-1], pX[j-1], pY[j-1],
				pM[j], pX[j], pY[j],
				cM[j-1], cX[j-1], cY[j-1],
				oe, p.Ext)
		}
	}
	return math.Min(cM[m], math.Min(cX[m], cY[m])), nil
}
