package align

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates every alignment (sequence of match / gap-in-y /
// gap-in-x moves) recursively, charging affine gaps by tracking the
// previous move — the independent oracle for small instances.
func bruteForce(x, y []float64, p Params) float64 {
	const (
		moveNone = iota
		moveMatch
		moveGapX // consume x[i] against a gap
		moveGapY // consume y[j] against a gap
	)
	var rec func(i, j, last int) float64
	rec = func(i, j, last int) float64 {
		if i == len(x) && j == len(y) {
			return 0
		}
		best := math.Inf(1)
		if i < len(x) && j < len(y) {
			if v := sub(x[i], y[j]) + rec(i+1, j+1, moveMatch); v < best {
				best = v
			}
		}
		if i < len(x) {
			c := p.Ext
			if last != moveGapX {
				c += p.Open
			}
			if v := c + rec(i+1, j, moveGapX); v < best {
				best = v
			}
		}
		if j < len(y) {
			c := p.Ext
			if last != moveGapY {
				c += p.Open
			}
			if v := c + rec(i, j+1, moveGapY); v < best {
				best = v
			}
		}
		return best
	}
	return rec(0, 0, moveNone)
}

func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(rng.Intn(19) - 9)
	}
	return s
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		x := randSeries(rng, rng.Intn(6))
		y := randSeries(rng, rng.Intn(6))
		p := Params{Open: float64(rng.Intn(5)), Ext: float64(1 + rng.Intn(3))}
		got, err := Sequential(x, y, p)
		if err != nil {
			t.Fatalf("Sequential: %v", err)
		}
		want := bruteForce(x, y, p)
		if got != want {
			t.Fatalf("trial %d: |x|=%d |y|=%d %+v: Sequential %v, brute force %v",
				trial, len(x), len(y), p, got, want)
		}
	}
}

func TestEmptySeries(t *testing.T) {
	p := Params{Open: 3, Ext: 2}
	if got, _ := Sequential(nil, nil, p); got != 0 {
		t.Fatalf("align(empty, empty) = %v, want 0", got)
	}
	y := []float64{1, 2, 3}
	// One gap run over y: Open + 3*Ext.
	if got, _ := Sequential(nil, y, p); got != 3+3*2 {
		t.Fatalf("align(empty, y) = %v, want %v", got, 3+3*2)
	}
	if got, _ := Sequential(y, nil, p); got != 3+3*2 {
		t.Fatalf("align(y, empty) = %v, want %v", got, 3+3*2)
	}
	if got, _ := SolveFast(nil, y, p); got != 3+3*2 {
		t.Fatalf("SolveFast(empty, y) = %v, want %v", got, 3+3*2)
	}
}

func TestFastBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		x := randSeries(rng, rng.Intn(20))
		y := randSeries(rng, rng.Intn(20))
		p := Params{Open: float64(rng.Intn(6)), Ext: float64(rng.Intn(4))}
		want, err := Sequential(x, y, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveFast(x, y, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d |x|=%d |y|=%d: fast %v != sequential %v", trial, len(x), len(y), got, want)
		}
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		x := randSeries(rng, rng.Intn(10))
		y := randSeries(rng, rng.Intn(10))
		p := Params{Open: float64(rng.Intn(5)), Ext: float64(rng.Intn(3))}
		a, _ := Sequential(x, y, p)
		b, _ := Sequential(y, x, p)
		if a != b {
			t.Fatalf("align(x,y)=%v != align(y,x)=%v", a, b)
		}
	}
}

func TestSweepBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, b := range []int{1, 2, 7} {
		n, m := rng.Intn(10), rng.Intn(10)
		p := Params{Open: 2, Ext: 1}
		pairs := make([]Pair, b)
		want := make([]float64, b)
		for i := range pairs {
			pairs[i] = Pair{X: randSeries(rng, n), Y: randSeries(rng, m)}
			w, err := Sequential(pairs[i].X, pairs[i].Y, p)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = w
		}
		got, cycles, err := SweepBatch(pairs, p)
		if err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
		if wantCyc := b*(n+1) + m; cycles != wantCyc {
			t.Fatalf("b=%d: cycles %d, want %d", b, cycles, wantCyc)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("b=%d i=%d: batch %v != sequential %v", b, i, got[i], want[i])
			}
		}
		fast, fcyc, err := SweepBatchFast(pairs, p)
		if err != nil {
			t.Fatalf("b=%d fast: %v", b, err)
		}
		if fcyc != cycles {
			t.Fatalf("b=%d: fast cycles %d != %d", b, fcyc, cycles)
		}
		for i := range want {
			if fast[i] != want[i] {
				t.Fatalf("b=%d i=%d: fast batch %v != sequential %v", b, i, fast[i], want[i])
			}
		}
	}
}

func TestSweepBatchShapeMismatch(t *testing.T) {
	pairs := []Pair{{X: []float64{1}, Y: []float64{1, 2}}, {X: []float64{1, 2}, Y: []float64{1, 2}}}
	if _, _, err := SweepBatch(pairs, Params{}); err == nil {
		t.Fatal("mixed-shape batch accepted")
	}
}

func TestBadParams(t *testing.T) {
	if _, err := Sequential(nil, nil, Params{Open: -1}); err == nil {
		t.Fatal("negative open accepted")
	}
	if _, err := SolveFast(nil, nil, Params{Ext: math.NaN()}); err == nil {
		t.Fatal("NaN ext accepted")
	}
}

func TestSolveFastSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts randomly under the race detector")
	}
	x, y := randSeries(rand.New(rand.NewSource(1)), 64), randSeries(rand.New(rand.NewSource(2)), 64)
	p := Params{Open: 2, Ext: 1}
	if _, err := SolveFast(x, y, p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := SolveFast(x, y, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveFast allocates %v per op in steady state, want 0", allocs)
	}
}
