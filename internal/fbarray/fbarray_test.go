package fbarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/metrics"
	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

var mp = semiring.MinPlus{}

func TestFigure1bFifteenIterations(t *testing.T) {
	// The Figure 1(b) instance: 4 stages, 3 values each. The paper states
	// the process completes in 15 iterations ((N+1)*m).
	rng := rand.New(rand.NewSource(1))
	p := multistage.RandomNodeValued(rng, 4, 3, 0, 10)
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations() != 15 {
		t.Errorf("Iterations = %d, want 15", a.Iterations())
	}
	res, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Solve(mp)
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", res.Cost, want)
	}
}

func TestMatchesBaselineAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 4, 6, 9} {
		for _, m := range []int{1, 2, 3, 5, 8} {
			p := multistage.RandomNodeValued(rng, n, m, 0, 10)
			res, err := Solve(p)
			if err != nil {
				t.Fatalf("n=%d m=%d: %v", n, m, err)
			}
			want := p.Solve(mp)
			if math.Abs(res.Cost-want) > 1e-9 {
				t.Errorf("n=%d m=%d: cost %v, want %v", n, m, res.Cost, want)
			}
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := multistage.RandomNodeValued(rng, 2+rng.Intn(5), 2+rng.Intn(4), 0, 10)
		res, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		// The reconstructed assignment must attain the reported cost.
		var c float64
		for k := 0; k+1 < len(res.Path); k++ {
			c += multistage.AbsDiff(p.Values[k][res.Path[k]], p.Values[k+1][res.Path[k+1]])
		}
		if math.Abs(c-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: path cost %v != reported %v (path %v)", trial, c, res.Cost, res.Path)
		}
		// And the cost must be optimal.
		if want := p.SolvePath(mp); math.Abs(res.Cost-want.Cost) > 1e-9 {
			t.Fatalf("trial %d: cost %v, optimal %v", trial, res.Cost, want.Cost)
		}
	}
}

func TestGoroutinesMatchLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		p := multistage.RandomNodeValued(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0, 10)
		a, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		lres, err := a.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		gres, err := a.Run(true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lres.Cost-gres.Cost) > 1e-9 {
			t.Errorf("trial %d: lockstep %v != goroutine %v", trial, lres.Cost, gres.Cost)
		}
		for i := range lres.Path {
			if lres.Path[i] != gres.Path[i] {
				t.Errorf("trial %d: path[%d] %d vs %d", trial, i, lres.Path[i], gres.Path[i])
			}
		}
		for i := range lres.Busy {
			if lres.Busy[i] != gres.Busy[i] {
				t.Errorf("trial %d: busy[%d] %d vs %d", trial, i, lres.Busy[i], gres.Busy[i])
			}
		}
	}
}

func TestBusyCountsMatchPUNumerator(t *testing.T) {
	// Total busy cycles must equal the serial iteration count
	// (N-1)m^2 + m, making measured PU exactly the paper's
	// ((N-1)m^2+m)/((N+1)m*m).
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, m int }{{2, 2}, {4, 3}, {8, 5}, {16, 4}} {
		p := multistage.RandomNodeValued(rng, tc.n, tc.m, 0, 10)
		a, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range res.Busy {
			total += b
		}
		if want := a.SerialIterations(); total != want {
			t.Errorf("N=%d m=%d: busy total %d, want %d", tc.n, tc.m, total, want)
		}
		pu := metrics.PU(a.SerialIterations(), a.Iterations(), tc.m)
		if pu <= 0 || pu > 1 {
			t.Errorf("N=%d m=%d: PU = %v out of range", tc.n, tc.m, pu)
		}
	}
}

func TestPUApproachesOne(t *testing.T) {
	// Section 3.2: PU = ((N-1)m^2+m)/((N+1)m*m) ~= 1 for large N.
	a := &Array{N: 1000, M: 10}
	pu := metrics.PU(a.SerialIterations(), a.Iterations(), a.M)
	if pu < 0.99 {
		t.Errorf("PU = %v, want >= 0.99 for N=1000", pu)
	}
}

func TestCustomCostFunction(t *testing.T) {
	// A quadratic cost (circuit-design flavour: power dissipation).
	p := &multistage.NodeValued{
		Values: [][]float64{{1, 2}, {3, 5}, {2, 8}},
		F:      func(x, y float64) float64 { return (x - y) * (x - y) },
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Solve(mp)
	if math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", res.Cost, want)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(&multistage.NodeValued{Values: [][]float64{{1}}, F: multistage.AbsDiff}); err == nil {
		t.Error("1-stage problem accepted")
	}
	ragged := &multistage.NodeValued{Values: [][]float64{{1, 2}, {3}}, F: multistage.AbsDiff}
	if _, err := New(ragged); err == nil {
		t.Error("ragged problem accepted")
	}
	if _, err := New(&multistage.NodeValued{Values: [][]float64{{1}, {2}}}); err == nil {
		t.Error("nil cost function accepted")
	}
}

func TestSingleValueStages(t *testing.T) {
	// m = 1: the path is forced; the array must still produce it.
	p := &multistage.NodeValued{
		Values: [][]float64{{3}, {7}, {2}},
		F:      multistage.AbsDiff,
	}
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0 + 5.0; math.Abs(res.Cost-want) > 1e-9 {
		t.Errorf("cost %v, want %v", res.Cost, want)
	}
	for _, idx := range res.Path {
		if idx != 0 {
			t.Errorf("path %v, want all zeros", res.Path)
		}
	}
}

func TestPropertyMatchesBaseline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := multistage.RandomNodeValued(rng, 2+rng.Intn(6), 1+rng.Intn(6), 0, 20)
		res, err := Solve(p)
		if err != nil {
			return false
		}
		return math.Abs(res.Cost-p.Solve(mp)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRerunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := multistage.RandomNodeValued(rng, 5, 4, 0, 10)
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("rerun differs: %v vs %v", r1.Cost, r2.Cost)
	}
}
