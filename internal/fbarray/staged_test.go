package fbarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdp/internal/multistage"
)

func randomStaged(rng *rand.Rand, n, m int) *multistage.StagedNodeValued {
	p := &multistage.StagedNodeValued{
		// Stage-dependent cost: the stage index scales the distance, so a
		// stage-independent array would get this wrong.
		FK: func(k int, x, y float64) float64 {
			return float64(k+1) * math.Abs(x-y)
		},
	}
	for k := 0; k < n; k++ {
		vs := make([]float64, m)
		for i := range vs {
			vs[i] = rng.Float64() * 10
		}
		p.Values = append(p.Values, vs)
	}
	return p
}

func TestStagedMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		p := randomStaged(rng, 2+rng.Intn(5), 2+rng.Intn(4))
		a, err := NewStaged(mp, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Solve(mp); math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: staged array %v, baseline %v", trial, res.Cost, want)
		}
		// And against the expanded-graph solver with path check.
		want2 := multistage.SolveOptimal(mp, p.Expand())
		if math.Abs(res.Cost-want2.Cost) > 1e-9 {
			t.Fatalf("trial %d: staged array %v, graph %v", trial, res.Cost, want2.Cost)
		}
	}
}

func TestStagedPathAttainsCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomStaged(rng, 5, 4)
	a, err := NewStaged(mp, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	var c float64
	for k := 0; k+1 < len(res.Path); k++ {
		c += p.FK(k, p.Values[k][res.Path[k]], p.Values[k+1][res.Path[k+1]])
	}
	if math.Abs(c-res.Cost) > 1e-9 {
		t.Fatalf("path cost %v != reported %v", c, res.Cost)
	}
}

func TestStagedGoroutinesMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomStaged(rng, 4, 3)
	a, err := NewStaged(mp, p)
	if err != nil {
		t.Fatal(err)
	}
	lock, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	goro, err := a.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if lock.Cost != goro.Cost {
		t.Errorf("lockstep %v != goroutines %v", lock.Cost, goro.Cost)
	}
}

func TestStagedErrors(t *testing.T) {
	if _, err := NewStaged(mp, &multistage.StagedNodeValued{Values: [][]float64{{1}}}); err == nil {
		t.Error("1-stage problem accepted")
	}
	bad := &multistage.StagedNodeValued{
		Values: [][]float64{{1, 2}, {3}},
		FK:     func(int, float64, float64) float64 { return 0 },
	}
	if _, err := NewStaged(mp, bad); err == nil {
		t.Error("ragged staged problem accepted")
	}
}

func TestStagedReducesToUnstaged(t *testing.T) {
	// With a stage-independent FK, NewStaged must agree with New.
	rng := rand.New(rand.NewSource(4))
	nv := multistage.RandomNodeValued(rng, 5, 3, 0, 10)
	st := &multistage.StagedNodeValued{
		Values: nv.Values,
		FK:     func(_ int, x, y float64) float64 { return nv.F(x, y) },
	}
	a1, err := New(nv)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewStaged(mp, st)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("unstaged %v != staged %v", r1.Cost, r2.Cost)
	}
}

func TestPropertyStagedOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomStaged(rng, 2+rng.Intn(4), 1+rng.Intn(4))
		a, err := NewStaged(mp, p)
		if err != nil {
			return false
		}
		res, err := a.Run(false)
		if err != nil {
			return false
		}
		return math.Abs(res.Cost-p.Solve(mp)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
