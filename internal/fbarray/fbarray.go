// Package fbarray implements Design 3 of the paper (Figure 5): a linear
// systolic array with a feedback controller that solves the node-valued
// serial optimisation problem of equation (4) — min over assignments of
// sum_k f(X_k, X_{k+1}) — by the variable-elimination recurrence of
// equations (10)-(13).
//
// Each PE P_i holds three registers: R_i (the pipeline register through
// which input data pass), and K_i/H_i (the fed-back previous-stage node
// value and its partial cost h), plus three operation units: F (edge-cost
// evaluation), A (addition), and C (comparison). Stage-k values enter P_1
// one per iteration; as token x_{k,j} passes P_i it accumulates
//
//	h(x_{k,j}) = min_i ( h(x_{k-1,i}) + f(x_{k-1,i}, x_{k,j}) )
//
// one term per PE. Tokens leaving P_m are fed back round-robin — PE i
// captures the feedback bus when t mod m == i, the paper's circulating
// token on a single broadcast bus — into K_i/H_i just in time for the next
// stage's tokens. After N*m iterations a final comparison token circulates
// with F = 0 folding min_i h(x_{N,i}); the optimum emerges from P_m at
// iteration (N+1)*m, the paper's total.
//
// Because edge costs are computed from node values by the F unit, the
// array inputs one word per iteration — the order-of-magnitude
// input-bandwidth reduction over Designs 1-2 that Section 3.2 claims.
//
// Path registers: each token carries the index of the predecessor
// attaining its current h; P_m records these (N registers of m indices),
// and the optimal assignment is traced back after the run, as in the
// paper's path-register scheme.
//
// New assumes the stage-independent cost function of the paper's
// simplified Figure 5; NewStaged restores the per-stage F_i subscripts
// for stage-dependent costs, and NewSemiring generalises the comparison
// unit to any comparative semiring (e.g. (MAX,+)).
package fbarray

import (
	"fmt"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
	"systolicdp/internal/systolic"
)

// Array is a configured Design-3 feedback array for one node-valued
// problem.
type Array struct {
	N, M    int // stages, values per stage
	net     *systolic.Array
	pes     []*pe
	sinkIdx int
	s       semiring.Comparative
}

// pe is one Design-3 processing element (Figure 5(b)). The comparison
// unit C is semiring-generic.
type pe struct {
	i, m, n int
	t       int
	k, h    float64 // K_i and H_i registers
	fk      multistage.StagedCostFunc
	s       semiring.Comparative
}

func (p *pe) NumIn() int  { return 2 } // 0: pipe, 1: feedback bus
func (p *pe) NumOut() int { return 1 }

func (p *pe) Reset() {
	p.t = 0
	p.k = 0
	p.h = 0
}

func (p *pe) Step(in []systolic.Token) ([]systolic.Token, bool) {
	t := p.t
	p.t++
	// Latch the feedback bus when the circulating token selects this PE;
	// the freshly latched K/H are usable in the same iteration (the bus
	// feeds the F and A units combinationally in Figure 5(b)).
	if fb := in[1]; fb.Valid && t%p.m == p.i {
		p.k, p.h = fb.V, fb.W
	}
	tok := in[0]
	if !tok.Valid {
		return []systolic.Token{tok}, false
	}
	switch {
	case tok.Ctl == 0:
		// Stage-1 tokens: h(x_1) = One (0) by definition; shift only.
		return []systolic.Token{tok}, false
	case tok.Ctl < p.n:
		// A(dd) then C(ompare): fold one elimination term. The F unit is
		// subscripted by the incoming token's stage (the general Figure 5
		// with per-stage F_i units).
		cand := p.s.Mul(p.h, p.fk(tok.Ctl-1, p.k, tok.V))
		if p.s.Better(cand, tok.W) {
			tok.W = cand
			tok.Tag = p.i // path register: predecessor index
		}
		return []systolic.Token{tok}, true
	default:
		// Final comparison token: F = 0, fold the H_i registers.
		if p.s.Better(p.h, tok.W) {
			tok.W = p.h
			tok.Tag = p.i
		}
		return []systolic.Token{tok}, true
	}
}

// New builds a Design-3 array over (MIN,+) for the node-valued problem p,
// which must be uniform (the same number of quantized values in every
// stage) with a stage-independent cost function, the regularity Figure 5
// assumes.
func New(p *multistage.NodeValued) (*Array, error) {
	return NewSemiring(semiring.MinPlus{}, p)
}

// NewSemiring builds a Design-3 array over any comparative semiring;
// (MAX,+) maximises total reward instead of minimising cost.
func NewSemiring(s semiring.Comparative, p *multistage.NodeValued) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := p.F
	return newArray(s, p.Values, p.Stages(), func(_ int, x, y float64) float64 { return f(x, y) })
}

// NewStaged builds a Design-3 array whose F units are subscripted by
// stage (the general form of Figure 5), accepting stage-dependent edge
// costs such as time-varying tracking references.
func NewStaged(s semiring.Comparative, p *multistage.StagedNodeValued) (*Array, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newArray(s, p.Values, p.Stages(), p.FK)
}

func newArray(s semiring.Comparative, values [][]float64, n int, fk multistage.StagedCostFunc) (*Array, error) {
	m := len(values[0])
	for _, vs := range values[1:] {
		if len(vs) != m {
			return nil, fmt.Errorf("fbarray: Design 3 requires the same number of values in every stage")
		}
	}
	a := &Array{N: n, M: m, s: s}
	net := &systolic.Array{}
	for i := 0; i < m; i++ {
		e := &pe{i: i, m: m, n: n, fk: fk, s: s}
		a.pes = append(a.pes, e)
		net.PEs = append(net.PEs, e)
	}
	// External source into P_1's pipe port: stage values then the final
	// comparison token. Copy the values so later mutation of the problem
	// cannot corrupt a queued run.
	vcopy := make([][]float64, n)
	for k := range vcopy {
		vcopy[k] = append([]float64(nil), values[k]...)
	}
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0},
		Source: func(t int) systolic.Token {
			switch {
			case t < n*m:
				k, j := t/m, t%m
				w := s.Zero()
				if k == 0 {
					w = s.One()
				}
				return systolic.Token{V: vcopy[k][j], W: w, Tag: -1, Ctl: k, Valid: true}
			case t == n*m:
				return systolic.Token{V: 0, W: s.Zero(), Tag: -1, Ctl: n, Valid: true}
			default:
				return systolic.Bubble()
			}
		},
	})
	// Pipe wires P_i -> P_{i+1}.
	for i := 0; i+1 < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: i, Port: 0},
			To:   systolic.Endpoint{PE: i + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	// Feedback bus: P_m's output fans out to every PE's port 1.
	for i := 0; i < m; i++ {
		net.Wires = append(net.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: m - 1, Port: 0},
			To:   systolic.Endpoint{PE: i, Port: 1},
			Init: systolic.Bubble(),
		})
	}
	a.sinkIdx = len(net.Wires)
	net.Wires = append(net.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: m - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	a.net = net
	return a, nil
}

// SetParallelism sets the lock-step engine's compute-phase worker count
// (see systolic.Array.Parallelism): <=1 runs sequentially, >1 shards the
// per-cycle PE loop, negative uses GOMAXPROCS.
func (a *Array) SetParallelism(p int) { a.net.Parallelism = p }

// SetParallelThreshold sets the minimum PE count at which the parallel
// compute phase engages; 0 keeps the engine default, 1 forces it on.
func (a *Array) SetParallelThreshold(n int) { a.net.ParallelThreshold = n }

// LockstepWorkers reports the compute-phase worker count a lock-step run
// will use after threshold gating and clamping.
func (a *Array) LockstepWorkers() int { return a.net.LockstepWorkers() }

// Iterations returns the paper's total iteration count (N+1)*m.
func (a *Array) Iterations() int { return (a.N + 1) * a.M }

// SerialIterations returns the single-processor step count
// (N-1)*m^2 + m, the numerator of the PU expression in Section 3.2.
func (a *Array) SerialIterations() int { return (a.N-1)*a.M*a.M + a.M }

// Result of a Design-3 run: the optimal objective value, one optimal
// assignment (value index per stage, reconstructed from the path
// registers), and per-PE busy counts.
type Result struct {
	Cost float64
	Path []int
	Busy []int
}

// Run executes the array. If goroutines is true the goroutine-per-PE
// runner is used, otherwise the lock-step runner. The array is
// re-runnable: every run resets the network first, so repeated runs are
// bit-identical (cost, path, and busy counts).
func (a *Array) Run(goroutines bool) (*Result, error) {
	return a.RunObserved(goroutines, nil, nil)
}

// RunTraced is Run on the lock-step runner with a wire-trace callback
// (see the trace package) invoked after every cycle with the latched
// wire values.
func (a *Array) RunTraced(trace func(cycle int, wires []systolic.Token)) (*Result, error) {
	return a.RunObserved(false, trace, nil)
}

// ObservedCycles reports the number of cycles an observed run executes,
// for sizing cycle recorders.
func (a *Array) ObservedCycles() int { return a.Iterations() }

// RunObserved is Run with observability hooks: peTrace receives every
// PE's busy bit each cycle (both runners; see systolic.PETrace for the
// concurrency contract), and wireTrace receives per-cycle wire snapshots
// (lock-step only).
func (a *Array) RunObserved(goroutines bool, wireTrace func(cycle int, wires []systolic.Token), peTrace systolic.PETrace) (*Result, error) {
	if goroutines && wireTrace != nil {
		return nil, fmt.Errorf("fbarray: wire traces require the lock-step runner")
	}
	a.net.Reset()
	cycles := a.Iterations()
	var res *systolic.Result
	var err error
	if goroutines {
		res, err = a.net.RunGoroutinesObserved(cycles, peTrace)
	} else {
		res, err = a.net.RunLockstepObserved(cycles, wireTrace, peTrace)
	}
	if err != nil {
		return nil, err
	}
	n, m := a.N, a.M
	// Path registers in P_m: token (k, j) exits P_m at cycle k*m + j + m-1
	// carrying the best stage-(k-1) predecessor of value j in stage k.
	pathreg := make([][]int, n)
	for k := range pathreg {
		pathreg[k] = make([]int, m)
	}
	out := &Result{Cost: a.s.Zero(), Busy: res.Busy}
	bestLast := -1
	for _, rec := range res.Sunk[a.sinkIdx] {
		if !rec.Token.Valid {
			continue
		}
		u := rec.Cycle - (m - 1)
		if u < 0 {
			continue
		}
		k, j := u/m, u%m
		switch {
		case k < n:
			pathreg[k][j] = rec.Token.Tag
		case k == n && j == 0:
			// The final comparison token.
			out.Cost = rec.Token.W
			bestLast = rec.Token.Tag
		}
	}
	if bestLast < 0 {
		return nil, fmt.Errorf("fbarray: final comparison token not observed")
	}
	path := make([]int, n)
	path[n-1] = bestLast
	for k := n - 1; k >= 1; k-- {
		path[k-1] = pathreg[k][path[k]]
	}
	out.Path = path
	return out, nil
}

// Solve builds and runs the array in lock-step mode.
func Solve(p *multistage.NodeValued) (*Result, error) {
	a, err := New(p)
	if err != nil {
		return nil, err
	}
	return a.Run(false)
}

// WireNames labels the array's wires for trace rendering: the stage-value
// source, the pipe stages, the feedback-bus fan-out, and the sink.
func (a *Array) WireNames() []string {
	names := make([]string, 0, len(a.net.Wires))
	names = append(names, "x>P1")
	for i := 0; i+1 < a.M; i++ {
		names = append(names, fmt.Sprintf("P%d>P%d", i+1, i+2))
	}
	for i := 0; i < a.M; i++ {
		names = append(names, fmt.Sprintf("fb>P%d", i+1))
	}
	names = append(names, fmt.Sprintf("P%d>out", a.M))
	return names
}

// InputWordsPerCycle reports the external input bandwidth of Design 3:
// one node value per iteration, since edge costs are computed on-array by
// the F units — the order-of-magnitude reduction over Designs 1-2 that
// Section 3.2 claims.
func (a *Array) InputWordsPerCycle() int { return 1 }
