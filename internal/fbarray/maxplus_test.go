package fbarray

import (
	"math"
	"math/rand"
	"testing"

	"systolicdp/internal/multistage"
	"systolicdp/internal/semiring"
)

func TestMaxPlusMatchesBaseline(t *testing.T) {
	s := semiring.MaxPlus{}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		p := multistage.RandomNodeValued(rng, 2+rng.Intn(5), 2+rng.Intn(4), 0, 10)
		a, err := NewSemiring(s, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(false)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Solve(s); math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: max-plus cost %v, want %v", trial, res.Cost, want)
		}
		// The reconstructed assignment must attain the reported reward.
		var c float64
		for k := 0; k+1 < len(res.Path); k++ {
			c += multistage.AbsDiff(p.Values[k][res.Path[k]], p.Values[k+1][res.Path[k+1]])
		}
		if math.Abs(c-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: path reward %v != reported %v", trial, c, res.Cost)
		}
	}
}

func TestMaxPlusAtLeastMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := multistage.RandomNodeValued(rng, 5, 4, 0, 10)
	lo, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSemiring(semiring.MaxPlus{}, p)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := a.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Cost < lo.Cost-1e-9 {
		t.Errorf("max %v < min %v", hi.Cost, lo.Cost)
	}
}
