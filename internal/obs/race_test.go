package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSetKindConcurrentWithExport is the -race regression for the escape
// hazard fixed in span.go: a handler calling SetKind after its span has
// escaped to the batcher/recorder used to race exports reading Kind.
// Under `go test -race` this fails if Kind ever leaves the span mutex.
func TestSetKindConcurrentWithExport(t *testing.T) {
	r := NewSpanRecorder(8)
	base := time.Now()
	s := NewReqSpan("race", "", base)
	r.Add(s) // span escapes before its kind is known, like a real request

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.SetKind("graph")
			s.SetTrace("cafe", "beef")
			s.Observe("decode", base, base.Add(time.Microsecond))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.Kind()
			_ = r.Trace()
			_ = r.WireSpans()
		}
	}()
	wg.Wait()
	if s.Kind() != "graph" {
		t.Errorf("kind %q after concurrent writes, want graph", s.Kind())
	}
}
