// Package obs is the unified observability layer: it turns cycle-level
// activity of the systolic runners and request-level activity of the
// serving layer into Chrome trace-event ("Perfetto") JSON, the format
// ui.perfetto.dev and chrome://tracing load directly.
//
// The sinks that live here:
//
//   - Trace/Event: the trace-event JSON object model and writer;
//   - CycleRecorder: a per-PE busy/idle recorder that plugs into the
//     engines' PETrace hooks (both runners) and the lock-step wire trace,
//     exporting one track per PE plus counter tracks for busy-PE count,
//     valid tokens on wires and instantaneous utilization — the measured
//     counterpart of the paper's processor-utilization (PU) tables;
//   - ReqSpan/SpanRecorder: request-lifecycle spans for dpserve
//     (decode -> queue-wait -> batch-assembly -> solve -> encode) kept in
//     a ring buffer and exported at /debug/dptrace;
//   - HopSpan/HopRecorder: the router's hop spans (decode_hash ->
//     candidate_pick -> admission_check -> per-attempt proxy phases);
//   - TraceContext: the X-Dp-Trace distributed trace context that links
//     a router hop to the replica request span it caused;
//   - WireSpan: the additive cross-process span exchange schema served
//     at /debug/dptrace?format=wire by every process;
//   - Collector/FleetTrace: pulls wire spans from a fleet, stitches them
//     by trace id into one Perfetto document (a track per process), and
//     drives tail-based slow-trace logging.
//
// The paper's whole evaluation is observational — iteration counts,
// utilization ratios, data-movement pictures — so this package is what
// lets a run be checked against the closed forms instead of trusted.
package obs

import (
	"encoding/json"
	"io"
)

// Trace-event phase codes used by this package (the subset of the Chrome
// trace-event spec that Perfetto renders without configuration).
const (
	PhaseComplete = "X" // a span: ts + dur
	PhaseCounter  = "C" // a counter sample: args hold series values
	PhaseMetadata = "M" // process/thread naming
	PhaseInstant  = "i" // a point event
)

// Event is one Chrome trace-event. Ts and Dur are in microseconds (the
// trace-event unit); cycle-level traces map one logical cycle to 1us so
// cycle numbers read directly off the Perfetto timeline.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// Trace is a trace-event JSON object: the "JSON Object Format" of the
// spec, with run metadata riding in OtherData.
type Trace struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// NewTrace creates an empty trace displaying milliseconds.
func NewTrace() *Trace {
	return &Trace{TraceEvents: []Event{}, DisplayTimeUnit: "ms", OtherData: map[string]string{}}
}

// NameProcess appends a process_name metadata event for pid.
func (t *Trace) NameProcess(pid int, name string) {
	t.TraceEvents = append(t.TraceEvents, Event{
		Name: "process_name", Ph: PhaseMetadata, Pid: pid,
		Args: map[string]any{"name": name},
	})
}

// NameThread appends a thread_name metadata event for (pid, tid).
func (t *Trace) NameThread(pid, tid int, name string) {
	t.TraceEvents = append(t.TraceEvents, Event{
		Name: "thread_name", Ph: PhaseMetadata, Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// Span appends a complete ("X") event.
func (t *Trace) Span(pid, tid int, name, cat string, ts, dur float64, args map[string]any) {
	t.TraceEvents = append(t.TraceEvents, Event{
		Name: name, Ph: PhaseComplete, Pid: pid, Tid: tid, Cat: cat,
		Ts: ts, Dur: dur, Args: args,
	})
}

// Counter appends a counter ("C") sample; each args key is one series on
// the counter track named name.
func (t *Trace) Counter(pid int, name string, ts float64, args map[string]any) {
	t.TraceEvents = append(t.TraceEvents, Event{
		Name: name, Ph: PhaseCounter, Pid: pid, Ts: ts, Args: args,
	})
}

// Write renders the trace as indented JSON. The encoding is deterministic
// (struct field order plus encoding/json's sorted map keys), so golden
// files are stable.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}
