package obs

import "testing"

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("minted context %q has wrong id lengths", tc.String())
	}
	got, ok := ParseTraceContext(tc.String())
	if !ok || got != tc {
		t.Errorf("round trip %q -> %+v ok=%v, want %+v", tc.String(), got, ok, tc)
	}
	// Whitespace tolerated; hop span ids parse as parents.
	if got, ok := ParseTraceContext(" abc123-def456 "); !ok || got.TraceID != "abc123" || got.SpanID != "def456" {
		t.Errorf("lenient parse failed: %+v ok=%v", got, ok)
	}
}

func TestParseTraceContextRejectsGarbage(t *testing.T) {
	for _, v := range []string{
		"", "-", "abc-", "-abc", "abc", "xyz-123", "123-xyz",
		"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef0-ab", // trace id > 64 chars
	} {
		if _, ok := ParseTraceContext(v); ok {
			t.Errorf("ParseTraceContext(%q) accepted garbage", v)
		}
	}
}

func TestNewSpanIDUnique(t *testing.T) {
	if a, b := NewSpanID(), NewSpanID(); a == b || len(a) != 16 {
		t.Errorf("span ids %q %q: want 16 hex chars, distinct", a, b)
	}
}
