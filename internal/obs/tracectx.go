package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// TraceHeader carries the distributed trace context across a proxy hop,
// in the spirit of W3C traceparent but without its version/flag fields:
//
//	X-Dp-Trace: <32 hex trace id>-<16 hex parent span id>
//
// The router mints the trace id at the edge and sends its hop span's id
// as the parent, so a replica's request span can link itself under the
// hop that caused it; a trace collector then stitches both into one
// timeline keyed by the trace id.
const TraceHeader = "X-Dp-Trace"

// TraceContext is one hop's view of a distributed trace: the trace it
// belongs to and the span on this side of the wire.
type TraceContext struct {
	TraceID string // 32 hex chars, shared by every hop of the request
	SpanID  string // 16 hex chars, this hop's span
}

// NewTraceContext mints a fresh trace with a fresh root span id.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newHex(16), SpanID: NewSpanID()}
}

// NewSpanID mints a 16-hex-char span id.
func NewSpanID() string { return newHex(8) }

// newHex returns 2n random hex chars, time-seeded if crypto/rand fails
// (same policy as NewRequestID: ids must never error a request).
func newHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%0*x", 2*n, time.Now().UnixNano())[:2*n]
	}
	return hex.EncodeToString(b)
}

// String renders the context in TraceHeader wire form.
func (tc TraceContext) String() string { return tc.TraceID + "-" + tc.SpanID }

// ParseTraceContext reads a TraceHeader value. It accepts any
// "<hex>-<hex>" pair with plausible lengths rather than strictly 32-16,
// so a future caller minting shorter ids still traces; garbage returns
// ok=false and the request proceeds untraced.
func ParseTraceContext(v string) (TraceContext, bool) {
	v = strings.TrimSpace(v)
	i := strings.IndexByte(v, '-')
	if i <= 0 || i == len(v)-1 {
		return TraceContext{}, false
	}
	traceID, spanID := v[:i], v[i+1:]
	if !isHex(traceID) || !isHex(spanID) || len(traceID) > 64 || len(spanID) > 64 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: spanID}, true
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
