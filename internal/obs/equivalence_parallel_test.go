package obs

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"systolicdp/internal/bcastarray"
	"systolicdp/internal/fbarray"
	"systolicdp/internal/multistage"
	"systolicdp/internal/pipearray"
	"systolicdp/internal/semiring"
)

// The ISSUE's engine-equivalence requirement for the parallel compute
// phase: sequential lock-step, parallel lock-step, and the goroutine
// runner must produce identical results, cycle counts, and per-PE busy
// totals for designs 1-3, across odd and even PE counts and parallelism
// ∈ {1, 2, NumCPU}.

var workerGrid = []int{1, 2, runtime.NumCPU()}

// graphInstanceM is graphInstance with a configurable per-stage width, so
// the grid covers odd and even PE counts.
func graphInstanceM(t *testing.T, seed int64, m int) ([]float64, *multistage.Graph) {
	t.Helper()
	mp := semiring.MinPlus{}
	rng := rand.New(rand.NewSource(seed))
	inner := multistage.RandomUniform(rng, 3, m, 1, 10)
	g := multistage.SingleSourceSink(mp, inner)
	mats := g.Matrices()
	return mats[len(mats)-1].Col(0), g
}

func TestDesign1ParallelEngineEquivalence(t *testing.T) {
	for _, m := range []int{3, 4} {
		v, g := graphInstanceM(t, 7, m)
		mats := g.Matrices()
		build := func() *pipearray.Array {
			arr, err := pipearray.New(mats[:len(mats)-1], v)
			if err != nil {
				t.Fatal(err)
			}
			return arr
		}
		seq := build()
		seqRec := NewCycleRecorder(seq.M, seq.ObservedCycles())
		seqOut, seqRes, err := seq.RunObserved(false, nil, seqRec.PETrace())
		if err != nil {
			t.Fatal(err)
		}
		goroOut, goroRes, err := build().RunObserved(true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqOut, goroOut) || !reflect.DeepEqual(seqRes.Busy, goroRes.Busy) || seqRes.Cycles != goroRes.Cycles {
			t.Fatalf("m=%d: goroutine runner disagrees with sequential lock-step", m)
		}
		for _, workers := range workerGrid {
			par := build()
			par.SetParallelism(workers)
			par.SetParallelThreshold(1)
			parRec := NewCycleRecorder(par.M, par.ObservedCycles())
			parOut, parRes, err := par.RunObserved(false, nil, parRec.PETrace())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqOut, parOut) {
				t.Errorf("m=%d workers=%d: outputs %v, want %v", m, workers, parOut, seqOut)
			}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("m=%d workers=%d: engine Result differs (cycles %d vs %d, busy %v vs %v)",
					m, workers, parRes.Cycles, seqRes.Cycles, parRes.Busy, seqRes.Busy)
			}
			if !reflect.DeepEqual(seqRec.BusyTotals(), parRec.BusyTotals()) {
				t.Errorf("m=%d workers=%d: trace busy totals %v, want %v", m, workers, parRec.BusyTotals(), seqRec.BusyTotals())
			}
		}
	}
}

func TestDesign2ParallelEngineEquivalence(t *testing.T) {
	for _, m := range []int{3, 4} {
		v, g := graphInstanceM(t, 11, m)
		mats := g.Matrices()
		arr, err := bcastarray.New(mats[:len(mats)-1], v)
		if err != nil {
			t.Fatal(err)
		}
		seqRec := NewCycleRecorder(arr.M, arr.ObservedCycles())
		seqOut, seqBusy := arr.RunLockstepObserved(seqRec.PETrace())
		goroOut, goroBusy := arr.RunGoroutinesObserved(nil)
		if !reflect.DeepEqual(seqOut, goroOut) || !reflect.DeepEqual(seqBusy, goroBusy) {
			t.Fatalf("m=%d: goroutine runner disagrees with sequential lock-step", m)
		}
		for _, workers := range workerGrid {
			par, err := bcastarray.New(mats[:len(mats)-1], v)
			if err != nil {
				t.Fatal(err)
			}
			par.SetParallelism(workers)
			par.SetParallelThreshold(1)
			parRec := NewCycleRecorder(par.M, par.ObservedCycles())
			parOut, parBusy := par.RunLockstepObserved(parRec.PETrace())
			if !reflect.DeepEqual(seqOut, parOut) {
				t.Errorf("m=%d workers=%d: outputs %v, want %v", m, workers, parOut, seqOut)
			}
			if !reflect.DeepEqual(seqBusy, parBusy) {
				t.Errorf("m=%d workers=%d: busy %v, want %v", m, workers, parBusy, seqBusy)
			}
			if !reflect.DeepEqual(seqRec.BusyTotals(), parRec.BusyTotals()) {
				t.Errorf("m=%d workers=%d: trace busy totals %v, want %v", m, workers, parRec.BusyTotals(), seqRec.BusyTotals())
			}
		}
	}
}

func TestDesign3ParallelEngineEquivalence(t *testing.T) {
	for _, m := range []int{3, 4} {
		rng := rand.New(rand.NewSource(5))
		p := multistage.RandomNodeValued(rng, 4, m, 0, 10)
		build := func() *fbarray.Array {
			arr, err := fbarray.New(p)
			if err != nil {
				t.Fatal(err)
			}
			return arr
		}
		seq := build()
		seqRec := NewCycleRecorder(seq.M, seq.ObservedCycles())
		seqRes, err := seq.RunObserved(false, nil, seqRec.PETrace())
		if err != nil {
			t.Fatal(err)
		}
		goroRes, err := build().RunObserved(true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seqRes.Cost != goroRes.Cost || !reflect.DeepEqual(seqRes.Busy, goroRes.Busy) {
			t.Fatalf("m=%d: goroutine runner disagrees with sequential lock-step", m)
		}
		for _, workers := range workerGrid {
			par := build()
			par.SetParallelism(workers)
			par.SetParallelThreshold(1)
			parRec := NewCycleRecorder(par.M, par.ObservedCycles())
			parRes, err := par.RunObserved(false, nil, parRec.PETrace())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("m=%d workers=%d: Result %+v, want %+v", m, workers, parRes, seqRes)
			}
			if !reflect.DeepEqual(seqRec.BusyTotals(), parRec.BusyTotals()) {
				t.Errorf("m=%d workers=%d: trace busy totals %v, want %v", m, workers, parRec.BusyTotals(), seqRec.BusyTotals())
			}
		}
	}
}
