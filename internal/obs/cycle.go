package obs

import (
	"fmt"

	"systolicdp/internal/systolic"
)

// ArrayPid is the trace-event process id used for cycle-level array
// traces (request-lifecycle traces use ServePid).
const ArrayPid = 1

// ArrayMeta describes the run a cycle trace came from; it is embedded in
// the exported trace's otherData so cmd/dptrace can compare the measured
// utilization against the paper's closed forms without re-running.
type ArrayMeta struct {
	Design     int     // 1 (pipelined), 2 (broadcast), 3 (feedback)
	Runner     string  // "lockstep" or "goroutines"
	M          int     // PEs
	K          int     // matrix phases (designs 1-2; 0 otherwise)
	N          int     // stages (design 3; 0 otherwise)
	PUExpected float64 // the paper's closed-form PU for this shape; 0 if n/a
}

// CycleRecorder accumulates per-PE busy bits and optional per-cycle
// valid-token counts for one array run. It is a sink for both engine
// hooks:
//
//   - PETrace plugs into RunLockstepObserved / RunGoroutinesObserved.
//     Distinct PEs write distinct rows, so concurrent invocation from the
//     goroutine runner's per-PE goroutines is race-free by construction.
//   - WireTrace plugs into the lock-step wire trace and counts valid
//     tokens per cycle (the goroutine runner has no global wire snapshot,
//     so that counter track is absent from its exports).
type CycleRecorder struct {
	cycles int
	busy   [][]bool // [pe][cycle]
	valid  []int    // [cycle] valid tokens on wires; nil until WireTrace records
}

// NewCycleRecorder sizes a recorder for pes PEs running the given number
// of cycles. Out-of-range hook invocations are dropped rather than grown:
// the recorder is sized from the array's own cycle model, so a drop would
// indicate an engine bug, not a recording need.
func NewCycleRecorder(pes, cycles int) *CycleRecorder {
	r := &CycleRecorder{cycles: cycles, busy: make([][]bool, pes)}
	for i := range r.busy {
		r.busy[i] = make([]bool, cycles)
	}
	return r
}

// PETrace returns the hook to pass to RunLockstepObserved or
// RunGoroutinesObserved.
func (r *CycleRecorder) PETrace() systolic.PETrace {
	return func(pe, cycle int, busy bool) {
		if pe < 0 || pe >= len(r.busy) || cycle < 0 || cycle >= r.cycles {
			return
		}
		r.busy[pe][cycle] = busy
	}
}

// WireTrace returns the lock-step wire-trace callback; it records the
// number of valid tokens latched each cycle for the valid_tokens counter
// track.
func (r *CycleRecorder) WireTrace() func(cycle int, wires []systolic.Token) {
	return func(cycle int, wires []systolic.Token) {
		if r.valid == nil {
			r.valid = make([]int, r.cycles)
		}
		if cycle < 0 || cycle >= r.cycles {
			return
		}
		n := 0
		for _, w := range wires {
			if w.Valid {
				n++
			}
		}
		r.valid[cycle] = n
	}
}

// Cycles returns the recorder's cycle capacity.
func (r *CycleRecorder) Cycles() int { return r.cycles }

// PEs returns the number of recorded PEs.
func (r *CycleRecorder) PEs() int { return len(r.busy) }

// BusyTotals returns per-PE busy-cycle totals; they equal the engine
// Result's Busy counts because both are driven by the same Step busy bit.
func (r *CycleRecorder) BusyTotals() []int {
	totals := make([]int, len(r.busy))
	for pe, row := range r.busy {
		for _, b := range row {
			if b {
				totals[pe]++
			}
		}
	}
	return totals
}

// Utilization returns the measured fraction of PE-cycles that were busy.
func (r *CycleRecorder) Utilization() float64 {
	if r.cycles == 0 || len(r.busy) == 0 {
		return 0
	}
	total := 0
	for _, t := range r.BusyTotals() {
		total += t
	}
	return float64(total) / float64(r.cycles*len(r.busy))
}

// span is one coalesced run of same-state cycles.
type span struct {
	start, length int
	busy          bool
}

// spans coalesces one PE's cycle row into busy/idle runs.
func coalesce(row []bool) []span {
	var out []span
	for t := 0; t < len(row); {
		s := span{start: t, busy: row[t]}
		for t < len(row) && row[t] == s.busy {
			t++
		}
		s.length = t - s.start
		out = append(out, s)
	}
	return out
}

// Trace exports the recording as a Perfetto-loadable trace: one thread
// track per PE with coalesced busy/idle spans (1 logical cycle = 1us),
// counter tracks for busy-PE count, instantaneous utilization, and — when
// a lock-step wire trace fed the recorder — valid tokens in flight. Run
// metadata lands in otherData.
func (r *CycleRecorder) Trace(meta ArrayMeta) *Trace {
	tr := NewTrace()
	tr.OtherData["design"] = fmt.Sprintf("%d", meta.Design)
	tr.OtherData["runner"] = meta.Runner
	tr.OtherData["pes"] = fmt.Sprintf("%d", len(r.busy))
	tr.OtherData["cycles"] = fmt.Sprintf("%d", r.cycles)
	if meta.K > 0 {
		tr.OtherData["k"] = fmt.Sprintf("%d", meta.K)
	}
	if meta.N > 0 {
		tr.OtherData["n"] = fmt.Sprintf("%d", meta.N)
	}
	if meta.PUExpected > 0 {
		tr.OtherData["pu_expected"] = fmt.Sprintf("%.6f", meta.PUExpected)
	}
	tr.OtherData["pu_measured"] = fmt.Sprintf("%.6f", r.Utilization())

	tr.NameProcess(ArrayPid, fmt.Sprintf("systolic design %d (%s)", meta.Design, meta.Runner))
	for pe := range r.busy {
		tr.NameThread(ArrayPid, pe+1, fmt.Sprintf("PE %d", pe+1))
		for _, s := range coalesce(r.busy[pe]) {
			name := "idle"
			if s.busy {
				name = "busy"
			}
			tr.Span(ArrayPid, pe+1, name, "pe", float64(s.start), float64(s.length), nil)
		}
	}
	for t := 0; t < r.cycles; t++ {
		n := 0
		for pe := range r.busy {
			if r.busy[pe][t] {
				n++
			}
		}
		args := map[string]any{"busy": n}
		tr.Counter(ArrayPid, "busy_pes", float64(t), args)
		util := 0.0
		if len(r.busy) > 0 {
			util = float64(n) / float64(len(r.busy))
		}
		tr.Counter(ArrayPid, "utilization", float64(t), map[string]any{"pu": util})
		if r.valid != nil {
			tr.Counter(ArrayPid, "valid_tokens", float64(t), map[string]any{"valid": r.valid[t]})
		}
	}
	return tr
}
