package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden builds the deterministic trace used by the golden-file and
// schema tests: 2 PEs over 4 cycles with a one-cycle skew, lock-step wire
// counts included.
func goldenTrace() *Trace {
	r := NewCycleRecorder(2, 4)
	pt := r.PETrace()
	for c := 0; c < 4; c++ {
		pt(0, c, c < 3)
		pt(1, c, c >= 1)
	}
	wt := r.WireTrace()
	for c := 0; c < 4; c++ {
		wt(c, nil)
	}
	return r.Trace(ArrayMeta{Design: 1, Runner: "lockstep", M: 2, K: 2, PUExpected: 0.75})
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "cycle_golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file; run go test ./internal/obs -update\ngot:\n%s", buf.String())
	}
}

// TestPerfettoSchema asserts the export satisfies the Chrome trace-event
// JSON-object-format contract Perfetto requires: a traceEvents array in
// which every event has ph and ts, and every non-metadata event carries
// pid/tid routing.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	rawEvents, ok := doc["traceEvents"]
	if !ok {
		t.Fatal("missing required top-level key traceEvents")
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(rawEvents, &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("traceEvents empty")
	}
	for i, e := range events {
		for _, key := range []string{"ph", "ts", "pid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, e)
			}
		}
		var ph string
		if err := json.Unmarshal(e["ph"], &ph); err != nil {
			t.Fatalf("event %d ph not a string", i)
		}
		// Complete events additionally need tid (counters attach per-pid).
		if ph == PhaseComplete || ph == PhaseMetadata {
			if _, ok := e["tid"]; !ok {
				t.Fatalf("event %d (ph=%s) missing tid", i, ph)
			}
		}
	}
}
