package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func wireSpan(service, source, trace, id string, startNs, endNs int64) WireSpan {
	return WireSpan{Service: service, Source: source, TraceID: trace, SpanID: NewSpanID(),
		ID: id, Kind: "graph", StartNs: startNs, EndNs: endNs, Status: 200}
}

func TestAssemble(t *testing.T) {
	spans := []WireSpan{
		wireSpan("dpserve", "rep-a", "t2", "r2", 5000, 6000),
		wireSpan("dpserve", "rep-a", "t1", "r1", 1100, 1900),
		wireSpan("dprouter", "router", "t1", "r1", 1000, 2000),
		wireSpan("dprouter", "router", "t2", "r2", 4900, 6100),
		{Service: "dpserve", ID: "untraced", StartNs: 10, EndNs: 20}, // no trace id: dropped
	}
	traces := Assemble(spans)
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	if traces[0].TraceID != "t1" || traces[1].TraceID != "t2" {
		t.Fatalf("traces out of start order: %s, %s", traces[0].TraceID, traces[1].TraceID)
	}
	t1 := traces[0]
	if t1.Spans[0].Service != "dprouter" || t1.Spans[1].Service != "dpserve" {
		t.Errorf("t1 spans not router-first: %+v", t1.Spans)
	}
	if t1.Duration() != 1*time.Microsecond || t1.Start() != 1000 {
		t.Errorf("t1 start %d duration %v, want 1000ns and 1us", t1.Start(), t1.Duration())
	}
	if got := t1.Sources(); len(got) != 2 || got[0] != "rep-a" || got[1] != "router" {
		t.Errorf("t1 sources %v", got)
	}
}

func TestFleetTraceStitching(t *testing.T) {
	traces := Assemble([]WireSpan{
		{Service: "dprouter", Source: "router", TraceID: "t1", SpanID: "s1", ID: "r1",
			Kind: "graph", StartNs: 1000, EndNs: 9000, Status: 200, Replica: "http://a",
			Phases: []WirePhase{{Name: "proxy", OffsetNs: 500, DurNs: 7000, Note: "attempt=1"}}},
		{Service: "dpserve", Source: "http://a", TraceID: "t1", SpanID: "s2", ParentID: "s1",
			ID: "r1", Kind: "graph", StartNs: 2000, EndNs: 8000, Status: 200, Cached: true},
	})
	tr := FleetTrace(traces)

	pids := map[string]int{}
	for _, e := range tr.TraceEvents {
		if e.Ph == PhaseMetadata && e.Name == "process_name" {
			pids[e.Args["name"].(string)] = e.Pid
		}
	}
	if len(pids) != 2 || pids["router"] == 0 || pids["http://a"] == 0 || pids["router"] == pids["http://a"] {
		t.Fatalf("fleet trace pids %v: want distinct router and replica tracks", pids)
	}

	var hop, request, phase Event
	for _, e := range tr.TraceEvents {
		if e.Ph != PhaseComplete {
			continue
		}
		switch e.Name {
		case "hop":
			hop = e
		case "request":
			request = e
		case "proxy":
			phase = e
		}
	}
	if hop.Pid != pids["router"] || request.Pid != pids["http://a"] {
		t.Errorf("spans on wrong tracks: hop pid %d, request pid %d, pids %v", hop.Pid, request.Pid, pids)
	}
	if hop.Args["trace_id"] != "t1" || request.Args["trace_id"] != "t1" {
		t.Errorf("trace_id args missing: hop %v, request %v", hop.Args, request.Args)
	}
	if request.Args["parent_id"] != "s1" {
		t.Errorf("request parent_id %v, want s1 (the hop's span id)", request.Args["parent_id"])
	}
	// Timestamps re-based to the earliest span: hop starts at 0, replica 1us in.
	if hop.Ts != 0 || request.Ts != 1 || hop.Dur != 8 {
		t.Errorf("timeline wrong: hop ts=%v dur=%v, request ts=%v", hop.Ts, hop.Dur, request.Ts)
	}
	if phase.Args["note"] != "attempt=1" {
		t.Errorf("phase note lost: %v", phase.Args)
	}
	if tr.OtherData["traces"] != "1" {
		t.Errorf("otherData traces %q, want 1", tr.OtherData["traces"])
	}
}

func TestCollectorCollect(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/dptrace" || r.URL.Query().Get("format") != "wire" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode([]WireSpan{wireSpan("dpserve", "", "t1", "r1", 2000, 3000)})
	}))
	defer replica.Close()

	c := &Collector{
		Endpoints: func() []Endpoint {
			return []Endpoint{
				{Name: "rep-a", Base: replica.URL},
				{Name: "rep-dead", Base: "http://127.0.0.1:1"},
			}
		},
		Local: func() []WireSpan {
			return []WireSpan{wireSpan("dprouter", "", "t1", "r1", 1000, 4000)}
		},
	}
	traces, errs := c.Collect(context.Background())
	if len(errs) != 1 || errs["rep-dead"] == nil {
		t.Fatalf("errs %v: want rep-dead only", errs)
	}
	if len(traces) != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("collected %+v, want one trace with two spans", traces)
	}
	srcs := traces[0].Sources()
	if len(srcs) != 2 || srcs[0] != "rep-a" || srcs[1] != "router" {
		t.Errorf("sources %v: endpoint/local labels not applied", srcs)
	}
}

func TestCollectorLogSlow(t *testing.T) {
	var buf strings.Builder
	c := &Collector{
		SlowThreshold: time.Millisecond,
		Logger:        slog.New(slog.NewTextHandler(&buf, nil)),
	}
	fast := AssembledTrace{TraceID: "fast", Spans: []WireSpan{wireSpan("dpserve", "a", "fast", "r", 0, 1000)}}
	slow := AssembledTrace{TraceID: "slow", Spans: []WireSpan{
		{Service: "dprouter", Source: "router", TraceID: "slow", ID: "r", StartNs: 0, EndNs: 2e6,
			Phases: []WirePhase{{Name: "proxy", OffsetNs: 0, DurNs: 19e5}}},
	}}
	open := AssembledTrace{TraceID: "open", Spans: []WireSpan{wireSpan("dpserve", "a", "open", "r", 0, 0)}}

	if n := c.LogSlow([]AssembledTrace{fast, slow, open}); n != 1 {
		t.Fatalf("logged %d slow traces, want 1", n)
	}
	if !strings.Contains(buf.String(), "trace=slow") || !strings.Contains(buf.String(), "proxy") {
		t.Errorf("slow log missing trace id or breakdown: %s", buf.String())
	}
	// Second pass over the same traces logs nothing: tail capture is once per trace.
	if n := c.LogSlow([]AssembledTrace{slow}); n != 0 {
		t.Errorf("slow trace logged twice (%d new)", n)
	}
	// Disabled collector logs nothing.
	if n := (&Collector{}).LogSlow([]AssembledTrace{slow}); n != 0 {
		t.Errorf("disabled collector logged %d", n)
	}
}

func TestCollectorSeenBounded(t *testing.T) {
	c := &Collector{}
	for i := 0; i < 5000; i++ {
		c.markSeen(NewSpanID())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seen) > 4096 || len(c.fifo) > 4096 {
		t.Errorf("seen set unbounded: %d ids, fifo %d", len(c.seen), len(c.fifo))
	}
}
