package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// ServePid is the trace-event process id used for request-lifecycle
// traces (cycle-level array traces use ArrayPid).
const ServePid = 2

// Phase is one stage of a request's lifecycle, stored as an offset from
// the span's start so export needs no clock. Note carries an optional
// free-form annotation (the router uses it for per-attempt failover
// detail: replica, status, error).
type Phase struct {
	Name     string
	Offset   time.Duration
	Duration time.Duration
	Note     string
}

// ReqSpan is the lifecycle of one served request: decode -> queue-wait ->
// batch-assembly -> solve -> encode (whichever stages the request's route
// actually passes through). Phases may be recorded from the handler
// goroutine and from worker/batcher goroutines; the span locks. All
// mutable fields — including the problem kind, which the batcher path can
// race against export — live under the mutex.
type ReqSpan struct {
	ID    string
	Start time.Time

	mu       sync.Mutex
	kind     string // problem kind ("graph", "chain", ...)
	traceID  string // distributed trace id; empty when untraced
	spanID   string // this span's id within the trace
	parentID string // the router hop span that caused this request, if any
	phases   []Phase
	end      time.Time
	status   int
	cached   bool
}

// NewReqSpan opens a span for one request with a freshly minted span id.
func NewReqSpan(id, kind string, start time.Time) *ReqSpan {
	return &ReqSpan{ID: id, kind: kind, spanID: NewSpanID(), Start: start}
}

// SetKind records the problem kind once it is known (after decode).
// Safe to call even after the span has escaped to other goroutines: Kind
// is read under the span mutex everywhere (the batcher's flush goroutine
// used to be able to race a late SetKind against export).
func (s *ReqSpan) SetKind(kind string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.kind = kind
	s.mu.Unlock()
}

// Kind reads the problem kind.
func (s *ReqSpan) Kind() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kind
}

// SetTrace links the span into a distributed trace: traceID groups all
// hops of one request across the fleet, parentID is the upstream span
// (the router hop) that caused this one. The span keeps its own minted
// span id.
func (s *ReqSpan) SetTrace(traceID, parentID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.traceID, s.parentID = traceID, parentID
	s.mu.Unlock()
}

// TraceIDs reports the span's trace linkage (trace id, own span id,
// parent span id).
func (s *ReqSpan) TraceIDs() (traceID, spanID, parentID string) {
	if s == nil {
		return "", "", ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceID, s.spanID, s.parentID
}

// Observe records one phase by its wall-clock endpoints.
func (s *ReqSpan) Observe(name string, start, end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.phases = append(s.phases, Phase{Name: name, Offset: start.Sub(s.Start), Duration: end.Sub(start)})
	s.mu.Unlock()
}

// Finish closes the span with the response status and cache disposition.
func (s *ReqSpan) Finish(end time.Time, status int, cached bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.end, s.status, s.cached = end, status, cached
	s.mu.Unlock()
}

// spanSnapshot is a consistent copy of a span's mutable state.
type spanSnapshot struct {
	kind                      string
	traceID, spanID, parentID string
	phases                    []Phase
	end                       time.Time
	status                    int
	cached                    bool
}

// snapshot returns a consistent copy for export.
func (s *ReqSpan) snapshot() spanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return spanSnapshot{
		kind:    s.kind,
		traceID: s.traceID, spanID: s.spanID, parentID: s.parentID,
		phases: append([]Phase(nil), s.phases...),
		end:    s.end, status: s.status, cached: s.cached,
	}
}

// spanKey is the context key for the active request span.
type spanKey struct{}

// WithSpan attaches a request span to ctx so downstream stages (worker
// pool, micro-batcher) can record their phases.
func WithSpan(ctx context.Context, s *ReqSpan) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the request span attached to ctx, or nil. All ReqSpan
// methods are nil-safe, so callers need not check.
func SpanFrom(ctx context.Context) *ReqSpan {
	s, _ := ctx.Value(spanKey{}).(*ReqSpan)
	return s
}

// NewRequestID generates a 16-hex-char request id (propagated as
// X-Request-ID when the client did not supply one).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a time-based id rather than propagate an error into every request.
		return fmt.Sprintf("t-%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// SpanRecorder keeps the last cap request spans in a ring buffer for the
// /debug/dptrace endpoint: enough history to inspect recent latency
// structure without unbounded growth.
type SpanRecorder struct {
	mu    sync.Mutex
	ring  []*ReqSpan
	next  int
	count int
}

// NewSpanRecorder builds a ring of the given capacity (min 1).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{ring: make([]*ReqSpan, capacity)}
}

// Add records a finished span, evicting the oldest when full.
func (r *SpanRecorder) Add(s *ReqSpan) {
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot returns retained spans oldest-first.
func (r *SpanRecorder) Snapshot() []*ReqSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*ReqSpan, 0, r.count)
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Trace exports the retained spans as a Perfetto-loadable trace: one
// thread track per request (named by request id), a whole-request span,
// and one sub-span per lifecycle phase. Timestamps are microseconds since
// the oldest retained span's start.
func (r *SpanRecorder) Trace() *Trace {
	spans := r.Snapshot()
	tr := NewTrace()
	tr.OtherData["service"] = "dpserve"
	tr.OtherData["spans"] = fmt.Sprintf("%d", len(spans))
	tr.NameProcess(ServePid, "dpserve requests")
	if len(spans) == 0 {
		return tr
	}
	base := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(base) {
			base = s.Start
		}
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for i, s := range spans {
		tid := i + 1
		snap := s.snapshot()
		tr.NameThread(ServePid, tid, fmt.Sprintf("req %s", s.ID))
		total := snap.end.Sub(s.Start)
		if snap.end.IsZero() {
			total = 0
		}
		args := map[string]any{
			"id": s.ID, "problem": snap.kind, "status": snap.status, "cached": snap.cached,
		}
		if snap.traceID != "" {
			args["trace_id"] = snap.traceID
			args["span_id"] = snap.spanID
			if snap.parentID != "" {
				args["parent_id"] = snap.parentID
			}
		}
		tr.Span(ServePid, tid, "request", snap.kind, us(s.Start.Sub(base)), us(total), args)
		for _, p := range snap.phases {
			tr.Span(ServePid, tid, p.Name, "stage", us(s.Start.Sub(base)+p.Offset), us(p.Duration), nil)
		}
	}
	return tr
}
