package obs

import (
	"reflect"
	"testing"

	"systolicdp/internal/systolic"
)

// passPE forwards its input and reports busy whenever the token is valid.
type passPE struct{}

func (passPE) NumIn() int  { return 1 }
func (passPE) NumOut() int { return 1 }
func (passPE) Reset()      {}
func (passPE) Step(in []systolic.Token) ([]systolic.Token, bool) {
	return []systolic.Token{in[0]}, in[0].Valid
}

// chainArray builds a linear pass-through chain of n PEs fed with k valid
// tokens: PE i is busy exactly at cycles [i, i+k), the simplest skewed
// pipeline.
func chainArray(n, k int) *systolic.Array {
	a := &systolic.Array{}
	for i := 0; i < n; i++ {
		a.PEs = append(a.PEs, passPE{})
	}
	a.Wires = append(a.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: systolic.External, Port: 0},
		To:   systolic.Endpoint{PE: 0, Port: 0},
		Source: func(t int) systolic.Token {
			if t < k {
				return systolic.Token{V: float64(t), Valid: true}
			}
			return systolic.Bubble()
		},
	})
	for i := 0; i+1 < n; i++ {
		a.Wires = append(a.Wires, systolic.Wire{
			From: systolic.Endpoint{PE: i, Port: 0},
			To:   systolic.Endpoint{PE: i + 1, Port: 0},
			Init: systolic.Bubble(),
		})
	}
	a.Wires = append(a.Wires, systolic.Wire{
		From: systolic.Endpoint{PE: n - 1, Port: 0},
		To:   systolic.Endpoint{PE: systolic.External, Port: 0},
	})
	return a
}

func TestCycleRecorderMatchesResultBusy(t *testing.T) {
	const pes, tokens, cycles = 3, 4, 8
	arr := chainArray(pes, tokens)

	lock := NewCycleRecorder(pes, cycles)
	resLock, err := arr.RunLockstepObserved(cycles, lock.WireTrace(), lock.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	if got := lock.BusyTotals(); !reflect.DeepEqual(got, resLock.Busy) {
		t.Errorf("lockstep recorder busy %v != result busy %v", got, resLock.Busy)
	}

	arr.Reset()
	goro := NewCycleRecorder(pes, cycles)
	resGoro, err := arr.RunGoroutinesObserved(cycles, goro.PETrace())
	if err != nil {
		t.Fatal(err)
	}
	if got := goro.BusyTotals(); !reflect.DeepEqual(got, resGoro.Busy) {
		t.Errorf("goroutine recorder busy %v != result busy %v", got, resGoro.Busy)
	}

	// The two runners must agree span-for-span, not just in totals: the
	// marked-graph construction aligns each PE's local iteration index
	// with the lock-step cycle index.
	if !reflect.DeepEqual(lock.busy, goro.busy) {
		t.Errorf("per-cycle busy matrices differ:\nlockstep  %v\ngoroutine %v", lock.busy, goro.busy)
	}
	// PE i busy exactly at cycles [i, i+tokens).
	for pe := 0; pe < pes; pe++ {
		for c := 0; c < cycles; c++ {
			want := c >= pe && c < pe+tokens
			if lock.busy[pe][c] != want {
				t.Errorf("PE %d cycle %d busy=%v, want %v", pe, c, lock.busy[pe][c], want)
			}
		}
	}
}

func TestCycleRecorderUtilizationAndCoalesce(t *testing.T) {
	r := NewCycleRecorder(2, 4)
	pt := r.PETrace()
	for _, c := range []struct {
		pe, cycle int
		busy      bool
	}{{0, 0, true}, {0, 1, true}, {0, 2, false}, {0, 3, true}, {1, 0, false}, {1, 1, true}, {1, 2, true}, {1, 3, false}} {
		pt(c.pe, c.cycle, c.busy)
	}
	if got := r.Utilization(); got != 5.0/8.0 {
		t.Errorf("utilization %v, want 0.625", got)
	}
	spans := coalesce(r.busy[0])
	want := []span{{0, 2, true}, {2, 1, false}, {3, 1, true}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("coalesce %v, want %v", spans, want)
	}
	// Out-of-range hook calls are dropped, not grown and not panicking.
	pt(-1, 0, true)
	pt(0, 99, true)
	pt(99, 0, true)
	if got := r.BusyTotals(); !reflect.DeepEqual(got, []int{3, 2}) {
		t.Errorf("busy totals %v after out-of-range calls, want [3 2]", got)
	}
}

func TestCycleTraceMetadata(t *testing.T) {
	r := NewCycleRecorder(2, 3)
	pt := r.PETrace()
	pt(0, 0, true)
	pt(1, 1, true)
	tr := r.Trace(ArrayMeta{Design: 3, Runner: "goroutines", M: 2, N: 4, PUExpected: 0.9})
	for _, key := range []string{"design", "runner", "pes", "cycles", "n", "pu_expected", "pu_measured"} {
		if tr.OtherData[key] == "" {
			t.Errorf("otherData missing %q", key)
		}
	}
	if tr.OtherData["design"] != "3" || tr.OtherData["cycles"] != "3" {
		t.Errorf("bad otherData: %v", tr.OtherData)
	}
	busySpans := 0
	for _, e := range tr.TraceEvents {
		if e.Ph == PhaseComplete && e.Name == "busy" {
			busySpans++
		}
	}
	if busySpans != 2 {
		t.Errorf("busy spans %d, want 2", busySpans)
	}
}
