package obs

import "time"

// WireSpan is the cross-process span exchange form: what each process
// serves at /debug/dptrace?format=wire and what the trace collector
// pulls to stitch a fleet-wide timeline. Timestamps are absolute unix
// nanoseconds (processes on one fleet share a clock to well under the
// millisecond phase granularity; the collector re-bases everything to
// the earliest span it sees). The schema is part of the observability
// contract — obs.Collector and cmd/dptrace decode exactly this shape —
// so fields are additive-only.
type WireSpan struct {
	Service  string      `json:"service"`             // producing tier: "dpserve" or "dprouter"
	Source   string      `json:"source,omitempty"`    // collector-assigned endpoint name (not set by producers)
	TraceID  string      `json:"trace_id,omitempty"`  // distributed trace linkage
	SpanID   string      `json:"span_id,omitempty"`   //
	ParentID string      `json:"parent_id,omitempty"` //
	ID       string      `json:"id"`                  // request id (X-Request-ID)
	Kind     string      `json:"kind,omitempty"`      // problem kind
	StartNs  int64       `json:"start_unix_ns"`
	EndNs    int64       `json:"end_unix_ns,omitempty"` // 0 while the span is still open
	Status   int         `json:"status,omitempty"`
	Cached   bool        `json:"cached,omitempty"`
	Replica  string      `json:"replica,omitempty"` // hop spans: upstream that answered
	Phases   []WirePhase `json:"phases,omitempty"`
}

// WirePhase is one lifecycle phase in wire form, offsets relative to the
// span start.
type WirePhase struct {
	Name     string `json:"name"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"dur_ns"`
	Note     string `json:"note,omitempty"`
}

// Duration is the span's end-to-end latency (0 while open).
func (w WireSpan) Duration() time.Duration {
	if w.EndNs == 0 {
		return 0
	}
	return time.Duration(w.EndNs - w.StartNs)
}

func wirePhases(ps []Phase) []WirePhase {
	if len(ps) == 0 {
		return nil
	}
	out := make([]WirePhase, len(ps))
	for i, p := range ps {
		out[i] = WirePhase{Name: p.Name, OffsetNs: p.Offset.Nanoseconds(), DurNs: p.Duration.Nanoseconds(), Note: p.Note}
	}
	return out
}

func wireEnd(end time.Time) int64 {
	if end.IsZero() {
		return 0
	}
	return end.UnixNano()
}

// Wire exports the request span in wire form.
func (s *ReqSpan) Wire() WireSpan {
	snap := s.snapshot()
	return WireSpan{
		Service: "dpserve",
		TraceID: snap.traceID, SpanID: snap.spanID, ParentID: snap.parentID,
		ID: s.ID, Kind: snap.kind,
		StartNs: s.Start.UnixNano(), EndNs: wireEnd(snap.end),
		Status: snap.status, Cached: snap.cached,
		Phases: wirePhases(snap.phases),
	}
}

// Wire exports the hop span in wire form.
func (h *HopSpan) Wire() WireSpan {
	snap := h.snapshot()
	return WireSpan{
		Service: "dprouter",
		TraceID: snap.traceID, SpanID: snap.spanID,
		ID: h.ID, Kind: snap.kind,
		StartNs: h.Start.UnixNano(), EndNs: wireEnd(snap.end),
		Status:  snap.status,
		Replica: h.Replica(),
		Phases:  wirePhases(snap.phases),
	}
}

// WireSpans exports the retained request spans oldest-first.
func (r *SpanRecorder) WireSpans() []WireSpan {
	spans := r.Snapshot()
	out := make([]WireSpan, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.Wire())
	}
	return out
}

// WireSpans exports the retained hop spans oldest-first.
func (r *HopRecorder) WireSpans() []WireSpan {
	hops := r.Snapshot()
	out := make([]WireSpan, 0, len(hops))
	for _, h := range hops {
		out = append(out, h.Wire())
	}
	return out
}
