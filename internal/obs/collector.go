package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// FleetBasePid is the first trace-event process id used for fleet
// sources in a stitched trace (one pid per source, assigned in sorted
// source order).
const FleetBasePid = 10

// WirePath is where every process in the fleet exposes its recent spans
// in wire JSON form (the Perfetto form stays at the bare path).
const WirePath = "/debug/dptrace?format=wire"

// Endpoint is one span source the collector pulls from.
type Endpoint struct {
	Name string // track label in the stitched trace (replica base, "router", ...)
	Base string // base URL; the collector appends WirePath
}

// AssembledTrace is every span of one distributed trace, stitched across
// the fleet and sorted by start time.
type AssembledTrace struct {
	TraceID string
	Spans   []WireSpan
}

// Start returns the earliest span start (unix ns).
func (t AssembledTrace) Start() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[0].StartNs
}

// Duration is the end-to-end latency: earliest start to latest close.
// Open spans contribute nothing to the end.
func (t AssembledTrace) Duration() time.Duration {
	var end int64
	for _, s := range t.Spans {
		if s.EndNs > end {
			end = s.EndNs
		}
	}
	if end == 0 {
		return 0
	}
	return time.Duration(end - t.Start())
}

// Sources returns the distinct span sources in the trace, sorted.
func (t AssembledTrace) Sources() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range t.Spans {
		if !seen[s.Source] {
			seen[s.Source] = true
			out = append(out, s.Source)
		}
	}
	sort.Strings(out)
	return out
}

// Assemble groups wire spans by trace id. Spans without a trace id are
// dropped (they cannot be stitched); traces come back ordered by start
// time, spans within a trace by start then service (router hop before
// the replica span it caused when both start the same nanosecond).
func Assemble(spans []WireSpan) []AssembledTrace {
	byTrace := map[string][]WireSpan{}
	for _, s := range spans {
		if s.TraceID == "" {
			continue
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make([]AssembledTrace, 0, len(byTrace))
	for id, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartNs != ss[j].StartNs {
				return ss[i].StartNs < ss[j].StartNs
			}
			return ss[i].Service > ss[j].Service // "dprouter" > "dpserve": router first
		})
		out = append(out, AssembledTrace{TraceID: id, Spans: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Collector pulls recent spans from every process in the fleet and
// stitches them into per-trace timelines. It is wired into dprouter
// (serving /debug/fleettrace and driving tail-based slow-request
// capture) and into cmd/dptrace's standalone -collect mode.
type Collector struct {
	// Endpoints enumerates the fleet to pull from on each Collect; the
	// router passes its live membership so the set follows reloads.
	Endpoints func() []Endpoint
	// Local supplies spans available without HTTP (the router's own hop
	// spans); may be nil.
	Local func() []WireSpan
	// LocalName labels Local's spans; default "router".
	LocalName string
	// Client performs the pulls; nil uses a 2-second-timeout client.
	Client *http.Client
	// SlowThreshold is the tail-capture bar: LogSlow logs any stitched
	// trace at least this slow. <= 0 disables.
	SlowThreshold time.Duration
	// Logger receives slow-trace lines and pull warnings; nil discards.
	Logger *slog.Logger

	mu   sync.Mutex
	seen map[string]bool // trace ids already slow-logged
	fifo []string        // bounded eviction order for seen
}

func (c *Collector) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

func (c *Collector) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Collect pulls every endpoint (plus Local) and assembles the union.
// Per-endpoint failures are tolerated — a dead replica must not take the
// fleet view down with it — and reported in errs by endpoint name.
func (c *Collector) Collect(ctx context.Context) (traces []AssembledTrace, errs map[string]error) {
	var eps []Endpoint
	if c.Endpoints != nil {
		eps = c.Endpoints()
	}
	type pull struct {
		name  string
		spans []WireSpan
		err   error
	}
	results := make([]pull, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep Endpoint) {
			defer wg.Done()
			spans, err := FetchWireSpans(ctx, c.client(), ep.Base)
			for j := range spans {
				spans[j].Source = ep.Name
			}
			results[i] = pull{name: ep.Name, spans: spans, err: err}
		}(i, ep)
	}
	wg.Wait()

	var all []WireSpan
	if c.Local != nil {
		name := c.LocalName
		if name == "" {
			name = "router"
		}
		for _, s := range c.Local() {
			s.Source = name
			all = append(all, s)
		}
	}
	errs = map[string]error{}
	for _, r := range results {
		if r.err != nil {
			errs[r.name] = r.err
			c.logger().Warn("span pull failed", "endpoint", r.name, "err", r.err)
			continue
		}
		all = append(all, r.spans...)
	}
	return Assemble(all), errs
}

// FetchWireSpans pulls one process's recent spans in wire form.
func FetchWireSpans(ctx context.Context, client *http.Client, base string) ([]WireSpan, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+WirePath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s: status %d", base, resp.StatusCode)
	}
	var spans []WireSpan
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, fmt.Errorf("%s: %w", base, err)
	}
	return spans, nil
}

// LogSlow applies tail-based capture: every not-yet-logged trace whose
// end-to-end latency meets SlowThreshold is logged with its full phase
// breakdown, once. Returns how many new slow traces were logged.
func (c *Collector) LogSlow(traces []AssembledTrace) int {
	if c.SlowThreshold <= 0 {
		return 0
	}
	logged := 0
	for _, t := range traces {
		d := t.Duration()
		if d < c.SlowThreshold || d == 0 {
			continue
		}
		if !c.markSeen(t.TraceID) {
			continue
		}
		logged++
		c.logger().Warn("slow trace",
			"trace", t.TraceID, "duration", d,
			"spans", len(t.Spans), "sources", strings.Join(t.Sources(), ","),
			"breakdown", breakdown(t))
	}
	return logged
}

// markSeen records a trace id, evicting oldest entries past 4096 so the
// dedup set stays bounded on a long-lived router. Returns false when the
// id was already recorded.
func (c *Collector) markSeen(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = map[string]bool{}
	}
	if c.seen[id] {
		return false
	}
	c.seen[id] = true
	c.fifo = append(c.fifo, id)
	for len(c.fifo) > 4096 {
		delete(c.seen, c.fifo[0])
		c.fifo = c.fifo[1:]
	}
	return true
}

// breakdown renders a trace's phases as one compact line:
// "router:hop 12ms [proxy 11ms] -> replica-a:request 10ms [queue_wait 1ms solve 8ms]".
func breakdown(t AssembledTrace) string {
	parts := make([]string, 0, len(t.Spans))
	for _, s := range t.Spans {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:%s %s", s.Source, s.Service, time.Duration(s.EndNs-s.StartNs).Round(time.Microsecond))
		if len(s.Phases) > 0 {
			b.WriteString(" [")
			for i, p := range s.Phases {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s %s", p.Name, time.Duration(p.DurNs).Round(time.Microsecond))
			}
			b.WriteByte(']')
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " -> ")
}

// FleetTrace renders stitched traces as one Perfetto document: one
// process per source (router track + one track per replica), one thread
// row per trace within each source, span args carrying the trace/span/
// parent ids so the linkage survives into the UI. Timestamps are
// microseconds since the earliest span in the collection.
func FleetTrace(traces []AssembledTrace) *Trace {
	tr := NewTrace()
	tr.OtherData["fleet"] = "1"
	tr.OtherData["traces"] = fmt.Sprintf("%d", len(traces))
	if len(traces) == 0 {
		return tr
	}
	// Stable pid per source across the document.
	sourceSet := map[string]bool{}
	for _, t := range traces {
		for _, s := range t.Spans {
			sourceSet[s.Source] = true
		}
	}
	sources := make([]string, 0, len(sourceSet))
	for s := range sourceSet {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	pidOf := map[string]int{}
	for i, s := range sources {
		pid := FleetBasePid + i
		pidOf[s] = pid
		tr.NameProcess(pid, s)
	}
	base := traces[0].Start()
	for _, t := range traces {
		if s := t.Start(); s < base {
			base = s
		}
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for ti, t := range traces {
		tid := ti + 1
		short := t.TraceID
		if len(short) > 12 {
			short = short[:12]
		}
		named := map[int]bool{}
		for _, s := range t.Spans {
			pid := pidOf[s.Source]
			if !named[pid] {
				named[pid] = true
				tr.NameThread(pid, tid, fmt.Sprintf("trace %s", short))
			}
			name := "request"
			if s.Service == "dprouter" {
				name = "hop"
			}
			args := map[string]any{
				"trace_id": s.TraceID, "span_id": s.SpanID, "id": s.ID,
				"status": s.Status, "service": s.Service,
			}
			if s.ParentID != "" {
				args["parent_id"] = s.ParentID
			}
			if s.Cached {
				args["cached"] = true
			}
			if s.Replica != "" {
				args["replica"] = s.Replica
			}
			dur := 0.0
			if s.EndNs > 0 {
				dur = us(s.EndNs - s.StartNs)
			}
			tr.Span(pid, tid, name, s.Kind, us(s.StartNs-base), dur, args)
			for _, p := range s.Phases {
				var pargs map[string]any
				if p.Note != "" {
					pargs = map[string]any{"note": p.Note}
				}
				tr.Span(pid, tid, p.Name, "stage", us(s.StartNs-base+p.OffsetNs), us(p.DurNs), pargs)
			}
		}
	}
	return tr
}
