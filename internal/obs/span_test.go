package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanContextPlumbing(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Error("empty context yielded a span")
	}
	s := NewReqSpan("abc", "graph", time.Unix(0, 0))
	ctx := WithSpan(context.Background(), s)
	if SpanFrom(ctx) != s {
		t.Error("span not recovered from context")
	}
	// nil-safe methods: must not panic.
	var nilSpan *ReqSpan
	nilSpan.Observe("solve", time.Now(), time.Now())
	nilSpan.Finish(time.Now(), 200, false)
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("request ids collide: %s", a)
	}
	if len(a) != 16 {
		t.Errorf("request id %q not 16 hex chars", a)
	}
}

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(2)
	base := time.Unix(1000, 0)
	for i, id := range []string{"a", "b", "c"} {
		s := NewReqSpan(id, "graph", base.Add(time.Duration(i)*time.Millisecond))
		s.Finish(s.Start.Add(time.Millisecond), 200, false)
		r.Add(s)
	}
	if r.Len() != 2 {
		t.Fatalf("ring len %d, want 2", r.Len())
	}
	snap := r.Snapshot()
	if snap[0].ID != "b" || snap[1].ID != "c" {
		t.Errorf("ring kept %s,%s; want b,c", snap[0].ID, snap[1].ID)
	}
}

func TestSpanTraceExport(t *testing.T) {
	r := NewSpanRecorder(8)
	base := time.Unix(1000, 0)
	s := NewReqSpan("req1", "chain", base)
	s.Observe("decode", base, base.Add(10*time.Microsecond))
	s.Observe("queue_wait", base.Add(10*time.Microsecond), base.Add(30*time.Microsecond))
	s.Observe("solve", base.Add(30*time.Microsecond), base.Add(130*time.Microsecond))
	s.Finish(base.Add(150*time.Microsecond), 200, false)
	r.Add(s)

	tr := r.Trace()
	var request, phases int
	for _, e := range tr.TraceEvents {
		if e.Ph != PhaseComplete {
			continue
		}
		switch e.Name {
		case "request":
			request++
			if e.Dur != 150 {
				t.Errorf("request dur %v us, want 150", e.Dur)
			}
		case "decode", "queue_wait", "solve":
			phases++
		}
	}
	if request != 1 || phases != 3 {
		t.Errorf("exported %d request spans and %d phases, want 1 and 3", request, phases)
	}
	if tr.OtherData["spans"] != "1" {
		t.Errorf("otherData spans %q, want 1", tr.OtherData["spans"])
	}

	// Empty recorder still exports a valid trace.
	empty := NewSpanRecorder(4).Trace()
	if empty.OtherData["spans"] != "0" || empty.TraceEvents == nil {
		t.Error("empty recorder export malformed")
	}
}
