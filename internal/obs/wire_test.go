package obs

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestWireSpanJSONRoundTrip is the wire-schema contract test: a span
// exported to wire form must survive marshal -> unmarshal exactly, since
// the collector decodes precisely this shape from remote processes.
func TestWireSpanJSONRoundTrip(t *testing.T) {
	base := time.Unix(1000, 0)
	s := NewReqSpan("req1", "graph", base)
	s.SetTrace("cafe01", "beef02")
	s.Observe("decode", base, base.Add(10*time.Microsecond))
	s.Observe("solve", base.Add(10*time.Microsecond), base.Add(200*time.Microsecond))
	s.Finish(base.Add(220*time.Microsecond), 200, true)

	w := s.Wire()
	if w.Service != "dpserve" || w.TraceID != "cafe01" || w.ParentID != "beef02" {
		t.Fatalf("wire span linkage wrong: %+v", w)
	}
	if w.SpanID == "" {
		t.Fatal("wire span lost its own span id")
	}
	if w.Duration() != 220*time.Microsecond {
		t.Errorf("wire duration %v, want 220us", w.Duration())
	}

	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got WireSpan
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Errorf("wire span did not survive JSON:\n got %+v\nwant %+v", got, w)
	}
}

func TestWireSpanOpenAndHop(t *testing.T) {
	base := time.Unix(2000, 0)
	// Open request span: EndNs stays 0 so consumers can tell in-flight apart.
	open := NewReqSpan("req2", "chain", base).Wire()
	if open.EndNs != 0 || open.Duration() != 0 {
		t.Errorf("open span exported end %d dur %v, want 0", open.EndNs, open.Duration())
	}

	h := NewHopSpan("req3", base)
	h.SetTrace("abc123")
	h.SetKind("graph")
	h.ObserveNote("proxy", "attempt=1 replica=http://a status=200", base, base.Add(time.Millisecond))
	h.Finish(base.Add(time.Millisecond), 200, "http://a")
	w := h.Wire()
	if w.Service != "dprouter" || w.Replica != "http://a" || w.TraceID != "abc123" {
		t.Fatalf("hop wire span wrong: %+v", w)
	}
	if len(w.Phases) != 1 || w.Phases[0].Note == "" {
		t.Fatalf("hop wire span lost its annotated phase: %+v", w.Phases)
	}

	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got WireSpan
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Errorf("hop wire span did not survive JSON:\n got %+v\nwant %+v", got, w)
	}
}

func TestRecorderWireSpans(t *testing.T) {
	r := NewSpanRecorder(4)
	base := time.Unix(3000, 0)
	for i, id := range []string{"a", "b"} {
		s := NewReqSpan(id, "graph", base.Add(time.Duration(i)*time.Millisecond))
		s.Finish(s.Start.Add(time.Millisecond), 200, false)
		r.Add(s)
	}
	ws := r.WireSpans()
	if len(ws) != 2 || ws[0].ID != "a" || ws[1].ID != "b" {
		t.Fatalf("recorder wire export wrong: %+v", ws)
	}

	hr := NewHopRecorder(4)
	h := NewHopSpan("c", base)
	h.Finish(base.Add(time.Millisecond), 502, "")
	hr.Add(h)
	hws := hr.WireSpans()
	if len(hws) != 1 || hws[0].ID != "c" || hws[0].Status != 502 {
		t.Fatalf("hop recorder wire export wrong: %+v", hws)
	}
}
